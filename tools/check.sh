#!/usr/bin/env bash
# check.sh — one driver for every correctness gate in the repo.
#
# Stages (run in this order with --all; pick individual ones by flag):
#   --build      configure + build with SIGHT_WERROR=ON (hardened warnings
#                are errors) and run the full ctest suite
#   --lint       tools/sight_lint.py repo rules + its self-test
#   --analyze    tools/sight_analyzer.py semantic rules (epoch/lock/
#                hot-path/status discipline over compile_commands.json)
#                + its self-test; distinguishes findings from tool errors
#   --tidy       clang-tidy over src/ using the exported compile commands
#                (skipped with a notice if clang-tidy is not installed)
#   --format     clang-format --dry-run -Werror over src/ tests/ tools/
#                bench/ (skipped with a notice if clang-format is missing)
#   --asan / --ubsan / --tsan
#                sanitizer builds; tsan runs the threading-,
#                incremental-, and serving-labeled tests (the warm-start
#                solve state, CSR staging buffers, and the RiskService
#                shard queues / snapshot swaps are exactly the kind of
#                retained mutable state sanitizers catch), asan/ubsan
#                run the full suite (incremental tests included)
#   --nosimd     build with -DSIGHT_SIMD=OFF and run the full ctest
#                suite (incremental tests included), so the portable
#                scalar PS kernels stay a first-class target
#
# With no flags: --build --lint (the fast local gate).
# CI (.github/workflows/ci.yml) fans the same stages out as matrix jobs.
#
# Env: BUILD_JOBS (default: nproc), CMAKE_BUILD_TYPE (default:
# RelWithDebInfo), CHECK_STRICT_TOOLS=1 makes missing clang-tidy /
# clang-format a hard failure instead of a skip (CI sets this).

set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
JOBS="${BUILD_JOBS:-$(nproc)}"
STRICT_TOOLS="${CHECK_STRICT_TOOLS:-0}"

cd "$REPO_ROOT"

run_build=0 run_lint=0 run_analyze=0 run_tidy=0 run_format=0
run_asan=0 run_ubsan=0 run_tsan=0 run_nosimd=0

if [[ $# -eq 0 ]]; then
  run_build=1 run_lint=1
fi
for arg in "$@"; do
  case "$arg" in
    --build)  run_build=1 ;;
    --lint)   run_lint=1 ;;
    --analyze) run_analyze=1 ;;
    --tidy)   run_tidy=1 ;;
    --format) run_format=1 ;;
    --asan)   run_asan=1 ;;
    --ubsan)  run_ubsan=1 ;;
    --tsan)   run_tsan=1 ;;
    --nosimd) run_nosimd=1 ;;
    --sanitize=address)   run_asan=1 ;;
    --sanitize=undefined) run_ubsan=1 ;;
    --sanitize=thread)    run_tsan=1 ;;
    --all) run_build=1 run_lint=1 run_analyze=1 run_tidy=1 run_format=1
           run_asan=1 run_ubsan=1 run_tsan=1 run_nosimd=1 ;;
    -h|--help) sed -n '2,27p' "$0"; exit 0 ;;
    *) echo "check.sh: unknown flag '$arg' (see --help)" >&2; exit 2 ;;
  esac
done

step() { printf '\n==== %s ====\n' "$*"; }

configure_and_build() {
  local dir="$1"; shift
  cmake -B "$dir" -S . \
    -DCMAKE_BUILD_TYPE="${CMAKE_BUILD_TYPE:-RelWithDebInfo}" \
    -DSIGHT_WERROR=ON "$@"
  cmake --build "$dir" -j "$JOBS"
}

if [[ $run_build -eq 1 ]]; then
  step "build (SIGHT_WERROR=ON) + ctest"
  configure_and_build build
  (cd build && ctest --output-on-failure -j "$JOBS")
fi

# Runs a python checker that uses exit 1 for findings and exit 2 for tool
# errors, and reports which of the two actually happened.
run_checker() {
  local label="$1"; shift
  local rc=0
  "$@" || rc=$?
  case "$rc" in
    0) ;;
    1) echo "check.sh: $label reported findings (fix or suppress them)" >&2
       exit 1 ;;
    2) echo "check.sh: $label failed to run (tool error — see above," \
            "not a code finding)" >&2
       exit 2 ;;
    *) echo "check.sh: $label exited with unexpected status $rc" >&2
       exit "$rc" ;;
  esac
}

if [[ $run_lint -eq 1 ]]; then
  step "sight-lint"
  run_checker "sight-lint" python3 tools/sight_lint.py --root "$REPO_ROOT"
  python3 tests/tools/sight_lint_test.py
fi

if [[ $run_analyze -eq 1 ]]; then
  step "sight-analyzer (semantic rules over compile_commands.json)"
  # The analyzer consumes the compile commands the main configure exports.
  [[ -f build/compile_commands.json ]] || configure_and_build build
  run_checker "sight-analyzer" \
    python3 tools/sight_analyzer.py --root "$REPO_ROOT" --build-dir build
  python3 tests/tools/sight_analyzer_test.py
fi

if [[ $run_tidy -eq 1 ]]; then
  step "clang-tidy"
  if command -v clang-tidy >/dev/null 2>&1; then
    # compile_commands.json is exported by the main configure.
    [[ -f build/compile_commands.json ]] || configure_and_build build
    mapfile -t tidy_sources < <(find src -name '*.cc' | sort)
    clang-tidy -p build --quiet "${tidy_sources[@]}"
  elif [[ "$STRICT_TOOLS" == "1" ]]; then
    echo "check.sh: clang-tidy required but not installed" >&2; exit 1
  else
    echo "check.sh: clang-tidy not installed; skipping (set" \
         "CHECK_STRICT_TOOLS=1 to make this fatal)"
  fi
fi

if [[ $run_format -eq 1 ]]; then
  step "clang-format"
  if command -v clang-format >/dev/null 2>&1; then
    mapfile -t fmt_sources < \
      <(find src tests tools bench -name '*.h' -o -name '*.cc' | sort)
    clang-format --dry-run -Werror "${fmt_sources[@]}"
  elif [[ "$STRICT_TOOLS" == "1" ]]; then
    echo "check.sh: clang-format required but not installed" >&2; exit 1
  else
    echo "check.sh: clang-format not installed; skipping (set" \
         "CHECK_STRICT_TOOLS=1 to make this fatal)"
  fi
fi

if [[ $run_asan -eq 1 ]]; then
  step "AddressSanitizer build + full ctest"
  configure_and_build build-asan -DSIGHT_SANITIZE=address
  (cd build-asan && ctest --output-on-failure -j "$JOBS")
fi

if [[ $run_ubsan -eq 1 ]]; then
  step "UndefinedBehaviorSanitizer build + full ctest"
  configure_and_build build-ubsan -DSIGHT_SANITIZE=undefined
  (cd build-ubsan && ctest --output-on-failure -j "$JOBS")
fi

if [[ $run_nosimd -eq 1 ]]; then
  step "SIGHT_SIMD=OFF build + full ctest (scalar kernels)"
  configure_and_build build-nosimd -DSIGHT_SIMD=OFF
  (cd build-nosimd && ctest --output-on-failure -j "$JOBS")
fi

if [[ $run_tsan -eq 1 ]]; then
  step "ThreadSanitizer build + threading/incremental/serving ctest"
  configure_and_build build-tsan -DSIGHT_SANITIZE=thread
  (cd build-tsan && \
   ctest --output-on-failure -L 'threading|incremental|serving' \
     -j "$JOBS")
fi

step "all requested checks passed"
