#!/usr/bin/env python3
"""sight-lint: repo-specific static checks that clang-tidy cannot express.

Enforces the Sight library conventions documented in DESIGN.md §10:

  nodiscard-status   Every function declared in src/**/*.h returning Status
                     or Result<T> carries [[nodiscard]].
  no-exceptions      No `throw` / `try` / `catch` in src/ — the library is
                     exception-free; errors flow through Status/Result.
  no-raw-stdio       No `std::cout` / `std::cerr` in src/ — diagnostics go
                     through util/logging.h (SIGHT_CHECK / fprintf(stderr)),
                     data output through an ostream* parameter.
  checked-value      No naked `.value()` on a Result without an `ok()` check
                     (or SIGHT_ASSIGN_OR_RETURN / value_or) naming the same
                     receiver earlier in the enclosing scope.
  no-raw-thread      No `std::thread` / `std::jthread` / `std::async` outside
                     util/thread_pool — all parallelism goes through
                     ThreadPool / ParallelFor so determinism and shutdown
                     stay centralized.
  no-direct-engine   No `RiskEngine::Create` outside src/service/ — library
                     code goes through the resident RiskService (or the
                     RiskSession adapter) so per-owner state, carry, and
                     deprecation stay behind one front door (DESIGN.md §13).
  no-hot-rebuild     No `EncodedProfileTable::Build` inside src/service/ —
                     the serving hot path carries one encoded table per
                     owner (StrangerEncodeCache, DESIGN.md §14); per-tick
                     rebuilds belong to the cache's own cold-fallback
                     helper, never to service code. (First-line textual
                     guard; tools/sight_analyzer.py enforces the same
                     invariant semantically over the whole call graph.)
  no-sleep-in-tests  No `std::this_thread::sleep_for/sleep_until` in
                     tests/ — sleeping for "long enough" is the classic
                     flake; wait on the condition instead (WaitFor,
                     Poll-until-version, condition_variable predicates).

Usage:
  tools/sight_lint.py                 # lint src/ + tests/ under the root
  tools/sight_lint.py --root DIR      # lint DIR/src (used by the self-test)
  tools/sight_lint.py --list-rules

Exit status: 0 when clean, 1 when violations were found, 2 on tool error
(unreadable/undecodable input, bad usage) — tools/check.sh distinguishes
the two failure modes.
"""

import argparse
import pathlib
import re
import sys

# Files where a rule does not apply, relative to the src/ root.
ALLOWLIST = {
    "no-raw-thread": {"util/thread_pool.h", "util/thread_pool.cc"},
    # util/logging.h is the sanctioned diagnostic sink; it owns the one
    # permitted stderr write (via fprintf, but keep it exempt for clarity).
    "no-raw-stdio": {"util/logging.h"},
    # The service owns the one resident engine; the engine's own files
    # name the symbol in declarations/definitions.
    "no-direct-engine": {"service/risk_service.cc", "core/risk_engine.h",
                         "core/risk_engine.cc"},
    # Currently empty: the cold-rebuild fallback lives inside
    # StrangerEncodeCache::Refresh (graph/profile_codec.cc), not in the
    # service. A future service-side helper would be exempted here.
    "no-hot-rebuild": set(),
}

# Function declarations returning Status or Result<T>. Mirrors the shape of
# every declaration in the codebase: optional specifiers, the return type,
# then the function name and an opening paren on the same line.
DECL_RE = re.compile(
    r"^(\s*)((?:(?:static|virtual|inline|friend|constexpr|explicit)\s+)*)"
    r"((?:sight::)?(?:Status|Result<.+>))\s+([A-Za-z_]\w*)\s*\("
)

# `.value()` with no arguments — ProfileTable::value(attr) takes arguments
# and never matches.
VALUE_RE = re.compile(r"\.\s*value\s*\(\s*\)")

IDENT_RE = re.compile(r"[A-Za-z_]\w*")

# Identifiers that can appear inside a receiver expression but never name
# the Result object itself.
RECEIVER_NOISE = {
    "std", "move", "static_cast", "const_cast", "reinterpret_cast",
    "size_t", "int", "auto", "get", "front", "back", "at",
}


class Violation:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text):
    """Blanks out comments and string/char literal contents, preserving
    line structure so reported line numbers stay accurate."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append(c)
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append(c)
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
                out.append(c)
            elif c == "\n":  # unterminated; recover
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        i += 1
    return "".join(out)


def check_nodiscard(rel, lines, violations):
    """Rule nodiscard-status: applies to headers only (the attribute binds
    to the first declaration; definitions in .cc inherit it)."""
    if not rel.endswith(".h"):
        return
    for idx, line in enumerate(lines):
        m = DECL_RE.match(line)
        if not m:
            continue
        if "[[nodiscard]]" in line:
            continue
        # Attribute on its own line directly above also counts.
        if idx > 0 and "[[nodiscard]]" in lines[idx - 1]:
            continue
        violations.append(Violation(
            rel, idx + 1, "nodiscard-status",
            f"function '{m.group(4)}' returns {m.group(3).split('<')[0]}"
            " but is not [[nodiscard]]"))


def check_exceptions(rel, lines, violations):
    kw = re.compile(r"\b(throw|try|catch)\b")
    for idx, line in enumerate(lines):
        m = kw.search(line)
        if m:
            violations.append(Violation(
                rel, idx + 1, "no-exceptions",
                f"'{m.group(1)}' is forbidden in src/ — use Status/Result"
                " (DESIGN.md: the library is exception-free)"))


def check_stdio(rel, lines, violations):
    if rel in ALLOWLIST["no-raw-stdio"]:
        return
    pat = re.compile(r"std\s*::\s*(cout|cerr)\b")
    for idx, line in enumerate(lines):
        m = pat.search(line)
        if m:
            violations.append(Violation(
                rel, idx + 1, "no-raw-stdio",
                f"std::{m.group(1)} in library code — route diagnostics"
                " through util/logging.h or take an ostream* parameter"))


def check_thread(rel, lines, violations):
    if rel in ALLOWLIST["no-raw-thread"]:
        return
    pat = re.compile(r"std\s*::\s*(jthread|thread|async)\b")
    for idx, line in enumerate(lines):
        m = pat.search(line)
        if m:
            violations.append(Violation(
                rel, idx + 1, "no-raw-thread",
                f"std::{m.group(1)} outside util/thread_pool — use"
                " ThreadPool / ParallelFor"))


def receiver_identifiers(prefix):
    """Identifiers naming the receiver of `.value()`, rightmost first.

    For `std::move(*created[p])` returns [p, created]; for `schema` returns
    [schema]. Noise like std/move/casts is dropped.
    """
    idents = [t for t in IDENT_RE.findall(prefix)
              if t not in RECEIVER_NOISE]
    return list(reversed(idents[-2:])) if idents else []


def enclosing_scope_start(lines, idx):
    """Walks upward to the most recent line that closes a top-level block
    (`}` at column 0) — an approximation of the enclosing function start
    that matches the repo's 2-space indentation style."""
    for j in range(idx - 1, -1, -1):
        if lines[j].startswith("}"):
            return j
    return 0


def check_value(rel, lines, violations):
    ok_token = re.compile(r"\b(ok\s*\(\s*\)|SIGHT_ASSIGN_OR_RETURN|value_or)")
    for idx, line in enumerate(lines):
        for m in VALUE_RE.finditer(line):
            prefix = line[:m.start()]
            idents = receiver_identifiers(prefix)
            start = enclosing_scope_start(lines, idx)
            scope = lines[start:idx + 1]
            checked = False
            for scope_line in scope:
                if not ok_token.search(scope_line):
                    continue
                if not idents:
                    checked = True  # temporary receiver; ok() on same line
                    break
                if any(re.search(rf"\b{re.escape(i)}\b", scope_line)
                       for i in idents):
                    checked = True
                    break
            if not checked:
                name = idents[0] if idents else "<temporary>"
                violations.append(Violation(
                    rel, idx + 1, "checked-value",
                    f"naked .value() on '{name}' with no ok() check in the"
                    " enclosing scope — an errored Result aborts the"
                    " process"))


def multiline_matches(lines, pattern):
    """Yields 1-based line numbers where `pattern` matches the joined
    text. `\\s` in the pattern crosses newlines, so calls wrapped by
    clang-format (`RiskEngine::\\n    Create(...)`) still match; comments
    and strings were already blanked out by the caller."""
    text = "\n".join(lines)
    for m in re.finditer(pattern, text):
        yield text.count("\n", 0, m.start()) + 1


def check_direct_engine(rel, lines, violations):
    if rel in ALLOWLIST["no-direct-engine"]:
        return
    for line_no in multiline_matches(lines, r"\bRiskEngine\s*::\s*Create\b"):
        violations.append(Violation(
            rel, line_no, "no-direct-engine",
            "direct RiskEngine::Create outside src/service/ — go"
            " through RiskService (or the RiskSession adapter);"
            " see DESIGN.md §13"))


def check_hot_rebuild(rel, lines, violations):
    """Rule no-hot-rebuild: only service/ files are in scope — the carried
    StrangerEncodeCache (and its cold-rebuild fallback) lives below the
    service, so any Build here is a per-tick rebuild on the hot path."""
    if not rel.startswith("service/"):
        return
    if rel in ALLOWLIST["no-hot-rebuild"]:
        return
    for line_no in multiline_matches(
            lines, r"\bEncodedProfileTable\s*::\s*Build\b"):
        violations.append(Violation(
            rel, line_no, "no-hot-rebuild",
            "EncodedProfileTable::Build in service code rebuilds the"
            " encode every tick — go through the owner's carried"
            " StrangerEncodeCache (DESIGN.md §14)"))


def check_sleep_in_tests(rel, lines, violations):
    for line_no in multiline_matches(
            lines, r"std\s*::\s*this_thread\s*::\s*sleep_(?:for|until)\b"):
        violations.append(Violation(
            rel, line_no, "no-sleep-in-tests",
            "sleeping in a test races the scheduler and flakes under"
            " sanitizers — wait on the condition itself (WaitFor, a"
            " condition_variable predicate, or polling the published"
            " version)"))


RULES = {
    "nodiscard-status": check_nodiscard,
    "no-exceptions": check_exceptions,
    "no-raw-stdio": check_stdio,
    "checked-value": check_value,
    "no-raw-thread": check_thread,
    "no-direct-engine": check_direct_engine,
    "no-hot-rebuild": check_hot_rebuild,
}

# Rules applied to the tests/ tree (tests legitimately use raw stdio,
# threads, and direct engine access, so the src/ rules stay out).
TEST_RULES = {
    "no-sleep-in-tests": check_sleep_in_tests,
}


def lint_file(path, src_root, rules=None):
    rel = str(path.relative_to(src_root))
    text = strip_comments_and_strings(path.read_text(encoding="utf-8"))
    lines = text.splitlines()
    violations = []
    for check in (rules or RULES).values():
        check(rel, lines, violations)
    return violations


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=".",
                        help="repo root (lints <root>/src); default: cwd")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("paths", nargs="*",
                        help="specific files to lint (default: all of src/)")
    args = parser.parse_args(argv)

    if args.list_rules:
        for name in list(RULES) + list(TEST_RULES):
            print(name)
        return 0

    root = pathlib.Path(args.root)
    src_root = root / "src"
    tests_root = root / "tests"
    if args.paths:
        files = [(pathlib.Path(p), None) for p in args.paths]
    else:
        if not src_root.is_dir():
            print(f"sight-lint: no src/ under {root}", file=sys.stderr)
            return 2
        files = [(p, RULES) for p in sorted(src_root.rglob("*"))
                 if p.suffix in (".h", ".cc")]
        if tests_root.is_dir():
            files += [(p, TEST_RULES)
                      for p in sorted(tests_root.rglob("*"))
                      if p.suffix in (".h", ".cc")]

    all_violations = []
    errors = []
    for f, rules in files:
        if rules is TEST_RULES or (
                rules is None and tests_root in f.resolve().parents):
            rel_root, rules = tests_root, TEST_RULES
        else:
            try:
                rel_root = src_root if src_root in f.resolve().parents or \
                    f.is_relative_to(src_root) else f.parent
            except ValueError:
                rel_root = f.parent
            rules = RULES
        try:
            all_violations.extend(lint_file(f, rel_root, rules))
        except (OSError, UnicodeDecodeError) as e:
            errors.append(f"sight-lint: cannot lint {f}: {e}")

    if errors:
        # Tool failure, not a lint verdict: report everything and exit 2
        # so callers don't mistake a broken run for findings.
        for e in errors:
            print(e, file=sys.stderr)
        return 2
    for v in all_violations:
        print(v)
    if all_violations:
        print(f"sight-lint: {len(all_violations)} violation(s)",
              file=sys.stderr)
        return 1
    print(f"sight-lint: {len(files)} files clean", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
