#!/usr/bin/env python3
"""sight-analyzer: semantic cross-TU checks over compile_commands.json.

Where tools/sight_lint.py matches single-line regexes, this analyzer
builds a project-wide model — every function definition, its tokens, and
a cross-translation-unit call graph — and checks the invariants the
serving path actually relies on (DESIGN.md §15):

  epoch-discipline   Every non-const method of SocialGraph/ProfileTable/
                     VisibilityTable that writes member state must bump
                     mutation_epoch_ before every return that follows a
                     mutation. AssessCarry fingerprints are keyed on the
                     epochs; a missed bump silently serves stale reports.
  lock-discipline    No ParallelFor / ThreadPool::Submit / ThreadPool::
                     Wait — direct or via the call graph — while a mutex
                     scope in src/service/ is held (the drain-loop
                     deadlock class RiskServiceConfig::Validate
                     documents), no condition-variable wait with two or
                     more locks held, and no inconsistent lock
                     acquisition order across mutex pairs.
  hot-path-rebuild   Call-graph walk from the RiskService drain/assess
                     entry points: EncodedProfileTable::Build,
                     SimilarityMatrix::Compact, and ProfileCodec
                     construction may only be reached through the
                     sanctioned cold-rebuild fallbacks (the carried
                     caches of DESIGN.md §14), never from new call
                     sites. Replaces the textual no-hot-rebuild rule
                     with reachability.
  status-discipline  Semantic (not regex) check that every call to a
                     Status/Result<T>-returning function consumes the
                     result: a bare `Foo(...);` statement is flagged
                     even when macros or [[nodiscard]] gaps would let
                     the compiler miss it.

Frontends: with the libclang python bindings installed (python3-clang +
libclang), translation units are parsed by libclang and function bodies
are lifted from real cursors. Without them the built-in frontend — a
C++ tokenizer plus a scope-tracking function extractor tuned to this
repo's subset of C++20 — produces the same model. `--frontend` forces a
choice; the default autoselects.

Suppressions: a finding is waived by a comment on the same line or the
line above:

    // SIGHT_ANALYZER_OK(rule): reason

or by an entry in the baseline file (tools/sight_analyzer_baseline.json,
regenerate with --write-baseline). Both are reported in the summary so
waivers stay visible.

Usage:
  tools/sight_analyzer.py --root . --build-dir build          # all rules
  tools/sight_analyzer.py --rule epoch-discipline ...         # one rule
  tools/sight_analyzer.py --list-rules

Exit status: 0 clean, 1 findings, 2 tool error (missing/stale
compile_commands.json, unparseable TU, bad usage).
"""

import argparse
import json
import pathlib
import re
import sys
from collections import deque

# --------------------------------------------------------------------------
# Configuration: the semantic contract being enforced. Extend here (and
# document in DESIGN.md §15) when new classes/entry points join the
# serving path.

# Classes whose mutation epoch gates the AssessCarry fingerprints.
EPOCH_CLASSES = {"SocialGraph", "ProfileTable", "VisibilityTable"}
EPOCH_COUNTER = "mutation_epoch_"

# Container methods that mutate observable state when called on a member.
MUTATING_METHODS = {
    "resize", "push_back", "emplace_back", "emplace", "insert", "erase",
    "clear", "assign", "reserve", "pop_back", "swap", "try_emplace",
}

# Directory (relative to src/) whose lock scopes are analyzed.
LOCK_SCOPE_DIR = "service/"

LOCK_TYPES = {"lock_guard", "unique_lock", "scoped_lock", "shared_lock"}
CV_WAITS = {"wait", "wait_for", "wait_until"}
# Method names that block on a thread pool when the receiver names one.
POOL_BLOCKING_METHODS = {"Submit", "Wait"}

# Serving entry points for the hot-path walk: the background drain chain
# and the synchronous warm tick.
HOT_PATH_ENTRIES = {
    "RiskService::DrainShard",
    "RiskService::ApplyOwnerBatch",
    "RiskService::AssessLocked",
    "RiskService::AssessSync",
}

# Rebuild primitives the walk looks for.
HOT_REBUILD_QUALIFIED = {("EncodedProfileTable", "Build")}
HOT_REBUILD_METHODS = {"Compact"}  # resolves to SimilarityMatrix::Compact
HOT_REBUILD_CTORS = {"ProfileCodec"}

# Functions sanctioned to call rebuild primitives: the fingerprint-guarded
# cold fallbacks and the codec/matrix machinery itself (DESIGN.md §14/§15).
HOT_REBUILD_SANCTIONED = {
    "StrangerEncodeCache::Refresh",   # encode cold rebuild on epoch mismatch
    "ActiveLearner::Create",          # per-pool encode when the cache misses
    "PoolLearner::Create",            # CSR compaction of a newly built pool
    "SimilarityMatrix::MergeCompact", # falls back to Compact when never built
    "KModes::Cluster",                # string-path clustering encodes once
    "ValueFrequencyTable::Build",     # frequency tables own a codec
    "ValueFrequencyTable::BuildFromCodes",
    "ProfileSimilarity::Create",      # similarity setup owns a codec
}
# ... and everything defined in the codec's own translation unit.
HOT_REBUILD_SANCTIONED_FILES = {"graph/profile_codec.cc",
                                "graph/profile_codec.h"}

RULE_NAMES = ["epoch-discipline", "lock-discipline", "hot-path-rebuild",
              "status-discipline"]

SUPPRESS_RE = re.compile(
    r"SIGHT_ANALYZER_OK\(\s*([a-z-]+(?:\s*,\s*[a-z-]+)*)\s*\)")

CPP_KEYWORDS = {
    "if", "for", "while", "switch", "return", "sizeof", "alignof",
    "decltype", "new", "delete", "catch", "throw", "case", "do", "else",
    "goto", "co_await", "co_return", "co_yield", "static_assert",
    "alignas", "typeid", "noexcept", "requires", "assert", "defined",
}


class ToolError(Exception):
    """Environment/input problem: reported with exit code 2, never 1."""


# --------------------------------------------------------------------------
# Tokenizer


class Token:
    __slots__ = ("kind", "text", "line")

    def __init__(self, kind, text, line):
        self.kind = kind  # id | num | str | chr | punct
        self.text = text
        self.line = line

    def __repr__(self):
        return f"{self.text}@{self.line}"


MULTI_PUNCT = [
    "<<=", ">>=", "->*", "...", "::", "->", "++", "--", "<<", ">>", "<=",
    ">=", "==", "!=", "&&", "||", "+=", "-=", "*=", "/=", "%=", "&=",
    "|=", "^=",
]

ID_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
ID_CONT = ID_START | set("0123456789")


def tokenize(text, path="<buffer>"):
    """Tokens plus {line: set(rules)} suppressions and quoted includes."""
    tokens = []
    suppressions = {}
    includes = []  # (line, "quoted/path.h")
    pending_rules = set()  # carried forward to the next code token's line
    i, n = 0, len(text)
    line = 1

    def comment(body, at_line):
        m = SUPPRESS_RE.search(body)
        if m:
            rules = {r.strip() for r in m.group(1).split(",")}
            suppressions.setdefault(at_line, set()).update(rules)
            pending_rules.update(rules)

    def emit(token):
        # A suppression comment also covers the next code line, however
        # far below, so wrapped statements stay suppressible.
        if pending_rules:
            suppressions.setdefault(token.line, set()).update(pending_rules)
            pending_rules.clear()
        tokens.append(token)

    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
            continue
        if c in " \t\r\f\v":
            i += 1
            continue
        if c == "#" and (not tokens or tokens[-1].line != line):
            # Preprocessor directive: consume to EOL (honoring \-splices).
            start = i
            while i < n:
                if text[i] == "\\" and i + 1 < n and text[i + 1] == "\n":
                    i += 2
                    line += 1
                    continue
                if text[i] == "\n":
                    break
                i += 1
            directive = text[start:i]
            m = re.match(r'#\s*include\s*"([^"]+)"', directive)
            if m:
                includes.append((line, m.group(1)))
            continue
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            comment(text[i:j], line)
            i = j
            continue
        if c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            if j < 0:
                raise ToolError(f"{path}:{line}: unterminated block comment")
            body = text[i:j]
            comment(body, line)
            line += body.count("\n")
            i = j + 2
            continue
        if c == '"' or (c == "R" and text[i:i + 2] == 'R"'):
            if c == "R":
                m = re.match(r'R"([^()\s\\]*)\(', text[i:])
                if m:
                    delim = m.group(1)
                    end = text.find(f"){delim}\"", i + m.end())
                    if end < 0:
                        raise ToolError(
                            f"{path}:{line}: unterminated raw string")
                    lit = text[i:end + len(delim) + 2]
                    emit(Token("str", '""', line))
                    line += lit.count("\n")
                    i = end + len(delim) + 2
                    continue
                # plain identifier starting with R
            if c == '"':
                j = i + 1
                while j < n:
                    if text[j] == "\\":
                        j += 2
                        continue
                    if text[j] == '"' or text[j] == "\n":
                        break
                    j += 1
                emit(Token("str", '""', line))
                i = j + 1 if j < n and text[j] == '"' else j
                continue
        if c == "'":
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == "'" or text[j] == "\n":
                    break
                j += 1
            emit(Token("chr", "''", line))
            i = j + 1 if j < n and text[j] == "'" else j
            continue
        if c in ID_START:
            j = i + 1
            while j < n and text[j] in ID_CONT:
                j += 1
            emit(Token("id", text[i:j], line))
            i = j
            continue
        if c.isdigit() or (c == "." and i + 1 < n and text[i + 1].isdigit()):
            j = i + 1
            while j < n and (text[j] in ID_CONT or text[j] == "." or
                             (text[j] in "+-" and text[j - 1] in "eEpP")):
                j += 1
            emit(Token("num", text[i:j], line))
            i = j
            continue
        for p in MULTI_PUNCT:
            if text.startswith(p, i):
                emit(Token("punct", p, line))
                i += len(p)
                break
        else:
            emit(Token("punct", c, line))
            i += 1
    return tokens, suppressions, includes


# --------------------------------------------------------------------------
# Function model


class Function:
    def __init__(self, file, line, cls, name, is_const, body, ret_tokens):
        self.file = file          # repo-relative path
        self.line = line
        self.cls = cls            # enclosing/qualifying class or None
        self.name = name
        self.is_const = is_const
        self.body = body          # tokens including outer braces
        self.ret_tokens = ret_tokens
        self.calls = None         # lazy: list of Call

    @property
    def qualname(self):
        return f"{self.cls}::{self.name}" if self.cls else self.name

    def returns_status(self):
        for t in self.ret_tokens:
            if t.kind == "id" and t.text in ("Status", "Result"):
                return True
        return False


class Call:
    __slots__ = ("name", "qual", "receiver", "idx", "line")

    def __init__(self, name, qual, receiver, idx, line):
        self.name = name
        self.qual = qual          # "Cls" for Cls::name(...), else None
        self.receiver = receiver  # textual receiver for x.name()/x->name()
        self.idx = idx            # token index of the name within the body
        self.line = line


def match_group(tokens, i, open_t, close_t):
    """Index just past the group's closing token; tokens[i] == open_t."""
    depth = 0
    n = len(tokens)
    while i < n:
        t = tokens[i].text
        if t == open_t:
            depth += 1
        elif t == close_t:
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    raise ToolError("unbalanced group")


def skip_template_args(tokens, i):
    """tokens[i] == '<': best-effort skip of a template argument list.
    Returns index past '>' or i when it does not look like one."""
    depth = 0
    j = i
    n = len(tokens)
    while j < n and j < i + 400:
        t = tokens[j].text
        if t == "<":
            depth += 1
        elif t in (">", ">>"):
            depth -= 2 if t == ">>" else 1
            if depth <= 0:
                return j + 1
        elif t in (";", "{", "}") :
            return i
        j += 1
    return i


def extract_functions(tokens, rel_path):
    """Scope-tracking scan: function definitions and declarations.

    Returns (functions, declarations) where declarations are Function
    records with empty bodies (used for the Status/Result return map).
    """
    funcs, decls = [], []
    n = len(tokens)
    # scope stack entries: (kind, name, depth_at_open)
    scopes = []
    depth = 0
    i = 0
    stmt_start = 0

    def current_class():
        for kind, name, _ in reversed(scopes):
            if kind == "class":
                return name
        return None

    def parse_candidate(start, name_idx):
        """tokens[name_idx] is the id right before '('. Returns the index
        to resume at, or None when this is not a function."""
        # Qualified name: walk back over (id ::)* pairs.
        cls = None
        k = name_idx
        while k - 2 >= start and tokens[k - 1].text == "::" and \
                tokens[k - 2].kind == "id":
            cls = tokens[k - 2].text
            k -= 2
        head_end = k
        name = tokens[name_idx].text
        # Reject obvious non-declarations: head must not contain control
        # keywords or assignment (those appear in expressions, not decls).
        for t in tokens[start:head_end]:
            if t.text in CPP_KEYWORDS or t.text in ("=",):
                return None
        j = match_group(tokens, name_idx + 1, "(", ")")
        is_const = False
        while j < n:
            t = tokens[j].text
            if t == "const":
                is_const = True
                j += 1
            elif t in ("noexcept", "override", "final", "&", "&&",
                       "mutable", "volatile", "throw"):
                j += 1
                if j < n and tokens[j].text == "(":
                    j = match_group(tokens, j, "(", ")")
            elif t == "->":  # trailing return type
                j += 1
                while j < n and tokens[j].text not in ("{", ";", "="):
                    if tokens[j].text == "<":
                        j = skip_template_args(tokens, j)
                    else:
                        j += 1
            else:
                break
        if j >= n:
            return None
        t = tokens[j].text
        ret = [tok for tok in tokens[start:head_end]]
        enclosing = current_class()
        qual_cls = cls or enclosing
        if t == ";":
            decls.append(Function(rel_path, tokens[name_idx].line, qual_cls,
                                  name, is_const, [], ret))
            return j + 1
        if t == "=":
            # = default / = delete / = 0  → declaration-ish
            while j < n and tokens[j].text != ";":
                j += 1
            decls.append(Function(rel_path, tokens[name_idx].line, qual_cls,
                                  name, is_const, [], ret))
            return j + 1 if j < n else j
        if t == ":":
            # Constructor initializer list: name(args) or name{args} pairs.
            j += 1
            while j < n:
                while j < n and tokens[j].text not in ("(", "{", ";"):
                    if tokens[j].text == "<":
                        j = skip_template_args(tokens, j)
                    else:
                        j += 1
                if j >= n or tokens[j].text == ";":
                    return None
                close = ")" if tokens[j].text == "(" else "}"
                j = match_group(tokens, j, tokens[j].text, close)
                if j < n and tokens[j].text == ",":
                    j += 1
                    continue
                break
            if j >= n or tokens[j].text != "{":
                return None
            t = "{"
        if t == "{":
            end = match_group(tokens, j, "{", "}")
            funcs.append(Function(rel_path, tokens[name_idx].line, qual_cls,
                                  name, is_const, tokens[j:end], ret))
            return end
        return None

    while i < n:
        t = tokens[i]
        if t.kind == "id" and t.text == "namespace":
            j = i + 1
            while j < n and tokens[j].kind == "id" or \
                    (j < n and tokens[j].text == "::"):
                j += 1
            if j < n and tokens[j].text == "{":
                name = tokens[i + 1].text if tokens[i + 1].kind == "id" \
                    else ""
                scopes.append(("namespace", name, depth))
                depth += 1
                i = j + 1
                stmt_start = i
                continue
        if t.kind == "id" and t.text in ("class", "struct") and \
                not (i > 0 and tokens[i - 1].text == "enum"):
            j = i + 1
            name = None
            while j < n and tokens[j].text not in ("{", ";", "("):
                if tokens[j].kind == "id" and tokens[j].text not in (
                        "final", "alignas", "public", "private",
                        "protected", "virtual"):
                    if name is None:
                        name = tokens[j].text
                elif tokens[j].text == "<":
                    j = skip_template_args(tokens, j)
                    continue
                j += 1
            if j < n and tokens[j].text == "{" and name is not None:
                scopes.append(("class", name, depth))
                depth += 1
                i = j + 1
                stmt_start = i
                continue
            # fwd declaration / variable of class type: fall through
        if t.kind == "id" and t.text == "enum":
            # enum [class] Name [: type] { ... };  — skip the body.
            j = i + 1
            while j < n and tokens[j].text not in ("{", ";"):
                j += 1
            if j < n and tokens[j].text == "{":
                j = match_group(tokens, j, "{", "}")
            i = j
            stmt_start = i
            continue
        if t.kind == "id" and t.text == "template":
            if i + 1 < n and tokens[i + 1].text == "<":
                i = skip_template_args(tokens, i + 1)
                continue
        if t.text == "{":
            depth += 1
            scopes.append(("block", "", depth - 1))
            i += 1
            stmt_start = i
            continue
        if t.text == "}":
            depth -= 1
            while scopes and scopes[-1][2] >= depth:
                scopes.pop()
            i += 1
            stmt_start = i
            continue
        if t.text == ";":
            i += 1
            stmt_start = i
            continue
        if t.kind == "id" and t.text == "operator":
            # operator<sym>(...) — consume symbol tokens up to '('.
            j = i + 1
            while j < n and tokens[j].text != "(":
                j += 1
            if j < n:
                resumed = parse_candidate(stmt_start, j - 1) \
                    if tokens[j - 1].kind == "id" else None
                if resumed is None:
                    # Treat as declaration-ish; skip to ; or body.
                    k = match_group(tokens, j, "(", ")")
                    while k < n and tokens[k].text not in (";", "{"):
                        k += 1
                    if k < n and tokens[k].text == "{":
                        k = match_group(tokens, k, "{", "}")
                    i = k
                else:
                    i = resumed
                stmt_start = i
                continue
        if t.kind == "id" and t.text not in CPP_KEYWORDS and \
                i + 1 < n and tokens[i + 1].text == "(":
            resumed = parse_candidate(stmt_start, i)
            if resumed is not None:
                i = resumed
                stmt_start = i
                continue
        i += 1
    return funcs, decls


MACRO_RE = re.compile(r"^[A-Z][A-Z0-9_]*$")


def extract_calls(fn):
    """Call expressions in a function body (memoized on the Function)."""
    if fn.calls is not None:
        return fn.calls
    calls = []
    toks = fn.body
    n = len(toks)
    for i, t in enumerate(toks):
        if t.kind != "id" or t.text in CPP_KEYWORDS:
            continue
        if i + 1 >= n or toks[i + 1].text != "(":
            continue
        if MACRO_RE.match(t.text) and "_" in t.text:
            continue  # SIGHT_CHECK(...) etc: arguments still scanned
        qual = None
        receiver = None
        if i >= 2 and toks[i - 1].text == "::" and toks[i - 2].kind == "id":
            qual = toks[i - 2].text
        elif i >= 1 and toks[i - 1].text in (".", "->"):
            j = i - 1
            parts = [toks[i - 1].text]
            while j > 0:
                p = toks[j - 1]
                if p.kind == "id" and p.text in CPP_KEYWORDS and \
                        p.text != "this":
                    break
                if p.kind in ("id", "num") or p.text in (
                        ".", "->", "::", "this"):
                    parts.append(p.text)
                    j -= 1
                    continue
                if p.text in (")", "]"):
                    # Include a call/index group only when it belongs to
                    # a postfix expression (id right before the opener),
                    # so `if (cond) x->Wait()` keeps receiver == "x->".
                    bal = 1
                    closer = p.text
                    opener = "(" if closer == ")" else "["
                    k = j - 1
                    group = [p.text]
                    while k > 0 and bal > 0:
                        q = toks[k - 1].text
                        if q == closer:
                            bal += 1
                        elif q == opener:
                            bal -= 1
                        group.append(q)
                        k -= 1
                    before = toks[k - 1] if k > 0 else None
                    if before is not None and (
                            before.kind == "id" and
                            before.text not in CPP_KEYWORDS or
                            before.text in ("]", ")")):
                        parts.extend(group)
                        j = k
                        continue
                    break
                break
            receiver = "".join(reversed(parts))
        calls.append(Call(t.text, qual, receiver, i, t.line))
    fn.calls = calls
    return calls


# --------------------------------------------------------------------------
# Project model


class Model:
    def __init__(self):
        self.functions = []         # all Function definitions
        self.by_qual = {}           # qualname -> [Function]
        self.methods_by_name = {}   # bare name -> set(qualname)
        self.status_names = {}      # name -> True (all status) / False
        self.status_quals = set()   # qualnames returning Status/Result
        self.suppressions = {}      # rel_path -> {line: set(rules)}
        self.files = set()

    def add_file(self, rel_path, funcs, decls, suppressions):
        self.files.add(rel_path)
        if suppressions:
            self.suppressions.setdefault(rel_path, {})
            for line, rules in suppressions.items():
                self.suppressions[rel_path].setdefault(line, set()).update(
                    rules)
        for fn in funcs:
            self.functions.append(fn)
            self.by_qual.setdefault(fn.qualname, []).append(fn)
            self.methods_by_name.setdefault(fn.name, set()).add(fn.qualname)
        for d in list(decls) + list(funcs):
            is_status = d.returns_status()
            if d.name in self.status_names:
                self.status_names[d.name] = \
                    self.status_names[d.name] and is_status
            else:
                self.status_names[d.name] = is_status
            if is_status:
                self.status_quals.add(d.qualname)

    def resolve(self, fn, call):
        """Possible callee qualnames for a call, conservative union."""
        out = set()
        if call.qual is not None:
            q = f"{call.qual}::{call.name}"
            if q in self.by_qual:
                out.add(q)
            return out
        if call.receiver is not None:
            return set(self.methods_by_name.get(call.name, ()))
        # Plain name: same-class method first, then a free function,
        # then any method with that name.
        if fn.cls and f"{fn.cls}::{call.name}" in self.by_qual:
            out.add(f"{fn.cls}::{call.name}")
            return out
        if call.name in self.by_qual:
            out.add(call.name)
            return out
        return set(self.methods_by_name.get(call.name, ()))

    def is_suppressed(self, rel_path, line, rule):
        per_file = self.suppressions.get(rel_path)
        if not per_file:
            return False
        for ln in (line, line - 1):
            rules = per_file.get(ln)
            if rules and (rule in rules or "all" in rules):
                return True
        return False


class Finding:
    def __init__(self, rule, file, line, function, detail, message):
        self.rule = rule
        self.file = file
        self.line = line
        self.function = function
        self.detail = detail      # stable discriminator (no line numbers)
        self.message = message

    def key(self):
        return f"{self.rule}|{self.file}|{self.function}|{self.detail}"

    def __str__(self):
        return f"{self.file}:{self.line}: [{self.rule}] {self.message}"


# --------------------------------------------------------------------------
# Frontends


def load_compile_commands(build_dir):
    cc_path = build_dir / "compile_commands.json"
    if not cc_path.is_file():
        raise ToolError(
            f"no compile_commands.json under {build_dir} — configure the "
            "build first: `cmake -B build -S .` "
            "(CMAKE_EXPORT_COMPILE_COMMANDS is ON by default; see "
            "README 'Linting & CI')")
    try:
        entries = json.loads(cc_path.read_text(encoding="utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as e:
        raise ToolError(f"{cc_path}: not valid JSON ({e}) — re-run the "
                        "cmake configure step")
    return entries, cc_path


def command_args(entry):
    if "arguments" in entry:
        return list(entry["arguments"])
    return entry.get("command", "").split()


def include_dirs_of(entry):
    dirs = []
    args = command_args(entry)
    for k, a in enumerate(args):
        if a.startswith("-I") and len(a) > 2:
            dirs.append(a[2:])
        elif a == "-I" and k + 1 < len(args):
            dirs.append(args[k + 1])
        elif a.startswith("-isystem") and len(a) > 8:
            dirs.append(a[8:])
    return dirs


def gather_tus(entries, cc_path, root, src_root):
    """Validated TU list: (abs_path, include_dirs). Raises ToolError for
    stale entries (deleted sources, renamed headers)."""
    tus = []
    problems = []
    for entry in entries:
        f = pathlib.Path(entry["file"])
        if not f.is_absolute():
            f = pathlib.Path(entry.get("directory", ".")) / f
        try:
            f.relative_to(src_root)
        except ValueError:
            continue  # tests/bench/examples: out of scope
        if not f.is_file():
            problems.append(
                f"{cc_path.name} lists {f}, which no longer exists — the "
                "compile commands are stale; re-run the cmake configure "
                "step to regenerate them")
            continue
        tus.append((f, include_dirs_of(entry)))
    if problems:
        raise ToolError("\n".join(problems))
    if not tus:
        raise ToolError(
            f"{cc_path} contains no translation units under {src_root} — "
            "wrong --build-dir, or the project layout changed")
    return tus


def check_includes(tu_path, includes, include_dirs, src_root):
    problems = []
    for line, inc in includes:
        candidates = [tu_path.parent / inc]
        candidates += [pathlib.Path(d) / inc for d in include_dirs]
        candidates.append(src_root / inc)
        if not any(c.is_file() for c in candidates):
            problems.append(
                f"{tu_path}:{line}: include \"{inc}\" cannot be resolved "
                "against the TU's include directories — a header was "
                "renamed or removed after the last cmake configure; "
                "re-run the configure step (and fix the include if it is "
                "genuinely gone)")
    return problems


def build_model_internal(tus, root, src_root):
    """Built-in frontend: parse every TU plus every header under src/."""
    model = Model()
    problems = []
    seen = set()

    def parse_one(path):
        rel = str(path.relative_to(root)) if root in path.parents \
            else str(path)
        if rel in seen:
            return None
        seen.add(rel)
        try:
            text = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as e:
            problems.append(f"{path}: unreadable ({e})")
            return None
        try:
            tokens, suppressions, includes = tokenize(text, str(path))
            funcs, decls = extract_functions(tokens, rel)
        except ToolError as e:
            problems.append(
                f"failed to parse {path}: {e} — the file may use syntax "
                "outside the analyzer's C++ subset; fix the construct, "
                "install the libclang frontend, or suppress the file")
            return None
        except RecursionError:
            problems.append(f"failed to parse {path}: nesting too deep")
            return None
        model.add_file(rel, funcs, decls, suppressions)
        return includes

    for tu_path, inc_dirs in tus:
        includes = parse_one(tu_path)
        if includes is not None:
            problems.extend(
                check_includes(tu_path, includes, inc_dirs, src_root))
    for header in sorted(src_root.rglob("*.h")):
        parse_one(header)
    if problems:
        raise ToolError("\n".join(problems))
    return model


def build_model_libclang(tus, root, src_root):
    """libclang frontend: real TU parses, same model shape."""
    from clang import cindex  # noqa: import guarded by caller

    model = Model()
    index = cindex.Index.create()
    parsed_files = set()

    def lift_tokens(tu, extent):
        out = []
        for tok in tu.get_tokens(extent=extent):
            kind = {
                cindex.TokenKind.IDENTIFIER: "id",
                cindex.TokenKind.KEYWORD: "id",
                cindex.TokenKind.LITERAL: "num",
                cindex.TokenKind.PUNCTUATION: "punct",
            }.get(tok.kind)
            if kind is None:
                continue  # comments handled via the raw-text scan
            text = tok.spelling
            if kind == "num" and text.startswith(('"', "'")):
                kind, text = "str", '""'
            out.append(Token(kind, text, tok.location.line))
        return out

    def visit(cursor, tu):
        for c in cursor.get_children():
            loc_file = c.location.file
            if loc_file is None:
                continue
            p = pathlib.Path(loc_file.name)
            try:
                p.relative_to(src_root)
            except ValueError:
                continue
            if c.kind in (cindex.CursorKind.NAMESPACE,
                          cindex.CursorKind.CLASS_DECL,
                          cindex.CursorKind.STRUCT_DECL,
                          cindex.CursorKind.UNEXPOSED_DECL):
                visit(c, tu)
                continue
            if c.kind in (cindex.CursorKind.CXX_METHOD,
                          cindex.CursorKind.FUNCTION_DECL,
                          cindex.CursorKind.CONSTRUCTOR,
                          cindex.CursorKind.DESTRUCTOR):
                rel = str(p.relative_to(root)) if root in p.parents \
                    else str(p)
                cls = None
                parent = c.semantic_parent
                if parent is not None and parent.kind in (
                        cindex.CursorKind.CLASS_DECL,
                        cindex.CursorKind.STRUCT_DECL):
                    cls = parent.spelling
                is_const = c.kind == cindex.CursorKind.CXX_METHOD and \
                    c.is_const_method()
                ret = [Token("id", w, c.location.line)
                       for w in re.findall(r"\w+",
                                           c.result_type.spelling or "")]
                body = []
                if c.is_definition():
                    for child in c.get_children():
                        if child.kind == cindex.CursorKind.COMPOUND_STMT:
                            body = lift_tokens(tu, child.extent)
                fn = Function(rel, c.location.line, cls, c.spelling,
                              is_const, body, ret)
                key = (rel, c.location.line, fn.qualname, bool(body))
                if key not in parsed_files:
                    parsed_files.add(key)
                    model.add_file(rel, [fn] if body else [],
                                   [fn] if not body else [], {})

    problems = []
    for tu_path, inc_dirs in tus:
        args = ["-std=c++20", "-xc++"] + [f"-I{d}" for d in inc_dirs]
        try:
            tu = index.parse(str(tu_path), args=args)
        except cindex.TranslationUnitLoadError as e:
            problems.append(f"libclang failed to load {tu_path}: {e}")
            continue
        fatal = [d for d in tu.diagnostics if d.severity >=
                 cindex.Diagnostic.Fatal]
        if fatal:
            problems.append(
                f"libclang could not parse {tu_path}: "
                + "; ".join(d.spelling for d in fatal))
            continue
        visit(tu.cursor, tu)
    if problems:
        raise ToolError("\n".join(problems))
    # Suppressions and includes still come from the raw text.
    for rel in list(model.files):
        p = root / rel
        try:
            _, suppressions, _ = tokenize(p.read_text(encoding="utf-8"),
                                          str(p))
        except (OSError, ToolError, UnicodeDecodeError):
            continue
        model.add_file(rel, [], [], suppressions)
    return model


def build_model(tus, root, src_root, frontend):
    if frontend == "internal":
        return build_model_internal(tus, root, src_root), "internal"
    try:
        import clang.cindex  # noqa: F401
        have_libclang = True
    except ImportError:
        have_libclang = False
    if frontend == "libclang":
        if not have_libclang:
            raise ToolError(
                "--frontend=libclang requested but the clang python "
                "bindings are not importable — install python3-clang and "
                "libclang (apt: python3-clang libclang-dev), or use "
                "--frontend=internal")
        return build_model_libclang(tus, root, src_root), "libclang"
    # auto
    if have_libclang:
        try:
            return build_model_libclang(tus, root, src_root), "libclang"
        except ToolError:
            raise
        except Exception as e:  # defensive: never lose the run to a
            print(f"sight-analyzer: libclang frontend failed ({e}); "
                  "falling back to the built-in frontend", file=sys.stderr)
    return build_model_internal(tus, root, src_root), "internal"


# --------------------------------------------------------------------------
# Rule: epoch-discipline


def token_is_member(text):
    return text.endswith("_") and len(text) > 1


def mutation_events(fn):
    """(idx, line, kind, what) for member writes; kind strong|weak|bump."""
    toks = fn.body
    n = len(toks)
    events = []
    assign_ops = {"=", "+=", "-=", "*=", "/=", "%=", "|=", "&=", "^=",
                  "<<=", ">>="}
    for i, t in enumerate(toks):
        if t.kind != "id" or not token_is_member(t.text):
            continue
        is_counter = t.text == EPOCH_COUNTER
        prev = toks[i - 1].text if i > 0 else ""
        prev2 = toks[i - 2] if i > 1 else None
        kind = None
        # this->member_ is still a member access.
        if prev in (".", "->") and not (
                prev2 is not None and prev2.text == "this"):
            continue  # someone else's field (state->mutex etc.)
        j = i + 1
        if prev in ("++", "--"):
            kind = "strong"
        elif j < n and toks[j].text in ("++", "--"):
            kind = "strong"
        elif j < n and toks[j].text in assign_ops:
            kind = "strong"
        elif j < n and toks[j].text == "[":
            k = match_group(toks, j, "[", "]")
            if k < n and (toks[k].text in assign_ops or
                          toks[k].text in ("++", "--")):
                kind = "strong"
            elif k + 1 < n and toks[k].text == "." and \
                    toks[k + 1].text in MUTATING_METHODS:
                kind = "strong"
        elif j + 1 < n and toks[j].text == "." and \
                toks[j + 1].text in MUTATING_METHODS and \
                j + 2 < n and toks[j + 2].text == "(":
            kind = "strong"
        elif prev == "&" and (prev2 is None or prev2.kind not in
                              ("id", "num") and prev2.text not in (")", "]")):
            kind = "weak"
        if kind is None:
            continue
        if is_counter:
            if kind == "strong":
                events.append((i, t.line, "bump", t.text))
        else:
            events.append((i, t.line, kind, t.text))
    return events


def return_positions(fn):
    toks = fn.body
    out = [i for i, t in enumerate(toks)
           if t.kind == "id" and t.text == "return"]
    out.append(len(toks))  # implicit end-of-body exit
    return out


def rule_epoch(model, findings):
    for fn in model.functions:
        if fn.cls not in EPOCH_CLASSES or fn.is_const or not fn.body:
            continue
        if fn.name == fn.cls or fn.name == f"~{fn.cls}" or \
                fn.name.startswith("operator"):
            continue
        events = mutation_events(fn)
        strong = [e for e in events if e[2] == "strong"]
        weak = [e for e in events if e[2] == "weak"]
        bumps = [e for e in events if e[2] == "bump"]
        if not strong and not weak:
            continue
        if not bumps:
            first = (strong or weak)[0]
            findings.append(Finding(
                "epoch-discipline", fn.file, first[1], fn.qualname,
                f"no-bump:{first[3]}",
                f"{fn.qualname} writes member state ('{first[3]}') but "
                f"never bumps {EPOCH_COUNTER} — carried caches keyed on "
                "the epoch will serve stale data (DESIGN.md §14/§15)"))
            continue
        if not strong:
            continue  # aliased writes: any bump in the method suffices
        bump_positions = [e[0] for e in bumps]
        for r in return_positions(fn):
            muts_before = [e for e in strong if e[0] < r]
            if not muts_before:
                continue
            if any(b < r for b in bump_positions):
                continue
            line = fn.body[r].line if r < len(fn.body) else muts_before[-1][1]
            findings.append(Finding(
                "epoch-discipline", fn.file, line, fn.qualname,
                f"path:{muts_before[-1][3]}",
                f"{fn.qualname} can return after mutating "
                f"'{muts_before[-1][3]}' without bumping {EPOCH_COUNTER} "
                "on that path (DESIGN.md §15)"))
            break  # one path finding per method is enough


# --------------------------------------------------------------------------
# Rule: lock-discipline


def direct_blocking_events(fn):
    """(idx, line, kind, label): kind pool-block | cv-wait."""
    events = []
    for call in extract_calls(fn):
        if call.name == "ParallelFor" and call.receiver is None:
            events.append((call.idx, call.line, "pool-block", "ParallelFor"))
        elif call.name in POOL_BLOCKING_METHODS and call.receiver and \
                "pool" in call.receiver.lower():
            events.append((call.idx, call.line, "pool-block",
                           f"{call.receiver}{call.name}()"))
        elif call.name in CV_WAITS and call.receiver:
            events.append((call.idx, call.line, "cv-wait",
                           f"{call.receiver}{call.name}()"))
    return events


def compute_reaches_blocking(model):
    """qualname -> (primitive_label, next_hop or None) witness map."""
    reaches = {}
    worklist = deque()
    for fn in model.functions:
        for _, _, kind, label in direct_blocking_events(fn):
            if fn.qualname not in reaches:
                reaches[fn.qualname] = (label, None)
                worklist.append(fn.qualname)
            break
    # Reverse edges by scanning all calls once.
    callers_of = {}
    for fn in model.functions:
        for call in extract_calls(fn):
            for target in model.resolve(fn, call):
                callers_of.setdefault(target, set()).add(fn.qualname)
    while worklist:
        q = worklist.popleft()
        label, _ = reaches[q]
        for caller in callers_of.get(q, ()):
            if caller not in reaches:
                reaches[caller] = (label, q)
                worklist.append(caller)
    return reaches


def witness_chain(reaches, start, limit=6):
    chain = [start]
    label, nxt = reaches[start]
    while nxt is not None and len(chain) < limit:
        chain.append(nxt)
        label, nxt = reaches[nxt]
    return " -> ".join(chain + [label])


def lock_scopes_walk(fn, on_event):
    """Simulates lock scopes over the body; calls on_event(idx, active)
    for every token index, where active is the list of held mutexes
    (normalized text, acquisition order)."""
    toks = fn.body
    n = len(toks)
    depth = 0
    active = []  # (var, mutex_text, depth)
    i = 0
    while i < n:
        t = toks[i]
        if t.text == "{":
            depth += 1
            i += 1
            continue
        if t.text == "}":
            depth -= 1
            while active and active[-1][2] > depth:
                active.pop()
            i += 1
            continue
        if t.kind == "id" and t.text in LOCK_TYPES:
            j = i + 1
            if j < n and toks[j].text == "<":
                j = skip_template_args(toks, j)
            if j < n and toks[j].kind == "id" and j + 1 < n and \
                    toks[j + 1].text == "(":
                var = toks[j].text
                end = match_group(toks, j + 1, "(", ")")
                args = toks[j + 2:end - 1]
                # scoped_lock may hold several mutexes: split on top commas
                mutexes = []
                cur = []
                bal = 0
                for a in args:
                    if a.text in ("(", "[", "<"):
                        bal += 1
                    elif a.text in (")", "]", ">"):
                        bal -= 1
                    if a.text == "," and bal == 0:
                        mutexes.append(cur)
                        cur = []
                    else:
                        cur.append(a)
                if cur:
                    mutexes.append(cur)
                for m in mutexes:
                    text = "".join(x.text for x in m)
                    text = text.replace("this->", "")
                    if text in ("std::adopt_lock", "std::defer_lock",
                                "std::try_to_lock"):
                        continue
                    active.append((var, text, depth))
                i = end
                continue
        if t.kind == "id" and i + 2 < n and toks[i + 1].text == "." and \
                toks[i + 2].text == "unlock":
            active = [a for a in active if a[0] != t.text]
            i += 3
            continue
        on_event(i, [a[1] for a in active])
        i += 1


def rule_lock(model, findings):
    reaches = compute_reaches_blocking(model)
    order_pairs = {}  # (first, second) -> (file, line, function)

    for fn in model.functions:
        in_scope = fn.file.startswith("src/" + LOCK_SCOPE_DIR)
        calls_by_idx = {c.idx: c for c in extract_calls(fn)}
        events = direct_blocking_events(fn)
        direct_by_idx = {e[0]: e for e in events}
        last_active = [[]]

        def on_event(idx, active, fn=fn, calls_by_idx=calls_by_idx,
                     direct_by_idx=direct_by_idx, in_scope=in_scope,
                     last_active=last_active):
            if len(active) > len(last_active[0]) and len(active) >= 2:
                pair = (active[-2], active[-1])
                if pair[0] != pair[1] and pair not in order_pairs:
                    tok = fn.body[idx]
                    order_pairs[pair] = (fn.file, tok.line, fn.qualname)
            last_active[0] = list(active)
            if not in_scope or not active:
                return
            direct = direct_by_idx.get(idx)
            if direct is not None:
                _, line, kind, label = direct
                if kind == "pool-block":
                    findings.append(Finding(
                        "lock-discipline", fn.file, line, fn.qualname,
                        f"block:{label}",
                        f"{fn.qualname} calls {label} while holding "
                        f"{', '.join(active)} — a drain task waiting on "
                        "the pool it runs inside deadlocks "
                        "(DESIGN.md §13/§15)"))
                elif kind == "cv-wait" and len(active) >= 2:
                    findings.append(Finding(
                        "lock-discipline", fn.file, line, fn.qualname,
                        f"cv:{label}",
                        f"{fn.qualname} waits on {label} with "
                        f"{len(active)} locks held "
                        f"({', '.join(active)}) — the wait releases only "
                        "its own lock; the others stay held across the "
                        "block (DESIGN.md §15)"))
                return
            call = calls_by_idx.get(idx)
            if call is None:
                return
            for target in model.resolve(fn, call):
                if target == fn.qualname:
                    continue
                if target in reaches:
                    chain = witness_chain(reaches, target)
                    findings.append(Finding(
                        "lock-discipline", fn.file, call.line, fn.qualname,
                        f"reach:{call.name}",
                        f"{fn.qualname} calls {call.name} while holding "
                        f"{', '.join(active)}, and {chain} can block on "
                        "the worker pool or a condition variable "
                        "(DESIGN.md §15)"))
                    break

        lock_scopes_walk(fn, on_event)

    for (a, b), (file, line, function) in sorted(order_pairs.items()):
        if (b, a) in order_pairs:
            other = order_pairs[(b, a)]
            findings.append(Finding(
                "lock-discipline", file, line, function,
                f"order:{a}|{b}",
                f"inconsistent lock order: {function} acquires "
                f"'{a}' then '{b}' but {other[2]} "
                f"({other[0]}:{other[1]}) acquires them in the opposite "
                "order — ABBA deadlock (DESIGN.md §15)"))


# --------------------------------------------------------------------------
# Rule: hot-path-rebuild


def rebuild_primitive_events(fn):
    """(line, label, detail) for rebuild primitives in a body."""
    events = []
    toks = fn.body
    n = len(toks)
    for call in extract_calls(fn):
        if (call.qual, call.name) in HOT_REBUILD_QUALIFIED:
            events.append((call.line, f"{call.qual}::{call.name}",
                           f"{call.qual}::{call.name}"))
        elif call.name in HOT_REBUILD_METHODS and call.receiver is not None:
            events.append((call.line, f"{call.receiver}{call.name}()",
                           f"method:{call.name}"))
    for i, t in enumerate(toks):
        if t.kind == "id" and t.text in HOT_REBUILD_CTORS:
            j = i + 1
            if j < n and toks[j].kind == "id":
                j += 1  # declaration form: ProfileCodec codec(...)
            if j < n and toks[j].text == "(" and \
                    (i == 0 or toks[i - 1].text not in ("::", ".", "->",
                                                        "class", "struct")):
                events.append((t.line, f"{t.text} construction",
                               f"ctor:{t.text}"))
    return events


def rule_hot_path(model, findings):
    # BFS over the call graph from the serving entry points.
    parent = {}
    queue = deque()
    for entry in sorted(HOT_PATH_ENTRIES):
        if entry in model.by_qual:
            parent[entry] = None
            queue.append(entry)
    visited_calls = set()
    while queue:
        q = queue.popleft()
        for fn in model.by_qual.get(q, ()):
            for call in extract_calls(fn):
                key = (q, call.name, call.qual)
                if key in visited_calls:
                    continue
                visited_calls.add(key)
                for target in model.resolve(fn, call):
                    if target not in parent:
                        parent[target] = q
                        queue.append(target)

    def chain_of(qual):
        chain = []
        cur = qual
        while cur is not None and len(chain) < 12:
            chain.append(cur)
            cur = parent.get(cur)
        return " -> ".join(reversed(chain))

    for qual in sorted(parent):
        if qual in HOT_REBUILD_SANCTIONED:
            continue
        for fn in model.by_qual.get(qual, ()):
            if fn.file.removeprefix("src/") in HOT_REBUILD_SANCTIONED_FILES:
                continue
            for line, label, detail in rebuild_primitive_events(fn):
                findings.append(Finding(
                    "hot-path-rebuild", fn.file, line, fn.qualname,
                    detail,
                    f"{label} is reachable from the serving path "
                    f"({chain_of(qual)}) outside the sanctioned "
                    "cold-rebuild fallbacks — per-tick rebuilds belong "
                    "to the carried caches (DESIGN.md §14/§15)"))


# --------------------------------------------------------------------------
# Rule: status-discipline


def rule_status(model, findings):
    for fn in model.functions:
        toks = fn.body
        n = len(toks)
        # Statement boundaries: ; { } at any nesting level.
        start = 0
        i = 0
        while i < n:
            t = toks[i].text
            if t in ("{", "}", ";"):
                if t == ";" and i > start:
                    check_statement(model, fn, toks, start, i, findings)
                start = i + 1
            elif t == "(":
                i = match_group(toks, i, "(", ")") - 1
            i += 1


def check_statement(model, fn, toks, start, end, findings):
    """Flags `receiver.Foo(...);` / `Foo(...);` statements discarding a
    Status/Result return. `end` indexes the terminating ';'."""
    if toks[end - 1].text != ")":
        return
    # Find the matching '(' of the final call.
    bal = 0
    j = end - 1
    while j >= start:
        if toks[j].text == ")":
            bal += 1
        elif toks[j].text == "(":
            bal -= 1
            if bal == 0:
                break
        j -= 1
    if j <= start or toks[j - 1].kind != "id":
        return
    name_idx = j - 1
    name = toks[name_idx].text
    if name in CPP_KEYWORDS or (MACRO_RE.match(name) and "_" in name):
        return
    # Everything before the name must be a pure receiver chain.
    k = name_idx - 1
    qual = None
    if k >= start and toks[k].text == "::":
        if k - 1 >= start and toks[k - 1].kind == "id":
            qual = toks[k - 1].text
            k -= 2
        else:
            return
    while k >= start:
        t = toks[k]
        if t.kind == "id" and t.text in CPP_KEYWORDS:
            if t.text in ("if", "else", "do", "while", "for", "switch",
                          "case"):
                k -= 1  # `if (cond) Foo();` still discards Foo's result
                continue
            return  # return/throw/co_return/... consume the value
        if t.text in (".", "->", "::") or t.kind == "id":
            k -= 1
            continue
        if t.text in (")", "]"):
            closer = t.text
            opener = "(" if closer == ")" else "["
            bal = 1
            k -= 1
            while k >= start and bal > 0:
                if toks[k].text == closer:
                    bal += 1
                elif toks[k].text == opener:
                    bal -= 1
                k -= 1
            continue
        return  # return/auto/=/(void)/... — the value is consumed
    is_status = False
    if qual is not None:
        is_status = f"{qual}::{name}" in model.status_quals
    elif fn.cls and f"{fn.cls}::{name}" in model.status_quals and \
            name_idx == start:
        is_status = True
    else:
        is_status = model.status_names.get(name, False)
    if not is_status:
        return
    line = toks[name_idx].line
    findings.append(Finding(
        "status-discipline", fn.file, line, fn.qualname,
        f"discard:{name}",
        f"{fn.qualname} discards the Status/Result returned by "
        f"{name}(...) — check it, propagate it, or call .IgnoreError() "
        "(DESIGN.md §10/§15)"))


RULES = {
    "epoch-discipline": rule_epoch,
    "lock-discipline": rule_lock,
    "hot-path-rebuild": rule_hot_path,
    "status-discipline": rule_status,
}


# --------------------------------------------------------------------------
# Baseline


def load_baseline(path):
    if not path.is_file():
        return set()
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as e:
        raise ToolError(f"{path}: invalid baseline JSON ({e})")
    if not isinstance(data, dict) or "findings" not in data:
        raise ToolError(f"{path}: baseline must be "
                        '{"findings": [{"key": ..., "reason": ...}]}')
    return {entry["key"] for entry in data["findings"]}


def write_baseline(path, findings):
    payload = {
        "comment": "Accepted sight-analyzer findings. Prefer inline "
                   "// SIGHT_ANALYZER_OK(rule): reason suppressions; use "
                   "the baseline only for findings that have no natural "
                   "source line. Regenerate with --write-baseline.",
        "findings": [
            {"key": f.key(), "reason": "baselined (add a reason)",
             "message": f.message}
            for f in findings
        ],
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


# --------------------------------------------------------------------------
# Driver


def main(argv):
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--root", default=".",
                        help="repo root (analyzes <root>/src)")
    parser.add_argument("--build-dir", default="build",
                        help="build dir containing compile_commands.json "
                             "(relative to --root unless absolute)")
    parser.add_argument("--rule", action="append", choices=RULE_NAMES,
                        help="run only this rule (repeatable)")
    parser.add_argument("--frontend", default="auto",
                        choices=["auto", "internal", "libclang"])
    parser.add_argument("--baseline", default=None,
                        help="baseline file (default: "
                             "<root>/tools/sight_analyzer_baseline.json)")
    parser.add_argument("--write-baseline", action="store_true",
                        help="write current findings as the new baseline")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)

    if args.list_rules:
        for name in RULE_NAMES:
            print(name)
        return 0

    root = pathlib.Path(args.root).resolve()
    src_root = root / "src"
    if not src_root.is_dir():
        print(f"sight-analyzer: no src/ under {root}", file=sys.stderr)
        return 2
    build_dir = pathlib.Path(args.build_dir)
    if not build_dir.is_absolute():
        build_dir = root / build_dir
    baseline_path = pathlib.Path(args.baseline) if args.baseline else \
        root / "tools" / "sight_analyzer_baseline.json"

    try:
        entries, cc_path = load_compile_commands(build_dir)
        tus = gather_tus(entries, cc_path, root, src_root)
        model, frontend = build_model(tus, root, src_root, args.frontend)
        baseline = load_baseline(baseline_path)

        findings = []
        for name in (args.rule or RULE_NAMES):
            RULES[name](model, findings)
    except ToolError as e:
        print(f"sight-analyzer: error: {e}", file=sys.stderr)
        return 2

    suppressed, baselined, active = [], [], []
    for f in findings:
        if model.is_suppressed(f.file, f.line, f.rule):
            suppressed.append(f)
        elif f.key() in baseline:
            baselined.append(f)
        else:
            active.append(f)

    if args.write_baseline:
        write_baseline(baseline_path, active)
        print(f"sight-analyzer: wrote {len(active)} finding(s) to "
              f"{baseline_path}", file=sys.stderr)
        return 0

    active.sort(key=lambda f: (f.file, f.line, f.rule))
    for f in active:
        print(f)
    if args.verbose:
        for f in suppressed:
            print(f"suppressed: {f}")
        for f in baselined:
            print(f"baselined:  {f}")
    print(f"sight-analyzer: {len(model.files)} files, "
          f"{len(model.functions)} functions ({frontend} frontend); "
          f"{len(active)} finding(s), {len(suppressed)} suppressed, "
          f"{len(baselined)} baselined", file=sys.stderr)
    return 1 if active else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
