// sight_cli: command-line driver for the Sight risk-scoring library.
//
//   sight_cli generate --out=DIR [--friends=N] [--strangers=N] [--seed=N]
//                      [--gender=male|female] [--locale=tr_TR|en_US|...]
//       Generates a synthetic owner dataset and writes it in the io/
//       on-disk format.
//
//   sight_cli stats --data=DIR
//       Prints structural and visibility statistics of a dataset.
//
//   sight_cli assess --data=DIR [--seed=N] [--interactive]
//                    [--labels-in=FILE] [--labels-out=FILE]
//                    [--owner-labels-out=FILE]
//       Runs the full risk pipeline. By default a simulated owner answers
//       the label queries; with --interactive *you* are the owner: the
//       CLI asks the paper's Section III-A question on stdin (answer
//       1 = not risky, 2 = risky, 3 = very risky). Predicted labels can
//       be exported as CSV (--labels-out); the owner's own answers can be
//       saved (--owner-labels-out) and fed back next time (--labels-in),
//       so an interrupted interactive session resumes without repeating a
//       single question.
//
//   sight_cli suggest --data=DIR [--seed=N]
//       Runs an assessment (simulated owner) and prints friend
//       suggestions among the not-risky strangers.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "core/friend_suggestion.h"
#include "core/query_text.h"
#include "core/risk_engine.h"
#include "core/risk_session.h"
#include "graph/statistics.h"
#include "io/dataset_io.h"
#include "io/labels_io.h"
#include "sim/facebook_generator.h"
#include "sim/owner_model.h"
#include "util/csv.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace {

using namespace sight;

struct Args {
  std::string command;
  std::string out;
  std::string data;
  std::string labels_in;
  std::string labels_out;
  std::string owner_labels_out;
  std::string gender = "male";
  std::string locale = "en_US";
  size_t friends = 60;
  size_t strangers = 400;
  uint64_t seed = 2012;
  bool interactive = false;
};

bool ParseSizeFlag(const char* arg, const char* name, size_t* out) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  *out = static_cast<size_t>(std::strtoull(arg + len, nullptr, 10));
  return true;
}

bool ParseStringFlag(const char* arg, const char* name, std::string* out) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  *out = arg + len;
  return true;
}

int Usage() {
  std::fprintf(stderr,
               "usage: sight_cli <generate|stats|assess|suggest> [flags]\n"
               "  generate --out=DIR [--friends=N --strangers=N --seed=N "
               "--gender=male|female --locale=CODE]\n"
               "  stats    --data=DIR\n"
               "  assess   --data=DIR [--seed=N --interactive "
               "--labels-in=FILE --labels-out=FILE "
               "--owner-labels-out=FILE]\n"
               "  suggest  --data=DIR [--seed=N]\n");
  return 2;
}

Args ParseArgs(int argc, char** argv) {
  Args args;
  if (argc >= 2) args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const char* arg = argv[i];
    size_t seed = 0;
    if (ParseStringFlag(arg, "--out=", &args.out)) continue;
    if (ParseStringFlag(arg, "--data=", &args.data)) continue;
    if (ParseStringFlag(arg, "--labels-in=", &args.labels_in)) continue;
    if (ParseStringFlag(arg, "--labels-out=", &args.labels_out)) continue;
    if (ParseStringFlag(arg, "--owner-labels-out=",
                        &args.owner_labels_out)) {
      continue;
    }
    if (ParseStringFlag(arg, "--gender=", &args.gender)) continue;
    if (ParseStringFlag(arg, "--locale=", &args.locale)) continue;
    if (ParseSizeFlag(arg, "--friends=", &args.friends)) continue;
    if (ParseSizeFlag(arg, "--strangers=", &args.strangers)) continue;
    if (ParseSizeFlag(arg, "--seed=", &seed)) {
      args.seed = seed;
      continue;
    }
    if (std::strcmp(arg, "--interactive") == 0) {
      args.interactive = true;
      continue;
    }
    std::fprintf(stderr, "unknown flag: %s\n", arg);
  }
  return args;
}

// Asks the human at the terminal the paper's question.
class InteractiveOracle : public LabelOracle {
 public:
  RiskLabel QueryLabel(UserId stranger, double similarity,
                       double benefit) override {
    std::string name = StrFormat("user %u", stranger);
    std::printf("\n%s\n", FormatRiskQuestion(name, similarity,
                                             benefit).c_str());
    while (true) {
      std::printf("[1=not risky, 2=risky, 3=very risky] > ");
      std::fflush(stdout);
      int choice = 0;
      if (std::scanf("%d", &choice) != 1) {
        // Drain garbage input.
        int ch;
        while ((ch = std::getchar()) != '\n' && ch != EOF) {
        }
        if (ch == EOF) return RiskLabel::kRisky;  // non-tty fallback
        continue;
      }
      auto label = RiskLabelFromInt(choice);
      if (label.ok()) return label.value();
    }
  }
};

int CommandGenerate(const Args& args) {
  if (args.out.empty()) return Usage();
  sim::GeneratorConfig config;
  config.num_friends = args.friends;
  config.num_strangers = args.strangers;
  auto generator = sim::FacebookGenerator::Create(config);
  if (!generator.ok()) {
    std::fprintf(stderr, "%s\n", generator.status().ToString().c_str());
    return 1;
  }
  sim::OwnerSpec spec;
  spec.gender = args.gender == "female" ? sim::Gender::kFemale
                                        : sim::Gender::kMale;
  auto locale = sim::LocaleFromCode(args.locale);
  if (!locale.ok()) {
    std::fprintf(stderr, "unknown locale '%s'\n", args.locale.c_str());
    return 1;
  }
  spec.locale = locale.value();
  Rng rng(args.seed);
  auto dataset = generator->Generate(spec, &rng);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  Status saved = io::SaveOwnerDataset(*dataset, args.out);
  if (!saved.ok()) {
    std::fprintf(stderr, "%s\n", saved.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s: %zu users, %zu edges, owner %u with %zu "
              "strangers\n",
              args.out.c_str(), dataset->graph.NumUsers(),
              dataset->graph.NumEdges(), dataset->owner,
              dataset->strangers.size());
  return 0;
}

int CommandStats(const Args& args) {
  if (args.data.empty()) return Usage();
  auto dataset = io::LoadOwnerDataset(args.data);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  std::printf("=== graph ===\n%s",
              FormatGraphStats(ComputeGraphStats(dataset->graph)).c_str());
  std::printf("owner: %u (%zu friends, %zu strangers)\n", dataset->owner,
              dataset->friends.size(), dataset->strangers.size());

  std::printf("\n=== stranger item visibility ===\n");
  TablePrinter table({"item", "visible"});
  for (ProfileItem item : kAllProfileItems) {
    size_t visible = 0;
    for (UserId s : dataset->strangers) {
      if (dataset->visibility.IsVisible(s, item)) ++visible;
    }
    double fraction =
        dataset->strangers.empty()
            ? 0.0
            : static_cast<double>(visible) /
                  static_cast<double>(dataset->strangers.size());
    table.AddRow({ProfileItemName(item), FormatPercent(fraction)});
  }
  std::fputs(table.ToString().c_str(), stdout);
  return 0;
}

RiskEngineConfig EngineConfigFor(const sim::OwnerDataset& dataset) {
  RiskEngineConfig config;
  // For the Facebook schema, cluster with the paper's mined Table-I
  // weights (uniform weights over six attributes fragment the pools and
  // triple owner effort — see the ablation bench).
  if (dataset.profiles.schema().names() ==
      sim::FacebookSchema().names()) {
    config.pools.attribute_weights = sim::PaperAttributeWeights();
  }
  return config;
}

Result<RiskReport> RunAssessment(const Args& args,
                                 const sim::OwnerDataset& dataset,
                                 LabelOracle* oracle) {
  SIGHT_ASSIGN_OR_RETURN(
      RiskSession session,
      RiskSession::Create(EngineConfigFor(dataset), &dataset.graph,
                          &dataset.profiles, &dataset.visibility,
                          dataset.owner));
  if (!args.labels_in.empty()) {
    SIGHT_ASSIGN_OR_RETURN(PoolLearner::KnownLabels previous,
                           io::LoadKnownLabelsFromFile(args.labels_in));
    SIGHT_RETURN_IF_ERROR(session.ImportLabels(previous));
    std::printf("resumed %zu previously collected labels from %s\n",
                previous.size(), args.labels_in.c_str());
  }
  SIGHT_RETURN_IF_ERROR(session.DiscoverAllStrangers());
  Rng rng(args.seed ^ 0xa55e55ULL);
  SIGHT_ASSIGN_OR_RETURN(RiskReport report, session.Assess(oracle, &rng));
  if (!args.owner_labels_out.empty()) {
    SIGHT_RETURN_IF_ERROR(io::SaveKnownLabelsToFile(session.known_labels(),
                                                  args.owner_labels_out));
    std::printf("owner answers saved to %s (%zu labels)\n",
                args.owner_labels_out.c_str(),
                session.num_known_labels());
  }
  return report;
}

int CommandAssess(const Args& args) {
  if (args.data.empty()) return Usage();
  auto dataset = io::LoadOwnerDataset(args.data);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }

  Result<RiskReport> report_or = Status::Internal("unset");
  sim::OwnerAttitude attitude;
  if (args.interactive) {
    InteractiveOracle oracle;
    std::printf("you are the owner; answer each question with 1/2/3.\n");
    report_or = RunAssessment(args, *dataset, &oracle);
  } else {
    Rng attitude_rng(args.seed ^ 0x0a77ULL);
    attitude = sim::SampleOwnerAttitude(&attitude_rng);
    auto oracle = sim::OwnerModel::Create(attitude, &dataset->profiles,
                                          &dataset->visibility);
    if (!oracle.ok()) {
      std::fprintf(stderr, "%s\n", oracle.status().ToString().c_str());
      return 1;
    }
    report_or = RunAssessment(args, *dataset, &*oracle);
  }
  if (!report_or.ok()) {
    std::fprintf(stderr, "%s\n", report_or.status().ToString().c_str());
    return 1;
  }
  const RiskReport& report = *report_or;

  size_t counts[4] = {0, 0, 0, 0};
  for (const StrangerAssessment& sa : report.assessment.strangers) {
    ++counts[static_cast<int>(sa.predicted_label)];
  }
  std::printf("\nassessed %zu strangers in %zu pools using %zu owner "
              "labels\n",
              report.num_strangers, report.num_pools,
              report.assessment.total_queries);
  TablePrinter table({"label", "strangers"});
  table.AddRow({"very risky", StrFormat("%zu", counts[3])});
  table.AddRow({"risky", StrFormat("%zu", counts[2])});
  table.AddRow({"not risky", StrFormat("%zu", counts[1])});
  std::fputs(table.ToString().c_str(), stdout);

  if (!args.labels_out.empty()) {
    CsvWriter writer({"stranger", "label", "score", "network_similarity",
                      "benefit", "owner_labeled"});
    for (const StrangerAssessment& sa : report.assessment.strangers) {
      writer.AddRow({StrFormat("%u", sa.stranger),
                     RiskLabelName(sa.predicted_label),
                     FormatDouble(sa.predicted_score, 4),
                     FormatDouble(sa.network_similarity, 4),
                     FormatDouble(sa.benefit, 4),
                     sa.owner_labeled ? "1" : "0"});
    }
    std::ofstream out(args.labels_out);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", args.labels_out.c_str());
      return 1;
    }
    writer.Write(out);
    std::printf("labels written to %s\n", args.labels_out.c_str());
  }
  return 0;
}

int CommandSuggest(const Args& args) {
  if (args.data.empty()) return Usage();
  auto dataset = io::LoadOwnerDataset(args.data);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  Rng attitude_rng(args.seed ^ 0x0a77ULL);
  sim::OwnerAttitude attitude = sim::SampleOwnerAttitude(&attitude_rng);
  auto oracle = sim::OwnerModel::Create(attitude, &dataset->profiles,
                                        &dataset->visibility);
  if (!oracle.ok()) {
    std::fprintf(stderr, "%s\n", oracle.status().ToString().c_str());
    return 1;
  }
  auto report = RunAssessment(args, *dataset, &*oracle);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }
  auto suggestions = SuggestFriends(report->assessment);
  if (!suggestions.ok()) {
    std::fprintf(stderr, "%s\n", suggestions.status().ToString().c_str());
    return 1;
  }
  TablePrinter table({"stranger", "affinity", "ns", "benefit"});
  for (const FriendSuggestion& fs : *suggestions) {
    table.AddRow({StrFormat("%u", fs.stranger),
                  FormatDouble(fs.affinity, 3),
                  FormatDouble(fs.network_similarity, 3),
                  FormatDouble(fs.benefit, 3)});
  }
  std::fputs(table.ToString().c_str(), stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args = ParseArgs(argc, argv);
  if (args.command == "generate") return CommandGenerate(args);
  if (args.command == "stats") return CommandStats(args);
  if (args.command == "assess") return CommandAssess(args);
  if (args.command == "suggest") return CommandSuggest(args);
  return Usage();
}
