// Privacy audit: what do strangers see of *you*?
//
// The flip side of risk scoring (and the related-work contrast with
// Liu-Terzi privacy scores): audit a user's own item visibility against
// the population of their locale and gender, using the paper's Table IV/V
// statistics as the baseline, and quantify the exposure with the benefit
// measure — the very number strangers' risk engines would see for us.

#include <cstdio>

#include "core/benefit.h"
#include "core/privacy_score.h"
#include "sim/facebook_generator.h"
#include "sim/visibility_model.h"
#include "util/string_util.h"
#include "util/table_printer.h"

int main() {
  using namespace sight;

  // Generate a population and audit a handful of its members.
  sim::GeneratorConfig gen_config;
  gen_config.num_friends = 50;
  gen_config.num_strangers = 300;
  auto generator = sim::FacebookGenerator::Create(gen_config).value();
  Rng rng(1212);
  auto dataset =
      generator.Generate({sim::Gender::kMale, sim::Locale::kUS}, &rng)
          .value();

  auto benefit = BenefitModel::Create(ThetaWeights::PaperTable3()).value();

  // A Liu-Terzi-style population model (the related-work contrast of the
  // paper's Section V): item sensitivity = fraction of the population
  // hiding the item.
  auto lt_model =
      FitPrivacyScoreModel(dataset.visibility, dataset.strangers).value();

  const AttributeId gender_attr =
      static_cast<AttributeId>(sim::FacebookAttribute::kGender);
  const AttributeId locale_attr =
      static_cast<AttributeId>(sim::FacebookAttribute::kLocale);

  // Audit the first few strangers as if they were our clients.
  size_t audited = 0;
  for (UserId user : dataset.strangers) {
    if (audited >= 3) break;
    ++audited;

    const std::string& gender_value =
        dataset.profiles.Value(user, gender_attr);
    const std::string& locale_code =
        dataset.profiles.Value(user, locale_attr);
    sim::Gender gender = gender_value == "male" ? sim::Gender::kMale
                                                : sim::Gender::kFemale;
    auto locale = sim::LocaleFromCode(locale_code);

    std::printf("=== privacy audit: user %u (%s, %s) ===\n", user,
                gender_value.c_str(), locale_code.c_str());
    TablePrinter table({"item", "you", "peers (same gender+locale)",
                        "advice"});
    size_t overexposed = 0;
    for (ProfileItem item : kAllProfileItems) {
      bool visible = dataset.visibility.IsVisible(user, item);
      double peer_rate =
          locale.ok()
              ? sim::VisibilityProbability(item, gender, locale.value())
              : sim::GenderVisibilityRate(item, gender);
      const char* advice = "";
      if (visible && peer_rate < 0.35) {
        advice = "consider hiding (most peers do)";
        ++overexposed;
      } else if (!visible && peer_rate > 0.75) {
        advice = "hidden though most peers share it";
      }
      table.AddRow({ProfileItemName(item), visible ? "visible" : "hidden",
                    FormatPercent(peer_rate), advice});
    }
    std::fputs(table.ToString().c_str(), stdout);

    double exposure = benefit.Compute(dataset.visibility, user);
    double lt_score = lt_model.Score(dataset.visibility, user);
    std::printf("stranger-visible benefit score: %.3f "
                "(what a stranger's risk engine sees for you); "
                "Liu-Terzi privacy score: %.2f of max %.2f; "
                "%zu item(s) overexposed vs peers\n\n",
                exposure, lt_score, lt_model.MaxScore(), overexposed);
  }
  return 0;
}
