// Cross-network comparison: the same risk pipeline on two structurally
// different social networks (the paper's Section VI direction).
//
// The Facebook-like network is homophily-driven: strangers connect
// through interconnected friend communities, profiles are guarded. The
// Twitter-like network is heterophily-driven: strangers connect through
// celebrity hubs whose followers never meet, and almost everything is
// public. Same engine, same parameters — different risk landscapes.

#include <cstdio>

#include "core/benefit.h"
#include "core/nsg.h"
#include "service/risk_service.h"
#include "util/logging.h"
#include "sim/facebook_generator.h"
#include "sim/twitter_generator.h"
#include "similarity/network_similarity.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace {

using namespace sight;

struct NetworkSummary {
  std::vector<size_t> nsg_sizes;
  double mean_benefit = 0.0;
  size_t strangers = 0;
};

NetworkSummary Summarize(const sim::OwnerDataset& ds) {
  NetworkSummary summary;
  summary.strangers = ds.strangers.size();
  auto ns = NetworkSimilarity::Create(NetworkSimilarityConfig{}).value();
  auto sims = ns.ComputeBatch(ds.graph, ds.owner, ds.strangers);
  auto groups =
      NetworkSimilarityGroups::Build(10, ds.strangers, sims).value();
  summary.nsg_sizes = groups.GroupSizes();
  auto benefit = BenefitModel::Create(ThetaWeights::Uniform()).value();
  double sum = 0.0;
  for (UserId s : ds.strangers) sum += benefit.Compute(ds.visibility, s);
  summary.mean_benefit =
      ds.strangers.empty() ? 0.0
                           : sum / static_cast<double>(ds.strangers.size());
  return summary;
}

}  // namespace

int main() {
  using namespace sight;

  // Facebook-like ego network.
  sim::GeneratorConfig fb_config;
  fb_config.num_friends = 60;
  fb_config.num_strangers = 400;
  auto fb_gen = sim::FacebookGenerator::Create(fb_config).value();
  Rng fb_rng(2012);
  auto fb = fb_gen.Generate({sim::Gender::kMale, sim::Locale::kTR}, &fb_rng)
                .value();

  // Twitter-like follow network.
  sim::TwitterGeneratorConfig tw_config;
  tw_config.num_followed = 60;
  tw_config.num_strangers = 400;
  auto tw_gen = sim::TwitterGenerator::Create(tw_config).value();
  Rng tw_rng(2012);
  auto tw = tw_gen.Generate(&tw_rng).value();

  NetworkSummary fb_summary = Summarize(fb);
  NetworkSummary tw_summary = Summarize(tw);

  std::printf("=== structural contrast (alpha=10 NSG buckets) ===\n");
  TablePrinter table({"nsg", "facebook-like", "twitter-like"});
  for (size_t x = 0; x < 10; ++x) {
    if (fb_summary.nsg_sizes[x] == 0 && tw_summary.nsg_sizes[x] == 0) {
      continue;
    }
    table.AddRow({StrFormat("%zu", x + 1),
                  StrFormat("%zu", fb_summary.nsg_sizes[x]),
                  StrFormat("%zu", tw_summary.nsg_sizes[x])});
  }
  std::fputs(table.ToString().c_str(), stdout);
  std::printf("\nmean stranger benefit (uniform theta): facebook %.3f vs "
              "twitter %.3f\n"
              "(heterophily: on the Twitter-like network the content is "
              "public, so benefits run high while network similarity "
              "stays low)\n\n",
              fb_summary.mean_benefit, tw_summary.mean_benefit);

  // Same engine on the Twitter network with a simple attitude: unverified
  // low-similarity accounts are risky.
  class VerifiedOracle : public LabelOracle {
   public:
    explicit VerifiedOracle(const ProfileTable* profiles)
        : profiles_(profiles) {}
    RiskLabel QueryLabel(UserId stranger, double similarity,
                         double) override {
      if (profiles_->Value(stranger, 0) == "yes") {
        return RiskLabel::kNotRisky;
      }
      return similarity < 0.15 ? RiskLabel::kVeryRisky : RiskLabel::kRisky;
    }

   private:
    const ProfileTable* profiles_;
  } oracle(&tw.profiles);

  auto service = RiskService::Create(RiskServiceConfig{}).value();
  OwnerRegistration registration;
  registration.owner = tw.owner;
  registration.graph = &tw.graph;
  registration.profiles = &tw.profiles;
  registration.visibility = &tw.visibility;
  SIGHT_CHECK(service->RegisterOwner(registration).ok());
  SIGHT_CHECK(service->DiscoverAllStrangers(tw.owner).ok());
  Rng run_rng(7);
  auto report = service->AssessNow(tw.owner, &oracle, &run_rng).value();
  size_t counts[4] = {0, 0, 0, 0};
  for (const StrangerAssessment& sa : report.assessment.strangers) {
    ++counts[static_cast<int>(sa.predicted_label)];
  }
  std::printf("=== twitter-like assessment (same engine, zero changes) "
              "===\n"
              "%zu strangers, %zu owner labels: %zu very risky / %zu "
              "risky / %zu not risky\n",
              report.num_strangers, report.assessment.total_queries,
              counts[3], counts[2], counts[1]);
  return 0;
}
