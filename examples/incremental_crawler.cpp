// Incremental crawling: risk assessment that keeps up with discovery.
//
// The paper's Sight app cannot see the whole graph at once — strangers
// surface over days as friends interact. This example drives the Crawler
// simulator tick by tick through the resident RiskService: each
// discovery batch is submitted as an OwnerEvent, a background worker
// applies it and assesses, and the crawler thread picks up the versioned
// snapshot with WaitFor. Every answer the owner has already given
// carries over — the owner is never asked about the same stranger
// twice — pools untouched by a batch reuse their carried learners
// outright (no matrix rebuild, no re-convergence rounds), and the pool
// partition and encoded stranger table are resident too: each day only
// the newly discovered strangers are encoded and routed through the
// carried clusters (DESIGN.md §14).

#include <cstdio>

#include "service/risk_service.h"
#include "sim/crawler.h"
#include "sim/facebook_generator.h"
#include "sim/owner_model.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/table_printer.h"

int main() {
  using namespace sight;

  sim::GeneratorConfig gen_config;
  gen_config.num_friends = 70;
  gen_config.num_strangers = 600;
  auto generator = sim::FacebookGenerator::Create(gen_config).value();
  Rng rng(31337);
  auto dataset =
      generator.Generate({sim::Gender::kMale, sim::Locale::kPL}, &rng)
          .value();

  Rng attitude_rng(5);
  sim::OwnerAttitude attitude = sim::SampleOwnerAttitude(&attitude_rng);
  auto owner = sim::OwnerModel::Create(attitude, &dataset.profiles,
                                       &dataset.visibility)
                   .value();

  sim::CrawlerConfig crawl_config;
  crawl_config.batch_size = 120;  // one "day" of discovery
  Rng crawl_rng(8);
  auto crawler = sim::Crawler::Create(dataset.graph, dataset.owner,
                                      crawl_config, &crawl_rng)
                     .value();

  RiskServiceConfig config;
  config.engine.pools.attribute_weights = sim::PaperAttributeWeights();
  config.engine.learner.confidence = attitude.confidence;
  config.engine.theta = attitude.theta;
  auto service = RiskService::Create(std::move(config)).value();
  OwnerRegistration registration;
  registration.owner = dataset.owner;
  registration.graph = &dataset.graph;
  registration.profiles = &dataset.profiles;
  registration.visibility = &dataset.visibility;
  registration.oracle = &owner;  // answers queries on the worker thread
  registration.rng_seed = 99;
  SIGHT_CHECK(service->RegisterOwner(registration).ok());

  std::printf("crawling %zu strangers in batches of %zu...\n\n",
              crawler.total_strangers(), crawl_config.batch_size);

  TablePrinter table({"day", "discovered", "new labels", "labels total",
                      "pools carried", "very risky", "risky", "not risky"});
  uint64_t day = 0;
  while (!crawler.done()) {
    ++day;
    OwnerEvent event;
    event.owner = dataset.owner;
    event.discovered = crawler.Tick();
    if (!service->Submit(std::move(event)).ok()) break;
    // The assessment runs on the service's worker; block for its
    // snapshot here only because this example has nothing else to do.
    auto snapshot_or = service->WaitFor(dataset.owner, day);
    if (!snapshot_or.ok() || !(*snapshot_or)->status.ok()) {
      std::fprintf(stderr, "assess failed\n");
      return 1;
    }
    const AssessmentSnapshot& snapshot = **snapshot_or;
    const RiskReport& report = snapshot.report;
    size_t counts[4] = {0, 0, 0, 0};
    for (const StrangerAssessment& sa : report.assessment.strangers) {
      ++counts[static_cast<int>(sa.predicted_label)];
    }
    table.AddRow({StrFormat("%zu", day),
                  StrFormat("%zu",
                            service->NumStrangers(dataset.owner).value_or(0)),
                  StrFormat("%zu", report.assessment.total_queries),
                  StrFormat("%zu",
                            service->NumKnownLabels(dataset.owner)
                                .value_or(0)),
                  StrFormat("%zu", report.assessment.pools_carried),
                  StrFormat("%zu", counts[3]), StrFormat("%zu", counts[2]),
                  StrFormat("%zu", counts[1])});
  }
  service->Shutdown();
  std::fputs(table.ToString().c_str(), stdout);
  size_t labels = service->NumKnownLabels(dataset.owner).value_or(0);
  size_t strangers = service->NumStrangers(dataset.owner).value_or(1);
  std::printf("\nowner answered %zu questions for %zu strangers (%.1f%%); "
              "labels, finished pool learners, the pool partition, and "
              "the encoded stranger table persist across ticks, so each "
              "new day only pays for its new strangers.\n",
              labels, strangers,
              100.0 * static_cast<double>(labels) /
                  static_cast<double>(strangers));
  return 0;
}
