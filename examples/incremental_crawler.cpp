// Incremental crawling: risk assessment that keeps up with discovery.
//
// The paper's Sight app cannot see the whole graph at once — strangers
// surface over days as friends interact. This example drives the Crawler
// simulator tick by tick through a RiskSession: after every discovery
// batch the pools are rebuilt on the fly (the paper's stated reason for
// choosing active learning over a fixed training set), while every answer
// the owner has already given carries over — the owner is never asked
// about the same stranger twice.

#include <cstdio>

#include "core/risk_session.h"
#include "sim/crawler.h"
#include "sim/facebook_generator.h"
#include "sim/owner_model.h"
#include "util/string_util.h"
#include "util/table_printer.h"

int main() {
  using namespace sight;

  sim::GeneratorConfig gen_config;
  gen_config.num_friends = 70;
  gen_config.num_strangers = 600;
  auto generator = sim::FacebookGenerator::Create(gen_config).value();
  Rng rng(31337);
  auto dataset =
      generator.Generate({sim::Gender::kMale, sim::Locale::kPL}, &rng)
          .value();

  Rng attitude_rng(5);
  sim::OwnerAttitude attitude = sim::SampleOwnerAttitude(&attitude_rng);
  auto owner = sim::OwnerModel::Create(attitude, &dataset.profiles,
                                       &dataset.visibility)
                   .value();

  sim::CrawlerConfig crawl_config;
  crawl_config.batch_size = 120;  // one "day" of discovery
  Rng crawl_rng(8);
  auto crawler = sim::Crawler::Create(dataset.graph, dataset.owner,
                                      crawl_config, &crawl_rng)
                     .value();

  RiskEngineConfig config;
  config.pools.attribute_weights = sim::PaperAttributeWeights();
  config.learner.confidence = attitude.confidence;
  config.theta = attitude.theta;
  auto session = RiskSession::Create(config, &dataset.graph,
                                     &dataset.profiles, &dataset.visibility,
                                     dataset.owner)
                     .value();

  std::printf("crawling %zu strangers in batches of %zu...\n\n",
              crawler.total_strangers(), crawl_config.batch_size);

  TablePrinter table({"day", "discovered", "new labels", "labels total",
                      "very risky", "risky", "not risky"});
  Rng run_rng(99);
  size_t day = 0;
  while (!crawler.done()) {
    ++day;
    auto batch = crawler.Tick();
    if (!session.AddStrangers(batch).ok()) break;
    auto report_or = session.Assess(&owner, &run_rng);
    if (!report_or.ok()) {
      std::fprintf(stderr, "assess failed: %s\n",
                   report_or.status().ToString().c_str());
      return 1;
    }
    const RiskReport& report = *report_or;
    size_t counts[4] = {0, 0, 0, 0};
    for (const StrangerAssessment& sa : report.assessment.strangers) {
      ++counts[static_cast<int>(sa.predicted_label)];
    }
    table.AddRow({StrFormat("%zu", day),
                  StrFormat("%zu", session.num_strangers()),
                  StrFormat("%zu", report.assessment.total_queries),
                  StrFormat("%zu", session.num_known_labels()),
                  StrFormat("%zu", counts[3]), StrFormat("%zu", counts[2]),
                  StrFormat("%zu", counts[1])});
  }
  std::fputs(table.ToString().c_str(), stdout);
  std::printf("\nowner answered %zu questions for %zu strangers (%.1f%%); "
              "labels persist across pool rebuilds, so each new day only "
              "pays for its new strangers.\n",
              session.num_known_labels(), session.num_strangers(),
              100.0 * static_cast<double>(session.num_known_labels()) /
                  static_cast<double>(session.num_strangers()));
  return 0;
}
