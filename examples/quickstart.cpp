// Quickstart: build a small social network by hand, stand up the risk
// service for one owner, and print the predicted risk label of every
// stranger.
//
// The LabelOracle here is a stand-in for the real owner answering the
// paper's Section III-A question; swap in your own implementation to
// connect a UI.

#include <cstdio>

#include "graph/algorithms.h"
#include "service/risk_service.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace {

using namespace sight;

// A cautious owner: strangers with little network overlap are risky,
// males slightly more so.
class CautiousOwner : public LabelOracle {
 public:
  CautiousOwner(const ProfileTable* profiles, AttributeId gender_attr)
      : profiles_(profiles), gender_attr_(gender_attr) {}

  RiskLabel QueryLabel(UserId stranger, double similarity,
                       double benefit) override {
    std::printf("  [owner] asked about stranger %u "
                "(similarity %.0f/100, benefits %.0f/100)\n",
                stranger, similarity * 100, benefit * 100);
    double score = similarity + 0.3 * benefit;
    if (profiles_->Value(stranger, gender_attr_) == "male") score -= 0.05;
    if (score < 0.10) return RiskLabel::kVeryRisky;
    if (score < 0.35) return RiskLabel::kRisky;
    return RiskLabel::kNotRisky;
  }

 private:
  const ProfileTable* profiles_;
  AttributeId gender_attr_;
};

}  // namespace

int main() {
  using namespace sight;

  // 1. A hand-built network: owner 0, four friends, twelve strangers.
  SocialGraph graph(5);
  auto edge = [&](UserId a, UserId b) {
    Status s = graph.AddEdge(a, b);
    if (!s.ok()) {
      std::fprintf(stderr, "edge failed: %s\n", s.ToString().c_str());
    }
  };
  for (UserId f = 1; f <= 4; ++f) edge(0, f);
  edge(1, 2);  // friends 1-2 know each other
  edge(3, 4);

  ProfileSchema schema =
      ProfileSchema::Create({"gender", "locale", "last_name"}).value();
  ProfileTable profiles(schema);
  VisibilityTable visibility;
  Rng rng(7);
  for (int i = 0; i < 12; ++i) {
    UserId s = graph.AddUser();
    // Each stranger knows one or two of the owner's friends.
    edge(s, static_cast<UserId>(1 + i % 4));
    if (i % 3 == 0) edge(s, static_cast<UserId>(1 + (i + 1) % 4));
    Profile p;
    p.values = {i % 2 == 0 ? "male" : "female",
                i % 4 < 2 ? "en_US" : "it_IT",
                StrFormat("Family%d", i % 5)};
    (void)profiles.Set(s, p);
    visibility.SetMask(s, static_cast<uint8_t>(rng.UniformInt(0, 127)));
  }
  for (UserId u = 0; u <= 4; ++u) {
    Profile p;
    p.values = {"male", "en_US", "Owner"};
    (void)profiles.Set(u, p);
  }

  // 2. Stand up the risk service with paper-default parameters and
  //    register the owner. One service instance serves any number of
  //    owners; this example needs a single synchronous assessment.
  RiskServiceConfig config;
  config.engine.learner.labels_per_round = 2;  // tiny example
  auto service_or = RiskService::Create(std::move(config));
  if (!service_or.ok()) {
    std::fprintf(stderr, "service: %s\n",
                 service_or.status().ToString().c_str());
    return 1;
  }
  RiskService& service = **service_or;
  OwnerRegistration registration;
  registration.owner = 0;
  registration.graph = &graph;
  registration.profiles = &profiles;
  registration.visibility = &visibility;
  Status setup = service.RegisterOwner(registration);
  setup.Update(service.DiscoverAllStrangers(0));
  if (!setup.ok()) {
    std::fprintf(stderr, "setup: %s\n", setup.ToString().c_str());
    return 1;
  }
  CautiousOwner owner(&profiles, 0);
  Rng run_rng(2012);
  auto report_or = service.AssessNow(/*owner=*/0, &owner, &run_rng);
  if (!report_or.ok()) {
    std::fprintf(stderr, "assess: %s\n",
                 report_or.status().ToString().c_str());
    return 1;
  }
  const RiskReport& report = *report_or;

  // 3. Print the result.
  std::printf("\nassessed %zu strangers in %zu pools with %zu owner "
              "labels\n\n",
              report.num_strangers, report.num_pools,
              report.assessment.total_queries);
  TablePrinter table(
      {"stranger", "ns", "benefit", "label", "source"});
  for (const StrangerAssessment& sa : report.assessment.strangers) {
    table.AddRow({StrFormat("%u", sa.stranger),
                  FormatDouble(sa.network_similarity, 2),
                  FormatDouble(sa.benefit, 2),
                  RiskLabelName(sa.predicted_label),
                  sa.owner_labeled ? "owner" : "predicted"});
  }
  std::fputs(table.ToString().c_str(), stdout);
  return 0;
}
