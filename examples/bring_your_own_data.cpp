// Bring your own data: run the risk pipeline on a dataset loaded from
// disk.
//
// Sight's on-disk format is three plain files (edge list, profile CSV,
// visibility CSV) plus a one-line meta file — export your own network
// into that shape and everything runs on it. This example first writes a
// sample dataset so you can inspect the format, then loads it back and
// assesses the owner.

#include <cstdio>

#include "io/dataset_io.h"
#include "sim/facebook_generator.h"
#include "sim/owner_model.h"
#include "service/risk_service.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  using namespace sight;

  std::string dir = argc > 1 ? argv[1] : "/tmp/sight_sample_dataset";

  // 1. Write a sample dataset (skip this step with your own files).
  {
    sim::GeneratorConfig gen_config;
    gen_config.num_friends = 30;
    gen_config.num_strangers = 120;
    auto generator = sim::FacebookGenerator::Create(gen_config).value();
    Rng rng(4711);
    auto dataset =
        generator.Generate({sim::Gender::kMale, sim::Locale::kDE}, &rng)
            .value();
    Status saved = io::SaveOwnerDataset(dataset, dir);
    if (!saved.ok()) {
      std::fprintf(stderr, "save failed: %s\n", saved.ToString().c_str());
      return 1;
    }
    std::printf("wrote sample dataset to %s/\n"
                "  graph.txt       %zu users, %zu edges\n"
                "  profiles.csv    %zu profiles\n"
                "  visibility.csv  per-item 0/1 flags\n"
                "  meta.txt        owner id\n\n",
                dir.c_str(), dataset.graph.NumUsers(),
                dataset.graph.NumEdges(), dataset.profiles.num_profiles());
  }

  // 2. Load it back — this is the path your own data takes.
  auto loaded_or = io::LoadOwnerDataset(dir);
  if (!loaded_or.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 loaded_or.status().ToString().c_str());
    return 1;
  }
  sim::OwnerDataset dataset = std::move(loaded_or).value();
  std::printf("loaded: owner %u with %zu friends and %zu strangers\n\n",
              dataset.owner, dataset.friends.size(),
              dataset.strangers.size());

  // 3. Assess. The oracle here is simulated; plug a UI in production.
  Rng attitude_rng(13);
  sim::OwnerAttitude attitude = sim::SampleOwnerAttitude(&attitude_rng);
  auto oracle = sim::OwnerModel::Create(attitude, &dataset.profiles,
                                        &dataset.visibility)
                    .value();
  auto service = RiskService::Create(RiskServiceConfig{}).value();
  OwnerRegistration registration;
  registration.owner = dataset.owner;
  registration.graph = &dataset.graph;
  registration.profiles = &dataset.profiles;
  registration.visibility = &dataset.visibility;
  SIGHT_CHECK(service->RegisterOwner(registration).ok());
  SIGHT_CHECK(service->DiscoverAllStrangers(dataset.owner).ok());
  Rng rng(17);
  auto report = service->AssessNow(dataset.owner, &oracle, &rng).value();

  size_t counts[4] = {0, 0, 0, 0};
  for (const StrangerAssessment& sa : report.assessment.strangers) {
    ++counts[static_cast<int>(sa.predicted_label)];
  }
  TablePrinter table({"risk label", "strangers"});
  table.AddRow({"very risky", StrFormat("%zu", counts[3])});
  table.AddRow({"risky", StrFormat("%zu", counts[2])});
  table.AddRow({"not risky", StrFormat("%zu", counts[1])});
  std::fputs(table.ToString().c_str(), stdout);
  std::printf("\n%zu owner labels spent on %zu strangers\n",
              report.assessment.total_queries, report.num_strangers);
  return 0;
}
