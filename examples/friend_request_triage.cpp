// Friend-request triage: the introduction's motivating scenario.
//
// A user keeps receiving friend requests from people they have never met
// (second-hop strangers). The risk engine learns the user's risk attitude
// from a few questions and then ranks every incoming request; a
// label-based policy (the paper's Section VI "label-based access control"
// direction) auto-buckets them: not risky -> accept queue, risky ->
// review, very risky -> ignore.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/friend_suggestion.h"
#include "core/label_policy.h"
#include "core/query_text.h"
#include "service/risk_service.h"
#include "util/logging.h"
#include "sim/facebook_generator.h"
#include "sim/owner_model.h"
#include "util/string_util.h"
#include "util/table_printer.h"

int main() {
  using namespace sight;

  // Simulated world: one owner with a realistic ego network.
  sim::GeneratorConfig gen_config;
  gen_config.num_friends = 80;
  gen_config.num_strangers = 500;
  auto generator = sim::FacebookGenerator::Create(gen_config).value();
  Rng rng(424242);
  auto dataset =
      generator.Generate({sim::Gender::kFemale, sim::Locale::kIT}, &rng)
          .value();

  // The "user behind the screen" (replace with a UI-backed oracle in a
  // real deployment).
  Rng attitude_rng(99);
  sim::OwnerAttitude attitude = sim::SampleOwnerAttitude(&attitude_rng);
  auto owner = sim::OwnerModel::Create(attitude, &dataset.profiles,
                                       &dataset.visibility)
                   .value();

  RiskServiceConfig config;
  config.engine.pools.attribute_weights = sim::PaperAttributeWeights();
  config.engine.learner.confidence = attitude.confidence;
  config.engine.theta = attitude.theta;
  auto service = RiskService::Create(std::move(config)).value();
  OwnerRegistration registration;
  registration.owner = dataset.owner;
  registration.graph = &dataset.graph;
  registration.profiles = &dataset.profiles;
  registration.visibility = &dataset.visibility;
  SIGHT_CHECK(service->RegisterOwner(registration).ok());
  SIGHT_CHECK(service->DiscoverAllStrangers(dataset.owner).ok());

  Rng run_rng(7);
  auto report = service->AssessNow(dataset.owner, &owner, &run_rng).value();

  std::printf("learned this user's risk attitude from %zu answers "
              "covering %zu strangers\n\n",
              report.assessment.total_queries, report.num_strangers);

  // Incoming friend requests: every 13th stranger, say.
  std::vector<StrangerAssessment> requests;
  for (size_t i = 0; i < report.assessment.strangers.size(); i += 13) {
    requests.push_back(report.assessment.strangers[i]);
  }
  // Rank by predicted risk (ascending: safest first), similarity breaking
  // ties.
  std::sort(requests.begin(), requests.end(),
            [](const StrangerAssessment& a, const StrangerAssessment& b) {
              if (a.predicted_score != b.predicted_score) {
                return a.predicted_score < b.predicted_score;
              }
              return a.network_similarity > b.network_similarity;
            });

  size_t accepted = 0;
  size_t review = 0;
  size_t ignored = 0;
  TablePrinter table({"request from", "risk score", "label", "policy"});
  for (const StrangerAssessment& request : requests) {
    const char* policy;
    switch (request.predicted_label) {
      case RiskLabel::kNotRisky:
        policy = "accept queue";
        ++accepted;
        break;
      case RiskLabel::kRisky:
        policy = "manual review";
        ++review;
        break;
      case RiskLabel::kVeryRisky:
      default:
        policy = "ignore";
        ++ignored;
        break;
    }
    table.AddRow({StrFormat("user %u", request.stranger),
                  FormatDouble(request.predicted_score, 2),
                  RiskLabelName(request.predicted_label), policy});
  }
  std::fputs(table.ToString().c_str(), stdout);
  std::printf("\npolicy summary: %zu to accept queue, %zu to review, "
              "%zu ignored\n",
              accepted, review, ignored);

  // Label-based access control (the paper's Section VI direction): what
  // each labeled bucket may see of the owner's profile while pending.
  LabelAccessPolicy access = LabelAccessPolicy::Default();
  std::printf("\nlabel-based access (pending requests see):\n");
  for (RiskLabel label : {RiskLabel::kNotRisky, RiskLabel::kRisky,
                          RiskLabel::kVeryRisky}) {
    std::printf("  %-10s ->", RiskLabelName(label));
    bool any = false;
    for (ProfileItem item : kAllProfileItems) {
      if (access.IsAllowed(label, item)) {
        std::printf(" %s", ProfileItemName(item));
        any = true;
      }
    }
    std::printf("%s\n", any ? "" : " (nothing)");
  }

  // Friendship suggestions: the safest, best-connected strangers.
  FriendSuggestionConfig fs_config;
  fs_config.max_suggestions = 5;
  auto suggestions =
      SuggestFriends(report.assessment, fs_config).value();
  std::printf("\nfriend suggestions (not-risky, ranked by affinity):\n");
  for (const FriendSuggestion& fs : suggestions) {
    std::printf("  user %-5u affinity %.2f (ns %.2f, benefit %.2f)\n",
                fs.stranger, fs.affinity, fs.network_similarity,
                fs.benefit);
  }

  // And this is the exact question the owner answered during learning:
  std::printf("\nsample owner question:\n%s\n",
              FormatRiskQuestion("the requester", 0.42, 0.13).c_str());
  return 0;
}
