#!/usr/bin/env python3
"""Self-test for tools/sight_lint.py.

Seeds a violation of every lint rule in a scratch src/ tree and asserts the
linter reports exactly the expected rule, then checks the clean-idiom cases
(ok()-guarded .value(), thread_pool allowlist) are NOT flagged. Finally it
proves the compiler side of status discipline: a dropped [[nodiscard]]
Status fails to compile under -Werror=unused-result against the real
util/status.h, and the sanctioned escape hatch (IgnoreError) passes.

Run directly or via ctest (registered as sight_lint_selftest).
"""

import pathlib
import shutil
import subprocess
import sys
import tempfile

REPO = pathlib.Path(__file__).resolve().parents[2]
LINT = REPO / "tools" / "sight_lint.py"

PASSED = 0
FAILED = []


def run_lint(root):
    return subprocess.run(
        [sys.executable, str(LINT), "--root", str(root)],
        capture_output=True, text=True)


def expect(name, cond, detail=""):
    global PASSED
    if cond:
        PASSED += 1
        print(f"  ok  {name}")
    else:
        FAILED.append(name)
        print(f"FAIL  {name}  {detail}")


def lint_case(name, rel_path, content, want_rule, tree="src"):
    """Lints a one-file src/ (or tests/) tree; asserts `want_rule` fires
    (or, when want_rule is None, that the tree is clean)."""
    with tempfile.TemporaryDirectory() as tmp:
        if tree != "src":
            # The linter requires src/ to exist even for tests/-only runs.
            (pathlib.Path(tmp) / "src").mkdir()
        f = pathlib.Path(tmp) / tree / rel_path
        f.parent.mkdir(parents=True)
        f.write_text(content)
        proc = run_lint(tmp)
        if want_rule is None:
            expect(name, proc.returncode == 0,
                   f"expected clean, got:\n{proc.stdout}")
        else:
            expect(name,
                   proc.returncode == 1 and f"[{want_rule}]" in proc.stdout,
                   f"expected [{want_rule}], got rc={proc.returncode}:\n"
                   f"{proc.stdout}")


def main():
    # --- seeded violations: one per rule ---------------------------------
    lint_case("missing [[nodiscard]] on Status function", "core/foo.h",
              "Status DoThing(int x);\n", "nodiscard-status")
    lint_case("missing [[nodiscard]] on Result function", "core/foo.h",
              "static Result<double> Compute(int x);\n", "nodiscard-status")
    lint_case("raw throw", "core/foo.cc",
              "void F() { throw 42; }\n", "no-exceptions")
    lint_case("try/catch block", "core/foo.cc",
              "void F() {\n  try {\n    G();\n  } catch (...) {\n  }\n}\n",
              "no-exceptions")
    lint_case("std::cout in library code", "core/foo.cc",
              '#include <iostream>\nvoid F() { std::cout << "x"; }\n',
              "no-raw-stdio")
    lint_case("std::cerr in library code", "core/foo.cc",
              '#include <iostream>\nvoid F() { std::cerr << "x"; }\n',
              "no-raw-stdio")
    lint_case("naked .value() without ok() check", "core/foo.cc",
              "double F() {\n"
              "  auto r = Compute(3);\n"
              "  return r.value();\n"
              "}\n", "checked-value")
    lint_case("naked .value() on moved temporary", "core/foo.cc",
              "double F() {\n"
              "  auto r = Compute(3);\n"
              "  return std::move(r).value();\n"
              "}\n", "checked-value")
    lint_case("std::thread outside thread_pool", "core/foo.cc",
              "#include <thread>\n"
              "void F() { std::thread t([] {}); t.join(); }\n",
              "no-raw-thread")
    lint_case("std::async outside thread_pool", "core/foo.cc",
              "#include <future>\n"
              "void F() { auto f = std::async([] {}); }\n",
              "no-raw-thread")
    lint_case("direct RiskEngine::Create outside src/service", "core/foo.cc",
              "void F() {\n"
              "  auto engine = RiskEngine::Create(RiskEngineConfig{});\n"
              "  SIGHT_CHECK(engine.ok());\n"
              "}\n", "no-direct-engine")
    lint_case("EncodedProfileTable::Build inside src/service",
              "service/foo.cc",
              "void F(const ProfileTable& profiles,\n"
              "       const std::vector<UserId>& members) {\n"
              "  auto enc = EncodedProfileTable::Build(profiles, members);\n"
              "}\n", "no-hot-rebuild")

    # --- multiline + commented-out hardening -----------------------------
    lint_case("multiline RiskEngine::Create is caught", "core/foo.cc",
              "void F() {\n"
              "  auto engine = RiskEngine::\n"
              "      Create(RiskEngineConfig{});\n"
              "}\n", "no-direct-engine")
    lint_case("multiline EncodedProfileTable::Build is caught",
              "service/foo.cc",
              "void F(const ProfileTable& profiles) {\n"
              "  auto enc = EncodedProfileTable\n"
              "      ::Build(profiles, members);\n"
              "}\n", "no-hot-rebuild")
    lint_case("commented-out RiskEngine::Create is clean", "core/foo.cc",
              "// auto engine = RiskEngine::Create(RiskEngineConfig{});\n"
              "/* RiskEngine::\n"
              "   Create(config) */\n"
              "void F();\n", None)
    lint_case("commented-out Build in service is clean", "service/foo.cc",
              "// auto enc = EncodedProfileTable::Build(profiles, m);\n"
              "void F();\n", None)
    lint_case("Build in a string literal is clean", "service/foo.cc",
              'const char* kHelp = "EncodedProfileTable::Build";\n', None)

    # --- no-sleep-in-tests -----------------------------------------------
    lint_case("sleep_for in tests is flagged", "service/foo_test.cc",
              "#include <thread>\n"
              "void F() {\n"
              "  std::this_thread::sleep_for(std::chrono::seconds(1));\n"
              "}\n", "no-sleep-in-tests", tree="tests")
    lint_case("sleep_until in tests is flagged", "service/foo_test.cc",
              "#include <thread>\n"
              "void F(std::chrono::steady_clock::time_point t) {\n"
              "  std::this_thread::sleep_until(t);\n"
              "}\n", "no-sleep-in-tests", tree="tests")
    lint_case("wrapped sleep_for in tests is flagged", "service/foo_test.cc",
              "void F() {\n"
              "  std::this_thread::\n"
              "      sleep_for(std::chrono::seconds(1));\n"
              "}\n", "no-sleep-in-tests", tree="tests")
    lint_case("condition-based wait in tests is clean", "service/foo_test.cc",
              "void F(sight::RiskService* service) {\n"
              "  auto snapshot = service->WaitFor(kOwner, 1);\n"
              "}\n", None, tree="tests")
    lint_case("commented-out sleep in tests is clean", "service/foo_test.cc",
              "// std::this_thread::sleep_for(kTick);  // was flaky\n"
              "void F();\n", None, tree="tests")
    lint_case("src/ rules do not fire in tests/", "core/foo_test.cc",
              "#include <thread>\n"
              "void F() { std::thread t([] {}); t.join(); }\n",
              None, tree="tests")

    # --- tool errors are exit 2, not findings ----------------------------
    with tempfile.TemporaryDirectory() as tmp:
        f = pathlib.Path(tmp) / "src" / "core" / "bad.cc"
        f.parent.mkdir(parents=True)
        f.write_bytes(b"\xff\xfe invalid utf-8 \xff void F();\n")
        proc = run_lint(tmp)
        expect("undecodable file exits 2 (tool error, not findings)",
               proc.returncode == 2 and "cannot lint" in proc.stderr,
               f"rc={proc.returncode}\n{proc.stdout}{proc.stderr}")

    # --- clean idioms must NOT be flagged --------------------------------
    lint_case("[[nodiscard]] declaration is clean", "core/foo.h",
              "[[nodiscard]] Status DoThing(int x);\n"
              "[[nodiscard]] static Result<double> Compute(int x);\n", None)
    lint_case("ok()-guarded .value() is clean", "core/foo.cc",
              "double F() {\n"
              "  auto r = Compute(3);\n"
              "  if (!r.ok()) return 0.0;\n"
              "  return r.value();\n"
              "}\n", None)
    lint_case("SIGHT_CHECK(ok()) then moved .value() is clean",
              "core/foo.cc",
              "Schema F() {\n"
              "  auto schema = Schema::Create({});\n"
              "  SIGHT_CHECK(schema.ok());\n"
              "  return std::move(schema).value();\n"
              "}\n", None)
    lint_case("ok() check does not leak across functions", "core/foo.cc",
              "double G() {\n"
              "  auto a = Compute(1);\n"
              "  if (!a.ok()) return 0.0;\n"
              "  return a.value();\n"
              "}\n"
              "double F() {\n"
              "  auto a = Compute(3);\n"
              "  return a.value();\n"
              "}\n", "checked-value")
    lint_case("std::thread inside util/thread_pool is allowed",
              "util/thread_pool.cc",
              "#include <thread>\n"
              "void Pool() { std::thread t([] {}); t.join(); }\n", None)
    lint_case("RiskEngine::Create inside src/service is allowed",
              "service/risk_service.cc",
              "Status F() {\n"
              "  SIGHT_ASSIGN_OR_RETURN(RiskEngine engine,\n"
              "                         RiskEngine::Create(config.engine));\n"
              "  return Status::OK();\n"
              "}\n", None)
    lint_case("EncodedProfileTable::Build outside src/service is allowed",
              "graph/profile_codec.cc",
              "void F(const ProfileTable& profiles,\n"
              "       const std::vector<UserId>& members) {\n"
              "  auto enc = EncodedProfileTable::Build(profiles, members);\n"
              "}\n", None)
    lint_case("comments and strings are ignored", "core/foo.cc",
              "// try to throw std::cout at a std::thread\n"
              'const char* k = "throw try std::cerr";\n', None)
    lint_case("ProfileTable::value(attr) with args is not a Result access",
              "core/foo.cc",
              "std::string F(const Profile& p, AttributeId a) {\n"
              "  return p.value(a);\n"
              "}\n", None)

    # --- the whole repo must be clean ------------------------------------
    proc = run_lint(REPO)
    expect("repository src/ is lint-clean", proc.returncode == 0,
           proc.stdout)

    # --- compiler side: dropped Status is a hard error -------------------
    gxx = shutil.which("g++") or shutil.which("c++") or shutil.which("clang++")
    if gxx:
        def compiles(body):
            with tempfile.TemporaryDirectory() as tmp:
                cc = pathlib.Path(tmp) / "drop.cc"
                cc.write_text(
                    '#include "util/status.h"\n'
                    "using sight::Status;\n"
                    "Status Step() { return Status::OK(); }\n"
                    f"void Run() {{ {body} }}\n")
                return subprocess.run(
                    [gxx, "-std=c++20", "-fsyntax-only", "-Wall",
                     "-Werror=unused-result", "-I", str(REPO / "src"),
                     str(cc)],
                    capture_output=True, text=True).returncode == 0

        expect("dropped Status fails to compile", not compiles("Step();"))
        expect("checked Status compiles",
               compiles("if (!Step().ok()) return;"))
        expect("IgnoreError() escape hatch compiles",
               compiles("Step().IgnoreError();"))
    else:
        print("  skip  compiler checks (no C++ compiler on PATH)")

    print(f"\n{PASSED} passed, {len(FAILED)} failed")
    return 1 if FAILED else 0


if __name__ == "__main__":
    sys.exit(main())
