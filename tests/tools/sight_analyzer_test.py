#!/usr/bin/env python3
"""Self-test for tools/sight_analyzer.py.

Points the analyzer at the seeded-violation fixtures under
tests/tools/fixtures/analyzer/ (each semantic rule must fire on its BAD
cases and stay silent on the GOOD ones), exercises the suppression and
baseline flows, drives the negative paths (missing/stale
compile_commands.json, unresolvable include after a header rename,
unparseable TU) and asserts they produce actionable exit-2 diagnostics,
and finally proves the acceptance criterion: stripping a
mutation_epoch_ bump from the real SocialGraph makes epoch-discipline
fail.

Run directly or via ctest (registered as sight_analyzer_selftest).
"""

import json
import pathlib
import re
import shutil
import subprocess
import sys
import tempfile

REPO = pathlib.Path(__file__).resolve().parents[2]
ANALYZER = REPO / "tools" / "sight_analyzer.py"
FIXTURES = REPO / "tests" / "tools" / "fixtures" / "analyzer"

PASSED = 0
FAILED = []


def expect(name, cond, detail=""):
    global PASSED
    if cond:
        PASSED += 1
        print(f"  ok  {name}")
    else:
        FAILED.append(name)
        print(f"FAIL  {name}  {detail}")


def make_tree(tmp, rel_sources):
    """Copies fixture files into tmp/src/... and writes a matching
    compile_commands.json under tmp/build/."""
    root = pathlib.Path(tmp)
    entries = []
    for rel in rel_sources:
        dst = root / rel
        dst.parent.mkdir(parents=True, exist_ok=True)
        shutil.copy(FIXTURES / rel, dst)
        if rel.endswith(".cc"):
            entries.append(compile_entry(root, dst))
    write_compile_commands(root, entries)
    return root


def compile_entry(root, path):
    return {
        "directory": str(root),
        "command": f"/usr/bin/c++ -I{root}/src -I{REPO}/src -std=c++20 "
                   f"-c {path}",
        "file": str(path),
    }


def write_compile_commands(root, entries):
    build = root / "build"
    build.mkdir(exist_ok=True)
    (build / "compile_commands.json").write_text(
        json.dumps(entries, indent=2))


def run_analyzer(root, *extra):
    return subprocess.run(
        [sys.executable, str(ANALYZER), "--root", str(root),
         "--build-dir", str(pathlib.Path(root) / "build"),
         "--frontend", "internal", *extra],
        capture_output=True, text=True)


def check_rule_case(name, fixture_rel, rule, must_flag, must_not_flag,
                    min_findings):
    """Runs one fixture tree; asserts each `must_flag` function appears
    in a finding of `rule` and no `must_not_flag` function does."""
    with tempfile.TemporaryDirectory() as tmp:
        root = make_tree(tmp, [fixture_rel])
        proc = run_analyzer(root, "--rule", rule)
        findings = [ln for ln in proc.stdout.splitlines()
                    if f"[{rule}]" in ln]
        expect(f"{name}: exits 1 with findings", proc.returncode == 1,
               f"rc={proc.returncode}\n{proc.stdout}{proc.stderr}")
        expect(f"{name}: >= {min_findings} findings",
               len(findings) >= min_findings,
               f"got {len(findings)}:\n{proc.stdout}")
        for fn in must_flag:
            expect(f"{name}: flags {fn}",
                   any(fn in ln for ln in findings), proc.stdout)
        for fn in must_not_flag:
            expect(f"{name}: does not flag {fn}",
                   not any(fn in ln for ln in findings), proc.stdout)
        return proc


def main():
    # --- each rule fires on its seeded fixture ---------------------------
    check_rule_case(
        "epoch", "src/graph/epoch_fixture.cc", "epoch-discipline",
        must_flag=["AddUserBad", "AddEdgeBad", "SetBad"],
        must_not_flag=["AddGood", "AddManyGood", "NumUsersGood",
                       "ReserveSuppressed", "ScratchBuffer"],
        min_findings=3)

    proc = check_rule_case(
        "lock", "src/service/lock_fixture.cc", "lock-discipline",
        must_flag=["DirectBad", "SubmitBad", "TransitiveBad",
                   "CvTwoLocksBad"],
        must_not_flag=["ScopedOk", "CvOk", "UnlockOk", "SuppressedBad"],
        min_findings=5)
    expect("lock: reports the ABBA inversion",
           "inconsistent lock order" in proc.stdout and
           "OrderAB" in proc.stdout or "OrderBA" in proc.stdout,
           proc.stdout)
    expect("lock: transitive finding shows a witness chain",
           re.search(r"TransitiveBad.*Helper.*->", proc.stdout) is not None,
           proc.stdout)

    check_rule_case(
        "hot-path", "src/service/hot_fixture.cc", "hot-path-rebuild",
        must_flag=["EncodedProfileTable::Build", "Compact()",
                   "ProfileCodec construction"],
        must_not_flag=["Refresh", "OfflineRebuild"],
        min_findings=4)

    check_rule_case(
        "status", "src/core/status_fixture.cc", "status-discipline",
        must_flag=["CloseBad", "TickBad", "MaybeBad", "ParseBad"],
        must_not_flag=["CloseOk", "TickOk", "ForwardOk", "CountOk",
                       "SuppressedOk"],
        min_findings=4)

    # --- suppressed findings are visible under --verbose -----------------
    with tempfile.TemporaryDirectory() as tmp:
        root = make_tree(tmp, ["src/core/status_fixture.cc"])
        proc = run_analyzer(root, "--rule", "status-discipline",
                            "--verbose")
        expect("verbose lists the suppressed finding",
               "suppressed:" in proc.stdout and
               "SuppressedOk" in proc.stdout, proc.stdout)

    # --- clean tree exits 0 ----------------------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        root = pathlib.Path(tmp)
        f = root / "src" / "core" / "clean.cc"
        f.parent.mkdir(parents=True)
        f.write_text("namespace sight {\n"
                     "int Add(int a, int b) { return a + b; }\n"
                     "}  // namespace sight\n")
        write_compile_commands(root, [compile_entry(root, f)])
        proc = run_analyzer(root)
        expect("clean tree exits 0", proc.returncode == 0,
               f"rc={proc.returncode}\n{proc.stdout}{proc.stderr}")

    # --- baseline flow: write, then re-run clean -------------------------
    with tempfile.TemporaryDirectory() as tmp:
        root = make_tree(tmp, ["src/core/status_fixture.cc"])
        baseline = root / "baseline.json"
        proc = run_analyzer(root, "--baseline", str(baseline),
                            "--write-baseline")
        expect("--write-baseline exits 0", proc.returncode == 0,
               proc.stderr)
        data = json.loads(baseline.read_text())
        expect("baseline records the findings",
               len(data["findings"]) >= 4, baseline.read_text())
        proc = run_analyzer(root, "--baseline", str(baseline))
        expect("baselined tree exits 0", proc.returncode == 0,
               f"rc={proc.returncode}\n{proc.stdout}")
        expect("summary counts baselined findings",
               "baselined" in proc.stderr, proc.stderr)

    # --- negative path: missing compile_commands.json --------------------
    with tempfile.TemporaryDirectory() as tmp:
        root = pathlib.Path(tmp)
        (root / "src").mkdir()
        proc = run_analyzer(root)
        expect("missing compile_commands exits 2", proc.returncode == 2,
               f"rc={proc.returncode}\n{proc.stdout}{proc.stderr}")
        expect("missing compile_commands names the fix",
               "cmake -B build" in proc.stderr, proc.stderr)

    # --- negative path: stale entry (source deleted/renamed) -------------
    with tempfile.TemporaryDirectory() as tmp:
        root = make_tree(tmp, ["src/core/status_fixture.cc"])
        gone = root / "src" / "core" / "renamed_away.cc"
        entries = json.loads(
            (root / "build" / "compile_commands.json").read_text())
        entries.append(compile_entry(root, gone))
        write_compile_commands(root, entries)
        proc = run_analyzer(root)
        expect("stale compile commands exit 2", proc.returncode == 2,
               f"rc={proc.returncode}\n{proc.stdout}{proc.stderr}")
        expect("stale diagnostic says to re-configure",
               "stale" in proc.stderr and "configure" in proc.stderr,
               proc.stderr)

    # --- negative path: header renamed after configure -------------------
    with tempfile.TemporaryDirectory() as tmp:
        root = pathlib.Path(tmp)
        f = root / "src" / "core" / "uses_header.cc"
        f.parent.mkdir(parents=True)
        f.write_text('#include "core/renamed_header.h"\n'
                     "namespace sight {\nvoid F() {}\n}\n")
        write_compile_commands(root, [compile_entry(root, f)])
        proc = run_analyzer(root)
        expect("unresolvable include exits 2", proc.returncode == 2,
               f"rc={proc.returncode}\n{proc.stdout}{proc.stderr}")
        expect("include diagnostic names the header",
               "renamed_header.h" in proc.stderr and
               "renamed or removed" in proc.stderr, proc.stderr)

    # --- negative path: unparseable TU -----------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        root = pathlib.Path(tmp)
        dst = root / "src" / "broken" / "unbalanced.cc"
        dst.parent.mkdir(parents=True)
        shutil.copy(FIXTURES / "broken" / "unbalanced.cc", dst)
        write_compile_commands(root, [compile_entry(root, dst)])
        proc = run_analyzer(root)
        expect("unparseable TU exits 2 (no crash)", proc.returncode == 2,
               f"rc={proc.returncode}\n{proc.stdout}{proc.stderr}")
        expect("parse diagnostic is actionable",
               "failed to parse" in proc.stderr or
               "unterminated" in proc.stderr, proc.stderr)

    # --- CLI: --list-rules ------------------------------------------------
    proc = subprocess.run(
        [sys.executable, str(ANALYZER), "--list-rules"],
        capture_output=True, text=True)
    expect("--list-rules names all four rules",
           proc.returncode == 0 and all(
               r in proc.stdout for r in
               ["epoch-discipline", "lock-discipline", "hot-path-rebuild",
                "status-discipline"]), proc.stdout)

    # --- acceptance criterion: stripping a real bump fails the build -----
    with tempfile.TemporaryDirectory() as tmp:
        root = pathlib.Path(tmp)
        graph_dir = root / "src" / "graph"
        graph_dir.mkdir(parents=True)
        shutil.copy(REPO / "src" / "graph" / "social_graph.h", graph_dir)
        cc_text = (REPO / "src" / "graph" /
                   "social_graph.cc").read_text()
        assert "++mutation_epoch_;" in cc_text
        idx = cc_text.rfind("++mutation_epoch_;")
        stripped = cc_text[:idx] + cc_text[idx + len("++mutation_epoch_;"):]
        (graph_dir / "social_graph.cc").write_text(stripped)
        write_compile_commands(root, [
            compile_entry(root, graph_dir / "social_graph.cc")])
        proc = run_analyzer(root, "--rule", "epoch-discipline")
        expect("stripping a real SocialGraph bump fails epoch-discipline",
               proc.returncode == 1 and
               "[epoch-discipline]" in proc.stdout and
               "SocialGraph" in proc.stdout,
               f"rc={proc.returncode}\n{proc.stdout}{proc.stderr}")
        # ... and the pristine sources pass.
        shutil.copy(REPO / "src" / "graph" / "social_graph.cc", graph_dir)
        proc = run_analyzer(root, "--rule", "epoch-discipline")
        expect("pristine SocialGraph passes epoch-discipline",
               proc.returncode == 0,
               f"rc={proc.returncode}\n{proc.stdout}{proc.stderr}")

    print(f"\n{PASSED} passed, {len(FAILED)} failed")
    return 1 if FAILED else 0


if __name__ == "__main__":
    sys.exit(main())
