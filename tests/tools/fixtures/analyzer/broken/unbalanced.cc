// Deliberately unparseable translation unit (unterminated block comment)
// used by tests/tools/sight_analyzer_test.py to assert the analyzer
// reports an actionable tool error (exit 2) instead of crashing.

namespace sight {

void Fine() {}

/* this comment never ends
