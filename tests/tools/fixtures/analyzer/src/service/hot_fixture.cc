// Seeded violations for the hot-path-rebuild rule: a miniature
// RiskService whose drain path reaches EncodedProfileTable::Build,
// SimilarityMatrix::Compact, and ProfileCodec construction outside the
// sanctioned cold-rebuild fallbacks. Never compiled; driven by
// tests/tools/sight_analyzer_test.py.

#include <cstddef>

namespace sight {

class ProfileCodec {
 public:
  explicit ProfileCodec(size_t num_attrs);
};

class EncodedProfileTable {
 public:
  static EncodedProfileTable Build();
};

class SimilarityMatrix {
 public:
  void Compact();
};

class StrangerEncodeCache {
 public:
  // GOOD: the sanctioned cold-rebuild fallback may call Build.
  void Refresh() { EncodedProfileTable::Build(); }
};

class RiskService {
 public:
  // Entry point: the analyzer walks the call graph from here.
  void DrainShard() { RebuildEverything(); }

 private:
  void RebuildEverything() {
    // BAD: full encode rebuild on the serving path.
    EncodedProfileTable::Build();
    // BAD: matrix recompaction on the serving path.
    weights_.Compact();
    // BAD: codec construction (temporary form) on the serving path.
    ProfileCodec(4);
    // BAD: codec construction (declaration form) on the serving path.
    ProfileCodec codec(8);
    // GOOD: the sanctioned fallback is reachable but not reported.
    cache_.Refresh();
    (void)codec;
  }

  SimilarityMatrix weights_;
  StrangerEncodeCache cache_;
};

// GOOD: not reachable from any serving entry point — rebuilds are fine
// in offline/batch code.
void OfflineRebuild() {
  EncodedProfileTable::Build();
  ProfileCodec codec(2);
  (void)codec;
}

}  // namespace sight
