// Seeded violations for the lock-discipline rule: blocking pool
// operations and condition-variable waits reached while service mutex
// scopes are held, plus an ABBA lock-order inversion. Never compiled;
// driven by tests/tools/sight_analyzer_test.py.

#include <condition_variable>
#include <cstddef>
#include <mutex>

namespace sight {

class ThreadPool;
void ParallelFor(ThreadPool* pool, size_t n);

class FixtureService {
 public:
  // BAD: ParallelFor directly under the shard lock.
  void DirectBad() {
    std::lock_guard<std::mutex> lock(shard_mutex_);
    ParallelFor(pool_, 64);
  }

  // BAD: blocking pool call under the lock via the receiver heuristic.
  void SubmitBad() {
    std::lock_guard<std::mutex> lock(shard_mutex_);
    pool_->Submit();
  }

  // BAD: the blocking call is two hops down the call graph.
  void TransitiveBad() {
    std::lock_guard<std::mutex> lock(shard_mutex_);
    Helper();
  }

  // BAD: cv wait with two locks held — the wait only releases its own.
  void CvTwoLocksBad() {
    std::unique_lock<std::mutex> outer(stats_mutex_);
    std::unique_lock<std::mutex> lock(shard_mutex_);
    ready_.wait(lock);
  }

  // BAD pair: OrderAB and OrderBA acquire the same mutexes in opposite
  // orders.
  void OrderAB() {
    std::lock_guard<std::mutex> a(shard_mutex_);
    std::lock_guard<std::mutex> b(stats_mutex_);
    ++counter_;
  }
  void OrderBA() {
    std::lock_guard<std::mutex> b(stats_mutex_);
    std::lock_guard<std::mutex> a(shard_mutex_);
    --counter_;
  }

  // GOOD: the lock is released before the blocking call.
  void ScopedOk() {
    {
      std::lock_guard<std::mutex> lock(shard_mutex_);
      ++counter_;
    }
    ParallelFor(pool_, 64);
  }

  // GOOD: a cv wait holding only its own lock is the intended pattern.
  void CvOk() {
    std::unique_lock<std::mutex> lock(shard_mutex_);
    ready_.wait(lock);
  }

  // GOOD: unlock() deactivates the scope before the blocking call.
  void UnlockOk() {
    std::unique_lock<std::mutex> lock(shard_mutex_);
    ++counter_;
    lock.unlock();
    ParallelFor(pool_, 64);
  }

  // GOOD: suppressed violation for the suppression-flow test.
  void SuppressedBad() {
    std::lock_guard<std::mutex> lock(shard_mutex_);
    // SIGHT_ANALYZER_OK(lock-discipline): fixture for suppression flow.
    ParallelFor(pool_, 64);
  }

 private:
  void Helper() { Deeper(); }
  void Deeper() { ParallelFor(pool_, 8); }

  std::mutex shard_mutex_;
  std::mutex stats_mutex_;
  std::condition_variable ready_;
  ThreadPool* pool_ = nullptr;
  int counter_ = 0;
};

}  // namespace sight
