// Seeded violations for the status-discipline rule: discarded
// Status/Result returns that [[nodiscard]] alone can miss. Never
// compiled; driven by tests/tools/sight_analyzer_test.py.

namespace sight {

class Status {
 public:
  bool ok() const;
  void IgnoreError() const;
  static Status OK();
};

template <typename T>
class Result {
 public:
  bool ok() const;
  Status status() const;
};

Status Flush();
Status Shutdown();
Result<int> Parse();
int Count();  // not status-returning: free to discard

class Store {
 public:
  Status Persist();

  // BAD: discards the Status returned by a sibling method.
  void CloseBad() { Persist(); }

  // GOOD: explicit discard via IgnoreError().
  void CloseOk() { Persist().IgnoreError(); }
};

// BAD: free-function Status discarded.
void TickBad() { Flush(); }

// BAD: discarded inside an if body (no compiler diagnostic for
// expression statements behind macros).
void MaybeBad(bool cond) {
  if (cond) Shutdown();
}

// BAD: Result<T> discarded.
void ParseBad() { Parse(); }

// GOOD: the value is consumed by the check.
bool TickOk() { return Flush().ok(); }

// GOOD: propagated to the caller.
Status ForwardOk() { return Flush(); }

// GOOD: non-status returns may be discarded.
void CountOk() { Count(); }

// GOOD: suppressed discard.
void SuppressedOk() {
  // SIGHT_ANALYZER_OK(status-discipline): fixture for suppression flow.
  Flush();
}

}  // namespace sight
