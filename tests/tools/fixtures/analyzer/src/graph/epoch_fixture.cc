// Seeded violations for the epoch-discipline rule. This file is never
// compiled into the library; tests/tools/sight_analyzer_test.py points a
// synthetic compile_commands.json at it and asserts the analyzer flags
// exactly the BAD cases below.

#include <cstdint>
#include <vector>

namespace sight {

using UserId = uint32_t;

class SocialGraph {
 public:
  // BAD: mutates adjacency_ but never bumps mutation_epoch_.
  void AddUserBad(UserId u) {
    adjacency_.emplace_back();
    ids_.push_back(u);
  }

  // BAD: the early-return path mutates num_edges_ without a bump.
  bool AddEdgeBad(UserId a, UserId b) {
    ++num_edges_;
    if (a == b) return false;  // mutated, not bumped: stale carry
    ++mutation_epoch_;
    return true;
  }

  // GOOD: every mutating path bumps before returning.
  void AddGood(UserId u) {
    adjacency_.emplace_back();
    ids_.push_back(u);
    ++mutation_epoch_;
  }

  // GOOD: conditional mutation with a matching conditional bump.
  void AddManyGood(size_t count) {
    if (count > 0) {
      adjacency_.resize(adjacency_.size() + count);
      ++mutation_epoch_;
    }
  }

  // GOOD: const methods are out of scope for the rule.
  size_t NumUsersGood() const { return adjacency_.size(); }

  // SIGHT_ANALYZER_OK(epoch-discipline): fixture for suppression flow.
  void ReserveSuppressed(size_t n) { adjacency_.reserve(n); }

 private:
  std::vector<std::vector<UserId>> adjacency_;
  std::vector<UserId> ids_;
  size_t num_edges_ = 0;
  uint64_t mutation_epoch_ = 0;
};

class ProfileTable {
 public:
  // BAD: mutation via a member method call, no bump anywhere.
  void SetBad(UserId u, int value) { values_.push_back(value + int(u)); }

 private:
  std::vector<int> values_;
  uint64_t mutation_epoch_ = 0;
};

// Not an epoch-tracked class: mutations here are not the rule's business.
class ScratchBuffer {
 public:
  void Push(int v) { data_.push_back(v); }

 private:
  std::vector<int> data_;
};

}  // namespace sight
