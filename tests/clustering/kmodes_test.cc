#include "clustering/kmodes.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "graph/profile.h"
#include "util/random.h"

namespace sight {
namespace {

ProfileSchema TestSchema() {
  return ProfileSchema::Create({"gender", "locale"}).value();
}

ProfileTable TwoGroupPopulation() {
  ProfileTable table(TestSchema());
  auto set = [&](UserId u, std::vector<std::string> values) {
    Profile p;
    p.values = std::move(values);
    EXPECT_TRUE(table.Set(u, p).ok());
  };
  for (UserId u = 0; u < 5; ++u) set(u, {"male", "tr_TR"});
  for (UserId u = 5; u < 10; ++u) set(u, {"female", "en_US"});
  return table;
}

TEST(KModesTest, CreateValidates) {
  KModesConfig config;
  config.k = 0;
  EXPECT_FALSE(KModes::Create(TestSchema(), config).ok());
  config.k = 2;
  config.weights = {1.0};
  EXPECT_FALSE(KModes::Create(TestSchema(), config).ok());
  config.weights = {1.0, -1.0};
  EXPECT_FALSE(KModes::Create(TestSchema(), config).ok());
  config.weights = {};
  EXPECT_TRUE(KModes::Create(TestSchema(), config).ok());
}

TEST(KModesTest, DistanceCountsMismatches) {
  KModesConfig config;
  config.k = 2;
  KModes km = KModes::Create(TestSchema(), config).value();
  Profile p;
  p.values = {"male", "tr_TR"};
  EXPECT_DOUBLE_EQ(km.Distance(p, {"male", "tr_TR"}), 0.0);
  EXPECT_DOUBLE_EQ(km.Distance(p, {"male", "en_US"}), 1.0);
  EXPECT_DOUBLE_EQ(km.Distance(p, {"female", "en_US"}), 2.0);
}

TEST(KModesTest, MissingValueIsAlwaysMismatch) {
  KModesConfig config;
  config.k = 2;
  KModes km = KModes::Create(TestSchema(), config).value();
  Profile p;
  p.values = {"", "tr_TR"};
  EXPECT_DOUBLE_EQ(km.Distance(p, {"", "tr_TR"}), 1.0);
}

TEST(KModesTest, RecoversTwoGroups) {
  ProfileTable table = TwoGroupPopulation();
  KModesConfig config;
  config.k = 2;
  KModes km = KModes::Create(TestSchema(), config).value();
  Rng rng(1234);
  std::vector<UserId> users(10);
  for (UserId u = 0; u < 10; ++u) users[u] = u;
  auto clustering = km.Cluster(table, users, &rng).value();
  EXPECT_EQ(clustering.num_clusters(), 2u);
  for (size_t i = 1; i < 5; ++i) {
    EXPECT_EQ(clustering.assignments[i], clustering.assignments[0]);
  }
  for (size_t i = 6; i < 10; ++i) {
    EXPECT_EQ(clustering.assignments[i], clustering.assignments[5]);
  }
}

TEST(KModesTest, KCappedByInput) {
  ProfileTable table = TwoGroupPopulation();
  KModesConfig config;
  config.k = 50;
  KModes km = KModes::Create(TestSchema(), config).value();
  Rng rng(5);
  auto clustering = km.Cluster(table, {0, 1, 5}, &rng).value();
  EXPECT_LE(clustering.num_clusters(), 3u);
  EXPECT_EQ(clustering.assignments.size(), 3u);
}

TEST(KModesTest, EmptyInput) {
  ProfileTable table = TwoGroupPopulation();
  KModesConfig config;
  KModes km = KModes::Create(TestSchema(), config).value();
  Rng rng(5);
  auto clustering = km.Cluster(table, {}, &rng).value();
  EXPECT_EQ(clustering.num_clusters(), 0u);
}

TEST(KModesTest, PartitionInvariant) {
  ProfileTable table = TwoGroupPopulation();
  KModesConfig config;
  config.k = 3;
  KModes km = KModes::Create(TestSchema(), config).value();
  Rng rng(77);
  std::vector<UserId> users = {0, 5, 1, 6, 2, 7};
  auto clustering = km.Cluster(table, users, &rng).value();
  size_t total = 0;
  for (const auto& c : clustering.clusters) total += c.size();
  EXPECT_EQ(total, users.size());
  for (size_t i = 0; i < users.size(); ++i) {
    ASSERT_LT(clustering.assignments[i], clustering.num_clusters());
  }
}

TEST(KModesTest, DeterministicGivenSeed) {
  ProfileTable table = TwoGroupPopulation();
  KModesConfig config;
  config.k = 2;
  KModes km = KModes::Create(TestSchema(), config).value();
  std::vector<UserId> users(10);
  for (UserId u = 0; u < 10; ++u) users[u] = u;
  Rng rng1(9);
  Rng rng2(9);
  auto c1 = km.Cluster(table, users, &rng1).value();
  auto c2 = km.Cluster(table, users, &rng2).value();
  EXPECT_EQ(c1.assignments, c2.assignments);
}

TEST(KModesTest, SchemaMismatchRejected) {
  ProfileSchema other = ProfileSchema::Create({"a"}).value();
  ProfileTable table(other);
  KModesConfig config;
  KModes km = KModes::Create(TestSchema(), config).value();
  Rng rng(3);
  EXPECT_EQ(km.Cluster(table, {}, &rng).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace sight
