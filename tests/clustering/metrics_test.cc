#include "clustering/metrics.h"

#include <gtest/gtest.h>

namespace sight {
namespace {

TEST(PurityTest, PerfectClustering) {
  std::vector<size_t> assignments = {0, 0, 1, 1};
  std::vector<size_t> truth = {7, 7, 9, 9};
  EXPECT_DOUBLE_EQ(ClusterPurity(assignments, truth).value(), 1.0);
}

TEST(PurityTest, MixedCluster) {
  std::vector<size_t> assignments = {0, 0, 0, 0};
  std::vector<size_t> truth = {1, 1, 1, 2};
  EXPECT_DOUBLE_EQ(ClusterPurity(assignments, truth).value(), 0.75);
}

TEST(PurityTest, SingletonClustersAlwaysPure) {
  std::vector<size_t> assignments = {0, 1, 2, 3};
  std::vector<size_t> truth = {0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(ClusterPurity(assignments, truth).value(), 1.0);
}

TEST(PurityTest, RejectsBadInput) {
  EXPECT_FALSE(ClusterPurity({0, 1}, {0}).ok());
  EXPECT_FALSE(ClusterPurity({}, {}).ok());
}

TEST(NmiTest, IdenticalPartitionsScoreOne) {
  std::vector<size_t> a = {0, 0, 1, 1, 2, 2};
  EXPECT_NEAR(NormalizedMutualInformation(a, a).value(), 1.0, 1e-12);
}

TEST(NmiTest, RelabeledPartitionStillScoresOne) {
  std::vector<size_t> a = {0, 0, 1, 1};
  std::vector<size_t> b = {5, 5, 3, 3};
  EXPECT_NEAR(NormalizedMutualInformation(a, b).value(), 1.0, 1e-12);
}

TEST(NmiTest, IndependentPartitionsScoreZero) {
  // Every (cluster, class) cell has equal mass -> zero mutual information.
  std::vector<size_t> a = {0, 0, 1, 1};
  std::vector<size_t> b = {0, 1, 0, 1};
  EXPECT_NEAR(NormalizedMutualInformation(a, b).value(), 0.0, 1e-12);
}

TEST(NmiTest, DegenerateSingleClusterBoth) {
  std::vector<size_t> a = {0, 0, 0};
  EXPECT_DOUBLE_EQ(NormalizedMutualInformation(a, a).value(), 1.0);
}

TEST(NmiTest, SingleClusterVsRealPartitionScoresZero) {
  std::vector<size_t> a = {0, 0, 0, 0};
  std::vector<size_t> b = {0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(NormalizedMutualInformation(a, b).value(), 0.0);
}

TEST(NmiTest, IntermediateValue) {
  std::vector<size_t> a = {0, 0, 0, 1, 1, 1};
  std::vector<size_t> b = {0, 0, 1, 1, 1, 1};
  double nmi = NormalizedMutualInformation(a, b).value();
  EXPECT_GT(nmi, 0.0);
  EXPECT_LT(nmi, 1.0);
}

TEST(NmiTest, RejectsBadInput) {
  EXPECT_FALSE(NormalizedMutualInformation({0}, {0, 1}).ok());
  EXPECT_FALSE(NormalizedMutualInformation({}, {}).ok());
}

}  // namespace
}  // namespace sight
