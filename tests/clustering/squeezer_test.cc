#include "clustering/squeezer.h"

#include <gtest/gtest.h>

#include "graph/profile.h"

namespace sight {
namespace {

ProfileSchema TestSchema() {
  return ProfileSchema::Create({"gender", "locale"}).value();
}

ProfileTable TwoGroupPopulation() {
  ProfileTable table(TestSchema());
  auto set = [&](UserId u, std::vector<std::string> values) {
    Profile p;
    p.values = std::move(values);
    EXPECT_TRUE(table.Set(u, p).ok());
  };
  // Group A: male/tr (users 0-3); group B: female/us (users 4-7).
  for (UserId u = 0; u < 4; ++u) set(u, {"male", "tr_TR"});
  for (UserId u = 4; u < 8; ++u) set(u, {"female", "en_US"});
  return table;
}

Squeezer MakeSqueezer(double threshold,
                      std::vector<double> weights = {}) {
  SqueezerConfig config;
  config.threshold = threshold;
  config.weights = std::move(weights);
  return Squeezer::Create(TestSchema(), config).value();
}

TEST(ClusterSummaryTest, TracksSupports) {
  ClusterSummary summary(2);
  Profile p;
  p.values = {"male", "tr_TR"};
  summary.Add(p);
  summary.Add(p);
  p.values = {"female", "tr_TR"};
  summary.Add(p);
  EXPECT_EQ(summary.size(), 3u);
  EXPECT_EQ(summary.Support(0, "male"), 2u);
  EXPECT_EQ(summary.Support(0, "female"), 1u);
  EXPECT_EQ(summary.Support(0, "other"), 0u);
  EXPECT_EQ(summary.TotalSupport(1), 3u);
}

TEST(ClusterSummaryTest, MissingValuesSkipped) {
  ClusterSummary summary(2);
  Profile p;
  p.values = {"male", ""};
  summary.Add(p);
  EXPECT_EQ(summary.TotalSupport(0), 1u);
  EXPECT_EQ(summary.TotalSupport(1), 0u);
}

TEST(SqueezerTest, CreateValidates) {
  SqueezerConfig config;
  config.threshold = 1.5;
  EXPECT_FALSE(Squeezer::Create(TestSchema(), config).ok());
  config.threshold = 0.4;
  config.weights = {1.0};
  EXPECT_FALSE(Squeezer::Create(TestSchema(), config).ok());
  config.weights = {-1.0, 1.0};
  EXPECT_FALSE(Squeezer::Create(TestSchema(), config).ok());
  config.weights = {0.0, 0.0};
  EXPECT_FALSE(Squeezer::Create(TestSchema(), config).ok());
  config.weights = {};
  EXPECT_TRUE(Squeezer::Create(TestSchema(), config).ok());
}

TEST(SqueezerTest, SimilarityToMatchingClusterIsOne) {
  Squeezer squeezer = MakeSqueezer(0.4);
  ClusterSummary summary(2);
  Profile p;
  p.values = {"male", "tr_TR"};
  summary.Add(p);
  summary.Add(p);
  EXPECT_DOUBLE_EQ(squeezer.Similarity(p, summary), 1.0);
}

TEST(SqueezerTest, SimilarityToEmptyClusterIsZero) {
  Squeezer squeezer = MakeSqueezer(0.4);
  ClusterSummary summary(2);
  Profile p;
  p.values = {"male", "tr_TR"};
  EXPECT_DOUBLE_EQ(squeezer.Similarity(p, summary), 0.0);
}

TEST(SqueezerTest, SimilarityIsSupportFraction) {
  Squeezer squeezer = MakeSqueezer(0.4);
  ClusterSummary summary(2);
  Profile a;
  a.values = {"male", "tr_TR"};
  Profile b;
  b.values = {"female", "tr_TR"};
  summary.Add(a);
  summary.Add(b);
  // For b: gender support 1/2, locale 2/2 -> (0.5*0.5 + 0.5*1.0) = 0.75.
  EXPECT_DOUBLE_EQ(squeezer.Similarity(b, summary), 0.75);
}

TEST(SqueezerTest, SeparatesDistinctGroups) {
  ProfileTable table = TwoGroupPopulation();
  Squeezer squeezer = MakeSqueezer(0.4);
  auto clustering =
      squeezer.Cluster(table, {0, 1, 2, 3, 4, 5, 6, 7}).value();
  EXPECT_EQ(clustering.num_clusters(), 2u);
  // All of group A in one cluster, group B in the other.
  for (size_t i = 1; i < 4; ++i) {
    EXPECT_EQ(clustering.assignments[i], clustering.assignments[0]);
  }
  for (size_t i = 5; i < 8; ++i) {
    EXPECT_EQ(clustering.assignments[i], clustering.assignments[4]);
  }
  EXPECT_NE(clustering.assignments[0], clustering.assignments[4]);
}

TEST(SqueezerTest, ThresholdOneSplitsEverythingDissimilar) {
  ProfileTable table = TwoGroupPopulation();
  Squeezer squeezer = MakeSqueezer(1.0);
  auto clustering =
      squeezer.Cluster(table, {0, 4, 1, 5}).value();
  // Identical profiles still merge (similarity exactly 1.0 >= 1.0).
  EXPECT_EQ(clustering.num_clusters(), 2u);
}

TEST(SqueezerTest, ThresholdZeroMergesEverything) {
  ProfileTable table = TwoGroupPopulation();
  Squeezer squeezer = MakeSqueezer(0.0);
  auto clustering =
      squeezer.Cluster(table, {0, 1, 4, 5}).value();
  EXPECT_EQ(clustering.num_clusters(), 1u);
}

TEST(SqueezerTest, EmptyInputYieldsNoClusters) {
  ProfileTable table = TwoGroupPopulation();
  Squeezer squeezer = MakeSqueezer(0.4);
  auto clustering = squeezer.Cluster(table, {}).value();
  EXPECT_EQ(clustering.num_clusters(), 0u);
  EXPECT_TRUE(clustering.assignments.empty());
}

TEST(SqueezerTest, SingleUserFormsSingleCluster) {
  ProfileTable table = TwoGroupPopulation();
  Squeezer squeezer = MakeSqueezer(0.4);
  auto clustering = squeezer.Cluster(table, {3}).value();
  EXPECT_EQ(clustering.num_clusters(), 1u);
  EXPECT_EQ(clustering.clusters[0], (std::vector<UserId>{3}));
}

TEST(SqueezerTest, ClustersPartitionTheInput) {
  ProfileTable table = TwoGroupPopulation();
  Squeezer squeezer = MakeSqueezer(0.6);
  std::vector<UserId> users = {0, 4, 1, 5, 2, 6, 3, 7};
  auto clustering = squeezer.Cluster(table, users).value();
  size_t total = 0;
  for (const auto& c : clustering.clusters) total += c.size();
  EXPECT_EQ(total, users.size());
  ASSERT_EQ(clustering.assignments.size(), users.size());
  for (size_t i = 0; i < users.size(); ++i) {
    const auto& members =
        clustering.clusters[clustering.assignments[i]];
    EXPECT_NE(std::find(members.begin(), members.end(), users[i]),
              members.end());
  }
}

TEST(SqueezerTest, WeightsSteerClustering) {
  // With all weight on locale, gender differences are invisible.
  ProfileTable table(TestSchema());
  auto set = [&](UserId u, std::vector<std::string> values) {
    Profile p;
    p.values = std::move(values);
    EXPECT_TRUE(table.Set(u, p).ok());
  };
  set(0, {"male", "tr_TR"});
  set(1, {"female", "tr_TR"});
  set(2, {"male", "en_US"});
  Squeezer squeezer = MakeSqueezer(0.5, {0.0, 1.0});
  auto clustering = squeezer.Cluster(table, {0, 1, 2}).value();
  EXPECT_EQ(clustering.num_clusters(), 2u);
  EXPECT_EQ(clustering.assignments[0], clustering.assignments[1]);
  EXPECT_NE(clustering.assignments[0], clustering.assignments[2]);
}

TEST(SqueezerTest, SchemaMismatchRejected) {
  ProfileSchema other = ProfileSchema::Create({"a", "b", "c"}).value();
  ProfileTable table(other);
  Squeezer squeezer = MakeSqueezer(0.4);
  EXPECT_EQ(squeezer.Cluster(table, {}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SqueezerTest, OnePassIsOrderDependentButDeterministic) {
  ProfileTable table = TwoGroupPopulation();
  Squeezer squeezer = MakeSqueezer(0.4);
  auto c1 = squeezer.Cluster(table, {0, 1, 4, 5}).value();
  auto c2 = squeezer.Cluster(table, {0, 1, 4, 5}).value();
  EXPECT_EQ(c1.assignments, c2.assignments);
}

}  // namespace
}  // namespace sight
