#include <gtest/gtest.h>

#include "clustering/squeezer.h"
#include "graph/profile.h"

namespace sight {
namespace {

ProfileSchema TestSchema() {
  return ProfileSchema::Create({"gender", "locale"}).value();
}

ProfileTable TwoGroupPopulation() {
  ProfileTable table(TestSchema());
  auto set = [&](UserId u, std::vector<std::string> values) {
    Profile p;
    p.values = std::move(values);
    EXPECT_TRUE(table.Set(u, p).ok());
  };
  for (UserId u = 0; u < 4; ++u) set(u, {"male", "tr_TR"});
  for (UserId u = 4; u < 8; ++u) set(u, {"female", "en_US"});
  return table;
}

IncrementalSqueezer MakeIncremental(double threshold = 0.4) {
  SqueezerConfig config;
  config.threshold = threshold;
  return IncrementalSqueezer::Create(TestSchema(), config).value();
}

TEST(IncrementalSqueezerTest, StartsEmpty) {
  IncrementalSqueezer inc = MakeIncremental();
  EXPECT_EQ(inc.num_clusters(), 0u);
  EXPECT_EQ(inc.num_points(), 0u);
}

TEST(IncrementalSqueezerTest, MatchesBatchSqueezerOnSameOrder) {
  ProfileTable table = TwoGroupPopulation();
  std::vector<UserId> users = {0, 4, 1, 5, 2, 6, 3, 7};

  SqueezerConfig config;
  config.threshold = 0.4;
  auto batch = Squeezer::Create(TestSchema(), config)
                   .value()
                   .Cluster(table, users)
                   .value();

  IncrementalSqueezer inc = MakeIncremental();
  ASSERT_TRUE(inc.AddBatch(table, users).ok());
  EXPECT_EQ(inc.clustering().assignments, batch.assignments);
  EXPECT_EQ(inc.clustering().clusters, batch.clusters);
}

TEST(IncrementalSqueezerTest, LaterBatchJoinsEarlierClusters) {
  ProfileTable table = TwoGroupPopulation();
  IncrementalSqueezer inc = MakeIncremental();
  ASSERT_TRUE(inc.AddBatch(table, {0, 4}).ok());
  EXPECT_EQ(inc.num_clusters(), 2u);

  // Second "discovery wave": same profile groups, no new clusters.
  auto assigned = inc.AddBatch(table, {1, 2, 5, 6}).value();
  EXPECT_EQ(inc.num_clusters(), 2u);
  EXPECT_EQ(assigned[0], 0u);  // male/tr joins cluster of user 0
  EXPECT_EQ(assigned[2], 1u);  // female/us joins cluster of user 4
}

TEST(IncrementalSqueezerTest, AssignmentsNeverChangeRetroactively) {
  ProfileTable table = TwoGroupPopulation();
  IncrementalSqueezer inc = MakeIncremental();
  ASSERT_TRUE(inc.AddBatch(table, {0, 1}).ok());
  std::vector<size_t> before = inc.clustering().assignments;
  ASSERT_TRUE(inc.AddBatch(table, {4, 5, 2}).ok());
  for (size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(inc.clustering().assignments[i], before[i]);
  }
}

TEST(IncrementalSqueezerTest, AddReturnsClusterIndex) {
  ProfileTable table = TwoGroupPopulation();
  IncrementalSqueezer inc = MakeIncremental();
  EXPECT_EQ(inc.Add(table, 0).value(), 0u);
  EXPECT_EQ(inc.Add(table, 1).value(), 0u);
  EXPECT_EQ(inc.Add(table, 4).value(), 1u);
  EXPECT_EQ(inc.num_points(), 3u);
}

TEST(IncrementalSqueezerTest, GrownSetAssignMatchesFullRecluster) {
  // The grown-stranger-set carry case (DESIGN.md §14): cluster a prefix,
  // then assign the newly discovered suffix against the carried
  // clusters — the result must be bitwise-identical to re-clustering the
  // whole sequence from scratch, for every split point.
  ProfileTable table = TwoGroupPopulation();
  std::vector<UserId> users = {0, 4, 1, 5, 2, 6, 3, 7};
  SqueezerConfig config;
  config.threshold = 0.4;
  auto full = Squeezer::Create(TestSchema(), config)
                  .value()
                  .Cluster(table, users)
                  .value();
  for (size_t split = 0; split <= users.size(); ++split) {
    IncrementalSqueezer inc = MakeIncremental();
    std::vector<UserId> prefix(users.begin(),
                               users.begin() + static_cast<ptrdiff_t>(split));
    std::vector<UserId> suffix(users.begin() + static_cast<ptrdiff_t>(split),
                               users.end());
    ASSERT_TRUE(inc.AddBatch(table, prefix).ok());
    ASSERT_TRUE(inc.AddBatch(table, suffix).ok());
    EXPECT_EQ(inc.clustering().assignments, full.assignments)
        << "split " << split;
    EXPECT_EQ(inc.clustering().clusters, full.clusters) << "split " << split;
  }
}

TEST(SqueezerTest, MakeIncrementalMatchesClusterWeights) {
  // Squeezer::MakeIncremental must replicate Cluster()'s exact weight
  // chain (already-normalized weights pass through Create again), so a
  // cached incremental squeezer scores identically to the batch path
  // even under non-uniform weights.
  ProfileTable table = TwoGroupPopulation();
  std::vector<UserId> users = {0, 4, 1, 5, 2, 6, 3, 7};
  SqueezerConfig config;
  config.threshold = 0.4;
  config.weights = {3.0, 1.0};  // re-normalized inside Create
  Squeezer squeezer = Squeezer::Create(TestSchema(), config).value();
  auto batch = squeezer.Cluster(table, users).value();

  IncrementalSqueezer inc = squeezer.MakeIncremental(TestSchema()).value();
  ASSERT_TRUE(inc.AddBatch(table, users).ok());
  EXPECT_EQ(inc.clustering().assignments, batch.assignments);
  EXPECT_EQ(inc.clustering().clusters, batch.clusters);
}

TEST(IncrementalSqueezerTest, SchemaMismatchRejected) {
  ProfileTable other(ProfileSchema::Create({"a", "b", "c"}).value());
  IncrementalSqueezer inc = MakeIncremental();
  EXPECT_FALSE(inc.Add(other, 0).ok());
}

}  // namespace
}  // namespace sight
