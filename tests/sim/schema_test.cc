#include "sim/schema.h"

#include <set>

#include <gtest/gtest.h>

namespace sight::sim {
namespace {

TEST(LocaleTest, CodesRoundTrip) {
  for (Locale locale : kAllLocales) {
    auto parsed = LocaleFromCode(LocaleCode(locale));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), locale);
  }
}

TEST(LocaleTest, UnknownCodeIsNotFound) {
  EXPECT_EQ(LocaleFromCode("xx_XX").status().code(), StatusCode::kNotFound);
}

TEST(LocaleTest, PaperLocalesPresent) {
  // Table V covers TR, DE, US, IT, GB, ES, PL.
  EXPECT_TRUE(LocaleFromCode("tr_TR").ok());
  EXPECT_TRUE(LocaleFromCode("pl_PL").ok());
  EXPECT_TRUE(LocaleFromCode("en_GB").ok());
}

TEST(GenderTest, Names) {
  EXPECT_STREQ(GenderName(Gender::kMale), "male");
  EXPECT_STREQ(GenderName(Gender::kFemale), "female");
}

TEST(FacebookSchemaTest, HasExpectedAttributes) {
  ProfileSchema schema = FacebookSchema();
  EXPECT_EQ(schema.num_attributes(), kNumFacebookAttributes);
  EXPECT_TRUE(schema.FindAttribute("gender").ok());
  EXPECT_TRUE(schema.FindAttribute("locale").ok());
  EXPECT_TRUE(schema.FindAttribute("last_name").ok());
  EXPECT_TRUE(schema.FindAttribute("hometown").ok());
  EXPECT_TRUE(schema.FindAttribute("education").ok());
  EXPECT_TRUE(schema.FindAttribute("work").ok());
  EXPECT_EQ(schema.FindAttribute("gender").value(),
            static_cast<AttributeId>(FacebookAttribute::kGender));
}

TEST(ValueDistributionsTest, LastNamesComeFromLocalePool) {
  ValueDistributions dists;
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    std::string name = dists.SampleLastName(Locale::kTR, &rng);
    const auto& pool = dists.last_names(Locale::kTR);
    EXPECT_NE(std::find(pool.begin(), pool.end(), name), pool.end());
  }
}

TEST(ValueDistributionsTest, LocalePoolsAreDistinct) {
  ValueDistributions dists;
  std::set<std::string> tr(dists.last_names(Locale::kTR).begin(),
                           dists.last_names(Locale::kTR).end());
  // Polish surnames never collide with Turkish ones in our pools.
  for (const std::string& name : dists.last_names(Locale::kPL)) {
    EXPECT_EQ(tr.count(name), 0u);
  }
}

TEST(ValueDistributionsTest, ZipfFavorsHeadOfPool) {
  ValueDistributions dists;
  Rng rng(2);
  const std::string& top = dists.last_names(Locale::kUS)[0];
  int top_count = 0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    if (dists.SampleLastName(Locale::kUS, &rng) == top) ++top_count;
  }
  // 1/H(10) ~ 0.34 of mass on the head name.
  EXPECT_GT(top_count, n / 5);
}

TEST(ValueDistributionsTest, EducationSometimesMissing) {
  ValueDistributions dists;
  Rng rng(3);
  int missing = 0;
  const int n = 1000;
  for (int i = 0; i < n; ++i) {
    if (dists.SampleEducation(Locale::kIT, &rng).empty()) ++missing;
  }
  EXPECT_GT(missing, n / 5);
  EXPECT_LT(missing, n / 2);
}

TEST(MakeProfileTest, ProfileMatchesSchemaAndInputs) {
  ValueDistributions dists;
  Rng rng(4);
  Profile p = MakeProfile(Gender::kFemale, Locale::kPL, dists, &rng);
  ASSERT_EQ(p.values.size(), kNumFacebookAttributes);
  EXPECT_EQ(p.values[static_cast<size_t>(FacebookAttribute::kGender)],
            "female");
  EXPECT_EQ(p.values[static_cast<size_t>(FacebookAttribute::kLocale)],
            "pl_PL");
  EXPECT_FALSE(p.IsMissing(static_cast<AttributeId>(
      FacebookAttribute::kLastName)));
  EXPECT_FALSE(p.IsMissing(static_cast<AttributeId>(
      FacebookAttribute::kHometown)));
}

TEST(MakeProfileTest, DeterministicGivenRngState) {
  ValueDistributions dists;
  Rng rng1(5);
  Rng rng2(5);
  Profile a = MakeProfile(Gender::kMale, Locale::kDE, dists, &rng1);
  Profile b = MakeProfile(Gender::kMale, Locale::kDE, dists, &rng2);
  EXPECT_EQ(a.values, b.values);
}

}  // namespace
}  // namespace sight::sim
