#include "sim/owner_model.h"

#include <map>

#include <gtest/gtest.h>

#include "sim/schema.h"

namespace sight::sim {
namespace {

ProfileTable MakeProfiles() {
  ProfileTable table(FacebookSchema());
  auto set = [&](UserId u, const std::string& gender,
                 const std::string& locale) {
    Profile p;
    p.values = {gender, locale, "Smith", "City", "School", "Job"};
    EXPECT_TRUE(table.Set(u, p).ok());
  };
  set(0, "male", "tr_TR");
  set(1, "female", "tr_TR");
  set(2, "male", "en_US");
  set(3, "female", "en_US");
  return table;
}

OwnerAttitude NoNoiseAttitude() {
  OwnerAttitude a;
  a.label_noise = 0.0;
  a.locale_bias.fill(0.0);
  a.lastname_scale = 0.0;
  return a;
}

TEST(OwnerModelTest, CreateValidates) {
  ProfileTable profiles = MakeProfiles();
  OwnerAttitude a = NoNoiseAttitude();
  EXPECT_FALSE(OwnerModel::Create(a, nullptr).ok());
  a.threshold_low = 0.9;
  a.threshold_high = 0.5;
  EXPECT_FALSE(OwnerModel::Create(a, &profiles).ok());
  a = NoNoiseAttitude();
  a.label_noise = 1.5;
  EXPECT_FALSE(OwnerModel::Create(a, &profiles).ok());
  EXPECT_TRUE(OwnerModel::Create(NoNoiseAttitude(), &profiles).ok());
}

TEST(OwnerModelTest, HigherSimilarityLowersScore) {
  ProfileTable profiles = MakeProfiles();
  auto model = OwnerModel::Create(NoNoiseAttitude(), &profiles).value();
  EXPECT_GT(model.Score(0, 0.0, 0.0), model.Score(0, 0.3, 0.0));
  EXPECT_GT(model.Score(0, 0.3, 0.0), model.Score(0, 0.6, 0.0));
}

TEST(OwnerModelTest, HigherBenefitLowersScore) {
  ProfileTable profiles = MakeProfiles();
  auto model = OwnerModel::Create(NoNoiseAttitude(), &profiles).value();
  EXPECT_GT(model.Score(0, 0.1, 0.0), model.Score(0, 0.1, 0.5));
}

TEST(OwnerModelTest, GenderBiasRaisesMaleScores) {
  ProfileTable profiles = MakeProfiles();
  OwnerAttitude a = NoNoiseAttitude();
  a.gender_bias = 0.3;
  auto model = OwnerModel::Create(a, &profiles).value();
  // Users 0 (male) and 1 (female) share locale and everything else.
  EXPECT_NEAR(model.Score(0, 0.2, 0.1) - model.Score(1, 0.2, 0.1), 0.3,
              1e-12);
}

TEST(OwnerModelTest, LocaleBiasApplies) {
  ProfileTable profiles = MakeProfiles();
  OwnerAttitude a = NoNoiseAttitude();
  a.locale_bias[static_cast<size_t>(Locale::kUS)] = 0.2;
  auto model = OwnerModel::Create(a, &profiles).value();
  EXPECT_NEAR(model.Score(2, 0.1, 0.1) - model.Score(0, 0.1, 0.1), 0.2,
              1e-12);
}

TEST(OwnerModelTest, ThresholdsProduceAllThreeLabels) {
  ProfileTable profiles = MakeProfiles();
  OwnerAttitude a = NoNoiseAttitude();
  a.base = 0.55;
  a.gender_bias = 0.25;
  auto model = OwnerModel::Create(a, &profiles).value();
  // Male stranger, no similarity/benefit: 0.8 >= 0.65 -> very risky.
  EXPECT_EQ(model.TrueLabel(0, 0.0, 0.0), RiskLabel::kVeryRisky);
  // Male with strong similarity: 0.8 - 0.45 = 0.35 < 0.40 -> not risky.
  EXPECT_EQ(model.TrueLabel(0, 0.6, 0.0), RiskLabel::kNotRisky);
  // Female, moderate similarity: 0.55 - 0.45*0.2/0.5 = 0.37... pick one in
  // the middle band.
  EXPECT_EQ(model.TrueLabel(1, 0.05, 0.0), RiskLabel::kRisky);
}

TEST(OwnerModelTest, QueryIsConsistentAcrossRepeats) {
  ProfileTable profiles = MakeProfiles();
  OwnerAttitude a = NoNoiseAttitude();
  a.label_noise = 0.5;  // even with noise, answers must be reproducible
  a.noise_seed = 77;
  auto model = OwnerModel::Create(a, &profiles).value();
  for (UserId u = 0; u < 4; ++u) {
    RiskLabel first = model.QueryLabel(u, 0.2, 0.3);
    for (int i = 0; i < 5; ++i) {
      EXPECT_EQ(model.QueryLabel(u, 0.2, 0.3), first);
    }
  }
}

TEST(OwnerModelTest, QueryCountsTracked) {
  ProfileTable profiles = MakeProfiles();
  auto model = OwnerModel::Create(NoNoiseAttitude(), &profiles).value();
  EXPECT_EQ(model.num_queries(), 0u);
  model.QueryLabel(0, 0.1, 0.1);
  model.QueryLabel(1, 0.1, 0.1);
  EXPECT_EQ(model.num_queries(), 2u);
}

TEST(OwnerModelTest, TrueLabelDoesNotCountAsQuery) {
  ProfileTable profiles = MakeProfiles();
  auto model = OwnerModel::Create(NoNoiseAttitude(), &profiles).value();
  model.TrueLabel(0, 0.1, 0.1);
  EXPECT_EQ(model.num_queries(), 0u);
}

TEST(OwnerModelTest, NoiseFlipsAtMostOneLevel) {
  ProfileTable profiles = MakeProfiles();
  OwnerAttitude noisy = NoNoiseAttitude();
  noisy.label_noise = 1.0;  // always perturb
  OwnerAttitude clean = NoNoiseAttitude();
  auto noisy_model = OwnerModel::Create(noisy, &profiles).value();
  auto clean_model = OwnerModel::Create(clean, &profiles).value();
  for (UserId u = 0; u < 4; ++u) {
    for (double sim : {0.0, 0.2, 0.5}) {
      int a = static_cast<int>(noisy_model.TrueLabel(u, sim, 0.0));
      int b = static_cast<int>(clean_model.TrueLabel(u, sim, 0.0));
      EXPECT_LE(std::abs(a - b), 1);
      EXPECT_GE(a, kRiskLabelMin);
      EXPECT_LE(a, kRiskLabelMax);
    }
  }
}

TEST(OwnerModelTest, VisibleItemsLowerScoreViaEmphasis) {
  ProfileTable profiles = MakeProfiles();
  VisibilityTable visibility;
  OwnerAttitude a = NoNoiseAttitude();
  a.item_emphasis.fill(0.0);
  a.item_emphasis[static_cast<size_t>(ProfileItem::kPhoto)] = 1.0;
  auto model = OwnerModel::Create(a, &profiles, &visibility).value();
  double hidden = model.Score(0, 0.1, 0.0);
  visibility.SetVisible(0, ProfileItem::kPhoto);
  double shown = model.Score(0, 0.1, 0.0);
  EXPECT_LT(shown, hidden);
  // An item with zero emphasis changes nothing.
  visibility.SetVisible(0, ProfileItem::kWall);
  EXPECT_DOUBLE_EQ(model.Score(0, 0.1, 0.0), shown);
}

TEST(OwnerModelTest, ZeroEmphasisFallsBackToTable2Means) {
  ProfileTable profiles = MakeProfiles();
  VisibilityTable visibility;
  OwnerAttitude a = NoNoiseAttitude();  // item_emphasis default: all zero
  auto model = OwnerModel::Create(a, &profiles, &visibility).value();
  // Photo carries the largest Table II mean, so exposing it moves the
  // score more than exposing the wall.
  visibility.SetVisible(0, ProfileItem::kPhoto);
  double with_photo = model.Score(0, 0.1, 0.0);
  visibility.SetVisible(0, ProfileItem::kPhoto, false);
  visibility.SetVisible(0, ProfileItem::kWall);
  double with_wall = model.Score(0, 0.1, 0.0);
  EXPECT_LT(with_photo, with_wall);
}

TEST(OwnerModelTest, NegativeEmphasisRejected) {
  ProfileTable profiles = MakeProfiles();
  OwnerAttitude a = NoNoiseAttitude();
  a.item_emphasis[0] = -0.5;
  EXPECT_FALSE(OwnerModel::Create(a, &profiles).ok());
}

TEST(SampleOwnerAttitudeTest, ItemEmphasisIsPhotoHeavyAndNormalized) {
  Rng rng(321);
  double photo_sum = 0.0;
  const int n = 300;
  for (int i = 0; i < n; ++i) {
    OwnerAttitude a = SampleOwnerAttitude(&rng);
    double total = 0.0;
    for (double e : a.item_emphasis) {
      EXPECT_GE(e, 0.0);
      total += e;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
    photo_sum += a.item_emphasis[static_cast<size_t>(ProfileItem::kPhoto)];
  }
  // Photos average near the paper's 0.27 Table II importance.
  EXPECT_NEAR(photo_sum / n, 0.27, 0.05);
}

TEST(SampleOwnerAttitudeTest, PopulationStructureMatchesPaper) {
  Rng rng(2024);
  size_t gender_dominant = 0;
  const int n = 500;
  for (int i = 0; i < n; ++i) {
    OwnerAttitude a = SampleOwnerAttitude(&rng);
    EXPECT_TRUE(a.theta.Validate().ok());
    EXPECT_GT(a.threshold_high, a.threshold_low);
    EXPECT_GE(a.confidence, 50.0);
    EXPECT_LE(a.confidence, 95.0);
    double max_locale = 0.0;
    for (double b : a.locale_bias) max_locale = std::max(max_locale, b);
    if (a.gender_bias > max_locale) ++gender_dominant;
  }
  // ~70% of owners are gender-dominated by construction.
  double frac = static_cast<double>(gender_dominant) / n;
  EXPECT_GT(frac, 0.55);
  EXPECT_LT(frac, 0.9);
}

TEST(SampleOwnerAttitudeTest, ConfidenceAveragesNearPaper) {
  Rng rng(99);
  double sum = 0.0;
  const int n = 1000;
  for (int i = 0; i < n; ++i) sum += SampleOwnerAttitude(&rng).confidence;
  EXPECT_NEAR(sum / n, 78.39, 2.0);
}

}  // namespace
}  // namespace sight::sim
