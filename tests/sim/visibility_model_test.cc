#include "sim/visibility_model.h"

#include <gtest/gtest.h>

namespace sight::sim {
namespace {

TEST(LocaleVisibilityRateTest, MatchesPaperTable5) {
  EXPECT_DOUBLE_EQ(LocaleVisibilityRate(ProfileItem::kWall, Locale::kTR),
                   0.20);
  EXPECT_DOUBLE_EQ(LocaleVisibilityRate(ProfileItem::kPhoto, Locale::kPL),
                   0.95);
  EXPECT_DOUBLE_EQ(
      LocaleVisibilityRate(ProfileItem::kFriendList, Locale::kIT), 0.68);
  EXPECT_DOUBLE_EQ(LocaleVisibilityRate(ProfileItem::kWork, Locale::kES),
                   0.13);
  EXPECT_DOUBLE_EQ(
      LocaleVisibilityRate(ProfileItem::kHometown, Locale::kUS), 0.37);
}

TEST(LocaleVisibilityRateTest, IndiaUsesSevenLocaleAverage) {
  double avg = 0.0;
  for (Locale l : {Locale::kTR, Locale::kDE, Locale::kUS, Locale::kIT,
                   Locale::kGB, Locale::kES, Locale::kPL}) {
    avg += LocaleVisibilityRate(ProfileItem::kWall, l);
  }
  avg /= 7.0;
  EXPECT_NEAR(LocaleVisibilityRate(ProfileItem::kWall, Locale::kIN), avg,
              1e-12);
}

TEST(GenderVisibilityRateTest, MatchesPaperTable4) {
  EXPECT_DOUBLE_EQ(GenderVisibilityRate(ProfileItem::kWall, Gender::kMale),
                   0.25);
  EXPECT_DOUBLE_EQ(
      GenderVisibilityRate(ProfileItem::kWall, Gender::kFemale), 0.16);
  EXPECT_DOUBLE_EQ(GenderVisibilityRate(ProfileItem::kPhoto, Gender::kMale),
                   0.88);
  EXPECT_DOUBLE_EQ(
      GenderVisibilityRate(ProfileItem::kPhoto, Gender::kFemale), 0.87);
}

TEST(GenderVisibilityRateTest, FemalesStricterExceptPhotos) {
  // The paper's Fogel-consistent finding: female visibility is lower on
  // every item, with photos nearly equal.
  for (ProfileItem item : kAllProfileItems) {
    EXPECT_LE(GenderVisibilityRate(item, Gender::kFemale),
              GenderVisibilityRate(item, Gender::kMale));
  }
}

TEST(VisibilityProbabilityTest, GenderGapPreserved) {
  for (ProfileItem item : kAllProfileItems) {
    double male = VisibilityProbability(item, Gender::kMale, Locale::kUS);
    double female =
        VisibilityProbability(item, Gender::kFemale, Locale::kUS);
    double expected_gap = GenderVisibilityRate(item, Gender::kMale) -
                          GenderVisibilityRate(item, Gender::kFemale);
    EXPECT_NEAR(male - female, expected_gap, 1e-12);
  }
}

TEST(VisibilityProbabilityTest, StaysInUnitInterval) {
  for (ProfileItem item : kAllProfileItems) {
    for (Locale locale : kAllLocales) {
      for (Gender gender : {Gender::kMale, Gender::kFemale}) {
        double p = VisibilityProbability(item, gender, locale);
        EXPECT_GE(p, 0.0);
        EXPECT_LE(p, 1.0);
      }
    }
  }
}

TEST(SampleVisibilityMaskTest, EmpiricalRateTracksProbability) {
  Rng rng(7);
  const int n = 5000;
  int photo_visible = 0;
  for (int i = 0; i < n; ++i) {
    uint8_t mask = SampleVisibilityMask(Gender::kMale, Locale::kPL, &rng);
    if (mask & (1u << static_cast<uint8_t>(ProfileItem::kPhoto))) {
      ++photo_visible;
    }
  }
  double expected =
      VisibilityProbability(ProfileItem::kPhoto, Gender::kMale, Locale::kPL);
  EXPECT_NEAR(static_cast<double>(photo_visible) / n, expected, 0.02);
}

TEST(SampleVisibilityMaskTest, MaskUsesOnlySevenBits) {
  Rng rng(8);
  for (int i = 0; i < 100; ++i) {
    uint8_t mask = SampleVisibilityMask(Gender::kFemale, Locale::kTR, &rng);
    EXPECT_EQ(mask & 0x80, 0);
  }
}

}  // namespace
}  // namespace sight::sim
