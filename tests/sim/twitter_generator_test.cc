#include "sim/twitter_generator.h"

#include <set>

#include <gtest/gtest.h>

#include "core/benefit.h"
#include "graph/algorithms.h"
#include "similarity/network_similarity.h"

namespace sight::sim {
namespace {

TwitterGeneratorConfig SmallConfig() {
  TwitterGeneratorConfig config;
  config.num_followed = 40;
  config.num_strangers = 200;
  config.num_celebrities = 4;
  return config;
}

TEST(TwitterGeneratorTest, ConfigValidation) {
  TwitterGeneratorConfig config;
  config.num_followed = 1;
  EXPECT_FALSE(config.Validate().ok());
  config = {};
  config.num_celebrities = 0;
  EXPECT_FALSE(config.Validate().ok());
  config = {};
  config.num_celebrities = config.num_followed + 1;
  EXPECT_FALSE(config.Validate().ok());
  config = {};
  config.verified_fraction = 1.5;
  EXPECT_FALSE(config.Validate().ok());
  EXPECT_TRUE(TwitterGeneratorConfig{}.Validate().ok());
}

TEST(TwitterGeneratorTest, GeneratesRequestedScale) {
  auto gen = TwitterGenerator::Create(SmallConfig()).value();
  Rng rng(1);
  auto ds = gen.Generate(&rng).value();
  EXPECT_EQ(ds.friends.size(), 40u);
  EXPECT_EQ(ds.strangers.size(), 200u);
  EXPECT_EQ(ds.profiles.schema().names(), TwitterSchema().names());
}

TEST(TwitterGeneratorTest, StrangersAreTwoHop) {
  auto gen = TwitterGenerator::Create(SmallConfig()).value();
  Rng rng(2);
  auto ds = gen.Generate(&rng).value();
  EXPECT_EQ(ds.strangers, TwoHopStrangers(ds.graph, ds.owner).value());
  for (UserId s : ds.strangers) {
    EXPECT_GE(MutualFriendCount(ds.graph, ds.owner, s), 1u);
  }
}

TEST(TwitterGeneratorTest, HubsDominateMutualFriends) {
  // Most strangers' mutual friends should include at least one of the
  // celebrity hubs (the first num_celebrities friend ids).
  auto gen = TwitterGenerator::Create(SmallConfig()).value();
  Rng rng(3);
  auto ds = gen.Generate(&rng).value();
  std::set<UserId> hubs(ds.friends.begin(), ds.friends.begin() + 4);
  size_t through_hub = 0;
  for (UserId s : ds.strangers) {
    for (UserId m : MutualFriends(ds.graph, ds.owner, s)) {
      if (hubs.count(m)) {
        ++through_hub;
        break;
      }
    }
  }
  EXPECT_GT(static_cast<double>(through_hub) /
                static_cast<double>(ds.strangers.size()),
            0.6);
}

TEST(TwitterGeneratorTest, BenefitsHigherThanFacebookLike) {
  // Twitter-like visibility is near-public: mean stranger benefit should
  // be clearly higher than the Facebook generator's (heterophily: the
  // content IS the benefit).
  auto tw = TwitterGenerator::Create(SmallConfig()).value();
  Rng rng(4);
  auto tw_ds = tw.Generate(&rng).value();

  GeneratorConfig fb_config;
  fb_config.num_friends = 40;
  fb_config.num_strangers = 200;
  auto fb = FacebookGenerator::Create(fb_config).value();
  Rng rng2(4);
  auto fb_ds = fb.Generate({Gender::kMale, Locale::kUS}, &rng2).value();

  auto benefit = BenefitModel::Create(ThetaWeights::Uniform()).value();
  auto mean_benefit = [&](const OwnerDataset& ds) {
    double sum = 0.0;
    for (UserId s : ds.strangers) sum += benefit.Compute(ds.visibility, s);
    return sum / static_cast<double>(ds.strangers.size());
  };
  EXPECT_GT(mean_benefit(tw_ds), mean_benefit(fb_ds) + 0.1);
}

TEST(TwitterGeneratorTest, NetworkSimilaritySkewedLowerThanFacebook) {
  // Hub followers are not interconnected, so the density term stays near
  // zero and NS concentrates at the bottom groups.
  auto gen = TwitterGenerator::Create(SmallConfig()).value();
  Rng rng(5);
  auto ds = gen.Generate(&rng).value();
  auto ns = NetworkSimilarity::Create(NetworkSimilarityConfig{}).value();
  size_t low = 0;
  for (UserId s : ds.strangers) {
    if (ns.Compute(ds.graph, ds.owner, s) < 0.3) ++low;
  }
  EXPECT_GT(static_cast<double>(low) /
                static_cast<double>(ds.strangers.size()),
            0.7);
}

TEST(TwitterGeneratorTest, DeterministicGivenSeed) {
  auto gen = TwitterGenerator::Create(SmallConfig()).value();
  Rng rng1(6);
  Rng rng2(6);
  auto a = gen.Generate(&rng1).value();
  auto b = gen.Generate(&rng2).value();
  EXPECT_EQ(a.graph.NumEdges(), b.graph.NumEdges());
  EXPECT_EQ(a.strangers, b.strangers);
}

TEST(TwitterGeneratorTest, RequiresRng) {
  auto gen = TwitterGenerator::Create(SmallConfig()).value();
  EXPECT_FALSE(gen.Generate(nullptr).ok());
}

}  // namespace
}  // namespace sight::sim
