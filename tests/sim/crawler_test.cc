#include "sim/crawler.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "graph/algorithms.h"
#include "sim/facebook_generator.h"

namespace sight::sim {
namespace {

OwnerDataset SmallDataset(uint64_t seed) {
  GeneratorConfig config;
  config.num_friends = 30;
  config.num_strangers = 120;
  config.num_communities = 3;
  auto gen = FacebookGenerator::Create(config).value();
  Rng rng(seed);
  return gen.Generate({Gender::kMale, Locale::kTR}, &rng).value();
}

TEST(CrawlerTest, CreateValidates) {
  OwnerDataset ds = SmallDataset(1);
  Rng rng(2);
  CrawlerConfig config;
  config.batch_size = 0;
  EXPECT_FALSE(Crawler::Create(ds.graph, ds.owner, config, &rng).ok());
  config.batch_size = 10;
  EXPECT_FALSE(Crawler::Create(ds.graph, ds.owner, config, nullptr).ok());
  EXPECT_FALSE(Crawler::Create(ds.graph, 99999, config, &rng).ok());
  EXPECT_TRUE(Crawler::Create(ds.graph, ds.owner, config, &rng).ok());
}

TEST(CrawlerTest, DiscoversEveryStrangerExactlyOnce) {
  OwnerDataset ds = SmallDataset(3);
  Rng rng(4);
  CrawlerConfig config;
  config.batch_size = 25;
  auto crawler = Crawler::Create(ds.graph, ds.owner, config, &rng).value();
  EXPECT_EQ(crawler.total_strangers(), ds.strangers.size());

  std::set<UserId> seen;
  while (!crawler.done()) {
    auto batch = crawler.Tick();
    EXPECT_FALSE(batch.empty());
    EXPECT_LE(batch.size(), 25u);
    for (UserId s : batch) {
      EXPECT_TRUE(seen.insert(s).second) << "stranger discovered twice";
    }
  }
  EXPECT_EQ(seen.size(), ds.strangers.size());
  std::set<UserId> expected(ds.strangers.begin(), ds.strangers.end());
  EXPECT_EQ(seen, expected);
  EXPECT_TRUE(crawler.Tick().empty());
  EXPECT_EQ(crawler.num_remaining(), 0u);
}

TEST(CrawlerTest, DiscoveredAccumulatesInOrder) {
  OwnerDataset ds = SmallDataset(5);
  Rng rng(6);
  CrawlerConfig config;
  config.batch_size = 10;
  auto crawler = Crawler::Create(ds.graph, ds.owner, config, &rng).value();
  auto b1 = crawler.Tick();
  auto b2 = crawler.Tick();
  ASSERT_EQ(crawler.discovered().size(), b1.size() + b2.size());
  for (size_t i = 0; i < b1.size(); ++i) {
    EXPECT_EQ(crawler.discovered()[i], b1[i]);
  }
}

TEST(CrawlerTest, WellConnectedStrangersSurfaceEarlier) {
  // Statistical property: the mean mutual-friend count of the first half
  // of discoveries exceeds that of the second half.
  OwnerDataset ds = SmallDataset(7);
  Rng rng(8);
  CrawlerConfig config;
  config.batch_size = 1000;
  auto crawler = Crawler::Create(ds.graph, ds.owner, config, &rng).value();
  auto all = crawler.Tick();
  ASSERT_EQ(all.size(), ds.strangers.size());
  size_t half = all.size() / 2;
  double first_half = 0.0;
  double second_half = 0.0;
  for (size_t i = 0; i < all.size(); ++i) {
    double m = static_cast<double>(
        MutualFriendCount(ds.graph, ds.owner, all[i]));
    if (i < half) {
      first_half += m;
    } else {
      second_half += m;
    }
  }
  first_half /= static_cast<double>(half);
  second_half /= static_cast<double>(all.size() - half);
  EXPECT_GT(first_half, second_half);
}

TEST(CrawlerTest, DeterministicGivenSeed) {
  OwnerDataset ds = SmallDataset(9);
  CrawlerConfig config;
  config.batch_size = 500;
  Rng rng1(10);
  Rng rng2(10);
  auto c1 = Crawler::Create(ds.graph, ds.owner, config, &rng1).value();
  auto c2 = Crawler::Create(ds.graph, ds.owner, config, &rng2).value();
  EXPECT_EQ(c1.Tick(), c2.Tick());
}

TEST(CrawlerTest, OwnerWithoutStrangers) {
  SocialGraph g(2);
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  Rng rng(11);
  auto crawler = Crawler::Create(g, 0, CrawlerConfig{}, &rng).value();
  EXPECT_TRUE(crawler.done());
  EXPECT_TRUE(crawler.Tick().empty());
  EXPECT_EQ(crawler.total_strangers(), 0u);
}

}  // namespace
}  // namespace sight::sim
