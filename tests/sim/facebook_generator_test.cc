#include "sim/facebook_generator.h"

#include <algorithm>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "graph/algorithms.h"
#include "similarity/network_similarity.h"

namespace sight::sim {
namespace {

GeneratorConfig SmallConfig() {
  GeneratorConfig config;
  config.num_friends = 40;
  config.num_strangers = 200;
  config.num_communities = 4;
  return config;
}

TEST(PaperOwnerPopulationTest, MatchesSectionFourA) {
  auto owners = PaperOwnerPopulation();
  ASSERT_EQ(owners.size(), 47u);
  size_t males = 0;
  std::map<Locale, size_t> locales;
  for (const OwnerSpec& o : owners) {
    if (o.gender == Gender::kMale) ++males;
    ++locales[o.locale];
  }
  EXPECT_EQ(males, 32u);
  EXPECT_EQ(locales[Locale::kTR], 17u);
  EXPECT_EQ(locales[Locale::kUS], 9u);
  EXPECT_EQ(locales[Locale::kPL], 7u);
  EXPECT_EQ(locales[Locale::kIT], 5u);
  EXPECT_EQ(locales[Locale::kIN], 1u);
}

TEST(GeneratorConfigTest, Validation) {
  GeneratorConfig config;
  config.num_friends = 1;
  EXPECT_FALSE(config.Validate().ok());
  config = {};
  config.num_communities = 0;
  EXPECT_FALSE(config.Validate().ok());
  config = {};
  config.num_communities = config.num_friends + 1;
  EXPECT_FALSE(config.Validate().ok());
  config = {};
  config.intra_community_edge_prob = 1.5;
  EXPECT_FALSE(config.Validate().ok());
  config = {};
  config.max_mutual_friends = 0;
  EXPECT_FALSE(config.Validate().ok());
  EXPECT_TRUE(GeneratorConfig{}.Validate().ok());
}

TEST(FacebookGeneratorTest, GeneratesRequestedScale) {
  auto gen = FacebookGenerator::Create(SmallConfig()).value();
  Rng rng(1);
  auto ds = gen.Generate({Gender::kMale, Locale::kTR}, &rng).value();
  EXPECT_EQ(ds.friends.size(), 40u);
  EXPECT_EQ(ds.strangers.size(), 200u);
  EXPECT_EQ(ds.graph.NumUsers(), 1 + 40 + 200u);
}

TEST(FacebookGeneratorTest, StrangersAreExactlyTwoHops) {
  auto gen = FacebookGenerator::Create(SmallConfig()).value();
  Rng rng(2);
  auto ds = gen.Generate({Gender::kFemale, Locale::kUS}, &rng).value();
  auto two_hop = TwoHopStrangers(ds.graph, ds.owner).value();
  EXPECT_EQ(ds.strangers, two_hop);
  for (UserId s : ds.strangers) {
    EXPECT_FALSE(ds.graph.HasEdge(ds.owner, s));
    EXPECT_GE(MutualFriendCount(ds.graph, ds.owner, s), 1u);
  }
}

TEST(FacebookGeneratorTest, EveryUserHasAProfileAndVisibility) {
  auto gen = FacebookGenerator::Create(SmallConfig()).value();
  Rng rng(3);
  auto ds = gen.Generate({Gender::kMale, Locale::kIT}, &rng).value();
  for (UserId u = 0; u < ds.graph.NumUsers(); ++u) {
    EXPECT_TRUE(ds.profiles.Has(u)) << "user " << u;
    const Profile& p = ds.profiles.Get(u);
    EXPECT_FALSE(
        p.IsMissing(static_cast<AttributeId>(FacebookAttribute::kGender)));
    EXPECT_FALSE(
        p.IsMissing(static_cast<AttributeId>(FacebookAttribute::kLocale)));
  }
}

TEST(FacebookGeneratorTest, OwnerProfileMatchesSpec) {
  auto gen = FacebookGenerator::Create(SmallConfig()).value();
  Rng rng(4);
  auto ds = gen.Generate({Gender::kFemale, Locale::kPL}, &rng).value();
  const Profile& p = ds.profiles.Get(ds.owner);
  EXPECT_EQ(p.value(static_cast<AttributeId>(FacebookAttribute::kGender)),
            "female");
  EXPECT_EQ(p.value(static_cast<AttributeId>(FacebookAttribute::kLocale)),
            "pl_PL");
}

TEST(FacebookGeneratorTest, DeterministicGivenSeed) {
  auto gen = FacebookGenerator::Create(SmallConfig()).value();
  Rng rng1(5);
  Rng rng2(5);
  auto a = gen.Generate({Gender::kMale, Locale::kTR}, &rng1).value();
  auto b = gen.Generate({Gender::kMale, Locale::kTR}, &rng2).value();
  EXPECT_EQ(a.graph.NumEdges(), b.graph.NumEdges());
  EXPECT_EQ(a.strangers, b.strangers);
  for (UserId u = 0; u < a.graph.NumUsers(); ++u) {
    EXPECT_EQ(a.profiles.Get(u).values, b.profiles.Get(u).values);
    EXPECT_EQ(a.visibility.Mask(u), b.visibility.Mask(u));
  }
}

TEST(FacebookGeneratorTest, NetworkSimilaritySkewedLow) {
  // Fig. 4 shape: most strangers are weakly connected; none exceeds ~0.7.
  auto gen = FacebookGenerator::Create(SmallConfig()).value();
  Rng rng(6);
  auto ds = gen.Generate({Gender::kMale, Locale::kTR}, &rng).value();
  auto ns = NetworkSimilarity::Create(NetworkSimilarityConfig{}).value();
  size_t low = 0;
  double max_ns = 0.0;
  for (UserId s : ds.strangers) {
    double v = ns.Compute(ds.graph, ds.owner, s);
    max_ns = std::max(max_ns, v);
    if (v < 0.3) ++low;
  }
  EXPECT_GT(static_cast<double>(low) /
                static_cast<double>(ds.strangers.size()),
            0.5);
  EXPECT_LE(max_ns, 0.75);
}

TEST(FacebookGeneratorTest, HomophilyInStrangerLocales) {
  // Most strangers should share the owner's locale (homophily).
  GeneratorConfig config = SmallConfig();
  config.community_same_locale_prob = 0.8;
  config.same_locale_stranger_prob = 0.8;
  auto gen = FacebookGenerator::Create(config).value();
  Rng rng(7);
  auto ds = gen.Generate({Gender::kMale, Locale::kTR}, &rng).value();
  size_t same = 0;
  for (UserId s : ds.strangers) {
    if (ds.profiles.Value(
            s, static_cast<AttributeId>(FacebookAttribute::kLocale)) ==
        "tr_TR") {
      ++same;
    }
  }
  EXPECT_GT(static_cast<double>(same) /
                static_cast<double>(ds.strangers.size()),
            0.4);
}

TEST(FacebookGeneratorTest, MutualFriendCountsAreZipfSkewed) {
  auto gen = FacebookGenerator::Create(SmallConfig()).value();
  Rng rng(8);
  auto ds = gen.Generate({Gender::kMale, Locale::kUS}, &rng).value();
  size_t single_mutual = 0;
  for (UserId s : ds.strangers) {
    if (MutualFriendCount(ds.graph, ds.owner, s) == 1) ++single_mutual;
  }
  // Zipf(1.6) puts roughly half the mass on m=1.
  EXPECT_GT(static_cast<double>(single_mutual) /
                static_cast<double>(ds.strangers.size()),
            0.3);
}

TEST(FacebookGeneratorTest, RequiresRng) {
  auto gen = FacebookGenerator::Create(SmallConfig()).value();
  EXPECT_FALSE(gen.Generate({Gender::kMale, Locale::kTR}, nullptr).ok());
}

}  // namespace
}  // namespace sight::sim
