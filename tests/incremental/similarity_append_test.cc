// SimilarityMatrix append-without-recompact: staged rows/edges overlay
// the compact view, and MergeCompact() must match a from-scratch
// Compact() exactly.

#include "learning/similarity_matrix.h"

#include <gtest/gtest.h>

#include <vector>

namespace sight {
namespace {

SimilarityMatrix RandomGraph(size_t n, uint64_t seed, double density) {
  SimilarityMatrix m(n);
  uint64_t state = seed;
  auto next_unit = [&state]() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<double>(state >> 11) * 0x1.0p-53;
  };
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (next_unit() < density) m.Set(i, j, 0.1 + next_unit());
    }
  }
  return m;
}

// Compares the compact views of two matrices row by row.
void ExpectSameView(const SimilarityMatrix& a, const SimilarityMatrix& b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_TRUE(a.compacted());
  ASSERT_TRUE(b.compacted());
  EXPECT_EQ(a.NumEdges(), b.NumEdges());
  for (size_t i = 0; i < a.size(); ++i) {
    std::span<const Neighbor> ra = a.Neighbors(i);
    std::span<const Neighbor> rb = b.Neighbors(i);
    ASSERT_EQ(ra.size(), rb.size()) << "row " << i;
    for (size_t k = 0; k < ra.size(); ++k) {
      EXPECT_EQ(ra[k].index, rb[k].index) << "row " << i;
      EXPECT_EQ(ra[k].weight, rb[k].weight) << "row " << i;
    }
  }
}

TEST(AppendRowsTest, GrowsWithoutDisturbingExistingEntries) {
  SimilarityMatrix m(3);
  m.Set(0, 1, 0.5);
  m.Set(1, 2, 0.7);
  m.AppendRows(2);
  EXPECT_EQ(m.size(), 5u);
  EXPECT_DOUBLE_EQ(m.Get(0, 1), 0.5);
  EXPECT_DOUBLE_EQ(m.Get(1, 2), 0.7);
  EXPECT_DOUBLE_EQ(m.Get(3, 4), 0.0);
  EXPECT_EQ(m.num_staged_rows(), 0u);  // not compacted: nothing staged
}

TEST(AppendRowsTest, StagedWritesOverlayTheCompactView) {
  SimilarityMatrix m(4);
  m.Set(0, 1, 0.5);
  m.Set(2, 3, 0.6);
  m.Compact();
  size_t base_edges = m.NumEdges();

  m.AppendRows(2);  // rows 4, 5
  EXPECT_TRUE(m.compacted());
  EXPECT_EQ(m.num_staged_rows(), 2u);
  EXPECT_EQ(m.Neighbors(4).size(), 0u);

  m.Set(4, 1, 0.9);  // new-old pair
  m.Set(4, 5, 0.4);  // new-new pair
  EXPECT_TRUE(m.compacted());
  EXPECT_EQ(m.num_staged_edges(), 2u);
  EXPECT_EQ(m.NumEdges(), base_edges + 2);

  // Both endpoints see the staged edge, rows stay sorted by index.
  ASSERT_EQ(m.Neighbors(4).size(), 2u);
  EXPECT_EQ(m.Neighbors(4)[0].index, 1u);
  EXPECT_EQ(m.Neighbors(4)[1].index, 5u);
  ASSERT_EQ(m.Neighbors(1).size(), 2u);
  EXPECT_EQ(m.Neighbors(1)[0].index, 0u);
  EXPECT_EQ(m.Neighbors(1)[1].index, 4u);
  ASSERT_EQ(m.Neighbors(5).size(), 1u);
  EXPECT_EQ(m.Neighbors(5)[0].index, 4u);

  // The dense accessors read the write-through store.
  EXPECT_DOUBLE_EQ(m.Get(1, 4), 0.9);
  EXPECT_DOUBLE_EQ(m.RowSum(4), 0.9 + 0.4);
}

TEST(AppendRowsTest, RestagingAndZeroingKeepCountsConsistent) {
  SimilarityMatrix m(3);
  m.Set(0, 1, 0.5);
  m.Compact();
  m.AppendRows(1);

  m.Set(3, 0, 0.2);
  EXPECT_EQ(m.num_staged_edges(), 1u);
  m.Set(3, 0, 0.8);  // re-stage same pair: update, not a second edge
  EXPECT_EQ(m.num_staged_edges(), 1u);
  EXPECT_DOUBLE_EQ(m.Neighbors(3)[0].weight, 0.8);
  m.Set(3, 0, 0.0);  // zero removes the staged edge
  EXPECT_EQ(m.num_staged_edges(), 0u);
  EXPECT_EQ(m.Neighbors(3).size(), 0u);
  EXPECT_EQ(m.Neighbors(0).size(), 1u);  // only the base edge to 1
}

TEST(AppendRowsTest, BaseRowPairStillInvalidates) {
  SimilarityMatrix m(4);
  m.Set(0, 1, 0.5);
  m.Compact();
  m.AppendRows(1);
  m.Set(2, 3, 0.6);  // both endpoints pre-date the view
  EXPECT_FALSE(m.compacted());
  // The write itself landed; a re-Compact sees everything.
  m.Compact();
  EXPECT_EQ(m.NumEdges(), 2u);
}

TEST(MergeCompactTest, MatchesFromScratchCompact) {
  const size_t base = 40;
  const size_t extra = 8;
  SimilarityMatrix staged = RandomGraph(base, 23, 0.2);
  staged.Compact();
  staged.AppendRows(extra);

  // Mirror matrix built flat, never staged.
  SimilarityMatrix flat(base + extra);
  for (size_t i = 0; i < base; ++i) {
    for (size_t j = 0; j < i; ++j) {
      double w = staged.Get(i, j);
      if (w > 0.0) flat.Set(i, j, w);
    }
  }

  // Stage deterministic pairs touching the appended rows.
  uint64_t state = 31;
  auto next_unit = [&state]() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<double>(state >> 11) * 0x1.0p-53;
  };
  for (size_t i = base; i < base + extra; ++i) {
    for (size_t j = 0; j < i; ++j) {
      if (next_unit() < 0.3) {
        double w = 0.1 + next_unit();
        staged.Set(i, j, w);
        flat.Set(i, j, w);
      }
    }
  }
  ASSERT_TRUE(staged.compacted());
  ASSERT_GT(staged.num_staged_edges(), 0u);

  staged.MergeCompact();
  EXPECT_EQ(staged.num_staged_rows(), 0u);
  EXPECT_EQ(staged.num_staged_edges(), 0u);
  flat.Compact();
  ExpectSameView(staged, flat);
}

TEST(MergeCompactTest, CompactOnCompactedMatrixMerges) {
  SimilarityMatrix m(3);
  m.Set(0, 1, 0.5);
  m.Compact();
  m.AppendRows(1);
  m.Set(3, 1, 0.4);
  ASSERT_EQ(m.num_staged_rows(), 1u);
  m.Compact();  // equivalent to MergeCompact() when already compacted
  EXPECT_EQ(m.num_staged_rows(), 0u);
  EXPECT_EQ(m.NumEdges(), 2u);
  ASSERT_EQ(m.Neighbors(1).size(), 2u);
  EXPECT_EQ(m.Neighbors(1)[1].index, 3u);
}

TEST(MergeCompactTest, OnUncompactedMatrixJustCompacts) {
  SimilarityMatrix m(3);
  m.Set(0, 2, 0.5);
  m.MergeCompact();
  EXPECT_TRUE(m.compacted());
  EXPECT_EQ(m.NumEdges(), 1u);
}

TEST(MergeCompactTest, RepeatedAppendMergeCyclesStayConsistent) {
  SimilarityMatrix m = RandomGraph(20, 41, 0.25);
  m.Compact();
  uint64_t state = 43;
  auto next_unit = [&state]() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<double>(state >> 11) * 0x1.0p-53;
  };
  for (int cycle = 0; cycle < 3; ++cycle) {
    size_t old_n = m.size();
    m.AppendRows(4);
    for (size_t i = old_n; i < m.size(); ++i) {
      for (size_t j = 0; j < i; ++j) {
        if (next_unit() < 0.3) m.Set(i, j, 0.1 + next_unit());
      }
    }
    m.MergeCompact();
  }
  SimilarityMatrix flat(m.size());
  for (size_t i = 0; i < m.size(); ++i) {
    for (size_t j = 0; j < i; ++j) {
      double w = m.Get(i, j);
      if (w > 0.0) flat.Set(i, j, w);
    }
  }
  flat.Compact();
  ExpectSameView(m, flat);
}

}  // namespace
}  // namespace sight
