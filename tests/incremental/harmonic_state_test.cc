// HarmonicSolveState: warm-started solves must reproduce the chained
// replay bit for bit, and stale/foreign state must be rejected before it
// can corrupt a solve.

#include "learning/harmonic.h"

#include <gtest/gtest.h>

#include <vector>

#include "learning/similarity_matrix.h"

namespace sight {
namespace {

HarmonicFunctionClassifier Make(HarmonicSolver solver) {
  HarmonicConfig config;
  config.solver = solver;
  return HarmonicFunctionClassifier::Create(config).value();
}

// Deterministic pseudo-random weights (no global RNG in tests).
SimilarityMatrix RandomGraph(size_t n, uint64_t seed, double density) {
  SimilarityMatrix m(n);
  uint64_t state = seed;
  auto next_unit = [&state]() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<double>(state >> 11) * 0x1.0p-53;
  };
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (next_unit() < density) m.Set(i, j, 0.1 + next_unit());
    }
  }
  return m;
}

// Append-only label history: step k labels the first `sizes[k]` entries.
std::vector<LabeledSet> LabelChain(size_t n,
                                   const std::vector<size_t>& sizes) {
  std::vector<LabeledSet> chain;
  for (size_t s : sizes) {
    LabeledSet labeled;
    for (size_t k = 0; k < s; ++k) {
      size_t idx = (k * 7) % n;
      labeled.Add(idx, 1.0 + static_cast<double>(idx % 3));
    }
    chain.push_back(labeled);
  }
  return chain;
}

class HarmonicStateTest : public ::testing::TestWithParam<HarmonicSolver> {};

TEST_P(HarmonicStateTest, NullStateMatchesPredictBitwise) {
  HarmonicFunctionClassifier classifier = Make(GetParam());
  SimilarityMatrix w = RandomGraph(60, 7, 0.2);
  LabeledSet labeled;
  labeled.Add(0, 1.0);
  labeled.Add(30, 3.0);
  auto plain = classifier.Predict(w, labeled).value();
  SolveStats stats;
  auto with_null =
      classifier.PredictWithState(w, labeled, nullptr, &stats).value();
  EXPECT_EQ(plain, with_null);
  EXPECT_FALSE(stats.warm);
  EXPECT_GT(stats.iterations, 0u);
}

TEST_P(HarmonicStateTest, WarmChainMatchesColdReplayBitwise) {
  HarmonicFunctionClassifier classifier = Make(GetParam());
  const size_t n = 60;
  SimilarityMatrix w = RandomGraph(n, 11, 0.2);
  w.Compact();
  std::vector<LabeledSet> chain = LabelChain(n, {4, 7, 10, 13});

  // Warm: one state carried across all steps.
  std::unique_ptr<ClassifierState> warm = classifier.MakeState();
  ASSERT_NE(warm, nullptr);
  std::vector<std::vector<double>> warm_steps;
  for (const LabeledSet& labeled : chain) {
    SolveStats stats;
    warm_steps.push_back(
        classifier.PredictWithState(w, labeled, warm.get(), &stats)
            .value());
    if (warm_steps.size() > 1) {
      EXPECT_TRUE(stats.warm);
    }
  }

  // Cold: for each step, replay the whole prefix into a fresh state.
  for (size_t k = 0; k < chain.size(); ++k) {
    std::unique_ptr<ClassifierState> replay = classifier.MakeState();
    std::vector<double> f;
    for (size_t q = 0; q <= k; ++q) {
      f = classifier.PredictWithState(w, chain[q], replay.get(), nullptr)
              .value();
    }
    EXPECT_EQ(warm_steps[k], f) << "chain step " << k;
  }
}

TEST_P(HarmonicStateTest, StateAccumulatesIterations) {
  HarmonicFunctionClassifier classifier = Make(GetParam());
  const size_t n = 60;
  SimilarityMatrix w = RandomGraph(n, 13, 0.2);
  std::vector<LabeledSet> chain = LabelChain(n, {4, 7});

  auto state = classifier.MakeState();
  auto* harmonic_state = dynamic_cast<HarmonicSolveState*>(state.get());
  ASSERT_NE(harmonic_state, nullptr);
  EXPECT_FALSE(harmonic_state->has_solution());

  size_t total = 0;
  for (const LabeledSet& labeled : chain) {
    SolveStats stats;
    ASSERT_TRUE(
        classifier.PredictWithState(w, labeled, state.get(), &stats).ok());
    total += stats.iterations;
    EXPECT_GT(stats.iterations, 0u);
  }
  EXPECT_TRUE(harmonic_state->has_solution());
  EXPECT_EQ(harmonic_state->total_iterations(), total);
  EXPECT_EQ(harmonic_state->labeled_fingerprint().size(),
            chain.back().size());
  EXPECT_EQ(harmonic_state->solution().size(), n);
}

TEST_P(HarmonicStateTest, RejectsPoolSizeMismatch) {
  HarmonicFunctionClassifier classifier = Make(GetParam());
  SimilarityMatrix small = RandomGraph(20, 3, 0.3);
  SimilarityMatrix big = RandomGraph(30, 3, 0.3);
  LabeledSet labeled;
  labeled.Add(0, 1.0);
  labeled.Add(5, 3.0);

  auto state = classifier.MakeState();
  ASSERT_TRUE(
      classifier.PredictWithState(small, labeled, state.get(), nullptr)
          .ok());
  auto mismatched =
      classifier.PredictWithState(big, labeled, state.get(), nullptr);
  ASSERT_FALSE(mismatched.ok());
  EXPECT_EQ(mismatched.status().code(), StatusCode::kInvalidArgument);
}

TEST_P(HarmonicStateTest, RejectsShrunkLabeledSet) {
  HarmonicFunctionClassifier classifier = Make(GetParam());
  SimilarityMatrix w = RandomGraph(20, 5, 0.3);
  LabeledSet two;
  two.Add(0, 1.0);
  two.Add(5, 3.0);
  LabeledSet one;
  one.Add(0, 1.0);

  auto state = classifier.MakeState();
  ASSERT_TRUE(
      classifier.PredictWithState(w, two, state.get(), nullptr).ok());
  auto shrunk = classifier.PredictWithState(w, one, state.get(), nullptr);
  ASSERT_FALSE(shrunk.ok());
  EXPECT_EQ(shrunk.status().code(), StatusCode::kInvalidArgument);
}

TEST_P(HarmonicStateTest, RejectsChangedLabeledEntry) {
  HarmonicFunctionClassifier classifier = Make(GetParam());
  SimilarityMatrix w = RandomGraph(20, 5, 0.3);
  LabeledSet first;
  first.Add(0, 1.0);
  first.Add(5, 3.0);

  auto state = classifier.MakeState();
  ASSERT_TRUE(
      classifier.PredictWithState(w, first, state.get(), nullptr).ok());

  LabeledSet changed_value = first;
  changed_value.values[1] = 2.0;
  EXPECT_FALSE(
      classifier.PredictWithState(w, changed_value, state.get(), nullptr)
          .ok());

  LabeledSet changed_index = first;
  changed_index.indices[1] = 6;
  EXPECT_FALSE(
      classifier.PredictWithState(w, changed_index, state.get(), nullptr)
          .ok());
}

TEST_P(HarmonicStateTest, RejectsForeignStateType) {
  class OtherState final : public ClassifierState {};
  HarmonicFunctionClassifier classifier = Make(GetParam());
  SimilarityMatrix w = RandomGraph(10, 5, 0.3);
  LabeledSet labeled;
  labeled.Add(0, 1.0);
  OtherState other;
  auto result = classifier.PredictWithState(w, labeled, &other, nullptr);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST_P(HarmonicStateTest, SeedSolutionStartsTheChainWithoutHistory) {
  HarmonicFunctionClassifier classifier = Make(GetParam());
  const size_t n = 40;
  SimilarityMatrix w = RandomGraph(n, 17, 0.25);
  LabeledSet labeled;
  labeled.Add(1, 1.0);
  labeled.Add(20, 3.0);

  // A seeded state accepts any labeled set (no fingerprint yet), and two
  // identically seeded states produce identical solves.
  auto a = classifier.MakeState();
  auto b = classifier.MakeState();
  std::vector<double> seed(n, 2.0);
  a->SeedSolution(seed);
  b->SeedSolution(seed);
  SolveStats stats;
  auto fa = classifier.PredictWithState(w, labeled, a.get(), &stats).value();
  auto fb = classifier.PredictWithState(w, labeled, b.get(), nullptr).value();
  EXPECT_TRUE(stats.warm);
  EXPECT_EQ(fa, fb);
}

INSTANTIATE_TEST_SUITE_P(
    Solvers, HarmonicStateTest,
    ::testing::Values(HarmonicSolver::kGaussSeidel,
                      HarmonicSolver::kConjugateGradient,
                      HarmonicSolver::kAuto),
    [](const auto& param_info) {
      switch (param_info.param) {
        case HarmonicSolver::kGaussSeidel:
          return "GaussSeidel";
        case HarmonicSolver::kConjugateGradient:
          return "ConjugateGradient";
        case HarmonicSolver::kAuto:
          return "Auto";
      }
      return "Unknown";
    });

TEST(HarmonicStatsTest, AutoReportsTheSolverActuallyUsed) {
  HarmonicFunctionClassifier classifier = Make(HarmonicSolver::kAuto);
  LabeledSet labeled;
  labeled.Add(0, 1.0);
  labeled.Add(1, 3.0);

  SimilarityMatrix small = RandomGraph(20, 21, 0.3);
  SolveStats stats;
  ASSERT_TRUE(
      classifier.PredictWithState(small, labeled, nullptr, &stats).ok());
  EXPECT_EQ(stats.solver, "gauss-seidel");

  SimilarityMatrix big = RandomGraph(200, 21, 0.1);
  ASSERT_TRUE(
      classifier.PredictWithState(big, labeled, nullptr, &stats).ok());
  EXPECT_EQ(stats.solver, "conjugate-gradient");
}

}  // namespace
}  // namespace sight
