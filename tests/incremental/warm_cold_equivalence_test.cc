// Warm-start vs cold-replay equivalence over full active-learning runs:
// flipping ActiveLearnerConfig::warm_start must not change a single bit
// of any round's predictions, and therefore must pin identical
// RoundRecord histories.

#include <gtest/gtest.h>

#include <vector>

#include "core/active_learner.h"
#include "learning/harmonic.h"
#include "learning/sampling.h"

namespace sight {
namespace {

// Deterministic oracle: label depends only on the stranger id.
class IdOracle : public LabelOracle {
 public:
  RiskLabel QueryLabel(UserId stranger, double similarity,
                       double benefit) override {
    (void)similarity;
    (void)benefit;
    return static_cast<RiskLabel>(1 + stranger % 3);
  }
};

SimilarityMatrix RandomWeights(size_t n, uint64_t seed) {
  SimilarityMatrix m(n);
  uint64_t state = seed;
  auto next_unit = [&state]() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<double>(state >> 11) * 0x1.0p-53;
  };
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (next_unit() < 0.2) m.Set(i, j, 0.1 + next_unit());
    }
  }
  return m;
}

StrangerPool MakePool(size_t n) {
  StrangerPool pool;
  for (size_t i = 0; i < n; ++i) {
    pool.members.push_back(static_cast<UserId>(i + 100));
  }
  return pool;
}

struct RunResult {
  std::vector<RoundRecord> rounds;
  std::vector<double> predictions;
  PoolOutcome outcome = PoolOutcome::kRoundLimit;
};

RunResult RunOnce(HarmonicSolver solver, size_t n, size_t top_k,
                  bool warm_start,
                  const PoolLearner::KnownLabels* known_labels,
                  const PoolLearner::KnownLabels* prior_scores) {
  HarmonicConfig harmonic_config;
  harmonic_config.solver = solver;
  HarmonicFunctionClassifier classifier =
      HarmonicFunctionClassifier::Create(harmonic_config).value();
  RandomSampler sampler;
  ActiveLearnerConfig config;
  config.sparsify_top_k = top_k;
  config.warm_start = warm_start;

  StrangerPool pool = MakePool(n);
  PoolLearner learner =
      PoolLearner::Create(pool, RandomWeights(n, 77),
                          std::vector<double>(n, 0.5),
                          std::vector<double>(n, 0.5), config, &classifier,
                          &sampler, known_labels, prior_scores)
          .value();
  IdOracle oracle;
  Rng rng(1234);
  RunResult result;
  result.rounds = learner.RunToCompletion(&oracle, &rng).value();
  result.predictions = learner.predictions();
  result.outcome = learner.outcome();
  return result;
}

void ExpectIdenticalHistories(const RunResult& warm, const RunResult& cold) {
  // Bitwise-equal final predictions...
  EXPECT_EQ(warm.predictions, cold.predictions);
  EXPECT_EQ(warm.outcome, cold.outcome);
  // ...and an identical round-by-round record, including the solver used
  // and its iteration count (same chain, same arithmetic, same stats).
  ASSERT_EQ(warm.rounds.size(), cold.rounds.size());
  for (size_t r = 0; r < warm.rounds.size(); ++r) {
    const RoundRecord& a = warm.rounds[r];
    const RoundRecord& b = cold.rounds[r];
    EXPECT_EQ(a.round, b.round) << "round " << r;
    EXPECT_EQ(a.newly_labeled, b.newly_labeled) << "round " << r;
    EXPECT_EQ(a.rmse_valid, b.rmse_valid) << "round " << r;
    EXPECT_EQ(a.rmse, b.rmse) << "round " << r;
    EXPECT_EQ(a.unstabilized, b.unstabilized) << "round " << r;
    EXPECT_EQ(a.stabilized, b.stabilized) << "round " << r;
    EXPECT_EQ(a.solver, b.solver) << "round " << r;
    EXPECT_EQ(a.solve_iterations, b.solve_iterations) << "round " << r;
  }
}

struct EquivalenceCase {
  HarmonicSolver solver;
  size_t n;
  size_t top_k;
  const char* name;
};

class WarmColdEquivalenceTest
    : public ::testing::TestWithParam<EquivalenceCase> {};

TEST_P(WarmColdEquivalenceTest, FullRunHistoriesMatch) {
  const EquivalenceCase& c = GetParam();
  RunResult warm = RunOnce(c.solver, c.n, c.top_k, true, nullptr, nullptr);
  RunResult cold = RunOnce(c.solver, c.n, c.top_k, false, nullptr, nullptr);
  ASSERT_GT(warm.rounds.size(), 1u);
  ExpectIdenticalHistories(warm, cold);
}

TEST_P(WarmColdEquivalenceTest, SeededRunHistoriesMatch) {
  const EquivalenceCase& c = GetParam();
  // Carry-over owner labels plus previous-tick scores, like a RiskSession
  // second tick.
  PoolLearner::KnownLabels known_labels;
  known_labels[100] = 1.0;
  known_labels[101] = 3.0;
  known_labels[102] = 2.0;
  PoolLearner::KnownLabels prior_scores;
  for (size_t i = 0; i < c.n; ++i) {
    prior_scores[static_cast<UserId>(i + 100)] =
        1.0 + static_cast<double>((i * 13) % 200) / 100.0;
  }
  RunResult warm =
      RunOnce(c.solver, c.n, c.top_k, true, &known_labels, &prior_scores);
  RunResult cold =
      RunOnce(c.solver, c.n, c.top_k, false, &known_labels, &prior_scores);
  ExpectIdenticalHistories(warm, cold);
}

INSTANTIATE_TEST_SUITE_P(
    SolversAndGraphs, WarmColdEquivalenceTest,
    ::testing::Values(
        EquivalenceCase{HarmonicSolver::kGaussSeidel, 60, 0, "GsDense"},
        EquivalenceCase{HarmonicSolver::kGaussSeidel, 60, 8, "GsTopK8"},
        EquivalenceCase{HarmonicSolver::kConjugateGradient, 60, 0,
                        "CgDense"},
        EquivalenceCase{HarmonicSolver::kConjugateGradient, 60, 8,
                        "CgTopK8"},
        EquivalenceCase{HarmonicSolver::kAuto, 160, 8, "AutoTopK8"}),
    [](const auto& param_info) { return param_info.param.name; });

TEST(WarmColdRecordTest, RoundRecordsNameTheSolverUsed) {
  // kAuto on a large pool starts on CG and may hand over to GS as the
  // unlabeled set shrinks below the threshold; every record must name a
  // concrete solver either way.
  RunResult run =
      RunOnce(HarmonicSolver::kAuto, 160, 8, true, nullptr, nullptr);
  ASSERT_FALSE(run.rounds.empty());
  EXPECT_EQ(run.rounds.front().solver, "conjugate-gradient");
  for (const RoundRecord& record : run.rounds) {
    EXPECT_TRUE(record.solver == "gauss-seidel" ||
                record.solver == "conjugate-gradient")
        << record.solver;
  }
}

}  // namespace
}  // namespace sight
