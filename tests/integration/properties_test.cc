// Parameterized property sweeps over seeds and the paper's alpha/beta
// parameters: invariants that must hold for any configuration.

#include <set>
#include <tuple>

#include <gtest/gtest.h>

#include "core/pool_builder.h"
#include "core/risk_engine.h"
#include "graph/algorithms.h"
#include "sim/facebook_generator.h"
#include "sim/owner_model.h"

namespace sight {
namespace {

using sim::FacebookGenerator;
using sim::Gender;
using sim::GeneratorConfig;
using sim::Locale;
using sim::OwnerAttitude;
using sim::OwnerDataset;
using sim::OwnerModel;
using sim::SampleOwnerAttitude;

OwnerDataset MakeDataset(uint64_t seed) {
  GeneratorConfig config;
  config.num_friends = 40;
  config.num_strangers = 150;
  config.num_communities = 4;
  auto gen = FacebookGenerator::Create(config).value();
  Rng rng(seed);
  return gen.Generate({Gender::kMale, Locale::kTR}, &rng).value();
}

// ---------------------------------------------------------------------------
// Pool partition invariants over (alpha, beta, seed).

class PoolPartitionProperty
    : public ::testing::TestWithParam<std::tuple<size_t, double, uint64_t>> {
};

TEST_P(PoolPartitionProperty, PoolsAreADisjointCover) {
  auto [alpha, beta, seed] = GetParam();
  OwnerDataset ds = MakeDataset(seed);

  PoolBuilderConfig config;
  config.alpha = alpha;
  config.beta = beta;
  auto builder = PoolBuilder::Create(config).value();
  auto pools = builder.Build(ds.graph, ds.profiles, ds.owner).value();

  EXPECT_EQ(pools.TotalStrangers(), ds.strangers.size());
  std::set<UserId> seen;
  for (const StrangerPool& pool : pools.pools) {
    EXPECT_FALSE(pool.members.empty());
    EXPECT_LT(pool.nsg_index, alpha);
    for (UserId s : pool.members) {
      EXPECT_TRUE(seen.insert(s).second);
    }
  }
  EXPECT_EQ(seen.size(), ds.strangers.size());
}

TEST_P(PoolPartitionProperty, NetworkSimilaritiesWithinGroupBounds) {
  auto [alpha, beta, seed] = GetParam();
  OwnerDataset ds = MakeDataset(seed);

  PoolBuilderConfig config;
  config.alpha = alpha;
  config.beta = beta;
  auto builder = PoolBuilder::Create(config).value();
  auto pools = builder.Build(ds.graph, ds.profiles, ds.owner).value();

  // Map stranger -> ns.
  std::map<UserId, double> ns;
  for (size_t i = 0; i < pools.strangers.size(); ++i) {
    ns[pools.strangers[i]] = pools.network_similarities[i];
  }
  double width = 1.0 / static_cast<double>(alpha);
  for (const StrangerPool& pool : pools.pools) {
    double lo = width * static_cast<double>(pool.nsg_index);
    double hi = pool.nsg_index + 1 == alpha
                    ? 1.0 + 1e-12
                    : width * static_cast<double>(pool.nsg_index + 1);
    for (UserId s : pool.members) {
      EXPECT_GE(ns[s], lo - 1e-12);
      EXPECT_LT(ns[s], hi + 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AlphaBetaSeeds, PoolPartitionProperty,
    ::testing::Combine(::testing::Values<size_t>(1, 5, 10, 20),
                       ::testing::Values(0.2, 0.4, 0.8),
                       ::testing::Values<uint64_t>(1, 2)));

// ---------------------------------------------------------------------------
// End-to-end invariants over seeds.

class EngineProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EngineProperty, AssessmentCoversAllStrangersWithValidLabels) {
  uint64_t seed = GetParam();
  OwnerDataset ds = MakeDataset(seed);
  Rng attitude_rng(seed ^ 0xa77);
  OwnerAttitude attitude = SampleOwnerAttitude(&attitude_rng);
  auto oracle =
      OwnerModel::Create(attitude, &ds.profiles, &ds.visibility)
          .value();

  auto engine = RiskEngine::Create(RiskEngineConfig{}).value();
  Rng rng(seed ^ 0xbee);
  auto report = engine
                    .AssessOwner(ds.graph, ds.profiles, ds.visibility,
                                 ds.owner, &oracle, &rng)
                    .value();

  EXPECT_EQ(report.assessment.strangers.size(), ds.strangers.size());
  size_t owner_labeled = 0;
  for (const StrangerAssessment& sa : report.assessment.strangers) {
    int label = static_cast<int>(sa.predicted_label);
    EXPECT_GE(label, kRiskLabelMin);
    EXPECT_LE(label, kRiskLabelMax);
    EXPECT_GE(sa.network_similarity, 0.0);
    EXPECT_LE(sa.network_similarity, 1.0);
    EXPECT_GE(sa.benefit, 0.0);
    if (sa.owner_labeled) ++owner_labeled;
  }
  EXPECT_EQ(owner_labeled, report.assessment.total_queries);
  EXPECT_EQ(owner_labeled, oracle.num_queries());
}

TEST_P(EngineProperty, OwnerLabeledStrangersKeepTheirExactLabel) {
  uint64_t seed = GetParam();
  OwnerDataset ds = MakeDataset(seed);
  Rng attitude_rng(seed ^ 0x123);
  OwnerAttitude attitude = SampleOwnerAttitude(&attitude_rng);
  auto oracle =
      OwnerModel::Create(attitude, &ds.profiles, &ds.visibility)
          .value();

  auto engine = RiskEngine::Create(RiskEngineConfig{}).value();
  Rng rng(seed ^ 0x456);
  auto report = engine
                    .AssessOwner(ds.graph, ds.profiles, ds.visibility,
                                 ds.owner, &oracle, &rng)
                    .value();
  for (const StrangerAssessment& sa : report.assessment.strangers) {
    if (!sa.owner_labeled) continue;
    RiskLabel expected =
        oracle.TrueLabel(sa.stranger, sa.network_similarity, sa.benefit);
    EXPECT_EQ(sa.predicted_label, expected);
  }
}

TEST_P(EngineProperty, RoundRecordsAreWellFormed) {
  uint64_t seed = GetParam();
  OwnerDataset ds = MakeDataset(seed);
  Rng attitude_rng(seed ^ 0x789);
  OwnerAttitude attitude = SampleOwnerAttitude(&attitude_rng);
  auto oracle =
      OwnerModel::Create(attitude, &ds.profiles, &ds.visibility)
          .value();

  auto engine = RiskEngine::Create(RiskEngineConfig{}).value();
  Rng rng(seed ^ 0xabc);
  auto report = engine
                    .AssessOwner(ds.graph, ds.profiles, ds.visibility,
                                 ds.owner, &oracle, &rng)
                    .value();
  std::map<size_t, size_t> last_round_of_pool;
  for (const RoundRecord& r : report.assessment.rounds) {
    EXPECT_GE(r.round, 1u);
    EXPECT_LE(r.newly_labeled, RiskEngineConfig{}.learner.labels_per_round);
    if (r.rmse_valid) {
      EXPECT_GE(r.rmse, 0.0);
      EXPECT_LE(r.rmse, 2.0);  // label range is [1, 3]
    } else {
      EXPECT_EQ(r.round, 1u);  // only the first round lacks RMSE
    }
    // Rounds within a pool are consecutive.
    size_t& last = last_round_of_pool[r.pool_index];
    EXPECT_EQ(r.round, last + 1);
    last = r.round;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineProperty,
                         ::testing::Values<uint64_t>(11, 22, 33, 44, 55));

}  // namespace
}  // namespace sight
