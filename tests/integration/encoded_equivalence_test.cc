// The dictionary-encoded hot paths must be drop-in replacements for the
// string paths — not approximately, but bitwise: PS values, Squeezer
// assignments, and end-to-end learner predictions have to come out
// identical, including for all-missing profiles and for values outside
// the dictionary the frequencies were built from.

#include <algorithm>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "clustering/kmodes.h"
#include "clustering/squeezer.h"
#include "core/active_learner.h"
#include "core/attribute_importance.h"
#include "core/pool_builder.h"
#include "graph/profile_codec.h"
#include "learning/harmonic.h"
#include "learning/info_gain.h"
#include "learning/sampling.h"
#include "sim/facebook_generator.h"
#include "similarity/profile_similarity.h"

namespace sight {
namespace {

using sim::FacebookGenerator;
using sim::Gender;
using sim::GeneratorConfig;
using sim::Locale;
using sim::OwnerDataset;

OwnerDataset MakeDataset(uint64_t seed, size_t strangers = 150) {
  GeneratorConfig config;
  config.num_friends = 40;
  config.num_strangers = strangers;
  config.num_communities = 4;
  auto gen = FacebookGenerator::Create(config).value();
  Rng rng(seed);
  return gen.Generate({Gender::kFemale, Locale::kUS}, &rng).value();
}

// Appends users that stress the encoding edge cases: one with every value
// missing and one whose values appear nowhere else in the table.
std::vector<UserId> WithEdgeCaseUsers(ProfileTable* table,
                                      std::vector<UserId> users) {
  UserId all_missing = table->user_id_bound() + 1;
  UserId exotic = all_missing + 1;
  size_t n = table->schema().num_attributes();
  Profile exotic_profile;
  for (size_t a = 0; a < n; ++a) {
    exotic_profile.values.push_back("zz-novel-" + std::to_string(a));
  }
  EXPECT_TRUE(table->Set(exotic, std::move(exotic_profile)).ok());
  // `all_missing` is never Set: the table serves its all-missing default.
  users.push_back(all_missing);
  users.push_back(exotic);
  return users;
}

TEST(EncodedEquivalenceTest, PairwiseSimilarityIsBitwiseIdentical) {
  OwnerDataset ds = MakeDataset(211);
  std::vector<UserId> pool =
      WithEdgeCaseUsers(&ds.profiles, ds.strangers);

  EncodedProfileTable enc = EncodedProfileTable::Build(ds.profiles, pool);
  ValueFrequencyTable freqs = ValueFrequencyTable::Build(enc);
  auto ps = ProfileSimilarity::Create(ds.profiles.schema()).value();

  for (size_t i = 0; i < pool.size(); ++i) {
    for (size_t j = i + 1; j < pool.size(); ++j) {
      double by_string = ps.Compute(ds.profiles, pool[i], pool[j], freqs);
      double by_code = ps.Compute(enc, i, j, freqs);
      // EXPECT_EQ, not EXPECT_NEAR: the encoded path must reproduce the
      // exact same IEEE operations.
      EXPECT_EQ(by_string, by_code)
          << "pair (" << pool[i] << ", " << pool[j] << ")";
    }
  }
}

TEST(EncodedEquivalenceTest, OutOfDictionaryValuesMatchStringPath) {
  OwnerDataset ds = MakeDataset(223);
  // Frequencies come from a pool that excludes the edge-case users, so
  // the exotic user's values are outside the frequency dictionary.
  std::vector<UserId> pool = ds.strangers;
  std::vector<UserId> all = WithEdgeCaseUsers(&ds.profiles, pool);

  ValueFrequencyTable freqs = ValueFrequencyTable::Build(
      EncodedProfileTable::Build(ds.profiles, pool));
  // Encoding against the pool's codec keeps shared codes and pushes
  // novel values past the frequency arrays (frequency 0, like a
  // string-map miss).
  EncodedProfileTable enc =
      EncodedProfileTable::Build(ds.profiles, all, &freqs.codec());
  auto ps = ProfileSimilarity::Create(ds.profiles.schema()).value();

  for (size_t i = pool.size(); i < all.size(); ++i) {
    for (size_t j = 0; j < all.size(); ++j) {
      if (i == j) continue;
      EXPECT_EQ(ps.Compute(ds.profiles, all[i], all[j], freqs),
                ps.Compute(enc, i, j, freqs))
          << "pair (" << all[i] << ", " << all[j] << ")";
    }
  }
}

// String-only reimplementation of Squeezer's one-pass loop, kept
// deliberately naive (unordered_map supports, no codec) as the reference
// for the code-indexed implementation.
std::vector<size_t> NaiveSqueezerAssignments(const ProfileTable& table,
                                             const std::vector<UserId>& users,
                                             const std::vector<double>& weights,
                                             double threshold) {
  size_t n = table.schema().num_attributes();
  struct NaiveSummary {
    std::vector<std::unordered_map<std::string, size_t>> supports;
    std::vector<size_t> totals;
  };
  std::vector<NaiveSummary> clusters;
  std::vector<size_t> assignments;
  for (UserId u : users) {
    const Profile& profile = table.Get(u);
    double best_sim = -1.0;
    size_t best = 0;
    for (size_t c = 0; c < clusters.size(); ++c) {
      double sim = 0.0;
      for (AttributeId a = 0; a < n; ++a) {
        if (profile.IsMissing(a)) continue;
        size_t total = clusters[c].totals[a];
        if (total == 0) continue;
        auto it = clusters[c].supports[a].find(profile.value(a));
        size_t support = it == clusters[c].supports[a].end() ? 0 : it->second;
        sim += weights[a] * (static_cast<double>(support) /
                             static_cast<double>(total));
      }
      if (sim > best_sim) {
        best_sim = sim;
        best = c;
      }
    }
    if (clusters.empty() || best_sim < threshold) {
      clusters.push_back(
          {std::vector<std::unordered_map<std::string, size_t>>(n),
           std::vector<size_t>(n, 0)});
      best = clusters.size() - 1;
    }
    for (AttributeId a = 0; a < n; ++a) {
      if (profile.IsMissing(a)) continue;
      ++clusters[best].supports[a][profile.value(a)];
      ++clusters[best].totals[a];
    }
    assignments.push_back(best);
  }
  return assignments;
}

TEST(EncodedEquivalenceTest, SqueezerAssignmentsMatchNaiveStringReference) {
  OwnerDataset ds = MakeDataset(227, 250);
  std::vector<UserId> users = WithEdgeCaseUsers(&ds.profiles, ds.strangers);
  size_t n = ds.profiles.schema().num_attributes();
  std::vector<double> uniform(n, 1.0 / static_cast<double>(n));

  for (double threshold : {0.2, 0.4, 0.7}) {
    SqueezerConfig config;
    config.threshold = threshold;
    // IncrementalSqueezer with empty weights gets exactly 1/n per
    // attribute, matching the reference's weights bitwise.
    auto incremental =
        IncrementalSqueezer::Create(ds.profiles.schema(), config).value();
    std::vector<size_t> assignments =
        incremental.AddBatch(ds.profiles, users).value();
    std::vector<size_t> expected =
        NaiveSqueezerAssignments(ds.profiles, users, uniform, threshold);
    EXPECT_EQ(assignments, expected) << "threshold " << threshold;
  }
}

// String-only reimplementation of the k-modes loop (farthest-point
// seeding, assignment, per-attribute mode update with lexicographic
// tie-break), kept naive as the reference for the code-indexed
// implementation in KModes::ClusterEncoded.
Clustering NaiveKModes(const ProfileTable& table,
                       const std::vector<UserId>& users,
                       const std::vector<double>& weights, size_t k_in,
                       size_t max_iterations, Rng* rng) {
  size_t n = weights.size();
  auto distance = [&](const Profile& p,
                      const std::vector<std::string>& mode) {
    double dist = 0.0;
    for (AttributeId a = 0; a < n; ++a) {
      bool match =
          !p.IsMissing(a) && a < mode.size() && p.value(a) == mode[a];
      if (!match) dist += weights[a];
    }
    return dist;
  };

  Clustering result;
  if (users.empty()) return result;
  size_t k = std::min(k_in, users.size());
  std::vector<std::vector<std::string>> modes;
  size_t first = static_cast<size_t>(
      rng->UniformInt(0, static_cast<int64_t>(users.size()) - 1));
  modes.push_back(table.Get(users[first]).values);
  modes.back().resize(n);
  while (modes.size() < k) {
    double best_dist = -1.0;
    size_t best_idx = 0;
    for (size_t i = 0; i < users.size(); ++i) {
      const Profile& p = table.Get(users[i]);
      double nearest = distance(p, modes[0]);
      for (size_t m = 1; m < modes.size(); ++m) {
        nearest = std::min(nearest, distance(p, modes[m]));
      }
      if (nearest > best_dist) {
        best_dist = nearest;
        best_idx = i;
      }
    }
    modes.push_back(table.Get(users[best_idx]).values);
    modes.back().resize(n);
  }

  std::vector<size_t> assignment(users.size(), 0);
  for (size_t iter = 0; iter < max_iterations; ++iter) {
    bool changed = false;
    for (size_t i = 0; i < users.size(); ++i) {
      const Profile& p = table.Get(users[i]);
      double best = distance(p, modes[0]);
      size_t best_c = 0;
      for (size_t c = 1; c < k; ++c) {
        double d = distance(p, modes[c]);
        if (d < best) {
          best = d;
          best_c = c;
        }
      }
      if (assignment[i] != best_c) {
        assignment[i] = best_c;
        changed = true;
      }
    }
    if (!changed && iter > 0) break;
    std::vector<std::vector<std::unordered_map<std::string, size_t>>> counts(
        k, std::vector<std::unordered_map<std::string, size_t>>(n));
    for (size_t i = 0; i < users.size(); ++i) {
      const Profile& p = table.Get(users[i]);
      for (AttributeId a = 0; a < n; ++a) {
        if (p.IsMissing(a)) continue;
        ++counts[assignment[i]][a][p.value(a)];
      }
    }
    for (size_t c = 0; c < k; ++c) {
      for (AttributeId a = 0; a < n; ++a) {
        const auto& cnt = counts[c][a];
        if (cnt.empty()) continue;
        auto best = cnt.begin();
        for (auto it = cnt.begin(); it != cnt.end(); ++it) {
          if (it->second > best->second ||
              (it->second == best->second && it->first < best->first)) {
            best = it;
          }
        }
        modes[c][a] = best->first;
      }
    }
  }

  std::vector<size_t> remap(k, SIZE_MAX);
  result.assignments.resize(users.size());
  for (size_t i = 0; i < users.size(); ++i) {
    size_t c = assignment[i];
    if (remap[c] == SIZE_MAX) {
      remap[c] = result.clusters.size();
      result.clusters.emplace_back();
    }
    result.assignments[i] = remap[c];
    result.clusters[remap[c]].push_back(users[i]);
  }
  return result;
}

TEST(EncodedEquivalenceTest, KModesMatchesNaiveStringReference) {
  OwnerDataset ds = MakeDataset(233, 200);
  std::vector<UserId> users = WithEdgeCaseUsers(&ds.profiles, ds.strangers);
  size_t n = ds.profiles.schema().num_attributes();

  for (size_t k : {size_t{2}, size_t{5}, size_t{12}}) {
    KModesConfig config;
    config.k = k;
    auto kmodes = KModes::Create(ds.profiles.schema(), config).value();
    // Same-seeded Rngs: each path consumes exactly one UniformInt for the
    // first seed, so their draws stay aligned.
    Rng encoded_rng(97), reference_rng(97);
    Clustering encoded =
        kmodes.Cluster(ds.profiles, users, &encoded_rng).value();
    Clustering expected =
        NaiveKModes(ds.profiles, users, std::vector<double>(n, 1.0), k,
                    config.max_iterations, &reference_rng);
    EXPECT_EQ(encoded.assignments, expected.assignments) << "k=" << k;
    EXPECT_EQ(encoded.clusters, expected.clusters) << "k=" << k;
  }
}

// The info-gain measures partition a column by value identity only, and
// the codec maps equal strings to equal codes ("" to kMissingCode), so
// the string and code overloads must agree bitwise — including on
// all-missing rows and on values outside everyone else's vocabulary.
TEST(EncodedEquivalenceTest, InfoGainMeasuresMatchOnCodeColumns) {
  OwnerDataset ds = MakeDataset(239, 180);
  std::vector<UserId> users = WithEdgeCaseUsers(&ds.profiles, ds.strangers);
  EncodedProfileTable enc = EncodedProfileTable::Build(ds.profiles, users);

  std::vector<int> labels;
  labels.reserve(users.size());
  for (UserId u : users) labels.push_back(static_cast<int>(u % 3));

  size_t n = ds.profiles.schema().num_attributes();
  std::vector<std::string> values;
  std::vector<uint32_t> codes;
  for (AttributeId a = 0; a < n; ++a) {
    values.clear();
    codes.clear();
    for (size_t i = 0; i < users.size(); ++i) {
      values.push_back(ds.profiles.Value(users[i], a));
      codes.push_back(enc.row(i)[a]);
    }
    EXPECT_EQ(InformationGain(values, labels).value(),
              InformationGain(codes, labels).value())
        << "attribute " << a;
    EXPECT_EQ(SplitInformation(values).value(),
              SplitInformation(codes).value())
        << "attribute " << a;
    EXPECT_EQ(GainRatio(values, labels).value(),
              GainRatio(codes, labels).value())
        << "attribute " << a;
    EXPECT_EQ(CorrectedGainRatio(values, labels).value(),
              CorrectedGainRatio(codes, labels).value())
        << "attribute " << a;
  }
}

TEST(EncodedEquivalenceTest, AttributeImportanceMatchesEncodedPath) {
  OwnerDataset ds = MakeDataset(241, 160);
  std::vector<UserId> users = WithEdgeCaseUsers(&ds.profiles, ds.strangers);
  EncodedProfileTable enc = EncodedProfileTable::Build(ds.profiles, users);

  std::vector<RiskLabel> labels;
  labels.reserve(users.size());
  for (UserId u : users) {
    labels.push_back(
        static_cast<RiskLabel>(kRiskLabelMin + static_cast<int>(u % 3)));
  }

  auto by_string =
      ProfileAttributeImportance(ds.profiles, users, labels).value();
  auto by_code =
      ProfileAttributeImportance(ds.profiles.schema(), enc, labels).value();

  ASSERT_EQ(by_string.size(), by_code.size());
  for (size_t a = 0; a < by_string.size(); ++a) {
    EXPECT_EQ(by_string[a].name, by_code[a].name);
    EXPECT_EQ(by_string[a].gain_ratio, by_code[a].gain_ratio)
        << "attribute " << by_string[a].name;
    EXPECT_EQ(by_string[a].importance, by_code[a].importance)
        << "attribute " << by_string[a].name;
  }
}

// Deterministic, stateless oracle so the encoded and string runs can
// share it without coupling their query sequences through hidden state.
class CyclicOracle : public LabelOracle {
 public:
  RiskLabel QueryLabel(UserId stranger, double, double) override {
    return static_cast<RiskLabel>(kRiskLabelMin +
                                  static_cast<int>(stranger % 3));
  }
};

TEST(EncodedEquivalenceTest, LearnerPredictionsMatchStringPath) {
  OwnerDataset ds = MakeDataset(229, 200);
  PoolBuilderConfig pool_config;
  auto builder = PoolBuilder::Create(pool_config).value();
  PoolSet pools = builder.Build(ds.graph, ds.profiles, ds.owner).value();
  std::vector<double> benefits(pools.strangers.size(), 0.5);

  auto classifier =
      HarmonicFunctionClassifier::Create(HarmonicConfig{}).value();
  RandomSampler sampler;
  ActiveLearnerConfig config;

  // Encoded path: the production ActiveLearner (its matrix fill runs on
  // the dictionary-encoded view).
  auto learner = ActiveLearner::Create(pools, ds.profiles, benefits, config,
                                       &classifier, &sampler)
                     .value();
  CyclicOracle oracle;
  Rng rng(331);
  AssessmentResult encoded_result = learner.Run(&oracle, &rng).value();

  // String path: rebuild every pool's weight matrix with the string
  // overload of PS, then drive identical PoolLearners through the same
  // round loop with a same-seeded Rng.
  std::unordered_map<UserId, size_t> position;
  for (size_t i = 0; i < pools.strangers.size(); ++i) {
    position[pools.strangers[i]] = i;
  }
  auto ps = ProfileSimilarity::Create(ds.profiles.schema()).value();
  std::vector<StrangerAssessment> string_strangers;
  size_t string_queries = 0;
  Rng string_rng(331);
  for (size_t p = 0; p < pools.pools.size(); ++p) {
    const StrangerPool& pool = pools.pools[p];
    size_t n = pool.members.size();
    ValueFrequencyTable freqs =
        ValueFrequencyTable::Build(ds.profiles, pool.members);
    SimilarityMatrix weights(n);
    std::vector<double> sims(n), bens(n);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) {
        weights.Set(i, j, ps.Compute(ds.profiles, pool.members[i],
                                     pool.members[j], freqs));
      }
      size_t pos = position.at(pool.members[i]);
      sims[i] = pools.network_similarities[pos];
      bens[i] = benefits[pos];
    }
    auto pool_learner =
        PoolLearner::Create(pool, std::move(weights), std::move(sims),
                            std::move(bens), config, &classifier, &sampler)
            .value();
    ASSERT_TRUE(pool_learner.RunToCompletion(&oracle, &string_rng).ok());
    string_queries += pool_learner.num_queries();
    for (size_t i = 0; i < pool.members.size(); ++i) {
      StrangerAssessment sa;
      sa.stranger = pool.members[i];
      sa.predicted_score = pool_learner.predictions()[i];
      sa.predicted_label = pool_learner.PredictedLabel(i);
      sa.owner_labeled = pool_learner.IsOwnerLabeled(i);
      string_strangers.push_back(sa);
    }
  }

  // Identical matrices mean identical sampling, identical queries, and
  // bitwise-identical predictions.
  EXPECT_EQ(encoded_result.total_queries, string_queries);
  ASSERT_EQ(encoded_result.strangers.size(), string_strangers.size());
  for (size_t i = 0; i < string_strangers.size(); ++i) {
    const StrangerAssessment& a = encoded_result.strangers[i];
    const StrangerAssessment& b = string_strangers[i];
    EXPECT_EQ(a.stranger, b.stranger);
    EXPECT_EQ(a.predicted_score, b.predicted_score) << "stranger " << i;
    EXPECT_EQ(a.predicted_label, b.predicted_label);
    EXPECT_EQ(a.owner_labeled, b.owner_labeled);
  }
}

}  // namespace
}  // namespace sight
