// The pipeline is schema-driven: nothing in pools/learning hard-codes the
// Facebook attribute set. This test runs the full engine over a
// Twitter-like profile schema (the paper's Section VI "data sets coming
// from different social networks" direction).

#include <gtest/gtest.h>

#include "core/risk_engine.h"
#include "graph/algorithms.h"
#include "sim/twitter_generator.h"

namespace sight {
namespace {

ProfileSchema TwitterSchema() {
  return ProfileSchema::Create(
             {"verified", "language", "account_age_bucket", "follower_bucket"})
      .value();
}

class FollowerOracle : public LabelOracle {
 public:
  explicit FollowerOracle(const ProfileTable* profiles)
      : profiles_(profiles) {}

  RiskLabel QueryLabel(UserId stranger, double similarity, double) override {
    // Unverified accounts with low similarity are risky.
    bool verified = profiles_->Value(stranger, 0) == "yes";
    if (verified) return RiskLabel::kNotRisky;
    return similarity < 0.2 ? RiskLabel::kVeryRisky : RiskLabel::kRisky;
  }

 private:
  const ProfileTable* profiles_;
};

TEST(AlternateSchemaTest, EngineRunsOnTwitterLikeData) {
  SocialGraph graph(7);
  ProfileTable profiles(TwitterSchema());
  VisibilityTable visibility;

  auto edge = [&](UserId a, UserId b) {
    ASSERT_TRUE(graph.AddEdge(a, b).ok());
  };
  // Owner 0, friends 1-3 (clique), strangers appended below.
  edge(0, 1);
  edge(0, 2);
  edge(0, 3);
  edge(1, 2);
  edge(2, 3);
  edge(1, 3);

  Rng rng(5);
  for (int i = 0; i < 60; ++i) {
    UserId s = graph.AddUser();
    size_t mutuals = 1 + static_cast<size_t>(rng.UniformInt(0, 2));
    for (size_t m = 0; m < mutuals; ++m) {
      edge(s, static_cast<UserId>(1 + m));
    }
    Profile p;
    p.values = {rng.Bernoulli(0.3) ? "yes" : "no",
                rng.Bernoulli(0.6) ? "en" : "es",
                rng.Bernoulli(0.5) ? "old" : "new",
                rng.Bernoulli(0.2) ? "high" : "low"};
    ASSERT_TRUE(profiles.Set(s, p).ok());
    visibility.SetMask(s, static_cast<uint8_t>(rng.UniformInt(0, 127)));
  }
  for (UserId u = 0; u <= 3; ++u) {
    Profile p;
    p.values = {"yes", "en", "old", "high"};
    ASSERT_TRUE(profiles.Set(u, p).ok());
  }

  auto engine = RiskEngine::Create(RiskEngineConfig{}).value();
  FollowerOracle oracle(&profiles);
  Rng run_rng(7);
  auto report =
      engine.AssessOwner(graph, profiles, visibility, 0, &oracle, &run_rng)
          .value();
  EXPECT_EQ(report.assessment.strangers.size(), 60u);
  for (const StrangerAssessment& sa : report.assessment.strangers) {
    int label = static_cast<int>(sa.predicted_label);
    EXPECT_GE(label, kRiskLabelMin);
    EXPECT_LE(label, kRiskLabelMax);
  }
}

TEST(AlternateSchemaTest, FullPipelineOnGeneratedTwitterNetwork) {
  sim::TwitterGeneratorConfig gen_config;
  gen_config.num_followed = 40;
  gen_config.num_strangers = 250;
  gen_config.num_celebrities = 4;
  auto gen = sim::TwitterGenerator::Create(gen_config).value();
  Rng rng(11);
  auto ds = gen.Generate(&rng).value();

  FollowerOracle oracle(&ds.profiles);
  auto engine = RiskEngine::Create(RiskEngineConfig{}).value();
  Rng run_rng(13);
  auto report = engine
                    .AssessOwner(ds.graph, ds.profiles, ds.visibility,
                                 ds.owner, &oracle, &run_rng)
                    .value();
  EXPECT_EQ(report.assessment.strangers.size(), ds.strangers.size());
  EXPECT_LT(report.assessment.total_queries, ds.strangers.size());
  // Verified accounts are judged not risky by this oracle; at least some
  // should surface with that label.
  size_t not_risky = 0;
  for (const StrangerAssessment& sa : report.assessment.strangers) {
    if (sa.predicted_label == RiskLabel::kNotRisky) ++not_risky;
  }
  EXPECT_GT(not_risky, 0u);
}

TEST(AlternateSchemaTest, SqueezerWeightsFollowSchemaArity) {
  // A four-attribute schema needs four weights; wrong arity is rejected at
  // the PoolBuilder level when it reaches Squeezer.
  SocialGraph graph(3);
  ASSERT_TRUE(graph.AddEdge(0, 1).ok());
  ASSERT_TRUE(graph.AddEdge(1, 2).ok());
  ProfileTable profiles(TwitterSchema());
  PoolBuilderConfig config;
  config.attribute_weights = {1.0, 1.0};  // wrong arity: schema has 4
  auto builder = PoolBuilder::Create(config).value();
  EXPECT_FALSE(builder.Build(graph, profiles, 0).ok());
}

}  // namespace
}  // namespace sight
