// Robustness under hostile or degenerate inputs: the learner must always
// terminate with full coverage and bounded effort, whatever the oracle or
// the data does.

#include <gtest/gtest.h>

#include "core/risk_engine.h"
#include "core/risk_session.h"
#include "graph/algorithms.h"
#include "sim/facebook_generator.h"

namespace sight {
namespace {

sim::OwnerDataset MakeDataset(uint64_t seed, size_t strangers = 150) {
  sim::GeneratorConfig config;
  config.num_friends = 30;
  config.num_strangers = strangers;
  config.num_communities = 3;
  auto gen = sim::FacebookGenerator::Create(config).value();
  Rng rng(seed);
  return gen.Generate({sim::Gender::kMale, sim::Locale::kTR}, &rng).value();
}

// Answers uniformly at random but consistently per stranger.
class RandomConsistentOracle : public LabelOracle {
 public:
  explicit RandomConsistentOracle(uint64_t seed) : seed_(seed) {}

  RiskLabel QueryLabel(UserId stranger, double, double) override {
    ++queries_;
    uint64_t z = seed_ ^ (static_cast<uint64_t>(stranger) *
                          0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z ^= z >> 31;
    return static_cast<RiskLabel>(1 + static_cast<int>(z % 3));
  }

  size_t queries() const { return queries_; }

 private:
  uint64_t seed_;
  size_t queries_ = 0;
};

// The worst case: answers flip on every call, violating the consistency
// assumption active learning relies on.
class FlipFlopOracle : public LabelOracle {
 public:
  RiskLabel QueryLabel(UserId, double, double) override {
    ++calls_;
    return calls_ % 2 == 0 ? RiskLabel::kNotRisky : RiskLabel::kVeryRisky;
  }

 private:
  size_t calls_ = 0;
};

// Always answers the same label.
class ConstantOracle : public LabelOracle {
 public:
  explicit ConstantOracle(RiskLabel label) : label_(label) {}
  RiskLabel QueryLabel(UserId, double, double) override { return label_; }

 private:
  RiskLabel label_;
};

TEST(RobustnessTest, RandomOracleTerminatesWithFullCoverage) {
  sim::OwnerDataset ds = MakeDataset(1);
  RandomConsistentOracle oracle(7);
  auto engine = RiskEngine::Create(RiskEngineConfig{}).value();
  Rng rng(3);
  auto report = engine
                    .AssessOwner(ds.graph, ds.profiles, ds.visibility,
                                 ds.owner, &oracle, &rng)
                    .value();
  EXPECT_EQ(report.assessment.strangers.size(), ds.strangers.size());
  // Random labels resist prediction; effort is bounded by pool exhaustion
  // or max_rounds, never more than one query per stranger.
  EXPECT_LE(oracle.queries(), ds.strangers.size());
}

TEST(RobustnessTest, InconsistentOracleTerminates) {
  sim::OwnerDataset ds = MakeDataset(2, 100);
  FlipFlopOracle oracle;
  RiskEngineConfig config;
  config.learner.max_rounds = 16;
  auto engine = RiskEngine::Create(config).value();
  Rng rng(5);
  auto report = engine
                    .AssessOwner(ds.graph, ds.profiles, ds.visibility,
                                 ds.owner, &oracle, &rng)
                    .value();
  EXPECT_EQ(report.assessment.strangers.size(), ds.strangers.size());
  // Every pool ended one way or another.
  EXPECT_EQ(report.assessment.pools_converged +
                report.assessment.pools_exhausted +
                report.assessment.pools_round_limit,
            report.num_pools);
}

TEST(RobustnessTest, ConstantOracleConvergesCheaply) {
  sim::OwnerDataset ds = MakeDataset(3);
  ConstantOracle oracle(RiskLabel::kRisky);
  RiskEngineConfig config;
  config.pools.attribute_weights = sim::PaperAttributeWeights();
  auto engine = RiskEngine::Create(config).value();
  Rng rng(7);
  auto report = engine
                    .AssessOwner(ds.graph, ds.profiles, ds.visibility,
                                 ds.owner, &oracle, &rng)
                    .value();
  for (const StrangerAssessment& sa : report.assessment.strangers) {
    EXPECT_EQ(sa.predicted_label, RiskLabel::kRisky);
  }
  EXPECT_LT(report.assessment.total_queries, ds.strangers.size());
}

TEST(RobustnessTest, TinyMaxRoundsStillCoversEveryStranger) {
  sim::OwnerDataset ds = MakeDataset(4, 120);
  RandomConsistentOracle oracle(11);
  RiskEngineConfig config;
  config.learner.max_rounds = 1;  // one round per pool, then stop
  auto engine = RiskEngine::Create(config).value();
  Rng rng(13);
  auto report = engine
                    .AssessOwner(ds.graph, ds.profiles, ds.visibility,
                                 ds.owner, &oracle, &rng)
                    .value();
  // Coverage holds even when almost everything is merely predicted.
  EXPECT_EQ(report.assessment.strangers.size(), ds.strangers.size());
  for (const StrangerAssessment& sa : report.assessment.strangers) {
    int label = static_cast<int>(sa.predicted_label);
    EXPECT_GE(label, kRiskLabelMin);
    EXPECT_LE(label, kRiskLabelMax);
  }
}

TEST(RobustnessTest, SessionSurvivesGraphGrowthBetweenAssessments) {
  // Users and edges added to the graph after session creation are picked
  // up on the next Assess (the session only reads during Assess).
  sim::OwnerDataset ds = MakeDataset(5, 80);
  RandomConsistentOracle oracle(17);
  RiskEngineConfig config;
  auto session = RiskSession::Create(config, &ds.graph, &ds.profiles,
                                     &ds.visibility, ds.owner)
                     .value();
  ASSERT_TRUE(session.DiscoverAllStrangers().ok());
  Rng rng(19);
  ASSERT_TRUE(session.Assess(&oracle, &rng).ok());

  // Grow the graph: a brand-new stranger via an existing friend.
  UserId newcomer = ds.graph.AddUser();
  ASSERT_TRUE(ds.graph.AddEdge(newcomer, ds.friends[0]).ok());
  Profile p;
  p.values.assign(ds.profiles.schema().num_attributes(), "x");
  ASSERT_TRUE(ds.profiles.Set(newcomer, p).ok());
  ASSERT_TRUE(session.AddStrangers({newcomer}).ok());

  auto report = session.Assess(&oracle, &rng).value();
  bool found = false;
  for (const StrangerAssessment& sa : report.assessment.strangers) {
    if (sa.stranger == newcomer) found = true;
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace sight
