// Metric-level property sweeps over generated graphs: the axioms the
// similarity measures must satisfy on arbitrary realistic data, not just
// hand-built fixtures.

#include <gtest/gtest.h>

#include "similarity/baselines.h"
#include "similarity/network_similarity.h"
#include "similarity/profile_similarity.h"
#include "sim/facebook_generator.h"

namespace sight {
namespace {

sim::OwnerDataset MakeDataset(uint64_t seed) {
  sim::GeneratorConfig config;
  config.num_friends = 30;
  config.num_strangers = 120;
  config.num_communities = 3;
  auto gen = sim::FacebookGenerator::Create(config).value();
  Rng rng(seed);
  return gen.Generate({sim::Gender::kMale, sim::Locale::kTR}, &rng).value();
}

class MetricProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MetricProperty, NetworkSimilarityAxioms) {
  sim::OwnerDataset ds = MakeDataset(GetParam());
  auto ns = NetworkSimilarity::Create(NetworkSimilarityConfig{}).value();
  for (size_t i = 0; i < ds.strangers.size(); i += 7) {
    UserId s = ds.strangers[i];
    double value = ns.Compute(ds.graph, ds.owner, s);
    // Bounds.
    EXPECT_GE(value, 0.0);
    EXPECT_LE(value, 1.0);
    // Symmetry.
    EXPECT_DOUBLE_EQ(value, ns.Compute(ds.graph, s, ds.owner));
    // Positivity iff mutual friends exist (all strangers have >= 1).
    EXPECT_GT(value, 0.0);
  }
  // Two users with no mutual friends score exactly zero.
  UserId isolated = ds.graph.AddUser();
  EXPECT_DOUBLE_EQ(ns.Compute(ds.graph, ds.owner, isolated), 0.0);
}

TEST_P(MetricProperty, NewMutualFriendNeverDecreasesNs) {
  sim::OwnerDataset ds = MakeDataset(GetParam() ^ 0x9999);
  auto ns = NetworkSimilarity::Create(NetworkSimilarityConfig{}).value();
  UserId s = ds.strangers[0];
  double before = ns.Compute(ds.graph, ds.owner, s);
  // Connect the stranger to a friend it does not know yet.
  for (UserId f : ds.friends) {
    if (!ds.graph.HasEdge(s, f)) {
      ASSERT_TRUE(ds.graph.AddEdge(s, f).ok());
      break;
    }
  }
  double after = ns.Compute(ds.graph, ds.owner, s);
  // A new mutual friend raises the count term; density may shift either
  // way, but with the default 0.7 count weight the sum must not drop by
  // more than the density weight — and for a fresh (degree-1-into-the-
  // community) friend it practically always rises. Assert the weaker,
  // always-true form plus the bound.
  EXPECT_GT(after, 0.0);
  EXPECT_GE(after, before - 0.3);  // density term weight bound
}

TEST_P(MetricProperty, ProfileSimilarityAxioms) {
  sim::OwnerDataset ds = MakeDataset(GetParam() ^ 0x5555);
  auto freqs = ValueFrequencyTable::Build(ds.profiles, ds.strangers);
  auto ps = ProfileSimilarity::Create(ds.profiles.schema()).value();
  for (size_t i = 0; i + 1 < ds.strangers.size(); i += 9) {
    UserId a = ds.strangers[i];
    UserId b = ds.strangers[i + 1];
    double sim = ps.Compute(ds.profiles, a, b, freqs);
    EXPECT_GE(sim, 0.0);
    EXPECT_LE(sim, 1.0 + 1e-12);
    // Symmetry.
    EXPECT_DOUBLE_EQ(sim, ps.Compute(ds.profiles, b, a, freqs));
    // Self-similarity dominates pair similarity.
    double self_sim = ps.Compute(ds.profiles, a, a, freqs);
    EXPECT_GE(self_sim + 1e-12, sim);
  }
}

TEST_P(MetricProperty, BaselinesBoundedAndSymmetric) {
  sim::OwnerDataset ds = MakeDataset(GetParam() ^ 0x7777);
  for (size_t i = 0; i < ds.strangers.size(); i += 11) {
    UserId s = ds.strangers[i];
    double jaccard = JaccardSimilarity(ds.graph, ds.owner, s);
    EXPECT_GE(jaccard, 0.0);
    EXPECT_LE(jaccard, 1.0);
    EXPECT_DOUBLE_EQ(jaccard, JaccardSimilarity(ds.graph, s, ds.owner));
    double overlap = OverlapCoefficient(ds.graph, ds.owner, s);
    EXPECT_GE(overlap, jaccard - 1e-12);  // overlap >= jaccard always
    EXPECT_LE(overlap, 1.0);
    double cosine = CosineNeighborSimilarity(ds.graph, ds.owner, s);
    EXPECT_GE(cosine, 0.0);
    EXPECT_LE(cosine, 1.0);
    EXPECT_GE(AdamicAdarScore(ds.graph, ds.owner, s), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricProperty,
                         ::testing::Values<uint64_t>(3, 14, 159, 2653));

}  // namespace
}  // namespace sight
