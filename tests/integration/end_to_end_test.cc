// Full-pipeline integration tests: generated Facebook-like dataset ->
// RiskEngine with a simulated owner -> assessment, checked against the
// owner model's ground truth.

#include <gtest/gtest.h>

#include "core/risk_engine.h"
#include "graph/algorithms.h"
#include "learning/metrics.h"
#include "sim/crawler.h"
#include "sim/facebook_generator.h"
#include "sim/owner_model.h"

namespace sight {
namespace {

using sim::FacebookGenerator;
using sim::Gender;
using sim::GeneratorConfig;
using sim::Locale;
using sim::OwnerAttitude;
using sim::OwnerDataset;
using sim::OwnerModel;
using sim::SampleOwnerAttitude;

OwnerDataset MakeDataset(uint64_t seed, size_t strangers = 300) {
  GeneratorConfig config;
  config.num_friends = 60;
  config.num_strangers = strangers;
  config.num_communities = 5;
  auto gen = FacebookGenerator::Create(config).value();
  Rng rng(seed);
  return gen.Generate({Gender::kMale, Locale::kTR}, &rng).value();
}

TEST(EndToEndTest, FullPipelineProducesAccuratePredictions) {
  OwnerDataset ds = MakeDataset(101);
  Rng attitude_rng(5);
  OwnerAttitude attitude = SampleOwnerAttitude(&attitude_rng);
  attitude.label_noise = 0.03;
  auto oracle =
      OwnerModel::Create(attitude, &ds.profiles, &ds.visibility)
          .value();

  RiskEngineConfig config;
  config.pools.attribute_weights = sim::PaperAttributeWeights();
  config.learner.confidence = attitude.confidence;
  config.theta = attitude.theta;
  auto engine = RiskEngine::Create(config).value();
  Rng rng(202);
  auto report = engine
                    .AssessOwner(ds.graph, ds.profiles, ds.visibility,
                                 ds.owner, &oracle, &rng)
                    .value();

  ASSERT_EQ(report.assessment.strangers.size(), ds.strangers.size());

  // Compare predictions against the oracle's ground truth on strangers the
  // owner never labeled.
  std::vector<int> predicted;
  std::vector<int> truth;
  for (const StrangerAssessment& sa : report.assessment.strangers) {
    if (sa.owner_labeled) continue;
    predicted.push_back(static_cast<int>(sa.predicted_label));
    truth.push_back(static_cast<int>(
        oracle.TrueLabel(sa.stranger, sa.network_similarity, sa.benefit)));
  }
  ASSERT_GT(predicted.size(), 50u);
  double accuracy = ExactMatchRate(predicted, truth).value();
  // The paper reports 83.36% on its own validation queries; we demand a
  // healthy band on held-out ground truth.
  EXPECT_GT(accuracy, 0.6);

  // The whole point of active learning: far fewer queries than strangers.
  EXPECT_LT(report.assessment.total_queries, ds.strangers.size());
}

TEST(EndToEndTest, ValidationAccuracyIsTracked) {
  OwnerDataset ds = MakeDataset(103);
  Rng attitude_rng(7);
  OwnerAttitude attitude = SampleOwnerAttitude(&attitude_rng);
  auto oracle =
      OwnerModel::Create(attitude, &ds.profiles, &ds.visibility)
          .value();

  RiskEngineConfig config;
  auto engine = RiskEngine::Create(config).value();
  Rng rng(11);
  auto report = engine
                    .AssessOwner(ds.graph, ds.profiles, ds.visibility,
                                 ds.owner, &oracle, &rng)
                    .value();
  EXPECT_GT(report.assessment.validation_total, 0u);
  EXPECT_LE(report.assessment.validation_matches,
            report.assessment.validation_total);
  EXPECT_GE(report.assessment.ValidationAccuracy(), 0.0);
  EXPECT_LE(report.assessment.ValidationAccuracy(), 1.0);
}

TEST(EndToEndTest, NppPoolsDoNotUnderperformNspOnQueries) {
  // Sanity: both pool strategies complete, produce full coverage, and NPP
  // yields at least as many (more homogeneous) pools.
  OwnerDataset ds = MakeDataset(107, 200);
  Rng attitude_rng(13);
  OwnerAttitude attitude = SampleOwnerAttitude(&attitude_rng);

  auto run = [&](PoolStrategy strategy) {
    auto oracle =
        OwnerModel::Create(attitude, &ds.profiles, &ds.visibility)
            .value();
    RiskEngineConfig config;
    config.pools.strategy = strategy;
    auto engine = RiskEngine::Create(config).value();
    Rng rng(17);
    return engine
        .AssessOwner(ds.graph, ds.profiles, ds.visibility, ds.owner, &oracle,
                     &rng)
        .value();
  };
  auto npp = run(PoolStrategy::kNetworkAndProfile);
  auto nsp = run(PoolStrategy::kNetworkOnly);
  EXPECT_GE(npp.num_pools, nsp.num_pools);
  EXPECT_EQ(npp.assessment.strangers.size(), nsp.assessment.strangers.size());
}

TEST(EndToEndTest, IncrementalCrawlMatchesPoolRebuild) {
  // The crawler flow: assess after each discovery batch; the final batch
  // assessment covers everything discovered so far.
  OwnerDataset ds = MakeDataset(109, 150);
  Rng attitude_rng(19);
  OwnerAttitude attitude = SampleOwnerAttitude(&attitude_rng);
  auto oracle =
      OwnerModel::Create(attitude, &ds.profiles, &ds.visibility)
          .value();

  Rng crawl_rng(23);
  sim::CrawlerConfig crawl_config;
  crawl_config.batch_size = 50;
  auto crawler =
      sim::Crawler::Create(ds.graph, ds.owner, crawl_config, &crawl_rng)
          .value();

  auto engine = RiskEngine::Create(RiskEngineConfig{}).value();
  Rng rng(29);
  size_t last_covered = 0;
  while (!crawler.done()) {
    crawler.Tick();
    auto report =
        engine
            .AssessStrangers(ds.graph, ds.profiles, ds.visibility, ds.owner,
                             crawler.discovered(), &oracle, &rng)
            .value();
    EXPECT_EQ(report.assessment.strangers.size(),
              crawler.discovered().size());
    EXPECT_GE(report.assessment.strangers.size(), last_covered);
    last_covered = report.assessment.strangers.size();
  }
  EXPECT_EQ(last_covered, ds.strangers.size());
}

TEST(EndToEndTest, HigherConfidenceCostsMoreQueries) {
  OwnerDataset ds = MakeDataset(113, 200);
  Rng attitude_rng(31);
  OwnerAttitude attitude = SampleOwnerAttitude(&attitude_rng);
  attitude.label_noise = 0.0;

  auto run = [&](double confidence) {
    auto oracle =
        OwnerModel::Create(attitude, &ds.profiles, &ds.visibility)
            .value();
    RiskEngineConfig config;
    config.learner.confidence = confidence;
    auto engine = RiskEngine::Create(config).value();
    Rng rng(37);
    auto report = engine
                      .AssessOwner(ds.graph, ds.profiles, ds.visibility,
                                   ds.owner, &oracle, &rng)
                      .value();
    return report.assessment.total_queries;
  };
  size_t low = run(60.0);
  size_t high = run(99.9);
  EXPECT_LE(low, high);
}

TEST(EndToEndTest, ConfidenceHundredLabelsEveryStranger) {
  OwnerDataset ds = MakeDataset(127, 80);
  Rng attitude_rng(41);
  OwnerAttitude attitude = SampleOwnerAttitude(&attitude_rng);
  auto oracle =
      OwnerModel::Create(attitude, &ds.profiles, &ds.visibility)
          .value();
  RiskEngineConfig config;
  config.learner.confidence = 100.0;
  config.learner.max_rounds = 10000;
  auto engine = RiskEngine::Create(config).value();
  Rng rng(43);
  auto report = engine
                    .AssessOwner(ds.graph, ds.profiles, ds.visibility,
                                 ds.owner, &oracle, &rng)
                    .value();
  EXPECT_EQ(report.assessment.total_queries, ds.strangers.size());
  for (const StrangerAssessment& sa : report.assessment.strangers) {
    EXPECT_TRUE(sa.owner_labeled);
  }
}

}  // namespace
}  // namespace sight
