#include "core/friend_suggestion.h"

#include <gtest/gtest.h>

namespace sight {
namespace {

AssessmentResult SampleAssessment() {
  AssessmentResult assessment;
  auto add = [&](UserId u, RiskLabel label, double ns, double benefit) {
    StrangerAssessment sa;
    sa.stranger = u;
    sa.predicted_label = label;
    sa.network_similarity = ns;
    sa.benefit = benefit;
    assessment.strangers.push_back(sa);
  };
  add(1, RiskLabel::kNotRisky, 0.5, 0.1);
  add(2, RiskLabel::kNotRisky, 0.2, 0.9);
  add(3, RiskLabel::kRisky, 0.9, 0.9);      // filtered by default
  add(4, RiskLabel::kVeryRisky, 1.0, 1.0);  // filtered
  add(5, RiskLabel::kNotRisky, 0.5, 0.1);   // ties with 1
  return assessment;
}

TEST(SuggestFriendsTest, FiltersByLabelAndRanksByAffinity) {
  auto suggestions = SuggestFriends(SampleAssessment()).value();
  ASSERT_EQ(suggestions.size(), 3u);
  // Affinity with ns_weight 0.7: user1/5 = 0.38, user2 = 0.41.
  EXPECT_EQ(suggestions[0].stranger, 2u);
  EXPECT_NEAR(suggestions[0].affinity, 0.41, 1e-12);
  // Tie between 1 and 5 broken by id.
  EXPECT_EQ(suggestions[1].stranger, 1u);
  EXPECT_EQ(suggestions[2].stranger, 5u);
}

TEST(SuggestFriendsTest, NsWeightChangesRanking) {
  FriendSuggestionConfig config;
  config.ns_weight = 1.0;  // pure homophily
  auto suggestions = SuggestFriends(SampleAssessment(), config).value();
  EXPECT_EQ(suggestions[0].stranger, 1u);  // highest ns among not-risky
}

TEST(SuggestFriendsTest, MaxLabelWidensCandidates) {
  FriendSuggestionConfig config;
  config.max_label = RiskLabel::kRisky;
  auto suggestions = SuggestFriends(SampleAssessment(), config).value();
  ASSERT_EQ(suggestions.size(), 4u);
  EXPECT_EQ(suggestions[0].stranger, 3u);  // 0.9/0.9 dominates
}

TEST(SuggestFriendsTest, MaxSuggestionsCaps) {
  FriendSuggestionConfig config;
  config.max_suggestions = 1;
  auto suggestions = SuggestFriends(SampleAssessment(), config).value();
  EXPECT_EQ(suggestions.size(), 1u);
}

TEST(SuggestFriendsTest, EmptyAssessmentGivesNoSuggestions) {
  AssessmentResult empty;
  EXPECT_TRUE(SuggestFriends(empty).value().empty());
}

TEST(SuggestFriendsTest, ValidatesConfig) {
  FriendSuggestionConfig config;
  config.ns_weight = 1.5;
  EXPECT_FALSE(SuggestFriends(SampleAssessment(), config).ok());
}

}  // namespace
}  // namespace sight
