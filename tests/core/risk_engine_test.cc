#include "core/risk_engine.h"

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "graph/algorithms.h"
#include "graph/profile.h"
#include "graph/social_graph.h"
#include "graph/visibility.h"

namespace sight {
namespace {

// Deterministic oracle: labels depend only on the displayed similarity.
class SimilarityOracle : public LabelOracle {
 public:
  RiskLabel QueryLabel(UserId, double similarity, double) override {
    ++queries_;
    if (similarity < 0.15) return RiskLabel::kVeryRisky;
    if (similarity < 0.4) return RiskLabel::kRisky;
    return RiskLabel::kNotRisky;
  }
  size_t queries() const { return queries_; }

 private:
  size_t queries_ = 0;
};

ProfileSchema TestSchema() {
  return ProfileSchema::Create({"gender", "locale"}).value();
}

// Owner 0, 8 friends in two squares, 40 strangers with varying mutuals.
struct World {
  SocialGraph graph;
  ProfileTable profiles{TestSchema()};
  VisibilityTable visibility;
  UserId owner;

  World() {
    graph.AddUsers(9);
    owner = 0;
    auto edge = [&](UserId a, UserId b) {
      EXPECT_TRUE(graph.AddEdge(a, b).ok());
    };
    for (UserId f = 1; f <= 8; ++f) edge(0, f);
    // Friend communities 1-4 and 5-8 are cliques.
    for (UserId a = 1; a <= 4; ++a) {
      for (UserId b = a + 1; b <= 4; ++b) edge(a, b);
    }
    for (UserId a = 5; a <= 8; ++a) {
      for (UserId b = a + 1; b <= 8; ++b) edge(a, b);
    }
    // 40 strangers: stranger i attaches to (i % 4) + 1 friends of one
    // community.
    for (int i = 0; i < 40; ++i) {
      UserId s = graph.AddUser();
      UserId base = i % 2 == 0 ? 1 : 5;
      int mutuals = (i % 4) + 1;
      for (int m = 0; m < mutuals; ++m) {
        edge(s, base + static_cast<UserId>(m));
      }
      Profile p;
      p.values = i % 2 == 0 ? std::vector<std::string>{"male", "tr_TR"}
                            : std::vector<std::string>{"female", "en_US"};
      EXPECT_TRUE(profiles.Set(s, p).ok());
      visibility.SetMask(s, static_cast<uint8_t>(i % 128));
    }
    for (UserId u = 0; u <= 8; ++u) {
      Profile p;
      p.values = {"male", "tr_TR"};
      EXPECT_TRUE(profiles.Set(u, p).ok());
    }
  }
};

TEST(RiskEngineTest, CreateValidatesConfig) {
  RiskEngineConfig config;
  config.learner.labels_per_round = 0;
  EXPECT_FALSE(RiskEngine::Create(config).ok());
  config = {};
  config.theta.values.fill(0.0);
  EXPECT_FALSE(RiskEngine::Create(config).ok());
  EXPECT_TRUE(RiskEngine::Create(RiskEngineConfig{}).ok());
}

TEST(RiskEngineTest, AssessOwnerLabelsEveryStranger) {
  World world;
  auto engine = RiskEngine::Create(RiskEngineConfig{}).value();
  SimilarityOracle oracle;
  Rng rng(42);
  auto report = engine
                    .AssessOwner(world.graph, world.profiles,
                                 world.visibility, world.owner, &oracle, &rng)
                    .value();
  EXPECT_EQ(report.num_strangers, 40u);
  EXPECT_EQ(report.assessment.strangers.size(), 40u);
  std::set<UserId> covered;
  for (const StrangerAssessment& sa : report.assessment.strangers) {
    covered.insert(sa.stranger);
    int label = static_cast<int>(sa.predicted_label);
    EXPECT_GE(label, kRiskLabelMin);
    EXPECT_LE(label, kRiskLabelMax);
  }
  EXPECT_EQ(covered.size(), 40u);
  EXPECT_EQ(report.assessment.total_queries, oracle.queries());
  EXPECT_GT(report.num_pools, 0u);
  EXPECT_EQ(report.pool_sizes.size(), report.num_pools);
}

TEST(RiskEngineTest, QueriesFewerThanAllStrangersOnSeparablePools) {
  World world;
  RiskEngineConfig config;
  config.learner.confidence = 80.0;
  auto engine = RiskEngine::Create(config).value();
  SimilarityOracle oracle;
  Rng rng(7);
  auto report = engine
                    .AssessOwner(world.graph, world.profiles,
                                 world.visibility, world.owner, &oracle, &rng)
                    .value();
  // The oracle depends only on NS, which is constant within a pool (same
  // mutual structure), so pools converge fast.
  EXPECT_LT(report.assessment.total_queries, 40u);
}

TEST(RiskEngineTest, DeterministicGivenSeed) {
  World world;
  auto engine = RiskEngine::Create(RiskEngineConfig{}).value();
  auto run = [&](uint64_t seed) {
    SimilarityOracle oracle;
    Rng rng(seed);
    return engine
        .AssessOwner(world.graph, world.profiles, world.visibility,
                     world.owner, &oracle, &rng)
        .value();
  };
  auto r1 = run(3);
  auto r2 = run(3);
  ASSERT_EQ(r1.assessment.strangers.size(), r2.assessment.strangers.size());
  for (size_t i = 0; i < r1.assessment.strangers.size(); ++i) {
    EXPECT_EQ(r1.assessment.strangers[i].predicted_label,
              r2.assessment.strangers[i].predicted_label);
  }
  EXPECT_EQ(r1.assessment.total_queries, r2.assessment.total_queries);
}

TEST(RiskEngineTest, BaselineClassifiersRunEndToEnd) {
  World world;
  for (ClassifierKind kind :
       {ClassifierKind::kKnn, ClassifierKind::kMajority}) {
    RiskEngineConfig config;
    config.classifier = kind;
    auto engine = RiskEngine::Create(config).value();
    SimilarityOracle oracle;
    Rng rng(11);
    auto report =
        engine
            .AssessOwner(world.graph, world.profiles, world.visibility,
                         world.owner, &oracle, &rng)
            .value();
    EXPECT_EQ(report.assessment.strangers.size(), 40u);
  }
}

TEST(RiskEngineTest, CmnClassifierRunsEndToEnd) {
  World world;
  RiskEngineConfig config;
  config.classifier = ClassifierKind::kHarmonicCmn;
  auto engine = RiskEngine::Create(config).value();
  SimilarityOracle oracle;
  Rng rng(29);
  auto report = engine
                    .AssessOwner(world.graph, world.profiles,
                                 world.visibility, world.owner, &oracle, &rng)
                    .value();
  EXPECT_EQ(report.assessment.strangers.size(), 40u);
  for (const StrangerAssessment& sa : report.assessment.strangers) {
    int label = static_cast<int>(sa.predicted_label);
    EXPECT_GE(label, kRiskLabelMin);
    EXPECT_LE(label, kRiskLabelMax);
  }
}

TEST(RiskEngineTest, SparsifiedClassifierGraphRunsEndToEnd) {
  World world;
  RiskEngineConfig config;
  config.learner.sparsify_top_k = 3;
  auto engine = RiskEngine::Create(config).value();
  SimilarityOracle oracle;
  Rng rng(31);
  auto report = engine
                    .AssessOwner(world.graph, world.profiles,
                                 world.visibility, world.owner, &oracle, &rng)
                    .value();
  EXPECT_EQ(report.assessment.strangers.size(), 40u);
}

TEST(RiskEngineTest, UncertaintySamplerRunsEndToEnd) {
  World world;
  RiskEngineConfig config;
  config.sampler = SamplerKind::kUncertainty;
  auto engine = RiskEngine::Create(config).value();
  SimilarityOracle oracle;
  Rng rng(13);
  auto report = engine
                    .AssessOwner(world.graph, world.profiles,
                                 world.visibility, world.owner, &oracle, &rng)
                    .value();
  EXPECT_EQ(report.assessment.strangers.size(), 40u);
}

TEST(RiskEngineTest, NetworkOnlyPoolsRunEndToEnd) {
  World world;
  RiskEngineConfig config;
  config.pools.strategy = PoolStrategy::kNetworkOnly;
  auto engine = RiskEngine::Create(config).value();
  SimilarityOracle oracle;
  Rng rng(37);
  auto report = engine
                    .AssessOwner(world.graph, world.profiles,
                                 world.visibility, world.owner, &oracle, &rng)
                    .value();
  EXPECT_EQ(report.assessment.strangers.size(), 40u);
  // NSP pools: one per occupied NSG, hence no more than alpha pools.
  EXPECT_LE(report.num_pools, config.pools.alpha);
}

TEST(RiskEngineTest, AssessStrangersSubset) {
  World world;
  auto engine = RiskEngine::Create(RiskEngineConfig{}).value();
  SimilarityOracle oracle;
  Rng rng(17);
  auto all = TwoHopStrangers(world.graph, world.owner).value();
  std::vector<UserId> subset(all.begin(), all.begin() + 10);
  auto report = engine
                    .AssessStrangers(world.graph, world.profiles,
                                     world.visibility, world.owner, subset,
                                     &oracle, &rng)
                    .value();
  EXPECT_EQ(report.num_strangers, 10u);
  EXPECT_EQ(report.assessment.strangers.size(), 10u);
}

TEST(RiskEngineTest, UnknownOwnerFails) {
  World world;
  auto engine = RiskEngine::Create(RiskEngineConfig{}).value();
  SimilarityOracle oracle;
  Rng rng(19);
  EXPECT_FALSE(engine
                   .AssessOwner(world.graph, world.profiles, world.visibility,
                                9999, &oracle, &rng)
                   .ok());
}

TEST(RiskEngineTest, NullOracleFails) {
  World world;
  auto engine = RiskEngine::Create(RiskEngineConfig{}).value();
  Rng rng(23);
  EXPECT_FALSE(engine
                   .AssessOwner(world.graph, world.profiles, world.visibility,
                                world.owner, nullptr, &rng)
                   .ok());
}

}  // namespace
}  // namespace sight
