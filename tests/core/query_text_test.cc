#include "core/query_text.h"

#include <gtest/gtest.h>

namespace sight {
namespace {

TEST(QueryTextTest, ContainsDisplayedValuesAndName) {
  std::string q = FormatRiskQuestion("Alice", 0.42, 0.17);
  EXPECT_NE(q.find("You and Alice are 42/100 similar"), std::string::npos);
  EXPECT_NE(q.find("provides you 17/100 benefits"), std::string::npos);
  EXPECT_NE(q.find("risky to establish a relationship with Alice"),
            std::string::npos);
}

TEST(QueryTextTest, ClampsOutOfRangeValues) {
  std::string q = FormatRiskQuestion("Bob", -0.5, 1.7);
  EXPECT_NE(q.find("are 0/100 similar"), std::string::npos);
  EXPECT_NE(q.find("100/100 benefits"), std::string::npos);
}

TEST(QueryTextTest, RoundsToNearestPercent) {
  std::string q = FormatRiskQuestion("C", 0.678, 0.001);
  EXPECT_NE(q.find("are 68/100 similar"), std::string::npos);
  EXPECT_NE(q.find("0/100 benefits"), std::string::npos);
}

TEST(QueryTextTest, MatchesPaperPhrasing) {
  // Key phrases of the Section III-A question are preserved verbatim.
  std::string q = FormatRiskQuestion("X", 0.5, 0.5);
  EXPECT_NE(q.find("benefits might increase"), std::string::npos);
  EXPECT_NE(q.find("if privacy settings allow you"), std::string::npos);
}

}  // namespace
}  // namespace sight
