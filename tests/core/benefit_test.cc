#include "core/benefit.h"

#include <gtest/gtest.h>

#include "graph/visibility.h"

namespace sight {
namespace {

TEST(ThetaWeightsTest, UniformIsValid) {
  ThetaWeights theta = ThetaWeights::Uniform();
  EXPECT_TRUE(theta.Validate().ok());
  for (ProfileItem item : kAllProfileItems) {
    EXPECT_DOUBLE_EQ(theta[item], 1.0);
  }
}

TEST(ThetaWeightsTest, PaperTable3MatchesPublishedValues) {
  ThetaWeights theta = ThetaWeights::PaperTable3();
  EXPECT_DOUBLE_EQ(theta[ProfileItem::kHometown], 0.155);
  EXPECT_DOUBLE_EQ(theta[ProfileItem::kFriendList], 0.149);
  EXPECT_DOUBLE_EQ(theta[ProfileItem::kPhoto], 0.147);
  EXPECT_DOUBLE_EQ(theta[ProfileItem::kLocation], 0.143);
  EXPECT_DOUBLE_EQ(theta[ProfileItem::kEducation], 0.1393);
  EXPECT_DOUBLE_EQ(theta[ProfileItem::kWall], 0.1328);
  EXPECT_DOUBLE_EQ(theta[ProfileItem::kWork], 0.1321);
  // The paper's Table III ordering: hometown > friend > photo > location >
  // education > wall > work.
  EXPECT_GT(theta[ProfileItem::kHometown], theta[ProfileItem::kFriendList]);
  EXPECT_GT(theta[ProfileItem::kWall], theta[ProfileItem::kWork]);
}

TEST(ThetaWeightsTest, ValidateRejectsNegative) {
  ThetaWeights theta = ThetaWeights::Uniform();
  theta[ProfileItem::kWall] = -0.1;
  EXPECT_EQ(theta.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(ThetaWeightsTest, ValidateRejectsAllZero) {
  ThetaWeights theta;
  theta.values.fill(0.0);
  EXPECT_EQ(theta.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(BenefitModelTest, AllHiddenScoresZero) {
  VisibilityTable v;
  auto model = BenefitModel::Create(ThetaWeights::Uniform()).value();
  EXPECT_DOUBLE_EQ(model.Compute(v, 0), 0.0);
}

TEST(BenefitModelTest, AllVisibleAveragesTheta) {
  VisibilityTable v;
  v.SetMask(0, 0x7f);
  auto model = BenefitModel::Create(ThetaWeights::Uniform()).value();
  // (1/7) * sum of seven 1.0 thetas = 1.
  EXPECT_DOUBLE_EQ(model.Compute(v, 0), 1.0);
}

TEST(BenefitModelTest, PartialVisibilityWeightsByTheta) {
  VisibilityTable v;
  v.SetVisible(0, ProfileItem::kPhoto);
  v.SetVisible(0, ProfileItem::kWall);
  ThetaWeights theta;
  theta.values.fill(0.0);
  theta[ProfileItem::kPhoto] = 0.7;
  theta[ProfileItem::kWall] = 0.35;
  theta[ProfileItem::kWork] = 0.1;  // hidden -> no contribution
  auto model = BenefitModel::Create(theta).value();
  EXPECT_NEAR(model.Compute(v, 0), (0.7 + 0.35) / 7.0, 1e-12);
}

TEST(BenefitModelTest, MoreVisibilityNeverDecreasesBenefit) {
  VisibilityTable v;
  auto model = BenefitModel::Create(ThetaWeights::PaperTable3()).value();
  double previous = model.Compute(v, 0);
  for (ProfileItem item : kAllProfileItems) {
    v.SetVisible(0, item);
    double current = model.Compute(v, 0);
    EXPECT_GE(current, previous);
    previous = current;
  }
}

TEST(BenefitModelTest, ComputeBatchMatchesSingle) {
  VisibilityTable v;
  v.SetMask(0, 0x01);
  v.SetMask(1, 0x7f);
  auto model = BenefitModel::Create(ThetaWeights::Uniform()).value();
  auto batch = model.ComputeBatch(v, {0, 1, 2});
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_DOUBLE_EQ(batch[0], model.Compute(v, 0));
  EXPECT_DOUBLE_EQ(batch[1], 1.0);
  EXPECT_DOUBLE_EQ(batch[2], 0.0);
}

TEST(BenefitModelTest, CreateRejectsInvalidTheta) {
  ThetaWeights theta;
  theta.values.fill(0.0);
  EXPECT_FALSE(BenefitModel::Create(theta).ok());
}

TEST(BenefitModelTest, NormalizedThetaKeepsBenefitInUnitInterval) {
  // With theta summing to ~1, benefit is within [0, max theta] <= 1.
  VisibilityTable v;
  v.SetMask(0, 0x7f);
  auto model = BenefitModel::Create(ThetaWeights::PaperTable3()).value();
  double b = model.Compute(v, 0);
  EXPECT_GT(b, 0.0);
  EXPECT_LT(b, 1.0);
}

}  // namespace
}  // namespace sight
