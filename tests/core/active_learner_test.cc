#include "core/active_learner.h"

#include <map>

#include <gtest/gtest.h>

#include "learning/harmonic.h"
#include "learning/sampling.h"

namespace sight {
namespace {

// Oracle that answers from a fixed map and records its queries.
class MapOracle : public LabelOracle {
 public:
  explicit MapOracle(std::map<UserId, RiskLabel> labels)
      : labels_(std::move(labels)) {}

  RiskLabel QueryLabel(UserId stranger, double similarity,
                       double benefit) override {
    ++queries_;
    last_similarity_ = similarity;
    last_benefit_ = benefit;
    auto it = labels_.find(stranger);
    return it == labels_.end() ? RiskLabel::kRisky : it->second;
  }

  size_t queries() const { return queries_; }
  double last_similarity() const { return last_similarity_; }
  double last_benefit() const { return last_benefit_; }

 private:
  std::map<UserId, RiskLabel> labels_;
  size_t queries_ = 0;
  double last_similarity_ = -1.0;
  double last_benefit_ = -1.0;
};

// Builds a pool whose members all carry the given ids, with a uniform
// similarity graph.
StrangerPool MakePool(std::vector<UserId> members) {
  StrangerPool pool;
  pool.members = std::move(members);
  return pool;
}

SimilarityMatrix UniformWeights(size_t n, double w = 0.8) {
  SimilarityMatrix m(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) m.Set(i, j, w);
  }
  return m;
}

struct LearnerParts {
  HarmonicFunctionClassifier classifier =
      HarmonicFunctionClassifier::Create(HarmonicConfig{}).value();
  RandomSampler sampler;
  ActiveLearnerConfig config;
};

TEST(ActiveLearnerConfigTest, Validation) {
  ActiveLearnerConfig config;
  config.labels_per_round = 0;
  EXPECT_FALSE(config.Validate().ok());
  config = {};
  config.confidence = 101.0;
  EXPECT_FALSE(config.Validate().ok());
  config = {};
  config.stable_rounds = 0;
  EXPECT_FALSE(config.Validate().ok());
  config = {};
  config.rmse_threshold = 0.0;
  EXPECT_FALSE(config.Validate().ok());
  config = {};
  config.max_rounds = 0;
  EXPECT_FALSE(config.Validate().ok());
  EXPECT_TRUE(ActiveLearnerConfig{}.Validate().ok());
}

TEST(ActiveLearnerConfigTest, StabilizationToleranceMatchesConfidence) {
  ActiveLearnerConfig config;
  config.confidence = 80.0;
  EXPECT_NEAR(config.StabilizationTolerance(), 0.4, 1e-12);
  config.confidence = 100.0;
  EXPECT_DOUBLE_EQ(config.StabilizationTolerance(), 0.0);
  config.confidence = 0.0;
  EXPECT_DOUBLE_EQ(config.StabilizationTolerance(), 2.0);
}

TEST(PoolLearnerTest, CreateValidatesShapes) {
  LearnerParts parts;
  StrangerPool pool = MakePool({10, 11, 12});
  EXPECT_FALSE(PoolLearner::Create(MakePool({}), SimilarityMatrix(0), {}, {},
                                   parts.config, &parts.classifier,
                                   &parts.sampler)
                   .ok());
  EXPECT_FALSE(PoolLearner::Create(pool, SimilarityMatrix(2), {0, 0, 0},
                                   {0, 0, 0}, parts.config, &parts.classifier,
                                   &parts.sampler)
                   .ok());
  EXPECT_FALSE(PoolLearner::Create(pool, SimilarityMatrix(3), {0, 0},
                                   {0, 0, 0}, parts.config, &parts.classifier,
                                   &parts.sampler)
                   .ok());
  EXPECT_FALSE(PoolLearner::Create(pool, SimilarityMatrix(3), {0, 0, 0},
                                   {0, 0, 0}, parts.config, nullptr,
                                   &parts.sampler)
                   .ok());
  EXPECT_TRUE(PoolLearner::Create(pool, SimilarityMatrix(3), {0, 0, 0},
                                  {0, 0, 0}, parts.config, &parts.classifier,
                                  &parts.sampler)
                  .ok());
}

TEST(PoolLearnerTest, TinyPoolExhaustsInOneRound) {
  LearnerParts parts;
  parts.config.labels_per_round = 3;
  StrangerPool pool = MakePool({10, 11});
  auto learner =
      PoolLearner::Create(pool, UniformWeights(2), {0.1, 0.2}, {0.3, 0.4},
                          parts.config, &parts.classifier, &parts.sampler)
          .value();
  MapOracle oracle({{10, RiskLabel::kNotRisky}, {11, RiskLabel::kVeryRisky}});
  Rng rng(1);
  auto records = learner.RunToCompletion(&oracle, &rng).value();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_TRUE(learner.finished());
  EXPECT_EQ(learner.outcome(), PoolOutcome::kExhausted);
  EXPECT_EQ(oracle.queries(), 2u);
  // Predictions equal the owner labels after exhaustion.
  EXPECT_EQ(static_cast<int>(learner.PredictedLabel(0)), 1);
  EXPECT_EQ(static_cast<int>(learner.PredictedLabel(1)), 3);
  EXPECT_TRUE(learner.IsOwnerLabeled(0));
  EXPECT_TRUE(learner.IsOwnerLabeled(1));
}

TEST(PoolLearnerTest, RunAfterFinishedIsError) {
  LearnerParts parts;
  StrangerPool pool = MakePool({10});
  auto learner =
      PoolLearner::Create(pool, UniformWeights(1), {0.0}, {0.0},
                          parts.config, &parts.classifier, &parts.sampler)
          .value();
  MapOracle oracle({});
  Rng rng(2);
  ASSERT_TRUE(learner.RunToCompletion(&oracle, &rng).ok());
  EXPECT_EQ(learner.RunRound(&oracle, &rng).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(PoolLearnerTest, HomogeneousPoolConvergesQuickly) {
  // Every member is labeled "risky": after two rounds predictions cannot
  // move, and RMSE is 0, so the learner converges without labeling all 30.
  LearnerParts parts;
  parts.config.labels_per_round = 3;
  parts.config.stable_rounds = 2;
  std::vector<UserId> members;
  std::map<UserId, RiskLabel> labels;
  for (UserId u = 0; u < 30; ++u) {
    members.push_back(u);
    labels[u] = RiskLabel::kRisky;
  }
  auto learner = PoolLearner::Create(
                     MakePool(members), UniformWeights(30),
                     std::vector<double>(30, 0.1),
                     std::vector<double>(30, 0.2), parts.config,
                     &parts.classifier, &parts.sampler)
                     .value();
  MapOracle oracle(labels);
  Rng rng(3);
  auto records = learner.RunToCompletion(&oracle, &rng).value();
  EXPECT_EQ(learner.outcome(), PoolOutcome::kConverged);
  EXPECT_LT(oracle.queries(), 30u);
  EXPECT_GE(records.size(), 3u);  // needs 2 stable rounds after the first
  // All predictions are "risky".
  for (size_t i = 0; i < 30; ++i) {
    EXPECT_EQ(learner.PredictedLabel(i), RiskLabel::kRisky);
  }
  // Validation matched everything it checked.
  EXPECT_EQ(learner.validation_matches(), learner.validation_total());
  EXPECT_GT(learner.validation_total(), 0u);
}

TEST(PoolLearnerTest, ConfidenceHundredLabelsEverything) {
  // c=100 -> tolerance 0 -> never stabilizes -> the owner labels the whole
  // pool (the paper's "manually label all strangers" mode).
  LearnerParts parts;
  parts.config.confidence = 100.0;
  parts.config.labels_per_round = 2;
  std::vector<UserId> members;
  std::map<UserId, RiskLabel> labels;
  for (UserId u = 0; u < 9; ++u) {
    members.push_back(u);
    labels[u] = RiskLabel::kRisky;
  }
  auto learner = PoolLearner::Create(
                     MakePool(members), UniformWeights(9),
                     std::vector<double>(9, 0.0), std::vector<double>(9, 0.0),
                     parts.config, &parts.classifier, &parts.sampler)
                     .value();
  MapOracle oracle(labels);
  Rng rng(4);
  ASSERT_TRUE(learner.RunToCompletion(&oracle, &rng).ok());
  EXPECT_EQ(learner.outcome(), PoolOutcome::kExhausted);
  EXPECT_EQ(oracle.queries(), 9u);
}

TEST(PoolLearnerTest, OracleSeesDisplayValues) {
  LearnerParts parts;
  StrangerPool pool = MakePool({42});
  auto learner =
      PoolLearner::Create(pool, UniformWeights(1), {0.37}, {0.73},
                          parts.config, &parts.classifier, &parts.sampler)
          .value();
  MapOracle oracle({});
  Rng rng(5);
  ASSERT_TRUE(learner.RunToCompletion(&oracle, &rng).ok());
  EXPECT_DOUBLE_EQ(oracle.last_similarity(), 0.37);
  EXPECT_DOUBLE_EQ(oracle.last_benefit(), 0.73);
}

TEST(PoolLearnerTest, MaxRoundsBoundsNonConvergingPool) {
  // Alternating labels on a disconnected graph never produce a stable,
  // accurate model; with a tiny max_rounds we hit the round limit.
  LearnerParts parts;
  parts.config.max_rounds = 2;
  parts.config.labels_per_round = 1;
  parts.config.rmse_threshold = 0.01;
  std::vector<UserId> members;
  std::map<UserId, RiskLabel> labels;
  for (UserId u = 0; u < 40; ++u) {
    members.push_back(u);
    labels[u] = u % 2 == 0 ? RiskLabel::kNotRisky : RiskLabel::kVeryRisky;
  }
  auto learner = PoolLearner::Create(
                     MakePool(members), SimilarityMatrix(40),
                     std::vector<double>(40, 0.0),
                     std::vector<double>(40, 0.0), parts.config,
                     &parts.classifier, &parts.sampler)
                     .value();
  MapOracle oracle(labels);
  Rng rng(6);
  auto records = learner.RunToCompletion(&oracle, &rng).value();
  EXPECT_EQ(records.size(), 2u);
  EXPECT_EQ(learner.outcome(), PoolOutcome::kRoundLimit);
}

TEST(PoolLearnerTest, FirstRoundHasNoRmse) {
  LearnerParts parts;
  std::vector<UserId> members = {0, 1, 2, 3, 4, 5};
  auto learner = PoolLearner::Create(
                     MakePool(members), UniformWeights(6),
                     std::vector<double>(6, 0.0), std::vector<double>(6, 0.0),
                     parts.config, &parts.classifier, &parts.sampler)
                     .value();
  MapOracle oracle({});
  Rng rng(7);
  auto record = learner.RunRound(&oracle, &rng).value();
  EXPECT_EQ(record.round, 1u);
  EXPECT_FALSE(record.rmse_valid);
  auto record2 = learner.RunRound(&oracle, &rng).value();
  EXPECT_TRUE(record2.rmse_valid);
}

TEST(PoolLearnerTest, SparsifiedGraphStillLearns) {
  LearnerParts parts;
  parts.config.sparsify_top_k = 2;
  std::vector<UserId> members;
  std::map<UserId, RiskLabel> labels;
  for (UserId u = 0; u < 20; ++u) {
    members.push_back(u);
    labels[u] = RiskLabel::kRisky;
  }
  auto learner = PoolLearner::Create(
                     MakePool(members), UniformWeights(20),
                     std::vector<double>(20, 0.1),
                     std::vector<double>(20, 0.1), parts.config,
                     &parts.classifier, &parts.sampler)
                     .value();
  MapOracle oracle(labels);
  Rng rng(21);
  ASSERT_TRUE(learner.RunToCompletion(&oracle, &rng).ok());
  for (size_t i = 0; i < 20; ++i) {
    EXPECT_EQ(learner.PredictedLabel(i), RiskLabel::kRisky);
  }
}

TEST(PoolLearnerTest, SeededLabelsAreNeverReQueried) {
  LearnerParts parts;
  PoolLearner::KnownLabels known;
  known[10] = 3.0;
  known[12] = 1.0;
  StrangerPool pool = MakePool({10, 11, 12, 13});
  auto learner =
      PoolLearner::Create(pool, UniformWeights(4),
                          std::vector<double>(4, 0.0),
                          std::vector<double>(4, 0.0), parts.config,
                          &parts.classifier, &parts.sampler, &known)
          .value();
  EXPECT_TRUE(learner.IsOwnerLabeled(0));
  EXPECT_FALSE(learner.IsOwnerLabeled(1));
  EXPECT_TRUE(learner.IsOwnerLabeled(2));
  EXPECT_EQ(learner.num_queries(), 0u);  // seeds do not count

  MapOracle oracle({{11, RiskLabel::kRisky}, {13, RiskLabel::kRisky}});
  Rng rng(23);
  ASSERT_TRUE(learner.RunToCompletion(&oracle, &rng).ok());
  EXPECT_EQ(oracle.queries(), 2u);  // only 11 and 13
  EXPECT_EQ(learner.num_queries(), 2u);
  // Seeded labels stay exact.
  EXPECT_EQ(learner.PredictedLabel(0), RiskLabel::kVeryRisky);
  EXPECT_EQ(learner.PredictedLabel(2), RiskLabel::kNotRisky);
}

TEST(PoolLearnerTest, FullySeededPoolFinishesWithoutQueries) {
  LearnerParts parts;
  PoolLearner::KnownLabels known;
  known[10] = 2.0;
  known[11] = 2.0;
  StrangerPool pool = MakePool({10, 11});
  auto learner =
      PoolLearner::Create(pool, UniformWeights(2),
                          std::vector<double>(2, 0.0),
                          std::vector<double>(2, 0.0), parts.config,
                          &parts.classifier, &parts.sampler, &known)
          .value();
  MapOracle oracle({});
  Rng rng(27);
  auto records = learner.RunToCompletion(&oracle, &rng).value();
  EXPECT_EQ(learner.outcome(), PoolOutcome::kExhausted);
  EXPECT_EQ(oracle.queries(), 0u);
  EXPECT_EQ(learner.num_queries(), 0u);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].newly_labeled, 0u);
}

TEST(PoolLearnerTest, SeedOutsideLabelRangeRejected) {
  LearnerParts parts;
  PoolLearner::KnownLabels known;
  known[10] = 5.0;
  StrangerPool pool = MakePool({10});
  EXPECT_FALSE(PoolLearner::Create(pool, UniformWeights(1), {0.0}, {0.0},
                                   parts.config, &parts.classifier,
                                   &parts.sampler, &known)
                   .ok());
}

TEST(ActiveLearnerTest, CreateValidatesBenefitsShape) {
  PoolSet pools;
  pools.strangers = {1, 2};
  pools.network_similarities = {0.1, 0.2};
  ProfileTable profiles(ProfileSchema::Create({"a"}).value());
  LearnerParts parts;
  EXPECT_FALSE(ActiveLearner::Create(pools, profiles, {0.5}, parts.config,
                                     &parts.classifier, &parts.sampler)
                   .ok());
}

TEST(ActiveLearnerTest, RunsAllPoolsAndAggregates) {
  // Two pools of three; all labels "not risky".
  ProfileSchema schema = ProfileSchema::Create({"gender"}).value();
  ProfileTable profiles(schema);
  for (UserId u = 0; u < 6; ++u) {
    Profile p;
    p.values = {"male"};
    ASSERT_TRUE(profiles.Set(u, p).ok());
  }
  PoolSet pools;
  pools.strangers = {0, 1, 2, 3, 4, 5};
  pools.network_similarities = {0.1, 0.1, 0.1, 0.5, 0.5, 0.5};
  StrangerPool a = MakePool({0, 1, 2});
  a.nsg_index = 1;
  StrangerPool b = MakePool({3, 4, 5});
  b.nsg_index = 5;
  pools.pools = {a, b};

  LearnerParts parts;
  auto learner =
      ActiveLearner::Create(pools, profiles,
                            std::vector<double>(6, 0.25), parts.config,
                            &parts.classifier, &parts.sampler)
          .value();
  std::map<UserId, RiskLabel> labels;
  for (UserId u = 0; u < 6; ++u) labels[u] = RiskLabel::kNotRisky;
  MapOracle oracle(labels);
  Rng rng(8);
  auto result = learner.Run(&oracle, &rng).value();

  EXPECT_EQ(result.pools_total, 2u);
  EXPECT_EQ(result.strangers.size(), 6u);
  EXPECT_EQ(result.total_queries, oracle.queries());
  EXPECT_GT(result.total_queries, 0u);
  for (const StrangerAssessment& sa : result.strangers) {
    EXPECT_EQ(sa.predicted_label, RiskLabel::kNotRisky);
    EXPECT_DOUBLE_EQ(sa.benefit, 0.25);
  }
  // NS carried through from the pool set.
  for (const StrangerAssessment& sa : result.strangers) {
    if (sa.stranger <= 2) {
      EXPECT_DOUBLE_EQ(sa.network_similarity, 0.1);
    } else {
      EXPECT_DOUBLE_EQ(sa.network_similarity, 0.5);
    }
  }
  EXPECT_EQ(result.pools_converged + result.pools_exhausted +
                result.pools_round_limit,
            2u);
  EXPECT_GT(result.mean_rounds, 0.0);
}

TEST(ActiveLearnerTest, RoundRecordsCarryPoolIndices) {
  ProfileSchema schema = ProfileSchema::Create({"g"}).value();
  ProfileTable profiles(schema);
  for (UserId u = 0; u < 4; ++u) {
    Profile p;
    p.values = {"x"};
    ASSERT_TRUE(profiles.Set(u, p).ok());
  }
  PoolSet pools;
  pools.strangers = {0, 1, 2, 3};
  pools.network_similarities = {0.1, 0.1, 0.1, 0.1};
  pools.pools = {MakePool({0, 1}), MakePool({2, 3})};
  LearnerParts parts;
  auto learner = ActiveLearner::Create(pools, profiles,
                                       std::vector<double>(4, 0.0),
                                       parts.config, &parts.classifier,
                                       &parts.sampler)
                     .value();
  MapOracle oracle({});
  Rng rng(9);
  auto result = learner.Run(&oracle, &rng).value();
  std::set<size_t> pool_indices;
  for (const RoundRecord& r : result.rounds) pool_indices.insert(r.pool_index);
  EXPECT_EQ(pool_indices, (std::set<size_t>{0, 1}));
}

}  // namespace
}  // namespace sight
