#include "core/label_policy.h"

#include <gtest/gtest.h>

namespace sight {
namespace {

TEST(LabelAccessPolicyTest, EmptyPolicyDeniesEverything) {
  LabelAccessPolicy policy;
  for (RiskLabel label : {RiskLabel::kNotRisky, RiskLabel::kRisky,
                          RiskLabel::kVeryRisky}) {
    for (ProfileItem item : kAllProfileItems) {
      EXPECT_FALSE(policy.IsAllowed(label, item));
    }
    EXPECT_EQ(policy.AllowedMask(label), 0);
  }
}

TEST(LabelAccessPolicyTest, DefaultPolicyShape) {
  LabelAccessPolicy policy = LabelAccessPolicy::Default();
  for (ProfileItem item : kAllProfileItems) {
    EXPECT_TRUE(policy.IsAllowed(RiskLabel::kNotRisky, item));
    EXPECT_FALSE(policy.IsAllowed(RiskLabel::kVeryRisky, item));
  }
  EXPECT_TRUE(policy.IsAllowed(RiskLabel::kRisky, ProfileItem::kPhoto));
  EXPECT_FALSE(policy.IsAllowed(RiskLabel::kRisky, ProfileItem::kWall));
  EXPECT_FALSE(policy.IsAllowed(RiskLabel::kRisky, ProfileItem::kWork));
}

TEST(LabelAccessPolicyTest, AllowAndRevoke) {
  LabelAccessPolicy policy;
  policy.Allow(RiskLabel::kRisky, ProfileItem::kWall);
  EXPECT_TRUE(policy.IsAllowed(RiskLabel::kRisky, ProfileItem::kWall));
  policy.Allow(RiskLabel::kRisky, ProfileItem::kWall, false);
  EXPECT_FALSE(policy.IsAllowed(RiskLabel::kRisky, ProfileItem::kWall));
}

TEST(LabelAccessPolicyTest, DefaultIsMonotone) {
  EXPECT_TRUE(LabelAccessPolicy::Default().IsMonotone());
  EXPECT_TRUE(LabelAccessPolicy().IsMonotone());  // all-empty
}

TEST(LabelAccessPolicyTest, NonMonotoneDetected) {
  LabelAccessPolicy policy;
  policy.Allow(RiskLabel::kVeryRisky, ProfileItem::kWall);
  // Very risky sees wall but risky does not.
  EXPECT_FALSE(policy.IsMonotone());
  policy.Allow(RiskLabel::kRisky, ProfileItem::kWall);
  policy.Allow(RiskLabel::kNotRisky, ProfileItem::kWall);
  EXPECT_TRUE(policy.IsMonotone());
}

AssessmentResult SampleAssessment() {
  AssessmentResult assessment;
  auto add = [&](UserId u, RiskLabel label) {
    StrangerAssessment sa;
    sa.stranger = u;
    sa.predicted_label = label;
    assessment.strangers.push_back(sa);
  };
  add(10, RiskLabel::kNotRisky);
  add(11, RiskLabel::kRisky);
  add(12, RiskLabel::kVeryRisky);
  add(13, RiskLabel::kRisky);
  return assessment;
}

TEST(ApplyAccessPolicyTest, MapsLabelsToMasks) {
  AssessmentResult assessment = SampleAssessment();
  LabelAccessPolicy policy = LabelAccessPolicy::Default();
  auto access = ApplyAccessPolicy(assessment, policy);
  ASSERT_EQ(access.size(), 4u);
  EXPECT_EQ(access[0].allowed_mask, 0x7f);
  EXPECT_EQ(access[2].allowed_mask, 0);
  EXPECT_EQ(access[1].allowed_mask,
            policy.AllowedMask(RiskLabel::kRisky));
  EXPECT_EQ(access[1].stranger, 11u);
}

TEST(SuggestPrivacySettingsTest, RecommendsHidingWhenAudienceRisky) {
  AssessmentResult assessment = SampleAssessment();  // 3/4 risky+
  VisibilityTable visibility;
  visibility.SetVisible(0, ProfileItem::kWall);
  visibility.SetVisible(0, ProfileItem::kPhoto);
  auto suggestions =
      SuggestPrivacySettings(assessment, visibility, 0, 0.5).value();
  ASSERT_EQ(suggestions.size(), kNumProfileItems);
  for (const PrivacySuggestion& s : suggestions) {
    EXPECT_DOUBLE_EQ(s.risky_fraction, 0.75);
    bool visible = s.item == ProfileItem::kWall ||
                   s.item == ProfileItem::kPhoto;
    EXPECT_EQ(s.currently_visible, visible);
    EXPECT_EQ(s.recommend_hide, visible);  // 0.75 >= 0.5
  }
}

TEST(SuggestPrivacySettingsTest, NoRecommendationWhenAudienceSafe) {
  AssessmentResult assessment;
  StrangerAssessment sa;
  sa.stranger = 1;
  sa.predicted_label = RiskLabel::kNotRisky;
  assessment.strangers.push_back(sa);
  VisibilityTable visibility;
  visibility.SetMask(0, 0x7f);
  auto suggestions =
      SuggestPrivacySettings(assessment, visibility, 0, 0.25).value();
  for (const PrivacySuggestion& s : suggestions) {
    EXPECT_FALSE(s.recommend_hide);
    EXPECT_DOUBLE_EQ(s.risky_fraction, 0.0);
  }
}

TEST(SuggestPrivacySettingsTest, ValidatesInput) {
  AssessmentResult empty;
  VisibilityTable visibility;
  EXPECT_FALSE(SuggestPrivacySettings(empty, visibility, 0).ok());
  AssessmentResult assessment = SampleAssessment();
  EXPECT_FALSE(
      SuggestPrivacySettings(assessment, visibility, 0, 1.5).ok());
}

}  // namespace
}  // namespace sight
