#include "core/privacy_score.h"

#include <gtest/gtest.h>

namespace sight {
namespace {

// Population of 4: everyone shows photos, nobody shows work, half show
// wall.
VisibilityTable SamplePopulation() {
  VisibilityTable v;
  for (UserId u = 0; u < 4; ++u) v.SetVisible(u, ProfileItem::kPhoto);
  v.SetVisible(0, ProfileItem::kWall);
  v.SetVisible(1, ProfileItem::kWall);
  return v;
}

TEST(PrivacyScoreTest, FitRejectsEmptyPopulation) {
  VisibilityTable v;
  EXPECT_FALSE(FitPrivacyScoreModel(v, {}).ok());
}

TEST(PrivacyScoreTest, SensitivityIsHiddenFraction) {
  VisibilityTable v = SamplePopulation();
  auto model = FitPrivacyScoreModel(v, {0, 1, 2, 3}).value();
  EXPECT_DOUBLE_EQ(
      model.sensitivity[static_cast<size_t>(ProfileItem::kPhoto)], 0.0);
  EXPECT_DOUBLE_EQ(
      model.sensitivity[static_cast<size_t>(ProfileItem::kWork)], 1.0);
  EXPECT_DOUBLE_EQ(
      model.sensitivity[static_cast<size_t>(ProfileItem::kWall)], 0.5);
  EXPECT_EQ(model.population, 4u);
}

TEST(PrivacyScoreTest, ScoreSumsVisibleSensitivities) {
  VisibilityTable v = SamplePopulation();
  auto model = FitPrivacyScoreModel(v, {0, 1, 2, 3}).value();
  // User 0 shows photo (0.0) and wall (0.5).
  EXPECT_DOUBLE_EQ(model.Score(v, 0), 0.5);
  // User 2 shows only photo.
  EXPECT_DOUBLE_EQ(model.Score(v, 2), 0.0);
  // A user revealing a never-revealed item is maximally penalized for it.
  v.SetVisible(2, ProfileItem::kWork);
  EXPECT_DOUBLE_EQ(model.Score(v, 2), 1.0);
}

TEST(PrivacyScoreTest, RevealingMoreNeverLowersTheScore) {
  VisibilityTable v = SamplePopulation();
  auto model = FitPrivacyScoreModel(v, {0, 1, 2, 3}).value();
  double previous = model.Score(v, 3);
  for (ProfileItem item : kAllProfileItems) {
    v.SetVisible(3, item);
    double current = model.Score(v, 3);
    EXPECT_GE(current, previous);
    previous = current;
  }
  EXPECT_DOUBLE_EQ(previous, model.MaxScore());
}

TEST(PrivacyScoreTest, BatchMatchesSingle) {
  VisibilityTable v = SamplePopulation();
  auto model = FitPrivacyScoreModel(v, {0, 1, 2, 3}).value();
  auto scores = ComputePrivacyScores(model, v, {0, 1, 2, 3});
  ASSERT_EQ(scores.size(), 4u);
  for (UserId u = 0; u < 4; ++u) {
    EXPECT_DOUBLE_EQ(scores[u], model.Score(v, u));
  }
}

TEST(PrivacyScoreTest, HiddenUserScoresZero) {
  VisibilityTable v = SamplePopulation();
  auto model = FitPrivacyScoreModel(v, {0, 1, 2, 3}).value();
  EXPECT_DOUBLE_EQ(model.Score(v, 99), 0.0);  // unconfigured user
}

}  // namespace
}  // namespace sight
