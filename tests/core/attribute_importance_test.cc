#include "core/attribute_importance.h"

#include <gtest/gtest.h>

#include "graph/profile.h"
#include "graph/visibility.h"

namespace sight {
namespace {

ProfileSchema TestSchema() {
  return ProfileSchema::Create({"gender", "locale", "last_name"}).value();
}

// 20 strangers: label tracks gender perfectly, locale is half-informative,
// last_name is pure noise.
struct Fixture {
  ProfileTable profiles{TestSchema()};
  std::vector<UserId> strangers;
  std::vector<RiskLabel> labels;

  Fixture() {
    for (UserId u = 0; u < 20; ++u) {
      bool male = u % 2 == 0;
      Profile p;
      p.values = {male ? "male" : "female",
                  u % 4 < 2 ? "tr_TR" : "en_US",
                  "name" + std::to_string(u % 9)};
      EXPECT_TRUE(profiles.Set(u, p).ok());
      strangers.push_back(u);
      labels.push_back(male ? RiskLabel::kVeryRisky : RiskLabel::kNotRisky);
    }
  }
};

TEST(ProfileAttributeImportanceTest, GenderDominatesWhenLabelsFollowGender) {
  Fixture fx;
  auto importances =
      ProfileAttributeImportance(fx.profiles, fx.strangers, fx.labels)
          .value();
  ASSERT_EQ(importances.size(), 3u);
  EXPECT_EQ(importances[0].name, "gender");
  EXPECT_GT(importances[0].importance, importances[1].importance);
  EXPECT_GT(importances[0].importance, importances[2].importance);
  EXPECT_GT(importances[0].importance, 0.8);
}

TEST(ProfileAttributeImportanceTest, ImportancesSumToOne) {
  Fixture fx;
  auto importances =
      ProfileAttributeImportance(fx.profiles, fx.strangers, fx.labels)
          .value();
  double sum = 0.0;
  for (const auto& ai : importances) sum += ai.importance;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(ProfileAttributeImportanceTest, AllZeroGainsDegradeToUniform) {
  // Labels constant: nothing is informative.
  Fixture fx;
  std::vector<RiskLabel> constant(fx.labels.size(), RiskLabel::kRisky);
  auto importances =
      ProfileAttributeImportance(fx.profiles, fx.strangers, constant).value();
  for (const auto& ai : importances) {
    EXPECT_NEAR(ai.importance, 1.0 / 3.0, 1e-12);
    EXPECT_DOUBLE_EQ(ai.gain_ratio, 0.0);
  }
}

TEST(ProfileAttributeImportanceTest, RejectsBadInput) {
  Fixture fx;
  EXPECT_FALSE(
      ProfileAttributeImportance(fx.profiles, fx.strangers, {}).ok());
  EXPECT_FALSE(ProfileAttributeImportance(fx.profiles, {}, {}).ok());
}

TEST(BenefitItemImportanceTest, VisibilityBitPredictingLabelsDominates) {
  // Photo visibility tracks the label; other items are constant.
  VisibilityTable visibility;
  std::vector<UserId> strangers;
  std::vector<RiskLabel> labels;
  for (UserId u = 0; u < 20; ++u) {
    bool photo_visible = u % 2 == 0;
    visibility.SetVisible(u, ProfileItem::kPhoto, photo_visible);
    visibility.SetVisible(u, ProfileItem::kWall, true);
    strangers.push_back(u);
    labels.push_back(photo_visible ? RiskLabel::kNotRisky
                                   : RiskLabel::kVeryRisky);
  }
  auto importances =
      BenefitItemImportance(visibility, strangers, labels).value();
  ASSERT_EQ(importances.size(), kNumProfileItems);
  // Item order matches kAllProfileItems: photo is index 1.
  EXPECT_EQ(importances[1].name, "photo");
  EXPECT_GT(importances[1].importance, 0.9);
}

TEST(BenefitItemImportanceTest, OrderMatchesAllProfileItems) {
  VisibilityTable visibility;
  std::vector<UserId> strangers = {0};
  std::vector<RiskLabel> labels = {RiskLabel::kRisky};
  auto importances =
      BenefitItemImportance(visibility, strangers, labels).value();
  ASSERT_EQ(importances.size(), kNumProfileItems);
  for (size_t i = 0; i < kNumProfileItems; ++i) {
    EXPECT_EQ(importances[i].name, ProfileItemName(kAllProfileItems[i]));
  }
}

TEST(ImportanceRanksTest, RanksDescendByImportance) {
  std::vector<AttributeImportance> importances(3);
  importances[0].name = "a";
  importances[0].importance = 0.2;
  importances[1].name = "b";
  importances[1].importance = 0.5;
  importances[2].name = "c";
  importances[2].importance = 0.3;
  auto ranks = ImportanceRanks(importances);
  EXPECT_EQ(ranks[0], 2u);  // a is least important
  EXPECT_EQ(ranks[1], 0u);  // b is most important
  EXPECT_EQ(ranks[2], 1u);
}

TEST(ImportanceRanksTest, TiesKeepInputOrder) {
  std::vector<AttributeImportance> importances(2);
  importances[0].importance = 0.5;
  importances[1].importance = 0.5;
  auto ranks = ImportanceRanks(importances);
  EXPECT_EQ(ranks[0], 0u);
  EXPECT_EQ(ranks[1], 1u);
}

}  // namespace
}  // namespace sight
