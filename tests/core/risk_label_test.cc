#include "core/risk_label.h"

#include <gtest/gtest.h>

namespace sight {
namespace {

TEST(RiskLabelTest, NumericValues) {
  EXPECT_DOUBLE_EQ(RiskLabelValue(RiskLabel::kNotRisky), 1.0);
  EXPECT_DOUBLE_EQ(RiskLabelValue(RiskLabel::kRisky), 2.0);
  EXPECT_DOUBLE_EQ(RiskLabelValue(RiskLabel::kVeryRisky), 3.0);
}

TEST(RiskLabelTest, FromIntRoundTrips) {
  for (int v = kRiskLabelMin; v <= kRiskLabelMax; ++v) {
    auto label = RiskLabelFromInt(v);
    ASSERT_TRUE(label.ok());
    EXPECT_EQ(static_cast<int>(label.value()), v);
  }
}

TEST(RiskLabelTest, FromIntRejectsOutOfRange) {
  EXPECT_EQ(RiskLabelFromInt(0).status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(RiskLabelFromInt(4).status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(RiskLabelFromInt(-1).status().code(), StatusCode::kOutOfRange);
}

TEST(RiskLabelTest, Names) {
  EXPECT_STREQ(RiskLabelName(RiskLabel::kNotRisky), "not risky");
  EXPECT_STREQ(RiskLabelName(RiskLabel::kRisky), "risky");
  EXPECT_STREQ(RiskLabelName(RiskLabel::kVeryRisky), "very risky");
}

TEST(RiskLabelTest, RangeConstantsMatchPaper) {
  // Section III-A: three options, 1..3; RMSE can span [0, 2].
  EXPECT_EQ(kRiskLabelMin, 1);
  EXPECT_EQ(kRiskLabelMax, 3);
}

}  // namespace
}  // namespace sight
