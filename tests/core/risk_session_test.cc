#include "core/risk_session.h"

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "graph/algorithms.h"
#include "sim/facebook_generator.h"
#include "sim/owner_model.h"

namespace sight {
namespace {

sim::OwnerDataset MakeDataset(uint64_t seed, size_t strangers = 200) {
  sim::GeneratorConfig config;
  config.num_friends = 40;
  config.num_strangers = strangers;
  config.num_communities = 4;
  auto gen = sim::FacebookGenerator::Create(config).value();
  Rng rng(seed);
  return gen.Generate({sim::Gender::kMale, sim::Locale::kTR}, &rng).value();
}

// Counts every query and forbids repeats.
class StrictOracle : public LabelOracle {
 public:
  explicit StrictOracle(sim::OwnerModel* model) : model_(model) {}

  RiskLabel QueryLabel(UserId stranger, double similarity,
                       double benefit) override {
    EXPECT_TRUE(asked_.insert(stranger).second)
        << "stranger " << stranger << " was asked twice";
    ++queries_;
    return model_->QueryLabel(stranger, similarity, benefit);
  }

  size_t queries() const { return queries_; }
  const std::set<UserId>& asked() const { return asked_; }

 private:
  sim::OwnerModel* model_;
  std::set<UserId> asked_;
  size_t queries_ = 0;
};

RiskEngineConfig SessionConfig() {
  RiskEngineConfig config;
  config.pools.attribute_weights = sim::PaperAttributeWeights();
  return config;
}

TEST(RiskSessionTest, CreateValidates) {
  sim::OwnerDataset ds = MakeDataset(1);
  EXPECT_FALSE(RiskSession::Create(SessionConfig(), nullptr, &ds.profiles,
                                   &ds.visibility, ds.owner)
                   .ok());
  EXPECT_FALSE(RiskSession::Create(SessionConfig(), &ds.graph, &ds.profiles,
                                   &ds.visibility, 999999)
                   .ok());
  EXPECT_TRUE(RiskSession::Create(SessionConfig(), &ds.graph, &ds.profiles,
                                  &ds.visibility, ds.owner)
                  .ok());
}

TEST(RiskSessionTest, AddStrangersValidatesAndDeduplicates) {
  sim::OwnerDataset ds = MakeDataset(2);
  auto session = RiskSession::Create(SessionConfig(), &ds.graph,
                                     &ds.profiles, &ds.visibility, ds.owner)
                     .value();
  EXPECT_FALSE(session.AddStrangers({ds.owner}).ok());
  EXPECT_FALSE(session.AddStrangers({9999999}).ok());
  ASSERT_TRUE(session.AddStrangers({ds.strangers[0], ds.strangers[1]}).ok());
  ASSERT_TRUE(session.AddStrangers({ds.strangers[1], ds.strangers[2]}).ok());
  EXPECT_EQ(session.num_strangers(), 3u);
}

TEST(RiskSessionTest, NeverAsksAboutTheSameStrangerTwice) {
  sim::OwnerDataset ds = MakeDataset(3);
  Rng attitude_rng(7);
  sim::OwnerAttitude attitude = sim::SampleOwnerAttitude(&attitude_rng);
  auto model =
      sim::OwnerModel::Create(attitude, &ds.profiles, &ds.visibility)
          .value();
  StrictOracle oracle(&model);

  auto session = RiskSession::Create(SessionConfig(), &ds.graph,
                                     &ds.profiles, &ds.visibility, ds.owner)
                     .value();
  Rng rng(11);
  // Three discovery waves; StrictOracle fails the test on any repeat.
  size_t third = ds.strangers.size() / 3;
  for (size_t wave = 0; wave < 3; ++wave) {
    size_t begin = wave * third;
    size_t end = wave == 2 ? ds.strangers.size() : (wave + 1) * third;
    ASSERT_TRUE(session
                    .AddStrangers(std::vector<UserId>(
                        ds.strangers.begin() + begin,
                        ds.strangers.begin() + end))
                    .ok());
    auto report = session.Assess(&oracle, &rng);
    ASSERT_TRUE(report.ok());
    EXPECT_EQ(report->assessment.strangers.size(), end);
  }
  EXPECT_EQ(session.num_known_labels(), oracle.queries());
}

TEST(RiskSessionTest, KnownLabelsPersistAcrossAssessments) {
  sim::OwnerDataset ds = MakeDataset(4);
  Rng attitude_rng(13);
  sim::OwnerAttitude attitude = sim::SampleOwnerAttitude(&attitude_rng);
  auto model =
      sim::OwnerModel::Create(attitude, &ds.profiles, &ds.visibility)
          .value();
  StrictOracle oracle(&model);

  auto session = RiskSession::Create(SessionConfig(), &ds.graph,
                                     &ds.profiles, &ds.visibility, ds.owner)
                     .value();
  ASSERT_TRUE(session.DiscoverAllStrangers().ok());
  Rng rng(17);
  auto first = session.Assess(&oracle, &rng).value();
  size_t after_first = oracle.queries();
  EXPECT_EQ(first.assessment.total_queries, after_first);
  EXPECT_EQ(session.num_known_labels(), after_first);

  // Re-assessing with no new strangers is strictly cheaper than the first
  // run: labels carry over, and only the stopping rule's re-validation
  // rounds (Definition 4/5 need fresh labels per rebuilt pool) cost
  // queries — never a repeated stranger (StrictOracle enforces that).
  auto second = session.Assess(&oracle, &rng).value();
  size_t second_queries = oracle.queries() - after_first;
  EXPECT_EQ(second.assessment.total_queries, second_queries);
  EXPECT_LT(second_queries, after_first);
  EXPECT_EQ(second.assessment.strangers.size(), ds.strangers.size());
}

TEST(RiskSessionTest, CarriedLabelsAreReflectedInAssessments) {
  sim::OwnerDataset ds = MakeDataset(5, 120);
  Rng attitude_rng(19);
  sim::OwnerAttitude attitude = sim::SampleOwnerAttitude(&attitude_rng);
  auto model =
      sim::OwnerModel::Create(attitude, &ds.profiles, &ds.visibility)
          .value();
  StrictOracle oracle(&model);

  auto session = RiskSession::Create(SessionConfig(), &ds.graph,
                                     &ds.profiles, &ds.visibility, ds.owner)
                     .value();
  ASSERT_TRUE(session.DiscoverAllStrangers().ok());
  Rng rng(23);
  ASSERT_TRUE(session.Assess(&oracle, &rng).ok());
  auto report = session.Assess(&oracle, &rng).value();
  // Every stranger the oracle ever labeled is marked owner-labeled with
  // exactly that label.
  std::map<UserId, RiskLabel> by_id;
  for (const StrangerAssessment& sa : report.assessment.strangers) {
    by_id[sa.stranger] = sa.predicted_label;
    if (session.known_labels().count(sa.stranger) > 0) {
      EXPECT_TRUE(sa.owner_labeled);
    }
  }
  for (const auto& [stranger, value] : session.known_labels()) {
    EXPECT_EQ(RiskLabelValue(by_id[stranger]), value);
  }
}

TEST(RiskSessionTest, IncrementalCostsNoMoreThanTwiceOneShot) {
  // Label economy: discovering in waves should not blow up total owner
  // effort versus assessing everything at once.
  sim::OwnerDataset ds = MakeDataset(6);
  Rng attitude_rng(29);
  sim::OwnerAttitude attitude = sim::SampleOwnerAttitude(&attitude_rng);

  auto run_waves = [&](size_t waves) {
    auto model =
        sim::OwnerModel::Create(attitude, &ds.profiles, &ds.visibility)
            .value();
    StrictOracle oracle(&model);
    auto session =
        RiskSession::Create(SessionConfig(), &ds.graph, &ds.profiles,
                            &ds.visibility, ds.owner)
            .value();
    Rng rng(31);
    size_t per_wave = ds.strangers.size() / waves;
    for (size_t w = 0; w < waves; ++w) {
      size_t begin = w * per_wave;
      size_t end = w + 1 == waves ? ds.strangers.size() : begin + per_wave;
      EXPECT_TRUE(session
                      .AddStrangers(std::vector<UserId>(
                          ds.strangers.begin() + begin,
                          ds.strangers.begin() + end))
                      .ok());
      EXPECT_TRUE(session.Assess(&oracle, &rng).ok());
    }
    return oracle.queries();
  };

  size_t one_shot = run_waves(1);
  size_t incremental = run_waves(4);
  EXPECT_LE(incremental, one_shot * 2 + 20);
}

TEST(RiskSessionTest, ImportLabelsSeedsAndDiscovers) {
  sim::OwnerDataset ds = MakeDataset(8, 100);
  Rng attitude_rng(43);
  sim::OwnerAttitude attitude = sim::SampleOwnerAttitude(&attitude_rng);
  auto model =
      sim::OwnerModel::Create(attitude, &ds.profiles, &ds.visibility)
          .value();
  StrictOracle oracle(&model);

  auto session = RiskSession::Create(SessionConfig(), &ds.graph,
                                     &ds.profiles, &ds.visibility, ds.owner)
                     .value();
  // Import labels for three strangers before any discovery.
  PoolLearner::KnownLabels imported;
  imported[ds.strangers[0]] = 1.0;
  imported[ds.strangers[1]] = 3.0;
  imported[ds.strangers[2]] = 2.0;
  ASSERT_TRUE(session.ImportLabels(imported).ok());
  EXPECT_EQ(session.num_strangers(), 3u);
  EXPECT_EQ(session.num_known_labels(), 3u);

  ASSERT_TRUE(session.DiscoverAllStrangers().ok());
  Rng rng(47);
  auto report = session.Assess(&oracle, &rng).value();
  // StrictOracle verifies the imported strangers were never re-asked.
  EXPECT_EQ(oracle.asked().count(ds.strangers[0]), 0u);
  EXPECT_EQ(oracle.asked().count(ds.strangers[1]), 0u);
  // Imported labels surface in the assessment.
  for (const StrangerAssessment& sa : report.assessment.strangers) {
    if (sa.stranger == ds.strangers[1]) {
      EXPECT_TRUE(sa.owner_labeled);
      EXPECT_EQ(sa.predicted_label, RiskLabel::kVeryRisky);
    }
  }
}

TEST(RiskSessionTest, ImportLabelsValidatesAtomically) {
  sim::OwnerDataset ds = MakeDataset(9, 60);
  auto session = RiskSession::Create(SessionConfig(), &ds.graph,
                                     &ds.profiles, &ds.visibility, ds.owner)
                     .value();
  PoolLearner::KnownLabels bad;
  bad[ds.strangers[0]] = 2.0;
  bad[ds.strangers[1]] = 9.0;  // out of range
  EXPECT_FALSE(session.ImportLabels(bad).ok());
  EXPECT_EQ(session.num_known_labels(), 0u);
  EXPECT_EQ(session.num_strangers(), 0u);

  PoolLearner::KnownLabels unknown_user;
  unknown_user[999999] = 2.0;
  EXPECT_FALSE(session.ImportLabels(unknown_user).ok());
  PoolLearner::KnownLabels owner_label;
  owner_label[ds.owner] = 2.0;
  EXPECT_FALSE(session.ImportLabels(owner_label).ok());
}

TEST(RiskSessionTest, AssessWithNoStrangersIsEmptyReport) {
  sim::OwnerDataset ds = MakeDataset(7);
  auto session = RiskSession::Create(SessionConfig(), &ds.graph,
                                     &ds.profiles, &ds.visibility, ds.owner)
                     .value();
  Rng attitude_rng(37);
  sim::OwnerAttitude attitude = sim::SampleOwnerAttitude(&attitude_rng);
  auto model =
      sim::OwnerModel::Create(attitude, &ds.profiles, &ds.visibility)
          .value();
  Rng rng(41);
  auto report = session.Assess(&model, &rng).value();
  EXPECT_EQ(report.assessment.strangers.size(), 0u);
  EXPECT_EQ(report.assessment.total_queries, 0u);
}

}  // namespace
}  // namespace sight
