#include "core/parameter_miner.h"

#include <gtest/gtest.h>

#include "graph/profile.h"
#include "graph/visibility.h"

namespace sight {
namespace {

TEST(MineAttributeWeightsTest, InformativeAttributeGetsHighWeight) {
  ProfileTable profiles(
      ProfileSchema::Create({"gender", "last_name"}).value());
  std::vector<UserId> strangers;
  std::vector<RiskLabel> labels;
  for (UserId u = 0; u < 16; ++u) {
    bool male = u % 2 == 0;
    Profile p;
    p.values = {male ? "male" : "female", "name" + std::to_string(u % 5)};
    ASSERT_TRUE(profiles.Set(u, p).ok());
    strangers.push_back(u);
    labels.push_back(male ? RiskLabel::kVeryRisky : RiskLabel::kNotRisky);
  }
  auto weights = MineAttributeWeights(profiles, strangers, labels).value();
  ASSERT_EQ(weights.size(), 2u);
  EXPECT_GT(weights[0], weights[1]);
  EXPECT_NEAR(weights[0] + weights[1], 1.0, 1e-12);
}

TEST(MineAttributeWeightsTest, RejectsEmpty) {
  ProfileTable profiles(ProfileSchema::Create({"a"}).value());
  EXPECT_FALSE(MineAttributeWeights(profiles, {}, {}).ok());
}

TEST(MineThetaWeightsTest, PredictiveItemDominates) {
  VisibilityTable visibility;
  std::vector<UserId> strangers;
  std::vector<RiskLabel> labels;
  for (UserId u = 0; u < 16; ++u) {
    bool work_visible = u % 2 == 0;
    visibility.SetVisible(u, ProfileItem::kWork, work_visible);
    // Wall visibility uncorrelated with the label.
    visibility.SetVisible(u, ProfileItem::kWall, u % 4 < 2);
    strangers.push_back(u);
    labels.push_back(work_visible ? RiskLabel::kNotRisky
                                  : RiskLabel::kVeryRisky);
  }
  auto theta = MineThetaWeights(visibility, strangers, labels).value();
  EXPECT_GT(theta[ProfileItem::kWork], theta[ProfileItem::kWall]);
  EXPECT_GT(theta[ProfileItem::kWork], theta[ProfileItem::kPhoto]);
  double sum = 0.0;
  for (double v : theta.values) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(MineThetaWeightsTest, UninformativeLabelsGiveUniformTheta) {
  VisibilityTable visibility;
  std::vector<UserId> strangers = {0, 1, 2};
  std::vector<RiskLabel> labels(3, RiskLabel::kRisky);
  auto theta = MineThetaWeights(visibility, strangers, labels).value();
  for (double v : theta.values) {
    EXPECT_NEAR(v, 1.0 / kNumProfileItems, 1e-12);
  }
}

}  // namespace
}  // namespace sight
