#include "core/nsg.h"

#include <gtest/gtest.h>

namespace sight {
namespace {

TEST(NsgTest, BuildValidatesInput) {
  EXPECT_FALSE(NetworkSimilarityGroups::Build(0, {}, {}).ok());
  EXPECT_FALSE(NetworkSimilarityGroups::Build(10, {1}, {}).ok());
  EXPECT_FALSE(NetworkSimilarityGroups::Build(10, {1}, {1.5}).ok());
  EXPECT_FALSE(NetworkSimilarityGroups::Build(10, {1}, {-0.1}).ok());
  EXPECT_TRUE(NetworkSimilarityGroups::Build(10, {}, {}).ok());
}

TEST(NsgTest, AssignsByDefinitionOneRanges) {
  // Definition 1: group x holds NS in [(x-1)/alpha, x/alpha) (1-based);
  // we use 0-based group indices.
  auto nsg =
      NetworkSimilarityGroups::Build(10, {0, 1, 2, 3}, {0.0, 0.05, 0.1, 0.95})
          .value();
  EXPECT_EQ(nsg.group_of(0), 0u);
  EXPECT_EQ(nsg.group_of(1), 0u);
  EXPECT_EQ(nsg.group_of(2), 1u);  // boundary belongs to the upper group
  EXPECT_EQ(nsg.group_of(3), 9u);
}

TEST(NsgTest, SimilarityOneGoesToLastGroup) {
  auto nsg = NetworkSimilarityGroups::Build(4, {7}, {1.0}).value();
  EXPECT_EQ(nsg.group_of(0), 3u);
  EXPECT_EQ(nsg.group(3), (std::vector<UserId>{7}));
}

TEST(NsgTest, GroupsPartitionStrangers) {
  std::vector<UserId> strangers = {10, 11, 12, 13, 14};
  std::vector<double> sims = {0.05, 0.15, 0.15, 0.55, 0.95};
  auto nsg = NetworkSimilarityGroups::Build(10, strangers, sims).value();
  size_t total = 0;
  for (size_t x = 0; x < nsg.alpha(); ++x) total += nsg.group(x).size();
  EXPECT_EQ(total, strangers.size());
  auto sizes = nsg.GroupSizes();
  EXPECT_EQ(sizes[0], 1u);
  EXPECT_EQ(sizes[1], 2u);
  EXPECT_EQ(sizes[5], 1u);
  EXPECT_EQ(sizes[9], 1u);
}

TEST(NsgTest, AlphaOnePutsEverythingTogether) {
  auto nsg =
      NetworkSimilarityGroups::Build(1, {1, 2, 3}, {0.0, 0.5, 1.0}).value();
  EXPECT_EQ(nsg.alpha(), 1u);
  EXPECT_EQ(nsg.group(0).size(), 3u);
}

TEST(NsgTest, HighestNonEmptyGroup) {
  auto nsg =
      NetworkSimilarityGroups::Build(10, {1, 2}, {0.05, 0.45}).value();
  EXPECT_EQ(nsg.HighestNonEmptyGroup(), 4u);
  auto empty = NetworkSimilarityGroups::Build(10, {}, {}).value();
  EXPECT_EQ(empty.HighestNonEmptyGroup(), SIZE_MAX);
}

TEST(NsgTest, EmptyInputGivesEmptyGroups) {
  auto nsg = NetworkSimilarityGroups::Build(5, {}, {}).value();
  EXPECT_EQ(nsg.alpha(), 5u);
  for (size_t x = 0; x < 5; ++x) EXPECT_TRUE(nsg.group(x).empty());
}

TEST(NsgTest, PreservesStrangerOrderWithinGroup) {
  auto nsg = NetworkSimilarityGroups::Build(10, {5, 3, 9}, {0.02, 0.01, 0.03})
                 .value();
  EXPECT_EQ(nsg.group(0), (std::vector<UserId>{5, 3, 9}));
}

}  // namespace
}  // namespace sight
