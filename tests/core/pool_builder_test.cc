#include "core/pool_builder.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "graph/algorithms.h"
#include "graph/profile.h"
#include "graph/social_graph.h"

namespace sight {
namespace {

ProfileSchema TestSchema() {
  return ProfileSchema::Create({"gender", "locale"}).value();
}

// Owner 0 with friends 1-4 (friends 1-2 and 3-4 are connected pairs);
// strangers 5-10: 5,6 attach to friends 1+2 (2 mutuals), 7-10 attach to
// one friend each. Profiles: strangers alternate male/tr and female/us.
struct Fixture {
  SocialGraph graph{11};
  ProfileTable profiles{TestSchema()};
  UserId owner = 0;

  Fixture() {
    auto edge = [&](UserId a, UserId b) {
      EXPECT_TRUE(graph.AddEdge(a, b).ok());
    };
    for (UserId f = 1; f <= 4; ++f) edge(0, f);
    edge(1, 2);
    edge(3, 4);
    edge(5, 1);
    edge(5, 2);
    edge(6, 1);
    edge(6, 2);
    edge(7, 1);
    edge(8, 2);
    edge(9, 3);
    edge(10, 4);
    for (UserId u = 0; u <= 10; ++u) {
      Profile p;
      p.values = u % 2 == 0 ? std::vector<std::string>{"male", "tr_TR"}
                            : std::vector<std::string>{"female", "en_US"};
      EXPECT_TRUE(profiles.Set(u, p).ok());
    }
  }
};

PoolBuilderConfig DefaultConfig(PoolStrategy strategy) {
  PoolBuilderConfig config;
  config.alpha = 10;
  config.beta = 0.4;
  config.strategy = strategy;
  return config;
}

TEST(PoolBuilderTest, CreateValidates) {
  PoolBuilderConfig config;
  config.alpha = 0;
  EXPECT_FALSE(PoolBuilder::Create(config).ok());
  config = {};
  config.beta = 1.5;
  EXPECT_FALSE(PoolBuilder::Create(config).ok());
  config = {};
  config.ns_config.saturation = -1.0;
  EXPECT_FALSE(PoolBuilder::Create(config).ok());
  EXPECT_TRUE(PoolBuilder::Create(PoolBuilderConfig{}).ok());
}

TEST(PoolBuilderTest, PoolsPartitionAllStrangers) {
  Fixture fx;
  auto builder =
      PoolBuilder::Create(DefaultConfig(PoolStrategy::kNetworkAndProfile))
          .value();
  auto pools = builder.Build(fx.graph, fx.profiles, fx.owner).value();
  EXPECT_EQ(pools.TotalStrangers(), 6u);

  std::set<UserId> seen;
  for (const StrangerPool& pool : pools.pools) {
    EXPECT_FALSE(pool.members.empty());
    for (UserId s : pool.members) {
      EXPECT_TRUE(seen.insert(s).second) << "stranger in two pools";
    }
  }
  EXPECT_EQ(seen.size(), 6u);
}

TEST(PoolBuilderTest, NetworkSimilaritiesParallelToStrangers) {
  Fixture fx;
  auto builder =
      PoolBuilder::Create(DefaultConfig(PoolStrategy::kNetworkAndProfile))
          .value();
  auto pools = builder.Build(fx.graph, fx.profiles, fx.owner).value();
  ASSERT_EQ(pools.network_similarities.size(), pools.strangers.size());
  for (double ns : pools.network_similarities) {
    EXPECT_GT(ns, 0.0);  // every stranger has >= 1 mutual friend
    EXPECT_LE(ns, 1.0);
  }
}

TEST(PoolBuilderTest, TwoMutualStrangersInHigherNsgThanOneMutual) {
  Fixture fx;
  auto builder =
      PoolBuilder::Create(DefaultConfig(PoolStrategy::kNetworkOnly)).value();
  auto pools = builder.Build(fx.graph, fx.profiles, fx.owner).value();
  // Find the nsg index of stranger 5 (2 mutuals) and 7 (1 mutual).
  auto nsg_of = [&](UserId target) {
    for (const StrangerPool& pool : pools.pools) {
      if (std::find(pool.members.begin(), pool.members.end(), target) !=
          pool.members.end()) {
        return pool.nsg_index;
      }
    }
    return SIZE_MAX;
  };
  EXPECT_GT(nsg_of(5), nsg_of(7));
}

TEST(PoolBuilderTest, NetworkOnlyHasOnePoolPerNonEmptyGroup) {
  Fixture fx;
  auto builder =
      PoolBuilder::Create(DefaultConfig(PoolStrategy::kNetworkOnly)).value();
  auto pools = builder.Build(fx.graph, fx.profiles, fx.owner).value();
  std::set<size_t> nsg_indices;
  for (const StrangerPool& pool : pools.pools) {
    EXPECT_TRUE(nsg_indices.insert(pool.nsg_index).second)
        << "two NSP pools share an nsg";
    EXPECT_EQ(pool.cluster_index, 0u);
  }
}

TEST(PoolBuilderTest, NppRefinesNspByProfile) {
  Fixture fx;
  auto npp =
      PoolBuilder::Create(DefaultConfig(PoolStrategy::kNetworkAndProfile))
          .value()
          .Build(fx.graph, fx.profiles, fx.owner)
          .value();
  auto nsp = PoolBuilder::Create(DefaultConfig(PoolStrategy::kNetworkOnly))
                 .value()
                 .Build(fx.graph, fx.profiles, fx.owner)
                 .value();
  EXPECT_GE(npp.pools.size(), nsp.pools.size());
  // Every NPP pool lies within one NSG group, so within one NSP pool.
  for (const StrangerPool& pool : npp.pools) {
    std::set<size_t> nsgs;
    nsgs.insert(pool.nsg_index);
    EXPECT_EQ(nsgs.size(), 1u);
  }
}

TEST(PoolBuilderTest, NppPoolsAreProfileHomogeneousHere) {
  // With two clearly distinct profile groups and beta = 0.4, no pool mixes
  // the male/tr and female/us strangers.
  Fixture fx;
  auto pools =
      PoolBuilder::Create(DefaultConfig(PoolStrategy::kNetworkAndProfile))
          .value()
          .Build(fx.graph, fx.profiles, fx.owner)
          .value();
  for (const StrangerPool& pool : pools.pools) {
    std::set<std::string> genders;
    for (UserId s : pool.members) {
      genders.insert(fx.profiles.Value(s, 0));
    }
    EXPECT_EQ(genders.size(), 1u);
  }
}

TEST(PoolBuilderTest, UnknownOwnerFails) {
  Fixture fx;
  auto builder =
      PoolBuilder::Create(DefaultConfig(PoolStrategy::kNetworkAndProfile))
          .value();
  EXPECT_FALSE(builder.Build(fx.graph, fx.profiles, 99).ok());
}

TEST(PoolBuilderTest, OwnerWithoutStrangersYieldsEmptyPoolSet) {
  SocialGraph g(2);
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  ProfileTable profiles(TestSchema());
  auto builder =
      PoolBuilder::Create(DefaultConfig(PoolStrategy::kNetworkAndProfile))
          .value();
  auto pools = builder.Build(g, profiles, 0).value();
  EXPECT_TRUE(pools.pools.empty());
  EXPECT_EQ(pools.TotalStrangers(), 0u);
}

// Bitwise equality of two pool sets: same stranger order, exact-equal NS
// doubles, identical pools in identical order.
void ExpectSamePoolSet(const PoolSet& got, const PoolSet& want) {
  EXPECT_EQ(got.strangers, want.strangers);
  ASSERT_EQ(got.network_similarities.size(),
            want.network_similarities.size());
  for (size_t i = 0; i < got.network_similarities.size(); ++i) {
    EXPECT_EQ(got.network_similarities[i], want.network_similarities[i]);
  }
  ASSERT_EQ(got.pools.size(), want.pools.size());
  for (size_t p = 0; p < got.pools.size(); ++p) {
    EXPECT_EQ(got.pools[p].members, want.pools[p].members) << "pool " << p;
    EXPECT_EQ(got.pools[p].nsg_index, want.pools[p].nsg_index);
    EXPECT_EQ(got.pools[p].cluster_index, want.pools[p].cluster_index);
  }
}

TEST(PoolBuilderTest, CachedBuildMatchesColdOnEveryPath) {
  // Identical set, grown set, and cold rebuild must all be bitwise-equal
  // to BuildForStrangers over the same list, for both strategies.
  for (PoolStrategy strategy :
       {PoolStrategy::kNetworkAndProfile, PoolStrategy::kNetworkOnly}) {
    Fixture fx;
    auto builder = PoolBuilder::Create(DefaultConfig(strategy)).value();
    PoolPartitionCache cache;

    std::vector<UserId> first = {5, 6, 7};
    auto cold1 =
        builder.BuildForStrangers(fx.graph, fx.profiles, fx.owner, first)
            .value();
    auto warm1 = builder
                     .BuildForStrangersCached(fx.graph, fx.profiles, fx.owner,
                                              first, &cache)
                     .value();
    ExpectSamePoolSet(warm1, cold1);
    EXPECT_EQ(cache.stats().misses, 1u);

    // Identical set: reused outright.
    auto warm2 = builder
                     .BuildForStrangersCached(fx.graph, fx.profiles, fx.owner,
                                              first, &cache)
                     .value();
    ExpectSamePoolSet(warm2, cold1);
    EXPECT_EQ(cache.stats().hits_identical, 1u);

    // Grown set: only the suffix routes through the carried squeezers.
    std::vector<UserId> grown = {5, 6, 7, 8, 9, 10};
    auto cold2 =
        builder.BuildForStrangers(fx.graph, fx.profiles, fx.owner, grown)
            .value();
    auto warm3 = builder
                     .BuildForStrangersCached(fx.graph, fx.profiles, fx.owner,
                                              grown, &cache)
                     .value();
    ExpectSamePoolSet(warm3, cold2);
    EXPECT_EQ(cache.stats().hits_grown, 1u);
    EXPECT_EQ(cache.num_strangers(), 6u);
  }
}

TEST(PoolBuilderTest, CachedBuildRebuildsOnInvalidation) {
  Fixture fx;
  auto builder =
      PoolBuilder::Create(DefaultConfig(PoolStrategy::kNetworkAndProfile))
          .value();
  PoolPartitionCache cache;
  std::vector<UserId> strangers = {5, 6, 7, 8};
  (void)builder
      .BuildForStrangersCached(fx.graph, fx.profiles, fx.owner, strangers,
                               &cache)
      .value();

  // A graph edit bumps the epoch: next build is a cold rebuild that sees
  // the new edge (stranger 7 gains a second mutual friend).
  ASSERT_TRUE(fx.graph.AddEdge(7, 2).ok());
  auto cold =
      builder.BuildForStrangers(fx.graph, fx.profiles, fx.owner, strangers)
          .value();
  auto warm = builder
                  .BuildForStrangersCached(fx.graph, fx.profiles, fx.owner,
                                           strangers, &cache)
                  .value();
  ExpectSamePoolSet(warm, cold);
  EXPECT_EQ(cache.stats().misses, 2u);

  // A profile edit invalidates too.
  ASSERT_TRUE(fx.profiles.SetValue(5, 0, "female").ok());
  auto cold2 =
      builder.BuildForStrangers(fx.graph, fx.profiles, fx.owner, strangers)
          .value();
  auto warm2 = builder
                   .BuildForStrangersCached(fx.graph, fx.profiles, fx.owner,
                                            strangers, &cache)
                   .value();
  ExpectSamePoolSet(warm2, cold2);
  EXPECT_EQ(cache.stats().misses, 3u);

  // A reordered (non-prefix) list breaks the prefix and rebuilds.
  std::vector<UserId> reordered = {6, 5, 7, 8};
  auto cold3 =
      builder.BuildForStrangers(fx.graph, fx.profiles, fx.owner, reordered)
          .value();
  auto warm3 = builder
                   .BuildForStrangersCached(fx.graph, fx.profiles, fx.owner,
                                            reordered, &cache)
                   .value();
  ExpectSamePoolSet(warm3, cold3);
  EXPECT_EQ(cache.stats().misses, 4u);

  // A different builder configuration never reuses another's partition.
  PoolBuilderConfig other = DefaultConfig(PoolStrategy::kNetworkAndProfile);
  other.alpha = 5;
  auto other_builder = PoolBuilder::Create(other).value();
  auto cold4 = other_builder
                   .BuildForStrangers(fx.graph, fx.profiles, fx.owner,
                                      reordered)
                   .value();
  auto warm4 = other_builder
                   .BuildForStrangersCached(fx.graph, fx.profiles, fx.owner,
                                            reordered, &cache)
                   .value();
  ExpectSamePoolSet(warm4, cold4);
  EXPECT_EQ(cache.stats().misses, 5u);
}

TEST(PoolBuilderTest, BuildForStrangersHonorsSubset) {
  Fixture fx;
  auto builder =
      PoolBuilder::Create(DefaultConfig(PoolStrategy::kNetworkAndProfile))
          .value();
  auto pools =
      builder.BuildForStrangers(fx.graph, fx.profiles, fx.owner, {5, 7})
          .value();
  EXPECT_EQ(pools.TotalStrangers(), 2u);
  size_t members = 0;
  for (const StrangerPool& pool : pools.pools) members += pool.members.size();
  EXPECT_EQ(members, 2u);
}

}  // namespace
}  // namespace sight
