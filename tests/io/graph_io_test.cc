#include "io/graph_io.h"

#include <sstream>

#include <gtest/gtest.h>

namespace sight::io {
namespace {

SocialGraph SampleGraph() {
  SocialGraph g(5);
  EXPECT_TRUE(g.AddEdge(0, 1).ok());
  EXPECT_TRUE(g.AddEdge(0, 4).ok());
  EXPECT_TRUE(g.AddEdge(2, 3).ok());
  return g;
}

TEST(GraphIoTest, RoundTrip) {
  SocialGraph original = SampleGraph();
  std::stringstream buffer;
  ASSERT_TRUE(SaveGraph(original, &buffer).ok());
  auto loaded = LoadGraph(&buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->NumUsers(), 5u);
  EXPECT_EQ(loaded->NumEdges(), 3u);
  EXPECT_TRUE(loaded->HasEdge(0, 1));
  EXPECT_TRUE(loaded->HasEdge(4, 0));
  EXPECT_TRUE(loaded->HasEdge(2, 3));
  EXPECT_FALSE(loaded->HasEdge(1, 2));
}

TEST(GraphIoTest, RoundTripEmptyGraph) {
  SocialGraph empty;
  std::stringstream buffer;
  ASSERT_TRUE(SaveGraph(empty, &buffer).ok());
  auto loaded = LoadGraph(&buffer);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->NumUsers(), 0u);
  EXPECT_EQ(loaded->NumEdges(), 0u);
}

TEST(GraphIoTest, CommentsAndBlankLinesIgnored) {
  std::stringstream buffer(
      "# a comment\n\nsight-graph v1\n# counts\n3 1\n\n0 2\n");
  auto loaded = LoadGraph(&buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_TRUE(loaded->HasEdge(0, 2));
}

TEST(GraphIoTest, MissingHeaderRejected) {
  std::stringstream buffer("3 1\n0 2\n");
  EXPECT_EQ(LoadGraph(&buffer).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(GraphIoTest, BadCountsRejected) {
  std::stringstream buffer("sight-graph v1\nnot numbers\n");
  EXPECT_FALSE(LoadGraph(&buffer).ok());
}

TEST(GraphIoTest, EdgeOutOfRangeRejected) {
  std::stringstream buffer("sight-graph v1\n3 1\n0 7\n");
  EXPECT_EQ(LoadGraph(&buffer).status().code(), StatusCode::kOutOfRange);
}

TEST(GraphIoTest, SelfLoopRejected) {
  std::stringstream buffer("sight-graph v1\n3 1\n1 1\n");
  EXPECT_FALSE(LoadGraph(&buffer).ok());
}

TEST(GraphIoTest, DuplicateEdgeRejected) {
  std::stringstream buffer("sight-graph v1\n3 2\n0 1\n1 0\n");
  EXPECT_EQ(LoadGraph(&buffer).status().code(),
            StatusCode::kAlreadyExists);
}

TEST(GraphIoTest, EdgeCountMismatchRejected) {
  std::stringstream buffer("sight-graph v1\n3 2\n0 1\n");
  EXPECT_FALSE(LoadGraph(&buffer).ok());
}

TEST(GraphIoTest, FileRoundTrip) {
  SocialGraph original = SampleGraph();
  std::string path = ::testing::TempDir() + "/sight_graph_io_test.txt";
  ASSERT_TRUE(SaveGraphToFile(original, path).ok());
  auto loaded = LoadGraphFromFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->NumEdges(), original.NumEdges());
}

TEST(GraphIoTest, MissingFileIsNotFound) {
  EXPECT_EQ(LoadGraphFromFile("/nonexistent/nope.txt").status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace sight::io
