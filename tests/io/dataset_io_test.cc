#include "io/dataset_io.h"

#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "core/risk_engine.h"
#include "sim/owner_model.h"

namespace sight::io {
namespace {

sim::OwnerDataset MakeDataset(uint64_t seed) {
  sim::GeneratorConfig config;
  config.num_friends = 20;
  config.num_strangers = 60;
  config.num_communities = 3;
  auto gen = sim::FacebookGenerator::Create(config).value();
  Rng rng(seed);
  return gen.Generate({sim::Gender::kMale, sim::Locale::kTR}, &rng).value();
}

std::string TempDirFor(const char* name) {
  std::string dir = ::testing::TempDir() + "/sight_dataset_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

TEST(DatasetIoTest, RoundTripPreservesEverything) {
  sim::OwnerDataset original = MakeDataset(1);
  std::string dir = TempDirFor("roundtrip");
  ASSERT_TRUE(SaveOwnerDataset(original, dir).ok());

  auto loaded = LoadOwnerDataset(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->owner, original.owner);
  EXPECT_EQ(loaded->graph.NumUsers(), original.graph.NumUsers());
  EXPECT_EQ(loaded->graph.NumEdges(), original.graph.NumEdges());
  EXPECT_EQ(loaded->friends, original.friends);
  EXPECT_EQ(loaded->strangers, original.strangers);
  for (UserId u = 0; u < original.graph.NumUsers(); ++u) {
    EXPECT_EQ(loaded->profiles.Get(u).values,
              original.profiles.Get(u).values)
        << "user " << u;
    EXPECT_EQ(loaded->visibility.Mask(u), original.visibility.Mask(u))
        << "user " << u;
  }
}

TEST(DatasetIoTest, LoadedDatasetRunsThroughTheEngine) {
  sim::OwnerDataset original = MakeDataset(2);
  std::string dir = TempDirFor("engine");
  ASSERT_TRUE(SaveOwnerDataset(original, dir).ok());
  auto loaded = LoadOwnerDataset(dir).value();

  Rng attitude_rng(3);
  sim::OwnerAttitude attitude = sim::SampleOwnerAttitude(&attitude_rng);
  auto oracle = sim::OwnerModel::Create(attitude, &loaded.profiles,
                                        &loaded.visibility)
                    .value();
  auto engine = RiskEngine::Create(RiskEngineConfig{}).value();
  Rng rng(5);
  auto report = engine
                    .AssessOwner(loaded.graph, loaded.profiles,
                                 loaded.visibility, loaded.owner, &oracle,
                                 &rng)
                    .value();
  EXPECT_EQ(report.assessment.strangers.size(), loaded.strangers.size());
}

TEST(DatasetIoTest, MissingDirectoryIsNotFound) {
  EXPECT_EQ(LoadOwnerDataset("/nonexistent/sight").status().code(),
            StatusCode::kNotFound);
}

TEST(DatasetIoTest, CorruptMetaRejected) {
  sim::OwnerDataset original = MakeDataset(4);
  std::string dir = TempDirFor("corrupt");
  ASSERT_TRUE(SaveOwnerDataset(original, dir).ok());
  {
    std::ofstream meta(dir + "/meta.txt");
    meta << "not-an-owner-line\n";
  }
  EXPECT_FALSE(LoadOwnerDataset(dir).ok());
}

TEST(DatasetIoTest, OwnerOutOfRangeRejected) {
  sim::OwnerDataset original = MakeDataset(5);
  std::string dir = TempDirFor("range");
  ASSERT_TRUE(SaveOwnerDataset(original, dir).ok());
  {
    std::ofstream meta(dir + "/meta.txt");
    meta << "owner 999999\n";
  }
  EXPECT_EQ(LoadOwnerDataset(dir).status().code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace sight::io
