// Randomized round-trip property tests: arbitrary field contents
// (commas, quotes, newlines, unicode bytes) must survive
// CsvWriter -> CsvReader, and arbitrary generated datasets must survive
// the io/ directory round trip.

#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "io/profile_io.h"
#include "util/csv.h"
#include "util/random.h"

namespace sight::io {
namespace {

// Random field with hostile characters.
std::string RandomField(Rng* rng) {
  static const char* kAlphabet[] = {
      "a", "B", "9", ",", "\"", "\n", "\r\n", " ", "'", ";",
      "\xc3\xa9" /* e-acute */, "x,y", "\"\"", "end",
  };
  size_t length = static_cast<size_t>(rng->UniformInt(0, 12));
  std::string field;
  for (size_t i = 0; i < length; ++i) {
    field += kAlphabet[rng->UniformInt(0, 13)];
  }
  return field;
}

class CsvFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CsvFuzzTest, WriterReaderRoundTripIsIdentity) {
  Rng rng(GetParam());
  size_t num_cols = static_cast<size_t>(rng.UniformInt(1, 6));
  std::vector<std::string> header;
  for (size_t c = 0; c < num_cols; ++c) {
    header.push_back("col" + std::to_string(c));
  }
  CsvWriter writer(header);
  std::vector<std::vector<std::string>> rows;
  size_t num_rows = static_cast<size_t>(rng.UniformInt(0, 20));
  for (size_t r = 0; r < num_rows; ++r) {
    std::vector<std::string> row;
    bool all_empty_single = false;
    do {
      row.clear();
      for (size_t c = 0; c < num_cols; ++c) row.push_back(RandomField(&rng));
      // A record that is a single empty field is indistinguishable from a
      // blank line; skip that degenerate shape.
      all_empty_single = num_cols == 1 && row[0].empty();
    } while (all_empty_single);
    rows.push_back(row);
    writer.AddRow(row);
  }

  std::istringstream in(writer.ToString());
  CsvReader reader(&in);
  std::vector<std::string> record;
  ASSERT_TRUE(reader.Next(&record));
  EXPECT_EQ(record, header);
  for (size_t r = 0; r < rows.size(); ++r) {
    ASSERT_TRUE(reader.Next(&record))
        << "row " << r << ": " << reader.status();
    EXPECT_EQ(record, rows[r]) << "row " << r;
  }
  EXPECT_FALSE(reader.Next(&record));
  EXPECT_TRUE(reader.status().ok()) << reader.status();
}

TEST_P(CsvFuzzTest, ProfileTableRoundTripWithHostileValues) {
  Rng rng(GetParam() ^ 0xf00d);
  auto schema = ProfileSchema::Create({"alpha", "beta", "gamma"}).value();
  ProfileTable table(schema);
  size_t num_users = static_cast<size_t>(rng.UniformInt(1, 15));
  for (size_t u = 0; u < num_users; ++u) {
    Profile p;
    for (size_t a = 0; a < 3; ++a) p.values.push_back(RandomField(&rng));
    ASSERT_TRUE(table.Set(static_cast<UserId>(u * 3), p).ok());
  }
  std::stringstream buffer;
  ASSERT_TRUE(SaveProfiles(table, &buffer).ok());
  auto loaded = LoadProfiles(&buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->num_profiles(), table.num_profiles());
  for (size_t u = 0; u < num_users; ++u) {
    UserId id = static_cast<UserId>(u * 3);
    EXPECT_EQ(loaded->Get(id).values, table.Get(id).values) << "user " << id;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsvFuzzTest,
                         ::testing::Range<uint64_t>(1, 21));

}  // namespace
}  // namespace sight::io
