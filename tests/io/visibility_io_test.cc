#include "io/visibility_io.h"

#include <sstream>

#include <gtest/gtest.h>

namespace sight::io {
namespace {

VisibilityTable SampleVisibility() {
  VisibilityTable v;
  v.SetVisible(1, ProfileItem::kPhoto);
  v.SetVisible(1, ProfileItem::kWork);
  v.SetVisible(3, ProfileItem::kWall);
  return v;
}

TEST(VisibilityIoTest, RoundTrip) {
  VisibilityTable original = SampleVisibility();
  std::stringstream buffer;
  ASSERT_TRUE(SaveVisibility(original, 5, &buffer).ok());
  auto loaded = LoadVisibility(&buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  for (UserId u = 0; u < 5; ++u) {
    EXPECT_EQ(loaded->Mask(u), original.Mask(u)) << "user " << u;
  }
}

TEST(VisibilityIoTest, AllHiddenUsersOmittedButDefaultHidden) {
  VisibilityTable original = SampleVisibility();
  std::stringstream buffer;
  ASSERT_TRUE(SaveVisibility(original, 5, &buffer).ok());
  std::string text = buffer.str();
  // Only two data rows (users 1 and 3).
  size_t lines = static_cast<size_t>(
      std::count(text.begin(), text.end(), '\n'));
  EXPECT_EQ(lines, 3u);  // header + 2 rows
  auto loaded = LoadVisibility(&buffer);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->VisibleCount(0), 0u);
  EXPECT_EQ(loaded->VisibleCount(2), 0u);
}

TEST(VisibilityIoTest, PermutedHeaderAccepted) {
  std::stringstream buffer(
      "user_id,photo,wall,friend,location,education,work,hometown\n"
      "0,1,0,0,0,0,0,0\n");
  auto loaded = LoadVisibility(&buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_TRUE(loaded->IsVisible(0, ProfileItem::kPhoto));
  EXPECT_FALSE(loaded->IsVisible(0, ProfileItem::kWall));
}

TEST(VisibilityIoTest, UnknownItemNameRejected) {
  std::stringstream buffer(
      "user_id,selfies,wall,friend,location,education,work,hometown\n");
  EXPECT_FALSE(LoadVisibility(&buffer).ok());
}

TEST(VisibilityIoTest, NonBinaryCellRejected) {
  std::stringstream buffer(
      "user_id,wall,photo,friend,location,education,work,hometown\n"
      "0,2,0,0,0,0,0,0\n");
  EXPECT_FALSE(LoadVisibility(&buffer).ok());
}

TEST(VisibilityIoTest, WrongColumnCountRejected) {
  std::stringstream buffer("user_id,wall,photo\n0,1,1\n");
  EXPECT_FALSE(LoadVisibility(&buffer).ok());
}

TEST(VisibilityIoTest, BadUserIdRejected) {
  std::stringstream buffer(
      "user_id,wall,photo,friend,location,education,work,hometown\n"
      "x,1,0,0,0,0,0,0\n");
  EXPECT_FALSE(LoadVisibility(&buffer).ok());
}

TEST(VisibilityIoTest, FileRoundTrip) {
  VisibilityTable original = SampleVisibility();
  std::string path = ::testing::TempDir() + "/sight_visibility_io_test.csv";
  ASSERT_TRUE(SaveVisibilityToFile(original, 5, path).ok());
  auto loaded = LoadVisibilityFromFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->Mask(1), original.Mask(1));
}

}  // namespace
}  // namespace sight::io
