#include "io/labels_io.h"

#include <sstream>

#include <gtest/gtest.h>

namespace sight::io {
namespace {

TEST(LabelsIoTest, RoundTrip) {
  PoolLearner::KnownLabels labels;
  labels[5] = 1.0;
  labels[2] = 3.0;
  labels[99] = 2.0;
  std::stringstream buffer;
  ASSERT_TRUE(SaveKnownLabels(labels, &buffer).ok());
  auto loaded = LoadKnownLabels(&buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(*loaded, labels);
}

TEST(LabelsIoTest, OutputIsSortedByStranger) {
  PoolLearner::KnownLabels labels;
  labels[30] = 1.0;
  labels[10] = 2.0;
  labels[20] = 3.0;
  std::stringstream buffer;
  ASSERT_TRUE(SaveKnownLabels(labels, &buffer).ok());
  EXPECT_EQ(buffer.str(), "stranger,label\n10,2\n20,3\n30,1\n");
}

TEST(LabelsIoTest, EmptyLabelsRoundTrip) {
  PoolLearner::KnownLabels labels;
  std::stringstream buffer;
  ASSERT_TRUE(SaveKnownLabels(labels, &buffer).ok());
  auto loaded = LoadKnownLabels(&buffer);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->empty());
}

TEST(LabelsIoTest, RejectsBadHeader) {
  std::stringstream buffer("user,value\n1,2\n");
  EXPECT_FALSE(LoadKnownLabels(&buffer).ok());
}

TEST(LabelsIoTest, RejectsOutOfRangeLabel) {
  std::stringstream buffer("stranger,label\n1,4\n");
  EXPECT_EQ(LoadKnownLabels(&buffer).status().code(),
            StatusCode::kOutOfRange);
  std::stringstream buffer2("stranger,label\n1,0\n");
  EXPECT_FALSE(LoadKnownLabels(&buffer2).ok());
}

TEST(LabelsIoTest, RejectsMalformedRows) {
  std::stringstream buffer("stranger,label\nabc,2\n");
  EXPECT_FALSE(LoadKnownLabels(&buffer).ok());
  std::stringstream buffer2("stranger,label\n1,2,3\n");
  EXPECT_FALSE(LoadKnownLabels(&buffer2).ok());
}

TEST(LabelsIoTest, FileRoundTrip) {
  PoolLearner::KnownLabels labels;
  labels[7] = 2.0;
  std::string path = ::testing::TempDir() + "/sight_labels_io_test.csv";
  ASSERT_TRUE(SaveKnownLabelsToFile(labels, path).ok());
  auto loaded = LoadKnownLabelsFromFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, labels);
  EXPECT_EQ(LoadKnownLabelsFromFile("/no/such/file.csv").status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace sight::io
