#include "io/profile_io.h"

#include <sstream>

#include <gtest/gtest.h>

namespace sight::io {
namespace {

ProfileTable SampleProfiles() {
  ProfileTable table(
      ProfileSchema::Create({"gender", "last_name"}).value());
  Profile p;
  p.values = {"male", "O'Brien, Jr"};  // needs CSV quoting
  EXPECT_TRUE(table.Set(2, p).ok());
  p.values = {"female", ""};
  EXPECT_TRUE(table.Set(5, p).ok());
  return table;
}

TEST(ProfileIoTest, RoundTrip) {
  ProfileTable original = SampleProfiles();
  std::stringstream buffer;
  ASSERT_TRUE(SaveProfiles(original, &buffer).ok());
  auto loaded = LoadProfiles(&buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->schema().names(), original.schema().names());
  EXPECT_EQ(loaded->num_profiles(), 2u);
  EXPECT_EQ(loaded->Value(2, 1), "O'Brien, Jr");
  EXPECT_EQ(loaded->Value(5, 0), "female");
  EXPECT_TRUE(loaded->Get(5).IsMissing(1));
  EXPECT_FALSE(loaded->Has(3));
}

TEST(ProfileIoTest, QuotedFieldsWithNewlines) {
  std::stringstream buffer(
      "user_id,bio\n0,\"line one\nline two\"\n1,simple\n");
  auto loaded = LoadProfiles(&buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->Value(0, 0), "line one\nline two");
  EXPECT_EQ(loaded->Value(1, 0), "simple");
}

TEST(ProfileIoTest, HeaderMustStartWithUserId) {
  std::stringstream buffer("id,gender\n0,male\n");
  EXPECT_FALSE(LoadProfiles(&buffer).ok());
}

TEST(ProfileIoTest, EmptyInputRejected) {
  std::stringstream buffer("");
  EXPECT_FALSE(LoadProfiles(&buffer).ok());
}

TEST(ProfileIoTest, RowArityMismatchRejected) {
  std::stringstream buffer("user_id,gender,locale\n0,male\n");
  EXPECT_FALSE(LoadProfiles(&buffer).ok());
}

TEST(ProfileIoTest, BadUserIdRejected) {
  std::stringstream buffer("user_id,gender\nabc,male\n");
  EXPECT_FALSE(LoadProfiles(&buffer).ok());
  std::stringstream buffer2("user_id,gender\n-3,male\n");
  EXPECT_FALSE(LoadProfiles(&buffer2).ok());
}

TEST(ProfileIoTest, DuplicateHeaderAttributeRejected) {
  std::stringstream buffer("user_id,gender,gender\n0,male,male\n");
  EXPECT_FALSE(LoadProfiles(&buffer).ok());
}

TEST(ProfileIoTest, BlankLinesSkipped) {
  std::stringstream buffer("user_id,gender\n\n0,male\n\n");
  auto loaded = LoadProfiles(&buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->num_profiles(), 1u);
}

TEST(ProfileIoTest, FileRoundTrip) {
  ProfileTable original = SampleProfiles();
  std::string path = ::testing::TempDir() + "/sight_profile_io_test.csv";
  ASSERT_TRUE(SaveProfilesToFile(original, path).ok());
  auto loaded = LoadProfilesFromFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_profiles(), 2u);
}

}  // namespace
}  // namespace sight::io
