#include "util/thread_pool.h"

#include <atomic>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace sight {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitOnIdlePoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // no tasks
  SUCCEED();
}

TEST(ThreadPoolTest, DefaultThreadCountPositive) {
  ThreadPool pool;
  EXPECT_GE(pool.num_threads(), 1u);
}

TEST(ThreadPoolTest, TasksCanSubmitFollowUps) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  pool.Submit([&pool, &counter] {
    counter.fetch_add(1);
    for (int i = 0; i < 5; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
  });
  pool.Wait();
  EXPECT_EQ(counter.load(), 6);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
  }  // destructor waits
  EXPECT_EQ(counter.load(), 50);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(200);
  ParallelFor(&pool, hits.size(), [&hits](size_t i) {
    hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, NullPoolRunsInline) {
  std::vector<int> order;
  ParallelFor(nullptr, 5, [&order](size_t i) {
    order.push_back(static_cast<int>(i));
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelForTest, ZeroIterations) {
  ThreadPool pool(2);
  bool called = false;
  ParallelFor(&pool, 0, [&called](size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForTest, ParallelSumMatchesSequential) {
  ThreadPool pool(8);
  const size_t n = 1000;
  std::vector<long> results(n, 0);
  ParallelFor(&pool, n, [&results](size_t i) {
    results[i] = static_cast<long>(i) * 2;
  });
  long total = std::accumulate(results.begin(), results.end(), 0L);
  EXPECT_EQ(total, static_cast<long>(n * (n - 1)));
}

}  // namespace
}  // namespace sight
