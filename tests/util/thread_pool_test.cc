#include "util/thread_pool.h"

#include <atomic>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace sight {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitOnIdlePoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // no tasks
  SUCCEED();
}

TEST(ThreadPoolTest, DefaultThreadCountPositive) {
  ThreadPool pool;
  EXPECT_GE(pool.num_threads(), 1u);
}

TEST(ThreadPoolTest, TasksCanSubmitFollowUps) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  pool.Submit([&pool, &counter] {
    counter.fetch_add(1);
    for (int i = 0; i < 5; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
  });
  pool.Wait();
  EXPECT_EQ(counter.load(), 6);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
  }  // destructor waits
  EXPECT_EQ(counter.load(), 50);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(200);
  ParallelFor(&pool, hits.size(), [&hits](size_t i) {
    hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, NullPoolRunsInline) {
  std::vector<int> order;
  ParallelFor(nullptr, 5, [&order](size_t i) {
    order.push_back(static_cast<int>(i));
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelForTest, ZeroIterations) {
  ThreadPool pool(2);
  bool called = false;
  ParallelFor(&pool, 0, [&called](size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForTest, FewerItemsThanThreads) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  ParallelFor(&pool, hits.size(), [&hits](size_t i) {
    hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, ZeroIterationsWithNullPool) {
  bool called = false;
  ParallelFor(nullptr, 0, [&called](size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForTest, StressRepeatedMixedSizeRanges) {
  // Many back-to-back ranges on one pool, including zero-length and
  // n < num_threads, must each cover every index exactly once.
  ThreadPool pool(4);
  for (size_t n : {0u, 1u, 2u, 3u, 7u, 64u, 1000u}) {
    for (int round = 0; round < 20; ++round) {
      std::vector<std::atomic<int>> hits(n);
      ParallelFor(&pool, n, [&hits](size_t i) { hits[i].fetch_add(1); });
      for (size_t i = 0; i < n; ++i) {
        ASSERT_EQ(hits[i].load(), 1) << "n=" << n << " round=" << round;
      }
    }
  }
}

TEST(ParallelForTest, StressBodiesSubmitFollowUpTasks) {
  // ParallelFor bodies may enqueue extra work on the same pool; the
  // trailing Wait() must cover those nested submits too.
  ThreadPool pool(4);
  std::atomic<int> direct{0};
  std::atomic<int> nested{0};
  ParallelFor(&pool, 50, [&](size_t) {
    direct.fetch_add(1);
    pool.Submit([&nested] { nested.fetch_add(1); });
  });
  EXPECT_EQ(direct.load(), 50);
  EXPECT_EQ(nested.load(), 50);
}

TEST(ParallelForTest, StressDeeplyNestedSubmits) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  std::function<void(int)> chain = [&](int depth) {
    counter.fetch_add(1);
    if (depth > 0) {
      pool.Submit([&chain, depth] { chain(depth - 1); });
      pool.Submit([&chain, depth] { chain(depth - 1); });
    }
  };
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&chain] { chain(5); });
  }
  pool.Wait();
  // 8 binary trees of depth 5: 8 * (2^6 - 1) nodes.
  EXPECT_EQ(counter.load(), 8 * 63);
}

TEST(ParallelForTest, ParallelSumMatchesSequential) {
  ThreadPool pool(8);
  const size_t n = 1000;
  std::vector<long> results(n, 0);
  ParallelFor(&pool, n, [&results](size_t i) {
    results[i] = static_cast<long>(i) * 2;
  });
  long total = std::accumulate(results.begin(), results.end(), 0L);
  EXPECT_EQ(total, static_cast<long>(n * (n - 1)));
}

}  // namespace
}  // namespace sight
