#include "util/table_printer.h"

#include <gtest/gtest.h>

namespace sight {
namespace {

TEST(TablePrinterTest, RendersHeaderAndRows) {
  TablePrinter t({"item", "value"});
  t.AddRow({"wall", "25%"});
  t.AddRow({"photo", "88%"});
  std::string out = t.ToString();
  EXPECT_NE(out.find("item"), std::string::npos);
  EXPECT_NE(out.find("wall"), std::string::npos);
  EXPECT_NE(out.find("88%"), std::string::npos);
  // Separator line of dashes present.
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(TablePrinterTest, PadsShortRows) {
  TablePrinter t({"a", "b", "c"});
  t.AddRow({"only"});
  std::string out = t.ToString();
  EXPECT_NE(out.find("only"), std::string::npos);
}

TEST(TablePrinterTest, NumericColumnsRightAligned) {
  TablePrinter t({"name", "count"});
  t.AddRow({"x", "5"});
  t.AddRow({"y", "12345"});
  std::string out = t.ToString();
  // The short number is padded on the left to the column width.
  EXPECT_NE(out.find("    5"), std::string::npos);
}

TEST(TablePrinterTest, DoubleRowHelper) {
  TablePrinter t({"label", "v1", "v2"});
  t.AddRow("row", {1.234, 5.6}, 1);
  std::string out = t.ToString();
  EXPECT_NE(out.find("1.2"), std::string::npos);
  EXPECT_NE(out.find("5.6"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(TablePrinterTest, EmptyTableStillRendersHeader) {
  TablePrinter t({"h1"});
  std::string out = t.ToString();
  EXPECT_NE(out.find("h1"), std::string::npos);
}

TEST(TablePrinterTest, ToCsvEscapesProperly) {
  TablePrinter t({"name", "value"});
  t.AddRow({"with,comma", "42"});
  EXPECT_EQ(t.ToCsv(), "name,value\n\"with,comma\",42\n");
}

}  // namespace
}  // namespace sight
