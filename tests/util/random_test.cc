#include "util/random.h"

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace sight {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 10; ++i) {
    if (a.Next() != b.Next()) ++differing;
  }
  EXPECT_GT(differing, 5);
}

TEST(RngTest, UniformIntRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-3, 4);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 4);
  }
}

TEST(RngTest, UniformIntDegenerateRange) {
  Rng rng(9);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.UniformInt(5, 5), 5);
}

TEST(RngTest, UniformIntCoversAllValues) {
  Rng rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformDoubleMeanNearHalf) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.UniformDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(19);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRateApproximatesP) {
  Rng rng(23);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, NormalMomentsApproximatelyCorrect) {
  Rng rng(29);
  const int n = 20000;
  double sum = 0.0;
  double ss = 0.0;
  for (int i = 0; i < n; ++i) {
    double v = rng.Normal(2.0, 3.0);
    sum += v;
    ss += v * v;
  }
  double mean = sum / n;
  double var = ss / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(var, 9.0, 0.5);
}

TEST(RngTest, WeightedIndexHonorsZeroWeights) {
  Rng rng(31);
  std::vector<double> weights = {0.0, 1.0, 0.0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.WeightedIndex(weights), 1u);
  }
}

TEST(RngTest, WeightedIndexProportions) {
  Rng rng(37);
  std::vector<double> weights = {1.0, 3.0};
  int count1 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.WeightedIndex(weights) == 1) ++count1;
  }
  EXPECT_NEAR(static_cast<double>(count1) / n, 0.75, 0.02);
}

TEST(RngDeathTest, WeightedIndexRejectsAllZero) {
  Rng rng(41);
  std::vector<double> weights = {0.0, 0.0};
  EXPECT_DEATH({ (void)rng.WeightedIndex(weights); }, "check failed");
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(43);
  std::vector<size_t> sample = rng.SampleWithoutReplacement(100, 30);
  ASSERT_EQ(sample.size(), 30u);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (size_t s : sample) EXPECT_LT(s, 100u);
}

TEST(RngTest, SampleWithoutReplacementKExceedsN) {
  Rng rng(47);
  std::vector<size_t> sample = rng.SampleWithoutReplacement(5, 10);
  ASSERT_EQ(sample.size(), 5u);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(RngTest, SampleWithoutReplacementZeroK) {
  Rng rng(53);
  EXPECT_TRUE(rng.SampleWithoutReplacement(5, 0).empty());
}

TEST(RngTest, SampleWithoutReplacementUnbiasedFirstElement) {
  // Every index should appear in a size-1 sample roughly uniformly.
  Rng rng(59);
  std::vector<int> counts(10, 0);
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    ++counts[rng.SampleWithoutReplacement(10, 1)[0]];
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.1, 0.02);
  }
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(61);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> original = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(71);
  Rng fork = a.Fork();
  // The fork should not replay the parent's stream.
  bool all_equal = true;
  for (int i = 0; i < 10; ++i) {
    if (a.Next() != fork.Next()) all_equal = false;
  }
  EXPECT_FALSE(all_equal);
}

}  // namespace
}  // namespace sight
