#include "util/histogram.h"

#include <limits>

#include <gtest/gtest.h>

namespace sight {
namespace {

TEST(HistogramTest, CreateRejectsBadArguments) {
  EXPECT_FALSE(Histogram::Create(0, 0.0, 1.0).ok());
  EXPECT_FALSE(Histogram::Create(10, 1.0, 1.0).ok());
  EXPECT_FALSE(Histogram::Create(10, 2.0, 1.0).ok());
  EXPECT_TRUE(Histogram::Create(10, 0.0, 1.0).ok());
}

TEST(HistogramTest, BinsValuesByRange) {
  Histogram h = Histogram::Create(10, 0.0, 1.0).value();
  h.Add(0.05);   // bin 0
  h.Add(0.15);   // bin 1
  h.Add(0.95);   // bin 9
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(1), 1u);
  EXPECT_EQ(h.bin_count(9), 1u);
  EXPECT_EQ(h.total_in_range(), 3u);
}

TEST(HistogramTest, UpperBoundGoesToLastBin) {
  Histogram h = Histogram::Create(10, 0.0, 1.0).value();
  h.Add(1.0);
  EXPECT_EQ(h.bin_count(9), 1u);
  EXPECT_EQ(h.overflow(), 0u);
}

TEST(HistogramTest, BinBoundaryBelongsToUpperBin) {
  Histogram h = Histogram::Create(10, 0.0, 1.0).value();
  h.Add(0.1);
  EXPECT_EQ(h.bin_count(1), 1u);
  EXPECT_EQ(h.bin_count(0), 0u);
}

TEST(HistogramTest, OutOfRangeCounted) {
  Histogram h = Histogram::Create(4, 0.0, 1.0).value();
  h.Add(-0.1);
  h.Add(1.5);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.total_in_range(), 0u);
}

TEST(HistogramTest, BinIndexMatchesAdd) {
  Histogram h = Histogram::Create(5, 0.0, 1.0).value();
  EXPECT_EQ(h.BinIndex(0.0).value(), 0u);
  EXPECT_EQ(h.BinIndex(0.39).value(), 1u);
  EXPECT_EQ(h.BinIndex(1.0).value(), 4u);
  EXPECT_FALSE(h.BinIndex(-0.01).ok());
  EXPECT_FALSE(h.BinIndex(1.01).ok());
}

TEST(HistogramTest, BinBounds) {
  Histogram h = Histogram::Create(4, 0.0, 2.0).value();
  EXPECT_DOUBLE_EQ(h.bin_lower(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_upper(0), 0.5);
  EXPECT_DOUBLE_EQ(h.bin_lower(3), 1.5);
  EXPECT_DOUBLE_EQ(h.bin_upper(3), 2.0);
}

TEST(HistogramTest, NormalizedCountsSumToOne) {
  Histogram h = Histogram::Create(3, 0.0, 3.0).value();
  h.AddAll({0.5, 1.5, 1.6, 2.5});
  auto norm = h.NormalizedCounts();
  double sum = 0.0;
  for (double v : norm) sum += v;
  EXPECT_DOUBLE_EQ(sum, 1.0);
  EXPECT_DOUBLE_EQ(norm[1], 0.5);
}

TEST(HistogramTest, NormalizedCountsEmptyIsAllZero) {
  Histogram h = Histogram::Create(3, 0.0, 1.0).value();
  for (double v : h.NormalizedCounts()) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(HistogramTest, MeanOfInRangeValues) {
  Histogram h = Histogram::Create(10, 0.0, 1.0).value();
  h.AddAll({0.2, 0.4, 5.0});  // 5.0 is overflow, excluded
  EXPECT_NEAR(h.Mean(), 0.3, 1e-12);
}

TEST(HistogramTest, CreateZeroBinsIsInvalidArgument) {
  EXPECT_EQ(Histogram::Create(0, 0.0, 1.0).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(HistogramTest, CreateInvertedOrEmptyRangeIsInvalidArgument) {
  // lo > hi.
  EXPECT_EQ(Histogram::Create(4, 1.0, 0.0).status().code(),
            StatusCode::kInvalidArgument);
  // lo == hi: zero-width bins cannot place any value.
  EXPECT_EQ(Histogram::Create(4, 0.5, 0.5).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(HistogramTest, CreateNanBoundIsInvalidArgument) {
  // !(lo < hi) also rejects NaN bounds.
  double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(Histogram::Create(4, nan, 1.0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Histogram::Create(4, 0.0, nan).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(HistogramTest, BinIndexOutsideRangeIsOutOfRange) {
  Histogram h = Histogram::Create(4, 0.0, 1.0).value();
  EXPECT_EQ(h.BinIndex(-0.1).status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(h.BinIndex(1.1).status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(h.BinIndex(std::numeric_limits<double>::quiet_NaN())
                .status()
                .code(),
            StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace sight
