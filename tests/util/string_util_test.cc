#include "util/string_util.h"

#include <gtest/gtest.h>

namespace sight {
namespace {

TEST(StrFormatTest, FormatsLikeStdPrintf) {
  EXPECT_EQ(StrFormat("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
  EXPECT_EQ(StrFormat("plain"), "plain");
}

TEST(StrFormatTest, HandlesLongOutput) {
  std::string long_arg(1000, 'a');
  std::string result = StrFormat("<%s>", long_arg.c_str());
  EXPECT_EQ(result.size(), 1002u);
  EXPECT_EQ(result.front(), '<');
  EXPECT_EQ(result.back(), '>');
}

TEST(JoinTest, JoinsWithSeparator) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(SplitTest, SplitsOnSeparator) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitTest, PreservesEmptyFields) {
  EXPECT_EQ(Split(",a,", ','), (std::vector<std::string>{"", "a", ""}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(TrimTest, StripsWhitespaceBothEnds) {
  EXPECT_EQ(Trim("  hello \t\n"), "hello");
  EXPECT_EQ(Trim("inner space"), "inner space");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(ToLowerTest, LowersAsciiOnly) {
  EXPECT_EQ(ToLower("AbC-9"), "abc-9");
  EXPECT_EQ(ToLower(""), "");
}

TEST(FormatDoubleTest, RespectsDigits) {
  EXPECT_EQ(FormatDouble(1.23456, 2), "1.23");
  EXPECT_EQ(FormatDouble(1.0, 0), "1");
}

TEST(FormatPercentTest, ConvertsFractions) {
  EXPECT_EQ(FormatPercent(0.25), "25%");
  EXPECT_EQ(FormatPercent(0.417, 1), "41.7%");
  EXPECT_EQ(FormatPercent(1.0), "100%");
}

}  // namespace
}  // namespace sight
