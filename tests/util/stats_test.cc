#include "util/stats.h"

#include <gtest/gtest.h>

namespace sight {
namespace {

TEST(SampleStatsTest, EmptyStatsAreZero) {
  SampleStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.StdDev(), 0.0);
  EXPECT_DOUBLE_EQ(s.Min(), 0.0);
  EXPECT_DOUBLE_EQ(s.Max(), 0.0);
}

TEST(SampleStatsTest, BasicMoments) {
  SampleStats s;
  s.AddAll({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
  EXPECT_DOUBLE_EQ(s.Mean(), 5.0);
  EXPECT_NEAR(s.StdDev(), 2.138, 1e-3);  // sample stddev
  EXPECT_DOUBLE_EQ(s.Min(), 2.0);
  EXPECT_DOUBLE_EQ(s.Max(), 9.0);
  EXPECT_DOUBLE_EQ(s.Sum(), 40.0);
  EXPECT_EQ(s.count(), 8u);
}

TEST(SampleStatsTest, SingleSampleStdDevZero) {
  SampleStats s;
  s.Add(3.0);
  EXPECT_DOUBLE_EQ(s.StdDev(), 0.0);
  EXPECT_DOUBLE_EQ(s.Mean(), 3.0);
}

TEST(SampleStatsTest, PercentilesInterpolate) {
  SampleStats s;
  s.AddAll({10.0, 20.0, 30.0, 40.0});
  EXPECT_DOUBLE_EQ(s.Percentile(0), 10.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 40.0);
  EXPECT_DOUBLE_EQ(s.Percentile(50), 25.0);
}

TEST(SampleStatsTest, PercentileAfterNewAddsIsRefreshed) {
  SampleStats s;
  s.AddAll({1.0, 2.0});
  EXPECT_DOUBLE_EQ(s.Percentile(100), 2.0);
  s.Add(10.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 10.0);
}

TEST(SampleStatsDeathTest, PercentileOutOfRange) {
  SampleStats s;
  s.Add(1.0);
  EXPECT_DEATH({ (void)s.Percentile(101.0); }, "check failed");
}

}  // namespace
}  // namespace sight
