#include "util/status.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace sight {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("x").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::NotFound("missing").message(), "missing");
}

TEST(StatusTest, ToStringIncludesCodeNameAndMessage) {
  Status s = Status::InvalidArgument("bad alpha");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad alpha");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusCodeTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInvalidArgument),
               "InvalidArgument");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kUnimplemented),
               "Unimplemented");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.status().message(), "nope");
}

TEST(ResultTest, ValueOrFallsBack) {
  Result<int> ok(7);
  Result<int> err(Status::Internal("x"));
  EXPECT_EQ(ok.value_or(-1), 7);
  EXPECT_EQ(err.value_or(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "hello");
}

TEST(ResultTest, ConstructingFromOkStatusBecomesInternalError) {
  Result<int> r(Status::OK());
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, ArrowOperatorOnValue) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
}

TEST(StatusTest, UpdateKeepsFirstError) {
  Status s;
  s.Update(Status::OK());
  EXPECT_TRUE(s.ok());
  s.Update(Status::NotFound("first"));
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "first");
  // A later error must not overwrite the first one.
  s.Update(Status::Internal("second"));
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "first");
  // Nor must a later OK clear it.
  s.Update(Status::OK());
  EXPECT_FALSE(s.ok());
}

TEST(StatusTest, UpdateAccumulatesOverLoop) {
  std::vector<Status> steps = {Status::OK(), Status::OutOfRange("bin 7"),
                               Status::OK(), Status::InvalidArgument("late")};
  Status s;
  for (const Status& step : steps) s.Update(step);
  EXPECT_EQ(s.code(), StatusCode::kOutOfRange);
  EXPECT_EQ(s.message(), "bin 7");
}

TEST(StatusTest, IgnoreErrorDiscardsExplicitly) {
  // The sanctioned way to drop a [[nodiscard]] Status; must compile
  // without warnings and do nothing.
  Status::Internal("dropped on purpose").IgnoreError();
}

Status FailingOperation() { return Status::OutOfRange("boom"); }

Status UsesReturnNotOk() {
  // Exercises the legacy alias; new code uses SIGHT_RETURN_IF_ERROR.
  SIGHT_RETURN_NOT_OK(FailingOperation());
  return Status::OK();
}

TEST(StatusMacroTest, LegacyReturnNotOkAliasPropagates) {
  Status s = UsesReturnNotOk();
  EXPECT_EQ(s.code(), StatusCode::kOutOfRange);
}

Status UsesReturnIfError(bool fail) {
  SIGHT_RETURN_IF_ERROR(fail ? FailingOperation() : Status::OK());
  return Status::AlreadyExists("reached end");
}

TEST(StatusMacroTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(UsesReturnIfError(true).code(), StatusCode::kOutOfRange);
  // On OK the macro must fall through to the rest of the function.
  EXPECT_EQ(UsesReturnIfError(false).code(), StatusCode::kAlreadyExists);
}

Result<int> ProducesValue() { return 10; }
Result<int> ProducesError() { return Status::NotFound("no value"); }

Status UsesAssignOrReturn(bool fail, int* out) {
  SIGHT_ASSIGN_OR_RETURN(int v, fail ? ProducesError() : ProducesValue());
  *out = v;
  return Status::OK();
}

TEST(StatusMacroTest, AssignOrReturnAssignsOnSuccess) {
  int out = 0;
  ASSERT_TRUE(UsesAssignOrReturn(false, &out).ok());
  EXPECT_EQ(out, 10);
}

TEST(StatusMacroTest, AssignOrReturnPropagatesError) {
  int out = 0;
  Status s = UsesAssignOrReturn(true, &out);
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(out, 0);
}

TEST(ResultDeathTest, ValueOnErrorAborts) {
  Result<int> r(Status::Internal("fatal"));
  EXPECT_DEATH({ (void)r.value(); }, "errored Result");
}

}  // namespace
}  // namespace sight
