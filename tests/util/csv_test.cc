#include "util/csv.h"

#include <sstream>

#include <gtest/gtest.h>

namespace sight {
namespace {

TEST(CsvEscapeTest, PlainFieldsUnchanged) {
  EXPECT_EQ(CsvEscape("hello"), "hello");
  EXPECT_EQ(CsvEscape(""), "");
}

TEST(CsvEscapeTest, QuotesFieldsWithCommas) {
  EXPECT_EQ(CsvEscape("a,b"), "\"a,b\"");
}

TEST(CsvEscapeTest, DoublesEmbeddedQuotes) {
  EXPECT_EQ(CsvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvEscapeTest, QuotesNewlines) {
  EXPECT_EQ(CsvEscape("a\nb"), "\"a\nb\"");
}

TEST(CsvWriterTest, WritesHeaderAndRows) {
  CsvWriter w({"x", "y"});
  w.AddRow({"1", "2"});
  w.AddRow({"a,b", "3"});
  EXPECT_EQ(w.ToString(), "x,y\n1,2\n\"a,b\",3\n");
  EXPECT_EQ(w.num_rows(), 2u);
}

TEST(CsvWriterTest, EmptyWriterEmitsHeaderOnly) {
  CsvWriter w({"only"});
  EXPECT_EQ(w.ToString(), "only\n");
}

std::vector<std::vector<std::string>> ReadAll(const std::string& text,
                                              Status* status = nullptr) {
  std::istringstream in(text);
  CsvReader reader(&in);
  std::vector<std::vector<std::string>> records;
  std::vector<std::string> record;
  while (reader.Next(&record)) records.push_back(record);
  if (status != nullptr) *status = reader.status();
  return records;
}

TEST(CsvReaderTest, SimpleRecords) {
  auto records = ReadAll("a,b\n1,2\n");
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0], (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(records[1], (std::vector<std::string>{"1", "2"}));
}

TEST(CsvReaderTest, MissingTrailingNewline) {
  auto records = ReadAll("a,b\n1,2");
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[1], (std::vector<std::string>{"1", "2"}));
}

TEST(CsvReaderTest, QuotedCommasAndQuotes) {
  auto records = ReadAll("\"a,b\",\"say \"\"hi\"\"\"\n");
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0], (std::vector<std::string>{"a,b", "say \"hi\""}));
}

TEST(CsvReaderTest, QuotedNewlines) {
  auto records = ReadAll("\"line1\nline2\",x\nnext,y\n");
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0][0], "line1\nline2");
  EXPECT_EQ(records[1][0], "next");
}

TEST(CsvReaderTest, CrLfLineEndings) {
  auto records = ReadAll("a,b\r\n1,2\r\n");
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[1], (std::vector<std::string>{"1", "2"}));
}

TEST(CsvReaderTest, EmptyFieldsPreserved) {
  auto records = ReadAll(",a,\n");
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0], (std::vector<std::string>{"", "a", ""}));
}

TEST(CsvReaderTest, EmptyInputYieldsNoRecords) {
  Status status;
  auto records = ReadAll("", &status);
  EXPECT_TRUE(records.empty());
  EXPECT_TRUE(status.ok());
}

TEST(CsvReaderTest, UnterminatedQuoteIsError) {
  Status status;
  auto records = ReadAll("\"oops\n", &status);
  EXPECT_TRUE(records.empty());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(CsvReaderTest, DataAfterClosingQuoteIsError) {
  Status status;
  auto records = ReadAll("\"a\"junk,b\n", &status);
  EXPECT_TRUE(records.empty());
  EXPECT_FALSE(status.ok());
}

TEST(CsvReaderTest, TruncatedQuotedFieldIsInvalidArgument) {
  // EOF in the middle of a quoted field — a file cut off mid-write.
  std::istringstream in("user_id,name\n1,\"trunca");
  CsvReader reader(&in);
  std::vector<std::string> record;
  ASSERT_TRUE(reader.Next(&record));  // header is fine
  EXPECT_FALSE(reader.Next(&record));
  EXPECT_EQ(reader.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(reader.status().message().find("unterminated"),
            std::string::npos);
}

TEST(CsvReaderTest, DataAfterClosingQuoteIsInvalidArgument) {
  std::istringstream in("\"ok\"junk,2\n");
  CsvReader reader(&in);
  std::vector<std::string> record;
  EXPECT_FALSE(reader.Next(&record));
  EXPECT_EQ(reader.status().code(), StatusCode::kInvalidArgument);
}

TEST(CsvReaderTest, ErroredReaderStaysErrored) {
  // After a malformed record the reader must refuse further reads and
  // keep reporting the first error (no silent resync mid-file).
  std::istringstream in("\"bad\nmore,rows\n");
  CsvReader reader(&in);
  std::vector<std::string> record;
  EXPECT_FALSE(reader.Next(&record));
  Status first = reader.status();
  EXPECT_EQ(first.code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(reader.Next(&record));
  EXPECT_EQ(reader.status(), first);
}

TEST(CsvReaderTest, RoundTripWithWriter) {
  CsvWriter w({"name", "note"});
  w.AddRow({"O'Brien, Jr", "said \"hello\"\nthen left"});
  w.AddRow({"plain", ""});
  Status status;
  auto records = ReadAll(w.ToString(), &status);
  ASSERT_TRUE(status.ok());
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[1][0], "O'Brien, Jr");
  EXPECT_EQ(records[1][1], "said \"hello\"\nthen left");
  EXPECT_EQ(records[2], (std::vector<std::string>{"plain", ""}));
}

}  // namespace
}  // namespace sight
