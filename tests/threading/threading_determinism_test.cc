// Concurrency tests for the parallel hot path of the risk pipeline
// (labeled `threading` in ctest so TSan runs can target them:
// `ctest -L threading` in a -DSIGHT_SANITIZE=thread build).
//
// The contract under test: every parallel phase — NS batches,
// similarity-matrix construction, per-pool learner setup, per-class
// harmonic solves — produces results bitwise identical to the serial
// path, for any thread count.

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/risk_engine.h"
#include "learning/multiclass_harmonic.h"
#include "sim/facebook_generator.h"
#include "sim/owner_model.h"
#include "similarity/network_similarity.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace sight {
namespace {

sim::OwnerDataset MakeDataset(size_t strangers, uint64_t seed) {
  sim::GeneratorConfig config;
  config.num_friends = 40;
  config.num_strangers = strangers;
  config.num_communities = 4;
  auto gen = sim::FacebookGenerator::Create(config).value();
  Rng rng(seed);
  return gen.Generate({sim::Gender::kFemale, sim::Locale::kIT}, &rng).value();
}

// Runs a full owner assessment with the given engine threading knobs;
// everything else (dataset, attitude, run seed) is pinned.
RiskReport Assess(const sim::OwnerDataset& dataset, ClassifierKind classifier,
                  size_t num_threads, ThreadPool* shared_pool) {
  RiskEngineConfig config;
  config.classifier = classifier;
  config.learner.sparsify_top_k = 8;
  config.num_threads = num_threads;
  config.thread_pool = shared_pool;
  auto engine = RiskEngine::Create(config).value();

  Rng attitude_rng(4242);
  sim::OwnerAttitude attitude = sim::SampleOwnerAttitude(&attitude_rng);
  auto oracle = sim::OwnerModel::Create(attitude, &dataset.profiles,
                                        &dataset.visibility);
  Rng run_rng(77);
  return engine
      .AssessOwner(dataset.graph, dataset.profiles, dataset.visibility,
                   dataset.owner, &*oracle, &run_rng)
      .value();
}

void ExpectBitwiseEqualReports(const RiskReport& a, const RiskReport& b) {
  ASSERT_EQ(a.assessment.strangers.size(), b.assessment.strangers.size());
  for (size_t i = 0; i < a.assessment.strangers.size(); ++i) {
    const StrangerAssessment& sa = a.assessment.strangers[i];
    const StrangerAssessment& sb = b.assessment.strangers[i];
    EXPECT_EQ(sa.stranger, sb.stranger);
    // Bitwise equality, not EXPECT_NEAR: the threaded phases must not
    // reorder any floating-point reduction.
    EXPECT_EQ(sa.predicted_score, sb.predicted_score) << "stranger " << i;
    EXPECT_EQ(sa.predicted_label, sb.predicted_label);
    EXPECT_EQ(sa.network_similarity, sb.network_similarity);
    EXPECT_EQ(sa.benefit, sb.benefit);
  }
  EXPECT_EQ(a.assessment.total_queries, b.assessment.total_queries);
  EXPECT_EQ(a.assessment.validation_matches, b.assessment.validation_matches);
  EXPECT_EQ(a.pool_sizes, b.pool_sizes);
}

TEST(ThreadingDeterminismTest, HarmonicPredictionsIdenticalAcrossThreadCounts) {
  sim::OwnerDataset dataset = MakeDataset(220, 9001);
  RiskReport serial = Assess(dataset, ClassifierKind::kHarmonic, 1, nullptr);
  ASSERT_GT(serial.num_strangers, 0u);
  for (size_t threads : {2u, 4u, 7u}) {
    RiskReport threaded =
        Assess(dataset, ClassifierKind::kHarmonic, threads, nullptr);
    ExpectBitwiseEqualReports(serial, threaded);
  }
}

TEST(ThreadingDeterminismTest, SharedCallerPoolMatchesSerial) {
  sim::OwnerDataset dataset = MakeDataset(180, 31337);
  RiskReport serial = Assess(dataset, ClassifierKind::kHarmonic, 1, nullptr);
  ThreadPool shared(4);
  // The same caller-owned pool reused across engines/owners (the
  // multi-owner serving setup) must not change results either.
  for (int round = 0; round < 3; ++round) {
    RiskReport threaded =
        Assess(dataset, ClassifierKind::kHarmonic, 1, &shared);
    ExpectBitwiseEqualReports(serial, threaded);
  }
}

TEST(ThreadingDeterminismTest, MulticlassCmnIdenticalAcrossThreadCounts) {
  // kHarmonicCmn adds the parallel per-class solves on top of the shared
  // construction phases.
  sim::OwnerDataset dataset = MakeDataset(150, 555);
  RiskReport serial =
      Assess(dataset, ClassifierKind::kHarmonicCmn, 1, nullptr);
  RiskReport threaded =
      Assess(dataset, ClassifierKind::kHarmonicCmn, 4, nullptr);
  ExpectBitwiseEqualReports(serial, threaded);
}

TEST(ThreadingDeterminismTest, MulticlassClassScoresMatchSerial) {
  SimilarityMatrix w(30);
  uint64_t state = 12345;
  auto next_unit = [&state]() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<double>(state >> 11) * 0x1.0p-53;
  };
  for (size_t i = 0; i < 30; ++i) {
    for (size_t j = i + 1; j < 30; ++j) {
      if (next_unit() < 0.3) w.Set(i, j, 0.1 + next_unit());
    }
  }
  LabeledSet labeled;
  labeled.Add(0, 1.0);
  labeled.Add(10, 2.0);
  labeled.Add(20, 3.0);
  labeled.Add(25, 1.0);

  MulticlassHarmonicConfig serial_config;
  auto serial = MulticlassHarmonicClassifier::Create(serial_config).value();
  auto serial_scores = serial.ClassScores(w, labeled).value();

  ThreadPool pool(3);
  MulticlassHarmonicConfig threaded_config;
  threaded_config.thread_pool = &pool;
  auto threaded =
      MulticlassHarmonicClassifier::Create(threaded_config).value();
  auto threaded_scores = threaded.ClassScores(w, labeled).value();

  ASSERT_EQ(serial_scores.size(), threaded_scores.size());
  for (size_t u = 0; u < serial_scores.size(); ++u) {
    for (size_t c = 0; c < serial_scores[u].size(); ++c) {
      EXPECT_EQ(serial_scores[u][c], threaded_scores[u][c]);
    }
  }
}

TEST(ThreadingDeterminismTest, NetworkSimilarityBatchMatchesSerial) {
  sim::OwnerDataset dataset = MakeDataset(300, 2024);
  auto ns = NetworkSimilarity::Create(NetworkSimilarityConfig{}).value();
  std::vector<double> serial =
      ns.ComputeBatch(dataset.graph, dataset.owner, dataset.strangers);
  ThreadPool pool(4);
  std::vector<double> threaded =
      ns.ComputeBatch(dataset.graph, dataset.owner, dataset.strangers, &pool);
  ASSERT_EQ(serial.size(), threaded.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], threaded[i]) << "stranger " << i;
  }
}

TEST(ThreadingStressTest, ParallelForHandlesAwkwardShapes) {
  // The shapes ParallelFor sees in the pipeline: zero-length (empty pool
  // set), n < num_threads (3 classes on a big pool), and n >> threads.
  ThreadPool pool(6);
  for (size_t n : {0u, 1u, 5u, 6u, 13u, 500u}) {
    std::vector<std::atomic<int>> hits(n);
    ParallelFor(&pool, n, [&hits](size_t i) { hits[i].fetch_add(1); });
    for (size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1);
  }
}

TEST(ThreadingStressTest, ConcurrentEnginesOnOneSharedPool) {
  // Two engine assessments driven from different threads sharing one
  // pool: ParallelFor's Wait() may over-wait on foreign tasks but must
  // never drop or duplicate work.
  sim::OwnerDataset a = MakeDataset(120, 1);
  sim::OwnerDataset b = MakeDataset(120, 2);
  RiskReport serial_a = Assess(a, ClassifierKind::kHarmonic, 1, nullptr);
  RiskReport serial_b = Assess(b, ClassifierKind::kHarmonic, 1, nullptr);

  ThreadPool shared(4);
  RiskReport threaded_a;
  RiskReport threaded_b;
  std::thread ta([&] {
    threaded_a = Assess(a, ClassifierKind::kHarmonic, 1, &shared);
  });
  std::thread tb([&] {
    threaded_b = Assess(b, ClassifierKind::kHarmonic, 1, &shared);
  });
  ta.join();
  tb.join();
  ExpectBitwiseEqualReports(serial_a, threaded_a);
  ExpectBitwiseEqualReports(serial_b, threaded_b);
}

}  // namespace
}  // namespace sight
