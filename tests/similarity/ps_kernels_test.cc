// The batched/tiled kernels must be bitwise drop-ins for the per-pair
// scalar PS: every dispatch variant's lanes, every tail length, every
// tile geometry, and the parallel driver have to reproduce
// ProfileSimilarity::Compute exactly — including kMissingCode and
// kUnknownValue lanes and codes outside the frequency dictionary.

#include "similarity/ps_kernels.h"

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "graph/profile.h"
#include "graph/profile_codec.h"
#include "sim/facebook_generator.h"
#include "similarity/profile_similarity.h"
#include "util/thread_pool.h"

namespace sight {
namespace {

using sim::FacebookGenerator;
using sim::Gender;
using sim::GeneratorConfig;
using sim::Locale;
using sim::OwnerDataset;

ProfileSchema TestSchema() {
  return ProfileSchema::Create({"gender", "locale", "last_name"}).value();
}

// Small population with skewed frequencies so min(fa, fb) picks both
// operands across pairs.
ProfileTable TestPopulation() {
  ProfileTable table(TestSchema());
  auto set = [&](UserId u, std::vector<std::string> values) {
    Profile p;
    p.values = std::move(values);
    EXPECT_TRUE(table.Set(u, p).ok());
  };
  set(0, {"male", "tr_TR", "Yilmaz"});
  set(1, {"male", "tr_TR", "Yilmaz"});
  set(2, {"male", "en_US", "Smith"});
  set(3, {"female", "en_US", "Smith"});
  set(4, {"female", "", "Nowak"});
  return table;
}

OwnerDataset MakeDataset(uint64_t seed, size_t strangers) {
  GeneratorConfig config;
  config.num_friends = 30;
  config.num_strangers = strangers;
  config.num_communities = 3;
  auto gen = FacebookGenerator::Create(config).value();
  Rng rng(seed);
  return gen.Generate({Gender::kFemale, Locale::kUS}, &rng).value();
}

TEST(PsKernelsTest, DispatchReportsAKnownName) {
  std::string name = ps_kernels::DispatchName(ps_kernels::ActiveDispatch());
  EXPECT_TRUE(name == "scalar" || name == "sse2" || name == "avx2") << name;
}

// Raw code rows exercising every lane state: matching codes, differing
// in-dictionary codes, kMissingCode on either side, kUnknownValue, and
// codes just past the frequency array. Every batch size from empty up
// past the widest lane group covers the 2- and 4-wide tails.
TEST(PsKernelsTest, ComputeBatchMatchesScalarOnRawRows) {
  ProfileTable table = TestPopulation();
  EncodedProfileTable enc =
      EncodedProfileTable::Build(table, {0, 1, 2, 3, 4});
  ValueFrequencyTable freqs = ValueFrequencyTable::Build(enc);
  auto ps = ProfileSimilarity::Create(table.schema()).value();
  const size_t stride = enc.num_attributes();

  const uint32_t unknown = ProfileCodec::kUnknownValue;
  const uint32_t missing = ProfileCodec::kMissingCode;
  // a-rows: a fully-present row, one with a missing attribute, one fully
  // missing, and one holding an out-of-dictionary and a past-the-end
  // code.
  const std::vector<std::vector<uint32_t>> a_rows = {
      {1, 1, 1},
      {2, missing, 2},
      {missing, missing, missing},
      {unknown, 2, 99},
  };

  for (size_t count : {size_t{0}, size_t{1}, size_t{2}, size_t{3}, size_t{4},
                       size_t{5}, size_t{6}, size_t{7}, size_t{9}, size_t{16},
                       size_t{31}, size_t{70}}) {
    // b-rows cycling through in-dictionary, missing, unknown, and
    // past-the-end codes in every attribute position.
    std::vector<uint32_t> b(count * stride);
    for (size_t k = 0; k < count; ++k) {
      for (size_t a = 0; a < stride; ++a) {
        switch ((k + a) % 6) {
          case 0: b[k * stride + a] = missing; break;
          case 1: b[k * stride + a] = 1; break;
          case 2: b[k * stride + a] = 2; break;
          case 3: b[k * stride + a] = unknown; break;
          case 4: b[k * stride + a] = 3; break;
          default: b[k * stride + a] = 77; break;  // past the dictionary
        }
      }
    }
    std::vector<double> out(count, -1.0);
    for (const std::vector<uint32_t>& a_row : a_rows) {
      ps_kernels::ComputeBatch(a_row.data(), b.data(), stride, count, ps,
                               freqs, out.data());
      for (size_t k = 0; k < count; ++k) {
        EXPECT_EQ(out[k],
                  ps.Compute(a_row.data(), b.data() + k * stride, freqs))
            << "count " << count << " row " << k;
      }
    }
  }
}

TEST(PsKernelsTest, TilesPartitionTheTriangleExactly) {
  for (size_t n : {size_t{0}, size_t{1}, size_t{2}, size_t{3}, size_t{17},
                   size_t{64}, size_t{65}}) {
    for (ps_kernels::TileShape shape :
         {ps_kernels::TileShape{1, 1}, ps_kernels::TileShape{4, 5},
          ps_kernels::TileShape{64, 8}, ps_kernels::TileShape{100, 100}}) {
      std::vector<ps_kernels::PairTile> tiles =
          ps_kernels::MakeTiles(n, shape);
      std::vector<int> covered(n * n, 0);
      size_t pair_count_sum = 0;
      for (const ps_kernels::PairTile& tile : tiles) {
        pair_count_sum += ps_kernels::TilePairCount(tile);
        for (size_t i = tile.row_begin; i < tile.row_end; ++i) {
          for (size_t j = tile.col_begin;
               j < std::min(tile.col_end, i); ++j) {
            ++covered[i * n + j];
          }
        }
      }
      size_t expected = n > 1 ? n * (n - 1) / 2 : 0;
      EXPECT_EQ(pair_count_sum, expected)
          << "n " << n << " shape " << shape.rows << "x" << shape.cols;
      for (size_t i = 0; i < n; ++i) {
        for (size_t j = 0; j < n; ++j) {
          EXPECT_EQ(covered[i * n + j], j < i ? 1 : 0)
              << "pair (" << i << ", " << j << ") n " << n;
        }
      }
    }
  }
}

// Reference fill: the plain per-pair scalar loop the kernels replace.
SimilarityMatrix ReferenceFill(const EncodedProfileTable& enc,
                               const ProfileSimilarity& ps,
                               const ValueFrequencyTable& freqs) {
  SimilarityMatrix out(enc.num_rows());
  for (size_t i = 0; i < enc.num_rows(); ++i) {
    for (size_t j = 0; j < i; ++j) {
      out.Set(i, j, ps.Compute(enc, i, j, freqs));
    }
  }
  return out;
}

void ExpectBitwiseEqual(const SimilarityMatrix& got,
                        const SimilarityMatrix& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    for (size_t j = 0; j < i; ++j) {
      EXPECT_EQ(got.Get(i, j), want.Get(i, j))
          << "pair (" << i << ", " << j << ")";
    }
  }
}

TEST(PsKernelsTest, FillPairwiseMatchesScalarReference) {
  OwnerDataset ds = MakeDataset(311, 140);
  EncodedProfileTable enc =
      EncodedProfileTable::Build(ds.profiles, ds.strangers);
  ValueFrequencyTable freqs = ValueFrequencyTable::Build(enc);
  auto ps = ProfileSimilarity::Create(ds.profiles.schema()).value();

  SimilarityMatrix want = ReferenceFill(enc, ps, freqs);
  SimilarityMatrix got(enc.num_rows());
  ps_kernels::FillStats stats =
      ps_kernels::FillPairwise(enc, ps, freqs, nullptr, &got);
  EXPECT_EQ(stats.dispatch, ps_kernels::ActiveDispatch());
  EXPECT_GT(stats.tiles, 0u);
  EXPECT_FALSE(stats.parallel);  // no pool given
  ExpectBitwiseEqual(got, want);
}

// Degenerate tile geometries hit every boundary case: single-pair
// tiles, shapes that straddle the diagonal, and row blocks that do not
// divide the pool size.
TEST(PsKernelsTest, FillPairwiseMatchesUnderExplicitTileShapes) {
  OwnerDataset ds = MakeDataset(313, 37);
  EncodedProfileTable enc =
      EncodedProfileTable::Build(ds.profiles, ds.strangers);
  ValueFrequencyTable freqs = ValueFrequencyTable::Build(enc);
  auto ps = ProfileSimilarity::Create(ds.profiles.schema()).value();

  SimilarityMatrix want = ReferenceFill(enc, ps, freqs);
  for (ps_kernels::TileShape shape :
       {ps_kernels::TileShape{1, 1}, ps_kernels::TileShape{4, 5},
        ps_kernels::TileShape{3, 8}, ps_kernels::TileShape{64, 512}}) {
    SimilarityMatrix got(enc.num_rows());
    ps_kernels::FillStats stats =
        ps_kernels::FillPairwise(enc, ps, freqs, nullptr, &got, shape);
    EXPECT_EQ(stats.tile.rows, shape.rows);
    EXPECT_EQ(stats.tile.cols, shape.cols);
    ExpectBitwiseEqual(got, want);
  }
}

TEST(PsKernelsTest, FillPairwiseAcrossThreadsMatchesSerial) {
  OwnerDataset ds = MakeDataset(317, 120);
  EncodedProfileTable enc =
      EncodedProfileTable::Build(ds.profiles, ds.strangers);
  ValueFrequencyTable freqs = ValueFrequencyTable::Build(enc);
  auto ps = ProfileSimilarity::Create(ds.profiles.schema()).value();

  SimilarityMatrix serial(enc.num_rows());
  ps_kernels::FillPairwise(enc, ps, freqs, nullptr, &serial,
                           ps_kernels::TileShape{8, 16});
  ThreadPool pool(4);
  SimilarityMatrix threaded(enc.num_rows());
  ps_kernels::FillPairwise(enc, ps, freqs, &pool, &threaded,
                           ps_kernels::TileShape{8, 16});
  ExpectBitwiseEqual(threaded, serial);
}

TEST(PsKernelsTest, EmptyAndSingletonPools) {
  ProfileTable table = TestPopulation();
  auto ps = ProfileSimilarity::Create(table.schema()).value();
  for (std::vector<UserId> users :
       {std::vector<UserId>{}, std::vector<UserId>{2}}) {
    EncodedProfileTable enc = EncodedProfileTable::Build(table, users);
    ValueFrequencyTable freqs = ValueFrequencyTable::Build(enc);
    SimilarityMatrix out(enc.num_rows());
    ps_kernels::FillStats stats =
        ps_kernels::FillPairwise(enc, ps, freqs, nullptr, &out);
    EXPECT_EQ(stats.tiles, 0u) << users.size() << " users";
  }
}

TEST(PsKernelsTest, DefaultTileShapeIsSane) {
  for (size_t attrs : {size_t{1}, size_t{3}, size_t{40}, size_t{5000}}) {
    ps_kernels::TileShape shape = ps_kernels::DefaultTileShape(attrs);
    EXPECT_GT(shape.rows, 0u) << attrs;
    EXPECT_GE(shape.cols, 32u) << attrs;
    EXPECT_LE(shape.cols, 512u) << attrs;
  }
}

}  // namespace
}  // namespace sight
