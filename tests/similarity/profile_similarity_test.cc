#include "similarity/profile_similarity.h"

#include <gtest/gtest.h>

#include "graph/profile.h"

namespace sight {
namespace {

ProfileSchema TestSchema() {
  return ProfileSchema::Create({"gender", "locale", "last_name"}).value();
}

// Population: 0,1 male tr Yilmaz; 2 male us Smith; 3 female us Smith.
ProfileTable TestPopulation() {
  ProfileTable table(TestSchema());
  auto set = [&](UserId u, std::vector<std::string> values) {
    Profile p;
    p.values = std::move(values);
    EXPECT_TRUE(table.Set(u, p).ok());
  };
  set(0, {"male", "tr_TR", "Yilmaz"});
  set(1, {"male", "tr_TR", "Yilmaz"});
  set(2, {"male", "en_US", "Smith"});
  set(3, {"female", "en_US", "Smith"});
  return table;
}

TEST(ValueFrequencyTableTest, ComputesRelativeFrequencies) {
  ProfileTable table = TestPopulation();
  auto freqs = ValueFrequencyTable::Build(table, {0, 1, 2, 3});
  EXPECT_DOUBLE_EQ(freqs.Frequency(0, "male"), 0.75);
  EXPECT_DOUBLE_EQ(freqs.Frequency(0, "female"), 0.25);
  EXPECT_DOUBLE_EQ(freqs.Frequency(1, "tr_TR"), 0.5);
  EXPECT_DOUBLE_EQ(freqs.Frequency(2, "Nowak"), 0.0);
  EXPECT_EQ(freqs.Support(0), 4u);
  EXPECT_EQ(freqs.NumDistinct(1), 2u);
}

TEST(ValueFrequencyTableTest, MissingValuesExcluded) {
  ProfileTable table(TestSchema());
  Profile p;
  p.values = {"male", "", "Smith"};
  ASSERT_TRUE(table.Set(0, p).ok());
  p.values = {"female", "en_US", "Smith"};
  ASSERT_TRUE(table.Set(1, p).ok());
  auto freqs = ValueFrequencyTable::Build(table, {0, 1});
  EXPECT_EQ(freqs.Support(1), 1u);
  EXPECT_DOUBLE_EQ(freqs.Frequency(1, "en_US"), 1.0);
}

TEST(ValueFrequencyTableTest, EmptyPopulation) {
  ProfileTable table = TestPopulation();
  auto freqs = ValueFrequencyTable::Build(table, {});
  EXPECT_DOUBLE_EQ(freqs.Frequency(0, "male"), 0.0);
  EXPECT_EQ(freqs.Support(0), 0u);
}

TEST(ProfileSimilarityTest, IdenticalProfilesScoreOne) {
  ProfileTable table = TestPopulation();
  auto freqs = ValueFrequencyTable::Build(table, {0, 1, 2, 3});
  auto ps = ProfileSimilarity::Create(table.schema()).value();
  EXPECT_DOUBLE_EQ(ps.Compute(table, 0, 1, freqs), 1.0);
}

TEST(ProfileSimilarityTest, CompletelyDifferentRareValuesScoreLow) {
  ProfileTable table = TestPopulation();
  auto freqs = ValueFrequencyTable::Build(table, {0, 1, 2, 3});
  auto ps = ProfileSimilarity::Create(table.schema()).value();
  // 1 (male/tr/Yilmaz) vs 3 (female/us/Smith): no identical attribute.
  double sim = ps.Compute(table, 1, 3, freqs);
  EXPECT_GT(sim, 0.0);  // frequency-based partial credit
  EXPECT_LT(sim, 0.5);
}

TEST(ProfileSimilarityTest, PartialMatchBetweenExtremes) {
  ProfileTable table = TestPopulation();
  auto freqs = ValueFrequencyTable::Build(table, {0, 1, 2, 3});
  auto ps = ProfileSimilarity::Create(table.schema()).value();
  double same = ps.Compute(table, 0, 1, freqs);
  double share_gender = ps.Compute(table, 0, 2, freqs);  // only gender same
  double nothing_same = ps.Compute(table, 0, 3, freqs);
  EXPECT_GT(same, share_gender);
  EXPECT_GT(share_gender, nothing_same);
}

TEST(ProfileSimilarityTest, DifferentCommonValuesBeatDifferentRareValues) {
  // Two strangers differing on a *common* value pair should be more
  // similar than two differing on rare values (Section III-C semantics).
  ProfileTable table(TestSchema());
  auto set = [&](UserId u, std::vector<std::string> values) {
    Profile p;
    p.values = std::move(values);
    EXPECT_TRUE(table.Set(u, p).ok());
  };
  // 8 users: gender split 4/4 (common values), last names mostly unique.
  for (UserId u = 0; u < 8; ++u) {
    set(u, {u < 4 ? "male" : "female", "en_US",
            u < 6 ? "Name" + std::to_string(u) : "Shared"});
  }
  auto freqs =
      ValueFrequencyTable::Build(table, {0, 1, 2, 3, 4, 5, 6, 7});
  auto ps = ProfileSimilarity::Create(table.schema()).value();
  // Attribute similarity for male vs female = min(0.5, 0.5) = 0.5;
  // for two unique names = min(1/8, 1/8) = 0.125.
  EXPECT_DOUBLE_EQ(freqs.Frequency(0, "male"), 0.5);
  Profile a = table.Get(0);
  Profile b = table.Get(4);
  // a/b differ in gender (common) and name (rare), share locale.
  double sim = ps.Compute(a, b, freqs);
  double expected = (0.5 + 1.0 + 0.125) / 3.0;
  EXPECT_NEAR(sim, expected, 1e-12);
}

TEST(ProfileSimilarityTest, MissingValuesContributeZero) {
  ProfileTable table(TestSchema());
  Profile a;
  a.values = {"male", "", "Smith"};
  Profile b;
  b.values = {"male", "en_US", "Smith"};
  ASSERT_TRUE(table.Set(0, a).ok());
  ASSERT_TRUE(table.Set(1, b).ok());
  auto freqs = ValueFrequencyTable::Build(table, {0, 1});
  auto ps = ProfileSimilarity::Create(table.schema()).value();
  // locale contributes 0 (missing on a): (1 + 0 + 1) / 3.
  EXPECT_NEAR(ps.Compute(table, 0, 1, freqs), 2.0 / 3.0, 1e-12);
}

TEST(ProfileSimilarityTest, WeightsChangeContribution) {
  ProfileTable table = TestPopulation();
  auto freqs = ValueFrequencyTable::Build(table, {0, 1, 2, 3});
  // All weight on gender.
  auto ps = ProfileSimilarity::Create(table.schema(), {1.0, 0.0, 0.0}).value();
  EXPECT_DOUBLE_EQ(ps.Compute(table, 0, 2, freqs), 1.0);  // both male
}

TEST(ProfileSimilarityTest, CreateValidatesWeights) {
  ProfileSchema schema = TestSchema();
  EXPECT_FALSE(ProfileSimilarity::Create(schema, {1.0}).ok());
  EXPECT_FALSE(ProfileSimilarity::Create(schema, {1.0, -1.0, 0.0}).ok());
  EXPECT_FALSE(ProfileSimilarity::Create(schema, {0.0, 0.0, 0.0}).ok());
  EXPECT_TRUE(ProfileSimilarity::Create(schema, {2.0, 1.0, 1.0}).ok());
}

TEST(ProfileSimilarityTest, WeightsAreNormalized) {
  ProfileSchema schema = TestSchema();
  auto ps = ProfileSimilarity::Create(schema, {2.0, 1.0, 1.0}).value();
  const auto& w = ps.normalized_weights();
  EXPECT_DOUBLE_EQ(w[0], 0.5);
  EXPECT_DOUBLE_EQ(w[1], 0.25);
  EXPECT_DOUBLE_EQ(w[2], 0.25);
}

TEST(ProfileSimilarityTest, EmptySchemaRejected) {
  ProfileSchema schema = ProfileSchema::Create({}).value();
  EXPECT_FALSE(ProfileSimilarity::Create(schema).ok());
}

TEST(ProfileSimilarityTest, SymmetricInProfiles) {
  ProfileTable table = TestPopulation();
  auto freqs = ValueFrequencyTable::Build(table, {0, 1, 2, 3});
  auto ps = ProfileSimilarity::Create(table.schema()).value();
  EXPECT_DOUBLE_EQ(ps.Compute(table, 1, 3, freqs),
                   ps.Compute(table, 3, 1, freqs));
}

}  // namespace
}  // namespace sight
