#include "similarity/network_similarity.h"

#include <gtest/gtest.h>

#include "graph/social_graph.h"

namespace sight {
namespace {

// Builds an owner (0) and a stranger (1) with `mutual` shared friends; the
// friends form `internal_edges` edges among themselves (added greedily).
SocialGraph MutualFixture(size_t mutual, size_t internal_edges) {
  SocialGraph g(2 + mutual);
  for (size_t i = 0; i < mutual; ++i) {
    UserId f = static_cast<UserId>(2 + i);
    EXPECT_TRUE(g.AddEdge(0, f).ok());
    EXPECT_TRUE(g.AddEdge(1, f).ok());
  }
  size_t added = 0;
  for (size_t i = 0; i < mutual && added < internal_edges; ++i) {
    for (size_t j = i + 1; j < mutual && added < internal_edges; ++j) {
      EXPECT_TRUE(g.AddEdge(static_cast<UserId>(2 + i),
                            static_cast<UserId>(2 + j))
                      .ok());
      ++added;
    }
  }
  return g;
}

NetworkSimilarity DefaultNs() {
  return NetworkSimilarity::Create(NetworkSimilarityConfig{}).value();
}

TEST(NetworkSimilarityConfigTest, ValidatesRanges) {
  NetworkSimilarityConfig bad;
  bad.mutual_weight = 1.5;
  EXPECT_FALSE(NetworkSimilarity::Create(bad).ok());
  bad.mutual_weight = -0.1;
  EXPECT_FALSE(NetworkSimilarity::Create(bad).ok());
  bad = {};
  bad.saturation = 0.0;
  EXPECT_FALSE(NetworkSimilarity::Create(bad).ok());
  EXPECT_TRUE(NetworkSimilarity::Create(NetworkSimilarityConfig{}).ok());
}

TEST(NetworkSimilarityTest, ZeroWithoutMutualFriends) {
  SocialGraph g(4);
  ASSERT_TRUE(g.AddEdge(0, 2).ok());
  ASSERT_TRUE(g.AddEdge(1, 3).ok());
  EXPECT_DOUBLE_EQ(DefaultNs().Compute(g, 0, 1), 0.0);
}

TEST(NetworkSimilarityTest, PositiveWithOneMutualFriend) {
  SocialGraph g = MutualFixture(1, 0);
  double ns = DefaultNs().Compute(g, 0, 1);
  EXPECT_GT(ns, 0.0);
  EXPECT_LT(ns, 0.2);
}

TEST(NetworkSimilarityTest, RangeIsUnitInterval) {
  for (size_t mutual : {1u, 5u, 20u, 40u}) {
    SocialGraph g = MutualFixture(mutual, mutual * mutual);  // clique
    double ns = DefaultNs().Compute(g, 0, 1);
    EXPECT_GE(ns, 0.0);
    EXPECT_LE(ns, 1.0);
  }
}

TEST(NetworkSimilarityTest, IncreasingInMutualFriendCount) {
  NetworkSimilarity ns = DefaultNs();
  double previous = -1.0;
  for (size_t mutual : {1u, 2u, 4u, 8u, 16u, 32u}) {
    SocialGraph g = MutualFixture(mutual, 0);
    double value = ns.Compute(g, 0, 1);
    EXPECT_GT(value, previous);
    previous = value;
  }
}

TEST(NetworkSimilarityTest, IncreasingInMutualFriendDensity) {
  NetworkSimilarity ns = DefaultNs();
  SocialGraph sparse = MutualFixture(6, 0);
  SocialGraph medium = MutualFixture(6, 7);
  SocialGraph dense = MutualFixture(6, 15);  // clique on 6
  double v_sparse = ns.Compute(sparse, 0, 1);
  double v_medium = ns.Compute(medium, 0, 1);
  double v_dense = ns.Compute(dense, 0, 1);
  EXPECT_LT(v_sparse, v_medium);
  EXPECT_LT(v_medium, v_dense);
}

TEST(NetworkSimilarityTest, SymmetricInArguments) {
  SocialGraph g = MutualFixture(5, 4);
  NetworkSimilarity ns = DefaultNs();
  EXPECT_DOUBLE_EQ(ns.Compute(g, 0, 1), ns.Compute(g, 1, 0));
}

TEST(NetworkSimilarityTest, UnknownUsersScoreZero) {
  SocialGraph g = MutualFixture(3, 0);
  EXPECT_DOUBLE_EQ(DefaultNs().Compute(g, 0, 99), 0.0);
}

TEST(NetworkSimilarityTest, FortyMutualLooseCommunityNearPaperCeiling) {
  // The paper observed no stranger above NS 0.6 with up to 40+ mutual
  // friends; with defaults a 40-mutual stranger in a low-density community
  // should land near (but around) that ceiling.
  SocialGraph g = MutualFixture(40, 80);  // density ~0.1
  double ns = DefaultNs().Compute(g, 0, 1);
  EXPECT_GT(ns, 0.5);
  EXPECT_LT(ns, 0.7);
}

TEST(NetworkSimilarityTest, ComputeBatchMatchesSingle) {
  SocialGraph g = MutualFixture(4, 2);
  // Add a second stranger sharing 2 mutual friends.
  UserId s2 = g.AddUser();
  ASSERT_TRUE(g.AddEdge(s2, 2).ok());
  ASSERT_TRUE(g.AddEdge(s2, 3).ok());
  NetworkSimilarity ns = DefaultNs();
  std::vector<UserId> strangers = {1, s2};
  auto batch = ns.ComputeBatch(g, 0, strangers);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_DOUBLE_EQ(batch[0], ns.Compute(g, 0, 1));
  EXPECT_DOUBLE_EQ(batch[1], ns.Compute(g, 0, s2));
}

TEST(NetworkSimilarityTest, MutualWeightOneIgnoresDensity) {
  NetworkSimilarityConfig config;
  config.mutual_weight = 1.0;
  NetworkSimilarity ns = NetworkSimilarity::Create(config).value();
  SocialGraph sparse = MutualFixture(6, 0);
  SocialGraph dense = MutualFixture(6, 15);
  EXPECT_DOUBLE_EQ(ns.Compute(sparse, 0, 1), ns.Compute(dense, 0, 1));
}

TEST(NetworkSimilarityTest, SaturationControlsHalfPoint) {
  NetworkSimilarityConfig config;
  config.mutual_weight = 1.0;
  config.saturation = 8.0;
  NetworkSimilarity ns = NetworkSimilarity::Create(config).value();
  SocialGraph g = MutualFixture(8, 0);
  EXPECT_NEAR(ns.Compute(g, 0, 1), 0.5, 1e-12);
}

}  // namespace
}  // namespace sight
