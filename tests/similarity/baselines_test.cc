#include "similarity/baselines.h"

#include <cmath>

#include <gtest/gtest.h>

#include "graph/social_graph.h"

namespace sight {
namespace {

// 0 and 1 share neighbors {2, 3}; 0 also has 4, 1 also has 5.
SocialGraph Fixture() {
  SocialGraph g(6);
  EXPECT_TRUE(g.AddEdge(0, 2).ok());
  EXPECT_TRUE(g.AddEdge(0, 3).ok());
  EXPECT_TRUE(g.AddEdge(0, 4).ok());
  EXPECT_TRUE(g.AddEdge(1, 2).ok());
  EXPECT_TRUE(g.AddEdge(1, 3).ok());
  EXPECT_TRUE(g.AddEdge(1, 5).ok());
  return g;
}

TEST(JaccardTest, ComputesIntersectionOverUnion) {
  SocialGraph g = Fixture();
  // |{2,3}| / |{2,3,4,5}| = 0.5.
  EXPECT_DOUBLE_EQ(JaccardSimilarity(g, 0, 1), 0.5);
}

TEST(JaccardTest, ZeroForIsolatedUsers) {
  SocialGraph g(2);
  EXPECT_DOUBLE_EQ(JaccardSimilarity(g, 0, 1), 0.0);
}

TEST(JaccardTest, ZeroForUnknownUsers) {
  SocialGraph g = Fixture();
  EXPECT_DOUBLE_EQ(JaccardSimilarity(g, 0, 42), 0.0);
}

TEST(CommonNeighborsTest, CountsMutuals) {
  SocialGraph g = Fixture();
  EXPECT_DOUBLE_EQ(CommonNeighborsScore(g, 0, 1), 2.0);
  EXPECT_DOUBLE_EQ(CommonNeighborsScore(g, 2, 4), 1.0);  // both adj to 0
}

TEST(AdamicAdarTest, WeightsByInverseLogDegree) {
  SocialGraph g = Fixture();
  // Mutual friends 2 and 3 both have degree 2: contribution 2 / ln(2).
  EXPECT_NEAR(AdamicAdarScore(g, 0, 1), 2.0 / std::log(2.0), 1e-12);
}

TEST(AdamicAdarTest, DegreeOneMutualsContributeNothing) {
  SocialGraph g(4);
  ASSERT_TRUE(g.AddEdge(0, 2).ok());
  ASSERT_TRUE(g.AddEdge(1, 2).ok());
  // Mutual friend 2 has degree 2 -> contributes; now isolate-degree case:
  SocialGraph h(3);
  // No mutual at all.
  EXPECT_DOUBLE_EQ(AdamicAdarScore(h, 0, 1), 0.0);
  EXPECT_GT(AdamicAdarScore(g, 0, 1), 0.0);
}

TEST(CosineTest, NormalizedByDegrees) {
  SocialGraph g = Fixture();
  EXPECT_NEAR(CosineNeighborSimilarity(g, 0, 1), 2.0 / 3.0, 1e-12);
}

TEST(CosineTest, ZeroWhenEitherIsolated) {
  SocialGraph g = Fixture();
  UserId isolated = g.AddUser();
  EXPECT_DOUBLE_EQ(CosineNeighborSimilarity(g, 0, isolated), 0.0);
}

TEST(OverlapTest, NormalizedBySmallerNeighborhood) {
  SocialGraph g = Fixture();
  // min degree = 3, mutual = 2.
  EXPECT_NEAR(OverlapCoefficient(g, 0, 1), 2.0 / 3.0, 1e-12);
}

TEST(OverlapTest, FullContainmentScoresOne) {
  SocialGraph g(5);
  ASSERT_TRUE(g.AddEdge(0, 2).ok());
  ASSERT_TRUE(g.AddEdge(0, 3).ok());
  ASSERT_TRUE(g.AddEdge(1, 2).ok());
  ASSERT_TRUE(g.AddEdge(1, 3).ok());
  ASSERT_TRUE(g.AddEdge(1, 4).ok());
  EXPECT_DOUBLE_EQ(OverlapCoefficient(g, 0, 1), 1.0);
}

TEST(BaselinesTest, AllSymmetric) {
  SocialGraph g = Fixture();
  EXPECT_DOUBLE_EQ(JaccardSimilarity(g, 0, 1), JaccardSimilarity(g, 1, 0));
  EXPECT_DOUBLE_EQ(AdamicAdarScore(g, 0, 1), AdamicAdarScore(g, 1, 0));
  EXPECT_DOUBLE_EQ(CosineNeighborSimilarity(g, 0, 1),
                   CosineNeighborSimilarity(g, 1, 0));
  EXPECT_DOUBLE_EQ(OverlapCoefficient(g, 0, 1), OverlapCoefficient(g, 1, 0));
}

}  // namespace
}  // namespace sight
