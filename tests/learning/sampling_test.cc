#include "learning/sampling.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

namespace sight {
namespace {

TEST(RandomSamplerTest, SelectsAtMostK) {
  RandomSampler sampler;
  Rng rng(5);
  std::vector<size_t> candidates = {10, 20, 30, 40, 50};
  std::vector<double> predictions;
  SamplingContext context{candidates, predictions};
  auto picks = sampler.Select(context, 3, &rng);
  EXPECT_EQ(picks.size(), 3u);
  for (size_t p : picks) {
    EXPECT_NE(std::find(candidates.begin(), candidates.end(), p),
              candidates.end());
  }
  std::set<size_t> unique(picks.begin(), picks.end());
  EXPECT_EQ(unique.size(), picks.size());
}

TEST(RandomSamplerTest, KLargerThanCandidates) {
  RandomSampler sampler;
  Rng rng(6);
  std::vector<size_t> candidates = {1, 2};
  std::vector<double> predictions;
  SamplingContext context{candidates, predictions};
  auto picks = sampler.Select(context, 10, &rng);
  EXPECT_EQ(picks.size(), 2u);
}

TEST(RandomSamplerTest, EmptyCandidates) {
  RandomSampler sampler;
  Rng rng(7);
  std::vector<size_t> candidates;
  std::vector<double> predictions;
  SamplingContext context{candidates, predictions};
  EXPECT_TRUE(sampler.Select(context, 3, &rng).empty());
}

TEST(UncertaintySamplerTest, PicksMostAmbiguousPredictions) {
  UncertaintySampler sampler;
  Rng rng(8);
  std::vector<size_t> candidates = {0, 1, 2, 3};
  // Index 2 is maximally ambiguous (x.5), index 0 nearly integral.
  std::vector<double> predictions = {1.02, 1.8, 2.5, 2.9};
  SamplingContext context{candidates, predictions};
  auto picks = sampler.Select(context, 2, &rng);
  ASSERT_EQ(picks.size(), 2u);
  EXPECT_EQ(picks[0], 2u);  // ambiguity 0.5
  EXPECT_EQ(picks[1], 1u);  // ambiguity 0.2
}

TEST(UncertaintySamplerTest, FallsBackToRandomWithoutPredictions) {
  UncertaintySampler sampler;
  Rng rng(9);
  std::vector<size_t> candidates = {5, 6, 7};
  std::vector<double> predictions;  // none yet
  SamplingContext context{candidates, predictions};
  auto picks = sampler.Select(context, 2, &rng);
  EXPECT_EQ(picks.size(), 2u);
  for (size_t p : picks) {
    EXPECT_GE(p, 5u);
    EXPECT_LE(p, 7u);
  }
}

TEST(UncertaintySamplerTest, CandidateOutsidePredictionRangeFallsBack) {
  UncertaintySampler sampler;
  Rng rng(10);
  std::vector<size_t> candidates = {0, 9};  // 9 >= predictions.size()
  std::vector<double> predictions = {1.5, 2.0};
  SamplingContext context{candidates, predictions};
  auto picks = sampler.Select(context, 1, &rng);
  EXPECT_EQ(picks.size(), 1u);
}

TEST(SamplerNamesTest, StableNames) {
  EXPECT_EQ(RandomSampler().name(), "random");
  EXPECT_EQ(UncertaintySampler().name(), "uncertainty");
}

}  // namespace
}  // namespace sight
