#include "learning/metrics.h"

#include <gtest/gtest.h>

namespace sight {
namespace {

TEST(RmseTest, ZeroForPerfectPredictions) {
  EXPECT_DOUBLE_EQ(Rmse({1.0, 2.0, 3.0}, {1.0, 2.0, 3.0}).value(), 0.0);
}

TEST(RmseTest, KnownValue) {
  // Errors 1 and -1: RMSE = 1.
  EXPECT_DOUBLE_EQ(Rmse({2.0, 1.0}, {1.0, 2.0}).value(), 1.0);
}

TEST(RmseTest, MaximalErrorOnRiskScale) {
  // All predictions off by the full label range (1 vs 3).
  EXPECT_DOUBLE_EQ(Rmse({1.0, 1.0}, {3.0, 3.0}).value(), 2.0);
}

TEST(RmseTest, RejectsBadInput) {
  EXPECT_FALSE(Rmse({1.0}, {1.0, 2.0}).ok());
  EXPECT_FALSE(Rmse({}, {}).ok());
}

TEST(MaeTest, AveragesAbsoluteErrors) {
  EXPECT_DOUBLE_EQ(MeanAbsoluteError({1.0, 4.0}, {2.0, 2.0}).value(), 1.5);
}

TEST(ExactMatchTest, CountsMatches) {
  EXPECT_DOUBLE_EQ(ExactMatchRate({1, 2, 3, 1}, {1, 2, 2, 2}).value(), 0.5);
  EXPECT_DOUBLE_EQ(ExactMatchRate({1}, {1}).value(), 1.0);
}

TEST(ExactMatchTest, RejectsBadInput) {
  EXPECT_FALSE(ExactMatchRate({1}, {}).ok());
}

TEST(ConfusionMatrixTest, CreateValidatesRange) {
  EXPECT_FALSE(ConfusionMatrix::Create(3, 1).ok());
  EXPECT_TRUE(ConfusionMatrix::Create(1, 3).ok());
}

TEST(ConfusionMatrixTest, CountsCells) {
  auto cm = ConfusionMatrix::Create(1, 3).value();
  ASSERT_TRUE(cm.Add(1, 1).ok());
  ASSERT_TRUE(cm.Add(1, 2).ok());
  ASSERT_TRUE(cm.Add(3, 1).ok());
  EXPECT_EQ(cm.Count(1, 1), 1u);
  EXPECT_EQ(cm.Count(1, 2), 1u);
  EXPECT_EQ(cm.Count(3, 1), 1u);
  EXPECT_EQ(cm.Count(2, 2), 0u);
  EXPECT_EQ(cm.Total(), 3u);
}

TEST(ConfusionMatrixTest, RejectsOutOfRangeLabels) {
  auto cm = ConfusionMatrix::Create(1, 3).value();
  EXPECT_EQ(cm.Add(0, 1).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(cm.Add(1, 4).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(cm.Count(0, 1), 0u);
}

TEST(ConfusionMatrixTest, Accuracy) {
  auto cm = ConfusionMatrix::Create(1, 3).value();
  ASSERT_TRUE(cm.Add(1, 1).ok());
  ASSERT_TRUE(cm.Add(2, 2).ok());
  ASSERT_TRUE(cm.Add(3, 1).ok());
  ASSERT_TRUE(cm.Add(3, 3).ok());
  EXPECT_DOUBLE_EQ(cm.Accuracy(), 0.75);
}

TEST(ConfusionMatrixTest, UnderAndOverPrediction) {
  auto cm = ConfusionMatrix::Create(1, 3).value();
  ASSERT_TRUE(cm.Add(3, 1).ok());  // under (dangerous)
  ASSERT_TRUE(cm.Add(3, 2).ok());  // under
  ASSERT_TRUE(cm.Add(1, 3).ok());  // over (benign)
  ASSERT_TRUE(cm.Add(2, 2).ok());  // exact
  EXPECT_DOUBLE_EQ(cm.UnderPredictionRate(), 0.5);
  EXPECT_DOUBLE_EQ(cm.OverPredictionRate(), 0.25);
  EXPECT_DOUBLE_EQ(cm.Accuracy(), 0.25);
}

TEST(ConfusionMatrixTest, EmptyMatrixRatesZero) {
  auto cm = ConfusionMatrix::Create(1, 3).value();
  EXPECT_DOUBLE_EQ(cm.Accuracy(), 0.0);
  EXPECT_DOUBLE_EQ(cm.UnderPredictionRate(), 0.0);
  EXPECT_DOUBLE_EQ(cm.OverPredictionRate(), 0.0);
}

}  // namespace
}  // namespace sight
