#include "learning/harmonic.h"

#include <gtest/gtest.h>

#include "learning/similarity_matrix.h"

namespace sight {
namespace {

HarmonicFunctionClassifier Make(HarmonicSolver solver) {
  HarmonicConfig config;
  config.solver = solver;
  return HarmonicFunctionClassifier::Create(config).value();
}

class HarmonicSolverTest : public ::testing::TestWithParam<HarmonicSolver> {
 protected:
  HarmonicFunctionClassifier classifier() { return Make(GetParam()); }
};

TEST(HarmonicCreateTest, ValidatesConfig) {
  HarmonicConfig config;
  config.max_iterations = 0;
  EXPECT_FALSE(HarmonicFunctionClassifier::Create(config).ok());
  config = {};
  config.tolerance = 0.0;
  EXPECT_FALSE(HarmonicFunctionClassifier::Create(config).ok());
  EXPECT_TRUE(HarmonicFunctionClassifier::Create(HarmonicConfig{}).ok());
}

TEST_P(HarmonicSolverTest, EmptyLabeledSetRejected) {
  SimilarityMatrix w(3);
  LabeledSet labeled;
  EXPECT_FALSE(classifier().Predict(w, labeled).ok());
}

TEST_P(HarmonicSolverTest, OutOfRangeIndexRejected) {
  SimilarityMatrix w(3);
  LabeledSet labeled;
  labeled.Add(7, 2.0);
  EXPECT_EQ(classifier().Predict(w, labeled).status().code(),
            StatusCode::kOutOfRange);
}

TEST_P(HarmonicSolverTest, DuplicateIndexRejected) {
  SimilarityMatrix w(3);
  LabeledSet labeled;
  labeled.Add(0, 1.0);
  labeled.Add(0, 2.0);
  EXPECT_FALSE(classifier().Predict(w, labeled).ok());
}

TEST_P(HarmonicSolverTest, LabeledNodesKeepTheirValues) {
  SimilarityMatrix w(3);
  w.Set(0, 1, 1.0);
  w.Set(1, 2, 1.0);
  LabeledSet labeled;
  labeled.Add(0, 1.0);
  labeled.Add(2, 3.0);
  auto f = classifier().Predict(w, labeled).value();
  EXPECT_DOUBLE_EQ(f[0], 1.0);
  EXPECT_DOUBLE_EQ(f[2], 3.0);
}

TEST_P(HarmonicSolverTest, ChainInterpolates) {
  // Path 0-1-2 with equal weights: f(1) is the average of its neighbors.
  SimilarityMatrix w(3);
  w.Set(0, 1, 1.0);
  w.Set(1, 2, 1.0);
  LabeledSet labeled;
  labeled.Add(0, 1.0);
  labeled.Add(2, 3.0);
  auto f = classifier().Predict(w, labeled).value();
  EXPECT_NEAR(f[1], 2.0, 1e-5);
}

TEST_P(HarmonicSolverTest, LongChainLinearInterpolation) {
  // Path 0-1-2-3-4, ends labeled 1 and 3: harmonic solution is linear.
  const size_t n = 5;
  SimilarityMatrix w(n);
  for (size_t i = 0; i + 1 < n; ++i) w.Set(i, i + 1, 1.0);
  LabeledSet labeled;
  labeled.Add(0, 1.0);
  labeled.Add(4, 3.0);
  auto f = classifier().Predict(w, labeled).value();
  for (size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(f[i], 1.0 + 0.5 * static_cast<double>(i), 1e-4);
  }
}

TEST_P(HarmonicSolverTest, WeightedNeighborsPullHarder) {
  // Node 2 connected to 0 (label 1, weight 3) and 1 (label 3, weight 1):
  // harmonic value = (3*1 + 1*3) / 4 = 1.5.
  SimilarityMatrix w(3);
  w.Set(2, 0, 3.0);
  w.Set(2, 1, 1.0);
  LabeledSet labeled;
  labeled.Add(0, 1.0);
  labeled.Add(1, 3.0);
  auto f = classifier().Predict(w, labeled).value();
  EXPECT_NEAR(f[2], 1.5, 1e-6);
}

TEST_P(HarmonicSolverTest, IsolatedUnlabeledNodeFallsBackToMean) {
  SimilarityMatrix w(3);
  w.Set(0, 1, 1.0);  // node 2 isolated
  LabeledSet labeled;
  labeled.Add(0, 1.0);
  labeled.Add(1, 3.0);
  auto f = classifier().Predict(w, labeled).value();
  EXPECT_NEAR(f[2], 2.0, 1e-5);
}

TEST_P(HarmonicSolverTest, PredictionsStayWithinLabelRange) {
  // Maximum principle: harmonic values lie inside [min label, max label].
  SimilarityMatrix w(6);
  w.Set(0, 2, 0.9);
  w.Set(1, 2, 0.3);
  w.Set(2, 3, 0.7);
  w.Set(3, 4, 0.2);
  w.Set(4, 5, 0.8);
  w.Set(1, 5, 0.4);
  LabeledSet labeled;
  labeled.Add(0, 1.0);
  labeled.Add(1, 3.0);
  auto f = classifier().Predict(w, labeled).value();
  for (double v : f) {
    EXPECT_GE(v, 1.0 - 1e-9);
    EXPECT_LE(v, 3.0 + 1e-9);
  }
}

TEST_P(HarmonicSolverTest, AllNodesLabeledReturnsLabels) {
  SimilarityMatrix w(2);
  w.Set(0, 1, 1.0);
  LabeledSet labeled;
  labeled.Add(0, 1.0);
  labeled.Add(1, 2.0);
  auto f = classifier().Predict(w, labeled).value();
  EXPECT_DOUBLE_EQ(f[0], 1.0);
  EXPECT_DOUBLE_EQ(f[1], 2.0);
}

TEST_P(HarmonicSolverTest, TwoCommunitiesSeparate) {
  // Two dense blobs with one labeled node each: members adopt their blob's
  // label.
  const size_t n = 8;  // 0-3 blob A, 4-7 blob B
  SimilarityMatrix w(n);
  for (size_t i = 0; i < 4; ++i) {
    for (size_t j = i + 1; j < 4; ++j) w.Set(i, j, 1.0);
  }
  for (size_t i = 4; i < 8; ++i) {
    for (size_t j = i + 1; j < 8; ++j) w.Set(i, j, 1.0);
  }
  w.Set(3, 4, 0.05);  // weak bridge
  LabeledSet labeled;
  labeled.Add(0, 1.0);
  labeled.Add(7, 3.0);
  auto f = classifier().Predict(w, labeled).value();
  for (size_t i = 1; i < 4; ++i) EXPECT_LT(f[i], 1.7);
  for (size_t i = 4; i < 7; ++i) EXPECT_GT(f[i], 2.3);
}

INSTANTIATE_TEST_SUITE_P(
    Solvers, HarmonicSolverTest,
    ::testing::Values(HarmonicSolver::kGaussSeidel,
                      HarmonicSolver::kConjugateGradient,
                      HarmonicSolver::kAuto),
    [](const auto& param_info) {
      switch (param_info.param) {
        case HarmonicSolver::kGaussSeidel:
          return "GaussSeidel";
        case HarmonicSolver::kConjugateGradient:
          return "ConjugateGradient";
        case HarmonicSolver::kAuto:
          return "Auto";
      }
      return "Unknown";
    });

TEST(HarmonicAutoTest, AutoMatchesBothSolversAcrossThreshold) {
  // Small system -> GS path; large -> CG path; both must agree with the
  // explicitly selected solver.
  for (size_t n : {16u, 200u}) {
    SimilarityMatrix w(n);
    uint64_t state = 7;
    auto next_unit = [&state]() {
      state = state * 6364136223846793005ULL + 1442695040888963407ULL;
      return static_cast<double>(state >> 11) * 0x1.0p-53;
    };
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) {
        if (next_unit() < 0.1) w.Set(i, j, 0.2 + next_unit());
      }
    }
    LabeledSet labeled;
    labeled.Add(0, 1.0);
    labeled.Add(n / 2, 2.0);
    labeled.Add(n - 1, 3.0);
    auto with_auto = Make(HarmonicSolver::kAuto).Predict(w, labeled).value();
    HarmonicSolver expected = n > 128 ? HarmonicSolver::kConjugateGradient
                                      : HarmonicSolver::kGaussSeidel;
    auto reference = Make(expected).Predict(w, labeled).value();
    for (size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(with_auto[i], reference[i], 1e-9) << "n=" << n;
    }
  }
}

TEST(HarmonicAgreementTest, SolversAgreeOnRandomGraph) {
  // Both solvers compute the same harmonic function.
  SimilarityMatrix w(12);
  uint64_t state = 99;
  auto next_unit = [&state]() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<double>(state >> 11) * 0x1.0p-53;
  };
  for (size_t i = 0; i < 12; ++i) {
    for (size_t j = i + 1; j < 12; ++j) {
      if (next_unit() < 0.4) w.Set(i, j, 0.1 + next_unit());
    }
  }
  LabeledSet labeled;
  labeled.Add(0, 1.0);
  labeled.Add(5, 2.0);
  labeled.Add(11, 3.0);
  auto gs = Make(HarmonicSolver::kGaussSeidel).Predict(w, labeled).value();
  auto cg =
      Make(HarmonicSolver::kConjugateGradient).Predict(w, labeled).value();
  ASSERT_EQ(gs.size(), cg.size());
  for (size_t i = 0; i < gs.size(); ++i) {
    EXPECT_NEAR(gs[i], cg[i], 1e-4) << "node " << i;
  }
}

TEST(HarmonicEdgeTest, SingleIterationStaysWithinLabelRange) {
  HarmonicConfig config;
  config.solver = HarmonicSolver::kGaussSeidel;
  config.max_iterations = 1;
  auto classifier = HarmonicFunctionClassifier::Create(config).value();
  SimilarityMatrix w(5);
  for (size_t i = 0; i + 1 < 5; ++i) w.Set(i, i + 1, 1.0);
  LabeledSet labeled;
  labeled.Add(0, 1.0);
  labeled.Add(4, 3.0);
  auto f = classifier.Predict(w, labeled).value();
  for (double v : f) {
    EXPECT_GE(v, 1.0 - 1e-9);
    EXPECT_LE(v, 3.0 + 1e-9);
  }
}

TEST(HarmonicEdgeTest, SingleNodePool) {
  auto classifier =
      HarmonicFunctionClassifier::Create(HarmonicConfig{}).value();
  SimilarityMatrix w(1);
  LabeledSet labeled;
  labeled.Add(0, 2.0);
  auto f = classifier.Predict(w, labeled).value();
  ASSERT_EQ(f.size(), 1u);
  EXPECT_DOUBLE_EQ(f[0], 2.0);
}

TEST(HarmonicEdgeTest, ZeroWeightedGraphFallsBackToMeanEverywhere) {
  auto classifier =
      HarmonicFunctionClassifier::Create(HarmonicConfig{}).value();
  SimilarityMatrix w(4);  // no edges at all
  LabeledSet labeled;
  labeled.Add(0, 1.0);
  labeled.Add(1, 3.0);
  auto f = classifier.Predict(w, labeled).value();
  EXPECT_NEAR(f[2], 2.0, 1e-9);
  EXPECT_NEAR(f[3], 2.0, 1e-9);
}

TEST(RoundToLabelTest, RoundsAndClamps) {
  EXPECT_EQ(RoundToLabel(1.4, 1, 3), 1);
  EXPECT_EQ(RoundToLabel(1.6, 1, 3), 2);
  EXPECT_EQ(RoundToLabel(2.5, 1, 3), 3);  // lround half away from zero
  EXPECT_EQ(RoundToLabel(0.2, 1, 3), 1);
  EXPECT_EQ(RoundToLabel(9.0, 1, 3), 3);
}

}  // namespace
}  // namespace sight
