#include "learning/multiclass_harmonic.h"

#include <gtest/gtest.h>

#include "learning/similarity_matrix.h"

namespace sight {
namespace {

MulticlassHarmonicClassifier Make(bool cmn) {
  MulticlassHarmonicConfig config;
  config.class_mass_normalization = cmn;
  return MulticlassHarmonicClassifier::Create(config).value();
}

TEST(MulticlassHarmonicTest, CreateValidatesRange) {
  MulticlassHarmonicConfig config;
  config.label_min = 3;
  config.label_max = 1;
  EXPECT_FALSE(MulticlassHarmonicClassifier::Create(config).ok());
  EXPECT_TRUE(
      MulticlassHarmonicClassifier::Create(MulticlassHarmonicConfig{}).ok());
}

TEST(MulticlassHarmonicTest, RejectsNonIntegerLabels) {
  auto classifier = Make(true);
  SimilarityMatrix w(3);
  w.Set(0, 1, 1.0);
  LabeledSet labeled;
  labeled.Add(0, 1.5);
  EXPECT_FALSE(classifier.Predict(w, labeled).ok());
  LabeledSet out_of_range;
  out_of_range.Add(0, 5.0);
  EXPECT_FALSE(classifier.Predict(w, out_of_range).ok());
}

TEST(MulticlassHarmonicTest, LabeledNodesKeepExactValues) {
  auto classifier = Make(true);
  SimilarityMatrix w(3);
  w.Set(0, 2, 1.0);
  w.Set(1, 2, 1.0);
  LabeledSet labeled;
  labeled.Add(0, 1.0);
  labeled.Add(1, 3.0);
  auto f = classifier.Predict(w, labeled).value();
  EXPECT_DOUBLE_EQ(f[0], 1.0);
  EXPECT_DOUBLE_EQ(f[1], 3.0);
}

TEST(MulticlassHarmonicTest, BalancedNeighborsGiveMiddleScore) {
  auto classifier = Make(false);
  SimilarityMatrix w(3);
  w.Set(0, 2, 1.0);
  w.Set(1, 2, 1.0);
  LabeledSet labeled;
  labeled.Add(0, 1.0);
  labeled.Add(1, 3.0);
  auto f = classifier.Predict(w, labeled).value();
  EXPECT_NEAR(f[2], 2.0, 1e-5);
}

TEST(MulticlassHarmonicTest, ScoresStayWithinLabelRange) {
  auto classifier = Make(true);
  SimilarityMatrix w(6);
  w.Set(0, 2, 0.9);
  w.Set(1, 2, 0.3);
  w.Set(2, 3, 0.7);
  w.Set(3, 4, 0.2);
  w.Set(4, 5, 0.8);
  LabeledSet labeled;
  labeled.Add(0, 1.0);
  labeled.Add(1, 2.0);
  labeled.Add(5, 3.0);
  auto f = classifier.Predict(w, labeled).value();
  for (double v : f) {
    EXPECT_GE(v, 1.0 - 1e-9);
    EXPECT_LE(v, 3.0 + 1e-9);
  }
}

TEST(MulticlassHarmonicTest, AgreesWithOrdinalHarmonicOnTwoClasses) {
  // With only two classes {1, 3} the one-hot expectation and the ordinal
  // embedding coincide (without CMN) on a symmetric graph.
  MulticlassHarmonicConfig config;
  config.class_mass_normalization = false;
  auto multiclass = MulticlassHarmonicClassifier::Create(config).value();
  auto ordinal =
      HarmonicFunctionClassifier::Create(HarmonicConfig{}).value();

  SimilarityMatrix w(5);
  for (size_t i = 0; i + 1 < 5; ++i) w.Set(i, i + 1, 1.0);
  LabeledSet labeled;
  labeled.Add(0, 1.0);
  labeled.Add(4, 3.0);
  auto fm = multiclass.Predict(w, labeled).value();
  auto fo = ordinal.Predict(w, labeled).value();
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_NEAR(fm[i], fo[i], 1e-3) << "node " << i;
  }
}

TEST(MulticlassHarmonicTest, CmnCorrectsClassImbalance) {
  // Star of unlabeled nodes around a hub equidistant from one class-1
  // and three class-3 labeled nodes: without CMN class 3 dominates by
  // sheer labeled mass; CMN rebalances by prior — but since the prior
  // *is* imbalanced here, build the opposite case: balanced priors with
  // imbalanced connectivity.
  SimilarityMatrix w(6);
  // Unlabeled node 5 connects strongly to class-3 labeled nodes 2-4 and
  // weakly to class-1 node 0; node 1 is class-1 too, disconnected from 5.
  w.Set(5, 0, 0.3);
  w.Set(5, 2, 0.3);
  w.Set(5, 3, 0.3);
  w.Set(5, 4, 0.3);
  LabeledSet labeled;
  labeled.Add(0, 1.0);
  labeled.Add(1, 1.0);
  labeled.Add(2, 3.0);
  labeled.Add(3, 3.0);
  labeled.Add(4, 3.0);
  auto raw = Make(false).Predict(w, labeled).value();
  auto cmn = Make(true).Predict(w, labeled).value();
  // Raw: hit probability 1/4 vs 3/4 -> score 2.5. CMN shifts mass toward
  // class 1 because class 1 holds 2/5 of the labeled prior but only 1/4
  // of the hit mass.
  EXPECT_GT(raw[5], 2.3);
  EXPECT_LT(cmn[5], raw[5]);
}

TEST(MulticlassHarmonicTest, ClassScoresSumToOneUnderCmnPriors) {
  // With CMN, the unlabeled mass of class c equals its prior, so summed
  // over classes the total unlabeled mass equals 1 per... (aggregate over
  // all unlabeled nodes equals 1 in expectation). Check aggregate.
  SimilarityMatrix w(5);
  for (size_t i = 0; i + 1 < 5; ++i) w.Set(i, i + 1, 0.7);
  LabeledSet labeled;
  labeled.Add(0, 1.0);
  labeled.Add(4, 2.0);
  auto classifier = Make(true);
  auto scores = classifier.ClassScores(w, labeled).value();
  double total_mass = 0.0;
  for (size_t u = 1; u <= 3; ++u) {
    for (double s : scores[u]) total_mass += s;
  }
  EXPECT_NEAR(total_mass, 1.0, 1e-6);
}

TEST(MulticlassHarmonicTest, Names) {
  EXPECT_EQ(Make(true).name(), "harmonic-cmn");
  EXPECT_EQ(Make(false).name(), "harmonic-multiclass");
}

}  // namespace
}  // namespace sight
