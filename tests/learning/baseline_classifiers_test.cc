#include "learning/baselines.h"

#include <gtest/gtest.h>

#include "learning/similarity_matrix.h"

namespace sight {
namespace {

TEST(KnnClassifierTest, CreateRejectsZeroK) {
  EXPECT_FALSE(KnnClassifier::Create(0).ok());
  EXPECT_TRUE(KnnClassifier::Create(3).ok());
}

TEST(KnnClassifierTest, NearestLabeledNeighborWins) {
  KnnClassifier knn = KnnClassifier::Create(1).value();
  SimilarityMatrix w(3);
  w.Set(2, 0, 0.9);
  w.Set(2, 1, 0.2);
  LabeledSet labeled;
  labeled.Add(0, 1.0);
  labeled.Add(1, 3.0);
  auto f = knn.Predict(w, labeled).value();
  EXPECT_DOUBLE_EQ(f[2], 1.0);  // k=1 picks node 0
}

TEST(KnnClassifierTest, WeightedAverageOverK) {
  KnnClassifier knn = KnnClassifier::Create(2).value();
  SimilarityMatrix w(3);
  w.Set(2, 0, 3.0);
  w.Set(2, 1, 1.0);
  LabeledSet labeled;
  labeled.Add(0, 1.0);
  labeled.Add(1, 3.0);
  auto f = knn.Predict(w, labeled).value();
  EXPECT_NEAR(f[2], (3.0 * 1.0 + 1.0 * 3.0) / 4.0, 1e-12);
}

TEST(KnnClassifierTest, DisconnectedFallsBackToMean) {
  KnnClassifier knn = KnnClassifier::Create(2).value();
  SimilarityMatrix w(3);
  LabeledSet labeled;
  labeled.Add(0, 1.0);
  labeled.Add(1, 3.0);
  auto f = knn.Predict(w, labeled).value();
  EXPECT_DOUBLE_EQ(f[2], 2.0);
}

TEST(KnnClassifierTest, LabeledKeepValues) {
  KnnClassifier knn = KnnClassifier::Create(2).value();
  SimilarityMatrix w(2);
  w.Set(0, 1, 1.0);
  LabeledSet labeled;
  labeled.Add(0, 3.0);
  auto f = knn.Predict(w, labeled).value();
  EXPECT_DOUBLE_EQ(f[0], 3.0);
  EXPECT_DOUBLE_EQ(f[1], 3.0);
}

TEST(KnnClassifierTest, ValidatesLabeledSet) {
  KnnClassifier knn = KnnClassifier::Create(1).value();
  SimilarityMatrix w(2);
  LabeledSet empty;
  EXPECT_FALSE(knn.Predict(w, empty).ok());
  LabeledSet bad;
  bad.Add(5, 1.0);
  EXPECT_FALSE(knn.Predict(w, bad).ok());
}

TEST(MajorityClassifierTest, PredictsMostFrequentLabel) {
  MajorityClassifier majority;
  SimilarityMatrix w(5);
  LabeledSet labeled;
  labeled.Add(0, 2.0);
  labeled.Add(1, 2.0);
  labeled.Add(2, 3.0);
  auto f = majority.Predict(w, labeled).value();
  EXPECT_DOUBLE_EQ(f[3], 2.0);
  EXPECT_DOUBLE_EQ(f[4], 2.0);
}

TEST(MajorityClassifierTest, TieGoesToSmallerLabel) {
  MajorityClassifier majority;
  SimilarityMatrix w(3);
  LabeledSet labeled;
  labeled.Add(0, 1.0);
  labeled.Add(1, 3.0);
  auto f = majority.Predict(w, labeled).value();
  EXPECT_DOUBLE_EQ(f[2], 1.0);
}

TEST(MajorityClassifierTest, LabeledKeepValues) {
  MajorityClassifier majority;
  SimilarityMatrix w(3);
  LabeledSet labeled;
  labeled.Add(0, 3.0);
  labeled.Add(1, 1.0);
  labeled.Add(2, 1.0);
  auto f = majority.Predict(w, labeled).value();
  EXPECT_DOUBLE_EQ(f[0], 3.0);
}

TEST(ClassifierNamesTest, StableNames) {
  EXPECT_EQ(KnnClassifier::Create(1).value().name(), "knn");
  EXPECT_EQ(MajorityClassifier().name(), "majority");
}

}  // namespace
}  // namespace sight
