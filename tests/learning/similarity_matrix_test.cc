#include "learning/similarity_matrix.h"

#include <gtest/gtest.h>

namespace sight {
namespace {

TEST(SimilarityMatrixTest, StartsZero) {
  SimilarityMatrix m(3);
  EXPECT_EQ(m.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(m.Get(i, j), 0.0);
    }
  }
  EXPECT_EQ(m.NumEdges(), 0u);
}

TEST(SimilarityMatrixTest, SetIsSymmetric) {
  SimilarityMatrix m(4);
  m.Set(1, 3, 0.7);
  EXPECT_DOUBLE_EQ(m.Get(1, 3), 0.7);
  EXPECT_DOUBLE_EQ(m.Get(3, 1), 0.7);
  EXPECT_EQ(m.NumEdges(), 1u);
}

TEST(SimilarityMatrixTest, DiagonalIgnored) {
  SimilarityMatrix m(3);
  m.Set(2, 2, 5.0);
  EXPECT_DOUBLE_EQ(m.Get(2, 2), 0.0);
}

TEST(SimilarityMatrixTest, RowSumSumsIncidentWeights) {
  SimilarityMatrix m(3);
  m.Set(0, 1, 0.5);
  m.Set(0, 2, 0.25);
  EXPECT_DOUBLE_EQ(m.RowSum(0), 0.75);
  EXPECT_DOUBLE_EQ(m.RowSum(1), 0.5);
}

TEST(SimilarityMatrixTest, OverwriteReplacesWeight) {
  SimilarityMatrix m(2);
  m.Set(0, 1, 0.5);
  m.Set(1, 0, 0.9);
  EXPECT_DOUBLE_EQ(m.Get(0, 1), 0.9);
}

TEST(SimilarityMatrixTest, SparsifyKeepsStrongestEdges) {
  SimilarityMatrix m(4);
  // Node 0 has three edges of increasing weight.
  m.Set(0, 1, 0.1);
  m.Set(0, 2, 0.5);
  m.Set(0, 3, 0.9);
  // Nodes 1..3 have no other edges, so each keeps its edge to 0 in its own
  // top-1; all edges survive k=1 via the either-endpoint rule.
  SimilarityMatrix survivors = m;
  survivors.SparsifyTopK(1);
  EXPECT_EQ(survivors.NumEdges(), 3u);

  // With a clique the weakest edges drop.
  SimilarityMatrix clique(3);
  clique.Set(0, 1, 0.9);
  clique.Set(0, 2, 0.8);
  clique.Set(1, 2, 0.1);
  clique.SparsifyTopK(1);
  EXPECT_DOUBLE_EQ(clique.Get(0, 1), 0.9);
  // Edge (1,2) is not in the top-1 of either endpoint (1's best is 0,
  // 2's best is 0), so it is dropped.
  EXPECT_DOUBLE_EQ(clique.Get(1, 2), 0.0);
  EXPECT_EQ(clique.NumEdges(), 2u);
}

TEST(SimilarityMatrixTest, SparsifyZeroClearsAll) {
  SimilarityMatrix m(3);
  m.Set(0, 1, 0.5);
  m.Set(1, 2, 0.5);
  m.SparsifyTopK(0);
  EXPECT_EQ(m.NumEdges(), 0u);
}

TEST(SimilarityMatrixTest, SparsifyLargeKKeepsEverything) {
  SimilarityMatrix m(3);
  m.Set(0, 1, 0.5);
  m.Set(1, 2, 0.3);
  m.Set(0, 2, 0.2);
  m.SparsifyTopK(10);
  EXPECT_EQ(m.NumEdges(), 3u);
}

TEST(SimilarityMatrixTest, SizeZeroAndOneAreFine) {
  SimilarityMatrix zero(0);
  EXPECT_EQ(zero.NumEdges(), 0u);
  zero.SparsifyTopK(3);
  SimilarityMatrix one(1);
  EXPECT_DOUBLE_EQ(one.RowSum(0), 0.0);
}

// Deterministic pseudo-random weights for the CSR round-trip tests.
SimilarityMatrix MakeRandomMatrix(size_t n, double density, uint64_t seed) {
  SimilarityMatrix m(n);
  uint64_t state = seed;
  auto next_unit = [&state]() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<double>(state >> 11) * 0x1.0p-53;
  };
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (next_unit() < density) m.Set(i, j, 0.05 + next_unit());
    }
  }
  return m;
}

TEST(SimilarityMatrixCompactTest, NeighborsRoundTripsAgainstGet) {
  SimilarityMatrix m = MakeRandomMatrix(37, 0.3, 11);
  size_t edges_before = m.NumEdges();
  m.Compact();
  ASSERT_TRUE(m.compacted());
  EXPECT_EQ(m.NumEdges(), edges_before);

  size_t directed_entries = 0;
  for (size_t i = 0; i < m.size(); ++i) {
    size_t prev = m.size();  // sentinel: no valid neighbor equals size()
    for (const Neighbor& nb : m.Neighbors(i)) {
      // Every CSR entry matches the dense accessor exactly.
      EXPECT_DOUBLE_EQ(nb.weight, m.Get(i, nb.index));
      EXPECT_GT(nb.weight, 0.0);
      EXPECT_NE(nb.index, i);
      // Rows are sorted by neighbor index.
      if (prev != m.size()) {
        EXPECT_GT(nb.index, prev);
      }
      prev = nb.index;
      ++directed_entries;
    }
    // And every positive dense entry appears in the row.
    size_t positive = 0;
    for (size_t j = 0; j < m.size(); ++j) {
      if (m.Get(i, j) > 0.0) ++positive;
    }
    EXPECT_EQ(m.Neighbors(i).size(), positive);
  }
  EXPECT_EQ(directed_entries, 2 * edges_before);
}

TEST(SimilarityMatrixCompactTest, RowSumMatchesDenseAfterCompact) {
  SimilarityMatrix m = MakeRandomMatrix(25, 0.4, 99);
  std::vector<double> dense_sums;
  for (size_t i = 0; i < m.size(); ++i) dense_sums.push_back(m.RowSum(i));
  m.Compact();
  for (size_t i = 0; i < m.size(); ++i) {
    EXPECT_DOUBLE_EQ(m.RowSum(i), dense_sums[i]);
  }
}

TEST(SimilarityMatrixCompactTest, SparsifyTopKThenCompactIterates) {
  SimilarityMatrix m = MakeRandomMatrix(40, 0.6, 5);
  m.SparsifyTopK(3);
  m.Compact();
  for (size_t i = 0; i < m.size(); ++i) {
    for (const Neighbor& nb : m.Neighbors(i)) {
      EXPECT_DOUBLE_EQ(nb.weight, m.Get(i, nb.index));
    }
  }
  // Survivor degree can exceed k (either-endpoint rule) but the total
  // edge count matches the dense view.
  size_t directed = 0;
  for (size_t i = 0; i < m.size(); ++i) directed += m.Neighbors(i).size();
  EXPECT_EQ(directed, 2 * m.NumEdges());
}

TEST(SimilarityMatrixCompactTest, SetInvalidatesCompactView) {
  SimilarityMatrix m(4);
  m.Set(0, 1, 0.5);
  m.Compact();
  ASSERT_TRUE(m.compacted());
  m.Set(2, 3, 0.7);
  EXPECT_FALSE(m.compacted());
  m.Compact();
  EXPECT_EQ(m.Neighbors(2).size(), 1u);
  EXPECT_DOUBLE_EQ(m.Neighbors(2)[0].weight, 0.7);
}

TEST(SimilarityMatrixCompactTest, SparsifyInvalidatesCompactView) {
  SimilarityMatrix m = MakeRandomMatrix(10, 0.8, 3);
  m.Compact();
  m.SparsifyTopK(1);
  EXPECT_FALSE(m.compacted());
}

TEST(SimilarityMatrixCompactTest, CompactIsIdempotentAndHandlesEdgeSizes) {
  SimilarityMatrix empty(0);
  empty.Compact();
  EXPECT_TRUE(empty.compacted());

  SimilarityMatrix one(1);
  one.Compact();
  EXPECT_EQ(one.Neighbors(0).size(), 0u);

  SimilarityMatrix m = MakeRandomMatrix(8, 0.5, 17);
  m.Compact();
  m.Compact();  // no-op
  EXPECT_TRUE(m.compacted());
}

TEST(SimilarityMatrixCompactTest, BuildCsrOnConstMatrixMatchesCompact) {
  SimilarityMatrix m = MakeRandomMatrix(20, 0.3, 42);
  const SimilarityMatrix& view = m;
  std::vector<size_t> offsets;
  std::vector<Neighbor> neighbors;
  view.BuildCsr(&offsets, &neighbors);
  m.Compact();
  ASSERT_EQ(offsets.size(), m.size() + 1);
  for (size_t i = 0; i < m.size(); ++i) {
    auto row = m.Neighbors(i);
    ASSERT_EQ(offsets[i + 1] - offsets[i], row.size());
    for (size_t t = 0; t < row.size(); ++t) {
      EXPECT_EQ(neighbors[offsets[i] + t].index, row[t].index);
      EXPECT_DOUBLE_EQ(neighbors[offsets[i] + t].weight, row[t].weight);
    }
  }
}

}  // namespace
}  // namespace sight
