#include "learning/similarity_matrix.h"

#include <gtest/gtest.h>

namespace sight {
namespace {

TEST(SimilarityMatrixTest, StartsZero) {
  SimilarityMatrix m(3);
  EXPECT_EQ(m.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(m.Get(i, j), 0.0);
    }
  }
  EXPECT_EQ(m.NumEdges(), 0u);
}

TEST(SimilarityMatrixTest, SetIsSymmetric) {
  SimilarityMatrix m(4);
  m.Set(1, 3, 0.7);
  EXPECT_DOUBLE_EQ(m.Get(1, 3), 0.7);
  EXPECT_DOUBLE_EQ(m.Get(3, 1), 0.7);
  EXPECT_EQ(m.NumEdges(), 1u);
}

TEST(SimilarityMatrixTest, DiagonalIgnored) {
  SimilarityMatrix m(3);
  m.Set(2, 2, 5.0);
  EXPECT_DOUBLE_EQ(m.Get(2, 2), 0.0);
}

TEST(SimilarityMatrixTest, RowSumSumsIncidentWeights) {
  SimilarityMatrix m(3);
  m.Set(0, 1, 0.5);
  m.Set(0, 2, 0.25);
  EXPECT_DOUBLE_EQ(m.RowSum(0), 0.75);
  EXPECT_DOUBLE_EQ(m.RowSum(1), 0.5);
}

TEST(SimilarityMatrixTest, OverwriteReplacesWeight) {
  SimilarityMatrix m(2);
  m.Set(0, 1, 0.5);
  m.Set(1, 0, 0.9);
  EXPECT_DOUBLE_EQ(m.Get(0, 1), 0.9);
}

TEST(SimilarityMatrixTest, SparsifyKeepsStrongestEdges) {
  SimilarityMatrix m(4);
  // Node 0 has three edges of increasing weight.
  m.Set(0, 1, 0.1);
  m.Set(0, 2, 0.5);
  m.Set(0, 3, 0.9);
  // Nodes 1..3 have no other edges, so each keeps its edge to 0 in its own
  // top-1; all edges survive k=1 via the either-endpoint rule.
  SimilarityMatrix survivors = m;
  survivors.SparsifyTopK(1);
  EXPECT_EQ(survivors.NumEdges(), 3u);

  // With a clique the weakest edges drop.
  SimilarityMatrix clique(3);
  clique.Set(0, 1, 0.9);
  clique.Set(0, 2, 0.8);
  clique.Set(1, 2, 0.1);
  clique.SparsifyTopK(1);
  EXPECT_DOUBLE_EQ(clique.Get(0, 1), 0.9);
  // Edge (1,2) is not in the top-1 of either endpoint (1's best is 0,
  // 2's best is 0), so it is dropped.
  EXPECT_DOUBLE_EQ(clique.Get(1, 2), 0.0);
  EXPECT_EQ(clique.NumEdges(), 2u);
}

TEST(SimilarityMatrixTest, SparsifyZeroClearsAll) {
  SimilarityMatrix m(3);
  m.Set(0, 1, 0.5);
  m.Set(1, 2, 0.5);
  m.SparsifyTopK(0);
  EXPECT_EQ(m.NumEdges(), 0u);
}

TEST(SimilarityMatrixTest, SparsifyLargeKKeepsEverything) {
  SimilarityMatrix m(3);
  m.Set(0, 1, 0.5);
  m.Set(1, 2, 0.3);
  m.Set(0, 2, 0.2);
  m.SparsifyTopK(10);
  EXPECT_EQ(m.NumEdges(), 3u);
}

TEST(SimilarityMatrixTest, SizeZeroAndOneAreFine) {
  SimilarityMatrix zero(0);
  EXPECT_EQ(zero.NumEdges(), 0u);
  zero.SparsifyTopK(3);
  SimilarityMatrix one(1);
  EXPECT_DOUBLE_EQ(one.RowSum(0), 0.0);
}

}  // namespace
}  // namespace sight
