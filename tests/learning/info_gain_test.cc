#include "learning/info_gain.h"

#include <cmath>

#include <gtest/gtest.h>

namespace sight {
namespace {

TEST(EntropyTest, UniformBinaryIsOneBit) {
  EXPECT_DOUBLE_EQ(EntropyFromCounts({5, 5}), 1.0);
}

TEST(EntropyTest, PureDistributionIsZero) {
  EXPECT_DOUBLE_EQ(EntropyFromCounts({10}), 0.0);
  EXPECT_DOUBLE_EQ(EntropyFromCounts({10, 0, 0}), 0.0);
}

TEST(EntropyTest, UniformTernary) {
  EXPECT_NEAR(EntropyFromCounts({3, 3, 3}), std::log2(3.0), 1e-12);
}

TEST(EntropyTest, EmptyCountsAreZero) {
  EXPECT_DOUBLE_EQ(EntropyFromCounts({}), 0.0);
  EXPECT_DOUBLE_EQ(EntropyFromCounts({0, 0}), 0.0);
}

TEST(EntropyTest, SkewedBinary) {
  // H(0.25) = 0.811278...
  EXPECT_NEAR(EntropyFromCounts({1, 3}), 0.8112781245, 1e-9);
}

TEST(LabelEntropyTest, MatchesCounts) {
  EXPECT_DOUBLE_EQ(LabelEntropy({1, 1, 2, 2}), 1.0);
  EXPECT_DOUBLE_EQ(LabelEntropy({3, 3, 3}), 0.0);
}

TEST(InformationGainTest, PerfectPredictorGainsFullEntropy) {
  std::vector<std::string> attr = {"m", "m", "f", "f"};
  std::vector<int> labels = {3, 3, 1, 1};
  EXPECT_DOUBLE_EQ(InformationGain(attr, labels).value(), 1.0);
}

TEST(InformationGainTest, IrrelevantAttributeGainsNothing) {
  std::vector<std::string> attr = {"m", "f", "m", "f"};
  std::vector<int> labels = {3, 3, 1, 1};
  EXPECT_DOUBLE_EQ(InformationGain(attr, labels).value(), 0.0);
}

TEST(InformationGainTest, ConstantAttributeGainsNothing) {
  std::vector<std::string> attr = {"x", "x", "x", "x"};
  std::vector<int> labels = {3, 3, 1, 1};
  EXPECT_DOUBLE_EQ(InformationGain(attr, labels).value(), 0.0);
}

TEST(InformationGainTest, PartialPredictor) {
  // "a" is pure, "b" is mixed.
  std::vector<std::string> attr = {"a", "a", "b", "b"};
  std::vector<int> labels = {1, 1, 1, 2};
  double gain = InformationGain(attr, labels).value();
  EXPECT_GT(gain, 0.0);
  EXPECT_LT(gain, LabelEntropy(labels));
}

TEST(InformationGainTest, RejectsBadInput) {
  EXPECT_FALSE(
      InformationGain(std::vector<std::string>{"a"}, {1, 2}).ok());
  EXPECT_FALSE(InformationGain(std::vector<std::string>{}, {}).ok());
  EXPECT_FALSE(InformationGain(std::vector<uint32_t>{}, {}).ok());
}

TEST(SplitInformationTest, EntropyOfAttributeValues) {
  EXPECT_DOUBLE_EQ(
      SplitInformation(std::vector<std::string>{"a", "a", "b", "b"}).value(),
      1.0);
  EXPECT_DOUBLE_EQ(
      SplitInformation(std::vector<std::string>{"a", "a"}).value(), 0.0);
  EXPECT_FALSE(SplitInformation(std::vector<std::string>{}).ok());
  EXPECT_DOUBLE_EQ(
      SplitInformation(std::vector<uint32_t>{7, 7, 9, 9}).value(), 1.0);
  EXPECT_FALSE(SplitInformation(std::vector<uint32_t>{}).ok());
}

TEST(GainRatioTest, NormalizesBySplitInfo) {
  std::vector<std::string> attr = {"m", "m", "f", "f"};
  std::vector<int> labels = {3, 3, 1, 1};
  // Gain 1 bit / split info 1 bit = 1.
  EXPECT_DOUBLE_EQ(GainRatio(attr, labels).value(), 1.0);
}

TEST(GainRatioTest, SingleValuedAttributeScoresZero) {
  std::vector<std::string> attr = {"x", "x", "x"};
  std::vector<int> labels = {1, 2, 3};
  EXPECT_DOUBLE_EQ(GainRatio(attr, labels).value(), 0.0);
}

TEST(GainRatioTest, PenalizesHighArityAttributes) {
  // A unique-valued attribute perfectly "predicts" but has maximal split
  // info; gain ratio < 1 discourages it compared to a compact perfect
  // predictor.
  std::vector<std::string> unique_attr = {"a", "b", "c", "d"};
  std::vector<std::string> compact_attr = {"m", "m", "f", "f"};
  std::vector<int> labels = {1, 1, 3, 3};
  double unique_gr = GainRatio(unique_attr, labels).value();
  double compact_gr = GainRatio(compact_attr, labels).value();
  EXPECT_LT(unique_gr, compact_gr);
}

TEST(CorrectedGainRatioTest, StrongLowArityPredictorSurvives) {
  std::vector<std::string> attr;
  std::vector<int> labels;
  for (int i = 0; i < 40; ++i) {
    attr.push_back(i % 2 == 0 ? "m" : "f");
    labels.push_back(i % 2 == 0 ? 3 : 1);
  }
  double corrected = CorrectedGainRatio(attr, labels).value();
  EXPECT_GT(corrected, 0.9);
}

TEST(CorrectedGainRatioTest, HighArityNoiseCollapsesToZero) {
  // A unique-valued attribute is a perfect "predictor" by accident; the
  // chance correction must wipe it out where the raw ratio does not.
  std::vector<std::string> attr;
  std::vector<int> labels;
  for (int i = 0; i < 30; ++i) {
    attr.push_back("name" + std::to_string(i));
    labels.push_back(i % 3 + 1);
  }
  double raw = GainRatio(attr, labels).value();
  double corrected = CorrectedGainRatio(attr, labels).value();
  EXPECT_GT(raw, 0.1);
  // The asymptotic Miller-Madow term undercorrects slightly in the
  // singleton-partition extreme, but must remove the bulk of the chance
  // mass.
  EXPECT_LT(corrected, 0.05);
  EXPECT_LT(corrected, raw / 3.0);
}

TEST(CorrectedGainRatioTest, NeverNegative) {
  std::vector<std::string> attr = {"a", "b", "a", "b"};
  std::vector<int> labels = {1, 1, 2, 2};  // attribute uninformative
  double corrected = CorrectedGainRatio(attr, labels).value();
  EXPECT_GE(corrected, 0.0);
}

TEST(CorrectedGainRatioTest, SingleValuedAttributeScoresZero) {
  std::vector<std::string> attr = {"x", "x", "x"};
  std::vector<int> labels = {1, 2, 3};
  EXPECT_DOUBLE_EQ(CorrectedGainRatio(attr, labels).value(), 0.0);
}

TEST(CorrectedGainRatioTest, ApproachesRawRatioWithLargeSamples) {
  // The chance term shrinks as 1/N, so for large N corrected ~ raw.
  std::vector<std::string> attr;
  std::vector<int> labels;
  for (int i = 0; i < 4000; ++i) {
    attr.push_back(i % 2 == 0 ? "m" : "f");
    labels.push_back(i % 2 == 0 ? 3 : 1);
  }
  double raw = GainRatio(attr, labels).value();
  double corrected = CorrectedGainRatio(attr, labels).value();
  EXPECT_NEAR(corrected, raw, 1e-3);
}

TEST(GainRatioTest, GenderLikePatternScoresHigh) {
  // The paper's Table I scenario: owner labels all males as riskier.
  std::vector<std::string> gender;
  std::vector<std::string> lastname;
  std::vector<int> labels;
  for (int i = 0; i < 20; ++i) {
    bool male = i % 2 == 0;
    gender.push_back(male ? "male" : "female");
    lastname.push_back("name" + std::to_string(i % 7));
    labels.push_back(male ? 3 : 1);
  }
  double gender_gr = GainRatio(gender, labels).value();
  double lastname_gr = GainRatio(lastname, labels).value();
  EXPECT_GT(gender_gr, 0.9);
  EXPECT_LT(lastname_gr, gender_gr);
}

}  // namespace
}  // namespace sight
