// Concurrency stress for RiskService: several submitter threads push
// discovery events for owners spread across shards while readers Poll
// and WaitFor concurrently. Run under TSan via the `serving` ctest
// label (tools/check.sh tsan leg).

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "graph/algorithms.h"
#include "service/risk_service.h"
#include "sim/facebook_generator.h"
#include "sim/owner_model.h"
#include "util/thread_pool.h"

namespace sight {
namespace {

sim::OwnerDataset MakeDataset(uint64_t seed) {
  sim::GeneratorConfig config;
  config.num_friends = 30;
  config.num_strangers = 100;
  config.num_communities = 4;
  auto gen = sim::FacebookGenerator::Create(config).value();
  Rng rng(seed);
  return gen.Generate({sim::Gender::kFemale, sim::Locale::kIT}, &rng)
      .value();
}

TEST(ServingStressTest, ConcurrentSubmitAndPollAcrossShards) {
  // One shared network; the ego owner plus three of their friends each
  // register as service owners (distinct user ids -> distinct shards).
  sim::OwnerDataset ds = MakeDataset(2012);
  std::vector<UserId> owners = {ds.owner, ds.friends[0], ds.friends[1],
                                ds.friends[2]};

  Rng attitude_rng(3);
  sim::OwnerAttitude attitude = sim::SampleOwnerAttitude(&attitude_rng);
  std::vector<std::unique_ptr<sim::OwnerModel>> oracles;
  for (size_t i = 0; i < owners.size(); ++i) {
    oracles.push_back(std::make_unique<sim::OwnerModel>(
        sim::OwnerModel::Create(attitude, &ds.profiles, &ds.visibility)
            .value()));
  }

  RiskServiceConfig config;
  config.engine.pools.attribute_weights = sim::PaperAttributeWeights();
  config.num_shards = 4;
  config.num_threads = 3;
  auto service = RiskService::Create(std::move(config)).value();

  std::vector<std::vector<UserId>> stranger_sets;
  for (size_t i = 0; i < owners.size(); ++i) {
    OwnerRegistration registration;
    registration.owner = owners[i];
    registration.graph = &ds.graph;
    registration.profiles = &ds.profiles;
    registration.visibility = &ds.visibility;
    registration.oracle = oracles[i].get();
    registration.rng_seed = 100 + i;
    ASSERT_TRUE(service->RegisterOwner(registration).ok());
    stranger_sets.push_back(TwoHopStrangers(ds.graph, owners[i]).value());
    ASSERT_FALSE(stranger_sets.back().empty());
  }

  // Two submitter threads interleave two discovery waves per owner.
  constexpr size_t kWaves = 2;
  ThreadPool submitters(2);
  for (size_t i = 0; i < owners.size(); ++i) {
    submitters.Submit([&, i] {
      const std::vector<UserId>& strangers = stranger_sets[i];
      size_t half = strangers.size() / 2;
      for (size_t wave = 0; wave < kWaves; ++wave) {
        OwnerEvent event;
        event.owner = owners[i];
        size_t begin = wave == 0 ? 0 : half;
        size_t end = wave == 0 ? half : strangers.size();
        event.discovered.assign(strangers.begin() + begin,
                                strangers.begin() + end);
        Status submitted = service->Submit(std::move(event));
        EXPECT_TRUE(submitted.ok()) << submitted.ToString();
      }
    });
  }

  // Concurrent readers: Poll is non-blocking and safe mid-drain.
  for (size_t spin = 0; spin < 50; ++spin) {
    for (UserId owner : owners) {
      auto snapshot = service->Poll(owner);
      if (snapshot != nullptr) {
        EXPECT_GE(snapshot->version, 1u);
        EXPECT_TRUE(snapshot->status.ok());
      }
    }
  }

  submitters.Wait();
  // Every owner eventually publishes at least one snapshot...
  for (UserId owner : owners) {
    auto snapshot = service->WaitFor(owner, 1);
    ASSERT_TRUE(snapshot.ok());
  }
  ASSERT_TRUE(service->Flush().ok());
  // ...and after the flush the latest snapshot covers the full set
  // (events may have been coalesced, so only the final state is pinned).
  for (size_t i = 0; i < owners.size(); ++i) {
    auto snapshot = service->Poll(owners[i]);
    ASSERT_NE(snapshot, nullptr);
    EXPECT_TRUE(snapshot->status.ok());
    EXPECT_EQ(snapshot->report.assessment.strangers.size(),
              stranger_sets[i].size());
    EXPECT_LE(snapshot->version, kWaves);
  }
  EXPECT_EQ(service->stats().events_submitted, owners.size() * kWaves);
  service->Shutdown();
}

TEST(ServingStressTest, ShutdownRacesWithSubmitters) {
  sim::OwnerDataset ds = MakeDataset(77);
  Rng attitude_rng(5);
  sim::OwnerAttitude attitude = sim::SampleOwnerAttitude(&attitude_rng);
  auto oracle =
      sim::OwnerModel::Create(attitude, &ds.profiles, &ds.visibility)
          .value();

  RiskServiceConfig config;
  config.engine.pools.attribute_weights = sim::PaperAttributeWeights();
  config.num_shards = 2;
  config.num_threads = 2;
  auto service = RiskService::Create(std::move(config)).value();
  OwnerRegistration registration;
  registration.owner = ds.owner;
  registration.graph = &ds.graph;
  registration.profiles = &ds.profiles;
  registration.visibility = &ds.visibility;
  registration.oracle = &oracle;
  ASSERT_TRUE(service->RegisterOwner(registration).ok());

  ThreadPool submitters(2);
  for (size_t t = 0; t < 2; ++t) {
    submitters.Submit([&, t] {
      for (size_t i = 0; i < 5; ++i) {
        OwnerEvent event;
        event.owner = ds.owner;
        size_t at = (t * 5 + i) % ds.strangers.size();
        event.discovered = {ds.strangers[at]};
        event.assess = (i % 2 == 0);
        // Shutdown may win the race; both outcomes are legal.
        Status submitted = service->Submit(std::move(event));
        EXPECT_TRUE(submitted.ok() ||
                    submitted.code() == StatusCode::kFailedPrecondition)
            << submitted.ToString();
      }
    });
  }
  service->Shutdown();
  submitters.Wait();
  // Whatever was accepted before shutdown was fully drained.
  size_t strangers = service->NumStrangers(ds.owner).value();
  EXPECT_LE(strangers, 10u);
}

}  // namespace
}  // namespace sight
