#include "service/risk_service.h"

#include <condition_variable>
#include <memory>
#include <mutex>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "core/risk_engine.h"
#include "graph/algorithms.h"
#include "sim/facebook_generator.h"
#include "sim/owner_model.h"
#include "util/thread_pool.h"

namespace sight {
namespace {

sim::OwnerDataset MakeDataset(uint64_t seed, size_t strangers = 200) {
  sim::GeneratorConfig config;
  config.num_friends = 40;
  config.num_strangers = strangers;
  config.num_communities = 4;
  auto gen = sim::FacebookGenerator::Create(config).value();
  Rng rng(seed);
  return gen.Generate({sim::Gender::kMale, sim::Locale::kTR}, &rng).value();
}

RiskServiceConfig ServiceConfig() {
  RiskServiceConfig config;
  config.engine.pools.attribute_weights = sim::PaperAttributeWeights();
  return config;
}

sim::OwnerModel MakeOracle(const sim::OwnerDataset& ds, uint64_t seed) {
  Rng attitude_rng(seed);
  sim::OwnerAttitude attitude = sim::SampleOwnerAttitude(&attitude_rng);
  return sim::OwnerModel::Create(attitude, &ds.profiles, &ds.visibility)
      .value();
}

OwnerRegistration Registration(const sim::OwnerDataset& ds,
                               LabelOracle* oracle = nullptr,
                               uint64_t rng_seed = 0) {
  OwnerRegistration registration;
  registration.owner = ds.owner;
  registration.graph = &ds.graph;
  registration.profiles = &ds.profiles;
  registration.visibility = &ds.visibility;
  registration.oracle = oracle;
  registration.rng_seed = rng_seed;
  return registration;
}

// Exact (bitwise for the doubles) equality of two reports.
void ExpectReportsIdentical(const RiskReport& a, const RiskReport& b) {
  EXPECT_EQ(a.num_strangers, b.num_strangers);
  EXPECT_EQ(a.num_pools, b.num_pools);
  EXPECT_EQ(a.pool_sizes, b.pool_sizes);
  EXPECT_EQ(a.assessment.total_queries, b.assessment.total_queries);
  EXPECT_EQ(a.assessment.rounds.size(), b.assessment.rounds.size());
  ASSERT_EQ(a.assessment.strangers.size(), b.assessment.strangers.size());
  for (size_t i = 0; i < a.assessment.strangers.size(); ++i) {
    const StrangerAssessment& sa = a.assessment.strangers[i];
    const StrangerAssessment& sb = b.assessment.strangers[i];
    EXPECT_EQ(sa.stranger, sb.stranger);
    EXPECT_EQ(sa.pool_index, sb.pool_index);
    EXPECT_EQ(sa.network_similarity, sb.network_similarity);
    EXPECT_EQ(sa.benefit, sb.benefit);
    EXPECT_EQ(sa.predicted_score, sb.predicted_score);
    EXPECT_EQ(sa.predicted_label, sb.predicted_label);
    EXPECT_EQ(sa.owner_labeled, sb.owner_labeled);
  }
}

// Holds the sole worker of a 1-thread pool so queued drains cannot run
// until the test opens the gate.
class Gate {
 public:
  void Occupy(ThreadPool* pool) {
    pool->Submit([this] {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return open_; });
    });
  }
  void Open() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      open_ = true;
    }
    cv_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  bool open_ = false;
};

TEST(RiskServiceTest, CreateValidatesConfig) {
  RiskServiceConfig no_shards = ServiceConfig();
  no_shards.num_shards = 0;
  EXPECT_FALSE(RiskService::Create(std::move(no_shards)).ok());

  RiskServiceConfig no_queue = ServiceConfig();
  no_queue.queue_capacity = 0;
  EXPECT_FALSE(RiskService::Create(std::move(no_queue)).ok());

  // Sharing one pool between the service's drain tasks and the engine's
  // parallel phases would deadlock; the config is rejected up front.
  ThreadPool shared(2);
  RiskServiceConfig aliased = ServiceConfig();
  aliased.thread_pool = &shared;
  aliased.engine.thread_pool = &shared;
  EXPECT_FALSE(RiskService::Create(std::move(aliased)).ok());

  EXPECT_TRUE(RiskService::Create(ServiceConfig()).ok());
}

TEST(RiskServiceTest, RegisterOwnerValidates) {
  sim::OwnerDataset ds = MakeDataset(1);
  auto service = RiskService::Create(ServiceConfig()).value();

  OwnerRegistration no_graph = Registration(ds);
  no_graph.graph = nullptr;
  EXPECT_FALSE(service->RegisterOwner(no_graph).ok());

  OwnerRegistration bad_owner = Registration(ds);
  bad_owner.owner = 999999;
  EXPECT_FALSE(service->RegisterOwner(bad_owner).ok());

  ASSERT_TRUE(service->RegisterOwner(Registration(ds)).ok());
  EXPECT_EQ(service->RegisterOwner(Registration(ds)).code(),
            StatusCode::kAlreadyExists);
}

TEST(RiskServiceTest, UnknownOwnerIsNotFoundEverywhere) {
  auto service = RiskService::Create(ServiceConfig()).value();
  sim::OwnerDataset ds = MakeDataset(2, 40);
  sim::OwnerModel oracle = MakeOracle(ds, 3);
  Rng rng(5);
  OwnerEvent event;
  event.owner = 42;
  EXPECT_EQ(service->Submit(std::move(event)).code(), StatusCode::kNotFound);
  EXPECT_EQ(service->Poll(42), nullptr);
  EXPECT_EQ(service->WaitFor(42, 1).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(service->AssessNow(42, &oracle, &rng).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(service->AssessSync(42, &oracle, &rng).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(service->AddStrangers(42, {}).code(), StatusCode::kNotFound);
  EXPECT_EQ(service->NumStrangers(42).status().code(), StatusCode::kNotFound);
}

// The acceptance gate: the service's synchronous path is bitwise-equal
// to a cold batch RiskEngine run over the same inputs.
TEST(RiskServiceTest, AssessNowMatchesBatchEngineBitwise) {
  sim::OwnerDataset ds = MakeDataset(7);
  RiskServiceConfig config = ServiceConfig();

  auto engine = RiskEngine::Create(config.engine).value();
  sim::OwnerModel batch_oracle = MakeOracle(ds, 11);
  Rng batch_rng(55);
  auto batch = engine
                   .AssessOwner(ds.graph, ds.profiles, ds.visibility,
                                ds.owner, &batch_oracle, &batch_rng)
                   .value();

  auto service = RiskService::Create(std::move(config)).value();
  ASSERT_TRUE(service->RegisterOwner(Registration(ds)).ok());
  ASSERT_TRUE(service->DiscoverAllStrangers(ds.owner).ok());
  sim::OwnerModel service_oracle = MakeOracle(ds, 11);
  Rng service_rng(55);
  auto now =
      service->AssessNow(ds.owner, &service_oracle, &service_rng).value();

  ExpectReportsIdentical(batch, now);
  // AssessNow is a pure read-through: nothing was recorded.
  EXPECT_EQ(service->NumKnownLabels(ds.owner).value(), 0u);
  EXPECT_EQ(service->Poll(ds.owner), nullptr);
}

TEST(RiskServiceTest, SubmitPublishesVersionedSnapshots) {
  sim::OwnerDataset ds = MakeDataset(9, 120);
  sim::OwnerModel oracle = MakeOracle(ds, 13);
  auto service = RiskService::Create(ServiceConfig()).value();
  ASSERT_TRUE(service->RegisterOwner(Registration(ds, &oracle, 17)).ok());
  EXPECT_EQ(service->Poll(ds.owner), nullptr);

  size_t half = ds.strangers.size() / 2;
  OwnerEvent first;
  first.owner = ds.owner;
  first.discovered.assign(ds.strangers.begin(), ds.strangers.begin() + half);
  ASSERT_TRUE(service->Submit(std::move(first)).ok());
  auto snapshot = service->WaitFor(ds.owner, 1).value();
  EXPECT_EQ(snapshot->version, 1u);
  EXPECT_TRUE(snapshot->status.ok());
  EXPECT_EQ(snapshot->report.assessment.strangers.size(), half);

  OwnerEvent second;
  second.owner = ds.owner;
  second.discovered.assign(ds.strangers.begin() + half, ds.strangers.end());
  ASSERT_TRUE(service->Submit(std::move(second)).ok());
  auto next = service->WaitFor(ds.owner, snapshot->version + 1).value();
  EXPECT_GT(next->version, snapshot->version);
  EXPECT_EQ(next->report.assessment.strangers.size(), ds.strangers.size());
  // Poll returns the latest published snapshot.
  EXPECT_EQ(service->Poll(ds.owner)->version, next->version);
  // The first snapshot is immutable and still readable.
  EXPECT_EQ(snapshot->report.assessment.strangers.size(), half);

  service->Shutdown();
  EXPECT_EQ(service->stats().events_submitted, 2u);
  EXPECT_EQ(service->stats().assessments_run, 2u);
}

TEST(RiskServiceTest, MutateOnlyEventsDoNotPublish) {
  sim::OwnerDataset ds = MakeDataset(10, 80);
  sim::OwnerModel oracle = MakeOracle(ds, 19);
  auto service = RiskService::Create(ServiceConfig()).value();
  ASSERT_TRUE(service->RegisterOwner(Registration(ds, &oracle, 23)).ok());

  OwnerEvent mutate;
  mutate.owner = ds.owner;
  mutate.discovered = ds.strangers;
  mutate.assess = false;
  ASSERT_TRUE(service->Submit(std::move(mutate)).ok());
  ASSERT_TRUE(service->Flush().ok());
  EXPECT_EQ(service->Poll(ds.owner), nullptr);
  EXPECT_EQ(service->NumStrangers(ds.owner).value(), ds.strangers.size());

  OwnerEvent assess;
  assess.owner = ds.owner;
  ASSERT_TRUE(service->Submit(std::move(assess)).ok());
  auto snapshot = service->WaitFor(ds.owner, 1).value();
  EXPECT_EQ(snapshot->report.assessment.strangers.size(),
            ds.strangers.size());
}

TEST(RiskServiceTest, FullQueueRejectsUnderRejectPolicy) {
  sim::OwnerDataset ds = MakeDataset(11, 60);
  sim::OwnerModel oracle = MakeOracle(ds, 29);
  ThreadPool workers(1);
  Gate gate;
  gate.Occupy(&workers);

  RiskServiceConfig config = ServiceConfig();
  config.thread_pool = &workers;
  config.queue_capacity = 2;
  config.queue_full_policy = QueueFullPolicy::kReject;
  auto service = RiskService::Create(std::move(config)).value();
  ASSERT_TRUE(service->RegisterOwner(Registration(ds, &oracle, 31)).ok());

  auto discovery_event = [&](size_t i) {
    OwnerEvent event;
    event.owner = ds.owner;
    event.discovered = {ds.strangers[i]};
    return event;
  };
  // The drain task is queued behind the gate, so the queue fills.
  ASSERT_TRUE(service->Submit(discovery_event(0)).ok());
  ASSERT_TRUE(service->Submit(discovery_event(1)).ok());
  EXPECT_EQ(service->Submit(discovery_event(2)).code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(service->stats().events_rejected, 1u);

  gate.Open();
  ASSERT_TRUE(service->Flush().ok());
  // Both accepted events were applied; the rejected one was dropped.
  EXPECT_EQ(service->NumStrangers(ds.owner).value(), 2u);
  // The two assess requests were coalesced into one run.
  auto snapshot = service->Poll(ds.owner);
  ASSERT_NE(snapshot, nullptr);
  EXPECT_EQ(snapshot->version, 1u);
  EXPECT_EQ(snapshot->events_coalesced, 1u);
  EXPECT_EQ(service->stats().events_coalesced, 1u);
  service->Shutdown();
}

TEST(RiskServiceTest, FullQueueBlocksUnderBlockPolicy) {
  sim::OwnerDataset ds = MakeDataset(12, 60);
  sim::OwnerModel oracle = MakeOracle(ds, 37);
  ThreadPool workers(1);
  Gate gate;
  gate.Occupy(&workers);

  RiskServiceConfig config = ServiceConfig();
  config.thread_pool = &workers;
  config.queue_capacity = 1;
  config.queue_full_policy = QueueFullPolicy::kBlock;
  auto service = RiskService::Create(std::move(config)).value();
  ASSERT_TRUE(service->RegisterOwner(Registration(ds, &oracle, 41)).ok());

  OwnerEvent first;
  first.owner = ds.owner;
  first.discovered = {ds.strangers[0]};
  ASSERT_TRUE(service->Submit(std::move(first)).ok());

  // The second Submit blocks until the drain frees a slot.
  ThreadPool submitter(1);
  Status blocked_result;
  submitter.Submit([&] {
    OwnerEvent second;
    second.owner = ds.owner;
    second.discovered = {ds.strangers[1]};
    blocked_result = service->Submit(std::move(second));
  });
  gate.Open();
  submitter.Wait();
  EXPECT_TRUE(blocked_result.ok());
  ASSERT_TRUE(service->Flush().ok());
  EXPECT_EQ(service->NumStrangers(ds.owner).value(), 2u);
  EXPECT_EQ(service->stats().events_submitted, 2u);
  service->Shutdown();
}

TEST(RiskServiceTest, ShutdownDrainsPendingEvents) {
  sim::OwnerDataset ds = MakeDataset(13, 80);
  sim::OwnerModel oracle = MakeOracle(ds, 43);
  ThreadPool workers(1);
  Gate gate;
  gate.Occupy(&workers);

  RiskServiceConfig config = ServiceConfig();
  config.thread_pool = &workers;
  auto service = RiskService::Create(std::move(config)).value();
  ASSERT_TRUE(service->RegisterOwner(Registration(ds, &oracle, 47)).ok());

  for (size_t i = 0; i < 4; ++i) {
    OwnerEvent event;
    event.owner = ds.owner;
    size_t quarter = ds.strangers.size() / 4;
    size_t begin = i * quarter;
    size_t end = i == 3 ? ds.strangers.size() : begin + quarter;
    event.discovered.assign(ds.strangers.begin() + begin,
                            ds.strangers.begin() + end);
    ASSERT_TRUE(service->Submit(std::move(event)).ok());
  }
  gate.Open();
  service->Shutdown();

  // Every queued event was applied before the workers stopped.
  auto snapshot = service->Poll(ds.owner);
  ASSERT_NE(snapshot, nullptr);
  EXPECT_TRUE(snapshot->status.ok());
  EXPECT_EQ(snapshot->report.assessment.strangers.size(),
            ds.strangers.size());
  // New work is refused after shutdown.
  OwnerEvent late;
  late.owner = ds.owner;
  EXPECT_EQ(service->Submit(std::move(late)).code(),
            StatusCode::kFailedPrecondition);
  sim::OwnerDataset other = MakeDataset(14, 20);
  EXPECT_EQ(service->RegisterOwner(Registration(other)).code(),
            StatusCode::kFailedPrecondition);
}

TEST(RiskServiceTest, SubmitAssessWithoutOracleFails) {
  sim::OwnerDataset ds = MakeDataset(15, 40);
  auto service = RiskService::Create(ServiceConfig()).value();
  ASSERT_TRUE(service->RegisterOwner(Registration(ds)).ok());
  OwnerEvent assess;
  assess.owner = ds.owner;
  EXPECT_EQ(service->Submit(std::move(assess)).code(),
            StatusCode::kFailedPrecondition);
  // Mutate-only events are fine without an oracle.
  OwnerEvent mutate;
  mutate.owner = ds.owner;
  mutate.discovered = {ds.strangers[0]};
  mutate.assess = false;
  EXPECT_TRUE(service->Submit(std::move(mutate)).ok());
  ASSERT_TRUE(service->Flush().ok());
  EXPECT_EQ(service->NumStrangers(ds.owner).value(), 1u);
}

TEST(RiskServiceTest, CarriedLearnersSkipStablePools) {
  sim::OwnerDataset ds = MakeDataset(16);

  auto run_two_waves = [&](bool carry) {
    RiskServiceConfig config = ServiceConfig();
    config.carry_learners = carry;
    auto service = RiskService::Create(std::move(config)).value();
    // AssessSync supplies the oracle per call; none registered.
    EXPECT_TRUE(service->RegisterOwner(Registration(ds)).ok());
    sim::OwnerModel oracle = MakeOracle(ds, 53);
    Rng rng(59);
    size_t half = ds.strangers.size() / 2;
    EXPECT_TRUE(service
                    ->AddStrangers(ds.owner,
                                   std::vector<UserId>(
                                       ds.strangers.begin(),
                                       ds.strangers.begin() + half))
                    .ok());
    RiskReport first = service->AssessSync(ds.owner, &oracle, &rng).value();
    EXPECT_EQ(first.assessment.pools_carried, 0u);
    EXPECT_TRUE(service
                    ->AddStrangers(ds.owner,
                                   std::vector<UserId>(
                                       ds.strangers.begin() + half,
                                       ds.strangers.end()))
                    .ok());
    RiskReport second = service->AssessSync(ds.owner, &oracle, &rng).value();
    EXPECT_EQ(service->Poll(ds.owner)->version, 2u);
    struct Outcome {
      RiskReport second;
      size_t total_queries;
      size_t pools_carried_stat;
    };
    return Outcome{second, oracle.num_queries(),
                   service->stats().pools_carried};
  };

  auto carried = run_two_waves(true);
  auto rebuilt = run_two_waves(false);

  // Pools whose membership a new discovery wave did not touch are served
  // by their carried learner: no rebuild, no extra validation queries.
  EXPECT_GT(carried.second.assessment.pools_carried, 0u);
  EXPECT_EQ(carried.pools_carried_stat,
            carried.second.assessment.pools_carried);
  EXPECT_EQ(rebuilt.second.assessment.pools_carried, 0u);
  EXPECT_LE(carried.total_queries, rebuilt.total_queries);
  // Both runs assess the full stranger set.
  EXPECT_EQ(carried.second.assessment.strangers.size(),
            ds.strangers.size());
  EXPECT_EQ(rebuilt.second.assessment.strangers.size(),
            ds.strangers.size());
}

TEST(RiskServiceTest, ResidentCachesAreBitwiseNeutral) {
  // The partition and encode carries are pure cost knobs: a trace of warm
  // ticks (learner carry ON in both arms — carried learners are part of
  // the warm semantics, not under test here) must produce bitwise the
  // same report every tick with the caches on and off, including across
  // an upstream profile edit that invalidates every fingerprint. The two
  // services run interleaved so each tick sees identical table state.
  sim::OwnerDataset ds = MakeDataset(18);

  RiskServiceConfig cached_config = ServiceConfig();
  cached_config.carry_pool_partition = true;
  cached_config.carry_encoded_tables = true;
  auto cached = RiskService::Create(std::move(cached_config)).value();
  RiskServiceConfig cold_config = ServiceConfig();
  cold_config.carry_pool_partition = false;
  cold_config.carry_encoded_tables = false;
  auto cold = RiskService::Create(std::move(cold_config)).value();
  ASSERT_TRUE(cached->RegisterOwner(Registration(ds)).ok());
  ASSERT_TRUE(cold->RegisterOwner(Registration(ds)).ok());

  sim::OwnerModel cached_oracle = MakeOracle(ds, 71);
  sim::OwnerModel cold_oracle = MakeOracle(ds, 71);
  Rng cached_rng(73);
  Rng cold_rng(73);
  size_t half = ds.strangers.size() / 2;
  size_t n = ds.strangers.size();

  auto tick = [&](const std::vector<UserId>& discovered) {
    if (!discovered.empty()) {
      ASSERT_TRUE(cached->AddStrangers(ds.owner, discovered).ok());
      ASSERT_TRUE(cold->AddStrangers(ds.owner, discovered).ok());
    }
    RiskReport a =
        cached->AssessSync(ds.owner, &cached_oracle, &cached_rng).value();
    RiskReport b = cold->AssessSync(ds.owner, &cold_oracle, &cold_rng).value();
    ExpectReportsIdentical(a, b);
    EXPECT_EQ(a.assessment.pools_carried, b.assessment.pools_carried);
  };

  std::vector<UserId> first_wave(ds.strangers.begin(),
                                 ds.strangers.begin() + half);
  std::vector<UserId> second_wave(ds.strangers.begin() + half,
                                  ds.strangers.end());
  tick(first_wave);   // cold start: both caches miss
  tick(second_wave);  // grown set: suffix-only reuse
  tick({});           // unchanged set: full reuse
  // Upstream edit: every fingerprint breaks; the next tick rebuilds cold
  // and both arms still agree.
  ASSERT_TRUE(ds.profiles.SetValue(ds.strangers[0], 0, "female").ok());
  tick({});

  RiskService::Stats cached_stats = cached->stats();
  EXPECT_EQ(cached_stats.partition_misses, 2u);  // first tick + post-edit
  EXPECT_EQ(cached_stats.partition_hits, 2u);    // grown + unchanged
  EXPECT_EQ(cached_stats.encode_misses, 2u);
  EXPECT_EQ(cached_stats.encode_hits, 2u);
  // half (cold) + (n - half) (suffix) + 0 (unchanged) + n (rebuild).
  EXPECT_EQ(cached_stats.encode_rows_appended, 2 * n);

  // The cold arm never exercises (or counts) the caches.
  RiskService::Stats cold_stats = cold->stats();
  EXPECT_EQ(cold_stats.partition_hits + cold_stats.partition_misses, 0u);
  EXPECT_EQ(cold_stats.encode_hits + cold_stats.encode_misses, 0u);
}

TEST(RiskServiceTest, AssessSyncRecordsLabelsAndNeverReasks) {
  sim::OwnerDataset ds = MakeDataset(17, 120);
  auto service = RiskService::Create(ServiceConfig()).value();
  ASSERT_TRUE(service->RegisterOwner(Registration(ds)).ok());
  ASSERT_TRUE(service->DiscoverAllStrangers(ds.owner).ok());

  sim::OwnerModel model = MakeOracle(ds, 61);
  std::set<UserId> asked;
  class NoRepeatOracle : public LabelOracle {
   public:
    NoRepeatOracle(sim::OwnerModel* model, std::set<UserId>* asked)
        : model_(model), asked_(asked) {}
    RiskLabel QueryLabel(UserId stranger, double similarity,
                         double benefit) override {
      EXPECT_TRUE(asked_->insert(stranger).second)
          << "stranger " << stranger << " asked twice";
      return model_->QueryLabel(stranger, similarity, benefit);
    }

   private:
    sim::OwnerModel* model_;
    std::set<UserId>* asked_;
  } oracle(&model, &asked);

  Rng rng(67);
  RiskReport first = service->AssessSync(ds.owner, &oracle, &rng).value();
  EXPECT_EQ(service->NumKnownLabels(ds.owner).value(), asked.size());
  EXPECT_EQ(first.assessment.total_queries, asked.size());
  // Second sync tick re-asks nobody (NoRepeatOracle enforces it).
  RiskReport second = service->AssessSync(ds.owner, &oracle, &rng).value();
  EXPECT_EQ(second.assessment.strangers.size(), ds.strangers.size());
  EXPECT_EQ(service->Poll(ds.owner)->version, 2u);
}

}  // namespace
}  // namespace sight
