#include "graph/statistics.h"

#include <gtest/gtest.h>

namespace sight {
namespace {

TEST(GraphStatsTest, EmptyGraph) {
  SocialGraph g;
  GraphStats stats = ComputeGraphStats(g);
  EXPECT_EQ(stats.num_users, 0u);
  EXPECT_EQ(stats.num_edges, 0u);
  EXPECT_DOUBLE_EQ(stats.average_degree, 0.0);
  EXPECT_EQ(stats.connected_components, 0u);
}

TEST(GraphStatsTest, TriangleWithTail) {
  // Triangle 0-1-2 plus pendant 3 and isolated 4.
  SocialGraph g(5);
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  ASSERT_TRUE(g.AddEdge(1, 2).ok());
  ASSERT_TRUE(g.AddEdge(0, 2).ok());
  ASSERT_TRUE(g.AddEdge(2, 3).ok());
  GraphStats stats = ComputeGraphStats(g);
  EXPECT_EQ(stats.num_users, 5u);
  EXPECT_EQ(stats.num_edges, 4u);
  EXPECT_DOUBLE_EQ(stats.average_degree, 8.0 / 5.0);
  EXPECT_EQ(stats.max_degree, 3u);  // user 2
  EXPECT_EQ(stats.isolated_users, 1u);
  EXPECT_EQ(stats.connected_components, 2u);
  // Clustering: users 0,1 have coefficient 1; user 2 has 1/3; others 0.
  EXPECT_NEAR(stats.average_clustering_coefficient,
              (1.0 + 1.0 + 1.0 / 3.0) / 5.0, 1e-12);
}

TEST(GraphStatsTest, MedianDegree) {
  SocialGraph g(3);
  ASSERT_TRUE(g.AddEdge(0, 1).ok());  // degrees 1, 1, 0
  GraphStats stats = ComputeGraphStats(g);
  EXPECT_EQ(stats.median_degree, 1u);
}

TEST(GraphStatsTest, FormatIncludesAllFields) {
  SocialGraph g(2);
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  std::string text = FormatGraphStats(ComputeGraphStats(g));
  EXPECT_NE(text.find("users: 2"), std::string::npos);
  EXPECT_NE(text.find("edges: 1"), std::string::npos);
  EXPECT_NE(text.find("connected components: 1"), std::string::npos);
}

}  // namespace
}  // namespace sight
