#include "graph/visibility.h"

#include <gtest/gtest.h>

namespace sight {
namespace {

TEST(ProfileItemTest, NamesRoundTrip) {
  for (ProfileItem item : kAllProfileItems) {
    auto parsed = ProfileItemFromName(ProfileItemName(item));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), item);
  }
}

TEST(ProfileItemTest, UnknownNameIsNotFound) {
  EXPECT_EQ(ProfileItemFromName("selfies").status().code(),
            StatusCode::kNotFound);
}

TEST(VisibilityTableTest, DefaultsToHidden) {
  VisibilityTable v;
  EXPECT_FALSE(v.IsVisible(0, ProfileItem::kWall));
  EXPECT_EQ(v.VisibleCount(99), 0u);
  EXPECT_EQ(v.Mask(5), 0u);
}

TEST(VisibilityTableTest, SetAndQuery) {
  VisibilityTable v;
  v.SetVisible(3, ProfileItem::kPhoto);
  v.SetVisible(3, ProfileItem::kWork);
  EXPECT_TRUE(v.IsVisible(3, ProfileItem::kPhoto));
  EXPECT_TRUE(v.IsVisible(3, ProfileItem::kWork));
  EXPECT_FALSE(v.IsVisible(3, ProfileItem::kWall));
  EXPECT_EQ(v.VisibleCount(3), 2u);
}

TEST(VisibilityTableTest, Unset) {
  VisibilityTable v;
  v.SetVisible(1, ProfileItem::kWall);
  v.SetVisible(1, ProfileItem::kWall, false);
  EXPECT_FALSE(v.IsVisible(1, ProfileItem::kWall));
  EXPECT_EQ(v.VisibleCount(1), 0u);
}

TEST(VisibilityTableTest, MaskRoundTrip) {
  VisibilityTable v;
  v.SetMask(2, 0b1010101);
  EXPECT_TRUE(v.IsVisible(2, ProfileItem::kWall));
  EXPECT_FALSE(v.IsVisible(2, ProfileItem::kPhoto));
  EXPECT_TRUE(v.IsVisible(2, ProfileItem::kFriendList));
  EXPECT_EQ(v.Mask(2), 0b1010101);
  EXPECT_EQ(v.VisibleCount(2), 4u);
}

TEST(VisibilityTableTest, SetMaskClampsToSevenBits) {
  VisibilityTable v;
  v.SetMask(0, 0xff);
  EXPECT_EQ(v.Mask(0), 0x7f);
  EXPECT_EQ(v.VisibleCount(0), 7u);
}

TEST(VisibilityTableTest, AllItemsIndependent) {
  VisibilityTable v;
  for (ProfileItem item : kAllProfileItems) {
    v.SetVisible(0, item);
    EXPECT_TRUE(v.IsVisible(0, item));
  }
  EXPECT_EQ(v.VisibleCount(0), kNumProfileItems);
}

}  // namespace
}  // namespace sight
