#include "graph/social_graph.h"

#include <gtest/gtest.h>

namespace sight {
namespace {

TEST(SocialGraphTest, StartsEmpty) {
  SocialGraph g;
  EXPECT_EQ(g.NumUsers(), 0u);
  EXPECT_EQ(g.NumEdges(), 0u);
  EXPECT_FALSE(g.HasUser(0));
}

TEST(SocialGraphTest, AddUserReturnsConsecutiveIds) {
  SocialGraph g;
  EXPECT_EQ(g.AddUser(), 0u);
  EXPECT_EQ(g.AddUser(), 1u);
  EXPECT_EQ(g.AddUser(), 2u);
  EXPECT_EQ(g.NumUsers(), 3u);
  EXPECT_TRUE(g.HasUser(2));
  EXPECT_FALSE(g.HasUser(3));
}

TEST(SocialGraphTest, AddUsersBulk) {
  SocialGraph g(2);
  EXPECT_EQ(g.NumUsers(), 2u);
  EXPECT_EQ(g.AddUsers(3), 2u);
  EXPECT_EQ(g.NumUsers(), 5u);
}

TEST(SocialGraphTest, AddEdgeSymmetric) {
  SocialGraph g(3);
  ASSERT_TRUE(g.AddEdge(0, 2).ok());
  EXPECT_TRUE(g.HasEdge(0, 2));
  EXPECT_TRUE(g.HasEdge(2, 0));
  EXPECT_FALSE(g.HasEdge(0, 1));
  EXPECT_EQ(g.NumEdges(), 1u);
}

TEST(SocialGraphTest, AddEdgeRejectsSelfLoop) {
  SocialGraph g(2);
  Status s = g.AddEdge(1, 1);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(g.NumEdges(), 0u);
}

TEST(SocialGraphTest, AddEdgeRejectsUnknownUser) {
  SocialGraph g(2);
  EXPECT_EQ(g.AddEdge(0, 5).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(g.AddEdge(5, 0).code(), StatusCode::kInvalidArgument);
}

TEST(SocialGraphTest, AddEdgeRejectsDuplicate) {
  SocialGraph g(2);
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  EXPECT_EQ(g.AddEdge(1, 0).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(g.NumEdges(), 1u);
}

TEST(SocialGraphTest, AddEdgeIfAbsentReportsInsertion) {
  SocialGraph g(2);
  EXPECT_TRUE(g.AddEdgeIfAbsent(0, 1).value());
  EXPECT_FALSE(g.AddEdgeIfAbsent(0, 1).value());
  EXPECT_EQ(g.NumEdges(), 1u);
}

TEST(SocialGraphTest, RemoveEdge) {
  SocialGraph g(3);
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  ASSERT_TRUE(g.RemoveEdge(1, 0).ok());
  EXPECT_FALSE(g.HasEdge(0, 1));
  EXPECT_EQ(g.NumEdges(), 0u);
  EXPECT_EQ(g.RemoveEdge(0, 1).code(), StatusCode::kNotFound);
}

TEST(SocialGraphTest, NeighborsSortedAscending) {
  SocialGraph g(5);
  ASSERT_TRUE(g.AddEdge(2, 4).ok());
  ASSERT_TRUE(g.AddEdge(2, 0).ok());
  ASSERT_TRUE(g.AddEdge(2, 3).ok());
  const auto& n = g.Neighbors(2);
  ASSERT_EQ(n.size(), 3u);
  EXPECT_EQ(n[0], 0u);
  EXPECT_EQ(n[1], 3u);
  EXPECT_EQ(n[2], 4u);
}

TEST(SocialGraphTest, DegreeTracksEdges) {
  SocialGraph g(4);
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  ASSERT_TRUE(g.AddEdge(0, 2).ok());
  EXPECT_EQ(g.Degree(0), 2u);
  EXPECT_EQ(g.Degree(1), 1u);
  EXPECT_EQ(g.Degree(3), 0u);
}

TEST(SocialGraphTest, HasEdgeFalseForUnknownUsers) {
  SocialGraph g(2);
  EXPECT_FALSE(g.HasEdge(0, 9));
  EXPECT_FALSE(g.HasEdge(9, 9));
}

TEST(SocialGraphTest, LargeStarGraph) {
  SocialGraph g(1001);
  for (UserId u = 1; u <= 1000; ++u) {
    ASSERT_TRUE(g.AddEdge(0, u).ok());
  }
  EXPECT_EQ(g.Degree(0), 1000u);
  EXPECT_EQ(g.NumEdges(), 1000u);
  EXPECT_TRUE(g.HasEdge(0, 777));
}

}  // namespace
}  // namespace sight
