#include "graph/algorithms.h"

#include <limits>

#include <gtest/gtest.h>

#include "graph/social_graph.h"

namespace sight {
namespace {

// Owner 0 - friends 1,2,3 - strangers 4,5. 4 connects to friends 1 and 2;
// 5 connects to friend 3. Friends 1-2 are themselves connected.
SocialGraph EgoFixture() {
  SocialGraph g(6);
  EXPECT_TRUE(g.AddEdge(0, 1).ok());
  EXPECT_TRUE(g.AddEdge(0, 2).ok());
  EXPECT_TRUE(g.AddEdge(0, 3).ok());
  EXPECT_TRUE(g.AddEdge(1, 2).ok());
  EXPECT_TRUE(g.AddEdge(1, 4).ok());
  EXPECT_TRUE(g.AddEdge(2, 4).ok());
  EXPECT_TRUE(g.AddEdge(3, 5).ok());
  return g;
}

TEST(MutualFriendsTest, FindsIntersection) {
  SocialGraph g = EgoFixture();
  std::vector<UserId> mutual = MutualFriends(g, 0, 4);
  EXPECT_EQ(mutual, (std::vector<UserId>{1, 2}));
  EXPECT_EQ(MutualFriendCount(g, 0, 4), 2u);
}

TEST(MutualFriendsTest, EmptyWhenNoOverlap) {
  SocialGraph g = EgoFixture();
  EXPECT_TRUE(MutualFriends(g, 4, 5).empty());
  EXPECT_EQ(MutualFriendCount(g, 4, 5), 0u);
}

TEST(MutualFriendsTest, UnknownUsersYieldEmpty) {
  SocialGraph g = EgoFixture();
  EXPECT_TRUE(MutualFriends(g, 0, 99).empty());
  EXPECT_EQ(MutualFriendCount(g, 99, 0), 0u);
}

TEST(MutualFriendsTest, SymmetricInArguments) {
  SocialGraph g = EgoFixture();
  EXPECT_EQ(MutualFriends(g, 0, 4), MutualFriends(g, 4, 0));
}

TEST(InducedEdgeCountTest, CountsOnlyInternalEdges) {
  SocialGraph g = EgoFixture();
  EXPECT_EQ(InducedEdgeCount(g, {1, 2}), 1u);     // edge 1-2
  EXPECT_EQ(InducedEdgeCount(g, {1, 3}), 0u);
  EXPECT_EQ(InducedEdgeCount(g, {0, 1, 2}), 3u);  // triangle
  EXPECT_EQ(InducedEdgeCount(g, {}), 0u);
}

TEST(InducedDensityTest, DensityOfCliqueIsOne) {
  SocialGraph g = EgoFixture();
  EXPECT_DOUBLE_EQ(InducedDensity(g, {0, 1, 2}), 1.0);
}

TEST(InducedDensityTest, SmallSetsHaveZeroDensity) {
  SocialGraph g = EgoFixture();
  EXPECT_DOUBLE_EQ(InducedDensity(g, {1}), 0.0);
  EXPECT_DOUBLE_EQ(InducedDensity(g, {}), 0.0);
}

TEST(InducedDensityTest, PartialDensity) {
  SocialGraph g = EgoFixture();
  // {1, 2, 3}: only edge 1-2 out of 3 possible.
  EXPECT_NEAR(InducedDensity(g, {1, 2, 3}), 1.0 / 3.0, 1e-12);
}

TEST(TwoHopStrangersTest, FindsFriendsOfFriendsOnly) {
  SocialGraph g = EgoFixture();
  auto strangers = TwoHopStrangers(g, 0);
  ASSERT_TRUE(strangers.ok());
  EXPECT_EQ(strangers.value(), (std::vector<UserId>{4, 5}));
}

TEST(TwoHopStrangersTest, ExcludesOwnerAndFriends) {
  SocialGraph g = EgoFixture();
  auto strangers = TwoHopStrangers(g, 0).value();
  for (UserId s : strangers) {
    EXPECT_NE(s, 0u);
    EXPECT_FALSE(g.HasEdge(0, s));
  }
}

TEST(TwoHopStrangersTest, UnknownOwnerIsError) {
  SocialGraph g = EgoFixture();
  EXPECT_EQ(TwoHopStrangers(g, 42).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(TwoHopStrangersTest, IsolatedOwnerHasNoStrangers) {
  SocialGraph g(3);
  EXPECT_TRUE(TwoHopStrangers(g, 0).value().empty());
}

TEST(TwoHopStrangersTest, FriendOfTwoFriendsCountedOnce) {
  SocialGraph g = EgoFixture();
  auto strangers = TwoHopStrangers(g, 0).value();
  size_t count4 = 0;
  for (UserId s : strangers) {
    if (s == 4) ++count4;
  }
  EXPECT_EQ(count4, 1u);
}

TEST(BfsDistancesTest, ComputesHopDistances) {
  SocialGraph g = EgoFixture();
  auto dist = BfsDistances(g, 0).value();
  EXPECT_EQ(dist[0], 0u);
  EXPECT_EQ(dist[1], 1u);
  EXPECT_EQ(dist[4], 2u);
  EXPECT_EQ(dist[5], 2u);
}

TEST(BfsDistancesTest, UnreachableIsMax) {
  SocialGraph g(3);
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  auto dist = BfsDistances(g, 0).value();
  EXPECT_EQ(dist[2], std::numeric_limits<size_t>::max());
}

TEST(BfsDistancesTest, StrangersAreExactlyDistanceTwo) {
  SocialGraph g = EgoFixture();
  auto dist = BfsDistances(g, 0).value();
  for (UserId s : TwoHopStrangers(g, 0).value()) {
    EXPECT_EQ(dist[s], 2u);
  }
}

TEST(ClusteringCoefficientTest, TriangleVertexIsOne) {
  SocialGraph g = EgoFixture();
  // User 0's neighbors {1,2,3} have one edge (1-2) of three possible.
  EXPECT_NEAR(LocalClusteringCoefficient(g, 0), 1.0 / 3.0, 1e-12);
}

TEST(ClusteringCoefficientTest, LowDegreeIsZero) {
  SocialGraph g = EgoFixture();
  EXPECT_DOUBLE_EQ(LocalClusteringCoefficient(g, 5), 0.0);
}

TEST(ClusteringCoefficientTest, AverageOverEmptyGraphIsZero) {
  SocialGraph g;
  EXPECT_DOUBLE_EQ(AverageClusteringCoefficient(g), 0.0);
}

TEST(DegreeSequenceTest, MatchesDegrees) {
  SocialGraph g = EgoFixture();
  auto degrees = DegreeSequence(g);
  ASSERT_EQ(degrees.size(), 6u);
  EXPECT_EQ(degrees[0], 3u);
  EXPECT_EQ(degrees[4], 2u);
}

TEST(ConnectedComponentsTest, CountsComponents) {
  SocialGraph g = EgoFixture();
  EXPECT_EQ(CountConnectedComponents(g), 1u);
  g.AddUsers(2);  // two isolated users
  EXPECT_EQ(CountConnectedComponents(g), 3u);
}

}  // namespace
}  // namespace sight
