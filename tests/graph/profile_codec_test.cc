// Unit tests for the dictionary encoding of categorical profiles
// (ProfileCodec / EncodedProfileTable).

#include "graph/profile_codec.h"

#include <gtest/gtest.h>

#include "graph/profile.h"

namespace sight {
namespace {

ProfileTable ThreeAttributeTable() {
  auto schema =
      ProfileSchema::Create({"gender", "locale", "hometown"}).value();
  return ProfileTable(std::move(schema));
}

TEST(ProfileCodecTest, InternAssignsDenseCodesInFirstSeenOrder) {
  ProfileCodec codec(2);
  EXPECT_EQ(codec.Intern(0, "male"), 1u);
  EXPECT_EQ(codec.Intern(0, "female"), 2u);
  EXPECT_EQ(codec.Intern(0, "male"), 1u);
  EXPECT_EQ(codec.NumCodes(0), 3u);  // "", "male", "female"

  // Dictionaries are per-attribute: the same string gets an independent
  // code under another attribute.
  EXPECT_EQ(codec.Intern(1, "male"), 1u);
  EXPECT_EQ(codec.NumCodes(1), 2u);
}

TEST(ProfileCodecTest, EmptyStringIsTheMissingSentinel) {
  ProfileCodec codec(1);
  EXPECT_EQ(codec.Intern(0, ""), ProfileCodec::kMissingCode);
  EXPECT_EQ(codec.Code(0, ""), ProfileCodec::kMissingCode);
  // The sentinel never grows the dictionary.
  EXPECT_EQ(codec.NumCodes(0), 1u);
  EXPECT_EQ(codec.Value(0, ProfileCodec::kMissingCode), "");
}

TEST(ProfileCodecTest, CodeOnNeverInternedValueIsUnknown) {
  ProfileCodec codec(1);
  codec.Intern(0, "tr");
  EXPECT_EQ(codec.Code(0, "de"), ProfileCodec::kUnknownValue);
  // kUnknownValue is out of every code array's range by construction.
  EXPECT_GE(ProfileCodec::kUnknownValue, codec.NumCodes(0));
  EXPECT_EQ(codec.Intern(0, "de"), 2u);
  EXPECT_EQ(codec.Code(0, "de"), 2u);
}

TEST(ProfileCodecTest, ValueRoundTripsInternedCodes) {
  ProfileCodec codec(1);
  uint32_t tr = codec.Intern(0, "tr");
  uint32_t de = codec.Intern(0, "de");
  EXPECT_EQ(codec.Value(0, tr), "tr");
  EXPECT_EQ(codec.Value(0, de), "de");
}

TEST(ProfileCodecTest, EncodeIntoTreatsShortVectorsAsMissing) {
  ProfileCodec codec(3);
  // A profile whose value vector is shorter than the schema reads as
  // missing past its end (ProfileTable's all-missing default profile).
  Profile profile;
  profile.values = {"male"};
  uint32_t codes[3] = {99, 99, 99};
  codec.EncodeInto(profile, codes);
  EXPECT_EQ(codes[0], 1u);
  EXPECT_EQ(codes[1], ProfileCodec::kMissingCode);
  EXPECT_EQ(codes[2], ProfileCodec::kMissingCode);
}

TEST(EncodedProfileTableTest, RowsMatchProfiles) {
  ProfileTable table = ThreeAttributeTable();
  ASSERT_TRUE(table.Set(5, Profile{{"male", "tr", "ankara"}}).ok());
  ASSERT_TRUE(table.Set(9, Profile{{"female", "tr", ""}}).ok());
  // User 7 has no profile: all attributes missing.
  std::vector<UserId> users = {5, 9, 7};

  EncodedProfileTable enc = EncodedProfileTable::Build(table, users);
  ASSERT_EQ(enc.num_rows(), 3u);
  ASSERT_EQ(enc.num_attributes(), 3u);
  EXPECT_EQ(enc.users(), users);

  // Identical strings share a code; distinct strings do not.
  EXPECT_EQ(enc.code(0, 1), enc.code(1, 1));                  // "tr" == "tr"
  EXPECT_NE(enc.code(0, 0), enc.code(1, 0));                  // male/female
  EXPECT_EQ(enc.code(1, 2), ProfileCodec::kMissingCode);      // ""
  EXPECT_EQ(enc.code(2, 0), ProfileCodec::kMissingCode);      // no profile
  EXPECT_EQ(enc.code(2, 1), ProfileCodec::kMissingCode);
  EXPECT_EQ(enc.code(2, 2), ProfileCodec::kMissingCode);

  // Rows decode back to the stored strings.
  for (size_t i = 0; i < enc.num_rows(); ++i) {
    const Profile& profile = table.Get(users[i]);
    for (AttributeId a = 0; a < enc.num_attributes(); ++a) {
      const std::string& expected =
          profile.IsMissing(a) ? std::string() : profile.value(a);
      EXPECT_EQ(enc.codec().Value(a, enc.code(i, a)), expected)
          << "row " << i << " attr " << a;
    }
  }
}

TEST(EncodedProfileTableTest, BaseCodecKeepsSharedCodesAndExtends) {
  ProfileTable table = ThreeAttributeTable();
  ASSERT_TRUE(table.Set(1, Profile{{"male", "tr", "ankara"}}).ok());
  ASSERT_TRUE(table.Set(2, Profile{{"female", "tr", "izmir"}}).ok());
  ASSERT_TRUE(table.Set(3, Profile{{"male", "de", "berlin"}}).ok());

  EncodedProfileTable pool = EncodedProfileTable::Build(table, {1, 2});
  const ProfileCodec& base = pool.codec();
  size_t base_hometowns = base.NumCodes(2);

  // Re-encode a superset against the pool's dictionary: values the pool
  // saw keep their pool codes, novel values ("de", "berlin") get fresh
  // codes past the base range.
  EncodedProfileTable all =
      EncodedProfileTable::Build(table, {1, 2, 3}, &base);
  EXPECT_EQ(all.code(0, 0), pool.code(0, 0));
  EXPECT_EQ(all.code(1, 0), pool.code(1, 0));
  EXPECT_EQ(all.code(0, 1), pool.code(0, 1));
  EXPECT_EQ(all.code(2, 0), pool.code(0, 0));  // "male" shared with user 1
  EXPECT_GE(all.code(2, 1), base.NumCodes(1));  // "de" is novel
  EXPECT_GE(all.code(2, 2), base_hometowns);    // "berlin" is novel
  // The base dictionary itself is untouched (it was copied).
  EXPECT_EQ(base.Code(1, "de"), ProfileCodec::kUnknownValue);
}

TEST(ProfileCodecTest, InterningIsAppendOnlyAcrossGrowth) {
  // The invariance the whole carry design rests on: a code, once
  // assigned, never changes — no matter how much the dictionary grows
  // afterwards — and never-interned values keep reading kUnknownValue.
  ProfileCodec codec(2);
  uint32_t male = codec.Intern(0, "male");
  uint32_t tr = codec.Intern(1, "tr");
  std::vector<std::string> extra = {"female", "x", "de", "ankara", "izmir"};
  for (const std::string& value : extra) {
    codec.Intern(0, value);
    codec.Intern(1, value);
  }
  EXPECT_EQ(codec.Code(0, "male"), male);
  EXPECT_EQ(codec.Code(1, "tr"), tr);
  EXPECT_EQ(codec.Intern(0, "male"), male);
  EXPECT_EQ(codec.Code(0, "never-seen"), ProfileCodec::kUnknownValue);
  EXPECT_EQ(codec.Code(0, ""), ProfileCodec::kMissingCode);
}

TEST(EncodedProfileTableTest, AppendRowsMatchesOneShotBuild) {
  ProfileTable table = ThreeAttributeTable();
  ASSERT_TRUE(table.Set(1, Profile{{"male", "tr", "ankara"}}).ok());
  ASSERT_TRUE(table.Set(2, Profile{{"female", "tr", "izmir"}}).ok());
  ASSERT_TRUE(table.Set(3, Profile{{"male", "de", "berlin"}}).ok());
  ASSERT_TRUE(table.Set(4, Profile{{"", "de", "ankara"}}).ok());
  std::vector<UserId> all = {1, 2, 3, 4};

  // Build over a prefix, then append the rest one batch at a time: every
  // row and every dictionary code must equal the one-shot build's.
  EncodedProfileTable grown = EncodedProfileTable::Build(table, {1, 2});
  grown.AppendRows(table, {3});
  grown.AppendRows(table, {4});
  EncodedProfileTable oneshot = EncodedProfileTable::Build(table, all);

  ASSERT_EQ(grown.num_rows(), oneshot.num_rows());
  EXPECT_EQ(grown.users(), oneshot.users());
  for (size_t i = 0; i < all.size(); ++i) {
    for (AttributeId a = 0; a < grown.num_attributes(); ++a) {
      EXPECT_EQ(grown.code(i, a), oneshot.code(i, a))
          << "row " << i << " attr " << a;
    }
  }
  for (AttributeId a = 0; a < grown.num_attributes(); ++a) {
    EXPECT_EQ(grown.codec().NumCodes(a), oneshot.codec().NumCodes(a));
  }
}

TEST(StrangerEncodeCacheTest, RefreshAppendsOnlyTheSuffix) {
  ProfileTable table = ThreeAttributeTable();
  ASSERT_TRUE(table.Set(1, Profile{{"male", "tr", "ankara"}}).ok());
  ASSERT_TRUE(table.Set(2, Profile{{"female", "tr", "izmir"}}).ok());
  ASSERT_TRUE(table.Set(3, Profile{{"male", "de", "berlin"}}).ok());

  StrangerEncodeCache cache;
  auto first = cache.Refresh(table, {1, 2});
  EXPECT_FALSE(first.reused);
  EXPECT_EQ(first.rows_appended, 2u);
  ASSERT_EQ(cache.num_rows(), 2u);

  // Identical list: nothing to encode.
  auto same = cache.Refresh(table, {1, 2});
  EXPECT_TRUE(same.reused);
  EXPECT_EQ(same.rows_appended, 0u);

  // Grown list: only the new stranger is encoded.
  auto grown = cache.Refresh(table, {1, 2, 3});
  EXPECT_TRUE(grown.reused);
  EXPECT_EQ(grown.rows_appended, 1u);
  EXPECT_EQ(cache.num_rows(), 3u);

  // Gathered rows match a direct encode of the same users (any order).
  std::vector<uint32_t> rows;
  ASSERT_TRUE(cache.GatherRows({3, 1}, &rows));
  ASSERT_EQ(rows.size(), 2u * cache.num_attributes());
  EncodedProfileTable direct = EncodedProfileTable::Build(table, {1, 2, 3});
  for (AttributeId a = 0; a < cache.num_attributes(); ++a) {
    EXPECT_EQ(rows[a], direct.code(2, a));
    EXPECT_EQ(rows[cache.num_attributes() + a], direct.code(0, a));
  }
  // An uncached user fails the gather (caller re-encodes directly).
  EXPECT_FALSE(cache.GatherRows({1, 99}, &rows));
}

TEST(StrangerEncodeCacheTest, RefreshRebuildsOnMutationOrBrokenPrefix) {
  ProfileTable table = ThreeAttributeTable();
  ASSERT_TRUE(table.Set(1, Profile{{"male", "tr", "ankara"}}).ok());
  ASSERT_TRUE(table.Set(2, Profile{{"female", "tr", "izmir"}}).ok());

  StrangerEncodeCache cache;
  (void)cache.Refresh(table, {1, 2});

  // A profile edit bumps the table's mutation epoch: the fingerprint
  // breaks and the next refresh is a cold rebuild that sees the edit.
  ASSERT_TRUE(table.SetValue(1, 2, "istanbul").ok());
  auto after_edit = cache.Refresh(table, {1, 2});
  EXPECT_FALSE(after_edit.reused);
  EXPECT_EQ(after_edit.rows_appended, 2u);
  std::vector<uint32_t> rows;
  ASSERT_TRUE(cache.GatherRows({1}, &rows));
  EncodedProfileTable direct = EncodedProfileTable::Build(table, {1, 2});
  for (AttributeId a = 0; a < cache.num_attributes(); ++a) {
    EXPECT_EQ(rows[a], direct.code(0, a));
  }

  // A reordered (non-prefix) list also rebuilds.
  auto reordered = cache.Refresh(table, {2, 1});
  EXPECT_FALSE(reordered.reused);
  EXPECT_EQ(reordered.rows_appended, 2u);

  // Clear drops everything.
  cache.Clear();
  EXPECT_TRUE(cache.empty());
  EXPECT_EQ(cache.num_rows(), 0u);
}

TEST(ProfileCodecTest, DecodeRoundTripsInternedValues) {
  ProfileCodec codec(2);
  uint32_t code = codec.Intern(0, "istanbul");
  auto decoded = codec.Decode(0, code);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), "istanbul");
  // The missing sentinel decodes to the empty string.
  auto missing = codec.Decode(1, ProfileCodec::kMissingCode);
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing.value(), "");
}

TEST(ProfileCodecTest, DecodeOutOfDictionaryCodeIsOutOfRange) {
  ProfileCodec codec(2);
  uint32_t code = codec.Intern(0, "istanbul");
  // One past the last assigned code: never in the dictionary.
  EXPECT_EQ(codec.Decode(0, code + 1).status().code(),
            StatusCode::kOutOfRange);
  // The never-interned marker must also decode as out-of-dictionary.
  EXPECT_EQ(codec.Decode(0, ProfileCodec::kUnknownValue).status().code(),
            StatusCode::kOutOfRange);
  // Codes are per-attribute: attribute 1 never interned anything, so
  // attribute 0's code is out of range there.
  EXPECT_EQ(codec.Decode(1, code).status().code(), StatusCode::kOutOfRange);
}

TEST(ProfileCodecTest, DecodeUnknownAttributeIsInvalidArgument) {
  ProfileCodec codec(2);
  EXPECT_EQ(codec.Decode(2, ProfileCodec::kMissingCode).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(codec.Decode(99, 0).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace sight
