#include "graph/profile.h"

#include <gtest/gtest.h>

namespace sight {
namespace {

ProfileSchema TestSchema() {
  return ProfileSchema::Create({"gender", "locale", "last_name"}).value();
}

TEST(ProfileSchemaTest, CreateAndLookup) {
  ProfileSchema schema = TestSchema();
  EXPECT_EQ(schema.num_attributes(), 3u);
  EXPECT_EQ(schema.name(0), "gender");
  EXPECT_EQ(schema.FindAttribute("locale").value(), 1u);
  EXPECT_EQ(schema.FindAttribute("missing").status().code(),
            StatusCode::kNotFound);
}

TEST(ProfileSchemaTest, RejectsDuplicateNames) {
  EXPECT_EQ(ProfileSchema::Create({"a", "a"}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ProfileSchemaTest, RejectsEmptyNames) {
  EXPECT_EQ(ProfileSchema::Create({"a", ""}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ProfileSchemaTest, EmptySchemaAllowed) {
  ProfileSchema schema = ProfileSchema::Create({}).value();
  EXPECT_EQ(schema.num_attributes(), 0u);
}

TEST(ProfileTest, MissingDetection) {
  Profile p;
  p.values = {"male", "", "Smith"};
  EXPECT_FALSE(p.IsMissing(0));
  EXPECT_TRUE(p.IsMissing(1));
  EXPECT_TRUE(p.IsMissing(7));  // out of range counts as missing
}

TEST(ProfileTableTest, SetAndGet) {
  ProfileTable table(TestSchema());
  Profile p;
  p.values = {"male", "tr_TR", "Yilmaz"};
  ASSERT_TRUE(table.Set(3, p).ok());
  EXPECT_TRUE(table.Has(3));
  EXPECT_FALSE(table.Has(2));
  EXPECT_EQ(table.Value(3, 2), "Yilmaz");
  EXPECT_EQ(table.num_profiles(), 1u);
}

TEST(ProfileTableTest, SetRejectsWrongArity) {
  ProfileTable table(TestSchema());
  Profile p;
  p.values = {"male"};
  EXPECT_EQ(table.Set(0, p).code(), StatusCode::kInvalidArgument);
}

TEST(ProfileTableTest, UnsetUserReadsAsAllMissing) {
  ProfileTable table(TestSchema());
  const Profile& p = table.Get(42);
  ASSERT_EQ(p.values.size(), 3u);
  EXPECT_TRUE(p.IsMissing(0));
  EXPECT_TRUE(p.IsMissing(2));
}

TEST(ProfileTableTest, SetValueCreatesSparseProfile) {
  ProfileTable table(TestSchema());
  ASSERT_TRUE(table.SetValue(5, 1, "en_US").ok());
  EXPECT_TRUE(table.Has(5));
  EXPECT_EQ(table.Value(5, 1), "en_US");
  EXPECT_TRUE(table.Get(5).IsMissing(0));
}

TEST(ProfileTableTest, SetValueRejectsBadAttribute) {
  ProfileTable table(TestSchema());
  EXPECT_EQ(table.SetValue(0, 9, "x").code(), StatusCode::kInvalidArgument);
}

TEST(ProfileTableTest, OverwriteDoesNotDoubleCount) {
  ProfileTable table(TestSchema());
  Profile p;
  p.values = {"a", "b", "c"};
  ASSERT_TRUE(table.Set(0, p).ok());
  p.values = {"x", "y", "z"};
  ASSERT_TRUE(table.Set(0, p).ok());
  EXPECT_EQ(table.num_profiles(), 1u);
  EXPECT_EQ(table.Value(0, 0), "x");
}

}  // namespace
}  // namespace sight
