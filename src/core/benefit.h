// The paper's benefit measure (Section II):
//
//   B(o, s) = (1 / |M|) * sum_{i in M} theta_i * V_s(i, o)
//
// M is the set of benefit items on the stranger's profile (the seven items
// of graph/visibility.h), theta_i the owner-assigned importance of item i,
// and V_s(i, o) = 1 iff item i of s's profile is visible to the owner.

#ifndef SIGHT_CORE_BENEFIT_H_
#define SIGHT_CORE_BENEFIT_H_

#include <array>
#include <vector>

#include "graph/types.h"
#include "graph/visibility.h"
#include "util/status.h"

namespace sight {

/// Owner-assigned importance coefficients, indexed by ProfileItem.
struct ThetaWeights {
  std::array<double, kNumProfileItems> values;

  /// Uniform weights (theta_i = 1 for all items).
  static ThetaWeights Uniform();

  /// The paper's average owner-given weights (Table III), normalized to
  /// sum 1: hometown .155, friend .149, photo .147, location .143,
  /// education .1393, wall .1328, work .1321.
  static ThetaWeights PaperTable3();

  double operator[](ProfileItem item) const {
    return values[static_cast<size_t>(item)];
  }
  double& operator[](ProfileItem item) {
    return values[static_cast<size_t>(item)];
  }

  /// InvalidArgument when any weight is negative or all are zero.
  [[nodiscard]] Status Validate() const;
};

/// Computes B(o, s) over a visibility table.
class BenefitModel {
 public:
  [[nodiscard]] static Result<BenefitModel> Create(ThetaWeights theta);

  /// B(o, s) in [0, max theta]. With theta in [0,1] the result is in
  /// [0, 1]. The owner argument is implicit in the visibility table (which
  /// stores stranger-facing visibility).
  double Compute(const VisibilityTable& visibility, UserId stranger) const;

  /// Benefit for each stranger, in order.
  std::vector<double> ComputeBatch(const VisibilityTable& visibility,
                                   const std::vector<UserId>& strangers) const;

  const ThetaWeights& theta() const { return theta_; }

 private:
  explicit BenefitModel(ThetaWeights theta) : theta_(theta) {}

  ThetaWeights theta_;
};

}  // namespace sight

#endif  // SIGHT_CORE_BENEFIT_H_
