#include "core/benefit.h"

namespace sight {

ThetaWeights ThetaWeights::Uniform() {
  ThetaWeights theta;
  theta.values.fill(1.0);
  return theta;
}

ThetaWeights ThetaWeights::PaperTable3() {
  ThetaWeights theta;
  theta[ProfileItem::kHometown] = 0.155;
  theta[ProfileItem::kFriendList] = 0.149;
  theta[ProfileItem::kPhoto] = 0.147;
  theta[ProfileItem::kLocation] = 0.143;
  theta[ProfileItem::kEducation] = 0.1393;
  theta[ProfileItem::kWall] = 0.1328;
  theta[ProfileItem::kWork] = 0.1321;
  return theta;
}

Status ThetaWeights::Validate() const {
  double sum = 0.0;
  for (double v : values) {
    if (v < 0.0) {
      return Status::InvalidArgument("theta weights must be non-negative");
    }
    sum += v;
  }
  if (!(sum > 0.0)) {
    return Status::InvalidArgument("theta weights must not all be zero");
  }
  return Status::OK();
}

Result<BenefitModel> BenefitModel::Create(ThetaWeights theta) {
  SIGHT_RETURN_IF_ERROR(theta.Validate());
  return BenefitModel(theta);
}

double BenefitModel::Compute(const VisibilityTable& visibility,
                             UserId stranger) const {
  double sum = 0.0;
  for (ProfileItem item : kAllProfileItems) {
    if (visibility.IsVisible(stranger, item)) sum += theta_[item];
  }
  return sum / static_cast<double>(kNumProfileItems);
}

std::vector<double> BenefitModel::ComputeBatch(
    const VisibilityTable& visibility,
    const std::vector<UserId>& strangers) const {
  std::vector<double> result;
  result.reserve(strangers.size());
  for (UserId s : strangers) result.push_back(Compute(visibility, s));
  return result;
}

}  // namespace sight
