// Network Similarity Groups (the paper's Definition 1).
//
// Strangers are partitioned into alpha disjoint groups by their NS value
// with the owner: group x (1-based in the paper, 0-based here) holds the
// strangers with NS in [x/alpha, (x+1)/alpha), the last group including 1.

#ifndef SIGHT_CORE_NSG_H_
#define SIGHT_CORE_NSG_H_

#include <vector>

#include "graph/types.h"
#include "util/status.h"

namespace sight {

/// The alpha groups of Definition 1 for one owner.
class NetworkSimilarityGroups {
 public:
  /// Builds groups from parallel vectors of strangers and their NS values
  /// (each in [0, 1]).
  [[nodiscard]]
  static Result<NetworkSimilarityGroups> Build(
      size_t alpha, const std::vector<UserId>& strangers,
      const std::vector<double>& similarities);

  size_t alpha() const { return groups_.size(); }

  /// Strangers in group x (ascending NS ranges as x grows).
  const std::vector<UserId>& group(size_t x) const { return groups_[x]; }

  /// Group index of the i-th input stranger.
  size_t group_of(size_t stranger_position) const {
    return assignment_[stranger_position];
  }

  /// Member count per group (the Fig. 4 series).
  std::vector<size_t> GroupSizes() const;

  /// Index of the highest non-empty group, or SIZE_MAX when all empty.
  size_t HighestNonEmptyGroup() const;

 private:
  std::vector<std::vector<UserId>> groups_;
  std::vector<size_t> assignment_;
};

}  // namespace sight

#endif  // SIGHT_CORE_NSG_H_
