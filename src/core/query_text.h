// The exact owner-facing risk question of Section III-A, for UI
// integrators.

#ifndef SIGHT_CORE_QUERY_TEXT_H_
#define SIGHT_CORE_QUERY_TEXT_H_

#include <string>

namespace sight {

/// Renders the paper's Section III-A question for a stranger whose
/// displayed similarity and benefit values are in [0, 1]:
///
///   "You and <name> are <s>/100 similar and he/she provides you <b>/100
///    benefits in terms of information you are allowed to see now on
///    his/her profile. Do you think it might be risky to establish a
///    relationship with <name>? ..."
///
/// Values are clamped to [0, 1] and shown as integers out of 100.
std::string FormatRiskQuestion(const std::string& stranger_name,
                               double similarity, double benefit);

}  // namespace sight

#endif  // SIGHT_CORE_QUERY_TEXT_H_
