// RiskSession: single-owner incremental risk assessment.
//
// The paper motivates active learning with the dynamic nature of the
// owner's social graph: the Sight app discovers strangers over days, and
// "it is not efficient to adopt a pre-defined and fixed training set.
// Rather, it is preferable to select the training set on the fly so that
// changes in the social graph are immediately reflected". RiskSession is
// that flow as a first-class object:
//
//   RiskSession session = RiskSession::Create(config, &graph, &profiles,
//                                             &visibility, owner).value();
//   while (crawling) {
//     session.AddStrangers(new_batch);
//     auto report = session.Assess(&oracle, &rng).value();
//   }
//
// Pools are rebuilt from scratch on every Assess (so new strangers and
// changed similarities are reflected), but every owner answer ever given
// is remembered and re-seeded into the rebuilt pools — the oracle is
// never asked about the same stranger twice.
//
// DEPRECATED as a front door: RiskSession is now a thin single-owner,
// synchronous adapter over the resident `RiskService`
// (service/risk_service.h), which adds owner sharding, async
// Submit/Poll, and cross-tick learner carry. New code — anything
// serving more than one owner, or assessing off the caller's thread —
// should construct the service directly. See DESIGN.md §13 for the
// old->new API map. Behavior here is unchanged (bit-identical reports).

#ifndef SIGHT_CORE_RISK_SESSION_H_
#define SIGHT_CORE_RISK_SESSION_H_

#include <memory>
#include <vector>

#include "core/active_learner.h"
#include "core/risk_engine.h"
#include "graph/profile.h"
#include "graph/social_graph.h"
#include "graph/types.h"
#include "graph/visibility.h"
#include "service/risk_service.h"
#include "util/random.h"
#include "util/status.h"

namespace sight {

class RiskSession {
 public:
  /// The graph/profile/visibility tables must outlive the session and may
  /// grow between assessments (new users/edges are fine; the session only
  /// reads them during Assess).
  [[nodiscard]]
  static Result<RiskSession> Create(RiskEngineConfig config,
                                    const SocialGraph* graph,
                                    const ProfileTable* profiles,
                                    const VisibilityTable* visibility,
                                    UserId owner);

  RiskSession(RiskSession&&) = default;
  RiskSession& operator=(RiskSession&&) = default;

  /// Registers newly discovered strangers (duplicates are ignored).
  /// Errors on unknown user ids or on the owner itself.
  [[nodiscard]] Status AddStrangers(const std::vector<UserId>& discovered);

  /// Convenience: discover the owner's current full two-hop set.
  [[nodiscard]] Status DiscoverAllStrangers();

  /// Runs the active-learning pipeline over everything discovered so far,
  /// reusing every previously collected owner label. The report's
  /// total_queries counts only *new* oracle questions.
  [[nodiscard]] Result<RiskReport> Assess(LabelOracle* oracle, Rng* rng);

  size_t num_strangers() const {
    return service_->NumStrangers(owner_).value_or(0);
  }
  size_t num_known_labels() const {
    return service_->NumKnownLabels(owner_).value_or(0);
  }

  /// All owner labels collected so far (stranger -> numeric label).
  const PoolLearner::KnownLabels& known_labels() const {
    return *labels_view_;
  }

  /// Imports labels collected elsewhere (e.g. a previous process via
  /// io/labels_io.h). Labeled strangers not yet discovered are also added
  /// to the stranger set. Errors on out-of-range label values or unknown
  /// users; on error nothing is imported.
  [[nodiscard]] Status ImportLabels(const PoolLearner::KnownLabels& labels);

 private:
  RiskSession(std::unique_ptr<RiskService> service, UserId owner,
              const PoolLearner::KnownLabels* labels_view)
      : service_(std::move(service)), owner_(owner),
        labels_view_(labels_view) {}

  /// Single-owner service: one shard, every cross-tick carry off —
  /// learners, pool partition, encoded tables — so Assess keeps the
  /// exact legacy rebuild-per-tick behavior; no background threads
  /// (the sync path never touches the worker pool).
  std::unique_ptr<RiskService> service_;
  UserId owner_ = kInvalidUser;
  const PoolLearner::KnownLabels* labels_view_ = nullptr;
};

}  // namespace sight

#endif  // SIGHT_CORE_RISK_SESSION_H_
