// Network and profile based pools (the paper's Definition 3).
//
// Pools are the sampling units of the active learner. The paper builds
// them in two levels: Definition 1 partitions strangers into alpha network
// similarity groups (NSG); within each group, Squeezer (Definition 2, with
// threshold beta) splits strangers by profile similarity. The union of all
// profile clusters over all groups is the pool set P_st ("NPP"). The
// evaluation also uses the NSG-only pools ("NSP") as the comparison point
// of Figs. 5-6.

#ifndef SIGHT_CORE_POOL_BUILDER_H_
#define SIGHT_CORE_POOL_BUILDER_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "clustering/squeezer.h"
#include "core/nsg.h"
#include "graph/profile.h"
#include "graph/social_graph.h"
#include "graph/types.h"
#include "similarity/network_similarity.h"
#include "util/status.h"

namespace sight {

/// One disjoint pool of strangers.
struct StrangerPool {
  std::vector<UserId> members;
  /// Which network similarity group the pool came from.
  size_t nsg_index = 0;
  /// Profile-cluster index within the group (0 for NSG-only pools).
  size_t cluster_index = 0;
};

/// The pool set for one owner plus the data used to derive it.
struct PoolSet {
  std::vector<StrangerPool> pools;
  /// All strangers, in TwoHopStrangers order.
  std::vector<UserId> strangers;
  /// NS(owner, s) parallel to `strangers`.
  std::vector<double> network_similarities;

  size_t TotalStrangers() const { return strangers.size(); }
};

enum class PoolStrategy {
  /// Definition 3: NSG x Squeezer (the paper's proposal).
  kNetworkAndProfile,
  /// NSG only (the paper's comparison baseline of Figs. 5-6).
  kNetworkOnly,
};

struct PoolBuilderConfig {
  /// Number of network similarity groups (paper: 10).
  size_t alpha = 10;
  /// Squeezer new-cluster threshold (paper: 0.4).
  double beta = 0.4;
  /// Attribute weights for Squeezer; empty = uniform.
  std::vector<double> attribute_weights;
  NetworkSimilarityConfig ns_config;
  PoolStrategy strategy = PoolStrategy::kNetworkAndProfile;
  /// Optional worker pool for the per-stranger NS batch (non-owning; must
  /// outlive the builder). Null = serial; pools are identical either way.
  ThreadPool* thread_pool = nullptr;
};

/// Resident partition stage of the serving flow (DESIGN.md §14): the
/// NS values, NSG bins, and per-group IncrementalSqueezer summaries of
/// one owner's stranger list, carried across crawler ticks. Because
/// Squeezer is one-pass (Squeezer::Cluster literally delegates to
/// IncrementalSqueezer::AddBatch), clustering a carried prefix and then
/// feeding only the newly discovered suffix yields bitwise the same
/// partition as re-clustering the whole list — so an unchanged stranger
/// set reuses the partition outright and a grown one pays only for its
/// suffix. A fingerprint (graph/profile pointers + mutation epochs,
/// owner, builder configuration) guards staleness; any mismatch falls
/// back to a cold rebuild through the same per-element path.
///
/// One cache serves one owner under one builder configuration. Not
/// thread-safe; the service keys it under the owner's state mutex.
class PoolPartitionCache {
 public:
  struct Stats {
    /// Refreshes that reused the carried partition with no new strangers.
    size_t hits_identical = 0;
    /// Refreshes that reused it and routed a suffix of new strangers
    /// through the carried squeezers.
    size_t hits_grown = 0;
    /// Cold rebuilds (first use, fingerprint mismatch, broken prefix).
    size_t misses = 0;
  };

  PoolPartitionCache() = default;
  PoolPartitionCache(PoolPartitionCache&&) = default;
  PoolPartitionCache& operator=(PoolPartitionCache&&) = default;

  const Stats& stats() const { return stats_; }
  size_t num_strangers() const { return strangers_.size(); }

  /// Drops the carried partition; the next build is a cold rebuild.
  void Clear();

 private:
  friend class PoolBuilder;

  bool valid_ = false;
  // Fingerprint of the inputs the carried partition was derived from.
  const SocialGraph* graph_ = nullptr;
  uint64_t graph_epoch_ = 0;
  const ProfileTable* profiles_ = nullptr;
  uint64_t profile_epoch_ = 0;
  UserId owner_ = kInvalidUser;
  size_t alpha_ = 0;
  double beta_ = 0.0;
  PoolStrategy strategy_ = PoolStrategy::kNetworkAndProfile;
  std::vector<double> attribute_weights_;
  NetworkSimilarityConfig ns_config_;
  // Carried state, parallel prefixes of the owner's stranger list.
  std::vector<UserId> strangers_;
  std::vector<double> ns_;
  std::vector<std::vector<UserId>> group_members_;          // [alpha]
  std::vector<std::optional<IncrementalSqueezer>> squeezers_;  // [alpha], NPP
  Stats stats_;
};

/// Builds the Definition 3 pool set for an owner.
class PoolBuilder {
 public:
  [[nodiscard]] static Result<PoolBuilder> Create(PoolBuilderConfig config);

  /// Enumerates the owner's strangers, computes NS, groups them, and
  /// (for kNetworkAndProfile) clusters each group with Squeezer. Pools are
  /// disjoint and cover every stranger.
  [[nodiscard]]
  Result<PoolSet> Build(const SocialGraph& graph, const ProfileTable& profiles,
                        UserId owner) const;

  /// Same, but over a caller-provided stranger set (used by the
  /// incremental crawler flow where discovery is partial).
  [[nodiscard]]
  Result<PoolSet> BuildForStrangers(const SocialGraph& graph,
                                    const ProfileTable& profiles, UserId owner,
                                    std::vector<UserId> strangers) const;

  /// BuildForStrangers through a carried partition: when `cache` still
  /// fingerprints to (graph, profiles, owner, this config) and its
  /// carried strangers are a prefix of `strangers`, only the new suffix
  /// is NS-scored, binned, and squeezed; otherwise the cache is rebuilt
  /// from scratch. The returned PoolSet is bitwise-identical to
  /// BuildForStrangers on every path — pools materialize in the same
  /// (group, cluster) order with members in the same insertion order.
  /// On error the cache is invalidated (next call rebuilds).
  [[nodiscard]]
  Result<PoolSet> BuildForStrangersCached(const SocialGraph& graph,
                                          const ProfileTable& profiles,
                                          UserId owner,
                                          std::vector<UserId> strangers,
                                          PoolPartitionCache* cache) const;

  const PoolBuilderConfig& config() const { return config_; }

 private:
  explicit PoolBuilder(PoolBuilderConfig config)
      : config_(std::move(config)) {}

  PoolBuilderConfig config_;
};

}  // namespace sight

#endif  // SIGHT_CORE_POOL_BUILDER_H_
