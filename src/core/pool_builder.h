// Network and profile based pools (the paper's Definition 3).
//
// Pools are the sampling units of the active learner. The paper builds
// them in two levels: Definition 1 partitions strangers into alpha network
// similarity groups (NSG); within each group, Squeezer (Definition 2, with
// threshold beta) splits strangers by profile similarity. The union of all
// profile clusters over all groups is the pool set P_st ("NPP"). The
// evaluation also uses the NSG-only pools ("NSP") as the comparison point
// of Figs. 5-6.

#ifndef SIGHT_CORE_POOL_BUILDER_H_
#define SIGHT_CORE_POOL_BUILDER_H_

#include <vector>

#include "clustering/squeezer.h"
#include "core/nsg.h"
#include "graph/profile.h"
#include "graph/social_graph.h"
#include "graph/types.h"
#include "similarity/network_similarity.h"
#include "util/status.h"

namespace sight {

/// One disjoint pool of strangers.
struct StrangerPool {
  std::vector<UserId> members;
  /// Which network similarity group the pool came from.
  size_t nsg_index = 0;
  /// Profile-cluster index within the group (0 for NSG-only pools).
  size_t cluster_index = 0;
};

/// The pool set for one owner plus the data used to derive it.
struct PoolSet {
  std::vector<StrangerPool> pools;
  /// All strangers, in TwoHopStrangers order.
  std::vector<UserId> strangers;
  /// NS(owner, s) parallel to `strangers`.
  std::vector<double> network_similarities;

  size_t TotalStrangers() const { return strangers.size(); }
};

enum class PoolStrategy {
  /// Definition 3: NSG x Squeezer (the paper's proposal).
  kNetworkAndProfile,
  /// NSG only (the paper's comparison baseline of Figs. 5-6).
  kNetworkOnly,
};

struct PoolBuilderConfig {
  /// Number of network similarity groups (paper: 10).
  size_t alpha = 10;
  /// Squeezer new-cluster threshold (paper: 0.4).
  double beta = 0.4;
  /// Attribute weights for Squeezer; empty = uniform.
  std::vector<double> attribute_weights;
  NetworkSimilarityConfig ns_config;
  PoolStrategy strategy = PoolStrategy::kNetworkAndProfile;
  /// Optional worker pool for the per-stranger NS batch (non-owning; must
  /// outlive the builder). Null = serial; pools are identical either way.
  ThreadPool* thread_pool = nullptr;
};

/// Builds the Definition 3 pool set for an owner.
class PoolBuilder {
 public:
  [[nodiscard]] static Result<PoolBuilder> Create(PoolBuilderConfig config);

  /// Enumerates the owner's strangers, computes NS, groups them, and
  /// (for kNetworkAndProfile) clusters each group with Squeezer. Pools are
  /// disjoint and cover every stranger.
  [[nodiscard]]
  Result<PoolSet> Build(const SocialGraph& graph, const ProfileTable& profiles,
                        UserId owner) const;

  /// Same, but over a caller-provided stranger set (used by the
  /// incremental crawler flow where discovery is partial).
  [[nodiscard]]
  Result<PoolSet> BuildForStrangers(const SocialGraph& graph,
                                    const ProfileTable& profiles, UserId owner,
                                    std::vector<UserId> strangers) const;

  const PoolBuilderConfig& config() const { return config_; }

 private:
  explicit PoolBuilder(PoolBuilderConfig config)
      : config_(std::move(config)) {}

  PoolBuilderConfig config_;
};

}  // namespace sight

#endif  // SIGHT_CORE_POOL_BUILDER_H_
