#include "core/query_text.h"

#include <algorithm>
#include <cmath>

#include "util/string_util.h"

namespace sight {

std::string FormatRiskQuestion(const std::string& stranger_name,
                               double similarity, double benefit) {
  int s = static_cast<int>(
      std::lround(std::clamp(similarity, 0.0, 1.0) * 100.0));
  int b = static_cast<int>(
      std::lround(std::clamp(benefit, 0.0, 1.0) * 100.0));
  return StrFormat(
      "You and %s are %d/100 similar and he/she provides you %d/100 "
      "benefits in terms of information you are allowed to see now on "
      "his/her profile. Do you think it might be risky to establish a "
      "relationship with %s? Please respond by considering how much you "
      "are similar to %s and that, after you become friends of him/her, "
      "benefits might increase as you might be allowed to see more "
      "resources in addition to his/her profile, e.g., his/her posts, "
      "photos, if privacy settings allow you.",
      stranger_name.c_str(), s, b, stranger_name.c_str(),
      stranger_name.c_str());
}

}  // namespace sight
