#include "core/parameter_miner.h"

#include "core/attribute_importance.h"

namespace sight {

Result<std::vector<double>> MineAttributeWeights(
    const ProfileTable& profiles, const std::vector<UserId>& strangers,
    const std::vector<RiskLabel>& labels) {
  SIGHT_ASSIGN_OR_RETURN(
      std::vector<AttributeImportance> importances,
      ProfileAttributeImportance(profiles, strangers, labels));
  std::vector<double> weights;
  weights.reserve(importances.size());
  for (const AttributeImportance& ai : importances) {
    weights.push_back(ai.importance);
  }
  return weights;
}

Result<ThetaWeights> MineThetaWeights(const VisibilityTable& visibility,
                                      const std::vector<UserId>& strangers,
                                      const std::vector<RiskLabel>& labels) {
  SIGHT_ASSIGN_OR_RETURN(std::vector<AttributeImportance> importances,
                         BenefitItemImportance(visibility, strangers, labels));
  ThetaWeights theta;
  // BenefitItemImportance iterates kAllProfileItems in order, so
  // importances are item-aligned.
  for (size_t i = 0; i < kNumProfileItems; ++i) {
    theta.values[i] = importances[i].importance;
  }
  SIGHT_RETURN_IF_ERROR(theta.Validate());
  return theta;
}

}  // namespace sight
