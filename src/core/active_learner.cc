#include "core/active_learner.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <unordered_map>
#include <utility>

#include "similarity/ps_kernels.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace sight {

Status ActiveLearnerConfig::Validate() const {
  if (labels_per_round == 0) {
    return Status::InvalidArgument("labels_per_round must be positive");
  }
  if (!(rmse_threshold > 0.0)) {
    return Status::InvalidArgument("rmse_threshold must be positive");
  }
  if (confidence < 0.0 || confidence > 100.0) {
    return Status::InvalidArgument(
        StrFormat("confidence %f not in [0, 100]", confidence));
  }
  if (stable_rounds == 0) {
    return Status::InvalidArgument("stable_rounds must be positive");
  }
  if (max_rounds == 0) {
    return Status::InvalidArgument("max_rounds must be positive");
  }
  return Status::OK();
}

size_t LearnerCarry::size() const { return retained_.size(); }

void LearnerCarry::Clear() { retained_.clear(); }

bool PoolLearner::CanResume(const StrangerPool& pool,
                            const KnownLabels* known_labels) const {
  if (!finished_ || outcome_ == PoolOutcome::kRoundLimit) return false;
  if (members_ != pool.members) return false;
  if (known_labels == nullptr) return true;
  // Every carried-over label covering a member must already be one of
  // this learner's labels, bit-identical — a label this learner has not
  // incorporated (e.g. imported from another process) forces a rebuild
  // so the seeding path picks it up.
  std::unordered_map<size_t, double> by_index;
  by_index.reserve(labeled_.size());
  for (size_t k = 0; k < labeled_.size(); ++k) {
    by_index[labeled_.indices[k]] = labeled_.values[k];
  }
  for (size_t i = 0; i < members_.size(); ++i) {
    auto it = known_labels->find(members_[i]);
    if (it == known_labels->end()) continue;
    auto have = by_index.find(i);
    if (have == by_index.end() || have->second != it->second) return false;
  }
  return true;
}

void PoolLearner::MarkCarried() {
  seeded_count_ = labeled_.size();
  validation_matches_ = 0;
  validation_total_ = 0;
  rounds_run_ = 0;
}

Result<PoolLearner> PoolLearner::Create(
    const StrangerPool& pool, SimilarityMatrix weights,
    std::vector<double> display_similarity,
    std::vector<double> display_benefit, const ActiveLearnerConfig& config,
    const GraphClassifier* classifier, const Sampler* sampler,
    const KnownLabels* known_labels, const KnownLabels* prior_scores) {
  SIGHT_RETURN_IF_ERROR(config.Validate());
  if (pool.members.empty()) {
    return Status::InvalidArgument("pool has no members");
  }
  if (weights.size() != pool.members.size()) {
    return Status::InvalidArgument(
        StrFormat("weights matrix size %zu != pool size %zu", weights.size(),
                  pool.members.size()));
  }
  if (display_similarity.size() != pool.members.size() ||
      display_benefit.size() != pool.members.size()) {
    return Status::InvalidArgument(
        "display similarity/benefit must be parallel to pool members");
  }
  if (classifier == nullptr || sampler == nullptr) {
    return Status::InvalidArgument("classifier and sampler are required");
  }
  if (config.sparsify_top_k > 0) {
    weights.SparsifyTopK(config.sparsify_top_k);
  }
  // The learner graph is immutable from here on and the classifier solves
  // on it every round: materialize the CSR neighbor view once so those
  // solves iterate neighbor lists instead of dense rows.
  weights.Compact();
  PoolLearner learner(pool, std::move(weights),
                      std::move(display_similarity),
                      std::move(display_benefit), config, classifier,
                      sampler);
  if (known_labels != nullptr) {
    for (size_t i = 0; i < learner.members_.size(); ++i) {
      auto it = known_labels->find(learner.members_[i]);
      if (it == known_labels->end()) continue;
      if (it->second < kRiskLabelMin || it->second > kRiskLabelMax) {
        return Status::OutOfRange(
            StrFormat("known label %f for stranger %u outside [%d, %d]",
                      it->second, learner.members_[i], kRiskLabelMin,
                      kRiskLabelMax));
      }
      learner.labeled_.Add(i, it->second);
      learner.is_labeled_[i] = true;
      ++learner.seeded_count_;
    }
  }
  if (prior_scores != nullptr) {
    // Previous-tick predicted scores seed the first solve's starting
    // vector: found members keep their old score, the rest start at the
    // mean of the found scores (the same role the label mean plays on a
    // cold start). Only built when at least one member carries over.
    double sum = 0.0;
    size_t found = 0;
    for (UserId member : learner.members_) {
      auto it = prior_scores->find(member);
      if (it == prior_scores->end()) continue;
      sum += it->second;
      ++found;
    }
    if (found > 0) {
      double mean = sum / static_cast<double>(found);
      learner.seed_f_.assign(learner.members_.size(), mean);
      for (size_t i = 0; i < learner.members_.size(); ++i) {
        auto it = prior_scores->find(learner.members_[i]);
        if (it != prior_scores->end()) learner.seed_f_[i] = it->second;
      }
    }
  }
  return learner;
}

PoolLearner::PoolLearner(const StrangerPool& pool, SimilarityMatrix weights,
                         std::vector<double> display_similarity,
                         std::vector<double> display_benefit,
                         const ActiveLearnerConfig& config,
                         const GraphClassifier* classifier,
                         const Sampler* sampler)
    : members_(pool.members), weights_(std::move(weights)),
      display_similarity_(std::move(display_similarity)),
      display_benefit_(std::move(display_benefit)), config_(config),
      classifier_(classifier), sampler_(sampler),
      is_labeled_(pool.members.size(), false),
      predictions_(pool.members.size(), 0.0) {}

Status PoolLearner::Repredict() {
  // Every Repredict appends one step to the canonical solve chain; both
  // modes below compute exactly that chain's latest iterate, so flipping
  // warm_start never changes a prediction (DESIGN.md §12).
  chain_sizes_.push_back(labeled_.size());
  std::vector<double> next;
  if (config_.warm_start) {
    if (!state_created_) {
      solve_state_ = classifier_->MakeState();
      state_created_ = true;
      if (solve_state_ != nullptr && !seed_f_.empty()) {
        solve_state_->SeedSolution(seed_f_);
      }
    }
    SIGHT_ASSIGN_OR_RETURN(
        next, classifier_->PredictWithState(weights_, labeled_,
                                            solve_state_.get(),
                                            &last_solve_));
  } else {
    // Cold path: replay the whole chain from scratch through a throwaway
    // state. Stateless classifiers (MakeState() == nullptr) have no
    // chain — a single predict is already the cold solve.
    std::unique_ptr<ClassifierState> replay = classifier_->MakeState();
    if (replay == nullptr) {
      SIGHT_ASSIGN_OR_RETURN(
          next, classifier_->PredictWithState(weights_, labeled_, nullptr,
                                              &last_solve_));
    } else {
      if (!seed_f_.empty()) replay->SeedSolution(seed_f_);
      for (size_t step_size : chain_sizes_) {
        LabeledSet prefix;
        prefix.indices.assign(labeled_.indices.begin(),
                              labeled_.indices.begin() +
                                  static_cast<ptrdiff_t>(step_size));
        prefix.values.assign(labeled_.values.begin(),
                             labeled_.values.begin() +
                                 static_cast<ptrdiff_t>(step_size));
        SIGHT_ASSIGN_OR_RETURN(
            next, classifier_->PredictWithState(weights_, prefix,
                                                replay.get(),
                                                &last_solve_));
      }
    }
  }
  predictions_ = std::move(next);
  has_predictions_ = true;
  return Status::OK();
}

Result<RoundRecord> PoolLearner::RunRound(LabelOracle* oracle, Rng* rng) {
  if (oracle == nullptr || rng == nullptr) {
    return Status::InvalidArgument("oracle and rng are required");
  }
  if (finished_) {
    return Status::FailedPrecondition("pool learner already finished");
  }

  RoundRecord record;
  record.round = ++rounds_run_;

  // Labels seeded at creation (incremental flow) have not produced
  // predictions yet; do that first so this round can validate against
  // them.
  if (!has_predictions_ && labeled_.size() > 0) {
    SIGHT_RETURN_IF_ERROR(Repredict());
  }

  // 1. Sample unlabeled strangers.
  std::vector<size_t> unlabeled;
  for (size_t i = 0; i < members_.size(); ++i) {
    if (!is_labeled_[i]) unlabeled.push_back(i);
  }
  if (unlabeled.empty()) {
    // Fully covered by carried-over labels: nothing to ask.
    finished_ = true;
    outcome_ = PoolOutcome::kExhausted;
    return record;
  }
  SamplingContext context{unlabeled,
                          has_predictions_ ? predictions_
                                           : std::vector<double>()};
  std::vector<size_t> picked =
      sampler_->Select(context, config_.labels_per_round, rng);
  record.newly_labeled = picked.size();

  // 2. Query the oracle; validate previous-round predictions against the
  //    fresh owner labels (Definition 4).
  double square_error = 0.0;
  std::vector<double> owner_values;
  owner_values.reserve(picked.size());
  for (size_t idx : picked) {
    RiskLabel label = oracle->QueryLabel(
        members_[idx], display_similarity_[idx], display_benefit_[idx]);
    double value = RiskLabelValue(label);
    owner_values.push_back(value);
    if (has_predictions_) {
      int predicted =
          RoundToLabel(predictions_[idx], kRiskLabelMin, kRiskLabelMax);
      double diff = static_cast<double>(predicted) - value;
      square_error += diff * diff;
      ++validation_total_;
      if (predicted == static_cast<int>(label)) ++validation_matches_;
    }
  }
  if (has_predictions_ && !picked.empty()) {
    record.rmse_valid = true;
    record.rmse =
        std::sqrt(square_error / static_cast<double>(picked.size()));
    last_rmse_valid_ = true;
    last_rmse_ = record.rmse;
  }

  // 3. Move samples into the labeled set.
  for (size_t i = 0; i < picked.size(); ++i) {
    labeled_.Add(picked[i], owner_values[i]);
    is_labeled_[picked[i]] = true;
  }

  // 4. Retrain / repredict.
  std::vector<double> previous = predictions_;
  bool had_predictions = has_predictions_;
  SIGHT_RETURN_IF_ERROR(Repredict());
  record.solver = last_solve_.solver;
  record.solve_iterations = last_solve_.iterations;

  // 5. Stabilization check (Definition 5) over still-unlabeled members.
  //    The stop decision only needs "did anything move" — the scan exits
  //    at the first unstable member unless the exact count was requested.
  double tolerance = config_.StabilizationTolerance();
  size_t unstable = 0;
  if (had_predictions) {
    for (size_t i = 0; i < members_.size(); ++i) {
      if (is_labeled_[i]) continue;
      if (std::fabs(predictions_[i] - previous[i]) >= tolerance) {
        ++unstable;
        if (!config_.count_all_unstabilized) break;
      }
    }
    record.unstabilized = unstable;
    record.stabilized = unstable == 0;
    consecutive_stable_ = record.stabilized ? consecutive_stable_ + 1 : 0;
  } else {
    // First prediction: nothing to compare; count all as unstabilized.
    size_t remaining = 0;
    for (size_t i = 0; i < members_.size(); ++i) {
      if (!is_labeled_[i]) ++remaining;
    }
    record.unstabilized = remaining;
    record.stabilized = false;
  }

  // 6. Stopping conditions.
  bool all_labeled =
      std::all_of(is_labeled_.begin(), is_labeled_.end(),
                  [](bool b) { return b; });
  if (all_labeled) {
    finished_ = true;
    outcome_ = PoolOutcome::kExhausted;
  } else if (consecutive_stable_ >= config_.stable_rounds &&
             last_rmse_valid_ && last_rmse_ < config_.rmse_threshold) {
    finished_ = true;
    outcome_ = PoolOutcome::kConverged;
  } else if (rounds_run_ >= config_.max_rounds) {
    finished_ = true;
    outcome_ = PoolOutcome::kRoundLimit;
  }
  return record;
}

Result<std::vector<RoundRecord>> PoolLearner::RunToCompletion(
    LabelOracle* oracle, Rng* rng) {
  std::vector<RoundRecord> records;
  while (!finished_) {
    SIGHT_ASSIGN_OR_RETURN(RoundRecord record, RunRound(oracle, rng));
    records.push_back(record);
  }
  return records;
}

RiskLabel PoolLearner::PredictedLabel(size_t i) const {
  SIGHT_CHECK(i < members_.size());
  int value = RoundToLabel(predictions_[i], kRiskLabelMin, kRiskLabelMax);
  return static_cast<RiskLabel>(value);
}

Result<ActiveLearner> ActiveLearner::Create(
    const PoolSet& pools, const ProfileTable& profiles,
    std::vector<double> display_benefits, ActiveLearnerConfig config,
    const GraphClassifier* classifier, const Sampler* sampler,
    const PoolLearner::KnownLabels* known_labels,
    const PoolLearner::KnownLabels* prior_scores, LearnerCarry* carry,
    const StrangerEncodeCache* encode) {
  SIGHT_RETURN_IF_ERROR(config.Validate());
  if (display_benefits.size() != pools.strangers.size()) {
    return Status::InvalidArgument(
        "display_benefits must be parallel to the pool set's strangers");
  }
  if (classifier == nullptr || sampler == nullptr) {
    return Status::InvalidArgument("classifier and sampler are required");
  }

  ActiveLearner learner;
  learner.strangers_ = pools.strangers;
  learner.network_similarities_ = pools.network_similarities;
  learner.benefits_ = std::move(display_benefits);

  std::unordered_map<UserId, size_t> position;
  position.reserve(pools.strangers.size());
  for (size_t i = 0; i < pools.strangers.size(); ++i) {
    position[pools.strangers[i]] = i;
  }

  SIGHT_ASSIGN_OR_RETURN(ProfileSimilarity ps,
                         ProfileSimilarity::Create(profiles.schema()));

  size_t num_pools = pools.pools.size();

  // Cross-tick carry-over: a pool whose membership fingerprint matches a
  // retained learner (and whose carried labels it already holds) reuses
  // that learner wholesale and skips the matrix build below. Retained
  // learners are consumed either way — unmatched ones are stale (their
  // pool changed shape) and are dropped with the carry.
  std::vector<std::optional<PoolLearner>> carried(num_pools);
  if (carry != nullptr) {
    std::vector<bool> consumed(carry->retained_.size(), false);
    for (size_t p = 0; p < num_pools; ++p) {
      for (size_t r = 0; r < carry->retained_.size(); ++r) {
        if (consumed[r]) continue;
        if (!carry->retained_[r].CanResume(pools.pools[p], known_labels)) {
          continue;
        }
        carried[p].emplace(std::move(carry->retained_[r]));
        consumed[r] = true;
        ++learner.pools_carried_;
        break;
      }
    }
    carry->retained_.clear();
  }

  // Per-pool scaffolding (cheap relative to the pairwise loop below):
  // the pool's member rows — gathered from the owner-level encode cache
  // when one was supplied, dictionary-encoded per pool otherwise — value
  // frequencies from the pool itself (Section III-C) indexed by those
  // codes, the weight matrix to fill, and the display vectors surfaced
  // to the oracle. Carried pools keep all of this from their previous
  // tick. The two row sources differ only in code numbering, which
  // profile similarity cannot observe (code equality and per-value
  // counts survive any injective re-coding), so both are bitwise-equal.
  struct PoolRows {
    const uint32_t* rows = nullptr;
    size_t num_rows = 0;
    size_t num_attributes = 0;
  };
  std::vector<std::optional<EncodedProfileTable>> encoded(num_pools);
  std::vector<std::vector<uint32_t>> gathered(num_pools);
  std::vector<PoolRows> rows_of(num_pools);
  std::vector<std::optional<ValueFrequencyTable>> freqs(num_pools);
  std::vector<SimilarityMatrix> weights;
  std::vector<std::vector<double>> sims(num_pools);
  std::vector<std::vector<double>> bens(num_pools);
  weights.reserve(num_pools);
  size_t total_pairs = 0;
  for (size_t p = 0; p < num_pools; ++p) {
    const StrangerPool& pool = pools.pools[p];
    if (carried[p].has_value()) {
      weights.emplace_back(0);
      continue;
    }
    size_t n = pool.members.size();
    bool from_cache = encode != nullptr && !encode->empty() &&
                      encode->GatherRows(pool.members, &gathered[p]);
    if (from_cache) {
      rows_of[p] = {gathered[p].data(), n, encode->num_attributes()};
      freqs[p].emplace(ValueFrequencyTable::BuildFromCodes(
          rows_of[p].rows, n, rows_of[p].num_attributes));
    } else {
      encoded[p].emplace(EncodedProfileTable::Build(profiles, pool.members));
      rows_of[p] = {encoded[p]->row(0), encoded[p]->num_rows(),
                    encoded[p]->num_attributes()};
      freqs[p].emplace(ValueFrequencyTable::Build(*encoded[p]));
    }
    weights.emplace_back(n);
    total_pairs += n * (n - 1) / 2;
    sims[p].assign(n, 0.0);
    bens[p].assign(n, 0.0);
    for (size_t i = 0; i < n; ++i) {
      auto it = position.find(pool.members[i]);
      if (it == position.end()) {
        return Status::InvalidArgument(
            StrFormat("pool member %u missing from the stranger list",
                      pool.members[i]));
      }
      sims[p][i] = pools.network_similarities[it->second];
      bens[p][i] = learner.benefits_[it->second];
    }
  }

  // Edge weights: the O(n^2) pairwise profile-similarity fill runs on
  // the batched, cache-tiled kernels (similarity/ps_kernels.h), bitwise-
  // identical to the per-pair string path. Every pool's triangle is cut
  // into tiles and the flattened cross-pool tile list feeds a single
  // ParallelFor, so tiling composes with threading and small pools
  // load-balance alongside large ones. Distinct tiles cover disjoint
  // pairs, so tiles write without synchronization.
  std::vector<std::pair<size_t, ps_kernels::PairTile>> tiles;
  for (size_t p = 0; p < num_pools; ++p) {
    if (carried[p].has_value()) continue;
    const ps_kernels::TileShape shape =
        ps_kernels::DefaultTileShape(rows_of[p].num_attributes);
    for (const ps_kernels::PairTile& tile :
         ps_kernels::MakeTiles(rows_of[p].num_rows, shape)) {
      tiles.emplace_back(p, tile);
    }
  }
  ParallelForOptions pf;
  pf.total_work = total_pairs;
  ParallelFor(config.thread_pool, tiles.size(), [&](size_t t) {
    const auto& [p, tile] = tiles[t];
    ps_kernels::FillTile(rows_of[p].rows, rows_of[p].num_rows,
                         rows_of[p].num_attributes, ps, *freqs[p], tile,
                         &weights[p]);
  }, pf);

  // Per-pool learner setup (sparsification, CSR compaction, label
  // seeding) is independent across pools; statuses are surfaced in pool
  // order afterwards. Carried learners only rebaseline their per-tick
  // counters.
  std::vector<std::optional<Result<PoolLearner>>> created(num_pools);
  ParallelFor(config.thread_pool, num_pools, [&](size_t p) {
    if (carried[p].has_value()) {
      carried[p]->MarkCarried();
      created[p].emplace(std::move(*carried[p]));
      return;
    }
    created[p].emplace(PoolLearner::Create(
        pools.pools[p], std::move(weights[p]), std::move(sims[p]),
        std::move(bens[p]), config, classifier, sampler, known_labels,
        prior_scores));
  });
  for (size_t p = 0; p < num_pools; ++p) {
    if (!created[p]->ok()) return created[p]->status();
    learner.learners_.push_back(std::move(*created[p]).value());
    learner.pool_of_learner_.push_back(p);
  }
  return learner;
}

void ActiveLearner::HarvestInto(LearnerCarry* carry) {
  SIGHT_CHECK(carry != nullptr);
  carry->retained_.clear();
  carry->retained_.reserve(learners_.size());
  for (PoolLearner& learner : learners_) {
    carry->retained_.push_back(std::move(learner));
  }
  learners_.clear();
  pool_of_learner_.clear();
}

Result<AssessmentResult> ActiveLearner::Run(LabelOracle* oracle, Rng* rng) {
  if (oracle == nullptr || rng == nullptr) {
    return Status::InvalidArgument("oracle and rng are required");
  }
  AssessmentResult result;
  result.pools_total = learners_.size();
  result.pools_carried = pools_carried_;

  double rounds_sum = 0.0;
  for (size_t li = 0; li < learners_.size(); ++li) {
    PoolLearner& learner = learners_[li];
    SIGHT_ASSIGN_OR_RETURN(std::vector<RoundRecord> records,
                           learner.RunToCompletion(oracle, rng));
    for (RoundRecord& record : records) {
      record.pool_index = pool_of_learner_[li];
      result.rounds.push_back(record);
    }
    rounds_sum += static_cast<double>(learner.rounds_run());
    result.total_queries += learner.num_queries();
    result.validation_matches += learner.validation_matches();
    result.validation_total += learner.validation_total();
    switch (learner.outcome()) {
      case PoolOutcome::kConverged:
        ++result.pools_converged;
        break;
      case PoolOutcome::kExhausted:
        ++result.pools_exhausted;
        break;
      case PoolOutcome::kRoundLimit:
        ++result.pools_round_limit;
        break;
    }

    const auto& members = learner.members();
    for (size_t i = 0; i < members.size(); ++i) {
      StrangerAssessment sa;
      sa.stranger = members[i];
      sa.pool_index = pool_of_learner_[li];
      sa.predicted_score = learner.predictions()[i];
      sa.predicted_label = learner.PredictedLabel(i);
      sa.owner_labeled = learner.IsOwnerLabeled(i);
      result.strangers.push_back(sa);
    }
  }
  if (!learners_.empty()) {
    result.mean_rounds = rounds_sum / static_cast<double>(learners_.size());
  }

  // Attach NS/benefit using the stranger list order.
  std::unordered_map<UserId, size_t> position;
  position.reserve(strangers_.size());
  for (size_t i = 0; i < strangers_.size(); ++i) position[strangers_[i]] = i;
  for (StrangerAssessment& sa : result.strangers) {
    auto it = position.find(sa.stranger);
    if (it != position.end()) {
      sa.network_similarity = network_similarities_[it->second];
      sa.benefit = benefits_[it->second];
    }
  }
  return result;
}

}  // namespace sight
