// Parameter mining (the paper's Section VI future-work direction: "mine
// from the data most of the values for the parameters on which our
// learning process relies").
//
// Given an owner's labeled strangers, suggests:
//   * Squeezer attribute weights — the Definition 6 importances of the
//     profile attributes (attributes that explain the owner's labels
//     should drive the profile clustering);
//   * theta benefit weights — the Definition 6 importances of the benefit
//     items (the paper's Table II/III discussion notes that "for some
//     benefit items it is better to use system suggested weights").

#ifndef SIGHT_CORE_PARAMETER_MINER_H_
#define SIGHT_CORE_PARAMETER_MINER_H_

#include <vector>

#include "core/benefit.h"
#include "core/risk_label.h"
#include "graph/profile.h"
#include "graph/types.h"
#include "graph/visibility.h"
#include "util/status.h"

namespace sight {

/// Suggested Squeezer attribute weights, aligned with the schema;
/// normalized to sum 1.
[[nodiscard]]
Result<std::vector<double>> MineAttributeWeights(
    const ProfileTable& profiles, const std::vector<UserId>& strangers,
    const std::vector<RiskLabel>& labels);

/// Suggested theta weights from mined benefit-item importance.
[[nodiscard]]
Result<ThetaWeights> MineThetaWeights(const VisibilityTable& visibility,
                                      const std::vector<UserId>& strangers,
                                      const std::vector<RiskLabel>& labels);

}  // namespace sight

#endif  // SIGHT_CORE_PARAMETER_MINER_H_
