// Friendship suggestion from risk labels (the paper's Section VI
// "privacy settings/friendships suggestion" direction).
//
// Among the strangers an assessment judged *not risky*, ranks candidates
// by affinity — a convex mix of network similarity (homophily: people you
// are likely to actually know) and benefit (heterophily: people whose
// profiles offer you the most new information).

#ifndef SIGHT_CORE_FRIEND_SUGGESTION_H_
#define SIGHT_CORE_FRIEND_SUGGESTION_H_

#include <vector>

#include "core/active_learner.h"
#include "core/risk_label.h"
#include "graph/types.h"
#include "util/status.h"

namespace sight {

struct FriendSuggestion {
  UserId stranger = kInvalidUser;
  /// ns_weight * NS + (1 - ns_weight) * benefit, in [0, 1].
  double affinity = 0.0;
  double network_similarity = 0.0;
  double benefit = 0.0;
};

struct FriendSuggestionConfig {
  /// Candidates returned (at most).
  size_t max_suggestions = 10;
  /// Weight of network similarity in the affinity mix; benefit gets the
  /// complement. Must be in [0, 1].
  double ns_weight = 0.7;
  /// Only strangers with at most this risk label are candidates
  /// (default: strictly not-risky).
  RiskLabel max_label = RiskLabel::kNotRisky;
};

/// Ranks candidate friends from an assessment, best first. Ties broken by
/// stranger id for determinism. Errors on invalid config.
[[nodiscard]]
Result<std::vector<FriendSuggestion>> SuggestFriends(
    const AssessmentResult& assessment,
    const FriendSuggestionConfig& config = {});

}  // namespace sight

#endif  // SIGHT_CORE_FRIEND_SUGGESTION_H_
