#include "core/nsg.h"

#include "util/string_util.h"

namespace sight {

Result<NetworkSimilarityGroups> NetworkSimilarityGroups::Build(
    size_t alpha, const std::vector<UserId>& strangers,
    const std::vector<double>& similarities) {
  if (alpha == 0) {
    return Status::InvalidArgument("alpha must be positive");
  }
  if (strangers.size() != similarities.size()) {
    return Status::InvalidArgument(
        StrFormat("strangers/similarities size mismatch: %zu vs %zu",
                  strangers.size(), similarities.size()));
  }
  NetworkSimilarityGroups result;
  result.groups_.resize(alpha);
  result.assignment_.reserve(strangers.size());
  for (size_t i = 0; i < strangers.size(); ++i) {
    double ns = similarities[i];
    if (ns < 0.0 || ns > 1.0) {
      return Status::OutOfRange(
          StrFormat("network similarity %f outside [0, 1]", ns));
    }
    size_t x = static_cast<size_t>(ns * static_cast<double>(alpha));
    if (x >= alpha) x = alpha - 1;  // ns == 1 goes to the last group
    result.groups_[x].push_back(strangers[i]);
    result.assignment_.push_back(x);
  }
  return result;
}

std::vector<size_t> NetworkSimilarityGroups::GroupSizes() const {
  std::vector<size_t> sizes;
  sizes.reserve(groups_.size());
  for (const auto& g : groups_) sizes.push_back(g.size());
  return sizes;
}

size_t NetworkSimilarityGroups::HighestNonEmptyGroup() const {
  for (size_t x = groups_.size(); x-- > 0;) {
    if (!groups_[x].empty()) return x;
  }
  return SIZE_MAX;
}

}  // namespace sight
