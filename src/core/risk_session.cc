#include "core/risk_session.h"

#include "graph/algorithms.h"
#include "util/string_util.h"

namespace sight {
namespace {

// Forwards queries to the user's oracle and records every answer into the
// session's label store.
class RecordingOracle : public LabelOracle {
 public:
  RecordingOracle(LabelOracle* inner, PoolLearner::KnownLabels* store)
      : inner_(inner), store_(store) {}

  RiskLabel QueryLabel(UserId stranger, double similarity,
                       double benefit) override {
    RiskLabel label = inner_->QueryLabel(stranger, similarity, benefit);
    (*store_)[stranger] = RiskLabelValue(label);
    return label;
  }

 private:
  LabelOracle* inner_;
  PoolLearner::KnownLabels* store_;
};

}  // namespace

Result<RiskSession> RiskSession::Create(RiskEngineConfig config,
                                        const SocialGraph* graph,
                                        const ProfileTable* profiles,
                                        const VisibilityTable* visibility,
                                        UserId owner) {
  if (graph == nullptr || profiles == nullptr || visibility == nullptr) {
    return Status::InvalidArgument(
        "graph, profiles and visibility are required");
  }
  if (!graph->HasUser(owner)) {
    return Status::InvalidArgument(StrFormat("unknown owner %u", owner));
  }
  SIGHT_ASSIGN_OR_RETURN(RiskEngine engine,
                         RiskEngine::Create(std::move(config)));
  return RiskSession(std::move(engine), graph, profiles, visibility, owner);
}

Status RiskSession::AddStrangers(const std::vector<UserId>& discovered) {
  for (UserId s : discovered) {
    if (!graph_->HasUser(s)) {
      return Status::InvalidArgument(
          StrFormat("stranger %u is not a known user", s));
    }
    if (s == owner_) {
      return Status::InvalidArgument("the owner is not a stranger");
    }
    if (discovered_.insert(s).second) {
      strangers_.push_back(s);
    }
  }
  return Status::OK();
}

Status RiskSession::DiscoverAllStrangers() {
  SIGHT_ASSIGN_OR_RETURN(std::vector<UserId> all,
                         TwoHopStrangers(*graph_, owner_));
  return AddStrangers(all);
}

Status RiskSession::ImportLabels(const PoolLearner::KnownLabels& labels) {
  // Validate everything before mutating any state.
  std::vector<UserId> to_discover;
  for (const auto& [stranger, value] : labels) {
    if (value < kRiskLabelMin || value > kRiskLabelMax) {
      return Status::OutOfRange(
          StrFormat("label %f for stranger %u outside [%d, %d]", value,
                    stranger, kRiskLabelMin, kRiskLabelMax));
    }
    if (!graph_->HasUser(stranger) || stranger == owner_) {
      return Status::InvalidArgument(
          StrFormat("labeled stranger %u is not a valid user", stranger));
    }
    if (discovered_.count(stranger) == 0) to_discover.push_back(stranger);
  }
  SIGHT_RETURN_IF_ERROR(AddStrangers(to_discover));
  for (const auto& [stranger, value] : labels) {
    known_labels_[stranger] = value;
  }
  return Status::OK();
}

Result<RiskReport> RiskSession::Assess(LabelOracle* oracle, Rng* rng) {
  if (oracle == nullptr || rng == nullptr) {
    return Status::InvalidArgument("oracle and rng are required");
  }
  RecordingOracle recording(oracle, &known_labels_);
  SIGHT_ASSIGN_OR_RETURN(
      RiskReport report,
      engine_.AssessStrangers(*graph_, *profiles_, *visibility_, owner_,
                              strangers_, &recording, rng, &known_labels_,
                              last_scores_.empty() ? nullptr
                                                   : &last_scores_));
  // Remember this tick's converged scores so the next Assess seeds its
  // solves from them instead of the label mean.
  last_scores_.clear();
  for (const StrangerAssessment& sa : report.assessment.strangers) {
    last_scores_[sa.stranger] = sa.predicted_score;
  }
  return report;
}

}  // namespace sight
