#include "core/risk_session.h"

#include <utility>

#include "util/string_util.h"

namespace sight {

Result<RiskSession> RiskSession::Create(RiskEngineConfig config,
                                        const SocialGraph* graph,
                                        const ProfileTable* profiles,
                                        const VisibilityTable* visibility,
                                        UserId owner) {
  if (graph == nullptr || profiles == nullptr || visibility == nullptr) {
    return Status::InvalidArgument(
        "graph, profiles and visibility are required");
  }
  if (!graph->HasUser(owner)) {
    return Status::InvalidArgument(StrFormat("unknown owner %u", owner));
  }
  RiskServiceConfig service_config;
  service_config.engine = std::move(config);
  service_config.num_shards = 1;
  // The legacy session rebuilds every pool each Assess; keep that
  // behavior (and its bitwise-identical reports) by disabling every
  // resident cache — learners, pool partition, and encoded tables.
  service_config.carry_learners = false;
  service_config.carry_pool_partition = false;
  service_config.carry_encoded_tables = false;
  SIGHT_ASSIGN_OR_RETURN(std::unique_ptr<RiskService> service,
                         RiskService::Create(std::move(service_config)));
  OwnerRegistration registration;
  registration.owner = owner;
  registration.graph = graph;
  registration.profiles = profiles;
  registration.visibility = visibility;
  SIGHT_RETURN_IF_ERROR(service->RegisterOwner(registration));
  SIGHT_ASSIGN_OR_RETURN(const PoolLearner::KnownLabels* labels_view,
                         service->KnownLabelsView(owner));
  return RiskSession(std::move(service), owner, labels_view);
}

Status RiskSession::AddStrangers(const std::vector<UserId>& discovered) {
  return service_->AddStrangers(owner_, discovered);
}

Status RiskSession::DiscoverAllStrangers() {
  return service_->DiscoverAllStrangers(owner_);
}

Status RiskSession::ImportLabels(const PoolLearner::KnownLabels& labels) {
  return service_->ImportLabels(owner_, labels);
}

Result<RiskReport> RiskSession::Assess(LabelOracle* oracle, Rng* rng) {
  return service_->AssessSync(owner_, oracle, rng);
}

}  // namespace sight
