// Attribute and benefit-item importance mining (the paper's Definition 6,
// Tables I and II).
//
// For an owner's labeled strangers, the importance of a profile attribute
// (or of a benefit item's visibility bit) is its information gain ratio
// w.r.t. the risk labels, normalized so importances sum to 1 across the
// attribute set. Rankings of these importances are what Tables I and II
// aggregate over owners.
//
// The gain ratio is chance-corrected (see CorrectedGainRatio in
// learning/info_gain.h): on the paper's ~86-label samples, a raw gain
// ratio rewards high-arity attributes (last name) for accidental purity;
// after the correction, last name collapses to near zero — matching the
// paper's Table I, where it averages 0.0542.

#ifndef SIGHT_CORE_ATTRIBUTE_IMPORTANCE_H_
#define SIGHT_CORE_ATTRIBUTE_IMPORTANCE_H_

#include <string>
#include <vector>

#include "core/risk_label.h"
#include "graph/profile.h"
#include "graph/profile_codec.h"
#include "graph/types.h"
#include "graph/visibility.h"
#include "util/status.h"

namespace sight {

/// Importance of one attribute/item for one owner.
struct AttributeImportance {
  std::string name;
  /// Normalized information gain ratio (Definition 6); sums to 1 over the
  /// attribute set. All-zero IGRs yield uniform importances.
  double importance = 0.0;
  /// Raw (unnormalized) information gain ratio.
  double gain_ratio = 0.0;
};

/// Definition 6 over profile attributes: IGR of each schema attribute's
/// values w.r.t. the owner labels, normalized across attributes.
/// `strangers` and `labels` are parallel; requires at least one instance.
/// Encodes the strangers' profiles once and delegates to the encoded
/// overload below, so both entry points are bitwise-identical.
[[nodiscard]]
Result<std::vector<AttributeImportance>> ProfileAttributeImportance(
    const ProfileTable& profiles, const std::vector<UserId>& strangers,
    const std::vector<RiskLabel>& labels);

/// Hot path: Definition 6 over an already-encoded pool (e.g. the view
/// the risk pipeline built for the similarity matrix). `labels` is
/// parallel to the rows of `encoded`; `schema` supplies the attribute
/// names and must match the encoded width.
[[nodiscard]]
Result<std::vector<AttributeImportance>> ProfileAttributeImportance(
    const ProfileSchema& schema, const EncodedProfileTable& encoded,
    const std::vector<RiskLabel>& labels);

/// Definition 6 over benefit items: attribute values are the visibility
/// bits ("0"/"1") of each of the seven items.
[[nodiscard]]
Result<std::vector<AttributeImportance>> BenefitItemImportance(
    const VisibilityTable& visibility, const std::vector<UserId>& strangers,
    const std::vector<RiskLabel>& labels);

/// Positions (0-based ranks) of each attribute when sorted by descending
/// importance; ties broken by input order.
std::vector<size_t> ImportanceRanks(
    const std::vector<AttributeImportance>& importances);

}  // namespace sight

#endif  // SIGHT_CORE_ATTRIBUTE_IMPORTANCE_H_
