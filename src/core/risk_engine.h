// RiskEngine: the batch assessment core of the Sight library.
//
// Wires together the full pipeline of the paper: two-hop stranger
// enumeration -> network similarity -> Definition 1/3 pools -> benefit
// computation -> active learning with a graph-based classifier -> a risk
// label for every stranger of the owner.
//
// DEPRECATED as a front door: constructing a RiskEngine per owner (or
// per crawler tick) rebuilds codecs, frequency tables, and learners
// from scratch every call. New code should go through the resident
// `RiskService` (service/risk_service.h), which shards owner state,
// carries learners across ticks, and exposes async Submit/Poll as well
// as a bitwise-identical synchronous path. See DESIGN.md §13 for the
// old->new API map. RiskEngine remains the internal execution core the
// service drives.
//
//   RiskEngineConfig config;                    // paper defaults
//   auto engine = RiskEngine::Create(config).value();
//   auto report = engine.AssessOwner(graph, profiles, visibility,
//                                    owner, &oracle, &rng).value();
//   for (const auto& sa : report.assessment.strangers) { ... }

#ifndef SIGHT_CORE_RISK_ENGINE_H_
#define SIGHT_CORE_RISK_ENGINE_H_

#include <memory>
#include <vector>

#include "core/active_learner.h"
#include "core/benefit.h"
#include "core/pool_builder.h"
#include "graph/profile.h"
#include "graph/social_graph.h"
#include "graph/visibility.h"
#include "learning/baselines.h"
#include "learning/harmonic.h"
#include "learning/multiclass_harmonic.h"
#include "learning/sampling.h"
#include "util/random.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace sight {

enum class ClassifierKind {
  /// Zhu et al. harmonic functions, ordinal embedding (the paper's
  /// choice, compact form).
  kHarmonic,
  /// Zhu et al.'s full multiclass formulation with Class Mass
  /// Normalization (one harmonic solve per risk class).
  kHarmonicCmn,
  /// Weighted kNN baseline.
  kKnn,
  /// Majority-label baseline.
  kMajority,
};

enum class SamplerKind {
  /// Uniform pool sampling (the paper's choice).
  kRandom,
  /// Maximum-ambiguity sampling (extension).
  kUncertainty,
};

struct RiskEngineConfig {
  PoolBuilderConfig pools;
  ActiveLearnerConfig learner;
  /// Owner-assigned benefit coefficients (paper Table III averages by
  /// default).
  ThetaWeights theta = ThetaWeights::PaperTable3();
  ClassifierKind classifier = ClassifierKind::kHarmonic;
  HarmonicConfig harmonic;
  size_t knn_k = 5;
  SamplerKind sampler = SamplerKind::kRandom;
  /// Worker threads for the parallel pipeline phases (NS batches,
  /// similarity-matrix construction, per-pool learner setup, per-class
  /// harmonic solves). 1 = fully serial, no pool at all (the default);
  /// 0 = hardware concurrency. Ignored when `thread_pool` is set.
  /// Assessments are deterministic and identical at every setting.
  size_t num_threads = 1;
  /// Optional caller-owned pool shared across engines/owners (non-owning;
  /// must outlive the engine). Overrides `num_threads`.
  ThreadPool* thread_pool = nullptr;
};

/// What the resident caches did for one assessment (all zero/false on
/// cold paths).
struct CarryTelemetry {
  /// The carried pool partition was reused (identical or grown set).
  bool partition_reused = false;
  /// Strangers routed through the carried squeezers this tick (the
  /// whole list on a partition rebuild).
  size_t partition_new_strangers = 0;
  /// The carried owner-level encode was reused (rows appended, not
  /// rebuilt).
  bool encode_reused = false;
  /// Rows the encode stage actually encoded this tick.
  size_t encode_rows_appended = 0;
};

/// Everything produced by one owner assessment.
struct RiskReport {
  AssessmentResult assessment;
  /// Sizes of the pools the learner ran on.
  std::vector<size_t> pool_sizes;
  size_t num_strangers = 0;
  size_t num_pools = 0;
  CarryTelemetry carry;
};

/// Cross-tick carry bundle for one owner (the resident-service flow,
/// DESIGN.md §14): the finished PoolLearners of the previous tick, the
/// carried NS/NSG/Squeezer pool partition, and the owner-level encoded
/// profile table. Each layer fingerprints its own inputs and falls back
/// to a cold rebuild independently; on top of that, the engine drops the
/// learner carry whenever the graph, profile, or visibility tables
/// mutated since the carry was filled (their fingerprints cannot see
/// upstream edits that keep pool membership stable). The use_* flags let
/// callers (bench arms, equivalence tests) disable individual layers;
/// results are bitwise-identical at every setting.
struct AssessCarry {
  LearnerCarry learners;
  PoolPartitionCache partition;
  StrangerEncodeCache encode;
  bool use_learners = true;
  bool use_partition = true;
  bool use_encode = true;

  /// Drops all carried state (fingerprints re-arm on the next tick).
  void Clear();

  /// Drops the learner carry when any upstream table's identity or
  /// mutation epoch changed since the last call; records the current
  /// epochs either way. Called by the engine at the top of every
  /// incremental assessment.
  void InvalidateOnUpstreamChange(const SocialGraph& graph,
                                  const ProfileTable& profiles,
                                  const VisibilityTable& visibility);

 private:
  const SocialGraph* graph_ = nullptr;
  uint64_t graph_epoch_ = 0;
  const ProfileTable* profiles_ = nullptr;
  uint64_t profile_epoch_ = 0;
  const VisibilityTable* visibility_ = nullptr;
  uint64_t visibility_epoch_ = 0;
};

class RiskEngine {
 public:
  /// Validates the configuration and instantiates classifier + sampler.
  [[nodiscard]] static Result<RiskEngine> Create(RiskEngineConfig config);

  RiskEngine(RiskEngine&&) = default;
  RiskEngine& operator=(RiskEngine&&) = default;

  /// Runs the full pipeline for `owner`. The oracle is queried
  /// labels_per_round strangers per pool per round until every pool meets
  /// the Section III-D stopping condition.
  [[nodiscard]]
  Result<RiskReport> AssessOwner(const SocialGraph& graph,
                                 const ProfileTable& profiles,
                                 const VisibilityTable& visibility,
                                 UserId owner, LabelOracle* oracle,
                                 Rng* rng) const;

  /// Variant over an explicit stranger set (incremental-crawler flow).
  /// Strangers in `known_labels` (optional) start out owner-labeled; the
  /// oracle is only queried for the rest. Strangers in `prior_scores`
  /// (optional) seed the pools' first solves with the previous tick's
  /// predicted scores (warm start across ticks). RiskService manages
  /// both maps automatically.
  [[nodiscard]]
  Result<RiskReport> AssessStrangers(
      const SocialGraph& graph, const ProfileTable& profiles,
      const VisibilityTable& visibility, UserId owner,
      std::vector<UserId> strangers, LabelOracle* oracle, Rng* rng,
      const PoolLearner::KnownLabels* known_labels = nullptr,
      const PoolLearner::KnownLabels* prior_scores = nullptr) const;

  /// AssessStrangers plus cross-tick reuse of the carry bundle:
  /// finished PoolLearners stashed in `carry` by a previous call are
  /// resumed when their pool's member list and owner labels are
  /// unchanged (stale state is rejected by those fingerprint checks),
  /// the pool partition is carried so an unchanged/grown stranger set
  /// skips the NS/NSG/Squeezer rebuild, and the owner-level encode is
  /// carried so only newly discovered strangers are re-encoded. After
  /// the run, the new learners are harvested back into `carry` for the
  /// next tick. `carry` may be empty but not null; pass distinct
  /// carries for distinct owners. Drives RiskService's warm path;
  /// results are bitwise-identical to AssessStrangers.
  [[nodiscard]]
  Result<RiskReport> AssessIncremental(
      const SocialGraph& graph, const ProfileTable& profiles,
      const VisibilityTable& visibility, UserId owner,
      std::vector<UserId> strangers, LabelOracle* oracle, Rng* rng,
      const PoolLearner::KnownLabels* known_labels,
      const PoolLearner::KnownLabels* prior_scores, AssessCarry* carry) const;

  const RiskEngineConfig& config() const { return config_; }

 private:
  explicit RiskEngine(RiskEngineConfig config);

  [[nodiscard]]
  Result<RiskReport> AssessImpl(const SocialGraph& graph,
                                const ProfileTable& profiles,
                                const VisibilityTable& visibility, UserId owner,
                                std::vector<UserId> strangers,
                                LabelOracle* oracle, Rng* rng,
                                const PoolLearner::KnownLabels* known_labels,
                                const PoolLearner::KnownLabels* prior_scores,
                                AssessCarry* carry) const;

  /// The pool the pipeline phases run on: the caller's, else the engine's
  /// own (num_threads != 1), else null (serial).
  ThreadPool* effective_pool() const {
    return config_.thread_pool != nullptr ? config_.thread_pool
                                          : owned_pool_.get();
  }

  RiskEngineConfig config_;
  std::unique_ptr<ThreadPool> owned_pool_;
  std::unique_ptr<GraphClassifier> classifier_;
  std::unique_ptr<Sampler> sampler_;
};

}  // namespace sight

#endif  // SIGHT_CORE_RISK_ENGINE_H_
