// RiskEngine: the one-call public API of the Sight library.
//
// Wires together the full pipeline of the paper: two-hop stranger
// enumeration -> network similarity -> Definition 1/3 pools -> benefit
// computation -> active learning with a graph-based classifier -> a risk
// label for every stranger of the owner.
//
//   RiskEngineConfig config;                    // paper defaults
//   auto engine = RiskEngine::Create(config).value();
//   auto report = engine.AssessOwner(graph, profiles, visibility,
//                                    owner, &oracle, &rng).value();
//   for (const auto& sa : report.assessment.strangers) { ... }

#ifndef SIGHT_CORE_RISK_ENGINE_H_
#define SIGHT_CORE_RISK_ENGINE_H_

#include <memory>
#include <vector>

#include "core/active_learner.h"
#include "core/benefit.h"
#include "core/pool_builder.h"
#include "graph/profile.h"
#include "graph/social_graph.h"
#include "graph/visibility.h"
#include "learning/baselines.h"
#include "learning/harmonic.h"
#include "learning/multiclass_harmonic.h"
#include "learning/sampling.h"
#include "util/random.h"
#include "util/status.h"

namespace sight {

enum class ClassifierKind {
  /// Zhu et al. harmonic functions, ordinal embedding (the paper's
  /// choice, compact form).
  kHarmonic,
  /// Zhu et al.'s full multiclass formulation with Class Mass
  /// Normalization (one harmonic solve per risk class).
  kHarmonicCmn,
  /// Weighted kNN baseline.
  kKnn,
  /// Majority-label baseline.
  kMajority,
};

enum class SamplerKind {
  /// Uniform pool sampling (the paper's choice).
  kRandom,
  /// Maximum-ambiguity sampling (extension).
  kUncertainty,
};

struct RiskEngineConfig {
  PoolBuilderConfig pools;
  ActiveLearnerConfig learner;
  /// Owner-assigned benefit coefficients (paper Table III averages by
  /// default).
  ThetaWeights theta = ThetaWeights::PaperTable3();
  ClassifierKind classifier = ClassifierKind::kHarmonic;
  HarmonicConfig harmonic;
  size_t knn_k = 5;
  SamplerKind sampler = SamplerKind::kRandom;
};

/// Everything produced by one owner assessment.
struct RiskReport {
  AssessmentResult assessment;
  /// Sizes of the pools the learner ran on.
  std::vector<size_t> pool_sizes;
  size_t num_strangers = 0;
  size_t num_pools = 0;
};

class RiskEngine {
 public:
  /// Validates the configuration and instantiates classifier + sampler.
  static Result<RiskEngine> Create(RiskEngineConfig config);

  RiskEngine(RiskEngine&&) = default;
  RiskEngine& operator=(RiskEngine&&) = default;

  /// Runs the full pipeline for `owner`. The oracle is queried
  /// labels_per_round strangers per pool per round until every pool meets
  /// the Section III-D stopping condition.
  Result<RiskReport> AssessOwner(const SocialGraph& graph,
                                 const ProfileTable& profiles,
                                 const VisibilityTable& visibility,
                                 UserId owner, LabelOracle* oracle,
                                 Rng* rng) const;

  /// Variant over an explicit stranger set (incremental-crawler flow).
  /// Strangers in `known_labels` (optional) start out owner-labeled; the
  /// oracle is only queried for the rest. RiskSession manages that map
  /// automatically.
  Result<RiskReport> AssessStrangers(
      const SocialGraph& graph, const ProfileTable& profiles,
      const VisibilityTable& visibility, UserId owner,
      std::vector<UserId> strangers, LabelOracle* oracle, Rng* rng,
      const PoolLearner::KnownLabels* known_labels = nullptr) const;

  const RiskEngineConfig& config() const { return config_; }

 private:
  explicit RiskEngine(RiskEngineConfig config);

  RiskEngineConfig config_;
  std::unique_ptr<GraphClassifier> classifier_;
  std::unique_ptr<Sampler> sampler_;
};

}  // namespace sight

#endif  // SIGHT_CORE_RISK_ENGINE_H_
