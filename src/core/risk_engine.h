// RiskEngine: the batch assessment core of the Sight library.
//
// Wires together the full pipeline of the paper: two-hop stranger
// enumeration -> network similarity -> Definition 1/3 pools -> benefit
// computation -> active learning with a graph-based classifier -> a risk
// label for every stranger of the owner.
//
// DEPRECATED as a front door: constructing a RiskEngine per owner (or
// per crawler tick) rebuilds codecs, frequency tables, and learners
// from scratch every call. New code should go through the resident
// `RiskService` (service/risk_service.h), which shards owner state,
// carries learners across ticks, and exposes async Submit/Poll as well
// as a bitwise-identical synchronous path. See DESIGN.md §13 for the
// old->new API map. RiskEngine remains the internal execution core the
// service drives.
//
//   RiskEngineConfig config;                    // paper defaults
//   auto engine = RiskEngine::Create(config).value();
//   auto report = engine.AssessOwner(graph, profiles, visibility,
//                                    owner, &oracle, &rng).value();
//   for (const auto& sa : report.assessment.strangers) { ... }

#ifndef SIGHT_CORE_RISK_ENGINE_H_
#define SIGHT_CORE_RISK_ENGINE_H_

#include <memory>
#include <vector>

#include "core/active_learner.h"
#include "core/benefit.h"
#include "core/pool_builder.h"
#include "graph/profile.h"
#include "graph/social_graph.h"
#include "graph/visibility.h"
#include "learning/baselines.h"
#include "learning/harmonic.h"
#include "learning/multiclass_harmonic.h"
#include "learning/sampling.h"
#include "util/random.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace sight {

enum class ClassifierKind {
  /// Zhu et al. harmonic functions, ordinal embedding (the paper's
  /// choice, compact form).
  kHarmonic,
  /// Zhu et al.'s full multiclass formulation with Class Mass
  /// Normalization (one harmonic solve per risk class).
  kHarmonicCmn,
  /// Weighted kNN baseline.
  kKnn,
  /// Majority-label baseline.
  kMajority,
};

enum class SamplerKind {
  /// Uniform pool sampling (the paper's choice).
  kRandom,
  /// Maximum-ambiguity sampling (extension).
  kUncertainty,
};

struct RiskEngineConfig {
  PoolBuilderConfig pools;
  ActiveLearnerConfig learner;
  /// Owner-assigned benefit coefficients (paper Table III averages by
  /// default).
  ThetaWeights theta = ThetaWeights::PaperTable3();
  ClassifierKind classifier = ClassifierKind::kHarmonic;
  HarmonicConfig harmonic;
  size_t knn_k = 5;
  SamplerKind sampler = SamplerKind::kRandom;
  /// Worker threads for the parallel pipeline phases (NS batches,
  /// similarity-matrix construction, per-pool learner setup, per-class
  /// harmonic solves). 1 = fully serial, no pool at all (the default);
  /// 0 = hardware concurrency. Ignored when `thread_pool` is set.
  /// Assessments are deterministic and identical at every setting.
  size_t num_threads = 1;
  /// Optional caller-owned pool shared across engines/owners (non-owning;
  /// must outlive the engine). Overrides `num_threads`.
  ThreadPool* thread_pool = nullptr;
};

/// Everything produced by one owner assessment.
struct RiskReport {
  AssessmentResult assessment;
  /// Sizes of the pools the learner ran on.
  std::vector<size_t> pool_sizes;
  size_t num_strangers = 0;
  size_t num_pools = 0;
};

class RiskEngine {
 public:
  /// Validates the configuration and instantiates classifier + sampler.
  [[nodiscard]] static Result<RiskEngine> Create(RiskEngineConfig config);

  RiskEngine(RiskEngine&&) = default;
  RiskEngine& operator=(RiskEngine&&) = default;

  /// Runs the full pipeline for `owner`. The oracle is queried
  /// labels_per_round strangers per pool per round until every pool meets
  /// the Section III-D stopping condition.
  [[nodiscard]]
  Result<RiskReport> AssessOwner(const SocialGraph& graph,
                                 const ProfileTable& profiles,
                                 const VisibilityTable& visibility,
                                 UserId owner, LabelOracle* oracle,
                                 Rng* rng) const;

  /// Variant over an explicit stranger set (incremental-crawler flow).
  /// Strangers in `known_labels` (optional) start out owner-labeled; the
  /// oracle is only queried for the rest. Strangers in `prior_scores`
  /// (optional) seed the pools' first solves with the previous tick's
  /// predicted scores (warm start across ticks). RiskService manages
  /// both maps automatically.
  [[nodiscard]]
  Result<RiskReport> AssessStrangers(
      const SocialGraph& graph, const ProfileTable& profiles,
      const VisibilityTable& visibility, UserId owner,
      std::vector<UserId> strangers, LabelOracle* oracle, Rng* rng,
      const PoolLearner::KnownLabels* known_labels = nullptr,
      const PoolLearner::KnownLabels* prior_scores = nullptr) const;

  /// AssessStrangers plus cross-tick learner reuse: finished
  /// PoolLearners stashed in `carry` by a previous call are resumed
  /// when their pool's member list and owner labels are unchanged
  /// (stale state is rejected by those fingerprint checks), skipping
  /// the encode/matrix-build/round loop entirely for stable pools.
  /// After the run, the new learners are harvested back into `carry`
  /// for the next tick. `carry` may be empty but not null; pass
  /// distinct carries for distinct owners. Drives RiskService's warm
  /// path; results are bitwise-identical to AssessStrangers.
  [[nodiscard]]
  Result<RiskReport> AssessIncremental(
      const SocialGraph& graph, const ProfileTable& profiles,
      const VisibilityTable& visibility, UserId owner,
      std::vector<UserId> strangers, LabelOracle* oracle, Rng* rng,
      const PoolLearner::KnownLabels* known_labels,
      const PoolLearner::KnownLabels* prior_scores, LearnerCarry* carry) const;

  const RiskEngineConfig& config() const { return config_; }

 private:
  explicit RiskEngine(RiskEngineConfig config);

  [[nodiscard]]
  Result<RiskReport> AssessImpl(const SocialGraph& graph,
                                const ProfileTable& profiles,
                                const VisibilityTable& visibility, UserId owner,
                                std::vector<UserId> strangers,
                                LabelOracle* oracle, Rng* rng,
                                const PoolLearner::KnownLabels* known_labels,
                                const PoolLearner::KnownLabels* prior_scores,
                                LearnerCarry* carry) const;

  /// The pool the pipeline phases run on: the caller's, else the engine's
  /// own (num_threads != 1), else null (serial).
  ThreadPool* effective_pool() const {
    return config_.thread_pool != nullptr ? config_.thread_pool
                                          : owned_pool_.get();
  }

  RiskEngineConfig config_;
  std::unique_ptr<ThreadPool> owned_pool_;
  std::unique_ptr<GraphClassifier> classifier_;
  std::unique_ptr<Sampler> sampler_;
};

}  // namespace sight

#endif  // SIGHT_CORE_RISK_ENGINE_H_
