#include "core/pool_builder.h"

#include "graph/algorithms.h"
#include "util/string_util.h"

namespace sight {

Result<PoolBuilder> PoolBuilder::Create(PoolBuilderConfig config) {
  if (config.alpha == 0) {
    return Status::InvalidArgument("alpha must be positive");
  }
  if (config.beta < 0.0 || config.beta > 1.0) {
    return Status::InvalidArgument(
        StrFormat("beta %f not in [0, 1]", config.beta));
  }
  SIGHT_RETURN_IF_ERROR(config.ns_config.Validate());
  return PoolBuilder(std::move(config));
}

Result<PoolSet> PoolBuilder::Build(const SocialGraph& graph,
                                   const ProfileTable& profiles,
                                   UserId owner) const {
  SIGHT_ASSIGN_OR_RETURN(std::vector<UserId> strangers,
                         TwoHopStrangers(graph, owner));
  return BuildForStrangers(graph, profiles, owner, std::move(strangers));
}

Result<PoolSet> PoolBuilder::BuildForStrangers(
    const SocialGraph& graph, const ProfileTable& profiles, UserId owner,
    std::vector<UserId> strangers) const {
  PoolSet result;
  result.strangers = std::move(strangers);

  SIGHT_ASSIGN_OR_RETURN(NetworkSimilarity ns,
                         NetworkSimilarity::Create(config_.ns_config));
  result.network_similarities =
      ns.ComputeBatch(graph, owner, result.strangers, config_.thread_pool);

  SIGHT_ASSIGN_OR_RETURN(
      NetworkSimilarityGroups nsg,
      NetworkSimilarityGroups::Build(config_.alpha, result.strangers,
                                     result.network_similarities));

  if (config_.strategy == PoolStrategy::kNetworkOnly) {
    for (size_t x = 0; x < nsg.alpha(); ++x) {
      if (nsg.group(x).empty()) continue;
      StrangerPool pool;
      pool.members = nsg.group(x);
      pool.nsg_index = x;
      pool.cluster_index = 0;
      result.pools.push_back(std::move(pool));
    }
    return result;
  }

  SqueezerConfig sq_config;
  sq_config.threshold = config_.beta;
  sq_config.weights = config_.attribute_weights;
  SIGHT_ASSIGN_OR_RETURN(Squeezer squeezer,
                         Squeezer::Create(profiles.schema(), sq_config));

  for (size_t x = 0; x < nsg.alpha(); ++x) {
    if (nsg.group(x).empty()) continue;
    SIGHT_ASSIGN_OR_RETURN(Clustering clustering,
                           squeezer.Cluster(profiles, nsg.group(x)));
    for (size_t c = 0; c < clustering.num_clusters(); ++c) {
      StrangerPool pool;
      pool.members = clustering.clusters[c];
      pool.nsg_index = x;
      pool.cluster_index = c;
      result.pools.push_back(std::move(pool));
    }
  }
  return result;
}

}  // namespace sight
