#include "core/pool_builder.h"

#include "graph/algorithms.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace sight {

void PoolPartitionCache::Clear() {
  valid_ = false;
  graph_ = nullptr;
  profiles_ = nullptr;
  owner_ = kInvalidUser;
  strangers_.clear();
  ns_.clear();
  group_members_.clear();
  squeezers_.clear();
}

Result<PoolBuilder> PoolBuilder::Create(PoolBuilderConfig config) {
  if (config.alpha == 0) {
    return Status::InvalidArgument("alpha must be positive");
  }
  if (config.beta < 0.0 || config.beta > 1.0) {
    return Status::InvalidArgument(
        StrFormat("beta %f not in [0, 1]", config.beta));
  }
  SIGHT_RETURN_IF_ERROR(config.ns_config.Validate());
  return PoolBuilder(std::move(config));
}

Result<PoolSet> PoolBuilder::Build(const SocialGraph& graph,
                                   const ProfileTable& profiles,
                                   UserId owner) const {
  SIGHT_ASSIGN_OR_RETURN(std::vector<UserId> strangers,
                         TwoHopStrangers(graph, owner));
  return BuildForStrangers(graph, profiles, owner, std::move(strangers));
}

Result<PoolSet> PoolBuilder::BuildForStrangers(
    const SocialGraph& graph, const ProfileTable& profiles, UserId owner,
    std::vector<UserId> strangers) const {
  PoolSet result;
  result.strangers = std::move(strangers);

  SIGHT_ASSIGN_OR_RETURN(NetworkSimilarity ns,
                         NetworkSimilarity::Create(config_.ns_config));
  result.network_similarities =
      ns.ComputeBatch(graph, owner, result.strangers, config_.thread_pool);

  SIGHT_ASSIGN_OR_RETURN(
      NetworkSimilarityGroups nsg,
      NetworkSimilarityGroups::Build(config_.alpha, result.strangers,
                                     result.network_similarities));

  if (config_.strategy == PoolStrategy::kNetworkOnly) {
    for (size_t x = 0; x < nsg.alpha(); ++x) {
      if (nsg.group(x).empty()) continue;
      StrangerPool pool;
      pool.members = nsg.group(x);
      pool.nsg_index = x;
      pool.cluster_index = 0;
      result.pools.push_back(std::move(pool));
    }
    return result;
  }

  SqueezerConfig sq_config;
  sq_config.threshold = config_.beta;
  sq_config.weights = config_.attribute_weights;
  SIGHT_ASSIGN_OR_RETURN(Squeezer squeezer,
                         Squeezer::Create(profiles.schema(), sq_config));

  for (size_t x = 0; x < nsg.alpha(); ++x) {
    if (nsg.group(x).empty()) continue;
    SIGHT_ASSIGN_OR_RETURN(Clustering clustering,
                           squeezer.Cluster(profiles, nsg.group(x)));
    for (size_t c = 0; c < clustering.num_clusters(); ++c) {
      StrangerPool pool;
      pool.members = clustering.clusters[c];
      pool.nsg_index = x;
      pool.cluster_index = c;
      result.pools.push_back(std::move(pool));
    }
  }
  return result;
}

Result<PoolSet> PoolBuilder::BuildForStrangersCached(
    const SocialGraph& graph, const ProfileTable& profiles, UserId owner,
    std::vector<UserId> strangers, PoolPartitionCache* cache) const {
  SIGHT_CHECK(cache != nullptr);
  bool reuse =
      cache->valid_ && cache->graph_ == &graph &&
      cache->graph_epoch_ == graph.mutation_epoch() &&
      cache->profiles_ == &profiles &&
      cache->profile_epoch_ == profiles.mutation_epoch() &&
      cache->owner_ == owner && cache->alpha_ == config_.alpha &&
      cache->beta_ == config_.beta && cache->strategy_ == config_.strategy &&
      cache->attribute_weights_ == config_.attribute_weights &&
      cache->ns_config_.mutual_weight == config_.ns_config.mutual_weight &&
      cache->ns_config_.saturation == config_.ns_config.saturation &&
      cache->strangers_.size() <= strangers.size();
  if (reuse) {
    // Discovery is append-only in the serving flow; any reordering or
    // removal breaks the prefix and rebuilds cold.
    for (size_t i = 0; i < cache->strangers_.size(); ++i) {
      if (cache->strangers_[i] != strangers[i]) {
        reuse = false;
        break;
      }
    }
  }

  size_t start = 0;
  if (!reuse) {
    cache->Clear();
    cache->group_members_.assign(config_.alpha, {});
    cache->squeezers_.resize(config_.alpha);
    cache->graph_ = &graph;
    cache->graph_epoch_ = graph.mutation_epoch();
    cache->profiles_ = &profiles;
    cache->profile_epoch_ = profiles.mutation_epoch();
    cache->owner_ = owner;
    cache->alpha_ = config_.alpha;
    cache->beta_ = config_.beta;
    cache->strategy_ = config_.strategy;
    cache->attribute_weights_ = config_.attribute_weights;
    cache->ns_config_ = config_.ns_config;
    ++cache->stats_.misses;
  } else {
    // Invalid until the suffix lands: an error below must not leave a
    // half-applied partition marked reusable.
    cache->valid_ = false;
    start = cache->strangers_.size();
    if (start == strangers.size()) {
      ++cache->stats_.hits_identical;
    } else {
      ++cache->stats_.hits_grown;
    }
  }

  if (start < strangers.size()) {
    std::vector<UserId> suffix(
        strangers.begin() + static_cast<ptrdiff_t>(start), strangers.end());
    SIGHT_ASSIGN_OR_RETURN(NetworkSimilarity ns,
                           NetworkSimilarity::Create(config_.ns_config));
    std::vector<double> suffix_ns =
        ns.ComputeBatch(graph, owner, suffix, config_.thread_pool);
    std::optional<Squeezer> squeezer;
    if (config_.strategy == PoolStrategy::kNetworkAndProfile) {
      SqueezerConfig sq_config;
      sq_config.threshold = config_.beta;
      sq_config.weights = config_.attribute_weights;
      SIGHT_ASSIGN_OR_RETURN(Squeezer created,
                             Squeezer::Create(profiles.schema(), sq_config));
      squeezer.emplace(std::move(created));
    }
    for (size_t k = 0; k < suffix.size(); ++k) {
      double value = suffix_ns[k];
      // Same validation and binning as NetworkSimilarityGroups::Build.
      if (value < 0.0 || value > 1.0) {
        return Status::OutOfRange(
            StrFormat("network similarity %f outside [0, 1]", value));
      }
      size_t x = static_cast<size_t>(value *
                                     static_cast<double>(config_.alpha));
      if (x >= config_.alpha) x = config_.alpha - 1;
      cache->group_members_[x].push_back(suffix[k]);
      if (squeezer.has_value()) {
        if (!cache->squeezers_[x].has_value()) {
          SIGHT_ASSIGN_OR_RETURN(IncrementalSqueezer incremental,
                                 squeezer->MakeIncremental(profiles.schema()));
          cache->squeezers_[x].emplace(std::move(incremental));
        }
        SIGHT_RETURN_IF_ERROR(
            cache->squeezers_[x]->Add(profiles, suffix[k]).status());
      }
      cache->strangers_.push_back(suffix[k]);
      cache->ns_.push_back(value);
    }
  }
  cache->valid_ = true;

  // Materialize the pool set in the exact shape BuildForStrangers emits:
  // groups in ascending NSG order, clusters in creation order, members in
  // insertion order — report ordering and the shared learner Rng stream
  // depend on it.
  PoolSet result;
  result.strangers = cache->strangers_;
  result.network_similarities = cache->ns_;
  for (size_t x = 0; x < config_.alpha; ++x) {
    if (config_.strategy == PoolStrategy::kNetworkOnly) {
      if (cache->group_members_[x].empty()) continue;
      StrangerPool pool;
      pool.members = cache->group_members_[x];
      pool.nsg_index = x;
      pool.cluster_index = 0;
      result.pools.push_back(std::move(pool));
      continue;
    }
    if (!cache->squeezers_[x].has_value()) continue;
    const Clustering& clustering = cache->squeezers_[x]->clustering();
    for (size_t c = 0; c < clustering.num_clusters(); ++c) {
      StrangerPool pool;
      pool.members = clustering.clusters[c];
      pool.nsg_index = x;
      pool.cluster_index = c;
      result.pools.push_back(std::move(pool));
    }
  }
  return result;
}

}  // namespace sight
