#include "core/risk_engine.h"

#include "graph/algorithms.h"
#include "util/logging.h"

namespace sight {

void AssessCarry::Clear() {
  learners.Clear();
  partition.Clear();
  encode.Clear();
  graph_ = nullptr;
  profiles_ = nullptr;
  visibility_ = nullptr;
}

void AssessCarry::InvalidateOnUpstreamChange(
    const SocialGraph& graph, const ProfileTable& profiles,
    const VisibilityTable& visibility) {
  // Carried learners bake in profile-similarity matrices (profiles),
  // display similarities (graph) and display benefits (visibility);
  // their CanResume fingerprint only sees pool membership and labels, so
  // any upstream edit drops them here. The partition and encode caches
  // re-check their own fingerprints per build and need no help.
  bool changed = graph_ != &graph || graph_epoch_ != graph.mutation_epoch() ||
                 profiles_ != &profiles ||
                 profile_epoch_ != profiles.mutation_epoch() ||
                 visibility_ != &visibility ||
                 visibility_epoch_ != visibility.mutation_epoch();
  if (changed) learners.Clear();
  graph_ = &graph;
  graph_epoch_ = graph.mutation_epoch();
  profiles_ = &profiles;
  profile_epoch_ = profiles.mutation_epoch();
  visibility_ = &visibility;
  visibility_epoch_ = visibility.mutation_epoch();
}

RiskEngine::RiskEngine(RiskEngineConfig config)
    : config_(std::move(config)) {}

Result<RiskEngine> RiskEngine::Create(RiskEngineConfig config) {
  SIGHT_RETURN_IF_ERROR(config.learner.Validate());
  SIGHT_RETURN_IF_ERROR(config.theta.Validate());
  RiskEngine engine(std::move(config));

  // The pool must exist before the classifiers so kHarmonicCmn can run
  // its per-class solves on it.
  if (engine.config_.thread_pool == nullptr &&
      engine.config_.num_threads != 1) {
    engine.owned_pool_ =
        std::make_unique<ThreadPool>(engine.config_.num_threads);
  }

  switch (engine.config_.classifier) {
    case ClassifierKind::kHarmonic: {
      SIGHT_ASSIGN_OR_RETURN(
          HarmonicFunctionClassifier harmonic,
          HarmonicFunctionClassifier::Create(engine.config_.harmonic));
      engine.classifier_ =
          std::make_unique<HarmonicFunctionClassifier>(std::move(harmonic));
      break;
    }
    case ClassifierKind::kHarmonicCmn: {
      MulticlassHarmonicConfig mc_config;
      mc_config.solver = engine.config_.harmonic;
      mc_config.label_min = kRiskLabelMin;
      mc_config.label_max = kRiskLabelMax;
      mc_config.thread_pool = engine.effective_pool();
      SIGHT_ASSIGN_OR_RETURN(
          MulticlassHarmonicClassifier multiclass,
          MulticlassHarmonicClassifier::Create(mc_config));
      engine.classifier_ = std::make_unique<MulticlassHarmonicClassifier>(
          std::move(multiclass));
      break;
    }
    case ClassifierKind::kKnn: {
      SIGHT_ASSIGN_OR_RETURN(KnnClassifier knn,
                             KnnClassifier::Create(engine.config_.knn_k));
      engine.classifier_ = std::make_unique<KnnClassifier>(std::move(knn));
      break;
    }
    case ClassifierKind::kMajority:
      engine.classifier_ = std::make_unique<MajorityClassifier>();
      break;
  }

  switch (engine.config_.sampler) {
    case SamplerKind::kRandom:
      engine.sampler_ = std::make_unique<RandomSampler>();
      break;
    case SamplerKind::kUncertainty:
      engine.sampler_ = std::make_unique<UncertaintySampler>();
      break;
  }
  return engine;
}

Result<RiskReport> RiskEngine::AssessOwner(const SocialGraph& graph,
                                           const ProfileTable& profiles,
                                           const VisibilityTable& visibility,
                                           UserId owner, LabelOracle* oracle,
                                           Rng* rng) const {
  SIGHT_ASSIGN_OR_RETURN(std::vector<UserId> strangers,
                         TwoHopStrangers(graph, owner));
  return AssessStrangers(graph, profiles, visibility, owner,
                         std::move(strangers), oracle, rng);
}

Result<RiskReport> RiskEngine::AssessStrangers(
    const SocialGraph& graph, const ProfileTable& profiles,
    const VisibilityTable& visibility, UserId owner,
    std::vector<UserId> strangers, LabelOracle* oracle, Rng* rng,
    const PoolLearner::KnownLabels* known_labels,
    const PoolLearner::KnownLabels* prior_scores) const {
  return AssessImpl(graph, profiles, visibility, owner, std::move(strangers),
                    oracle, rng, known_labels, prior_scores,
                    /*carry=*/nullptr);
}

Result<RiskReport> RiskEngine::AssessIncremental(
    const SocialGraph& graph, const ProfileTable& profiles,
    const VisibilityTable& visibility, UserId owner,
    std::vector<UserId> strangers, LabelOracle* oracle, Rng* rng,
    const PoolLearner::KnownLabels* known_labels,
    const PoolLearner::KnownLabels* prior_scores, AssessCarry* carry) const {
  SIGHT_CHECK(carry != nullptr);
  return AssessImpl(graph, profiles, visibility, owner, std::move(strangers),
                    oracle, rng, known_labels, prior_scores, carry);
}

Result<RiskReport> RiskEngine::AssessImpl(
    const SocialGraph& graph, const ProfileTable& profiles,
    const VisibilityTable& visibility, UserId owner,
    std::vector<UserId> strangers, LabelOracle* oracle, Rng* rng,
    const PoolLearner::KnownLabels* known_labels,
    const PoolLearner::KnownLabels* prior_scores, AssessCarry* carry) const {
  RiskReport report;
  if (carry != nullptr) {
    carry->InvalidateOnUpstreamChange(graph, profiles, visibility);
  }

  PoolBuilderConfig pool_config = config_.pools;
  pool_config.thread_pool = effective_pool();
  SIGHT_ASSIGN_OR_RETURN(PoolBuilder builder,
                         PoolBuilder::Create(std::move(pool_config)));
  PoolSet pools;
  if (carry != nullptr && carry->use_partition) {
    size_t known = carry->partition.num_strangers();
    size_t total = strangers.size();
    size_t misses_before = carry->partition.stats().misses;
    SIGHT_ASSIGN_OR_RETURN(
        pools, builder.BuildForStrangersCached(graph, profiles, owner,
                                               std::move(strangers),
                                               &carry->partition));
    // The cache's own counters are the ground truth: a cold rebuild of
    // an already-full cache leaves num_strangers() unchanged and would
    // otherwise masquerade as a reuse.
    report.carry.partition_reused =
        carry->partition.stats().misses == misses_before;
    report.carry.partition_new_strangers =
        report.carry.partition_reused ? total - known : total;
  } else {
    SIGHT_ASSIGN_OR_RETURN(pools,
                           builder.BuildForStrangers(graph, profiles, owner,
                                                     std::move(strangers)));
  }

  SIGHT_ASSIGN_OR_RETURN(BenefitModel benefit,
                         BenefitModel::Create(config_.theta));
  std::vector<double> benefits =
      benefit.ComputeBatch(visibility, pools.strangers);

  const StrangerEncodeCache* encode = nullptr;
  if (carry != nullptr && carry->use_encode) {
    StrangerEncodeCache::RefreshResult refreshed =
        carry->encode.Refresh(profiles, pools.strangers);
    report.carry.encode_reused = refreshed.reused;
    report.carry.encode_rows_appended = refreshed.rows_appended;
    encode = &carry->encode;
  }

  ActiveLearnerConfig learner_config = config_.learner;
  learner_config.thread_pool = effective_pool();
  LearnerCarry* learners =
      carry != nullptr && carry->use_learners ? &carry->learners : nullptr;
  SIGHT_ASSIGN_OR_RETURN(
      ActiveLearner learner,
      ActiveLearner::Create(pools, profiles, std::move(benefits),
                            learner_config, classifier_.get(), sampler_.get(),
                            known_labels, prior_scores, learners, encode));

  SIGHT_ASSIGN_OR_RETURN(report.assessment, learner.Run(oracle, rng));
  if (learners != nullptr) learner.HarvestInto(learners);
  report.num_strangers = pools.TotalStrangers();
  report.num_pools = pools.pools.size();
  report.pool_sizes.reserve(pools.pools.size());
  for (const StrangerPool& pool : pools.pools) {
    report.pool_sizes.push_back(pool.members.size());
  }
  return report;
}

}  // namespace sight
