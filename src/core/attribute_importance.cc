#include "core/attribute_importance.h"

#include <algorithm>
#include <numeric>

#include "learning/info_gain.h"
#include "util/string_util.h"

namespace sight {
namespace {

Status CheckParallel(size_t strangers, size_t labels) {
  if (strangers != labels) {
    return Status::InvalidArgument(
        StrFormat("strangers/labels size mismatch: %zu vs %zu", strangers,
                  labels));
  }
  if (strangers == 0) {
    return Status::InvalidArgument("no labeled strangers");
  }
  return Status::OK();
}

// Normalizes raw gain ratios into importances (Definition 6); all-zero
// IGRs degrade to a uniform distribution.
std::vector<AttributeImportance> Normalize(
    std::vector<std::string> names, const std::vector<double>& ratios) {
  double total = std::accumulate(ratios.begin(), ratios.end(), 0.0);
  std::vector<AttributeImportance> result(names.size());
  for (size_t i = 0; i < names.size(); ++i) {
    result[i].name = std::move(names[i]);
    result[i].gain_ratio = ratios[i];
    result[i].importance = total > 0.0
                               ? ratios[i] / total
                               : 1.0 / static_cast<double>(ratios.size());
  }
  return result;
}

}  // namespace

Result<std::vector<AttributeImportance>> ProfileAttributeImportance(
    const ProfileTable& profiles, const std::vector<UserId>& strangers,
    const std::vector<RiskLabel>& labels) {
  SIGHT_RETURN_IF_ERROR(CheckParallel(strangers.size(), labels.size()));
  // Encode once, then mine on code columns: the gain-ratio measures
  // partition by value identity only and the codec maps equal strings to
  // equal codes (and "" to kMissingCode), so this is bitwise-identical
  // to mining the string columns directly.
  return ProfileAttributeImportance(
      profiles.schema(), EncodedProfileTable::Build(profiles, strangers),
      labels);
}

Result<std::vector<AttributeImportance>> ProfileAttributeImportance(
    const ProfileSchema& schema, const EncodedProfileTable& encoded,
    const std::vector<RiskLabel>& labels) {
  SIGHT_RETURN_IF_ERROR(CheckParallel(encoded.num_rows(), labels.size()));
  if (schema.num_attributes() != encoded.num_attributes()) {
    return Status::InvalidArgument(
        StrFormat("schema has %zu attributes, encoded table %zu",
                  schema.num_attributes(), encoded.num_attributes()));
  }

  std::vector<int> label_values;
  label_values.reserve(labels.size());
  for (RiskLabel l : labels) label_values.push_back(static_cast<int>(l));

  std::vector<std::string> names;
  std::vector<double> ratios;
  std::vector<uint32_t> column(encoded.num_rows());
  for (AttributeId a = 0; a < schema.num_attributes(); ++a) {
    for (size_t i = 0; i < encoded.num_rows(); ++i) {
      column[i] = encoded.row(i)[a];
    }
    SIGHT_ASSIGN_OR_RETURN(double igr,
                           CorrectedGainRatio(column, label_values));
    names.push_back(schema.name(a));
    ratios.push_back(igr);
  }
  return Normalize(std::move(names), ratios);
}

Result<std::vector<AttributeImportance>> BenefitItemImportance(
    const VisibilityTable& visibility, const std::vector<UserId>& strangers,
    const std::vector<RiskLabel>& labels) {
  SIGHT_RETURN_IF_ERROR(CheckParallel(strangers.size(), labels.size()));

  std::vector<int> label_values;
  label_values.reserve(labels.size());
  for (RiskLabel l : labels) label_values.push_back(static_cast<int>(l));

  std::vector<std::string> names;
  std::vector<double> ratios;
  // Visibility bits as code columns (the measures only partition by
  // equality, so 0/1 codes behave exactly like "0"/"1" strings).
  std::vector<uint32_t> column;
  column.reserve(strangers.size());
  for (ProfileItem item : kAllProfileItems) {
    column.clear();
    for (UserId s : strangers) {
      column.push_back(visibility.IsVisible(s, item) ? 1u : 0u);
    }
    SIGHT_ASSIGN_OR_RETURN(double igr,
                           CorrectedGainRatio(column, label_values));
    names.push_back(ProfileItemName(item));
    ratios.push_back(igr);
  }
  return Normalize(std::move(names), ratios);
}

std::vector<size_t> ImportanceRanks(
    const std::vector<AttributeImportance>& importances) {
  std::vector<size_t> order(importances.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return importances[a].importance > importances[b].importance;
  });
  std::vector<size_t> ranks(importances.size());
  for (size_t rank = 0; rank < order.size(); ++rank) {
    ranks[order[rank]] = rank;
  }
  return ranks;
}

}  // namespace sight
