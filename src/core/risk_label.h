// The paper's three-level risk label scale (Section III-A).
//
// Owners answer risk queries on a deliberately coarse scale: not risky=1,
// risky=2, very risky=3. RMSE over this range lies in [0, 2].

#ifndef SIGHT_CORE_RISK_LABEL_H_
#define SIGHT_CORE_RISK_LABEL_H_

#include <cstdint>
#include <string>

#include "util/status.h"

namespace sight {

enum class RiskLabel : int {
  kNotRisky = 1,
  kRisky = 2,
  kVeryRisky = 3,
};

inline constexpr int kRiskLabelMin = 1;
inline constexpr int kRiskLabelMax = 3;

/// Numeric value used by classifiers and RMSE.
inline double RiskLabelValue(RiskLabel label) {
  return static_cast<double>(static_cast<int>(label));
}

/// Clamped conversion from an integer in [1, 3].
[[nodiscard]] Result<RiskLabel> RiskLabelFromInt(int value);

/// "not risky" / "risky" / "very risky".
const char* RiskLabelName(RiskLabel label);

}  // namespace sight

#endif  // SIGHT_CORE_RISK_LABEL_H_
