// The paper's active risk-learning process (Section III, Figure 1).
//
// For every pool of strangers, rounds of (sample -> owner labels ->
// classifier prediction) run until the stopping condition of Section III-D
// holds:
//
//   * accuracy  — Definition 4: the RMSE between the labels predicted in
//     round i and the owner labels collected for the same strangers in
//     round i+1 is below a threshold (paper: 0.5);
//   * stability — Definition 5: no stranger's predicted label moved by at
//     least the confidence-derived tolerance for n consecutive rounds
//     (paper: n=2).
//
// On the Definition 5 tolerance: the paper prints
// (Lmax - Lmin) * 100 / (100 - c), which for c=80 yields 10 — a change no
// 3-level label can reach, and under which c=100 ("label everything
// manually") would stop immediately, contradicting the text. We implement
// the evidently intended (Lmax - Lmin) * (100 - c) / 100: c=80 gives a 0.4
// tolerance on the continuous scores, and c=100 gives 0, which never
// stabilizes — exactly the "owner labels all strangers" behaviour the
// paper describes.

#ifndef SIGHT_CORE_ACTIVE_LEARNER_H_
#define SIGHT_CORE_ACTIVE_LEARNER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/pool_builder.h"
#include "core/risk_label.h"
#include "graph/profile.h"
#include "graph/profile_codec.h"
#include "graph/types.h"
#include "learning/classifier.h"
#include "learning/sampling.h"
#include "learning/similarity_matrix.h"
#include "similarity/profile_similarity.h"
#include "util/random.h"
#include "util/status.h"

namespace sight {

class ThreadPool;

/// The annotator of the active-learning loop — in production the human
/// owner behind the Sight UI, in experiments a simulated OwnerModel.
class LabelOracle {
 public:
  virtual ~LabelOracle() = default;

  /// The owner's answer to the paper's Section III-A question for
  /// `stranger`, who is `similarity`/1.0 similar and provides
  /// `benefit`/1.0 benefits (the two values the UI displays).
  virtual RiskLabel QueryLabel(UserId stranger, double similarity,
                               double benefit) = 0;
};

struct ActiveLearnerConfig {
  /// Strangers queried per pool per round (paper: 3).
  size_t labels_per_round = 3;
  /// Definition 4 stop threshold (paper: 0.5).
  double rmse_threshold = 0.5;
  /// Owner confidence c in [0, 100] (paper's owners averaged 78.39).
  double confidence = 80.0;
  /// Rounds without classification change required to stop (paper: 2).
  size_t stable_rounds = 2;
  /// Hard safety bound per pool.
  size_t max_rounds = 64;
  /// Keep only the top-k profile-similarity edges per pool member when
  /// building the classifier graph; 0 = dense.
  size_t sparsify_top_k = 0;
  /// Carry the classifier's solve state across rounds so each re-solve
  /// starts from the previous round's converged scores (warm start)
  /// instead of replaying the label history from scratch. Predictions
  /// are bitwise-identical either way — see DESIGN.md §12 — so this is
  /// purely a per-round cost knob; false forces the cold replay (used by
  /// the equivalence tests and the round_solve bench).
  bool warm_start = true;
  /// When false (default) the Definition-5 stabilization scan stops at
  /// the first still-unlabeled member that moved >= tolerance, so
  /// RoundRecord::unstabilized is 0 or 1 on unstable rounds. fig6-style
  /// consumers that need the exact count set this to true.
  bool count_all_unstabilized = false;
  /// Optional worker pool (non-owning; must outlive the learner) for the
  /// O(n^2) similarity-matrix construction and the independent per-pool
  /// learner setup in ActiveLearner::Create. The learning rounds
  /// themselves stay serial, and predictions are identical with any pool
  /// (including none).
  ThreadPool* thread_pool = nullptr;

  [[nodiscard]] Status Validate() const;

  /// Definition 5 tolerance derived from `confidence`.
  double StabilizationTolerance() const {
    return static_cast<double>(kRiskLabelMax - kRiskLabelMin) *
           (100.0 - confidence) / 100.0;
  }
};

/// What happened in one labeling round of one pool.
struct RoundRecord {
  size_t pool_index = 0;
  /// 1-based round number within the pool.
  size_t round = 0;
  size_t newly_labeled = 0;
  /// Definition 4 RMSE for this round; valid from round 2 (there must be a
  /// previous prediction to validate).
  bool rmse_valid = false;
  double rmse = 0.0;
  /// Strangers whose continuous prediction moved >= tolerance. With the
  /// default early-exit scan (ActiveLearnerConfig::count_all_unstabilized
  /// == false) this is 0 or 1; the exact count needs the flag.
  size_t unstabilized = 0;
  bool stabilized = false;
  /// Solver that produced this round's predictions ("gauss-seidel",
  /// "conjugate-gradient", or the classifier name) — kAuto's per-round
  /// choice is no longer hidden.
  std::string solver;
  /// Sweeps/iterations of this round's solve.
  size_t solve_iterations = 0;
};

enum class PoolOutcome : uint8_t {
  /// Stopping condition met (accuracy + stability).
  kConverged,
  /// Every member was owner-labeled before convergence.
  kExhausted,
  /// max_rounds hit first.
  kRoundLimit,
};

class PoolLearner;

/// Cross-tick carry-over of per-pool learner state (the resident-service
/// flow, DESIGN.md §13). After an assessment the ActiveLearner's finished
/// PoolLearners — similarity matrix, labeled set, converged solve state —
/// are harvested into a LearnerCarry; on the next tick, pools whose
/// membership fingerprint (the exact member list) matches a retained
/// learner reuse it wholesale, skipping the matrix rebuild and the
/// re-convergence rounds. Stale state is rejected structurally: any
/// membership change, any label the learner has not seen, or a
/// round-limit outcome falls back to the full rebuild, and the
/// append-only labeled-set fingerprint inside HarmonicSolveState guards
/// the solve layer independently (DESIGN.md §12).
class LearnerCarry {
 public:
  LearnerCarry() = default;
  LearnerCarry(LearnerCarry&&) = default;
  LearnerCarry& operator=(LearnerCarry&&) = default;

  /// Retained learners available for reuse.
  size_t size() const;
  /// Drops all retained state (e.g. after an upstream data change the
  /// membership fingerprint cannot see, such as edited profiles).
  void Clear();

 private:
  friend class ActiveLearner;
  std::vector<PoolLearner> retained_;
};

/// Active learning over a single pool.
///
/// The pool's classifier graph is the profile-similarity matrix over its
/// members (the paper's adaptation of Zhu's classifier to categorical
/// data).
class PoolLearner {
 public:
  /// Owner labels carried over from a previous assessment (incremental
  /// flow): stranger id -> numeric label value.
  using KnownLabels = std::unordered_map<UserId, double>;

  /// `display_similarity` / `display_benefit` are parallel to
  /// `pool.members` and are surfaced to the oracle with each query.
  /// Members found in `known_labels` start out owner-labeled, so the
  /// oracle is never asked about them again. `prior_scores` (optional)
  /// are continuous predicted scores from an earlier assessment (crawler
  /// tick); members found there seed the first solve's starting vector,
  /// warm-starting across ticks without constraining the labeled set.
  [[nodiscard]]
  static Result<PoolLearner> Create(const StrangerPool& pool,
                                    SimilarityMatrix weights,
                                    std::vector<double> display_similarity,
                                    std::vector<double> display_benefit,
                                    const ActiveLearnerConfig& config,
                                    const GraphClassifier* classifier,
                                    const Sampler* sampler,
                                    const KnownLabels* known_labels = nullptr,
                                    const KnownLabels* prior_scores = nullptr);

  /// Runs one round; no-op error if already finished.
  [[nodiscard]] Result<RoundRecord> RunRound(LabelOracle* oracle, Rng* rng);

  /// Runs rounds until the pool finishes; returns all round records.
  [[nodiscard]]
  Result<std::vector<RoundRecord>> RunToCompletion(LabelOracle* oracle,
                                                   Rng* rng);

  bool finished() const { return finished_; }
  PoolOutcome outcome() const { return outcome_; }
  size_t rounds_run() const { return rounds_run_; }
  /// Fresh oracle queries this learner issued (carried-over labels from
  /// `known_labels` are not re-counted).
  size_t num_queries() const { return labeled_.size() - seeded_count_; }

  const std::vector<UserId>& members() const { return members_; }

  /// Continuous scores, one per member (label values after exhaustion).
  const std::vector<double>& predictions() const { return predictions_; }

  /// Rounded predicted label of member `i` (the owner's label when given).
  RiskLabel PredictedLabel(size_t i) const;

  /// True when member i was labeled by the owner.
  bool IsOwnerLabeled(size_t i) const { return is_labeled_[i]; }

  /// During validation queries, number of previously-predicted labels that
  /// exactly matched the owner's label / total validated.
  size_t validation_matches() const { return validation_matches_; }
  size_t validation_total() const { return validation_total_; }

  /// True when this retained learner can serve `pool` unchanged on a new
  /// tick: it finished (and not by hitting the round limit — those get a
  /// fresh rebuild and another chance to converge), the member list is
  /// identical, and every carried-over label covering a member is one the
  /// learner already holds with a bit-identical value. Any mismatch means
  /// the pool is rebuilt from scratch.
  bool CanResume(const StrangerPool& pool,
                 const KnownLabels* known_labels) const;

  /// Rebaselines per-tick counters after a carry-over: labels already
  /// collected stop counting as fresh queries, validation tallies and the
  /// round counter restart, so reports aggregate per-assessment effort
  /// exactly like a rebuilt learner's.
  void MarkCarried();

 private:
  PoolLearner(const StrangerPool& pool, SimilarityMatrix weights,
              std::vector<double> display_similarity,
              std::vector<double> display_benefit,
              const ActiveLearnerConfig& config,
              const GraphClassifier* classifier, const Sampler* sampler);

  [[nodiscard]] Status Repredict();

  std::vector<UserId> members_;
  SimilarityMatrix weights_;
  std::vector<double> display_similarity_;
  std::vector<double> display_benefit_;
  ActiveLearnerConfig config_;
  const GraphClassifier* classifier_;
  const Sampler* sampler_;

  LabeledSet labeled_;
  size_t seeded_count_ = 0;
  std::vector<bool> is_labeled_;
  std::vector<double> predictions_;
  bool has_predictions_ = false;

  // Incremental solve bookkeeping. `chain_sizes_` records the labeled-set
  // size at every Repredict() — the canonical solve chain. Warm mode
  // carries `solve_state_` across rounds and solves the latest step only;
  // cold mode (warm_start == false) replays every chain step from a
  // fresh state, which is bitwise-identical by construction (DESIGN.md
  // §12). `seed_f_` is the optional cross-tick starting vector; both
  // modes apply it, keeping them comparable.
  std::unique_ptr<ClassifierState> solve_state_;
  bool state_created_ = false;
  std::vector<size_t> chain_sizes_;
  std::vector<double> seed_f_;
  SolveStats last_solve_;

  size_t rounds_run_ = 0;
  size_t consecutive_stable_ = 0;
  bool last_rmse_valid_ = false;
  double last_rmse_ = 0.0;
  bool finished_ = false;
  PoolOutcome outcome_ = PoolOutcome::kRoundLimit;

  size_t validation_matches_ = 0;
  size_t validation_total_ = 0;
};

/// Per-stranger outcome of a full assessment.
struct StrangerAssessment {
  UserId stranger = kInvalidUser;
  double network_similarity = 0.0;
  double benefit = 0.0;
  size_t pool_index = 0;
  double predicted_score = 0.0;
  RiskLabel predicted_label = RiskLabel::kNotRisky;
  bool owner_labeled = false;
};

/// Aggregate result of running the learner over every pool of an owner.
struct AssessmentResult {
  std::vector<StrangerAssessment> strangers;
  std::vector<RoundRecord> rounds;
  size_t total_queries = 0;
  size_t pools_total = 0;
  size_t pools_converged = 0;
  size_t pools_exhausted = 0;
  size_t pools_round_limit = 0;
  /// Pools served by a carried-over learner (no matrix rebuild, no
  /// re-convergence rounds) — only non-zero when a LearnerCarry was
  /// supplied.
  size_t pools_carried = 0;
  /// Mean rounds per pool until it finished.
  double mean_rounds = 0.0;
  /// Exact-match validation across pools (the paper's 83.36% metric).
  size_t validation_matches = 0;
  size_t validation_total = 0;

  double ValidationAccuracy() const {
    return validation_total == 0
               ? 0.0
               : static_cast<double>(validation_matches) /
                     static_cast<double>(validation_total);
  }
};

/// Orchestrates PoolLearners over a PoolSet.
class ActiveLearner {
 public:
  /// `display_benefits` is parallel to `pools.strangers`.
  /// `classifier` and `sampler` must outlive the learner. Strangers found
  /// in `known_labels` (optional) start out labeled in their pools;
  /// strangers found in `prior_scores` (optional) seed each pool's first
  /// solve with the previous tick's predicted scores. `carry` (optional)
  /// supplies retained learners from the previous tick: pools that
  /// CanResume one skip the matrix build entirely; retained learners are
  /// consumed whether or not they match (call HarvestInto after Run to
  /// refill the carry for the next tick). `encode` (optional) is the
  /// owner-level encoded stranger table (refreshed against `profiles`
  /// this tick); pools gather their member rows from it instead of
  /// re-encoding per pool — bitwise-identical because profile similarity
  /// only sees code equality and per-value frequencies, both invariant
  /// under the codec swap.
  [[nodiscard]]
  static Result<ActiveLearner> Create(
      const PoolSet& pools, const ProfileTable& profiles,
      std::vector<double> display_benefits, ActiveLearnerConfig config,
      const GraphClassifier* classifier, const Sampler* sampler,
      const PoolLearner::KnownLabels* known_labels = nullptr,
      const PoolLearner::KnownLabels* prior_scores = nullptr,
      LearnerCarry* carry = nullptr,
      const StrangerEncodeCache* encode = nullptr);

  /// Runs every pool to completion.
  [[nodiscard]] Result<AssessmentResult> Run(LabelOracle* oracle, Rng* rng);

  /// Moves every finished learner into `carry` for the next tick
  /// (replacing whatever it held). The ActiveLearner is spent afterwards;
  /// call only after Run.
  void HarvestInto(LearnerCarry* carry);

 private:
  ActiveLearner() = default;

  size_t pools_carried_ = 0;
  std::vector<PoolLearner> learners_;
  std::vector<size_t> pool_of_learner_;
  // Parallel to the PoolSet's stranger list.
  std::vector<UserId> strangers_;
  std::vector<double> network_similarities_;
  std::vector<double> benefits_;
};

}  // namespace sight

#endif  // SIGHT_CORE_ACTIVE_LEARNER_H_
