// Liu-Terzi-style privacy score (the related-work contrast of Section V).
//
// Liu & Terzi (ICDM 2009) score a user's *own* exposure: the privacy risk
// of user j is sum_i beta_i * V(i, j), where beta_i is the sensitivity of
// item i and V(i, j) its visibility. This is the "one number for how much
// you reveal" view the paper contrasts with its stranger-focused,
// owner-subjective risk labels. We implement the naive (non-IRT) variant:
// an item's sensitivity is the fraction of the population that hides it —
// the fewer people share an item, the more sensitive revealing it is.
//
// Included as a substrate for audits and comparisons (see the
// privacy_audit example), not as part of the stranger-risk pipeline.

#ifndef SIGHT_CORE_PRIVACY_SCORE_H_
#define SIGHT_CORE_PRIVACY_SCORE_H_

#include <array>
#include <vector>

#include "graph/types.h"
#include "graph/visibility.h"
#include "util/status.h"

namespace sight {

struct PrivacyScoreModel {
  /// Sensitivity beta_i in [0, 1] per item (1 = nobody reveals it).
  std::array<double, kNumProfileItems> sensitivity{};
  /// Population the sensitivities were estimated from.
  size_t population = 0;

  /// Privacy score of one user under this model: sum over visible items
  /// of their sensitivity. Higher = more exposed.
  double Score(const VisibilityTable& visibility, UserId user) const;

  /// Maximum attainable score (all items visible).
  double MaxScore() const;
};

/// Estimates item sensitivities from a population (the naive Liu-Terzi
/// model). Errors on an empty population.
[[nodiscard]]
Result<PrivacyScoreModel> FitPrivacyScoreModel(
    const VisibilityTable& visibility, const std::vector<UserId>& population);

/// Scores every user in `users` under `model`, in order.
std::vector<double> ComputePrivacyScores(const PrivacyScoreModel& model,
                                         const VisibilityTable& visibility,
                                         const std::vector<UserId>& users);

}  // namespace sight

#endif  // SIGHT_CORE_PRIVACY_SCORE_H_
