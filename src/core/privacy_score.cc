#include "core/privacy_score.h"

namespace sight {

double PrivacyScoreModel::Score(const VisibilityTable& visibility,
                                UserId user) const {
  double score = 0.0;
  for (size_t i = 0; i < kNumProfileItems; ++i) {
    if (visibility.IsVisible(user, kAllProfileItems[i])) {
      score += sensitivity[i];
    }
  }
  return score;
}

double PrivacyScoreModel::MaxScore() const {
  double total = 0.0;
  for (double s : sensitivity) total += s;
  return total;
}

Result<PrivacyScoreModel> FitPrivacyScoreModel(
    const VisibilityTable& visibility,
    const std::vector<UserId>& population) {
  if (population.empty()) {
    return Status::InvalidArgument("population is empty");
  }
  PrivacyScoreModel model;
  model.population = population.size();
  for (size_t i = 0; i < kNumProfileItems; ++i) {
    size_t revealing = 0;
    for (UserId u : population) {
      if (visibility.IsVisible(u, kAllProfileItems[i])) ++revealing;
    }
    model.sensitivity[i] =
        1.0 - static_cast<double>(revealing) /
                  static_cast<double>(population.size());
  }
  return model;
}

std::vector<double> ComputePrivacyScores(const PrivacyScoreModel& model,
                                         const VisibilityTable& visibility,
                                         const std::vector<UserId>& users) {
  std::vector<double> scores;
  scores.reserve(users.size());
  for (UserId u : users) scores.push_back(model.Score(visibility, u));
  return scores;
}

}  // namespace sight
