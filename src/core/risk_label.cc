#include "core/risk_label.h"

#include "util/string_util.h"

namespace sight {

Result<RiskLabel> RiskLabelFromInt(int value) {
  if (value < kRiskLabelMin || value > kRiskLabelMax) {
    return Status::OutOfRange(
        StrFormat("risk label %d outside [%d, %d]", value, kRiskLabelMin,
                  kRiskLabelMax));
  }
  return static_cast<RiskLabel>(value);
}

const char* RiskLabelName(RiskLabel label) {
  switch (label) {
    case RiskLabel::kNotRisky:
      return "not risky";
    case RiskLabel::kRisky:
      return "risky";
    case RiskLabel::kVeryRisky:
      return "very risky";
  }
  return "unknown";
}

}  // namespace sight
