#include "core/label_policy.h"

namespace sight {

LabelAccessPolicy LabelAccessPolicy::Default() {
  LabelAccessPolicy policy;
  for (ProfileItem item : kAllProfileItems) {
    policy.Allow(RiskLabel::kNotRisky, item);
  }
  policy.Allow(RiskLabel::kRisky, ProfileItem::kPhoto);
  policy.Allow(RiskLabel::kRisky, ProfileItem::kHometown);
  policy.Allow(RiskLabel::kRisky, ProfileItem::kLocation);
  // Very risky: nothing.
  return policy;
}

void LabelAccessPolicy::Allow(RiskLabel label, ProfileItem item,
                              bool allowed) {
  uint8_t bit = static_cast<uint8_t>(1u << static_cast<uint8_t>(item));
  if (allowed) {
    masks_[IndexOf(label)] |= bit;
  } else {
    masks_[IndexOf(label)] &= static_cast<uint8_t>(~bit);
  }
}

bool LabelAccessPolicy::IsAllowed(RiskLabel label, ProfileItem item) const {
  return (masks_[IndexOf(label)] >> static_cast<uint8_t>(item)) & 1u;
}

uint8_t LabelAccessPolicy::AllowedMask(RiskLabel label) const {
  return masks_[IndexOf(label)];
}

bool LabelAccessPolicy::IsMonotone() const {
  // mask(not risky) ⊇ mask(risky) ⊇ mask(very risky).
  uint8_t not_risky = masks_[0];
  uint8_t risky = masks_[1];
  uint8_t very_risky = masks_[2];
  return (not_risky & risky) == risky && (risky & very_risky) == very_risky;
}

std::vector<StrangerAccess> ApplyAccessPolicy(
    const AssessmentResult& assessment, const LabelAccessPolicy& policy) {
  std::vector<StrangerAccess> result;
  result.reserve(assessment.strangers.size());
  for (const StrangerAssessment& sa : assessment.strangers) {
    StrangerAccess access;
    access.stranger = sa.stranger;
    access.label = sa.predicted_label;
    access.allowed_mask = policy.AllowedMask(sa.predicted_label);
    result.push_back(access);
  }
  return result;
}

Result<std::vector<PrivacySuggestion>> SuggestPrivacySettings(
    const AssessmentResult& assessment, const VisibilityTable& visibility,
    UserId owner, double risky_fraction_threshold) {
  if (assessment.strangers.empty()) {
    return Status::InvalidArgument("assessment covers no strangers");
  }
  if (risky_fraction_threshold < 0.0 || risky_fraction_threshold > 1.0) {
    return Status::InvalidArgument(
        "risky_fraction_threshold must be in [0, 1]");
  }
  size_t risky = 0;
  for (const StrangerAssessment& sa : assessment.strangers) {
    if (sa.predicted_label != RiskLabel::kNotRisky) ++risky;
  }
  double risky_fraction = static_cast<double>(risky) /
                          static_cast<double>(assessment.strangers.size());

  std::vector<PrivacySuggestion> suggestions;
  suggestions.reserve(kNumProfileItems);
  for (ProfileItem item : kAllProfileItems) {
    PrivacySuggestion suggestion;
    suggestion.item = item;
    suggestion.currently_visible = visibility.IsVisible(owner, item);
    suggestion.risky_fraction = risky_fraction;
    suggestion.recommend_hide = suggestion.currently_visible &&
                                risky_fraction >= risky_fraction_threshold;
    suggestions.push_back(suggestion);
  }
  return suggestions;
}

}  // namespace sight
