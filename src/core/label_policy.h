// Label-based access control and privacy-setting suggestions — the
// paper's Section VI application directions ("a variety of applications
// for our risk labels ... such as privacy settings/friendships suggestion
// or label-based access control").
//
// LabelAccessPolicy maps a stranger's risk label to the set of profile
// items that stranger may access; SuggestPrivacySettings turns an
// assessment into concrete hide/keep advice for the owner's own items.

#ifndef SIGHT_CORE_LABEL_POLICY_H_
#define SIGHT_CORE_LABEL_POLICY_H_

#include <array>
#include <cstdint>
#include <vector>

#include "core/active_learner.h"
#include "core/risk_label.h"
#include "graph/types.h"
#include "graph/visibility.h"
#include "util/status.h"

namespace sight {

/// Per-risk-label item access rules.
class LabelAccessPolicy {
 public:
  /// Everything hidden for every label.
  LabelAccessPolicy() = default;

  /// A sensible default: not-risky strangers see everything; risky
  /// strangers see only the low-sensitivity items (photo, hometown,
  /// location); very risky strangers see nothing.
  static LabelAccessPolicy Default();

  void Allow(RiskLabel label, ProfileItem item, bool allowed = true);

  bool IsAllowed(RiskLabel label, ProfileItem item) const;

  /// 7-bit mask of items visible to strangers with `label`.
  uint8_t AllowedMask(RiskLabel label) const;

  /// A policy is monotone when lower-risk labels see a superset of what
  /// higher-risk labels see. Default() is monotone; custom policies can
  /// be checked before deployment.
  bool IsMonotone() const;

 private:
  size_t IndexOf(RiskLabel label) const {
    return static_cast<size_t>(static_cast<int>(label) - kRiskLabelMin);
  }

  std::array<uint8_t, 3> masks_{};  // indexed by label - 1
};

/// Applies a policy to an assessment: for every assessed stranger, the
/// items that stranger may access under `policy`.
struct StrangerAccess {
  UserId stranger = kInvalidUser;
  RiskLabel label = RiskLabel::kVeryRisky;
  uint8_t allowed_mask = 0;
};

std::vector<StrangerAccess> ApplyAccessPolicy(
    const AssessmentResult& assessment, const LabelAccessPolicy& policy);

/// Privacy-setting advice for one of the owner's items.
struct PrivacySuggestion {
  ProfileItem item = ProfileItem::kWall;
  /// Is the owner currently exposing this item (to strangers)?
  bool currently_visible = false;
  /// Fraction of assessed strangers judged risky or very risky.
  double risky_fraction = 0.0;
  /// Hide this currently-visible item: too much of the audience is risky.
  bool recommend_hide = false;
};

/// Suggests hiding the owner's visible items when at least
/// `risky_fraction_threshold` of the assessed strangers are risky or very
/// risky (all items share the audience, so the fraction is per-owner, and
/// the recommendation applies to each visible item). Errors when the
/// assessment is empty.
[[nodiscard]]
Result<std::vector<PrivacySuggestion>> SuggestPrivacySettings(
    const AssessmentResult& assessment, const VisibilityTable& visibility,
    UserId owner, double risky_fraction_threshold = 0.25);

}  // namespace sight

#endif  // SIGHT_CORE_LABEL_POLICY_H_
