#include "core/friend_suggestion.h"

#include <algorithm>

namespace sight {

Result<std::vector<FriendSuggestion>> SuggestFriends(
    const AssessmentResult& assessment,
    const FriendSuggestionConfig& config) {
  if (config.ns_weight < 0.0 || config.ns_weight > 1.0) {
    return Status::InvalidArgument("ns_weight must be in [0, 1]");
  }
  std::vector<FriendSuggestion> suggestions;
  for (const StrangerAssessment& sa : assessment.strangers) {
    if (static_cast<int>(sa.predicted_label) >
        static_cast<int>(config.max_label)) {
      continue;
    }
    FriendSuggestion suggestion;
    suggestion.stranger = sa.stranger;
    suggestion.network_similarity = sa.network_similarity;
    suggestion.benefit = sa.benefit;
    suggestion.affinity = config.ns_weight * sa.network_similarity +
                          (1.0 - config.ns_weight) * sa.benefit;
    suggestions.push_back(suggestion);
  }
  std::sort(suggestions.begin(), suggestions.end(),
            [](const FriendSuggestion& a, const FriendSuggestion& b) {
              if (a.affinity != b.affinity) return a.affinity > b.affinity;
              return a.stranger < b.stranger;
            });
  if (suggestions.size() > config.max_suggestions) {
    suggestions.resize(config.max_suggestions);
  }
  return suggestions;
}

}  // namespace sight
