#include "service/risk_service.h"

#include <utility>

#include "graph/algorithms.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace sight {
namespace {

// Forwards queries to the caller's oracle and records every answer into
// the owner's label store, so the same stranger is never asked twice
// across ticks.
class RecordingOracle : public LabelOracle {
 public:
  RecordingOracle(LabelOracle* inner, PoolLearner::KnownLabels* store)
      : inner_(inner), store_(store) {}

  RiskLabel QueryLabel(UserId stranger, double similarity,
                       double benefit) override {
    RiskLabel label = inner_->QueryLabel(stranger, similarity, benefit);
    (*store_)[stranger] = RiskLabelValue(label);
    return label;
  }

 private:
  LabelOracle* inner_;
  PoolLearner::KnownLabels* store_;
};

}  // namespace

Status RiskServiceConfig::Validate() const {
  if (num_shards == 0) {
    return Status::InvalidArgument("num_shards must be positive");
  }
  if (queue_capacity == 0) {
    return Status::InvalidArgument("queue_capacity must be positive");
  }
  if (thread_pool != nullptr && thread_pool == engine.thread_pool) {
    return Status::InvalidArgument(
        "service thread_pool must be distinct from engine.thread_pool: "
        "drain tasks run on the service pool, and the engine's parallel "
        "phases cannot wait on the pool they execute inside of");
  }
  return Status::OK();
}

RiskService::RiskService(RiskServiceConfig config, RiskEngine engine)
    : config_(std::move(config)), engine_(std::move(engine)) {
  shards_.reserve(config_.num_shards);
  for (size_t i = 0; i < config_.num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

Result<std::unique_ptr<RiskService>> RiskService::Create(
    RiskServiceConfig config) {
  SIGHT_RETURN_IF_ERROR(config.Validate());
  SIGHT_ASSIGN_OR_RETURN(RiskEngine engine, RiskEngine::Create(config.engine));
  return std::unique_ptr<RiskService>(
      new RiskService(std::move(config), std::move(engine)));
}

RiskService::~RiskService() { Shutdown(); }

Status RiskService::RegisterOwner(const OwnerRegistration& registration) {
  if (!accepting_.load()) {
    return Status::FailedPrecondition("service is shut down");
  }
  if (registration.graph == nullptr || registration.profiles == nullptr ||
      registration.visibility == nullptr) {
    return Status::InvalidArgument(
        "graph, profiles and visibility are required");
  }
  if (!registration.graph->HasUser(registration.owner)) {
    return Status::InvalidArgument(
        StrFormat("unknown owner %u", registration.owner));
  }
  auto state = std::make_unique<OwnerState>();
  state->owner = registration.owner;
  state->graph = registration.graph;
  state->profiles = registration.profiles;
  state->visibility = registration.visibility;
  state->oracle = registration.oracle;
  state->rng = Rng(registration.rng_seed);

  std::lock_guard<std::mutex> lock(owners_mutex_);
  auto [it, inserted] =
      owners_.try_emplace(registration.owner, std::move(state));
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists(
        StrFormat("owner %u is already registered", registration.owner));
  }
  return Status::OK();
}

RiskService::OwnerState* RiskService::FindOwner(UserId owner) const {
  std::lock_guard<std::mutex> lock(owners_mutex_);
  auto it = owners_.find(owner);
  return it == owners_.end() ? nullptr : it->second.get();
}

ThreadPool* RiskService::worker_pool() {
  if (config_.thread_pool != nullptr) return config_.thread_pool;
  std::lock_guard<std::mutex> lock(pool_mutex_);
  if (owned_pool_ == nullptr) {
    owned_pool_ = std::make_unique<ThreadPool>(config_.num_threads);
  }
  return owned_pool_.get();
}

Status RiskService::Submit(OwnerEvent event) {
  if (!accepting_.load()) {
    return Status::FailedPrecondition("service is shut down");
  }
  OwnerState* state = FindOwner(event.owner);
  if (state == nullptr) {
    return Status::NotFound(
        StrFormat("owner %u is not registered", event.owner));
  }
  if (event.assess && state->oracle == nullptr) {
    return Status::FailedPrecondition(
        StrFormat("owner %u has no registered oracle; background "
                  "assessment needs one (or use AssessSync)",
                  event.owner));
  }
  size_t shard_index = static_cast<size_t>(event.owner) % shards_.size();
  Shard& shard = *shards_[shard_index];
  std::unique_lock<std::mutex> lock(shard.mutex);
  if (shard.queue.size() >= config_.queue_capacity) {
    if (config_.queue_full_policy == QueueFullPolicy::kReject) {
      std::lock_guard<std::mutex> stats_lock(stats_mutex_);
      ++stats_.events_rejected;
      return Status::ResourceExhausted(
          StrFormat("shard %zu queue is full (%zu events)", shard_index,
                    config_.queue_capacity));
    }
    shard.space_available.wait(lock, [&] {
      return shard.queue.size() < config_.queue_capacity ||
             !accepting_.load();
    });
    if (!accepting_.load()) {
      return Status::FailedPrecondition("service is shut down");
    }
  }
  shard.queue.push_back(std::move(event));
  {
    std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    ++stats_.events_submitted;
  }
  // ThreadPool::Submit only enqueues the drain task — it pushes onto the
  // pool's queue and returns, never waiting for completion — so holding
  // shard.mutex across the schedule cannot deadlock.
  // SIGHT_ANALYZER_OK(lock-discipline): Submit enqueues without blocking.
  ScheduleDrainLocked(shard_index);
  return Status::OK();
}

void RiskService::ScheduleDrainLocked(size_t shard_index) {
  Shard& shard = *shards_[shard_index];
  if (shard.drain_scheduled || shard.queue.empty()) return;
  shard.drain_scheduled = true;
  worker_pool()->Submit([this, shard_index] { DrainShard(shard_index); });
}

void RiskService::DrainShard(size_t shard_index) {
  Shard& shard = *shards_[shard_index];
  for (;;) {
    std::deque<OwnerEvent> batch;
    {
      std::lock_guard<std::mutex> lock(shard.mutex);
      if (shard.queue.empty()) {
        shard.drain_scheduled = false;
        shard.idle.notify_all();
        return;
      }
      batch.swap(shard.queue);
    }
    shard.space_available.notify_all();

    // Group per owner, preserving submission order within an owner and
    // first-appearance order across owners.
    std::vector<UserId> order;
    std::unordered_map<UserId, std::vector<OwnerEvent>> by_owner;
    for (OwnerEvent& event : batch) {
      auto [it, inserted] = by_owner.try_emplace(event.owner);
      if (inserted) order.push_back(event.owner);
      it->second.push_back(std::move(event));
    }
    for (UserId owner : order) {
      OwnerState* state = FindOwner(owner);
      if (state == nullptr) continue;  // validated at Submit
      ApplyOwnerBatch(state, std::move(by_owner[owner]));
    }
  }
}

void RiskService::ApplyOwnerBatch(OwnerState* state,
                                  std::vector<OwnerEvent> events) {
  std::lock_guard<std::mutex> lock(state->mutex);
  Status mutation_status;
  size_t assess_requests = 0;
  for (OwnerEvent& event : events) {
    if (!event.discovered.empty()) {
      mutation_status.Update(AddStrangersLocked(state, event.discovered));
    }
    if (!event.imported_labels.empty()) {
      mutation_status.Update(ImportLabelsLocked(state, event.imported_labels));
    }
    if (event.assess) ++assess_requests;
  }
  if (assess_requests == 0) {
    if (!mutation_status.ok()) {
      // Surface the mutation error to pollers instead of dropping it.
      AssessmentSnapshot snapshot;
      snapshot.status = std::move(mutation_status);
      PublishLocked(state, std::move(snapshot));
    }
    return;
  }
  AssessmentSnapshot snapshot;
  snapshot.events_coalesced = assess_requests - 1;
  if (mutation_status.ok()) {
    // The assessment fans out on the engine's pool, which
    // RiskServiceConfig::Validate guarantees is distinct from the
    // service's drain pool, so the drain task holding state->mutex never
    // waits on the pool it runs inside.
    // SIGHT_ANALYZER_OK(lock-discipline): engine pool is distinct by
    Result<RiskReport> report =
        AssessLocked(state, state->oracle, &state->rng);
    if (report.ok()) {
      snapshot.report = std::move(report).value();
    } else {
      snapshot.status = report.status();
    }
  } else {
    snapshot.status = std::move(mutation_status);
  }
  if (assess_requests > 1) {
    std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    stats_.events_coalesced += assess_requests - 1;
  }
  PublishLocked(state, std::move(snapshot));
}

Status RiskService::AddStrangersLocked(OwnerState* state,
                                       const std::vector<UserId>& discovered) {
  for (UserId s : discovered) {
    if (!state->graph->HasUser(s)) {
      return Status::InvalidArgument(
          StrFormat("stranger %u is not a known user", s));
    }
    if (s == state->owner) {
      return Status::InvalidArgument("the owner is not a stranger");
    }
  }
  for (UserId s : discovered) {
    if (state->discovered.insert(s).second) state->strangers.push_back(s);
  }
  return Status::OK();
}

Status RiskService::ImportLabelsLocked(OwnerState* state,
                                       const PoolLearner::KnownLabels& labels) {
  // Validate everything before mutating any state.
  std::vector<UserId> to_discover;
  for (const auto& [stranger, value] : labels) {
    if (value < kRiskLabelMin || value > kRiskLabelMax) {
      return Status::OutOfRange(
          StrFormat("label %f for stranger %u outside [%d, %d]", value,
                    stranger, kRiskLabelMin, kRiskLabelMax));
    }
    if (!state->graph->HasUser(stranger) || stranger == state->owner) {
      return Status::InvalidArgument(
          StrFormat("labeled stranger %u is not a valid user", stranger));
    }
    if (state->discovered.count(stranger) == 0) to_discover.push_back(stranger);
  }
  SIGHT_RETURN_IF_ERROR(AddStrangersLocked(state, to_discover));
  for (const auto& [stranger, value] : labels) {
    state->known_labels[stranger] = value;
  }
  return Status::OK();
}

Result<RiskReport> RiskService::AssessLocked(OwnerState* state,
                                             LabelOracle* oracle, Rng* rng) {
  RecordingOracle recording(oracle, &state->known_labels);
  const PoolLearner::KnownLabels* prior =
      state->last_scores.empty() ? nullptr : &state->last_scores;
  bool any_carry = config_.carry_learners || config_.carry_pool_partition ||
                   config_.carry_encoded_tables;
  state->carry.use_learners = config_.carry_learners;
  state->carry.use_partition = config_.carry_pool_partition;
  state->carry.use_encode = config_.carry_encoded_tables;
  Result<RiskReport> report =
      any_carry
          ? engine_.AssessIncremental(
                *state->graph, *state->profiles, *state->visibility,
                state->owner, state->strangers, &recording, rng,
                &state->known_labels, prior, &state->carry)
          : engine_.AssessStrangers(*state->graph, *state->profiles,
                                    *state->visibility, state->owner,
                                    state->strangers, &recording, rng,
                                    &state->known_labels, prior);
  if (!report.ok()) return report;
  // Remember this tick's converged scores so the next tick seeds its
  // solves from them instead of the label mean.
  state->last_scores.clear();
  for (const StrangerAssessment& sa : report.value().assessment.strangers) {
    state->last_scores[sa.stranger] = sa.predicted_score;
  }
  {
    std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    ++stats_.assessments_run;
    stats_.pools_carried += report.value().assessment.pools_carried;
    const CarryTelemetry& telemetry = report.value().carry;
    if (config_.carry_pool_partition) {
      if (telemetry.partition_reused) {
        ++stats_.partition_hits;
      } else {
        ++stats_.partition_misses;
      }
    }
    if (config_.carry_encoded_tables) {
      if (telemetry.encode_reused) {
        ++stats_.encode_hits;
      } else {
        ++stats_.encode_misses;
      }
      stats_.encode_rows_appended += telemetry.encode_rows_appended;
    }
  }
  return report;
}

void RiskService::PublishLocked(OwnerState* state,
                                AssessmentSnapshot snapshot) {
  snapshot.version = state->next_version++;
  state->snapshot =
      std::make_shared<const AssessmentSnapshot>(std::move(snapshot));
  state->snapshot_published.notify_all();
}

std::shared_ptr<const AssessmentSnapshot> RiskService::Poll(
    UserId owner) const {
  OwnerState* state = FindOwner(owner);
  if (state == nullptr) return nullptr;
  std::lock_guard<std::mutex> lock(state->mutex);
  return state->snapshot;
}

Result<std::shared_ptr<const AssessmentSnapshot>> RiskService::WaitFor(
    UserId owner, uint64_t min_version) const {
  OwnerState* state = FindOwner(owner);
  if (state == nullptr) {
    return Status::NotFound(StrFormat("owner %u is not registered", owner));
  }
  std::unique_lock<std::mutex> lock(state->mutex);
  state->snapshot_published.wait(lock, [&] {
    return (state->snapshot != nullptr &&
            state->snapshot->version >= min_version) ||
           shut_down_.load();
  });
  if (state->snapshot != nullptr && state->snapshot->version >= min_version) {
    return state->snapshot;
  }
  return Status::FailedPrecondition(
      "service shut down before the requested version was published");
}

Status RiskService::Flush() {
  for (const std::unique_ptr<Shard>& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::unique_lock<std::mutex> lock(shard.mutex);
    shard.idle.wait(
        lock, [&] { return shard.queue.empty() && !shard.drain_scheduled; });
  }
  return Status::OK();
}

void RiskService::Shutdown() {
  if (shut_down_.exchange(true)) return;
  accepting_.store(false);
  // Wake submitters blocked on a full queue; they observe the shutdown.
  for (const std::unique_ptr<Shard>& shard : shards_) {
    shard->space_available.notify_all();
  }
  Flush().IgnoreError();
  // Snapshot the pool pointer under the lock but Wait() outside it: a
  // drain task that finishes while we block must not find pool_mutex_
  // held (worker_pool() takes it), and owned_pool_ is never reset after
  // creation so the raw pointer stays valid.
  ThreadPool* pool = nullptr;
  {
    std::lock_guard<std::mutex> lock(pool_mutex_);
    pool = owned_pool_.get();
  }
  if (pool != nullptr) pool->Wait();
  // Wake WaitFor callers that will never see their version now.
  std::lock_guard<std::mutex> lock(owners_mutex_);
  for (auto& [owner, state] : owners_) {
    (void)owner;
    std::lock_guard<std::mutex> owner_lock(state->mutex);
    state->snapshot_published.notify_all();
  }
}

Result<RiskReport> RiskService::AssessNow(UserId owner, LabelOracle* oracle,
                                          Rng* rng) const {
  if (oracle == nullptr || rng == nullptr) {
    return Status::InvalidArgument("oracle and rng are required");
  }
  OwnerState* state = FindOwner(owner);
  if (state == nullptr) {
    return Status::NotFound(StrFormat("owner %u is not registered", owner));
  }
  std::lock_guard<std::mutex> lock(state->mutex);
  // Cold read-through: identical inputs to a batch
  // RiskEngine::AssessStrangers call, no carry, no warm seed, and no
  // recording — the owner's state is untouched. The engine fans out on
  // its own pool, which RiskServiceConfig::Validate guarantees is
  // distinct from the service's drain pool.
  // SIGHT_ANALYZER_OK(lock-discipline): engine pool distinct by Validate.
  return engine_.AssessStrangers(
      *state->graph, *state->profiles, *state->visibility, owner,
      state->strangers, oracle, rng,
      state->known_labels.empty() ? nullptr : &state->known_labels,
      /*prior_scores=*/nullptr);
}

Result<RiskReport> RiskService::AssessSync(UserId owner, LabelOracle* oracle,
                                           Rng* rng) {
  if (oracle == nullptr || rng == nullptr) {
    return Status::InvalidArgument("oracle and rng are required");
  }
  OwnerState* state = FindOwner(owner);
  if (state == nullptr) {
    return Status::NotFound(StrFormat("owner %u is not registered", owner));
  }
  std::lock_guard<std::mutex> lock(state->mutex);
  // SIGHT_ANALYZER_OK(lock-discipline): engine pool distinct by Validate.
  SIGHT_ASSIGN_OR_RETURN(RiskReport report, AssessLocked(state, oracle, rng));
  AssessmentSnapshot snapshot;
  snapshot.report = report;
  PublishLocked(state, std::move(snapshot));
  return report;
}

Status RiskService::AddStrangers(UserId owner,
                                 const std::vector<UserId>& discovered) {
  OwnerState* state = FindOwner(owner);
  if (state == nullptr) {
    return Status::NotFound(StrFormat("owner %u is not registered", owner));
  }
  std::lock_guard<std::mutex> lock(state->mutex);
  return AddStrangersLocked(state, discovered);
}

Status RiskService::DiscoverAllStrangers(UserId owner) {
  OwnerState* state = FindOwner(owner);
  if (state == nullptr) {
    return Status::NotFound(StrFormat("owner %u is not registered", owner));
  }
  SIGHT_ASSIGN_OR_RETURN(std::vector<UserId> all,
                         TwoHopStrangers(*state->graph, owner));
  std::lock_guard<std::mutex> lock(state->mutex);
  return AddStrangersLocked(state, all);
}

Status RiskService::ImportLabels(UserId owner,
                                 const PoolLearner::KnownLabels& labels) {
  OwnerState* state = FindOwner(owner);
  if (state == nullptr) {
    return Status::NotFound(StrFormat("owner %u is not registered", owner));
  }
  std::lock_guard<std::mutex> lock(state->mutex);
  return ImportLabelsLocked(state, labels);
}

Result<size_t> RiskService::NumStrangers(UserId owner) const {
  OwnerState* state = FindOwner(owner);
  if (state == nullptr) {
    return Status::NotFound(StrFormat("owner %u is not registered", owner));
  }
  std::lock_guard<std::mutex> lock(state->mutex);
  return state->strangers.size();
}

Result<size_t> RiskService::NumKnownLabels(UserId owner) const {
  OwnerState* state = FindOwner(owner);
  if (state == nullptr) {
    return Status::NotFound(StrFormat("owner %u is not registered", owner));
  }
  std::lock_guard<std::mutex> lock(state->mutex);
  return state->known_labels.size();
}

Result<const PoolLearner::KnownLabels*> RiskService::KnownLabelsView(
    UserId owner) const {
  OwnerState* state = FindOwner(owner);
  if (state == nullptr) {
    return Status::NotFound(StrFormat("owner %u is not registered", owner));
  }
  const PoolLearner::KnownLabels* view = &state->known_labels;
  return view;
}

RiskService::Stats RiskService::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

}  // namespace sight
