// RiskService: the resident, owner-sharded front door of the Sight
// library.
//
// RiskEngine and RiskSession are batch objects: every assessment
// rebuilds pool codecs, frequency tables, and learners from scratch for
// one owner. A crawler serving many owners wants the opposite shape —
// one long-lived server object that carries per-owner state
// (ProfileCodecs, EncodedProfileTables, PoolLearners, and their
// HarmonicSolveStates) across ticks, accepts events from any thread,
// and assesses in the background:
//
//   RiskServiceConfig config;                     // engine defaults
//   auto service = RiskService::Create(std::move(config)).value();
//   service->RegisterOwner({owner, &graph, &profiles, &visibility,
//                           &oracle, /*rng_seed=*/42});
//   // Crawler thread(s): fire-and-forget.
//   OwnerEvent event;
//   event.owner = owner;
//   event.discovered = new_batch;
//   SIGHT_CHECK(service->Submit(std::move(event)).ok());
//   // Reader thread(s): versioned snapshots, swapped atomically.
//   auto snap = service->Poll(owner);              // latest or nullptr
//   auto next = service->WaitFor(owner, /*min_version=*/1).value();
//
// Owners are sharded (owner id modulo num_shards); each shard has a
// bounded MPSC event queue drained by a self-rescheduling task on the
// service's ThreadPool, so independent shards assess concurrently while
// events for one owner are applied in submission order. Consecutive
// queued assess requests for the same owner are coalesced into one run.
// A full queue either rejects (Status::ResourceExhausted) or blocks the
// submitter, per QueueFullPolicy.
//
// The synchronous paths remain: `AssessNow` is a pure read-through that
// is bitwise-identical to a cold batch `RiskEngine::AssessStrangers`
// call over the owner's current state, and `AssessSync` is the warm
// in-place tick (records labels, seeds next solves, reuses carried
// learners) that `RiskSession` adapts onto. See DESIGN.md §13 for the
// architecture and the old->new API map.

#ifndef SIGHT_SERVICE_RISK_SERVICE_H_
#define SIGHT_SERVICE_RISK_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/active_learner.h"
#include "core/risk_engine.h"
#include "graph/profile.h"
#include "graph/social_graph.h"
#include "graph/types.h"
#include "graph/visibility.h"
#include "util/random.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace sight {

/// What Submit does when an owner's shard queue is at capacity.
enum class QueueFullPolicy {
  /// Fail fast with Status::ResourceExhausted; the event is dropped.
  kReject,
  /// Block the submitting thread until the drain frees a slot.
  kBlock,
};

struct RiskServiceConfig {
  /// Pipeline configuration shared by every owner (one RiskEngine is
  /// instantiated and reused for all assessments).
  RiskEngineConfig engine;
  /// Owner shards. Events for owners in different shards drain
  /// concurrently; within a shard, in submission order.
  size_t num_shards = 8;
  /// Bounded per-shard event queue capacity.
  size_t queue_capacity = 256;
  QueueFullPolicy queue_full_policy = QueueFullPolicy::kReject;
  /// Background workers draining shard queues. 0 = hardware
  /// concurrency. The pool is created lazily on the first Submit, so
  /// purely synchronous users (RiskSession) never spawn a thread.
  /// Ignored when `thread_pool` is set.
  size_t num_threads = 1;
  /// Optional caller-owned worker pool (non-owning; must outlive the
  /// service). Must be distinct from `engine.thread_pool`: drain tasks
  /// run on this pool and the engine's ParallelFor phases must not wait
  /// on the pool they run inside of.
  ThreadPool* thread_pool = nullptr;
  /// Carry finished PoolLearners across ticks for pools whose member
  /// list and owner labels are unchanged (skips the encode/matrix/round
  /// rebuild for them). Stale carried state is rejected by fingerprint
  /// checks, never silently reused. Applies to background drains and
  /// AssessSync; AssessNow is always cold.
  bool carry_learners = true;
  /// Carry the NS/NSG/Squeezer pool partition across ticks: an
  /// unchanged stranger set reuses it outright, a grown one routes only
  /// the new suffix through the carried per-group squeezers
  /// (DESIGN.md §14). Fingerprinted on the owner's tables and their
  /// mutation epochs; any mismatch rebuilds cold. Bitwise-identical
  /// either way.
  bool carry_pool_partition = true;
  /// Carry one owner-level ProfileCodec + EncodedProfileTable across
  /// ticks: each tick encodes only newly discovered strangers and pools
  /// gather their rows from the shared table instead of re-encoding
  /// (DESIGN.md §14). Same fingerprint/fallback rules; bitwise-identical
  /// either way.
  bool carry_encoded_tables = true;

  [[nodiscard]] Status Validate() const;
};

/// One owner joining the service. The pointed-to tables must outlive
/// the service (or the owner's use of it) and may grow between events.
struct OwnerRegistration {
  UserId owner = kInvalidUser;
  const SocialGraph* graph = nullptr;
  const ProfileTable* profiles = nullptr;
  const VisibilityTable* visibility = nullptr;
  /// Answers label queries during background assessments. May be null
  /// for owners only ever assessed synchronously (AssessNow/AssessSync
  /// take the oracle per call); Submit of an assess event then fails.
  LabelOracle* oracle = nullptr;
  /// Seed of the owner's resident sampling Rng (background drains).
  uint64_t rng_seed = 0;
};

/// One unit of crawler progress for one owner.
struct OwnerEvent {
  UserId owner = kInvalidUser;
  /// Newly discovered strangers (duplicates ignored).
  std::vector<UserId> discovered;
  /// Labels collected elsewhere, merged before assessing.
  PoolLearner::KnownLabels imported_labels;
  /// Run an assessment after applying the mutations above. false =
  /// mutate only (batch several discovery events, assess on the last).
  bool assess = true;
};

/// Immutable result of one background/sync assessment, published under
/// a monotonically increasing per-owner version.
struct AssessmentSnapshot {
  /// 1-based; 0 never appears (WaitFor(owner, 0) returns immediately
  /// once any snapshot exists).
  uint64_t version = 0;
  /// Assess events folded into this run beyond the first.
  size_t events_coalesced = 0;
  /// Error of the background run, OK on success. On error `report` is
  /// default-constructed.
  Status status;
  RiskReport report;
};

class RiskService {
 public:
  [[nodiscard]] static Result<std::unique_ptr<RiskService>> Create(
      RiskServiceConfig config);

  /// Drains pending events (Shutdown) before releasing owner state.
  ~RiskService();

  RiskService(const RiskService&) = delete;
  RiskService& operator=(const RiskService&) = delete;

  /// Errors: InvalidArgument (null tables / owner not in graph),
  /// AlreadyExists (owner registered twice).
  [[nodiscard]] Status RegisterOwner(const OwnerRegistration& registration);

  /// Enqueues an event onto the owner's shard. Thread-safe. Errors:
  /// NotFound (unregistered owner), ResourceExhausted (queue full under
  /// kReject), FailedPrecondition (no registered oracle for an assess
  /// event, or the service is shut down).
  [[nodiscard]] Status Submit(OwnerEvent event);

  /// Latest published snapshot for `owner`, or nullptr when none exists
  /// yet (or the owner is unknown). Thread-safe, non-blocking; the
  /// returned snapshot is immutable and safe to read indefinitely.
  [[nodiscard]] std::shared_ptr<const AssessmentSnapshot> Poll(
      UserId owner) const;

  /// Blocks until a snapshot with version >= min_version is published
  /// and returns it. Errors: NotFound (unregistered owner).
  [[nodiscard]] Result<std::shared_ptr<const AssessmentSnapshot>> WaitFor(
      UserId owner, uint64_t min_version) const;

  /// Blocks until every event submitted before the call has drained.
  [[nodiscard]] Status Flush();

  /// Stops accepting events, drains what was already queued, and joins
  /// the owned worker pool. Idempotent; called by the destructor.
  void Shutdown();

  /// Synchronous cold assessment of the owner's current stranger set:
  /// bitwise-identical to RiskEngine::AssessStrangers over the same
  /// strangers/known labels/oracle/rng — no learner carry, no score
  /// seeding, and no state mutation (answers are NOT recorded; use
  /// AssessSync or Submit for that). Blocks new events for this owner
  /// while it runs.
  [[nodiscard]] Result<RiskReport> AssessNow(UserId owner, LabelOracle* oracle,
                                             Rng* rng) const;

  /// Synchronous warm tick: assesses with the owner's accumulated
  /// labels and prior scores, records every new oracle answer, seeds
  /// the next tick, reuses carried learners (per config), and publishes
  /// a snapshot. This is RiskSession::Assess, service-resident.
  [[nodiscard]] Result<RiskReport> AssessSync(UserId owner, LabelOracle* oracle,
                                              Rng* rng);

  /// Synchronous mutators (the Submit path applies the same operations
  /// from the background). Same validation as RiskSession.
  [[nodiscard]] Status AddStrangers(UserId owner,
                                    const std::vector<UserId>& discovered);
  [[nodiscard]] Status DiscoverAllStrangers(UserId owner);
  [[nodiscard]] Status ImportLabels(UserId owner,
                                    const PoolLearner::KnownLabels& labels);

  [[nodiscard]] Result<size_t> NumStrangers(UserId owner) const;
  [[nodiscard]] Result<size_t> NumKnownLabels(UserId owner) const;
  /// Stable pointer to the owner's label store (lives as long as the
  /// owner's registration). NOT synchronized with background drains —
  /// read it only after Flush() or in single-threaded use.
  [[nodiscard]] Result<const PoolLearner::KnownLabels*> KnownLabelsView(
      UserId owner) const;

  struct Stats {
    size_t events_submitted = 0;
    size_t events_rejected = 0;
    /// Assess requests folded into an already-running batch.
    size_t events_coalesced = 0;
    size_t assessments_run = 0;
    /// Sum of RiskReport.assessment.pools_carried across runs.
    size_t pools_carried = 0;
    /// Warm assessments whose carried pool partition was reused /
    /// rebuilt cold (only counted while carry_pool_partition is on).
    size_t partition_hits = 0;
    size_t partition_misses = 0;
    /// Warm assessments whose carried encode was appended to / rebuilt
    /// cold (only counted while carry_encoded_tables is on).
    size_t encode_hits = 0;
    size_t encode_misses = 0;
    /// Stranger rows the encode stage actually encoded across runs.
    size_t encode_rows_appended = 0;
  };
  [[nodiscard]] Stats stats() const;

  const RiskServiceConfig& config() const { return config_; }

 private:
  struct OwnerState {
    mutable std::mutex mutex;
    mutable std::condition_variable snapshot_published;
    UserId owner = kInvalidUser;
    const SocialGraph* graph = nullptr;
    const ProfileTable* profiles = nullptr;
    const VisibilityTable* visibility = nullptr;
    LabelOracle* oracle = nullptr;
    Rng rng{0};
    std::vector<UserId> strangers;  // discovery order, duplicate-free
    std::unordered_set<UserId> discovered;
    PoolLearner::KnownLabels known_labels;
    /// Previous tick's predicted scores: the warm-start solve seed.
    PoolLearner::KnownLabels last_scores;
    /// Resident cross-tick caches: finished learners, the pool
    /// partition, and the owner-level encoded stranger table
    /// (DESIGN.md §14). The use_* flags mirror the service config.
    AssessCarry carry;
    uint64_t next_version = 1;
    std::shared_ptr<const AssessmentSnapshot> snapshot;
  };

  struct Shard {
    mutable std::mutex mutex;
    std::condition_variable space_available;
    std::condition_variable idle;
    std::deque<OwnerEvent> queue;
    /// A drain task is queued or running on the worker pool.
    bool drain_scheduled = false;
  };

  explicit RiskService(RiskServiceConfig config, RiskEngine engine);

  Shard& shard_of(UserId owner) const {
    return *shards_[static_cast<size_t>(owner) % shards_.size()];
  }
  /// Owner lookup; null when unregistered.
  OwnerState* FindOwner(UserId owner) const;
  /// The worker pool, creating the owned one on first use.
  ThreadPool* worker_pool();
  /// Schedules a drain task for the shard if none is in flight.
  /// Requires shard.mutex held.
  void ScheduleDrainLocked(size_t shard_index);
  /// Drains the shard queue until empty (the worker-pool task body).
  void DrainShard(size_t shard_index);
  /// Applies `events` (all for one owner, submission order) and runs at
  /// most one assessment. Publishes a snapshot if any event assessed.
  void ApplyOwnerBatch(OwnerState* state, std::vector<OwnerEvent> events);
  /// AddStrangers/ImportLabels bodies; require state->mutex held.
  [[nodiscard]] Status AddStrangersLocked(
      OwnerState* state, const std::vector<UserId>& discovered);
  [[nodiscard]] Status ImportLabelsLocked(
      OwnerState* state, const PoolLearner::KnownLabels& labels);
  /// One warm assessment over current state; requires state->mutex
  /// held. Records labels, updates last_scores, maintains the carry.
  [[nodiscard]] Result<RiskReport> AssessLocked(OwnerState* state,
                                               LabelOracle* oracle, Rng* rng);
  /// Publishes `snapshot` for the owner; requires state->mutex held.
  void PublishLocked(OwnerState* state, AssessmentSnapshot snapshot);

  RiskServiceConfig config_;
  RiskEngine engine_;

  mutable std::mutex owners_mutex_;
  std::unordered_map<UserId, std::unique_ptr<OwnerState>> owners_;

  std::vector<std::unique_ptr<Shard>> shards_;

  std::mutex pool_mutex_;
  std::unique_ptr<ThreadPool> owned_pool_;

  std::atomic<bool> accepting_{true};
  std::atomic<bool> shut_down_{false};

  mutable std::mutex stats_mutex_;
  Stats stats_;
};

}  // namespace sight

#endif  // SIGHT_SERVICE_RISK_SERVICE_H_
