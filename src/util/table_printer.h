// ASCII table rendering for the benchmark harnesses.
//
// Every reproduction bench prints the paper's tables/figure series through
// this printer so that output is uniform and diffable.

#ifndef SIGHT_UTIL_TABLE_PRINTER_H_
#define SIGHT_UTIL_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace sight {

/// Column-aligned ASCII tables.
///
///   TablePrinter t({"item", "visibility"});
///   t.AddRow({"wall", "25%"});
///   t.Print(std::cout);
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends a row. Rows shorter than the header are padded with empty
  /// cells; longer rows extend the table width.
  void AddRow(std::vector<std::string> row);

  /// Convenience: first cell is a label, remaining cells are formatted
  /// doubles with `digits` decimals.
  void AddRow(const std::string& label, const std::vector<double>& values,
              int digits);

  size_t num_rows() const { return rows_.size(); }

  /// Renders with a header separator; numeric-looking cells right-aligned.
  void Print(std::ostream& os) const;

  /// Renders to a string (used by tests).
  std::string ToString() const;

  /// Renders header + rows as RFC 4180 CSV (for piping bench output into
  /// plotting scripts).
  std::string ToCsv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sight

#endif  // SIGHT_UTIL_TABLE_PRINTER_H_
