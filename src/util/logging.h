// Minimal check/logging macros for invariant enforcement.
//
// SIGHT_CHECK(cond) aborts with a message when `cond` is false. Checks are
// reserved for programming errors (violated invariants); recoverable
// conditions are reported through Status instead.

#ifndef SIGHT_UTIL_LOGGING_H_
#define SIGHT_UTIL_LOGGING_H_

#include <cstdio>
#include <cstdlib>

namespace sight::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* condition) {
  std::fprintf(stderr, "%s:%d: check failed: %s\n", file, line, condition);
  std::abort();
}

}  // namespace sight::internal

#define SIGHT_CHECK(cond)                                         \
  do {                                                             \
    if (!(cond)) {                                                 \
      ::sight::internal::CheckFailed(__FILE__, __LINE__, #cond);   \
    }                                                              \
  } while (false)

#ifdef NDEBUG
#define SIGHT_DCHECK(cond) \
  do {                     \
  } while (false)
#else
#define SIGHT_DCHECK(cond) SIGHT_CHECK(cond)
#endif

#endif  // SIGHT_UTIL_LOGGING_H_
