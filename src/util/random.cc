#include "util/random.h"

#include <cmath>
#include <numbers>

namespace sight {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : state_) word = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  SIGHT_CHECK(lo <= hi);
  const uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) {  // full 64-bit range
    return static_cast<int64_t>(Next());
  }
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  uint64_t r;
  do {
    r = Next();
  } while (r >= limit);
  return lo + static_cast<int64_t>(r % range);
}

double Rng::UniformDouble() {
  // 53 high bits -> uniform in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

double Rng::Normal(double mean, double stddev) {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  // Box-Muller; u1 in (0,1] to avoid log(0).
  double u1 = 1.0 - UniformDouble();
  double u2 = UniformDouble();
  double mag = std::sqrt(-2.0 * std::log(u1));
  cached_normal_ = mag * std::sin(2.0 * std::numbers::pi * u2);
  has_cached_normal_ = true;
  return mean + stddev * mag * std::cos(2.0 * std::numbers::pi * u2);
}

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    SIGHT_CHECK(w >= 0.0);
    total += w;
  }
  SIGHT_CHECK(total > 0.0);
  double target = UniformDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (target < acc) return i;
  }
  // Floating point slack: return last index with positive weight.
  for (size_t i = weights.size(); i-- > 0;) {
    if (weights[i] > 0.0) return i;
  }
  return weights.size() - 1;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  std::vector<size_t> indices(n);
  for (size_t i = 0; i < n; ++i) indices[i] = i;
  if (k >= n) {
    Shuffle(&indices);
    return indices;
  }
  // Partial Fisher-Yates: the first k slots become the sample.
  for (size_t i = 0; i < k; ++i) {
    size_t j = static_cast<size_t>(
        UniformInt(static_cast<int64_t>(i), static_cast<int64_t>(n - 1)));
    std::swap(indices[i], indices[j]);
  }
  indices.resize(k);
  return indices;
}

Rng Rng::Fork() { return Rng(Next()); }

}  // namespace sight
