#include "util/histogram.h"

#include <cmath>

#include "util/string_util.h"

namespace sight {

Result<Histogram> Histogram::Create(size_t num_bins, double lo, double hi) {
  if (num_bins == 0) {
    return Status::InvalidArgument("histogram needs at least one bin");
  }
  if (!(lo < hi)) {
    return Status::InvalidArgument(
        StrFormat("histogram range invalid: [%f, %f]", lo, hi));
  }
  return Histogram(num_bins, lo, hi);
}

Histogram::Histogram(size_t num_bins, double lo, double hi)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(num_bins)),
      counts_(num_bins, 0) {}

void Histogram::Add(double value) {
  if (value < lo_ || std::isnan(value)) {
    ++underflow_;
    return;
  }
  if (value > hi_) {
    ++overflow_;
    return;
  }
  size_t bin = value >= hi_ ? counts_.size() - 1
                            : static_cast<size_t>((value - lo_) / width_);
  if (bin >= counts_.size()) bin = counts_.size() - 1;
  ++counts_[bin];
  ++total_in_range_;
  sum_in_range_ += value;
}

void Histogram::AddAll(const std::vector<double>& values) {
  for (double v : values) Add(v);
}

Result<size_t> Histogram::BinIndex(double value) const {
  if (value < lo_ || value > hi_ || std::isnan(value)) {
    return Status::OutOfRange(
        StrFormat("value %f outside histogram range [%f, %f]", value, lo_,
                  hi_));
  }
  if (value >= hi_) return counts_.size() - 1;
  size_t bin = static_cast<size_t>((value - lo_) / width_);
  if (bin >= counts_.size()) bin = counts_.size() - 1;
  return bin;
}

double Histogram::bin_lower(size_t bin) const {
  return lo_ + width_ * static_cast<double>(bin);
}

double Histogram::bin_upper(size_t bin) const {
  return bin + 1 == counts_.size()
             ? hi_
             : lo_ + width_ * static_cast<double>(bin + 1);
}

std::vector<double> Histogram::NormalizedCounts() const {
  std::vector<double> result(counts_.size(), 0.0);
  if (total_in_range_ == 0) return result;
  for (size_t i = 0; i < counts_.size(); ++i) {
    result[i] = static_cast<double>(counts_[i]) /
                static_cast<double>(total_in_range_);
  }
  return result;
}

double Histogram::Mean() const {
  if (total_in_range_ == 0) return 0.0;
  return sum_in_range_ / static_cast<double>(total_in_range_);
}

}  // namespace sight
