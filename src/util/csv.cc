#include "util/csv.h"

#include <sstream>

namespace sight {

std::string CsvEscape(const std::string& field) {
  bool needs_quotes = field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string escaped = "\"";
  for (char c : field) {
    if (c == '"') escaped += '"';
    escaped += c;
  }
  escaped += '"';
  return escaped;
}

bool CsvReader::Next(std::vector<std::string>* fields) {
  if (!status_.ok()) return false;
  fields->clear();

  int c = input_->get();
  // Skip a trailing newline sequence left by the previous record.
  if (c == std::istream::traits_type::eof()) return false;

  std::string field;
  bool in_quotes = false;
  bool field_started_quoted = false;
  while (true) {
    if (c == std::istream::traits_type::eof()) {
      if (in_quotes) {
        status_ = Status::InvalidArgument(StrFormatRecord(
            "unterminated quoted field", records_read_));
        return false;
      }
      fields->push_back(std::move(field));
      ++records_read_;
      return true;
    }
    char ch = static_cast<char>(c);
    if (in_quotes) {
      if (ch == '"') {
        int peek = input_->peek();
        if (peek == '"') {
          input_->get();
          field += '"';
        } else {
          in_quotes = false;
        }
      } else {
        field += ch;
      }
    } else if (ch == '"' && field.empty() && !field_started_quoted) {
      in_quotes = true;
      field_started_quoted = true;
    } else if (ch == ',') {
      fields->push_back(std::move(field));
      field.clear();
      field_started_quoted = false;
    } else if (ch == '\n' || ch == '\r') {
      if (ch == '\r' && input_->peek() == '\n') input_->get();
      fields->push_back(std::move(field));
      ++records_read_;
      return true;
    } else {
      if (field_started_quoted) {
        status_ = Status::InvalidArgument(StrFormatRecord(
            "data after closing quote", records_read_));
        return false;
      }
      field += ch;
    }
    c = input_->get();
  }
}

std::string CsvReader::StrFormatRecord(const char* what, size_t record) {
  std::ostringstream os;
  os << "malformed CSV (" << what << ") near record " << record + 1;
  return os.str();
}

CsvWriter::CsvWriter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void CsvWriter::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

void CsvWriter::Write(std::ostream& os) const { os << ToString(); }

std::string CsvWriter::ToString() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) os << ',';
      os << CsvEscape(row[i]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

}  // namespace sight
