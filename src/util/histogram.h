// Fixed-bin histogram over a closed real interval.
//
// Used for the network-similarity-group style bucketing in reports and for
// summarizing distributions in benches and tests.

#ifndef SIGHT_UTIL_HISTOGRAM_H_
#define SIGHT_UTIL_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace sight {

/// Histogram with `num_bins` equal-width bins covering [lo, hi].
///
/// Values equal to `hi` land in the last bin (the bins behave as
/// [lo, lo+w), ..., [hi-w, hi]); values outside [lo, hi] are counted as
/// underflow/overflow and excluded from bin counts.
class Histogram {
 public:
  [[nodiscard]]
  static Result<Histogram> Create(size_t num_bins, double lo, double hi);

  void Add(double value);
  void AddAll(const std::vector<double>& values);

  size_t num_bins() const { return counts_.size(); }
  uint64_t bin_count(size_t bin) const { return counts_[bin]; }
  uint64_t underflow() const { return underflow_; }
  uint64_t overflow() const { return overflow_; }
  uint64_t total_in_range() const { return total_in_range_; }

  /// Index of the bin `value` falls into; error when out of range.
  [[nodiscard]] Result<size_t> BinIndex(double value) const;

  /// Inclusive-exclusive bounds of a bin (last bin inclusive of hi).
  double bin_lower(size_t bin) const;
  double bin_upper(size_t bin) const;

  /// Fraction of in-range values per bin (all zeros when empty).
  std::vector<double> NormalizedCounts() const;

  /// Mean of added in-range values (0 when empty).
  double Mean() const;

 private:
  Histogram(size_t num_bins, double lo, double hi);

  double lo_;
  double hi_;
  double width_;
  std::vector<uint64_t> counts_;
  uint64_t underflow_ = 0;
  uint64_t overflow_ = 0;
  uint64_t total_in_range_ = 0;
  double sum_in_range_ = 0.0;
};

}  // namespace sight

#endif  // SIGHT_UTIL_HISTOGRAM_H_
