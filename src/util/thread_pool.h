// Fixed-size worker pool for embarrassingly parallel work (the benches'
// per-owner study runs; any caller with independent tasks).

#ifndef SIGHT_UTIL_THREAD_POOL_H_
#define SIGHT_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sight {

/// Threads are started in the constructor and joined in the destructor.
/// Submitted tasks must not throw (the library is exception-free).
class ThreadPool {
 public:
  /// `num_threads` 0 selects the hardware concurrency (at least 1).
  explicit ThreadPool(size_t num_threads = 0);

  /// Waits for all pending tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Safe from any thread, including worker threads
  /// (tasks may submit follow-up tasks).
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task (including tasks submitted by
  /// running tasks) has finished.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  size_t in_flight_ = 0;  // queued + currently running
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
};

/// Tuning knobs for ParallelFor's dispatch decision.
struct ParallelForOptions {
  /// Total work units across all n indices when the caller knows it (e.g.
  /// the pair count of a triangular row loop, where per-row cost varies).
  /// 0 = unknown; each index then counts as one unit and no work-based
  /// serial fallback applies (indices may be expensive).
  size_t total_work = 0;
  /// With total_work known: run inline below this many total units, and
  /// size chunks to carry at least 1/8 of it each. Queue and wakeup
  /// traffic dominates loops cheaper than this.
  size_t min_parallel_work = 32768;
};

/// Runs fn(0..n-1) across `pool` and blocks until all calls finish.
/// Indices are dispatched as contiguous chunks (several per worker), so
/// within a chunk calls run in ascending order on one thread. Runs inline
/// with a null pool, when the pool cannot help (a single worker, or more
/// workers than the machine has cores counts as the core count — a
/// CPU-bound loop gains nothing from oversubscription), or when
/// options.total_work is known and below the minimum; results are
/// identical either way, and any tasks fn submits to `pool` are still
/// awaited. Returns true when the work was dispatched to the pool.
/// Must not be called from inside a pool task (Wait() from a worker can
/// deadlock once every worker is blocked waiting).
bool ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn,
                 const ParallelForOptions& options = {});

}  // namespace sight

#endif  // SIGHT_UTIL_THREAD_POOL_H_
