#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.h"

namespace sight {

void SampleStats::Add(double value) {
  samples_.push_back(value);
  sum_ += value;
  sorted_valid_ = false;
}

void SampleStats::AddAll(const std::vector<double>& values) {
  for (double v : values) Add(v);
}

double SampleStats::Mean() const {
  if (samples_.empty()) return 0.0;
  return sum_ / static_cast<double>(samples_.size());
}

double SampleStats::StdDev() const {
  if (samples_.size() < 2) return 0.0;
  double mean = Mean();
  double ss = 0.0;
  for (double v : samples_) ss += (v - mean) * (v - mean);
  return std::sqrt(ss / static_cast<double>(samples_.size() - 1));
}

double SampleStats::Min() const {
  if (samples_.empty()) return 0.0;
  return *std::min_element(samples_.begin(), samples_.end());
}

double SampleStats::Max() const {
  if (samples_.empty()) return 0.0;
  return *std::max_element(samples_.begin(), samples_.end());
}

double SampleStats::Percentile(double p) const {
  SIGHT_CHECK(p >= 0.0 && p <= 100.0);
  if (samples_.empty()) return 0.0;
  if (!sorted_valid_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
  if (sorted_.size() == 1) return sorted_[0];
  double rank = p / 100.0 * static_cast<double>(sorted_.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, sorted_.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

}  // namespace sight
