#include "util/status.h"

#include <cstdio>
#include <cstdlib>

namespace sight {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = StatusCodeToString(code_);
  result += ": ";
  result += message_;
  return result;
}

namespace internal {

void DieOnBadResult(const Status& status) {
  std::fprintf(stderr, "Fatal: value() called on errored Result: %s\n",
               status.ToString().c_str());
  std::abort();
}

}  // namespace internal
}  // namespace sight
