// Small string helpers used across the library (no locale dependence).

#ifndef SIGHT_UTIL_STRING_UTIL_H_
#define SIGHT_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace sight {

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Joins the elements with `sep` between them.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits on every occurrence of `sep` (empty fields preserved).
std::vector<std::string> Split(std::string_view text, char sep);

/// Strips ASCII whitespace from both ends.
std::string_view Trim(std::string_view text);

/// ASCII lower-casing.
std::string ToLower(std::string_view text);

/// Formats `value` with `digits` decimal places.
std::string FormatDouble(double value, int digits);

/// Formats a [0,1] fraction as a percentage, e.g. 0.417 -> "42%" (digits=0)
/// or "41.7%" (digits=1).
std::string FormatPercent(double fraction, int digits = 0);

}  // namespace sight

#endif  // SIGHT_UTIL_STRING_UTIL_H_
