#include "util/string_util.h"

#include <cstdarg>
#include <cstdio>

namespace sight {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (needed < 0) {
    va_end(args_copy);
    return std::string();
  }
  std::string result(static_cast<size_t>(needed), '\0');
  std::vsnprintf(result.data(), result.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return result;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string result;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) result.append(sep);
    result += parts[i];
  }
  return result;
}

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(text.substr(start));
      break;
    }
    parts.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

std::string_view Trim(std::string_view text) {
  const char* ws = " \t\r\n\f\v";
  size_t begin = text.find_first_not_of(ws);
  if (begin == std::string_view::npos) return std::string_view();
  size_t end = text.find_last_not_of(ws);
  return text.substr(begin, end - begin + 1);
}

std::string ToLower(std::string_view text) {
  std::string result(text);
  for (char& c : result) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return result;
}

std::string FormatDouble(double value, int digits) {
  return StrFormat("%.*f", digits, value);
}

std::string FormatPercent(double fraction, int digits) {
  return StrFormat("%.*f%%", digits, fraction * 100.0);
}

}  // namespace sight
