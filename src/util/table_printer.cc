#include "util/table_printer.h"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "util/csv.h"
#include "util/string_util.h"

namespace sight {
namespace {

bool LooksNumeric(const std::string& cell) {
  if (cell.empty()) return false;
  bool digit_seen = false;
  for (char c : cell) {
    if (std::isdigit(static_cast<unsigned char>(c))) {
      digit_seen = true;
    } else if (c != '.' && c != '-' && c != '+' && c != '%' && c != ',') {
      return false;
    }
  }
  return digit_seen;
}

}  // namespace

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

void TablePrinter::AddRow(const std::string& label,
                          const std::vector<double>& values, int digits) {
  std::vector<std::string> row;
  row.reserve(values.size() + 1);
  row.push_back(label);
  for (double v : values) row.push_back(FormatDouble(v, digits));
  rows_.push_back(std::move(row));
}

void TablePrinter::Print(std::ostream& os) const { os << ToString(); }

std::string TablePrinter::ToCsv() const {
  CsvWriter writer(header_);
  for (const auto& row : rows_) writer.AddRow(row);
  return writer.ToString();
}

std::string TablePrinter::ToString() const {
  size_t num_cols = header_.size();
  for (const auto& row : rows_) num_cols = std::max(num_cols, row.size());

  std::vector<size_t> widths(num_cols, 0);
  auto measure = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  measure(header_);
  for (const auto& row : rows_) measure(row);

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < num_cols; ++i) {
      const std::string cell = i < row.size() ? row[i] : std::string();
      if (i > 0) os << "  ";
      if (LooksNumeric(cell)) {
        os << std::string(widths[i] - cell.size(), ' ') << cell;
      } else {
        os << cell << std::string(widths[i] - cell.size(), ' ');
      }
    }
    os << "\n";
  };

  emit(header_);
  size_t total = 0;
  for (size_t i = 0; i < num_cols; ++i) total += widths[i] + (i > 0 ? 2 : 0);
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) emit(row);
  return os.str();
}

}  // namespace sight
