// Deterministic, seedable random number generation.
//
// All randomized components of Sight (data generation, sampling, clustering
// tie-breaks) draw from an explicitly passed Rng so that every experiment is
// reproducible from its seed. The engine is xoshiro256++, seeded via
// SplitMix64, which is both fast and statistically strong for simulation
// workloads.

#ifndef SIGHT_UTIL_RANDOM_H_
#define SIGHT_UTIL_RANDOM_H_

#include <cstdint>
#include <vector>

#include "util/logging.h"

namespace sight {

/// xoshiro256++ pseudo-random generator with convenience distributions.
///
/// Not thread-safe; use one Rng per thread (Fork() derives independent
/// streams).
class Rng {
 public:
  /// Seeds the four 64-bit state words from `seed` via SplitMix64.
  explicit Rng(uint64_t seed = 0x5ee1c0de);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Standard normal via Box-Muller.
  double Normal(double mean = 0.0, double stddev = 1.0);

  /// Index drawn proportionally to the non-negative weights. Requires at
  /// least one strictly positive weight.
  size_t WeightedIndex(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i)));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Samples k distinct indices from [0, n) in uniformly random order.
  /// If k >= n returns all n indices (shuffled).
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Derives an independent generator stream (for parallel or per-entity
  /// determinism: the fork result depends only on this Rng's state).
  Rng Fork();

 private:
  uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace sight

#endif  // SIGHT_UTIL_RANDOM_H_
