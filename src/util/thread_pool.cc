#include "util/thread_pool.h"

#include <algorithm>

#include "util/logging.h"

namespace sight {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  Wait();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  SIGHT_CHECK(task != nullptr);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    SIGHT_CHECK(!shutting_down_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

bool ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn,
                 const ParallelForOptions& options) {
  // Workers beyond the machine's cores cannot speed up a CPU-bound loop;
  // they only add context-switch and cache-migration overhead (measured
  // as a 0.89-0.94x "speedup" on a single-core host).
  size_t hardware = std::thread::hardware_concurrency();
  size_t workers = pool == nullptr ? 1 : pool->num_threads();
  if (hardware > 0) workers = std::min(workers, hardware);
  bool too_little_work =
      options.total_work > 0 && options.total_work < options.min_parallel_work;
  if (workers <= 1 || n <= 1 || too_little_work) {
    for (size_t i = 0; i < n; ++i) fn(i);
    // Preserve the parallel path's post-condition that follow-up tasks
    // submitted by fn have finished when ParallelFor returns.
    if (pool != nullptr) pool->Wait();
    return false;
  }
  // Contiguous chunks, several per worker: one task per index would pay
  // queue traffic per call, and exactly one chunk per worker would stall
  // on uneven per-index cost (e.g. the triangular row loop of the
  // similarity-matrix build). With a known total, the grain is derived
  // from it instead so no chunk carries less than ~1/8 of the minimum
  // parallel work.
  size_t chunks = std::min(n, workers * 8);
  if (options.total_work > 0) {
    size_t min_chunk_work = std::max<size_t>(1, options.min_parallel_work / 8);
    chunks = std::min(chunks,
                      std::max<size_t>(1, options.total_work / min_chunk_work));
  }
  size_t base = n / chunks;
  size_t remainder = n % chunks;
  size_t start = 0;
  for (size_t c = 0; c < chunks; ++c) {
    size_t end = start + base + (c < remainder ? 1 : 0);
    pool->Submit([&fn, start, end] {
      for (size_t i = start; i < end; ++i) fn(i);
    });
    start = end;
  }
  pool->Wait();
  return true;
}

}  // namespace sight
