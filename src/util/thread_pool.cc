#include "util/thread_pool.h"

#include <algorithm>

#include "util/logging.h"

namespace sight {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  Wait();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  SIGHT_CHECK(task != nullptr);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    SIGHT_CHECK(!shutting_down_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn) {
  if (pool == nullptr || pool->num_threads() == 1 || n <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // Contiguous chunks, several per worker: one task per index would pay
  // queue traffic per call, and exactly one chunk per worker would stall
  // on uneven per-index cost (e.g. the triangular row loop of the
  // similarity-matrix build).
  size_t chunks = std::min(n, pool->num_threads() * 8);
  size_t base = n / chunks;
  size_t remainder = n % chunks;
  size_t start = 0;
  for (size_t c = 0; c < chunks; ++c) {
    size_t end = start + base + (c < remainder ? 1 : 0);
    pool->Submit([&fn, start, end] {
      for (size_t i = start; i < end; ++i) fn(i);
    });
    start = end;
  }
  pool->Wait();
}

}  // namespace sight
