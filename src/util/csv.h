// CSV reading and writing (RFC 4180 quoting) for experiment output files
// and the io/ dataset loaders.

#ifndef SIGHT_UTIL_CSV_H_
#define SIGHT_UTIL_CSV_H_

#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "util/status.h"

namespace sight {

/// Escapes a single CSV field (quotes when it contains comma/quote/newline).
std::string CsvEscape(const std::string& field);

/// Accumulates rows and writes them comma-separated with proper quoting.
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  void Write(std::ostream& os) const;
  std::string ToString() const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Streaming CSV record reader (RFC 4180: quoted fields may contain
/// commas, doubled quotes, and newlines).
class CsvReader {
 public:
  /// The stream must outlive the reader.
  explicit CsvReader(std::istream* input) : input_(input) {}

  /// Reads the next record into `fields`. Returns true on success, false
  /// on clean end-of-input; malformed quoting yields an error status via
  /// `status()` and false.
  bool Next(std::vector<std::string>* fields);

  /// OK unless a malformed record was encountered.
  const Status& status() const { return status_; }

  /// Records successfully read so far (for error messages).
  size_t records_read() const { return records_read_; }

 private:
  static std::string StrFormatRecord(const char* what, size_t record);

  std::istream* input_;
  Status status_;
  size_t records_read_ = 0;
};

}  // namespace sight

#endif  // SIGHT_UTIL_CSV_H_
