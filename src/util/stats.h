// Scalar summary statistics over samples (mean/stddev/min/max/percentiles).

#ifndef SIGHT_UTIL_STATS_H_
#define SIGHT_UTIL_STATS_H_

#include <cstddef>
#include <vector>

namespace sight {

/// Running summary of double-valued samples.
///
/// Percentile() sorts an internal copy lazily; Add() invalidates the cache.
class SampleStats {
 public:
  void Add(double value);
  void AddAll(const std::vector<double>& values);

  size_t count() const { return samples_.size(); }
  double Mean() const;
  /// Sample standard deviation (n-1 denominator); 0 for fewer than 2 samples.
  double StdDev() const;
  double Min() const;
  double Max() const;
  double Sum() const { return sum_; }
  /// Linear-interpolated percentile, p in [0, 100].
  double Percentile(double p) const;

 private:
  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
  double sum_ = 0.0;
};

}  // namespace sight

#endif  // SIGHT_UTIL_STATS_H_
