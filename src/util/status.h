// Status and Result<T>: exception-free error handling for the Sight library.
//
// The API follows the Arrow/RocksDB idiom: fallible operations return a
// Status (or a Result<T> carrying a value on success), and callers are
// expected to check `ok()` before using the value. Constructors never fail;
// fallible construction goes through static Create() factories.

#ifndef SIGHT_UTIL_STATUS_H_
#define SIGHT_UTIL_STATUS_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <variant>

namespace sight {

// Canonical error space, a deliberately small subset of the absl/gRPC codes.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kInternal = 6,
  kUnimplemented = 7,
  kResourceExhausted = 8,
};

/// Returns a stable human-readable name for a status code ("OK",
/// "InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// A Status carries either success (OK) or an error code plus message.
///
/// Statuses are cheap to copy in the OK case (no allocation) and are
/// intended to be returned by value. The class itself is [[nodiscard]]:
/// silently dropping a returned Status is a compile warning (an error
/// under SIGHT_WERROR). Use `status.IgnoreError()` for the rare call
/// site where dropping is intentional.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  [[nodiscard]] static Status OK() { return Status(); }
  [[nodiscard]] static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  [[nodiscard]] static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  [[nodiscard]] static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  [[nodiscard]] static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  [[nodiscard]] static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  [[nodiscard]] static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  [[nodiscard]] static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  [[nodiscard]] static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  /// Merges `other` into this status, keeping the FIRST error seen:
  /// if this status is OK it becomes `other`; if it already holds an
  /// error, `other` is dropped. Lets loops accumulate a batch of
  /// fallible steps and report the earliest failure:
  ///
  ///   Status st;
  ///   for (const auto& row : rows) st.Update(ProcessRow(row));
  ///   return st;
  void Update(const Status& other) {
    if (ok()) *this = other;
  }
  void Update(Status&& other) {
    if (ok()) *this = std::move(other);
  }

  /// Explicitly discards this status. The only sanctioned way to drop a
  /// Status on the floor; grep-able, unlike a (void) cast.
  void IgnoreError() const {}

  /// "OK" or "<CodeName>: <message>".
  [[nodiscard]] std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Result<T> holds either a value of type T or an error Status.
///
/// Accessing the value of an errored Result aborts the process (the same
/// contract as arrow::Result); call ok() first. Like Status, the class is
/// [[nodiscard]]: ignoring a returned Result discards both the value and
/// the error, which is never intentional.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from value: allows `return value;` in functions returning
  /// Result<T>.
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from error status. Constructing from an OK status is a
  /// programming error and is converted to an Internal error.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    if (std::get<Status>(repr_).ok()) {
      repr_ = Status::Internal("Result constructed from OK status");
    }
  }

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(repr_); }

  /// Error status; OK if the result holds a value.
  [[nodiscard]] Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  [[nodiscard]] const T& value() const& {
    AbortIfError();
    return std::get<T>(repr_);
  }
  [[nodiscard]] T& value() & {
    AbortIfError();
    return std::get<T>(repr_);
  }
  /// Moves the value out. Returns by value (not T&&) so that binding the
  /// result of `SomeCall().value()` in a range-for or reference never
  /// dangles after the temporary Result is destroyed.
  [[nodiscard]] T value() && {
    AbortIfError();
    return std::move(std::get<T>(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this result holds an error.
  [[nodiscard]] T value_or(T fallback) const {
    if (ok()) return std::get<T>(repr_);
    return fallback;
  }

 private:
  void AbortIfError() const;

  std::variant<T, Status> repr_;
};

namespace internal {
[[noreturn]] void DieOnBadResult(const Status& status);
}  // namespace internal

template <typename T>
void Result<T>::AbortIfError() const {
  if (!ok()) internal::DieOnBadResult(std::get<Status>(repr_));
}

// Propagates an error status out of the current function.
//
//   SIGHT_RETURN_IF_ERROR(DoSomething());
#define SIGHT_RETURN_IF_ERROR(expr)          \
  do {                                       \
    ::sight::Status _st = (expr);            \
    if (!_st.ok()) return _st;               \
  } while (false)

// Older spelling of SIGHT_RETURN_IF_ERROR, kept for existing call sites.
#define SIGHT_RETURN_NOT_OK(expr) SIGHT_RETURN_IF_ERROR(expr)

// Assigns the value of a Result expression to `lhs`, or propagates the
// error.  `lhs` may include a declaration:
//
//   SIGHT_ASSIGN_OR_RETURN(auto pools, BuildPools(...));
#define SIGHT_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value();

#define SIGHT_ASSIGN_OR_RETURN_CONCAT(x, y) x##y
#define SIGHT_ASSIGN_OR_RETURN_NAME(x, y) SIGHT_ASSIGN_OR_RETURN_CONCAT(x, y)
#define SIGHT_ASSIGN_OR_RETURN(lhs, rexpr)                               \
  SIGHT_ASSIGN_OR_RETURN_IMPL(                                           \
      SIGHT_ASSIGN_OR_RETURN_NAME(_sight_result_, __COUNTER__), lhs, rexpr)

}  // namespace sight

#endif  // SIGHT_UTIL_STATUS_H_
