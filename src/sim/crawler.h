// Incremental stranger discovery (the Sight Facebook app's crawl loop).
//
// The paper's application cannot read the social graph at once: it listens
// to friend interactions and discovers friends-of-friends over up to a
// week. The Crawler simulates that: starting from the owner's friend list,
// each Tick() surfaces a batch of not-yet-discovered strangers, with
// discovery probability proportional to the stranger's mutual-friend count
// (well-connected strangers appear in interactions sooner). This exercises
// the incremental flow the paper gives as its reason for choosing active
// learning ("the user can start label and learn about the risk since the
// first day").

#ifndef SIGHT_SIM_CRAWLER_H_
#define SIGHT_SIM_CRAWLER_H_

#include <vector>

#include "graph/social_graph.h"
#include "graph/types.h"
#include "util/random.h"
#include "util/status.h"

namespace sight::sim {

struct CrawlerConfig {
  /// Strangers surfaced per tick.
  size_t batch_size = 50;
};

class Crawler {
 public:
  /// Enumerates the owner's two-hop strangers up front (the simulator
  /// knows the full graph; the discovery order is what is simulated).
  [[nodiscard]]
  static Result<Crawler> Create(const SocialGraph& graph, UserId owner,
                                CrawlerConfig config, Rng* rng);

  /// Surfaces the next batch of strangers (empty once exhausted).
  std::vector<UserId> Tick();

  /// All strangers discovered so far, in discovery order.
  const std::vector<UserId>& discovered() const { return discovered_; }

  size_t num_remaining() const { return order_.size() - next_; }
  bool done() const { return next_ >= order_.size(); }
  size_t total_strangers() const { return order_.size(); }

 private:
  Crawler(std::vector<UserId> order, CrawlerConfig config)
      : order_(std::move(order)), config_(config) {}

  /// Full discovery order, precomputed by weighted sampling without
  /// replacement (weight = mutual-friend count).
  std::vector<UserId> order_;
  CrawlerConfig config_;
  std::vector<UserId> discovered_;
  size_t next_ = 0;
};

}  // namespace sight::sim

#endif  // SIGHT_SIM_CRAWLER_H_
