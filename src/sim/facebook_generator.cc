#include "sim/facebook_generator.h"

#include <algorithm>
#include <cmath>

#include "graph/algorithms.h"
#include "sim/visibility_model.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace sight::sim {
namespace {

Locale RandomLocale(Rng* rng) {
  return kAllLocales[static_cast<size_t>(
      rng->UniformInt(0, static_cast<int64_t>(kNumLocales) - 1))];
}

Gender RandomGender(double male_fraction, Rng* rng) {
  return rng->Bernoulli(male_fraction) ? Gender::kMale : Gender::kFemale;
}

// Zipf-distributed value in [1, max]: P(m) proportional to m^-exponent.
size_t ZipfDraw(size_t max, double exponent, Rng* rng) {
  SIGHT_CHECK(max >= 1);
  std::vector<double> weights(max);
  for (size_t m = 1; m <= max; ++m) {
    weights[m - 1] = std::pow(static_cast<double>(m), -exponent);
  }
  return rng->WeightedIndex(weights) + 1;
}

}  // namespace

std::vector<OwnerSpec> PaperOwnerPopulation() {
  // 47 owners: 32 male / 15 female; locales TR 17, US 9, PL 7, IT 5, IN 1
  // (the paper's reported counts) + DE 3, GB 3, ES 2 for the unreported 8.
  struct LocaleCount {
    Locale locale;
    size_t count;
  };
  const LocaleCount locale_counts[] = {
      {Locale::kTR, 17}, {Locale::kUS, 9}, {Locale::kPL, 7},
      {Locale::kIT, 5},  {Locale::kIN, 1}, {Locale::kDE, 3},
      {Locale::kGB, 3},  {Locale::kES, 2},
  };
  std::vector<OwnerSpec> owners;
  owners.reserve(47);
  for (const LocaleCount& lc : locale_counts) {
    for (size_t i = 0; i < lc.count; ++i) {
      owners.push_back({Gender::kMale, lc.locale});
    }
  }
  SIGHT_CHECK(owners.size() == 47);
  // Make 15 of them female, spread deterministically across the list.
  size_t females = 0;
  for (size_t i = 0; females < 15 && i < owners.size(); ++i) {
    if (i % 3 == 1) {
      owners[i].gender = Gender::kFemale;
      ++females;
    }
  }
  SIGHT_CHECK(females == 15);
  return owners;
}

Status GeneratorConfig::Validate() const {
  if (num_friends < 2) {
    return Status::InvalidArgument("num_friends must be at least 2");
  }
  if (num_communities == 0 || num_communities > num_friends) {
    return Status::InvalidArgument(
        StrFormat("num_communities %zu must be in [1, num_friends=%zu]",
                  num_communities, num_friends));
  }
  for (double p :
       {intra_community_edge_prob, inter_community_edge_prob,
        same_locale_friend_prob, community_same_locale_prob,
        same_locale_stranger_prob, male_fraction}) {
    if (p < 0.0 || p > 1.0) {
      return Status::InvalidArgument("probabilities must lie in [0, 1]");
    }
  }
  if (max_mutual_friends == 0) {
    return Status::InvalidArgument("max_mutual_friends must be positive");
  }
  if (!(mutual_zipf_exponent > 0.0)) {
    return Status::InvalidArgument("mutual_zipf_exponent must be positive");
  }
  return Status::OK();
}

Result<FacebookGenerator> FacebookGenerator::Create(GeneratorConfig config) {
  SIGHT_RETURN_IF_ERROR(config.Validate());
  return FacebookGenerator(config);
}

Result<OwnerDataset> FacebookGenerator::Generate(const OwnerSpec& owner_spec,
                                                 Rng* rng) const {
  if (rng == nullptr) {
    return Status::InvalidArgument("rng is required");
  }
  OwnerDataset ds;

  // Owner.
  ds.owner = ds.graph.AddUser();
  SIGHT_RETURN_IF_ERROR(ds.profiles.Set(
      ds.owner,
      MakeProfile(owner_spec.gender, owner_spec.locale, dists_, rng)));
  ds.visibility.SetMask(
      ds.owner, SampleVisibilityMask(owner_spec.gender, owner_spec.locale,
                                     rng));

  // Communities with a dominant locale each.
  std::vector<Locale> community_locale(config_.num_communities);
  for (Locale& l : community_locale) {
    l = rng->Bernoulli(config_.community_same_locale_prob)
            ? owner_spec.locale
            : RandomLocale(rng);
  }

  // Friends.
  std::vector<size_t> community_of_friend(config_.num_friends);
  std::vector<std::vector<UserId>> community_members(config_.num_communities);
  ds.friends.reserve(config_.num_friends);
  for (size_t i = 0; i < config_.num_friends; ++i) {
    UserId f = ds.graph.AddUser();
    ds.friends.push_back(f);
    size_t community = static_cast<size_t>(rng->UniformInt(
        0, static_cast<int64_t>(config_.num_communities) - 1));
    community_of_friend[i] = community;
    community_members[community].push_back(f);

    Locale locale = rng->Bernoulli(config_.same_locale_friend_prob)
                        ? community_locale[community]
                        : RandomLocale(rng);
    Gender gender = RandomGender(config_.male_fraction, rng);
    SIGHT_RETURN_IF_ERROR(
        ds.profiles.Set(f, MakeProfile(gender, locale, dists_, rng)));
    ds.visibility.SetMask(f, SampleVisibilityMask(gender, locale, rng));
    SIGHT_RETURN_IF_ERROR(ds.graph.AddEdge(ds.owner, f));
  }

  // Friend-friend edges: dense inside a community, sparse across.
  for (size_t i = 0; i < config_.num_friends; ++i) {
    for (size_t j = i + 1; j < config_.num_friends; ++j) {
      double p = community_of_friend[i] == community_of_friend[j]
                     ? config_.intra_community_edge_prob
                     : config_.inter_community_edge_prob;
      if (rng->Bernoulli(p)) {
        SIGHT_RETURN_IF_ERROR(
            ds.graph.AddEdge(ds.friends[i], ds.friends[j]));
      }
    }
  }

  // Strangers: attach to m mutual friends inside one community.
  for (size_t s = 0; s < config_.num_strangers; ++s) {
    // Pick a non-empty community, weighted by size.
    std::vector<double> weights(config_.num_communities);
    for (size_t c = 0; c < config_.num_communities; ++c) {
      weights[c] = static_cast<double>(community_members[c].size());
    }
    size_t community = rng->WeightedIndex(weights);
    const std::vector<UserId>& members = community_members[community];

    size_t cap = std::min(config_.max_mutual_friends, members.size());
    size_t m = ZipfDraw(cap, config_.mutual_zipf_exponent, rng);

    UserId stranger = ds.graph.AddUser();
    std::vector<size_t> picks =
        rng->SampleWithoutReplacement(members.size(), m);
    for (size_t p : picks) {
      SIGHT_RETURN_IF_ERROR(ds.graph.AddEdge(stranger, members[p]));
    }

    Locale locale = rng->Bernoulli(config_.same_locale_stranger_prob)
                        ? community_locale[community]
                        : RandomLocale(rng);
    Gender gender = RandomGender(config_.male_fraction, rng);
    SIGHT_RETURN_IF_ERROR(
        ds.profiles.Set(stranger, MakeProfile(gender, locale, dists_, rng)));
    ds.visibility.SetMask(stranger,
                          SampleVisibilityMask(gender, locale, rng));
  }

  // The strangers of record are the actual two-hop set.
  SIGHT_ASSIGN_OR_RETURN(ds.strangers, TwoHopStrangers(ds.graph, ds.owner));
  return ds;
}

}  // namespace sight::sim
