#include "sim/schema.h"

#include "util/logging.h"
#include "util/string_util.h"

namespace sight::sim {
namespace {

// Zipf-weighted index into a pool of size n: P(i) proportional to 1/(i+1).
size_t ZipfIndex(size_t n, Rng* rng) {
  SIGHT_CHECK(n > 0);
  std::vector<double> weights(n);
  for (size_t i = 0; i < n; ++i) weights[i] = 1.0 / static_cast<double>(i + 1);
  return rng->WeightedIndex(weights);
}

}  // namespace

const char* LocaleCode(Locale locale) {
  switch (locale) {
    case Locale::kTR:
      return "tr_TR";
    case Locale::kDE:
      return "de_DE";
    case Locale::kUS:
      return "en_US";
    case Locale::kIT:
      return "it_IT";
    case Locale::kGB:
      return "en_GB";
    case Locale::kES:
      return "es_ES";
    case Locale::kPL:
      return "pl_PL";
    case Locale::kIN:
      return "en_IN";
  }
  return "unknown";
}

Result<Locale> LocaleFromCode(const std::string& code) {
  for (Locale locale : kAllLocales) {
    if (code == LocaleCode(locale)) return locale;
  }
  return Status::NotFound(StrFormat("no locale with code '%s'",
                                    code.c_str()));
}

const char* GenderName(Gender gender) {
  return gender == Gender::kMale ? "male" : "female";
}

ProfileSchema FacebookSchema() {
  auto schema = ProfileSchema::Create(
      {"gender", "locale", "last_name", "hometown", "education", "work"});
  SIGHT_CHECK(schema.ok());
  return std::move(schema).value();
}

std::vector<double> PaperAttributeWeights() {
  std::vector<double> weights(kNumFacebookAttributes, 0.0);
  weights[static_cast<size_t>(FacebookAttribute::kGender)] = 0.6231;
  weights[static_cast<size_t>(FacebookAttribute::kLocale)] = 0.3226;
  weights[static_cast<size_t>(FacebookAttribute::kLastName)] = 0.0542;
  return weights;
}

ValueDistributions::ValueDistributions() {
  auto at = [](Locale l) { return static_cast<size_t>(l); };

  last_names_[at(Locale::kTR)] = {"Yilmaz", "Kaya",  "Demir", "Celik",
                                  "Sahin",  "Yildiz", "Aydin", "Ozturk",
                                  "Arslan", "Dogan"};
  last_names_[at(Locale::kDE)] = {"Mueller", "Schmidt", "Schneider",
                                  "Fischer", "Weber",   "Meyer",
                                  "Wagner",  "Becker",  "Schulz", "Hoffmann"};
  last_names_[at(Locale::kUS)] = {"Smith",  "Johnson", "Williams", "Brown",
                                  "Jones",  "Garcia",  "Miller",   "Davis",
                                  "Wilson", "Anderson"};
  last_names_[at(Locale::kIT)] = {"Rossi",    "Russo",   "Ferrari",
                                  "Esposito", "Bianchi", "Romano",
                                  "Colombo",  "Ricci",   "Marino", "Greco"};
  last_names_[at(Locale::kGB)] = {"Smith",  "Jones",    "Taylor", "Brown",
                                  "Wilson", "Evans",    "Thomas", "Roberts",
                                  "Walker", "Robinson"};
  last_names_[at(Locale::kES)] = {"Garcia", "Fernandez", "Gonzalez",
                                  "Rodriguez", "Lopez",  "Martinez",
                                  "Sanchez",   "Perez",  "Gomez", "Martin"};
  last_names_[at(Locale::kPL)] = {"Nowak",     "Kowalski", "Wisniewski",
                                  "Wojcik",    "Kowalczyk", "Kaminski",
                                  "Lewandowski", "Zielinski", "Szymanski",
                                  "Wozniak"};
  last_names_[at(Locale::kIN)] = {"Sharma", "Verma", "Gupta",  "Singh",
                                  "Kumar",  "Patel", "Reddy",  "Mehta",
                                  "Joshi",  "Nair"};

  hometowns_[at(Locale::kTR)] = {"Istanbul", "Ankara", "Izmir", "Bursa",
                                 "Antalya", "Adana"};
  hometowns_[at(Locale::kDE)] = {"Berlin", "Hamburg", "Munich", "Cologne",
                                 "Frankfurt", "Stuttgart"};
  hometowns_[at(Locale::kUS)] = {"New York", "Los Angeles", "Chicago",
                                 "Houston", "Phoenix", "Philadelphia"};
  hometowns_[at(Locale::kIT)] = {"Rome", "Milan", "Naples", "Turin",
                                 "Palermo", "Varese"};
  hometowns_[at(Locale::kGB)] = {"London", "Birmingham", "Manchester",
                                 "Glasgow", "Liverpool", "Leeds"};
  hometowns_[at(Locale::kES)] = {"Madrid", "Barcelona", "Valencia",
                                 "Seville", "Zaragoza", "Malaga"};
  hometowns_[at(Locale::kPL)] = {"Warsaw", "Krakow", "Lodz", "Wroclaw",
                                 "Poznan", "Gdansk"};
  hometowns_[at(Locale::kIN)] = {"Mumbai", "Delhi", "Bangalore", "Hyderabad",
                                 "Chennai", "Kolkata"};

  educations_[at(Locale::kTR)] = {"Bogazici University", "METU",
                                  "Istanbul University", "Bilkent"};
  educations_[at(Locale::kDE)] = {"TU Munich", "Heidelberg University",
                                  "Humboldt", "RWTH Aachen"};
  educations_[at(Locale::kUS)] = {"State University", "Community College",
                                  "MIT", "UCLA"};
  educations_[at(Locale::kIT)] = {"Universita dell'Insubria",
                                  "Politecnico di Milano", "La Sapienza",
                                  "Bologna"};
  educations_[at(Locale::kGB)] = {"Oxford", "Cambridge", "UCL",
                                  "Manchester"};
  educations_[at(Locale::kES)] = {"Complutense", "UAB", "Valencia",
                                  "Sevilla"};
  educations_[at(Locale::kPL)] = {"University of Warsaw", "Jagiellonian",
                                  "AGH", "Gdansk Tech"};
  educations_[at(Locale::kIN)] = {"IIT Bombay", "IIT Delhi", "BITS",
                                  "Anna University"};

  works_ = {"engineer", "teacher", "student", "designer", "doctor",
            "sales",    "manager", "nurse",   "lawyer",   "chef"};
}

std::string ValueDistributions::SampleLastName(Locale locale,
                                               Rng* rng) const {
  const auto& pool = last_names_[static_cast<size_t>(locale)];
  return pool[ZipfIndex(pool.size(), rng)];
}

std::string ValueDistributions::SampleHometown(Locale locale,
                                               Rng* rng) const {
  const auto& pool = hometowns_[static_cast<size_t>(locale)];
  return pool[ZipfIndex(pool.size(), rng)];
}

std::string ValueDistributions::SampleEducation(Locale locale,
                                                Rng* rng) const {
  // ~35% of profiles list no education.
  if (rng->Bernoulli(0.35)) return kMissingValue;
  const auto& pool = educations_[static_cast<size_t>(locale)];
  return pool[ZipfIndex(pool.size(), rng)];
}

std::string ValueDistributions::SampleWork(Rng* rng) const {
  // ~45% of profiles list no employer.
  if (rng->Bernoulli(0.45)) return kMissingValue;
  return works_[ZipfIndex(works_.size(), rng)];
}

const std::vector<std::string>& ValueDistributions::last_names(
    Locale locale) const {
  return last_names_[static_cast<size_t>(locale)];
}

const std::vector<std::string>& ValueDistributions::hometowns(
    Locale locale) const {
  return hometowns_[static_cast<size_t>(locale)];
}

Profile MakeProfile(Gender gender, Locale locale,
                    const ValueDistributions& dists, Rng* rng) {
  Profile profile;
  profile.values.resize(kNumFacebookAttributes);
  profile.values[static_cast<size_t>(FacebookAttribute::kGender)] =
      GenderName(gender);
  profile.values[static_cast<size_t>(FacebookAttribute::kLocale)] =
      LocaleCode(locale);
  profile.values[static_cast<size_t>(FacebookAttribute::kLastName)] =
      dists.SampleLastName(locale, rng);
  profile.values[static_cast<size_t>(FacebookAttribute::kHometown)] =
      dists.SampleHometown(locale, rng);
  profile.values[static_cast<size_t>(FacebookAttribute::kEducation)] =
      dists.SampleEducation(locale, rng);
  profile.values[static_cast<size_t>(FacebookAttribute::kWork)] =
      dists.SampleWork(rng);
  return profile;
}

}  // namespace sight::sim
