#include "sim/twitter_generator.h"

#include <algorithm>

#include "graph/algorithms.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace sight::sim {
namespace {

const char* const kLanguages[] = {"en", "es", "tr", "pt", "ja", "de"};
const char* const kAges[] = {"new", "1y", "3y", "5y+"};
const char* const kActivities[] = {"daily", "weekly", "lurker"};

Profile MakeTwitterProfile(bool verified, const std::string& language,
                           Rng* rng) {
  Profile p;
  p.values = {verified ? "yes" : "no", language,
              kAges[rng->UniformInt(0, 3)],
              kActivities[rng->UniformInt(0, 2)]};
  return p;
}

// Twitter-like visibility: timelines and photos are near-public; precise
// location and employment are rarer; verified accounts reveal more.
uint8_t SampleTwitterVisibility(bool verified, Rng* rng) {
  auto bit = [&](ProfileItem item, double p) {
    return rng->Bernoulli(verified ? std::min(1.0, p + 0.1) : p)
               ? static_cast<uint8_t>(1u << static_cast<uint8_t>(item))
               : 0;
  };
  return static_cast<uint8_t>(
      bit(ProfileItem::kWall, 0.95) | bit(ProfileItem::kPhoto, 0.92) |
      bit(ProfileItem::kFriendList, 0.85) |
      bit(ProfileItem::kLocation, 0.30) |
      bit(ProfileItem::kEducation, 0.25) | bit(ProfileItem::kWork, 0.40) |
      bit(ProfileItem::kHometown, 0.35));
}

}  // namespace

ProfileSchema TwitterSchema() {
  auto schema = ProfileSchema::Create(
      {"verified", "language", "account_age", "activity"});
  SIGHT_CHECK(schema.ok());
  return std::move(schema).value();
}

Status TwitterGeneratorConfig::Validate() const {
  if (num_followed < 2) {
    return Status::InvalidArgument("num_followed must be at least 2");
  }
  if (num_celebrities == 0 || num_celebrities > num_followed) {
    return Status::InvalidArgument(
        StrFormat("num_celebrities %zu must be in [1, num_followed=%zu]",
                  num_celebrities, num_followed));
  }
  for (double p :
       {celebrity_follow_prob, same_language_prob, verified_fraction}) {
    if (p < 0.0 || p > 1.0) {
      return Status::InvalidArgument("probabilities must lie in [0, 1]");
    }
  }
  return Status::OK();
}

Result<TwitterGenerator> TwitterGenerator::Create(
    TwitterGeneratorConfig config) {
  SIGHT_RETURN_IF_ERROR(config.Validate());
  return TwitterGenerator(config);
}

Result<OwnerDataset> TwitterGenerator::Generate(Rng* rng) const {
  if (rng == nullptr) return Status::InvalidArgument("rng is required");

  OwnerDataset ds;
  ds.profiles = ProfileTable(TwitterSchema());

  const std::string owner_language = kLanguages[rng->UniformInt(0, 5)];

  // Owner.
  ds.owner = ds.graph.AddUser();
  SIGHT_RETURN_IF_ERROR(ds.profiles.Set(
      ds.owner, MakeTwitterProfile(false, owner_language, rng)));
  ds.visibility.SetMask(ds.owner, SampleTwitterVisibility(false, rng));

  // Followed accounts: the first num_celebrities are the hubs.
  std::vector<UserId> celebrities;
  for (size_t i = 0; i < config_.num_followed; ++i) {
    UserId f = ds.graph.AddUser();
    ds.friends.push_back(f);
    bool is_celebrity = i < config_.num_celebrities;
    if (is_celebrity) celebrities.push_back(f);
    bool verified =
        is_celebrity || rng->Bernoulli(config_.verified_fraction);
    std::string language = rng->Bernoulli(config_.same_language_prob)
                               ? owner_language
                               : kLanguages[rng->UniformInt(0, 5)];
    SIGHT_RETURN_IF_ERROR(
        ds.profiles.Set(f, MakeTwitterProfile(verified, language, rng)));
    ds.visibility.SetMask(f, SampleTwitterVisibility(verified, rng));
    SIGHT_RETURN_IF_ERROR(ds.graph.AddEdge(ds.owner, f));
  }

  // Non-hub followed accounts occasionally follow each other; everyone
  // tends to follow the hubs (which is what concentrates mutual friends
  // on hubs).
  for (size_t i = config_.num_celebrities; i < ds.friends.size(); ++i) {
    for (UserId hub : celebrities) {
      if (rng->Bernoulli(0.5)) {
        SIGHT_RETURN_IF_ERROR(
            ds.graph.AddEdgeIfAbsent(ds.friends[i], hub).status());
      }
    }
    for (size_t j = i + 1; j < ds.friends.size(); ++j) {
      if (rng->Bernoulli(0.01)) {
        SIGHT_RETURN_IF_ERROR(
            ds.graph.AddEdgeIfAbsent(ds.friends[i], ds.friends[j]).status());
      }
    }
  }

  // Strangers: follow hubs (mostly) plus occasionally regular followed
  // accounts.
  for (size_t s = 0; s < config_.num_strangers; ++s) {
    UserId stranger = ds.graph.AddUser();
    size_t links = 0;
    // At least one mutual connection, biased toward the hubs.
    while (links == 0) {
      for (UserId hub : celebrities) {
        if (rng->Bernoulli(config_.celebrity_follow_prob)) {
          SIGHT_RETURN_IF_ERROR(
              ds.graph.AddEdgeIfAbsent(stranger, hub).status());
          ++links;
        }
      }
      if (rng->Bernoulli(0.25)) {
        size_t pick = static_cast<size_t>(rng->UniformInt(
            0, static_cast<int64_t>(ds.friends.size()) - 1));
        SIGHT_RETURN_IF_ERROR(
            ds.graph.AddEdgeIfAbsent(stranger, ds.friends[pick]).status());
        ++links;
      }
    }
    bool verified = rng->Bernoulli(config_.verified_fraction);
    // Heterophily: strangers' languages are drawn globally, not from the
    // owner's.
    std::string language = kLanguages[rng->UniformInt(0, 5)];
    SIGHT_RETURN_IF_ERROR(ds.profiles.Set(
        stranger, MakeTwitterProfile(verified, language, rng)));
    ds.visibility.SetMask(stranger,
                          SampleTwitterVisibility(verified, rng));
  }

  SIGHT_ASSIGN_OR_RETURN(ds.strangers, TwoHopStrangers(ds.graph, ds.owner));
  return ds;
}

}  // namespace sight::sim
