// The Facebook-like profile schema and categorical value distributions
// used by the synthetic dataset generator.
//
// Attribute values are drawn from locale-conditioned pools (Turkish last
// names for TR strangers, Italian hometowns for IT strangers, ...), which
// gives the generated population the locale-correlated value frequencies
// the paper's profile similarity and Squeezer clustering rely on.

#ifndef SIGHT_SIM_SCHEMA_H_
#define SIGHT_SIM_SCHEMA_H_

#include <array>
#include <string>
#include <vector>

#include "graph/profile.h"
#include "util/random.h"
#include "util/status.h"

namespace sight::sim {

/// The seven locales of the paper's Table V plus IN (one owner in the
/// paper's population is from India).
enum class Locale : uint8_t {
  kTR = 0,
  kDE = 1,
  kUS = 2,
  kIT = 3,
  kGB = 4,
  kES = 5,
  kPL = 6,
  kIN = 7,
};

inline constexpr size_t kNumLocales = 8;

constexpr std::array<Locale, kNumLocales> kAllLocales = {
    Locale::kTR, Locale::kDE, Locale::kUS, Locale::kIT,
    Locale::kGB, Locale::kES, Locale::kPL, Locale::kIN};

/// Facebook-style locale code ("tr_TR", "en_US", ...).
const char* LocaleCode(Locale locale);

/// Inverse of LocaleCode; NotFound for unknown codes.
[[nodiscard]] Result<Locale> LocaleFromCode(const std::string& code);

enum class Gender : uint8_t { kMale = 0, kFemale = 1 };

const char* GenderName(Gender gender);

/// Canonical attribute order of the generated schema.
enum class FacebookAttribute : uint8_t {
  kGender = 0,
  kLocale = 1,
  kLastName = 2,
  kHometown = 3,
  kEducation = 4,
  kWork = 5,
};

inline constexpr size_t kNumFacebookAttributes = 6;

/// The schema {gender, locale, last_name, hometown, education, work}.
ProfileSchema FacebookSchema();

/// Squeezer attribute weights aligned with FacebookSchema(), set to the
/// paper's Table I average importances: the paper clusters on exactly
/// {gender 0.6231, locale 0.3226, last name 0.0542} and ignores the other
/// attributes for pooling.
std::vector<double> PaperAttributeWeights();

/// Value pools conditioned on locale.
class ValueDistributions {
 public:
  ValueDistributions();

  /// Draws a last name for someone from `locale`: Zipf-weighted choice
  /// from the locale's name pool.
  std::string SampleLastName(Locale locale, Rng* rng) const;

  /// Draws a hometown (cities of the locale's country).
  std::string SampleHometown(Locale locale, Rng* rng) const;

  /// Draws an education (universities of the locale, or missing).
  std::string SampleEducation(Locale locale, Rng* rng) const;

  /// Draws an employer (global pool, or missing).
  std::string SampleWork(Rng* rng) const;

  const std::vector<std::string>& last_names(Locale locale) const;
  const std::vector<std::string>& hometowns(Locale locale) const;

 private:
  std::array<std::vector<std::string>, kNumLocales> last_names_;
  std::array<std::vector<std::string>, kNumLocales> hometowns_;
  std::array<std::vector<std::string>, kNumLocales> educations_;
  std::vector<std::string> works_;
};

/// Builds a full profile for a user.
Profile MakeProfile(Gender gender, Locale locale,
                    const ValueDistributions& dists, Rng* rng);

}  // namespace sight::sim

#endif  // SIGHT_SIM_SCHEMA_H_
