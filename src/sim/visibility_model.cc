#include "sim/visibility_model.h"

#include <algorithm>

namespace sight::sim {
namespace {

// Paper Table V: visibility (fraction) of profile items per locale.
// Item order: wall, photo, friend, location, education, work, hometown.
// Locale order: TR, DE, US, IT, GB, ES, PL.
constexpr double kLocaleRates[7][kNumProfileItems] = {
    // wall  photo friend loc   edu   work  hometown
    {0.20, 0.84, 0.41, 0.36, 0.31, 0.15, 0.32},  // TR
    {0.20, 0.77, 0.46, 0.34, 0.17, 0.17, 0.34},  // DE
    {0.17, 0.89, 0.52, 0.42, 0.34, 0.18, 0.37},  // US
    {0.27, 0.92, 0.68, 0.32, 0.38, 0.14, 0.41},  // IT
    {0.12, 0.91, 0.46, 0.38, 0.25, 0.17, 0.32},  // GB
    {0.22, 0.87, 0.63, 0.37, 0.28, 0.13, 0.37},  // ES
    {0.31, 0.95, 0.72, 0.33, 0.23, 0.13, 0.31},  // PL
};

// Paper Table IV: visibility by gender.
constexpr double kMaleRates[kNumProfileItems] = {0.25, 0.88, 0.56, 0.42,
                                                 0.35, 0.20, 0.41};
constexpr double kFemaleRates[kNumProfileItems] = {0.16, 0.87, 0.47, 0.32,
                                                   0.28, 0.12, 0.30};

}  // namespace

double LocaleVisibilityRate(ProfileItem item, Locale locale) {
  size_t i = static_cast<size_t>(item);
  size_t l = static_cast<size_t>(locale);
  if (l < 7) return kLocaleRates[l][i];
  // kIN: average of the seven reported locales.
  double sum = 0.0;
  for (size_t row = 0; row < 7; ++row) sum += kLocaleRates[row][i];
  return sum / 7.0;
}

double GenderVisibilityRate(ProfileItem item, Gender gender) {
  size_t i = static_cast<size_t>(item);
  return gender == Gender::kMale ? kMaleRates[i] : kFemaleRates[i];
}

double VisibilityProbability(ProfileItem item, Gender gender, Locale locale) {
  double base = LocaleVisibilityRate(item, locale);
  double gap = GenderVisibilityRate(item, Gender::kMale) -
               GenderVisibilityRate(item, Gender::kFemale);
  double offset = gender == Gender::kMale ? gap / 2.0 : -gap / 2.0;
  return std::clamp(base + offset, 0.0, 1.0);
}

uint8_t SampleVisibilityMask(Gender gender, Locale locale, Rng* rng) {
  uint8_t mask = 0;
  for (ProfileItem item : kAllProfileItems) {
    if (rng->Bernoulli(VisibilityProbability(item, gender, locale))) {
      mask = static_cast<uint8_t>(mask |
                                  (1u << static_cast<uint8_t>(item)));
    }
  }
  return mask;
}

}  // namespace sight::sim
