#include "sim/owner_model.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace sight::sim {
namespace {

// SplitMix64-style stateless hash -> uniform double in [0, 1).
double HashUnit(uint64_t seed, uint64_t key) {
  uint64_t z = seed ^ (key * 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return static_cast<double>(z >> 11) * 0x1.0p-53;
}

uint64_t StringKey(const std::string& s) {
  // FNV-1a.
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

OwnerAttitude SampleOwnerAttitude(Rng* rng) {
  SIGHT_CHECK(rng != nullptr);
  OwnerAttitude a;
  a.base = rng->UniformDouble(0.50, 0.60);
  a.similarity_weight = rng->UniformDouble(0.35, 0.55);
  a.benefit_weight = rng->UniformDouble(0.12, 0.28);
  a.ns_scale = rng->UniformDouble(0.40, 0.55);

  // Attribute sensitivity regime (paper Table I): gender is the top
  // attribute for 34/47 owners, locale for 13/47, last name beats locale
  // for only 2/47.
  double regime = rng->UniformDouble();
  double locale_scale;
  if (regime < 0.70) {  // gender-dominated
    a.gender_bias = rng->UniformDouble(0.20, 0.35);
    locale_scale = rng->UniformDouble(0.04, 0.12);
  } else {  // locale-dominated
    a.gender_bias = rng->UniformDouble(0.04, 0.12);
    locale_scale = rng->UniformDouble(0.18, 0.30);
  }
  for (size_t l = 0; l < kNumLocales; ++l) {
    a.locale_bias[l] = rng->UniformDouble(0.0, locale_scale);
  }
  a.lastname_scale = rng->Bernoulli(0.04) ? rng->UniformDouble(0.15, 0.25)
                                          : rng->UniformDouble(0.0, 0.02);

  a.threshold_low = rng->UniformDouble(0.36, 0.44);
  a.threshold_high = rng->UniformDouble(0.60, 0.70);
  a.label_noise = rng->UniformDouble(0.02, 0.08);
  a.noise_seed = rng->Next();

  // Theta weights near the paper's Table III averages.
  ThetaWeights theta = ThetaWeights::PaperTable3();
  for (double& v : theta.values) {
    v = std::max(0.01, v + rng->Normal(0.0, 0.02));
  }
  a.theta = theta;

  // Item sensitivities around the paper's Table II average importances
  // (kAllProfileItems order: wall, photo, friend, location, education,
  // work, hometown). The large photo mean makes photos the top item for
  // roughly half the owners, as in the paper (21/47).
  const double kTable2Means[kNumProfileItems] = {0.091, 0.27,  0.13, 0.092,
                                                 0.143, 0.140, 0.11};
  double emphasis_sum = 0.0;
  for (size_t i = 0; i < kNumProfileItems; ++i) {
    a.item_emphasis[i] =
        std::max(0.005, kTable2Means[i] + rng->Normal(0.0, 0.05));
    emphasis_sum += a.item_emphasis[i];
  }
  for (double& e : a.item_emphasis) e /= emphasis_sum;

  // Confidence around the paper's 78.39 average.
  a.confidence = std::clamp(rng->Normal(78.39, 8.0), 50.0, 95.0);
  return a;
}

Result<OwnerModel> OwnerModel::Create(OwnerAttitude attitude,
                                      const ProfileTable* profiles,
                                      const VisibilityTable* visibility) {
  if (profiles == nullptr) {
    return Status::InvalidArgument("profiles table is required");
  }
  if (attitude.threshold_low >= attitude.threshold_high) {
    return Status::InvalidArgument(
        "threshold_low must be below threshold_high");
  }
  if (attitude.label_noise < 0.0 || attitude.label_noise > 1.0) {
    return Status::InvalidArgument("label_noise must be in [0, 1]");
  }
  SIGHT_RETURN_IF_ERROR(attitude.theta.Validate());
  // Attitudes built by hand (zero-initialized emphasis) fall back to the
  // paper's Table II averages.
  double emphasis_sum = 0.0;
  for (double e : attitude.item_emphasis) {
    if (e < 0.0) {
      return Status::InvalidArgument("item_emphasis must be non-negative");
    }
    emphasis_sum += e;
  }
  if (emphasis_sum <= 0.0) {
    const double kTable2Means[kNumProfileItems] = {
        0.091, 0.27, 0.13, 0.092, 0.143, 0.140, 0.11};
    for (size_t i = 0; i < kNumProfileItems; ++i) {
      attitude.item_emphasis[i] = kTable2Means[i];
    }
  }
  return OwnerModel(attitude, profiles, visibility);
}

double OwnerModel::Score(UserId stranger, double similarity,
                         double benefit) const {
  const Profile& p = profiles_->Get(stranger);
  double score = attitude_.base;

  const std::string& gender =
      p.value(static_cast<AttributeId>(FacebookAttribute::kGender));
  if (gender == GenderName(Gender::kMale)) score += attitude_.gender_bias;

  const std::string& locale_code =
      p.value(static_cast<AttributeId>(FacebookAttribute::kLocale));
  auto locale = LocaleFromCode(locale_code);
  if (locale.ok()) {
    score += attitude_.locale_bias[static_cast<size_t>(locale.value())];
  }

  const std::string& last_name =
      p.value(static_cast<AttributeId>(FacebookAttribute::kLastName));
  if (!last_name.empty()) {
    score += attitude_.lastname_scale *
             HashUnit(attitude_.noise_seed ^ 0x5157a11eULL,
                      StringKey(last_name));
  }

  double sim_term = attitude_.ns_scale > 0.0
                        ? std::min(1.0, similarity / attitude_.ns_scale)
                        : similarity;
  score -= attitude_.similarity_weight * sim_term;

  // Benefit: part reaction to the displayed aggregate, part reaction to
  // which specific items are exposed (the Table II effect). The displayed
  // benefit is theta-weighted over 7 items, so x7 renormalizes to [0, 1].
  double displayed_term = std::min(1.0, benefit * 7.0);
  if (visibility_ == nullptr) {
    score -= attitude_.benefit_weight * displayed_term;
  } else {
    double item_term = 0.0;
    for (size_t i = 0; i < kNumProfileItems; ++i) {
      if (visibility_->IsVisible(stranger, kAllProfileItems[i])) {
        item_term += attitude_.item_emphasis[i];
      }
    }
    score -= attitude_.benefit_weight *
             (0.3 * displayed_term + 0.7 * item_term);
  }
  return score;
}

RiskLabel OwnerModel::TrueLabel(UserId stranger, double similarity,
                                double benefit) const {
  double score = Score(stranger, similarity, benefit);
  int label;
  if (score < attitude_.threshold_low) {
    label = static_cast<int>(RiskLabel::kNotRisky);
  } else if (score < attitude_.threshold_high) {
    label = static_cast<int>(RiskLabel::kRisky);
  } else {
    label = static_cast<int>(RiskLabel::kVeryRisky);
  }

  // Deterministic per-stranger noise: with probability label_noise the
  // owner answers one level off (direction from a second hash bit).
  double u = HashUnit(attitude_.noise_seed, stranger);
  if (u < attitude_.label_noise) {
    double dir = HashUnit(attitude_.noise_seed ^ 0xd1f7ULL, stranger);
    label += dir < 0.5 ? -1 : 1;
    label = std::clamp(label, kRiskLabelMin, kRiskLabelMax);
  }
  return static_cast<RiskLabel>(label);
}

RiskLabel OwnerModel::QueryLabel(UserId stranger, double similarity,
                                 double benefit) {
  ++num_queries_;
  return TrueLabel(stranger, similarity, benefit);
}

}  // namespace sight::sim
