// Twitter-like dataset generator (the paper's Section VI "data sets
// coming from different social networks" direction, and its own Section
// II heterophily example).
//
// Structural contrast with the Facebook generator:
//   * relationships are mutual follows; a handful of *celebrity* hubs are
//     followed by a large share of the population, so most mutual-friend
//     sets run through hubs whose followers are not interconnected — NS
//     is even more skewed toward zero than on Facebook;
//   * profiles are mostly public (heterophily: people follow accounts
//     very unlike themselves because the content is the benefit), so
//     benefit values are high across the board;
//   * the schema is completely different ({verified, language,
//     account_age, activity}), exercising the pipeline's schema
//     independence end to end.

#ifndef SIGHT_SIM_TWITTER_GENERATOR_H_
#define SIGHT_SIM_TWITTER_GENERATOR_H_

#include "graph/profile.h"
#include "sim/facebook_generator.h"
#include "util/random.h"
#include "util/status.h"

namespace sight::sim {

/// {verified, language, account_age, activity}.
ProfileSchema TwitterSchema();

/// Attribute order of TwitterSchema().
enum class TwitterAttribute : uint8_t {
  kVerified = 0,
  kLanguage = 1,
  kAccountAge = 2,
  kActivity = 3,
};

struct TwitterGeneratorConfig {
  /// Accounts the owner mutually follows.
  size_t num_followed = 120;
  /// Two-hop strangers to generate.
  size_t num_strangers = 600;
  /// Celebrity hubs: followed by a large share of everyone.
  size_t num_celebrities = 6;
  /// Probability that a followed account is a celebrity hub.
  double celebrity_follow_prob = 0.3;
  /// Probability a non-hub followed account shares the owner's language.
  double same_language_prob = 0.5;
  double verified_fraction = 0.08;

  [[nodiscard]] Status Validate() const;
};

/// Generates an OwnerDataset whose profiles use TwitterSchema(). The
/// owner's "friends" are the mutually-followed accounts; strangers are
/// accounts mutually followed by those.
class TwitterGenerator {
 public:
  [[nodiscard]]
  static Result<TwitterGenerator> Create(TwitterGeneratorConfig config);

  [[nodiscard]] Result<OwnerDataset> Generate(Rng* rng) const;

  const TwitterGeneratorConfig& config() const { return config_; }

 private:
  explicit TwitterGenerator(TwitterGeneratorConfig config)
      : config_(config) {}

  TwitterGeneratorConfig config_;
};

}  // namespace sight::sim

#endif  // SIGHT_SIM_TWITTER_GENERATOR_H_
