#include "sim/crawler.h"

#include "graph/algorithms.h"
#include "util/logging.h"

namespace sight::sim {

Result<Crawler> Crawler::Create(const SocialGraph& graph, UserId owner,
                                CrawlerConfig config, Rng* rng) {
  if (config.batch_size == 0) {
    return Status::InvalidArgument("batch_size must be positive");
  }
  if (rng == nullptr) {
    return Status::InvalidArgument("rng is required");
  }
  SIGHT_ASSIGN_OR_RETURN(std::vector<UserId> strangers,
                         TwoHopStrangers(graph, owner));

  // Weighted sampling without replacement: strangers with more mutual
  // friends tend to be discovered earlier.
  std::vector<double> weights;
  weights.reserve(strangers.size());
  for (UserId s : strangers) {
    weights.push_back(
        static_cast<double>(MutualFriendCount(graph, owner, s)));
  }
  std::vector<UserId> order;
  order.reserve(strangers.size());
  std::vector<bool> taken(strangers.size(), false);
  for (size_t step = 0; step < strangers.size(); ++step) {
    // Weights of already-taken strangers are zeroed; all weights here are
    // >= 1 (a two-hop stranger has at least one mutual friend).
    size_t pick = rng->WeightedIndex(weights);
    SIGHT_CHECK(!taken[pick]);
    taken[pick] = true;
    order.push_back(strangers[pick]);
    weights[pick] = 0.0;
  }
  return Crawler(std::move(order), config);
}

std::vector<UserId> Crawler::Tick() {
  std::vector<UserId> batch;
  size_t end = std::min(next_ + config_.batch_size, order_.size());
  batch.reserve(end - next_);
  while (next_ < end) {
    batch.push_back(order_[next_]);
    discovered_.push_back(order_[next_]);
    ++next_;
  }
  return batch;
}

}  // namespace sight::sim
