// Simulated owner risk attitude — the oracle that stands in for the 47
// human study participants (see DESIGN.md §1).
//
// An OwnerAttitude is a latent scoring function
//
//   score(s) = base + gender_bias * [s is male]
//            + locale_bias(locale(s)) + lastname_bias(last_name(s))
//            - similarity_weight * min(1, ns / ns_scale)
//            - benefit_weight * (0.3 * displayed_benefit_term
//                                + 0.7 * sum_i item_emphasis_i * V_s(i))
//            + noise(s)
//
// thresholded twice into {not risky, risky, very risky}. The item-emphasis
// term models what the paper's Table II mines: owners react to *which*
// items a stranger exposes (photos most, wall least), not only to the
// aggregate benefit number the UI displays; emphases are sampled around
// the paper's Table II average importances. The population
// sampler reproduces the paper's Table I structure: for most owners gender
// dominates, for a minority locale dominates, and last name is almost
// always negligible. Noise is a deterministic per-stranger hash, so the
// oracle is consistent across repeated queries — the property active
// learning needs.

#ifndef SIGHT_SIM_OWNER_MODEL_H_
#define SIGHT_SIM_OWNER_MODEL_H_

#include <array>

#include "core/active_learner.h"
#include "core/benefit.h"
#include "core/risk_label.h"
#include "graph/profile.h"
#include "sim/schema.h"
#include "util/random.h"
#include "util/status.h"

namespace sight::sim {

/// Latent risk attitude of one simulated owner.
struct OwnerAttitude {
  double base = 0.55;
  double similarity_weight = 0.45;
  double benefit_weight = 0.20;
  /// NS value at which the similarity discount saturates.
  double ns_scale = 0.5;
  /// Added risk for male strangers.
  double gender_bias = 0.25;
  /// Added risk per stranger locale.
  std::array<double, kNumLocales> locale_bias{};
  /// Scale of the (hash-derived) per-last-name risk offset.
  double lastname_scale = 0.01;
  /// Risk thresholds: score < low -> not risky; < high -> risky;
  /// otherwise very risky.
  double threshold_low = 0.40;
  double threshold_high = 0.65;
  /// Probability that a label is perturbed by one level.
  double label_noise = 0.05;
  /// Seed of the per-stranger deterministic noise stream.
  uint64_t noise_seed = 1;

  /// Per-item sensitivity of the owner's risk judgment to the stranger's
  /// visible items, summing to ~1 (sampled around the paper's Table II
  /// averages: photo-heavy, wall-light). Used only when the model is given
  /// a VisibilityTable.
  std::array<double, kNumProfileItems> item_emphasis{};

  /// The owner's self-reported theta benefit weights (around the paper's
  /// Table III averages).
  ThetaWeights theta = ThetaWeights::PaperTable3();
  /// The owner's stopping confidence c (paper average: 78.39).
  double confidence = 78.39;
};

/// Draws an attitude with the paper's population structure: ~70% of owners
/// gender-dominated, ~26% locale-dominated, ~4% last-name-sensitive.
OwnerAttitude SampleOwnerAttitude(Rng* rng);

/// LabelOracle backed by an OwnerAttitude and the stranger profiles.
class OwnerModel : public LabelOracle {
 public:
  /// `profiles` (and `visibility`, when given) must outlive the model.
  /// Without a visibility table the owner judges benefits only through the
  /// displayed aggregate value; with one, the per-item emphasis term is
  /// active (needed to reproduce Table II).
  [[nodiscard]]
  static Result<OwnerModel> Create(OwnerAttitude attitude,
                                   const ProfileTable* profiles,
                                   const VisibilityTable* visibility = nullptr);

  /// Deterministic risk label for `stranger` given the displayed
  /// similarity/benefit values.
  RiskLabel QueryLabel(UserId stranger, double similarity,
                       double benefit) override;

  /// Same scoring, const (used by benches to compute ground truth for the
  /// full stranger set without counting as owner effort).
  RiskLabel TrueLabel(UserId stranger, double similarity,
                      double benefit) const;

  /// Latent score before thresholding (exposed for tests).
  double Score(UserId stranger, double similarity, double benefit) const;

  const OwnerAttitude& attitude() const { return attitude_; }
  size_t num_queries() const { return num_queries_; }

 private:
  OwnerModel(OwnerAttitude attitude, const ProfileTable* profiles,
             const VisibilityTable* visibility)
      : attitude_(attitude), profiles_(profiles), visibility_(visibility) {}

  OwnerAttitude attitude_;
  const ProfileTable* profiles_;
  const VisibilityTable* visibility_;
  size_t num_queries_ = 0;
};

}  // namespace sight::sim

#endif  // SIGHT_SIM_OWNER_MODEL_H_
