// Synthetic owner-centric Facebook dataset generator.
//
// Substitute for the paper's crawled Facebook data (see DESIGN.md §1).
// For one owner it generates an ego network:
//
//   * the owner and ~num_friends friends, partitioned into communities
//     (hometown/school/work circles) with dense intra-community edges —
//     these edges drive the density term of NS;
//   * ~num_strangers friends-of-friends; each stranger attaches to m
//     mutual friends inside one community, with m following a Zipf law
//     capped at max_mutual_friends — most strangers share one mutual
//     friend, few share many, reproducing the skewed NSG distribution of
//     the paper's Fig. 4;
//   * locale/gender-conditioned categorical profiles (homophily: friends
//     and community strangers mostly share the owner's locale);
//   * per-item visibility masks sampled from the paper's own Table IV/V
//     statistics.

#ifndef SIGHT_SIM_FACEBOOK_GENERATOR_H_
#define SIGHT_SIM_FACEBOOK_GENERATOR_H_

#include <vector>

#include "graph/profile.h"
#include "graph/social_graph.h"
#include "graph/types.h"
#include "graph/visibility.h"
#include "sim/schema.h"
#include "util/random.h"
#include "util/status.h"

namespace sight::sim {

/// Gender/locale of one study participant.
struct OwnerSpec {
  Gender gender = Gender::kMale;
  Locale locale = Locale::kTR;
};

/// The paper's 47-owner population (Section IV-A): 32 male / 15 female;
/// 17 TR, 5 IT, 9 US, 1 IN, 7 PL, and the 8 whose locale the paper leaves
/// unreported filled with DE/GB/ES.
std::vector<OwnerSpec> PaperOwnerPopulation();

struct GeneratorConfig {
  /// Owner's friend count (Facebook's classic average is ~130).
  size_t num_friends = 130;
  /// Strangers to generate (the paper's owners average 3,661; benches
  /// default lower for wall-clock reasons and note the scale).
  size_t num_strangers = 800;
  /// Friend communities (school, work, hometown circles).
  size_t num_communities = 8;
  /// Edge probability between friends of the same community.
  double intra_community_edge_prob = 0.25;
  /// Edge probability between friends of different communities.
  double inter_community_edge_prob = 0.01;
  /// Probability a friend shares the owner's locale (homophily).
  double same_locale_friend_prob = 0.65;
  /// Probability a community keeps the owner's locale as its own.
  double community_same_locale_prob = 0.6;
  /// Probability a stranger takes its community's locale.
  double same_locale_stranger_prob = 0.75;
  double male_fraction = 0.6;
  /// Cap on a stranger's mutual friends (paper: "more than 40" observed).
  size_t max_mutual_friends = 40;
  /// Zipf exponent of the mutual-friend-count distribution (larger =
  /// more strangers with a single mutual friend).
  double mutual_zipf_exponent = 1.6;

  [[nodiscard]] Status Validate() const;
};

/// A generated ego network plus its side tables.
struct OwnerDataset {
  SocialGraph graph;
  ProfileTable profiles;
  VisibilityTable visibility;
  UserId owner = kInvalidUser;
  std::vector<UserId> friends;
  /// Exactly the two-hop strangers of `owner` (verified post-generation).
  std::vector<UserId> strangers;

  OwnerDataset() : profiles(FacebookSchema()) {}
};

class FacebookGenerator {
 public:
  [[nodiscard]] static Result<FacebookGenerator> Create(GeneratorConfig config);

  /// Generates a dataset for one owner. Deterministic given the Rng state.
  [[nodiscard]]
  Result<OwnerDataset> Generate(const OwnerSpec& owner_spec, Rng* rng) const;

  const GeneratorConfig& config() const { return config_; }

 private:
  explicit FacebookGenerator(GeneratorConfig config)
      : config_(config) {}

  GeneratorConfig config_;
  ValueDistributions dists_;
};

}  // namespace sight::sim

#endif  // SIGHT_SIM_FACEBOOK_GENERATOR_H_
