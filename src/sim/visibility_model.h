// Visibility sampling calibrated to the paper's own measurements.
//
// The paper reports item visibility by gender (Table IV) and by locale
// (Table V). We use those percentages as *generation parameters*: a
// stranger's item visibility is Bernoulli with probability
//
//   p(item, gender, locale) = clamp01(locale_rate(item, locale)
//                                     + gender_offset(item, gender))
//
// where the gender offset is +/- half the male-female gap of Table IV.
// The Table IV/V reproduction benches then validate the full pipeline by
// measuring these same statistics back from the generated population.

#ifndef SIGHT_SIM_VISIBILITY_MODEL_H_
#define SIGHT_SIM_VISIBILITY_MODEL_H_

#include <array>

#include "graph/visibility.h"
#include "sim/schema.h"
#include "util/random.h"

namespace sight::sim {

/// Table V rate (fraction in [0,1]) for an item/locale pair. Locale kIN is
/// not in the paper's table; it uses the seven-locale average.
double LocaleVisibilityRate(ProfileItem item, Locale locale);

/// Table IV rates by gender.
double GenderVisibilityRate(ProfileItem item, Gender gender);

/// Combined generation probability (locale base + gender offset), clamped
/// to [0, 1].
double VisibilityProbability(ProfileItem item, Gender gender, Locale locale);

/// Samples a full 7-item visibility mask for a stranger.
uint8_t SampleVisibilityMask(Gender gender, Locale locale, Rng* rng);

}  // namespace sight::sim

#endif  // SIGHT_SIM_VISIBILITY_MODEL_H_
