// CSV persistence for collected owner labels, so an interrupted labeling
// session (e.g. sight_cli assess --interactive) resumes where it stopped.
//
// Format: header `stranger,label`; label is the numeric value 1..3.

#ifndef SIGHT_IO_LABELS_IO_H_
#define SIGHT_IO_LABELS_IO_H_

#include <istream>
#include <ostream>
#include <string>

#include "core/active_learner.h"
#include "util/status.h"

namespace sight::io {

[[nodiscard]]
Status SaveKnownLabels(const PoolLearner::KnownLabels& labels,
                       std::ostream* out);

[[nodiscard]]
Result<PoolLearner::KnownLabels> LoadKnownLabels(std::istream* in);

[[nodiscard]]
Status SaveKnownLabelsToFile(const PoolLearner::KnownLabels& labels,
                             const std::string& path);
[[nodiscard]]
Result<PoolLearner::KnownLabels> LoadKnownLabelsFromFile(
    const std::string& path);

}  // namespace sight::io

#endif  // SIGHT_IO_LABELS_IO_H_
