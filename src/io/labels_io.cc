#include "io/labels_io.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <vector>

#include "core/risk_label.h"
#include "util/csv.h"
#include "util/string_util.h"

namespace sight::io {

Status SaveKnownLabels(const PoolLearner::KnownLabels& labels,
                       std::ostream* out) {
  if (out == nullptr) return Status::InvalidArgument("output is required");
  CsvWriter writer({"stranger", "label"});
  // Deterministic output order.
  std::vector<std::pair<UserId, double>> sorted(labels.begin(), labels.end());
  std::sort(sorted.begin(), sorted.end());
  for (const auto& [stranger, value] : sorted) {
    writer.AddRow({StrFormat("%u", stranger),
                   StrFormat("%d", static_cast<int>(value))});
  }
  writer.Write(*out);
  if (!out->good()) return Status::Internal("labels write failed");
  return Status::OK();
}

Result<PoolLearner::KnownLabels> LoadKnownLabels(std::istream* in) {
  if (in == nullptr) return Status::InvalidArgument("input is required");
  CsvReader reader(in);
  std::vector<std::string> record;
  if (!reader.Next(&record)) {
    SIGHT_RETURN_IF_ERROR(reader.status());
    return Status::InvalidArgument("empty labels CSV");
  }
  if (record != std::vector<std::string>{"stranger", "label"}) {
    return Status::InvalidArgument(
        "labels CSV header must be 'stranger,label'");
  }
  PoolLearner::KnownLabels labels;
  while (reader.Next(&record)) {
    if (record.size() == 1 && record[0].empty()) continue;
    if (record.size() != 2) {
      return Status::InvalidArgument(StrFormat(
          "labels row %zu has %zu fields, expected 2",
          reader.records_read(), record.size()));
    }
    char* end = nullptr;
    unsigned long long stranger = std::strtoull(record[0].c_str(), &end, 10);
    if (record[0].empty() || end == nullptr || *end != '\0' ||
        stranger >= kInvalidUser) {
      return Status::InvalidArgument(
          StrFormat("bad stranger id '%s'", record[0].c_str()));
    }
    long value = std::strtol(record[1].c_str(), &end, 10);
    if (record[1].empty() || end == nullptr || *end != '\0' ||
        value < kRiskLabelMin || value > kRiskLabelMax) {
      return Status::OutOfRange(
          StrFormat("bad label '%s' (must be %d..%d)", record[1].c_str(),
                    kRiskLabelMin, kRiskLabelMax));
    }
    labels[static_cast<UserId>(stranger)] = static_cast<double>(value);
  }
  SIGHT_RETURN_IF_ERROR(reader.status());
  return labels;
}

Status SaveKnownLabelsToFile(const PoolLearner::KnownLabels& labels,
                             const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::NotFound(StrFormat("cannot open '%s'", path.c_str()));
  }
  return SaveKnownLabels(labels, &out);
}

Result<PoolLearner::KnownLabels> LoadKnownLabelsFromFile(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound(StrFormat("cannot open '%s'", path.c_str()));
  }
  return LoadKnownLabels(&in);
}

}  // namespace sight::io
