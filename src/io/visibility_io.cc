#include "io/visibility_io.h"

#include <cstdlib>
#include <fstream>

#include "util/csv.h"
#include "util/string_util.h"

namespace sight::io {

Status SaveVisibility(const VisibilityTable& visibility,
                      UserId user_id_bound, std::ostream* out) {
  if (out == nullptr) return Status::InvalidArgument("output is required");
  std::vector<std::string> header = {"user_id"};
  for (ProfileItem item : kAllProfileItems) {
    header.push_back(ProfileItemName(item));
  }
  CsvWriter writer(header);
  for (UserId u = 0; u < user_id_bound; ++u) {
    if (visibility.Mask(u) == 0) continue;
    std::vector<std::string> row = {StrFormat("%u", u)};
    for (ProfileItem item : kAllProfileItems) {
      row.push_back(visibility.IsVisible(u, item) ? "1" : "0");
    }
    writer.AddRow(std::move(row));
  }
  writer.Write(*out);
  if (!out->good()) return Status::Internal("visibility write failed");
  return Status::OK();
}

Result<VisibilityTable> LoadVisibility(std::istream* in) {
  if (in == nullptr) return Status::InvalidArgument("input is required");
  CsvReader reader(in);
  std::vector<std::string> record;
  if (!reader.Next(&record)) {
    SIGHT_RETURN_IF_ERROR(reader.status());
    return Status::InvalidArgument("empty visibility CSV");
  }
  if (record.size() != kNumProfileItems + 1 || record[0] != "user_id") {
    return Status::InvalidArgument(
        "visibility CSV header must be user_id plus the seven items");
  }
  // Header order defines the item per column (any permutation accepted).
  std::vector<ProfileItem> column_items;
  for (size_t i = 1; i < record.size(); ++i) {
    SIGHT_ASSIGN_OR_RETURN(ProfileItem item, ProfileItemFromName(record[i]));
    column_items.push_back(item);
  }

  VisibilityTable table;
  while (reader.Next(&record)) {
    if (record.size() == 1 && record[0].empty()) continue;
    if (record.size() != kNumProfileItems + 1) {
      return Status::InvalidArgument(StrFormat(
          "visibility row %zu has %zu fields, expected %zu",
          reader.records_read(), record.size(), kNumProfileItems + 1));
    }
    char* end = nullptr;
    unsigned long long user = std::strtoull(record[0].c_str(), &end, 10);
    if (record[0].empty() || end == nullptr || *end != '\0' ||
        user >= kInvalidUser) {
      return Status::InvalidArgument(
          StrFormat("bad user_id '%s'", record[0].c_str()));
    }
    for (size_t i = 0; i < kNumProfileItems; ++i) {
      const std::string& cell = record[i + 1];
      if (cell != "0" && cell != "1") {
        return Status::InvalidArgument(StrFormat(
            "visibility cell '%s' must be 0 or 1", cell.c_str()));
      }
      table.SetVisible(static_cast<UserId>(user), column_items[i],
                       cell == "1");
    }
  }
  SIGHT_RETURN_IF_ERROR(reader.status());
  return table;
}

Status SaveVisibilityToFile(const VisibilityTable& visibility,
                            UserId user_id_bound, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::NotFound(StrFormat("cannot open '%s'", path.c_str()));
  }
  return SaveVisibility(visibility, user_id_bound, &out);
}

Result<VisibilityTable> LoadVisibilityFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound(StrFormat("cannot open '%s'", path.c_str()));
  }
  return LoadVisibility(&in);
}

}  // namespace sight::io
