#include "io/graph_io.h"

#include <fstream>
#include <sstream>

#include "util/string_util.h"

namespace sight::io {
namespace {

constexpr const char* kMagic = "sight-graph v1";

// Reads the next content line (skipping blanks and '#' comments).
bool NextContentLine(std::istream* in, std::string* line) {
  while (std::getline(*in, *line)) {
    std::string_view trimmed = Trim(*line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    *line = std::string(trimmed);
    return true;
  }
  return false;
}

}  // namespace

Status SaveGraph(const SocialGraph& graph, std::ostream* out) {
  if (out == nullptr) return Status::InvalidArgument("output is required");
  *out << kMagic << "\n";
  *out << graph.NumUsers() << " " << graph.NumEdges() << "\n";
  for (UserId u = 0; u < graph.NumUsers(); ++u) {
    for (UserId v : graph.Neighbors(u)) {
      if (v > u) *out << u << " " << v << "\n";
    }
  }
  if (!out->good()) return Status::Internal("graph write failed");
  return Status::OK();
}

Result<SocialGraph> LoadGraph(std::istream* in) {
  if (in == nullptr) return Status::InvalidArgument("input is required");
  std::string line;
  if (!NextContentLine(in, &line) || line != kMagic) {
    return Status::InvalidArgument(
        StrFormat("missing '%s' header", kMagic));
  }
  if (!NextContentLine(in, &line)) {
    return Status::InvalidArgument("missing user/edge counts");
  }
  size_t num_users = 0;
  size_t num_edges = 0;
  {
    std::istringstream counts(line);
    if (!(counts >> num_users >> num_edges)) {
      return Status::InvalidArgument(
          StrFormat("bad counts line: '%s'", line.c_str()));
    }
  }

  SocialGraph graph(num_users);
  size_t edges_read = 0;
  while (NextContentLine(in, &line)) {
    std::istringstream edge(line);
    uint64_t a = 0;
    uint64_t b = 0;
    if (!(edge >> a >> b)) {
      return Status::InvalidArgument(
          StrFormat("bad edge line: '%s'", line.c_str()));
    }
    if (a >= num_users || b >= num_users) {
      return Status::OutOfRange(StrFormat(
          "edge (%llu, %llu) references user >= %zu",
          static_cast<unsigned long long>(a),
          static_cast<unsigned long long>(b), num_users));
    }
    SIGHT_RETURN_IF_ERROR(
        graph.AddEdge(static_cast<UserId>(a), static_cast<UserId>(b)));
    ++edges_read;
  }
  if (edges_read != num_edges) {
    return Status::InvalidArgument(
        StrFormat("expected %zu edges, found %zu", num_edges, edges_read));
  }
  return graph;
}

Status SaveGraphToFile(const SocialGraph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::NotFound(StrFormat("cannot open '%s'", path.c_str()));
  }
  return SaveGraph(graph, &out);
}

Result<SocialGraph> LoadGraphFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound(StrFormat("cannot open '%s'", path.c_str()));
  }
  return LoadGraph(&in);
}

}  // namespace sight::io
