// Directory-level save/load of a full OwnerDataset.
//
// Layout:
//   <dir>/graph.txt        (io/graph_io.h format)
//   <dir>/profiles.csv     (io/profile_io.h format)
//   <dir>/visibility.csv   (io/visibility_io.h format)
//   <dir>/meta.txt         ("owner <id>")
//
// This is the bring-your-own-data entry point: export your network into
// these three files and the whole pipeline runs on it.

#ifndef SIGHT_IO_DATASET_IO_H_
#define SIGHT_IO_DATASET_IO_H_

#include <string>

#include "sim/facebook_generator.h"
#include "util/status.h"

namespace sight::io {

/// Creates `dir` if needed and writes the four files.
[[nodiscard]]
Status SaveOwnerDataset(const sim::OwnerDataset& dataset,
                        const std::string& dir);

/// Loads a dataset; friends/strangers are recomputed from the graph.
[[nodiscard]]
Result<sim::OwnerDataset> LoadOwnerDataset(const std::string& dir);

}  // namespace sight::io

#endif  // SIGHT_IO_DATASET_IO_H_
