// CSV serialization of VisibilityTable.
//
// Format: header `user_id,wall,photo,friend,location,education,work,
// hometown`; one row per user with at least one visible item; cells are
// 0/1. Users absent from the file are all-hidden (the table's default).

#ifndef SIGHT_IO_VISIBILITY_IO_H_
#define SIGHT_IO_VISIBILITY_IO_H_

#include <istream>
#include <ostream>
#include <string>

#include "graph/types.h"
#include "graph/visibility.h"
#include "util/status.h"

namespace sight::io {

/// `user_id_bound` limits the save scan (use graph.NumUsers()).
[[nodiscard]]
Status SaveVisibility(const VisibilityTable& visibility, UserId user_id_bound,
                      std::ostream* out);

[[nodiscard]] Result<VisibilityTable> LoadVisibility(std::istream* in);

[[nodiscard]]
Status SaveVisibilityToFile(const VisibilityTable& visibility,
                            UserId user_id_bound, const std::string& path);
[[nodiscard]]
Result<VisibilityTable> LoadVisibilityFromFile(const std::string& path);

}  // namespace sight::io

#endif  // SIGHT_IO_VISIBILITY_IO_H_
