#include "io/profile_io.h"

#include <cstdlib>
#include <fstream>

#include "util/csv.h"
#include "util/string_util.h"

namespace sight::io {
namespace {

// Parses a non-negative integer user id; rejects junk.
Result<UserId> ParseUserId(const std::string& field) {
  if (field.empty()) {
    return Status::InvalidArgument("empty user_id field");
  }
  char* end = nullptr;
  unsigned long long value = std::strtoull(field.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') {
    return Status::InvalidArgument(
        StrFormat("bad user_id '%s'", field.c_str()));
  }
  if (value >= kInvalidUser) {
    return Status::OutOfRange(
        StrFormat("user_id %llu too large", value));
  }
  return static_cast<UserId>(value);
}

}  // namespace

Status SaveProfiles(const ProfileTable& profiles, std::ostream* out) {
  if (out == nullptr) return Status::InvalidArgument("output is required");
  std::vector<std::string> header = {"user_id"};
  for (const std::string& name : profiles.schema().names()) {
    header.push_back(name);
  }
  CsvWriter writer(header);
  for (UserId u = 0; u < profiles.user_id_bound(); ++u) {
    if (!profiles.Has(u)) continue;
    std::vector<std::string> row = {StrFormat("%u", u)};
    const Profile& p = profiles.Get(u);
    for (const std::string& value : p.values) row.push_back(value);
    writer.AddRow(std::move(row));
  }
  writer.Write(*out);
  if (!out->good()) return Status::Internal("profile write failed");
  return Status::OK();
}

Result<ProfileTable> LoadProfiles(std::istream* in) {
  if (in == nullptr) return Status::InvalidArgument("input is required");
  CsvReader reader(in);
  std::vector<std::string> record;
  if (!reader.Next(&record)) {
    SIGHT_RETURN_IF_ERROR(reader.status());
    return Status::InvalidArgument("empty profile CSV");
  }
  if (record.empty() || record[0] != "user_id") {
    return Status::InvalidArgument(
        "profile CSV header must start with 'user_id'");
  }
  std::vector<std::string> attr_names(record.begin() + 1, record.end());
  SIGHT_ASSIGN_OR_RETURN(ProfileSchema schema,
                         ProfileSchema::Create(attr_names));
  ProfileTable table(std::move(schema));

  while (reader.Next(&record)) {
    if (record.size() == 1 && record[0].empty()) continue;  // blank line
    if (record.size() != attr_names.size() + 1) {
      return Status::InvalidArgument(StrFormat(
          "profile row %zu has %zu fields, expected %zu",
          reader.records_read(), record.size(), attr_names.size() + 1));
    }
    SIGHT_ASSIGN_OR_RETURN(UserId user, ParseUserId(record[0]));
    Profile profile;
    profile.values.assign(record.begin() + 1, record.end());
    SIGHT_RETURN_IF_ERROR(table.Set(user, std::move(profile)));
  }
  SIGHT_RETURN_IF_ERROR(reader.status());
  return table;
}

Status SaveProfilesToFile(const ProfileTable& profiles,
                          const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::NotFound(StrFormat("cannot open '%s'", path.c_str()));
  }
  return SaveProfiles(profiles, &out);
}

Result<ProfileTable> LoadProfilesFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound(StrFormat("cannot open '%s'", path.c_str()));
  }
  return LoadProfiles(&in);
}

}  // namespace sight::io
