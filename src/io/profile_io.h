// CSV serialization of ProfileTable.
//
// Format: RFC 4180 CSV whose header is `user_id,<attr1>,<attr2>,...`
// (the header defines the schema); one row per user with a profile.
// Missing attribute values are empty fields.

#ifndef SIGHT_IO_PROFILE_IO_H_
#define SIGHT_IO_PROFILE_IO_H_

#include <istream>
#include <ostream>
#include <string>

#include "graph/profile.h"
#include "util/status.h"

namespace sight::io {

[[nodiscard]]
Status SaveProfiles(const ProfileTable& profiles, std::ostream* out);

[[nodiscard]] Result<ProfileTable> LoadProfiles(std::istream* in);

[[nodiscard]]
Status SaveProfilesToFile(const ProfileTable& profiles,
                          const std::string& path);
[[nodiscard]]
Result<ProfileTable> LoadProfilesFromFile(const std::string& path);

}  // namespace sight::io

#endif  // SIGHT_IO_PROFILE_IO_H_
