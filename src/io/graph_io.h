// Text serialization of SocialGraph.
//
// Format (line-oriented, '#' comments allowed):
//
//   sight-graph v1
//   <num_users> <num_edges>
//   <a> <b>          # one undirected edge per line, any order
//
// The loader validates the header, user-id ranges, self-loops, duplicate
// edges, and the edge count.

#ifndef SIGHT_IO_GRAPH_IO_H_
#define SIGHT_IO_GRAPH_IO_H_

#include <istream>
#include <ostream>
#include <string>

#include "graph/social_graph.h"
#include "util/status.h"

namespace sight::io {

[[nodiscard]] Status SaveGraph(const SocialGraph& graph, std::ostream* out);

[[nodiscard]] Result<SocialGraph> LoadGraph(std::istream* in);

/// File-path conveniences.
[[nodiscard]]
Status SaveGraphToFile(const SocialGraph& graph, const std::string& path);
[[nodiscard]] Result<SocialGraph> LoadGraphFromFile(const std::string& path);

}  // namespace sight::io

#endif  // SIGHT_IO_GRAPH_IO_H_
