#include "io/dataset_io.h"

#include <filesystem>
#include <fstream>

#include "graph/algorithms.h"
#include "io/graph_io.h"
#include "io/profile_io.h"
#include "io/visibility_io.h"
#include "util/string_util.h"

namespace sight::io {
namespace fs = std::filesystem;

Status SaveOwnerDataset(const sim::OwnerDataset& dataset,
                        const std::string& dir) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::Internal(
        StrFormat("cannot create '%s': %s", dir.c_str(),
                  ec.message().c_str()));
  }
  SIGHT_RETURN_IF_ERROR(
      SaveGraphToFile(dataset.graph, (fs::path(dir) / "graph.txt").string()));
  SIGHT_RETURN_IF_ERROR(SaveProfilesToFile(
      dataset.profiles, (fs::path(dir) / "profiles.csv").string()));
  SIGHT_RETURN_IF_ERROR(SaveVisibilityToFile(
      dataset.visibility, static_cast<UserId>(dataset.graph.NumUsers()),
      (fs::path(dir) / "visibility.csv").string()));

  std::ofstream meta((fs::path(dir) / "meta.txt").string());
  if (!meta) return Status::Internal("cannot write meta.txt");
  meta << "owner " << dataset.owner << "\n";
  if (!meta.good()) return Status::Internal("meta write failed");
  return Status::OK();
}

Result<sim::OwnerDataset> LoadOwnerDataset(const std::string& dir) {
  sim::OwnerDataset dataset;
  SIGHT_ASSIGN_OR_RETURN(
      dataset.graph,
      LoadGraphFromFile((fs::path(dir) / "graph.txt").string()));
  SIGHT_ASSIGN_OR_RETURN(
      dataset.profiles,
      LoadProfilesFromFile((fs::path(dir) / "profiles.csv").string()));
  SIGHT_ASSIGN_OR_RETURN(
      dataset.visibility,
      LoadVisibilityFromFile((fs::path(dir) / "visibility.csv").string()));

  std::ifstream meta((fs::path(dir) / "meta.txt").string());
  if (!meta) return Status::NotFound("missing meta.txt");
  std::string key;
  uint64_t owner = 0;
  if (!(meta >> key >> owner) || key != "owner") {
    return Status::InvalidArgument("meta.txt must contain 'owner <id>'");
  }
  if (owner >= dataset.graph.NumUsers()) {
    return Status::OutOfRange(StrFormat(
        "owner %llu not in graph of %zu users",
        static_cast<unsigned long long>(owner), dataset.graph.NumUsers()));
  }
  dataset.owner = static_cast<UserId>(owner);
  dataset.friends = dataset.graph.Neighbors(dataset.owner);
  SIGHT_ASSIGN_OR_RETURN(dataset.strangers,
                         TwoHopStrangers(dataset.graph, dataset.owner));
  return dataset;
}

}  // namespace sight::io
