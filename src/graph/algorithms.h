// Structural graph algorithms used by the risk pipeline.
//
// Everything here operates on a const SocialGraph. The heavy hitters are
// MutualFriends (sorted-list intersection) and TwoHopStrangers (the paper's
// stranger set: friends-of-friends that are neither the owner nor a direct
// friend).

#ifndef SIGHT_GRAPH_ALGORITHMS_H_
#define SIGHT_GRAPH_ALGORITHMS_H_

#include <cstdint>
#include <vector>

#include "graph/social_graph.h"
#include "graph/types.h"
#include "util/status.h"

namespace sight {

/// Sorted intersection of the two users' neighbor lists.
std::vector<UserId> MutualFriends(const SocialGraph& graph, UserId a,
                                  UserId b);

/// Number of mutual friends without materializing the set.
size_t MutualFriendCount(const SocialGraph& graph, UserId a, UserId b);

/// Number of edges of `graph` whose endpoints are both in `users`
/// (`users` must be sorted and duplicate-free).
size_t InducedEdgeCount(const SocialGraph& graph,
                        const std::vector<UserId>& users);

/// Edge density of the induced subgraph: edges / (n choose 2).
/// Defined as 0 for fewer than two vertices.
double InducedDensity(const SocialGraph& graph,
                      const std::vector<UserId>& users);

/// The paper's strangers of `owner`: every user at exactly distance 2
/// (a friend of a friend that is neither the owner nor one of the owner's
/// friends). Sorted ascending. Error for unknown owner.
[[nodiscard]]
Result<std::vector<UserId>> TwoHopStrangers(const SocialGraph& graph,
                                            UserId owner);

/// BFS hop distances from `source`; unreachable = SIZE_MAX.
[[nodiscard]]
Result<std::vector<size_t>> BfsDistances(const SocialGraph& graph,
                                         UserId source);

/// Local clustering coefficient of `u` (0 for degree < 2).
double LocalClusteringCoefficient(const SocialGraph& graph, UserId u);

/// Mean local clustering coefficient over all users (0 for empty graph).
double AverageClusteringCoefficient(const SocialGraph& graph);

/// Degree of each user, indexed by id.
std::vector<size_t> DegreeSequence(const SocialGraph& graph);

/// Number of connected components.
size_t CountConnectedComponents(const SocialGraph& graph);

}  // namespace sight

#endif  // SIGHT_GRAPH_ALGORITHMS_H_
