#include "graph/social_graph.h"

#include <algorithm>

#include "util/logging.h"
#include "util/string_util.h"

namespace sight {
namespace {

// Inserts `value` into the sorted vector, keeping it sorted. Returns false
// if already present.
bool SortedInsert(std::vector<UserId>* v, UserId value) {
  auto it = std::lower_bound(v->begin(), v->end(), value);
  if (it != v->end() && *it == value) return false;
  v->insert(it, value);
  return true;
}

bool SortedContains(const std::vector<UserId>& v, UserId value) {
  return std::binary_search(v.begin(), v.end(), value);
}

bool SortedErase(std::vector<UserId>* v, UserId value) {
  auto it = std::lower_bound(v->begin(), v->end(), value);
  if (it == v->end() || *it != value) return false;
  v->erase(it);
  return true;
}

}  // namespace

UserId SocialGraph::AddUser() {
  adjacency_.emplace_back();
  ++mutation_epoch_;
  return static_cast<UserId>(adjacency_.size() - 1);
}

UserId SocialGraph::AddUsers(size_t count) {
  UserId first = static_cast<UserId>(adjacency_.size());
  adjacency_.resize(adjacency_.size() + count);
  if (count > 0) ++mutation_epoch_;
  return first;
}

Status SocialGraph::AddEdge(UserId a, UserId b) {
  SIGHT_ASSIGN_OR_RETURN(bool inserted, AddEdgeIfAbsent(a, b));
  if (!inserted) {
    return Status::AlreadyExists(
        StrFormat("edge {%u, %u} already exists", a, b));
  }
  return Status::OK();
}

Result<bool> SocialGraph::AddEdgeIfAbsent(UserId a, UserId b) {
  if (!HasUser(a) || !HasUser(b)) {
    return Status::InvalidArgument(
        StrFormat("edge {%u, %u} references unknown user", a, b));
  }
  if (a == b) {
    return Status::InvalidArgument(StrFormat("self-loop on user %u", a));
  }
  if (!SortedInsert(&adjacency_[a], b)) return false;
  SIGHT_CHECK(SortedInsert(&adjacency_[b], a));
  ++num_edges_;
  ++mutation_epoch_;
  return true;
}

Status SocialGraph::RemoveEdge(UserId a, UserId b) {
  if (!HasUser(a) || !HasUser(b) || a == b) {
    return Status::InvalidArgument(
        StrFormat("edge {%u, %u} is not a valid edge", a, b));
  }
  if (!SortedErase(&adjacency_[a], b)) {
    return Status::NotFound(StrFormat("edge {%u, %u} not found", a, b));
  }
  SIGHT_CHECK(SortedErase(&adjacency_[b], a));
  --num_edges_;
  ++mutation_epoch_;
  return Status::OK();
}

bool SocialGraph::HasEdge(UserId a, UserId b) const {
  if (!HasUser(a) || !HasUser(b)) return false;
  // Search the smaller adjacency list.
  if (adjacency_[a].size() > adjacency_[b].size()) std::swap(a, b);
  return SortedContains(adjacency_[a], b);
}

const std::vector<UserId>& SocialGraph::Neighbors(UserId u) const {
  SIGHT_CHECK(HasUser(u));
  return adjacency_[u];
}

size_t SocialGraph::Degree(UserId u) const {
  SIGHT_CHECK(HasUser(u));
  return adjacency_[u].size();
}

}  // namespace sight
