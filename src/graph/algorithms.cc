#include "graph/algorithms.h"

#include <algorithm>
#include <deque>
#include <limits>

#include "util/logging.h"
#include "util/string_util.h"

namespace sight {

std::vector<UserId> MutualFriends(const SocialGraph& graph, UserId a,
                                  UserId b) {
  std::vector<UserId> result;
  if (!graph.HasUser(a) || !graph.HasUser(b)) return result;
  const auto& na = graph.Neighbors(a);
  const auto& nb = graph.Neighbors(b);
  result.reserve(std::min(na.size(), nb.size()));
  std::set_intersection(na.begin(), na.end(), nb.begin(), nb.end(),
                        std::back_inserter(result));
  return result;
}

size_t MutualFriendCount(const SocialGraph& graph, UserId a, UserId b) {
  if (!graph.HasUser(a) || !graph.HasUser(b)) return 0;
  const auto& na = graph.Neighbors(a);
  const auto& nb = graph.Neighbors(b);
  size_t count = 0;
  auto ia = na.begin();
  auto ib = nb.begin();
  while (ia != na.end() && ib != nb.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      ++count;
      ++ia;
      ++ib;
    }
  }
  return count;
}

size_t InducedEdgeCount(const SocialGraph& graph,
                        const std::vector<UserId>& users) {
  SIGHT_DCHECK(std::is_sorted(users.begin(), users.end()));
  size_t edges = 0;
  for (UserId u : users) {
    if (!graph.HasUser(u)) continue;
    for (UserId v : graph.Neighbors(u)) {
      if (v <= u) continue;  // count each unordered pair once
      if (std::binary_search(users.begin(), users.end(), v)) ++edges;
    }
  }
  return edges;
}

double InducedDensity(const SocialGraph& graph,
                      const std::vector<UserId>& users) {
  size_t n = users.size();
  if (n < 2) return 0.0;
  double possible = static_cast<double>(n) * static_cast<double>(n - 1) / 2.0;
  return static_cast<double>(InducedEdgeCount(graph, users)) / possible;
}

Result<std::vector<UserId>> TwoHopStrangers(const SocialGraph& graph,
                                            UserId owner) {
  if (!graph.HasUser(owner)) {
    return Status::InvalidArgument(StrFormat("unknown owner %u", owner));
  }
  const auto& friends = graph.Neighbors(owner);
  std::vector<UserId> strangers;
  for (UserId f : friends) {
    for (UserId fof : graph.Neighbors(f)) {
      if (fof == owner) continue;
      strangers.push_back(fof);
    }
  }
  std::sort(strangers.begin(), strangers.end());
  strangers.erase(std::unique(strangers.begin(), strangers.end()),
                  strangers.end());
  // Remove direct friends (both lists sorted).
  std::vector<UserId> result;
  result.reserve(strangers.size());
  std::set_difference(strangers.begin(), strangers.end(), friends.begin(),
                      friends.end(), std::back_inserter(result));
  return result;
}

Result<std::vector<size_t>> BfsDistances(const SocialGraph& graph,
                                         UserId source) {
  if (!graph.HasUser(source)) {
    return Status::InvalidArgument(StrFormat("unknown source %u", source));
  }
  std::vector<size_t> dist(graph.NumUsers(),
                           std::numeric_limits<size_t>::max());
  std::deque<UserId> queue;
  dist[source] = 0;
  queue.push_back(source);
  while (!queue.empty()) {
    UserId u = queue.front();
    queue.pop_front();
    for (UserId v : graph.Neighbors(u)) {
      if (dist[v] != std::numeric_limits<size_t>::max()) continue;
      dist[v] = dist[u] + 1;
      queue.push_back(v);
    }
  }
  return dist;
}

double LocalClusteringCoefficient(const SocialGraph& graph, UserId u) {
  if (!graph.HasUser(u)) return 0.0;
  const auto& neighbors = graph.Neighbors(u);
  size_t k = neighbors.size();
  if (k < 2) return 0.0;
  size_t links = InducedEdgeCount(graph, neighbors);
  double possible = static_cast<double>(k) * static_cast<double>(k - 1) / 2.0;
  return static_cast<double>(links) / possible;
}

double AverageClusteringCoefficient(const SocialGraph& graph) {
  if (graph.NumUsers() == 0) return 0.0;
  double sum = 0.0;
  for (UserId u = 0; u < graph.NumUsers(); ++u) {
    sum += LocalClusteringCoefficient(graph, u);
  }
  return sum / static_cast<double>(graph.NumUsers());
}

std::vector<size_t> DegreeSequence(const SocialGraph& graph) {
  std::vector<size_t> degrees(graph.NumUsers());
  for (UserId u = 0; u < graph.NumUsers(); ++u) degrees[u] = graph.Degree(u);
  return degrees;
}

size_t CountConnectedComponents(const SocialGraph& graph) {
  size_t components = 0;
  std::vector<bool> visited(graph.NumUsers(), false);
  std::deque<UserId> queue;
  for (UserId start = 0; start < graph.NumUsers(); ++start) {
    if (visited[start]) continue;
    ++components;
    visited[start] = true;
    queue.push_back(start);
    while (!queue.empty()) {
      UserId u = queue.front();
      queue.pop_front();
      for (UserId v : graph.Neighbors(u)) {
        if (!visited[v]) {
          visited[v] = true;
          queue.push_back(v);
        }
      }
    }
  }
  return components;
}

}  // namespace sight
