// Categorical user profiles.
//
// OSN profiles in the paper are categorical records (gender, locale,
// last name, hometown, education, work). A ProfileSchema names the
// attributes; a ProfileTable stores one value vector per user, aligned with
// the schema. The empty string represents a missing value.

#ifndef SIGHT_GRAPH_PROFILE_H_
#define SIGHT_GRAPH_PROFILE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/types.h"
#include "util/status.h"

namespace sight {

/// Index of an attribute within a schema.
using AttributeId = uint32_t;

inline constexpr const char* kMissingValue = "";

/// Ordered, named set of categorical attributes.
class ProfileSchema {
 public:
  ProfileSchema() = default;

  /// Creates a schema from attribute names; names must be unique and
  /// non-empty.
  [[nodiscard]]
  static Result<ProfileSchema> Create(std::vector<std::string> names);

  size_t num_attributes() const { return names_.size(); }
  const std::string& name(AttributeId id) const { return names_[id]; }
  const std::vector<std::string>& names() const { return names_; }

  /// NotFound when no attribute has this name.
  [[nodiscard]]
  Result<AttributeId> FindAttribute(const std::string& name) const;

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, AttributeId> index_;
};

/// One user's attribute values, aligned with a schema (missing = "").
struct Profile {
  std::vector<std::string> values;

  bool IsMissing(AttributeId attr) const {
    return attr >= values.size() || values[attr].empty();
  }
  const std::string& value(AttributeId attr) const { return values[attr]; }
};

/// Profiles for a set of users sharing one schema.
///
/// The table does not require a profile for every graph user; absent users
/// read as all-missing profiles.
class ProfileTable {
 public:
  explicit ProfileTable(ProfileSchema schema) : schema_(std::move(schema)) {}

  const ProfileSchema& schema() const { return schema_; }

  /// Stores a profile for `user`. The value vector must match the schema
  /// arity.
  [[nodiscard]] Status Set(UserId user, Profile profile);

  /// Convenience: set a single attribute value, creating an all-missing
  /// profile on first touch.
  [[nodiscard]]
  Status SetValue(UserId user, AttributeId attr, std::string value);

  bool Has(UserId user) const;

  /// Profile for `user`; all-missing when never set.
  const Profile& Get(UserId user) const;

  /// Value of `attr` for `user` ("" when missing).
  const std::string& Value(UserId user, AttributeId attr) const;

  size_t num_profiles() const { return count_; }

  /// Exclusive upper bound on user ids that may have a profile
  /// (Has(u) is false for all u >= user_id_bound()). For iteration.
  UserId user_id_bound() const {
    return static_cast<UserId>(profiles_.size());
  }

  /// Counter bumped by every successful mutation (Set / SetValue). Caches
  /// derived from the table (encoded rows, carried partitions) record the
  /// epoch they were built at and fall back to a cold rebuild when it no
  /// longer matches.
  uint64_t mutation_epoch() const { return mutation_epoch_; }

 private:
  ProfileSchema schema_;
  std::vector<Profile> profiles_;
  std::vector<bool> present_;
  size_t count_ = 0;
  uint64_t mutation_epoch_ = 0;
  Profile missing_profile_;
};

}  // namespace sight

#endif  // SIGHT_GRAPH_PROFILE_H_
