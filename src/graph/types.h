// Fundamental identifier types for the social-graph substrate.

#ifndef SIGHT_GRAPH_TYPES_H_
#define SIGHT_GRAPH_TYPES_H_

#include <cstdint>
#include <limits>

namespace sight {

/// Dense user identifier: users are numbered 0..NumUsers()-1 by the graph.
using UserId = uint32_t;

inline constexpr UserId kInvalidUser = std::numeric_limits<UserId>::max();

}  // namespace sight

#endif  // SIGHT_GRAPH_TYPES_H_
