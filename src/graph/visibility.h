// Per-item profile visibility (the paper's V_s(i, o) predicate).
//
// The paper's benefit measure B(o, s) depends on which profile items of a
// stranger are visible to the owner: wall, photo albums, friend list,
// location, education, work, hometown (the seven items of Tables II-V).
// VisibilityTable stores one bitmask per user. The model here is the
// "visible to non-friends" setting, which is what an owner browsing a
// stranger's profile observes.

#ifndef SIGHT_GRAPH_VISIBILITY_H_
#define SIGHT_GRAPH_VISIBILITY_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "graph/types.h"
#include "util/status.h"

namespace sight {

/// The benefit/visibility items used throughout the paper's evaluation.
enum class ProfileItem : uint8_t {
  kWall = 0,
  kPhoto = 1,
  kFriendList = 2,
  kLocation = 3,
  kEducation = 4,
  kWork = 5,
  kHometown = 6,
};

inline constexpr size_t kNumProfileItems = 7;

/// All items, in the paper's table order.
constexpr std::array<ProfileItem, kNumProfileItems> kAllProfileItems = {
    ProfileItem::kWall,      ProfileItem::kPhoto,    ProfileItem::kFriendList,
    ProfileItem::kLocation,  ProfileItem::kEducation, ProfileItem::kWork,
    ProfileItem::kHometown};

/// Stable lowercase name ("wall", "photo", ...).
const char* ProfileItemName(ProfileItem item);

/// Inverse of ProfileItemName; NotFound for unknown names.
[[nodiscard]] Result<ProfileItem> ProfileItemFromName(const std::string& name);

/// Per-user visibility bitmasks over the seven profile items.
class VisibilityTable {
 public:
  VisibilityTable() = default;

  /// Marks `item` of `user`'s profile as visible (to strangers).
  void SetVisible(UserId user, ProfileItem item, bool visible = true);

  /// The paper's V_s(i, o): 1 when item i of s's profile is visible to the
  /// observing owner, 0 otherwise. Users never configured are all-hidden.
  bool IsVisible(UserId user, ProfileItem item) const;

  /// Number of visible items for `user` (0..7).
  size_t VisibleCount(UserId user) const;

  /// Raw 7-bit mask (bit i = item i visible).
  uint8_t Mask(UserId user) const;

  void SetMask(UserId user, uint8_t mask);

  /// Counter bumped by every mutation (SetVisible / SetMask). Carried
  /// learner state whose display benefits were derived from this table
  /// records the epoch and is dropped when it no longer matches.
  uint64_t mutation_epoch() const { return mutation_epoch_; }

 private:
  std::vector<uint8_t> masks_;
  uint64_t mutation_epoch_ = 0;
};

}  // namespace sight

#endif  // SIGHT_GRAPH_VISIBILITY_H_
