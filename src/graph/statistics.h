// Aggregate structural statistics of a social graph (for dataset
// inspection, generator validation, and the CLI's `stats` command).

#ifndef SIGHT_GRAPH_STATISTICS_H_
#define SIGHT_GRAPH_STATISTICS_H_

#include <cstddef>
#include <string>

#include "graph/social_graph.h"

namespace sight {

struct GraphStats {
  size_t num_users = 0;
  size_t num_edges = 0;
  double average_degree = 0.0;
  size_t max_degree = 0;
  size_t median_degree = 0;
  size_t isolated_users = 0;
  double average_clustering_coefficient = 0.0;
  size_t connected_components = 0;
};

GraphStats ComputeGraphStats(const SocialGraph& graph);

/// Multi-line human-readable rendering.
std::string FormatGraphStats(const GraphStats& stats);

}  // namespace sight

#endif  // SIGHT_GRAPH_STATISTICS_H_
