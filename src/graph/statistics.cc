#include "graph/statistics.h"

#include <algorithm>

#include "graph/algorithms.h"
#include "util/string_util.h"

namespace sight {

GraphStats ComputeGraphStats(const SocialGraph& graph) {
  GraphStats stats;
  stats.num_users = graph.NumUsers();
  stats.num_edges = graph.NumEdges();
  if (stats.num_users == 0) return stats;

  std::vector<size_t> degrees = DegreeSequence(graph);
  size_t degree_sum = 0;
  for (size_t d : degrees) {
    degree_sum += d;
    stats.max_degree = std::max(stats.max_degree, d);
    if (d == 0) ++stats.isolated_users;
  }
  stats.average_degree =
      static_cast<double>(degree_sum) / static_cast<double>(stats.num_users);

  std::vector<size_t> sorted = degrees;
  std::nth_element(sorted.begin(), sorted.begin() + sorted.size() / 2,
                   sorted.end());
  stats.median_degree = sorted[sorted.size() / 2];

  stats.average_clustering_coefficient =
      AverageClusteringCoefficient(graph);
  stats.connected_components = CountConnectedComponents(graph);
  return stats;
}

std::string FormatGraphStats(const GraphStats& stats) {
  return StrFormat(
      "users: %zu\n"
      "edges: %zu\n"
      "average degree: %.2f (median %zu, max %zu)\n"
      "isolated users: %zu\n"
      "average clustering coefficient: %.3f\n"
      "connected components: %zu\n",
      stats.num_users, stats.num_edges, stats.average_degree,
      stats.median_degree, stats.max_degree, stats.isolated_users,
      stats.average_clustering_coefficient, stats.connected_components);
}

}  // namespace sight
