#include "graph/visibility.h"

#include <bit>

#include "util/string_util.h"

namespace sight {

const char* ProfileItemName(ProfileItem item) {
  switch (item) {
    case ProfileItem::kWall:
      return "wall";
    case ProfileItem::kPhoto:
      return "photo";
    case ProfileItem::kFriendList:
      return "friend";
    case ProfileItem::kLocation:
      return "location";
    case ProfileItem::kEducation:
      return "education";
    case ProfileItem::kWork:
      return "work";
    case ProfileItem::kHometown:
      return "hometown";
  }
  return "unknown";
}

Result<ProfileItem> ProfileItemFromName(const std::string& name) {
  for (ProfileItem item : kAllProfileItems) {
    if (name == ProfileItemName(item)) return item;
  }
  return Status::NotFound(StrFormat("no profile item named '%s'",
                                    name.c_str()));
}

void VisibilityTable::SetVisible(UserId user, ProfileItem item,
                                 bool visible) {
  if (user >= masks_.size()) masks_.resize(user + 1, 0);
  uint8_t bit = static_cast<uint8_t>(1u << static_cast<uint8_t>(item));
  if (visible) {
    masks_[user] |= bit;
  } else {
    masks_[user] &= static_cast<uint8_t>(~bit);
  }
  ++mutation_epoch_;
}

bool VisibilityTable::IsVisible(UserId user, ProfileItem item) const {
  if (user >= masks_.size()) return false;
  return (masks_[user] >> static_cast<uint8_t>(item)) & 1u;
}

size_t VisibilityTable::VisibleCount(UserId user) const {
  if (user >= masks_.size()) return 0;
  return static_cast<size_t>(std::popcount(masks_[user]));
}

uint8_t VisibilityTable::Mask(UserId user) const {
  if (user >= masks_.size()) return 0;
  return masks_[user];
}

void VisibilityTable::SetMask(UserId user, uint8_t mask) {
  if (user >= masks_.size()) masks_.resize(user + 1, 0);
  masks_[user] = static_cast<uint8_t>(mask & 0x7f);
  ++mutation_epoch_;
}

}  // namespace sight
