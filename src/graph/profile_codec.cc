#include "graph/profile_codec.h"

#include <cstring>

#include "util/logging.h"
#include "util/string_util.h"

namespace sight {

Result<std::string> ProfileCodec::Decode(AttributeId attr,
                                         uint32_t code) const {
  if (attr >= values_.size()) {
    return Status::InvalidArgument(
        StrFormat("attribute %zu out of range (%zu attributes)",
                  static_cast<size_t>(attr), values_.size()));
  }
  if (code >= values_[attr].size()) {
    return Status::OutOfRange(
        StrFormat("code %u not in the attribute-%zu dictionary (%zu codes)",
                  code, static_cast<size_t>(attr), values_[attr].size()));
  }
  return values_[attr][code];
}

uint32_t ProfileCodec::Intern(AttributeId attr, const std::string& value) {
  if (value.empty()) return kMissingCode;
  auto& dict = dicts_[attr];
  auto it = dict.find(value);
  if (it != dict.end()) return it->second;
  uint32_t code = static_cast<uint32_t>(values_[attr].size());
  dict.emplace(value, code);
  values_[attr].push_back(value);
  return code;
}

uint32_t ProfileCodec::Code(AttributeId attr, const std::string& value) const {
  if (value.empty()) return kMissingCode;
  const auto& dict = dicts_[attr];
  auto it = dict.find(value);
  return it == dict.end() ? kUnknownValue : it->second;
}

void ProfileCodec::EncodeInto(const Profile& profile, uint32_t* out) {
  for (AttributeId a = 0; a < dicts_.size(); ++a) {
    out[a] = profile.IsMissing(a) ? kMissingCode : Intern(a, profile.value(a));
  }
}

EncodedProfileTable EncodedProfileTable::Build(const ProfileTable& table,
                                               const std::vector<UserId>& users,
                                               const ProfileCodec* base) {
  size_t num_attrs = table.schema().num_attributes();
  EncodedProfileTable result(base != nullptr ? *base
                                             : ProfileCodec(num_attrs),
                             users, num_attrs);
  result.codes_.resize(users.size() * num_attrs);
  uint32_t* out = result.codes_.data();
  for (UserId u : users) {
    result.codec_.EncodeInto(table.Get(u), out);
    out += num_attrs;
  }
  return result;
}

void EncodedProfileTable::AppendRows(const ProfileTable& table,
                                     const std::vector<UserId>& users) {
  SIGHT_CHECK(table.schema().num_attributes() == num_attributes_);
  size_t old_rows = users_.size();
  users_.insert(users_.end(), users.begin(), users.end());
  codes_.resize(users_.size() * num_attributes_);
  uint32_t* out = codes_.data() + old_rows * num_attributes_;
  for (UserId u : users) {
    codec_.EncodeInto(table.Get(u), out);
    out += num_attributes_;
  }
}

StrangerEncodeCache::RefreshResult StrangerEncodeCache::Refresh(
    const ProfileTable& profiles, const std::vector<UserId>& strangers) {
  RefreshResult result;
  bool valid = encoded_.has_value() && source_ == &profiles &&
               source_epoch_ == profiles.mutation_epoch() &&
               encoded_->num_attributes() ==
                   profiles.schema().num_attributes() &&
               encoded_->num_rows() <= strangers.size();
  if (valid) {
    // The discovery list is append-only in the serving flow; anything
    // else (reordering, removal) breaks the prefix and rebuilds.
    const std::vector<UserId>& cached = encoded_->users();
    for (size_t i = 0; i < cached.size(); ++i) {
      if (cached[i] != strangers[i]) {
        valid = false;
        break;
      }
    }
  }
  if (!valid) {
    encoded_.emplace(EncodedProfileTable::Build(profiles, strangers));
    row_of_.clear();
    row_of_.reserve(strangers.size());
    for (size_t i = 0; i < strangers.size(); ++i) row_of_[strangers[i]] = i;
    source_ = &profiles;
    source_epoch_ = profiles.mutation_epoch();
    result.reused = false;
    result.rows_appended = strangers.size();
    return result;
  }
  size_t old_rows = encoded_->num_rows();
  if (old_rows < strangers.size()) {
    std::vector<UserId> suffix(strangers.begin() +
                                   static_cast<ptrdiff_t>(old_rows),
                               strangers.end());
    encoded_->AppendRows(profiles, suffix);
    for (size_t i = old_rows; i < strangers.size(); ++i) {
      row_of_[strangers[i]] = i;
    }
  }
  result.reused = true;
  result.rows_appended = strangers.size() - old_rows;
  return result;
}

bool StrangerEncodeCache::GatherRows(const std::vector<UserId>& users,
                                     std::vector<uint32_t>* out) const {
  if (!encoded_.has_value()) return false;
  const size_t stride = encoded_->num_attributes();
  out->resize(users.size() * stride);
  uint32_t* dst = out->data();
  for (UserId u : users) {
    auto it = row_of_.find(u);
    if (it == row_of_.end()) return false;
    std::memcpy(dst, encoded_->row(it->second), stride * sizeof(uint32_t));
    dst += stride;
  }
  return true;
}

void StrangerEncodeCache::Clear() {
  encoded_.reset();
  row_of_.clear();
  source_ = nullptr;
  source_epoch_ = 0;
}

}  // namespace sight
