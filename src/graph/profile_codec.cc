#include "graph/profile_codec.h"

#include "util/string_util.h"

namespace sight {

Result<std::string> ProfileCodec::Decode(AttributeId attr,
                                         uint32_t code) const {
  if (attr >= values_.size()) {
    return Status::InvalidArgument(
        StrFormat("attribute %zu out of range (%zu attributes)",
                  static_cast<size_t>(attr), values_.size()));
  }
  if (code >= values_[attr].size()) {
    return Status::OutOfRange(
        StrFormat("code %u not in the attribute-%zu dictionary (%zu codes)",
                  code, static_cast<size_t>(attr), values_[attr].size()));
  }
  return values_[attr][code];
}

uint32_t ProfileCodec::Intern(AttributeId attr, const std::string& value) {
  if (value.empty()) return kMissingCode;
  auto& dict = dicts_[attr];
  auto it = dict.find(value);
  if (it != dict.end()) return it->second;
  uint32_t code = static_cast<uint32_t>(values_[attr].size());
  dict.emplace(value, code);
  values_[attr].push_back(value);
  return code;
}

uint32_t ProfileCodec::Code(AttributeId attr, const std::string& value) const {
  if (value.empty()) return kMissingCode;
  const auto& dict = dicts_[attr];
  auto it = dict.find(value);
  return it == dict.end() ? kUnknownValue : it->second;
}

void ProfileCodec::EncodeInto(const Profile& profile, uint32_t* out) {
  for (AttributeId a = 0; a < dicts_.size(); ++a) {
    out[a] = profile.IsMissing(a) ? kMissingCode : Intern(a, profile.value(a));
  }
}

EncodedProfileTable EncodedProfileTable::Build(const ProfileTable& table,
                                               const std::vector<UserId>& users,
                                               const ProfileCodec* base) {
  size_t num_attrs = table.schema().num_attributes();
  EncodedProfileTable result(base != nullptr ? *base
                                             : ProfileCodec(num_attrs),
                             users, num_attrs);
  result.codes_.resize(users.size() * num_attrs);
  uint32_t* out = result.codes_.data();
  for (UserId u : users) {
    result.codec_.EncodeInto(table.Get(u), out);
    out += num_attrs;
  }
  return result;
}

}  // namespace sight
