// Undirected friendship graph with dense user ids.
//
// The graph is the substrate for every structural computation in Sight:
// mutual friends, two-hop stranger enumeration, network similarity. It is a
// dynamic adjacency-list structure whose neighbor sets are kept sorted so
// membership queries are O(log degree) and set intersections are linear.

#ifndef SIGHT_GRAPH_SOCIAL_GRAPH_H_
#define SIGHT_GRAPH_SOCIAL_GRAPH_H_

#include <cstdint>
#include <vector>

#include "graph/types.h"
#include "util/status.h"

namespace sight {

/// Undirected simple graph (no self-loops, no parallel edges).
///
/// Users are created densely: AddUser() returns consecutive ids starting at
/// 0. Edges are symmetric; AddEdge(a, b) is the same as AddEdge(b, a).
class SocialGraph {
 public:
  SocialGraph() = default;

  /// Constructs a graph with `num_users` isolated users.
  explicit SocialGraph(size_t num_users) : adjacency_(num_users) {}

  /// Adds a new isolated user and returns its id.
  UserId AddUser();

  /// Adds `count` users; returns the first new id.
  UserId AddUsers(size_t count);

  /// Adds the undirected edge {a, b}.
  ///
  /// Errors: InvalidArgument for self-loops or unknown ids; AlreadyExists
  /// if the edge is present.
  [[nodiscard]] Status AddEdge(UserId a, UserId b);

  /// Adds the edge if absent; returns true when a new edge was inserted.
  /// Errors only on invalid ids / self-loops.
  [[nodiscard]] Result<bool> AddEdgeIfAbsent(UserId a, UserId b);

  /// Removes the undirected edge {a, b}; NotFound if absent.
  [[nodiscard]] Status RemoveEdge(UserId a, UserId b);

  bool HasUser(UserId u) const { return u < adjacency_.size(); }

  /// True iff the edge exists (false for unknown ids).
  bool HasEdge(UserId a, UserId b) const;

  /// Sorted neighbor list. Precondition: HasUser(u).
  const std::vector<UserId>& Neighbors(UserId u) const;

  size_t Degree(UserId u) const;
  size_t NumUsers() const { return adjacency_.size(); }
  size_t NumEdges() const { return num_edges_; }

  // SIGHT_ANALYZER_OK(epoch-discipline): reserve only grows capacity;
  // no observable state changes, so carried caches stay valid.
  void Reserve(size_t num_users) { adjacency_.reserve(num_users); }

  /// Counter bumped by every successful structural mutation (user or edge
  /// insertion/removal). Caches derived from the graph (carried pool
  /// partitions) record the epoch they were built at and fall back to a
  /// cold rebuild when it no longer matches.
  uint64_t mutation_epoch() const { return mutation_epoch_; }

 private:
  std::vector<std::vector<UserId>> adjacency_;
  size_t num_edges_ = 0;
  uint64_t mutation_epoch_ = 0;
};

}  // namespace sight

#endif  // SIGHT_GRAPH_SOCIAL_GRAPH_H_
