// Dictionary encoding for categorical profiles.
//
// The paper's profile similarity (Definition 2/3) and Squeezer clustering
// only ever ask two questions of an attribute value: "are these two values
// the same?" and "how often does this value occur in the pool?". Strings
// answer both slowly (byte compares, hash lookups); interning each
// attribute's observed values into dense uint32_t codes answers them with
// an integer compare and an array load. A ProfileCodec holds the
// per-attribute dictionaries; an EncodedProfileTable is a pool's profiles
// re-expressed as flat code rows, built once per pool and then read by the
// O(n^2) similarity kernels.
//
// Code space per attribute: kMissingCode (0) is the sentinel for missing
// values; observed values get codes 1..NumCodes-1 in first-seen order.
// Code() on a never-interned value returns kUnknownValue, which no code
// array contains, so support/frequency lookups for it are 0 — exactly the
// unordered_map-miss semantics of the string path.

#ifndef SIGHT_GRAPH_PROFILE_CODEC_H_
#define SIGHT_GRAPH_PROFILE_CODEC_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/profile.h"
#include "graph/types.h"
#include "util/status.h"

namespace sight {

/// Per-attribute string -> dense code dictionaries. Interning is
/// append-only: a value's code never changes once assigned, so encoded
/// rows stay valid as the dictionary grows (the incremental-Squeezer
/// arrangement). Not thread-safe for concurrent Intern; const lookups on
/// a no-longer-growing codec are safe to share across threads.
class ProfileCodec {
 public:
  /// Sentinel code for missing values (the empty string).
  static constexpr uint32_t kMissingCode = 0;
  /// Returned by Code() for values never interned. Larger than any real
  /// code, so bounds-checked array lookups naturally read it as "absent".
  static constexpr uint32_t kUnknownValue = 0xFFFFFFFFu;

  explicit ProfileCodec(size_t num_attributes)
      : dicts_(num_attributes), values_(num_attributes) {
    for (auto& v : values_) v.emplace_back();  // code 0 = ""
  }

  size_t num_attributes() const { return dicts_.size(); }

  /// Code for `value` under `attr`, interning it when unseen. "" maps to
  /// kMissingCode without touching the dictionary.
  uint32_t Intern(AttributeId attr, const std::string& value);

  /// Code for `value` under `attr`; kMissingCode for "", kUnknownValue
  /// when never interned.
  uint32_t Code(AttributeId attr, const std::string& value) const;

  /// Exclusive upper bound on codes assigned for `attr` (1 + distinct
  /// interned values). Every Intern() result is < NumCodes(attr).
  size_t NumCodes(AttributeId attr) const { return values_[attr].size(); }

  /// The string a code decodes to ("" for kMissingCode). `code` must be
  /// < NumCodes(attr); for untrusted codes use Decode().
  const std::string& Value(AttributeId attr, uint32_t code) const {
    return values_[attr][code];
  }

  /// Checked decode for codes from outside the codec (wire formats,
  /// persisted tables): kInvalidArgument for an unknown attribute,
  /// kOutOfRange for a code the dictionary never assigned (including
  /// kUnknownValue).
  [[nodiscard]]
  Result<std::string> Decode(AttributeId attr,
                                           uint32_t code) const;

  /// Encodes one profile into `out` (num_attributes() entries), interning
  /// unseen values. Short value vectors read as missing.
  void EncodeInto(const Profile& profile, uint32_t* out);

 private:
  std::vector<std::unordered_map<std::string, uint32_t>> dicts_;
  // values_[attr][code] is the decoded string; slot 0 is "".
  std::vector<std::vector<std::string>> values_;
};

/// The profiles of one user pool as a row-major matrix of codes: row i is
/// users()[i]'s profile, one uint32_t per schema attribute. Built once per
/// pool; the similarity hot paths then run entirely on the codes.
class EncodedProfileTable {
 public:
  /// Encodes the profiles of `users` from `table`. When `base` is given,
  /// its dictionary is the starting point (copied), so values shared with
  /// the base keep their base codes and new values extend the code space —
  /// this is how profiles outside a frequency pool are encoded against the
  /// pool's codec (their novel values get codes the frequency arrays do
  /// not contain, i.e. frequency 0).
  static EncodedProfileTable Build(const ProfileTable& table,
                                   const std::vector<UserId>& users,
                                   const ProfileCodec* base = nullptr);

  /// Appends one row per user, encoding through this table's codec.
  /// Because interning is append-only, Build(prefix) + AppendRows(suffix)
  /// assigns exactly the codes Build(prefix + suffix) would — existing
  /// rows are never touched. `table` must have the same arity the table
  /// was built with.
  void AppendRows(const ProfileTable& table, const std::vector<UserId>& users);

  size_t num_rows() const { return users_.size(); }
  size_t num_attributes() const { return num_attributes_; }

  /// Row of codes for the i-th user (num_attributes() entries).
  const uint32_t* row(size_t i) const {
    return codes_.data() + i * num_attributes_;
  }

  uint32_t code(size_t i, AttributeId attr) const {
    return codes_[i * num_attributes_ + attr];
  }

  const std::vector<UserId>& users() const { return users_; }
  const ProfileCodec& codec() const { return codec_; }

 private:
  EncodedProfileTable(ProfileCodec codec, std::vector<UserId> users,
                      size_t num_attributes)
      : codec_(std::move(codec)), users_(std::move(users)),
        num_attributes_(num_attributes) {}

  ProfileCodec codec_;
  std::vector<UserId> users_;
  size_t num_attributes_;
  std::vector<uint32_t> codes_;  // row-major, num_rows x num_attributes
};

/// Resident encode stage of the serving flow (DESIGN.md §14): one codec +
/// encoded table per owner, carried across crawler ticks. Each tick,
/// Refresh() appends rows for newly discovered strangers only; a
/// fingerprint over the source table (pointer + mutation epoch + arity)
/// and the carried stranger prefix guards staleness — any mismatch falls
/// back to a cold rebuild, never to silent reuse. GatherRows() then hands
/// each pool its members' code rows; the codes come from one shared
/// injective dictionary instead of a per-pool one, which preserves both
/// code equality and per-value pool frequencies, so everything downstream
/// (ValueFrequencyTable::BuildFromCodes + the PS kernels) is
/// bitwise-identical to the per-pool encode it replaces.
class StrangerEncodeCache {
 public:
  struct RefreshResult {
    /// False when the cache was rebuilt from scratch (first use, source
    /// table changed, or the stranger prefix no longer matches).
    bool reused = false;
    /// Rows encoded by this call (the suffix on reuse, everything on a
    /// rebuild).
    size_t rows_appended = 0;
  };

  StrangerEncodeCache() = default;

  /// Brings the cache up to date with `strangers` (the owner's full
  /// discovery-order list). Reuses carried rows when the fingerprint
  /// holds and the carried users are a prefix of `strangers`.
  RefreshResult Refresh(const ProfileTable& profiles,
                        const std::vector<UserId>& strangers);

  /// Copies the code rows of `users` (in order) into `out`, resized to
  /// users.size() * num_attributes. False if any user has no cached row
  /// (caller falls back to a direct encode).
  [[nodiscard]] bool GatherRows(const std::vector<UserId>& users,
                                std::vector<uint32_t>* out) const;

  bool empty() const { return !encoded_.has_value(); }
  size_t num_rows() const { return encoded_ ? encoded_->num_rows() : 0; }
  size_t num_attributes() const {
    return encoded_ ? encoded_->num_attributes() : 0;
  }

  /// Drops everything; the next Refresh is a cold rebuild.
  void Clear();

 private:
  std::optional<EncodedProfileTable> encoded_;
  std::unordered_map<UserId, size_t> row_of_;
  const ProfileTable* source_ = nullptr;
  uint64_t source_epoch_ = 0;
};

}  // namespace sight

#endif  // SIGHT_GRAPH_PROFILE_CODEC_H_
