#include "graph/profile.h"

#include "util/string_util.h"

namespace sight {

Result<ProfileSchema> ProfileSchema::Create(std::vector<std::string> names) {
  ProfileSchema schema;
  for (size_t i = 0; i < names.size(); ++i) {
    if (names[i].empty()) {
      return Status::InvalidArgument("attribute names must be non-empty");
    }
    auto [it, inserted] =
        schema.index_.emplace(names[i], static_cast<AttributeId>(i));
    if (!inserted) {
      return Status::InvalidArgument(
          StrFormat("duplicate attribute name '%s'", names[i].c_str()));
    }
  }
  schema.names_ = std::move(names);
  return schema;
}

Result<AttributeId> ProfileSchema::FindAttribute(
    const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) {
    return Status::NotFound(
        StrFormat("no attribute named '%s'", name.c_str()));
  }
  return it->second;
}

Status ProfileTable::Set(UserId user, Profile profile) {
  if (profile.values.size() != schema_.num_attributes()) {
    return Status::InvalidArgument(StrFormat(
        "profile has %zu values, schema expects %zu", profile.values.size(),
        schema_.num_attributes()));
  }
  if (user >= profiles_.size()) {
    profiles_.resize(user + 1);
    present_.resize(user + 1, false);
  }
  if (!present_[user]) {
    present_[user] = true;
    ++count_;
  }
  profiles_[user] = std::move(profile);
  ++mutation_epoch_;
  return Status::OK();
}

Status ProfileTable::SetValue(UserId user, AttributeId attr,
                              std::string value) {
  if (attr >= schema_.num_attributes()) {
    return Status::InvalidArgument(
        StrFormat("attribute id %u out of range", attr));
  }
  if (user >= profiles_.size()) {
    profiles_.resize(user + 1);
    present_.resize(user + 1, false);
  }
  if (!present_[user]) {
    profiles_[user].values.assign(schema_.num_attributes(), kMissingValue);
    present_[user] = true;
    ++count_;
  }
  profiles_[user].values[attr] = std::move(value);
  ++mutation_epoch_;
  return Status::OK();
}

bool ProfileTable::Has(UserId user) const {
  return user < present_.size() && present_[user];
}

const Profile& ProfileTable::Get(UserId user) const {
  if (!Has(user)) {
    if (missing_profile_.values.size() != schema_.num_attributes()) {
      // Lazily size the shared all-missing profile. Safe: const_cast-free
      // because missing_profile_ is mutable only through this path before
      // first use.
      const_cast<ProfileTable*>(this)->missing_profile_.values.assign(
          schema_.num_attributes(), kMissingValue);
    }
    return missing_profile_;
  }
  return profiles_[user];
}

const std::string& ProfileTable::Value(UserId user, AttributeId attr) const {
  return Get(user).values[attr];
}

}  // namespace sight
