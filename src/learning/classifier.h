// Graph-based semi-supervised classifier interface.
//
// Classifiers in the risk pipeline see a weighted similarity graph over a
// pool's instances plus a few labeled instances, and output a continuous
// score per instance (real-valued risk in [label_min, label_max], rounded
// to a discrete label by the caller). This matches how the paper plugs
// Zhu's harmonic-function method in and lets baselines (kNN, majority)
// swap in for the ablation bench.

#ifndef SIGHT_LEARNING_CLASSIFIER_H_
#define SIGHT_LEARNING_CLASSIFIER_H_

#include <memory>
#include <string>
#include <vector>

#include "learning/similarity_matrix.h"
#include "util/status.h"

namespace sight {

/// The labeled subset of a pool: parallel vectors of instance index and
/// numeric label value.
struct LabeledSet {
  std::vector<size_t> indices;
  std::vector<double> values;

  size_t size() const { return indices.size(); }
  void Add(size_t index, double value) {
    indices.push_back(index);
    values.push_back(value);
  }
};

/// Opaque per-pool solver state carried across successive predictions of
/// the same pool (active-learning rounds, crawler ticks). Created by
/// GraphClassifier::MakeState(), threaded through PredictWithState().
class ClassifierState {
 public:
  virtual ~ClassifierState() = default;

  /// Seeds the next solve's starting vector (one value per pool member)
  /// without recording any labeled-set history — the cross-tick warm
  /// start of the RiskSession crawler flow. Stateless classifiers ignore
  /// it.
  virtual void SeedSolution(std::vector<double> f) { (void)f; }
};

/// What a single predict/solve actually did — surfaced per round in
/// RoundRecord and by the perf benches.
struct SolveStats {
  /// Solver that ran ("gauss-seidel", "conjugate-gradient"; the
  /// classifier name for classifiers without an inner solver choice).
  std::string solver;
  /// Sweeps (Gauss-Seidel) or iterations (conjugate gradient) of the
  /// solve; 0 for non-iterative classifiers.
  size_t iterations = 0;
  /// Whether the solve continued from a prior solution instead of the
  /// label-mean cold start.
  bool warm = false;
  /// Final residual: last sweep's max score delta (Gauss-Seidel) or
  /// ||r|| (conjugate gradient).
  double residual = 0.0;
};

/// Predicts continuous label scores for all instances of a pool.
class GraphClassifier {
 public:
  virtual ~GraphClassifier() = default;

  /// Returns one score per instance (size weights.size()). Labeled
  /// instances keep their given value in the output. Errors when the
  /// labeled set is empty or references out-of-range indices.
  [[nodiscard]]
  virtual Result<std::vector<double>> Predict(
      const SimilarityMatrix& weights, const LabeledSet& labeled) const = 0;

  /// State-carrying variant for incremental re-solves. `state` (from
  /// MakeState()) holds the previous solution and labeled-set
  /// fingerprint; the solve continues from it and updates it. The
  /// labeled set must extend the one the state last saw (append-only);
  /// anything else is an InvalidArgument. `state == nullptr` is the cold
  /// case and behaves exactly like Predict(). The default implementation
  /// ignores the state and forwards to Predict().
  [[nodiscard]]
  virtual Result<std::vector<double>> PredictWithState(
      const SimilarityMatrix& weights, const LabeledSet& labeled,
      ClassifierState* state, SolveStats* stats = nullptr) const;

  /// Fresh empty state for PredictWithState(), or nullptr when the
  /// classifier keeps no state between predictions (the default).
  [[nodiscard]] virtual std::unique_ptr<ClassifierState> MakeState() const;

  /// Human-readable name for reports ("harmonic", "knn", ...).
  virtual std::string name() const = 0;
};

namespace internal {
/// Shared validation: labeled set non-empty, indices in range, no
/// duplicates.
[[nodiscard]] Status ValidateLabeledSet(size_t n, const LabeledSet& labeled);
}  // namespace internal

/// Rounds a continuous score to the nearest integer label in
/// [label_min, label_max].
int RoundToLabel(double score, int label_min, int label_max);

}  // namespace sight

#endif  // SIGHT_LEARNING_CLASSIFIER_H_
