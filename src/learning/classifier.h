// Graph-based semi-supervised classifier interface.
//
// Classifiers in the risk pipeline see a weighted similarity graph over a
// pool's instances plus a few labeled instances, and output a continuous
// score per instance (real-valued risk in [label_min, label_max], rounded
// to a discrete label by the caller). This matches how the paper plugs
// Zhu's harmonic-function method in and lets baselines (kNN, majority)
// swap in for the ablation bench.

#ifndef SIGHT_LEARNING_CLASSIFIER_H_
#define SIGHT_LEARNING_CLASSIFIER_H_

#include <string>
#include <vector>

#include "learning/similarity_matrix.h"
#include "util/status.h"

namespace sight {

/// The labeled subset of a pool: parallel vectors of instance index and
/// numeric label value.
struct LabeledSet {
  std::vector<size_t> indices;
  std::vector<double> values;

  size_t size() const { return indices.size(); }
  void Add(size_t index, double value) {
    indices.push_back(index);
    values.push_back(value);
  }
};

/// Predicts continuous label scores for all instances of a pool.
class GraphClassifier {
 public:
  virtual ~GraphClassifier() = default;

  /// Returns one score per instance (size weights.size()). Labeled
  /// instances keep their given value in the output. Errors when the
  /// labeled set is empty or references out-of-range indices.
  [[nodiscard]]
  virtual Result<std::vector<double>> Predict(
      const SimilarityMatrix& weights, const LabeledSet& labeled) const = 0;

  /// Human-readable name for reports ("harmonic", "knn", ...).
  virtual std::string name() const = 0;
};

namespace internal {
/// Shared validation: labeled set non-empty, indices in range, no
/// duplicates.
[[nodiscard]] Status ValidateLabeledSet(size_t n, const LabeledSet& labeled);
}  // namespace internal

/// Rounds a continuous score to the nearest integer label in
/// [label_min, label_max].
int RoundToLabel(double score, int label_min, int label_max);

}  // namespace sight

#endif  // SIGHT_LEARNING_CLASSIFIER_H_
