#include "learning/similarity_matrix.h"

#include <algorithm>

#include "util/logging.h"

namespace sight {

void SimilarityMatrix::Set(size_t i, size_t j, double value) {
  SIGHT_CHECK(i < n_ && j < n_);
  if (i == j) return;
  data_[Index(i, j)] = value;
}

double SimilarityMatrix::Get(size_t i, size_t j) const {
  SIGHT_CHECK(i < n_ && j < n_);
  if (i == j) return 0.0;
  return data_[Index(i, j)];
}

double SimilarityMatrix::RowSum(size_t i) const {
  double sum = 0.0;
  for (size_t j = 0; j < n_; ++j) {
    if (j != i) sum += Get(i, j);
  }
  return sum;
}

void SimilarityMatrix::SparsifyTopK(size_t k) {
  if (n_ == 0) return;
  // Mark, per node, its k strongest neighbors.
  std::vector<std::vector<bool>> keep(n_, std::vector<bool>(n_, false));
  std::vector<std::pair<double, size_t>> row;
  for (size_t i = 0; i < n_; ++i) {
    row.clear();
    for (size_t j = 0; j < n_; ++j) {
      if (j == i) continue;
      double w = Get(i, j);
      if (w > 0.0) row.emplace_back(w, j);
    }
    size_t take = std::min(k, row.size());
    std::partial_sort(row.begin(), row.begin() + static_cast<ptrdiff_t>(take),
                      row.end(), std::greater<>());
    for (size_t t = 0; t < take; ++t) keep[i][row[t].second] = true;
  }
  for (size_t i = 0; i < n_; ++i) {
    for (size_t j = 0; j < i; ++j) {
      if (!keep[i][j] && !keep[j][i]) data_[Index(i, j)] = 0.0;
    }
  }
}

size_t SimilarityMatrix::NumEdges() const {
  size_t count = 0;
  for (size_t i = 0; i < n_; ++i) {
    for (size_t j = 0; j < i; ++j) {
      if (data_[Index(i, j)] > 0.0) ++count;
    }
  }
  return count;
}

}  // namespace sight
