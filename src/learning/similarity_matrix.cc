#include "learning/similarity_matrix.h"

#include <algorithm>

#include "util/logging.h"

namespace sight {

void SimilarityMatrix::Set(size_t i, size_t j, double value) {
  SIGHT_CHECK(i < n_ && j < n_);
  if (i == j) return;
  data_[Index(i, j)] = value;
  if (!compacted_) return;
  // A pair touching an appended row cannot exist in the base view, so it
  // stages cleanly; a pair between two base rows may shadow a base edge
  // and falls back to a full invalidation.
  if (std::max(i, j) >= base_rows_) {
    StageEdge(i, j, value);
  } else {
    InvalidateCompact();
  }
}

void SimilarityMatrix::AppendRows(size_t count) {
  if (count == 0) return;
  n_ += count;
  // Index(i, j) = i * (i + 1) / 2 + j: new rows pack strictly after the
  // old ones, so a resize preserves every existing entry in place.
  data_.resize(n_ * (n_ + 1) / 2, 0.0);
  if (compacted_) tail_rows_.resize(n_ - base_rows_);
}

std::vector<Neighbor>& SimilarityMatrix::MutableOverlayRow(size_t i) {
  if (i >= base_rows_) return tail_rows_[i - base_rows_];
  auto it = patched_rows_.find(i);
  if (it == patched_rows_.end()) {
    std::span<const Neighbor> base(
        neighbors_.data() + row_offsets_[i],
        row_offsets_[i + 1] - row_offsets_[i]);
    it = patched_rows_
             .emplace(i, std::vector<Neighbor>(base.begin(), base.end()))
             .first;
  }
  return it->second;
}

void SimilarityMatrix::StageEdge(size_t i, size_t j, double value) {
  auto upsert = [](std::vector<Neighbor>& row, size_t index,
                   double weight) -> bool {
    auto pos = std::lower_bound(
        row.begin(), row.end(), index,
        [](const Neighbor& nb, size_t idx) { return nb.index < idx; });
    bool existed = pos != row.end() && pos->index == index;
    if (weight > 0.0) {
      if (existed) {
        pos->weight = weight;
      } else {
        row.insert(pos, Neighbor{index, weight});
      }
    } else if (existed) {
      row.erase(pos);
    }
    return existed;
  };
  bool existed = upsert(MutableOverlayRow(i), j, value);
  upsert(MutableOverlayRow(j), i, value);
  if (value > 0.0 && !existed) ++staged_edges_;
  if (value <= 0.0 && existed) --staged_edges_;
}

void SimilarityMatrix::SetRowSpan(size_t i, size_t j0, const double* values,
                                  size_t count) {
  if (count == 0) return;
  SIGHT_CHECK(i < n_ && j0 + count <= i);
  // Index(i, j) = i * (i + 1) / 2 + j for j < i, so the span is
  // contiguous in the packed lower-triangle store.
  std::copy(values, values + count, data_.begin() +
                                        static_cast<ptrdiff_t>(Index(i, j0)));
  InvalidateCompact();
}

double SimilarityMatrix::Get(size_t i, size_t j) const {
  SIGHT_CHECK(i < n_ && j < n_);
  if (i == j) return 0.0;
  return data_[Index(i, j)];
}

double SimilarityMatrix::RowSum(size_t i) const {
  if (compacted_) {
    double sum = 0.0;
    for (const Neighbor& nb : Neighbors(i)) sum += nb.weight;
    return sum;
  }
  double sum = 0.0;
  for (size_t j = 0; j < n_; ++j) {
    if (j != i) sum += Get(i, j);
  }
  return sum;
}

void SimilarityMatrix::SparsifyTopK(size_t k) {
  if (n_ == 0) return;
  InvalidateCompact();
  // Mark, per node, its k strongest neighbors.
  std::vector<std::vector<bool>> keep(n_, std::vector<bool>(n_, false));
  std::vector<std::pair<double, size_t>> row;
  for (size_t i = 0; i < n_; ++i) {
    row.clear();
    for (size_t j = 0; j < n_; ++j) {
      if (j == i) continue;
      double w = Get(i, j);
      if (w > 0.0) row.emplace_back(w, j);
    }
    size_t take = std::min(k, row.size());
    std::partial_sort(row.begin(), row.begin() + static_cast<ptrdiff_t>(take),
                      row.end(), std::greater<>());
    for (size_t t = 0; t < take; ++t) keep[i][row[t].second] = true;
  }
  for (size_t i = 0; i < n_; ++i) {
    for (size_t j = 0; j < i; ++j) {
      if (!keep[i][j] && !keep[j][i]) data_[Index(i, j)] = 0.0;
    }
  }
}

size_t SimilarityMatrix::NumEdges() const {
  if (compacted_) return neighbors_.size() / 2 + staged_edges_;
  size_t count = 0;
  for (size_t i = 0; i < n_; ++i) {
    for (size_t j = 0; j < i; ++j) {
      if (data_[Index(i, j)] > 0.0) ++count;
    }
  }
  return count;
}

void SimilarityMatrix::BuildCsr(std::vector<size_t>* offsets,
                                std::vector<Neighbor>* neighbors) const {
  SIGHT_CHECK(offsets != nullptr && neighbors != nullptr);
  offsets->assign(n_ + 1, 0);
  // Degree pass over the lower triangle (each edge counts at both ends),
  // shifted by one so the prefix sum lands directly in CSR offsets. The
  // scan order (i, j < i) is exactly the packed layout, so a linear
  // pointer walk replaces the per-entry Index() multiply; the extra ++
  // after each inner loop steps over the unused diagonal slot.
  const double* entry = data_.data();
  for (size_t i = 0; i < n_; ++i, ++entry) {
    for (size_t j = 0; j < i; ++j, ++entry) {
      if (*entry > 0.0) {
        ++(*offsets)[i + 1];
        ++(*offsets)[j + 1];
      }
    }
  }
  for (size_t i = 0; i < n_; ++i) (*offsets)[i + 1] += (*offsets)[i];
  neighbors->resize(offsets->back());
  // Fill pass. Scanning (i, j<i) in ascending order appends ascending j
  // into row i and ascending i into row j, so every row ends up sorted by
  // neighbor index with no per-row sort.
  std::vector<size_t> cursor(offsets->begin(), offsets->end() - 1);
  entry = data_.data();
  for (size_t i = 0; i < n_; ++i, ++entry) {
    for (size_t j = 0; j < i; ++j, ++entry) {
      double w = *entry;
      if (w > 0.0) {
        (*neighbors)[cursor[i]++] = Neighbor{j, w};
        (*neighbors)[cursor[j]++] = Neighbor{i, w};
      }
    }
  }
}

void SimilarityMatrix::Compact() {
  if (compacted_) {
    MergeCompact();
    return;
  }
  BuildCsr(&row_offsets_, &neighbors_);
  compacted_ = true;
  base_rows_ = n_;
}

void SimilarityMatrix::MergeCompact() {
  if (!compacted_) {
    Compact();
    return;
  }
  if (base_rows_ == n_ && patched_rows_.empty()) return;

  // One pass over row degrees (overlay-dispatched), one pass of row-span
  // copies. Every source row is already sorted, so there is no sorting
  // and no rescan of the dense store.
  auto row_of = [this](size_t i) -> std::span<const Neighbor> {
    if (i >= base_rows_) {
      const std::vector<Neighbor>& row = tail_rows_[i - base_rows_];
      return std::span<const Neighbor>(row.data(), row.size());
    }
    auto it = patched_rows_.find(i);
    if (it != patched_rows_.end()) {
      return std::span<const Neighbor>(it->second.data(),
                                       it->second.size());
    }
    return std::span<const Neighbor>(
        neighbors_.data() + row_offsets_[i],
        row_offsets_[i + 1] - row_offsets_[i]);
  };

  std::vector<size_t> merged_offsets(n_ + 1, 0);
  for (size_t i = 0; i < n_; ++i) {
    merged_offsets[i + 1] = merged_offsets[i] + row_of(i).size();
  }
  std::vector<Neighbor> merged(merged_offsets.back());
  for (size_t i = 0; i < n_; ++i) {
    std::span<const Neighbor> row = row_of(i);
    std::copy(row.begin(), row.end(),
              merged.begin() + static_cast<ptrdiff_t>(merged_offsets[i]));
  }
  row_offsets_ = std::move(merged_offsets);
  neighbors_ = std::move(merged);
  base_rows_ = n_;
  staged_edges_ = 0;
  tail_rows_.clear();
  patched_rows_.clear();
}

std::span<const Neighbor> SimilarityMatrix::Neighbors(size_t i) const {
  SIGHT_CHECK(compacted_);
  SIGHT_CHECK(i < n_);
  if (i >= base_rows_) {
    const std::vector<Neighbor>& row = tail_rows_[i - base_rows_];
    return std::span<const Neighbor>(row.data(), row.size());
  }
  if (!patched_rows_.empty()) {
    auto it = patched_rows_.find(i);
    if (it != patched_rows_.end()) {
      return std::span<const Neighbor>(it->second.data(),
                                       it->second.size());
    }
  }
  return std::span<const Neighbor>(neighbors_.data() + row_offsets_[i],
                                   row_offsets_[i + 1] - row_offsets_[i]);
}

void SimilarityMatrix::InvalidateCompact() {
  if (!compacted_) return;
  compacted_ = false;
  row_offsets_.clear();
  row_offsets_.shrink_to_fit();
  neighbors_.clear();
  neighbors_.shrink_to_fit();
  base_rows_ = 0;
  staged_edges_ = 0;
  tail_rows_.clear();
  tail_rows_.shrink_to_fit();
  patched_rows_.clear();
}

}  // namespace sight
