#include "learning/similarity_matrix.h"

#include <algorithm>

#include "util/logging.h"

namespace sight {

void SimilarityMatrix::Set(size_t i, size_t j, double value) {
  SIGHT_CHECK(i < n_ && j < n_);
  if (i == j) return;
  data_[Index(i, j)] = value;
  InvalidateCompact();
}

void SimilarityMatrix::SetRowSpan(size_t i, size_t j0, const double* values,
                                  size_t count) {
  if (count == 0) return;
  SIGHT_CHECK(i < n_ && j0 + count <= i);
  // Index(i, j) = i * (i + 1) / 2 + j for j < i, so the span is
  // contiguous in the packed lower-triangle store.
  std::copy(values, values + count, data_.begin() +
                                        static_cast<ptrdiff_t>(Index(i, j0)));
  InvalidateCompact();
}

double SimilarityMatrix::Get(size_t i, size_t j) const {
  SIGHT_CHECK(i < n_ && j < n_);
  if (i == j) return 0.0;
  return data_[Index(i, j)];
}

double SimilarityMatrix::RowSum(size_t i) const {
  if (compacted_) {
    double sum = 0.0;
    for (const Neighbor& nb : Neighbors(i)) sum += nb.weight;
    return sum;
  }
  double sum = 0.0;
  for (size_t j = 0; j < n_; ++j) {
    if (j != i) sum += Get(i, j);
  }
  return sum;
}

void SimilarityMatrix::SparsifyTopK(size_t k) {
  if (n_ == 0) return;
  InvalidateCompact();
  // Mark, per node, its k strongest neighbors.
  std::vector<std::vector<bool>> keep(n_, std::vector<bool>(n_, false));
  std::vector<std::pair<double, size_t>> row;
  for (size_t i = 0; i < n_; ++i) {
    row.clear();
    for (size_t j = 0; j < n_; ++j) {
      if (j == i) continue;
      double w = Get(i, j);
      if (w > 0.0) row.emplace_back(w, j);
    }
    size_t take = std::min(k, row.size());
    std::partial_sort(row.begin(), row.begin() + static_cast<ptrdiff_t>(take),
                      row.end(), std::greater<>());
    for (size_t t = 0; t < take; ++t) keep[i][row[t].second] = true;
  }
  for (size_t i = 0; i < n_; ++i) {
    for (size_t j = 0; j < i; ++j) {
      if (!keep[i][j] && !keep[j][i]) data_[Index(i, j)] = 0.0;
    }
  }
}

size_t SimilarityMatrix::NumEdges() const {
  if (compacted_) return neighbors_.size() / 2;
  size_t count = 0;
  for (size_t i = 0; i < n_; ++i) {
    for (size_t j = 0; j < i; ++j) {
      if (data_[Index(i, j)] > 0.0) ++count;
    }
  }
  return count;
}

void SimilarityMatrix::BuildCsr(std::vector<size_t>* offsets,
                                std::vector<Neighbor>* neighbors) const {
  SIGHT_CHECK(offsets != nullptr && neighbors != nullptr);
  offsets->assign(n_ + 1, 0);
  // Degree pass over the lower triangle (each edge counts at both ends),
  // shifted by one so the prefix sum lands directly in CSR offsets.
  for (size_t i = 0; i < n_; ++i) {
    for (size_t j = 0; j < i; ++j) {
      if (data_[Index(i, j)] > 0.0) {
        ++(*offsets)[i + 1];
        ++(*offsets)[j + 1];
      }
    }
  }
  for (size_t i = 0; i < n_; ++i) (*offsets)[i + 1] += (*offsets)[i];
  neighbors->resize(offsets->back());
  // Fill pass. Scanning (i, j<i) in ascending order appends ascending j
  // into row i and ascending i into row j, so every row ends up sorted by
  // neighbor index.
  std::vector<size_t> cursor(offsets->begin(), offsets->end() - 1);
  for (size_t i = 0; i < n_; ++i) {
    for (size_t j = 0; j < i; ++j) {
      double w = data_[Index(i, j)];
      if (w > 0.0) {
        (*neighbors)[cursor[i]++] = Neighbor{j, w};
        (*neighbors)[cursor[j]++] = Neighbor{i, w};
      }
    }
  }
}

void SimilarityMatrix::Compact() {
  if (compacted_) return;
  BuildCsr(&row_offsets_, &neighbors_);
  compacted_ = true;
}

std::span<const Neighbor> SimilarityMatrix::Neighbors(size_t i) const {
  SIGHT_CHECK(compacted_);
  SIGHT_CHECK(i < n_);
  return std::span<const Neighbor>(neighbors_.data() + row_offsets_[i],
                                   row_offsets_[i + 1] - row_offsets_[i]);
}

void SimilarityMatrix::InvalidateCompact() {
  if (!compacted_) return;
  compacted_ = false;
  row_offsets_.clear();
  row_offsets_.shrink_to_fit();
  neighbors_.clear();
  neighbors_.shrink_to_fit();
}

}  // namespace sight
