#include "learning/metrics.h"

#include <cmath>

#include "util/string_util.h"

namespace sight {
namespace {

Status CheckParallelNonEmpty(size_t a, size_t b) {
  if (a != b) {
    return Status::InvalidArgument(
        StrFormat("size mismatch: %zu vs %zu", a, b));
  }
  if (a == 0) return Status::InvalidArgument("empty input");
  return Status::OK();
}

}  // namespace

Result<double> Rmse(const std::vector<double>& predictions,
                    const std::vector<double>& truth) {
  SIGHT_RETURN_IF_ERROR(
      CheckParallelNonEmpty(predictions.size(), truth.size()));
  double ss = 0.0;
  for (size_t i = 0; i < predictions.size(); ++i) {
    double d = predictions[i] - truth[i];
    ss += d * d;
  }
  return std::sqrt(ss / static_cast<double>(predictions.size()));
}

Result<double> MeanAbsoluteError(const std::vector<double>& predictions,
                                 const std::vector<double>& truth) {
  SIGHT_RETURN_IF_ERROR(
      CheckParallelNonEmpty(predictions.size(), truth.size()));
  double sum = 0.0;
  for (size_t i = 0; i < predictions.size(); ++i) {
    sum += std::fabs(predictions[i] - truth[i]);
  }
  return sum / static_cast<double>(predictions.size());
}

Result<double> ExactMatchRate(const std::vector<int>& predictions,
                              const std::vector<int>& truth) {
  SIGHT_RETURN_IF_ERROR(
      CheckParallelNonEmpty(predictions.size(), truth.size()));
  size_t matches = 0;
  for (size_t i = 0; i < predictions.size(); ++i) {
    if (predictions[i] == truth[i]) ++matches;
  }
  return static_cast<double>(matches) /
         static_cast<double>(predictions.size());
}

Result<ConfusionMatrix> ConfusionMatrix::Create(int label_min,
                                                int label_max) {
  if (label_min > label_max) {
    return Status::InvalidArgument(
        StrFormat("invalid label range [%d, %d]", label_min, label_max));
  }
  return ConfusionMatrix(label_min, label_max);
}

ConfusionMatrix::ConfusionMatrix(int label_min, int label_max)
    : label_min_(label_min), label_max_(label_max),
      num_labels_(static_cast<size_t>(label_max - label_min + 1)),
      counts_(num_labels_ * num_labels_, 0) {}

Status ConfusionMatrix::Add(int truth, int prediction) {
  if (truth < label_min_ || truth > label_max_ || prediction < label_min_ ||
      prediction > label_max_) {
    return Status::OutOfRange(
        StrFormat("labels (%d, %d) outside range [%d, %d]", truth, prediction,
                  label_min_, label_max_));
  }
  ++counts_[IndexOf(truth) * num_labels_ + IndexOf(prediction)];
  ++total_;
  return Status::OK();
}

size_t ConfusionMatrix::Count(int truth, int prediction) const {
  if (truth < label_min_ || truth > label_max_ || prediction < label_min_ ||
      prediction > label_max_) {
    return 0;
  }
  return counts_[IndexOf(truth) * num_labels_ + IndexOf(prediction)];
}

double ConfusionMatrix::Accuracy() const {
  if (total_ == 0) return 0.0;
  size_t correct = 0;
  for (size_t i = 0; i < num_labels_; ++i) {
    correct += counts_[i * num_labels_ + i];
  }
  return static_cast<double>(correct) / static_cast<double>(total_);
}

double ConfusionMatrix::UnderPredictionRate() const {
  if (total_ == 0) return 0.0;
  size_t under = 0;
  for (size_t t = 0; t < num_labels_; ++t) {
    for (size_t p = 0; p < t; ++p) under += counts_[t * num_labels_ + p];
  }
  return static_cast<double>(under) / static_cast<double>(total_);
}

double ConfusionMatrix::OverPredictionRate() const {
  if (total_ == 0) return 0.0;
  size_t over = 0;
  for (size_t t = 0; t < num_labels_; ++t) {
    for (size_t p = t + 1; p < num_labels_; ++p) {
      over += counts_[t * num_labels_ + p];
    }
  }
  return static_cast<double>(over) / static_cast<double>(total_);
}

}  // namespace sight
