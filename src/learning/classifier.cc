#include "learning/classifier.h"

#include <cmath>
#include <unordered_set>

#include "util/string_util.h"

namespace sight {

Result<std::vector<double>> GraphClassifier::PredictWithState(
    const SimilarityMatrix& weights, const LabeledSet& labeled,
    ClassifierState* state, SolveStats* stats) const {
  (void)state;  // Stateless by default: every predict is a cold solve.
  if (stats != nullptr) {
    stats->solver = name();
    stats->iterations = 0;
    stats->warm = false;
    stats->residual = 0.0;
  }
  return Predict(weights, labeled);
}

std::unique_ptr<ClassifierState> GraphClassifier::MakeState() const {
  return nullptr;
}

namespace internal {

Status ValidateLabeledSet(size_t n, const LabeledSet& labeled) {
  if (labeled.indices.size() != labeled.values.size()) {
    return Status::InvalidArgument(
        "labeled indices/values size mismatch");
  }
  if (labeled.size() == 0) {
    return Status::InvalidArgument("labeled set is empty");
  }
  std::unordered_set<size_t> seen;
  for (size_t idx : labeled.indices) {
    if (idx >= n) {
      return Status::OutOfRange(
          StrFormat("labeled index %zu out of range (pool size %zu)", idx,
                    n));
    }
    if (!seen.insert(idx).second) {
      return Status::InvalidArgument(
          StrFormat("labeled index %zu appears twice", idx));
    }
  }
  return Status::OK();
}

}  // namespace internal

int RoundToLabel(double score, int label_min, int label_max) {
  int rounded = static_cast<int>(std::lround(score));
  if (rounded < label_min) return label_min;
  if (rounded > label_max) return label_max;
  return rounded;
}

}  // namespace sight
