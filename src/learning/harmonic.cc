#include "learning/harmonic.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <numeric>

#include "util/logging.h"
#include "util/string_util.h"

namespace sight {
namespace {

// Row-indexed (index, weight) adjacency over a similarity matrix. Borrows
// the matrix's compact view when one was materialized (the learner hot
// path: PoolLearner compacts once and solves every round); otherwise
// builds a private view with a single O(n^2) pass — still one pass total
// instead of one dense scan per solver sweep.
class NeighborView {
 public:
  explicit NeighborView(const SimilarityMatrix& w) : matrix_(&w) {
    if (!w.compacted()) w.BuildCsr(&offsets_, &neighbors_);
  }

  std::span<const Neighbor> Row(size_t i) const {
    if (matrix_->compacted()) return matrix_->Neighbors(i);
    return std::span<const Neighbor>(neighbors_.data() + offsets_[i],
                                     offsets_[i + 1] - offsets_[i]);
  }

 private:
  const SimilarityMatrix* matrix_;
  std::vector<size_t> offsets_;
  std::vector<Neighbor> neighbors_;
};

// The new labeled set must extend the state's fingerprint append-only:
// same indices with bit-identical values as a prefix. Anything else means
// the caller is reusing state across unrelated solves, where a warm start
// would silently change the chained-solve semantics.
Status ValidateStateExtends(const LabeledSet& prev, const LabeledSet& now) {
  if (prev.size() > now.size()) {
    return Status::InvalidArgument(
        "labeled set shrank since the last solve");
  }
  for (size_t i = 0; i < prev.size(); ++i) {
    if (prev.indices[i] != now.indices[i] ||
        prev.values[i] != now.values[i]) {
      return Status::InvalidArgument(
          StrFormat("labeled entry %zu changed since the last solve "
                    "(incremental state requires append-only labels)",
                    i));
    }
  }
  return Status::OK();
}

}  // namespace

void HarmonicSolveState::SeedSolution(std::vector<double> f) {
  f_ = std::move(f);
  labeled_ = LabeledSet{};
  has_solution_ = true;
}

Result<HarmonicFunctionClassifier> HarmonicFunctionClassifier::Create(
    HarmonicConfig config) {
  if (config.max_iterations == 0) {
    return Status::InvalidArgument("max_iterations must be positive");
  }
  if (!(config.tolerance > 0.0)) {
    return Status::InvalidArgument("tolerance must be positive");
  }
  return HarmonicFunctionClassifier(config);
}

Result<std::vector<double>> HarmonicFunctionClassifier::Predict(
    const SimilarityMatrix& weights, const LabeledSet& labeled) const {
  SolveStats stats;
  return Solve(weights, labeled, nullptr, &stats);
}

Result<std::vector<double>> HarmonicFunctionClassifier::PredictWithState(
    const SimilarityMatrix& weights, const LabeledSet& labeled,
    ClassifierState* state, SolveStats* stats) const {
  HarmonicSolveState* harmonic_state = nullptr;
  if (state != nullptr) {
    harmonic_state = dynamic_cast<HarmonicSolveState*>(state);
    if (harmonic_state == nullptr) {
      return Status::InvalidArgument(
          "state was not created by HarmonicFunctionClassifier::MakeState");
    }
  }
  SolveStats local_stats;
  SIGHT_ASSIGN_OR_RETURN(
      std::vector<double> f,
      Solve(weights, labeled, harmonic_state, &local_stats));
  if (stats != nullptr) *stats = local_stats;
  return f;
}

std::unique_ptr<ClassifierState> HarmonicFunctionClassifier::MakeState()
    const {
  return std::make_unique<HarmonicSolveState>();
}

Result<std::vector<double>> HarmonicFunctionClassifier::Solve(
    const SimilarityMatrix& weights, const LabeledSet& labeled,
    HarmonicSolveState* state, SolveStats* stats) const {
  size_t n = weights.size();
  SIGHT_RETURN_IF_ERROR(internal::ValidateLabeledSet(n, labeled));

  double label_mean =
      std::accumulate(labeled.values.begin(), labeled.values.end(), 0.0) /
      static_cast<double>(labeled.size());

  const bool warm = state != nullptr && state->has_solution_;
  if (warm) {
    if (state->f_.size() != n) {
      return Status::InvalidArgument(
          StrFormat("solve state size %zu != pool size %zu",
                    state->f_.size(), n));
    }
    SIGHT_RETURN_IF_ERROR(ValidateStateExtends(state->labeled_, labeled));
  }

  std::vector<bool> is_labeled(n, false);
  // Start vector: the prior solution when warm, the label mean when cold;
  // labeled nodes clamp to their given values either way.
  std::vector<double> f =
      warm ? state->f_ : std::vector<double>(n, label_mean);
  for (size_t i = 0; i < labeled.size(); ++i) {
    is_labeled[labeled.indices[i]] = true;
    f[labeled.indices[i]] = labeled.values[i];
  }

  HarmonicSolver solver = config_.solver;
  if (solver == HarmonicSolver::kAuto) {
    size_t unlabeled = n - labeled.size();
    solver = unlabeled > config_.auto_cg_threshold
                 ? HarmonicSolver::kConjugateGradient
                 : HarmonicSolver::kGaussSeidel;
  }
  stats->warm = warm;
  std::vector<double> result;
  switch (solver) {
    case HarmonicSolver::kGaussSeidel:
      result = SolveGaussSeidel(weights, is_labeled, std::move(f),
                                label_mean, stats);
      break;
    case HarmonicSolver::kConjugateGradient:
      result = SolveConjugateGradient(weights, is_labeled, std::move(f),
                                      label_mean, stats);
      break;
    case HarmonicSolver::kAuto:
      return Status::Internal("unknown harmonic solver");
  }
  if (state != nullptr) {
    state->f_ = result;
    state->labeled_ = labeled;
    state->has_solution_ = true;
    state->total_iterations_ += stats->iterations;
    state->last_residual_ = stats->residual;
  }
  return result;
}

std::vector<double> HarmonicFunctionClassifier::SolveGaussSeidel(
    const SimilarityMatrix& w, const std::vector<bool>& is_labeled,
    std::vector<double> f, double label_mean, SolveStats* stats) const {
  size_t n = w.size();
  NeighborView adj(w);
  std::vector<size_t> unlabeled;
  for (size_t i = 0; i < n; ++i) {
    if (!is_labeled[i]) unlabeled.push_back(i);
  }
  std::vector<double> row_sums(n, 0.0);
  for (size_t u : unlabeled) {
    double sum = 0.0;
    for (const Neighbor& nb : adj.Row(u)) sum += nb.weight;
    row_sums[u] = sum;
    // Isolated nodes take the mean of the current labels. On a cold
    // start f[u] is already the mean, so this only moves values when a
    // warm start carried in a stale mean from an earlier labeled set.
    if (sum <= 0.0) f[u] = label_mean;
  }

  stats->solver = "gauss-seidel";
  stats->iterations = 0;
  stats->residual = 0.0;
  for (size_t iter = 0; iter < config_.max_iterations; ++iter) {
    double max_delta = 0.0;
    for (size_t u : unlabeled) {
      if (row_sums[u] <= 0.0) continue;  // isolated: stays at label mean
      double acc = 0.0;
      for (const Neighbor& nb : adj.Row(u)) acc += nb.weight * f[nb.index];
      double next = acc / row_sums[u];
      max_delta = std::max(max_delta, std::fabs(next - f[u]));
      f[u] = next;
    }
    ++stats->iterations;
    stats->residual = max_delta;
    if (max_delta < config_.tolerance) break;
  }
  return f;
}

std::vector<double> HarmonicFunctionClassifier::SolveConjugateGradient(
    const SimilarityMatrix& w, const std::vector<bool>& is_labeled,
    std::vector<double> f, double label_mean, SolveStats* stats) const {
  stats->solver = "conjugate-gradient";
  stats->iterations = 0;
  stats->residual = 0.0;
  size_t n = w.size();
  NeighborView adj(w);
  std::vector<size_t> unlabeled;
  // Position of node v in the unlabeled block, or SIZE_MAX for labeled
  // nodes, so the sparse matvec can map neighbor indices in O(1).
  constexpr size_t kLabeled = static_cast<size_t>(-1);
  std::vector<size_t> position(n, kLabeled);
  for (size_t i = 0; i < n; ++i) {
    if (!is_labeled[i]) {
      position[i] = unlabeled.size();
      unlabeled.push_back(i);
    }
  }
  size_t m = unlabeled.size();
  if (m == 0) return f;

  // System (D_uu - W_uu + eps I) x = W_ul f_l + eps * mean.
  // The tiny ridge keeps the system SPD even when an unlabeled component
  // has no labeled attachment (which would otherwise make the Laplacian
  // block singular); such components settle at the initialization mean.
  constexpr double kRidge = 1e-8;

  std::vector<double> diag(m, kRidge);
  std::vector<double> b(m, kRidge * label_mean);
  for (size_t a = 0; a < m; ++a) {
    size_t u = unlabeled[a];
    for (const Neighbor& nb : adj.Row(u)) {
      diag[a] += nb.weight;
      if (position[nb.index] == kLabeled) b[a] += nb.weight * f[nb.index];
    }
  }

  auto matvec = [&](const std::vector<double>& x, std::vector<double>* out) {
    for (size_t a = 0; a < m; ++a) {
      double acc = diag[a] * x[a];
      size_t u = unlabeled[a];
      for (const Neighbor& nb : adj.Row(u)) {
        size_t c = position[nb.index];
        if (c != kLabeled) acc -= nb.weight * x[c];
      }
      (*out)[a] = acc;
    }
  };

  // Start from the incoming f (cold: the label mean everywhere; warm: the
  // prior solution) so the initial residual measures distance from it.
  std::vector<double> x(m);
  for (size_t a = 0; a < m; ++a) x[a] = f[unlabeled[a]];
  std::vector<double> ax(m);
  matvec(x, &ax);
  std::vector<double> r(m);
  for (size_t a = 0; a < m; ++a) r[a] = b[a] - ax[a];
  std::vector<double> p = r;
  std::vector<double> ap(m);

  // Converge on the residual relative to ||b|| so the stopping point does
  // not drift with pool size or label scale; the max(1, ...) floor keeps
  // near-zero right-hand sides (no labeled attachment anywhere) from
  // demanding impossible absolute accuracy.
  double b_norm = std::sqrt(std::inner_product(b.begin(), b.end(), b.begin(),
                                               0.0));
  const double stop_threshold = config_.tolerance * std::max(1.0, b_norm);

  double rs_old = std::inner_product(r.begin(), r.end(), r.begin(), 0.0);
  for (size_t iter = 0; iter < config_.max_iterations && iter < m + 8;
       ++iter) {
    if (std::sqrt(rs_old) < stop_threshold) break;
    matvec(p, &ap);
    double p_ap = std::inner_product(p.begin(), p.end(), ap.begin(), 0.0);
    if (p_ap <= 0.0) break;  // numerical safety
    double alpha = rs_old / p_ap;
    for (size_t a = 0; a < m; ++a) {
      x[a] += alpha * p[a];
      r[a] -= alpha * ap[a];
    }
    double rs_new = std::inner_product(r.begin(), r.end(), r.begin(), 0.0);
    double beta = rs_new / rs_old;
    for (size_t a = 0; a < m; ++a) p[a] = r[a] + beta * p[a];
    rs_old = rs_new;
    ++stats->iterations;
  }
  stats->residual = std::sqrt(rs_old);

  for (size_t a = 0; a < m; ++a) f[unlabeled[a]] = x[a];
  return f;
}

}  // namespace sight
