#include "learning/harmonic.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.h"
#include "util/string_util.h"

namespace sight {
namespace {

// Row-indexed (index, weight) adjacency over a similarity matrix. Borrows
// the matrix's compact view when one was materialized (the learner hot
// path: PoolLearner compacts once and solves every round); otherwise
// builds a private view with a single O(n^2) pass — still one pass total
// instead of one dense scan per solver sweep.
class NeighborView {
 public:
  explicit NeighborView(const SimilarityMatrix& w) : matrix_(&w) {
    if (!w.compacted()) w.BuildCsr(&offsets_, &neighbors_);
  }

  std::span<const Neighbor> Row(size_t i) const {
    if (matrix_->compacted()) return matrix_->Neighbors(i);
    return std::span<const Neighbor>(neighbors_.data() + offsets_[i],
                                     offsets_[i + 1] - offsets_[i]);
  }

 private:
  const SimilarityMatrix* matrix_;
  std::vector<size_t> offsets_;
  std::vector<Neighbor> neighbors_;
};

}  // namespace

Result<HarmonicFunctionClassifier> HarmonicFunctionClassifier::Create(
    HarmonicConfig config) {
  if (config.max_iterations == 0) {
    return Status::InvalidArgument("max_iterations must be positive");
  }
  if (!(config.tolerance > 0.0)) {
    return Status::InvalidArgument("tolerance must be positive");
  }
  return HarmonicFunctionClassifier(config);
}

Result<std::vector<double>> HarmonicFunctionClassifier::Predict(
    const SimilarityMatrix& weights, const LabeledSet& labeled) const {
  size_t n = weights.size();
  SIGHT_RETURN_IF_ERROR(internal::ValidateLabeledSet(n, labeled));

  double label_mean =
      std::accumulate(labeled.values.begin(), labeled.values.end(), 0.0) /
      static_cast<double>(labeled.size());

  std::vector<bool> is_labeled(n, false);
  std::vector<double> f(n, label_mean);
  for (size_t i = 0; i < labeled.size(); ++i) {
    is_labeled[labeled.indices[i]] = true;
    f[labeled.indices[i]] = labeled.values[i];
  }

  HarmonicSolver solver = config_.solver;
  if (solver == HarmonicSolver::kAuto) {
    size_t unlabeled = n - labeled.size();
    solver = unlabeled > config_.auto_cg_threshold
                 ? HarmonicSolver::kConjugateGradient
                 : HarmonicSolver::kGaussSeidel;
  }
  switch (solver) {
    case HarmonicSolver::kGaussSeidel:
      return SolveGaussSeidel(weights, is_labeled, std::move(f));
    case HarmonicSolver::kConjugateGradient:
      return SolveConjugateGradient(weights, is_labeled, std::move(f));
    case HarmonicSolver::kAuto:
      break;  // resolved above
  }
  return Status::Internal("unknown harmonic solver");
}

std::vector<double> HarmonicFunctionClassifier::SolveGaussSeidel(
    const SimilarityMatrix& w, const std::vector<bool>& is_labeled,
    std::vector<double> f) const {
  size_t n = w.size();
  NeighborView adj(w);
  std::vector<size_t> unlabeled;
  for (size_t i = 0; i < n; ++i) {
    if (!is_labeled[i]) unlabeled.push_back(i);
  }
  std::vector<double> row_sums(n, 0.0);
  for (size_t u : unlabeled) {
    double sum = 0.0;
    for (const Neighbor& nb : adj.Row(u)) sum += nb.weight;
    row_sums[u] = sum;
  }

  for (size_t iter = 0; iter < config_.max_iterations; ++iter) {
    double max_delta = 0.0;
    for (size_t u : unlabeled) {
      if (row_sums[u] <= 0.0) continue;  // isolated: stays at label mean
      double acc = 0.0;
      for (const Neighbor& nb : adj.Row(u)) acc += nb.weight * f[nb.index];
      double next = acc / row_sums[u];
      max_delta = std::max(max_delta, std::fabs(next - f[u]));
      f[u] = next;
    }
    if (max_delta < config_.tolerance) break;
  }
  return f;
}

std::vector<double> HarmonicFunctionClassifier::SolveConjugateGradient(
    const SimilarityMatrix& w, const std::vector<bool>& is_labeled,
    std::vector<double> f) const {
  size_t n = w.size();
  NeighborView adj(w);
  std::vector<size_t> unlabeled;
  // Position of node v in the unlabeled block, or SIZE_MAX for labeled
  // nodes, so the sparse matvec can map neighbor indices in O(1).
  constexpr size_t kLabeled = static_cast<size_t>(-1);
  std::vector<size_t> position(n, kLabeled);
  for (size_t i = 0; i < n; ++i) {
    if (!is_labeled[i]) {
      position[i] = unlabeled.size();
      unlabeled.push_back(i);
    }
  }
  size_t m = unlabeled.size();
  if (m == 0) return f;

  // System (D_uu - W_uu + eps I) x = W_ul f_l + eps * mean.
  // The tiny ridge keeps the system SPD even when an unlabeled component
  // has no labeled attachment (which would otherwise make the Laplacian
  // block singular); such components settle at the initialization mean.
  constexpr double kRidge = 1e-8;
  const double mean = f[unlabeled[0]];  // unlabeled start at label mean

  std::vector<double> diag(m, kRidge);
  std::vector<double> b(m, kRidge * mean);
  for (size_t a = 0; a < m; ++a) {
    size_t u = unlabeled[a];
    for (const Neighbor& nb : adj.Row(u)) {
      diag[a] += nb.weight;
      if (position[nb.index] == kLabeled) b[a] += nb.weight * f[nb.index];
    }
  }

  auto matvec = [&](const std::vector<double>& x, std::vector<double>* out) {
    for (size_t a = 0; a < m; ++a) {
      double acc = diag[a] * x[a];
      size_t u = unlabeled[a];
      for (const Neighbor& nb : adj.Row(u)) {
        size_t c = position[nb.index];
        if (c != kLabeled) acc -= nb.weight * x[c];
      }
      (*out)[a] = acc;
    }
  };

  std::vector<double> x(m, mean);
  std::vector<double> ax(m);
  matvec(x, &ax);
  std::vector<double> r(m);
  for (size_t a = 0; a < m; ++a) r[a] = b[a] - ax[a];
  std::vector<double> p = r;
  std::vector<double> ap(m);

  // Converge on the residual relative to ||b|| so the stopping point does
  // not drift with pool size or label scale; the max(1, ...) floor keeps
  // near-zero right-hand sides (no labeled attachment anywhere) from
  // demanding impossible absolute accuracy.
  double b_norm = std::sqrt(std::inner_product(b.begin(), b.end(), b.begin(),
                                               0.0));
  const double stop_threshold = config_.tolerance * std::max(1.0, b_norm);

  double rs_old = std::inner_product(r.begin(), r.end(), r.begin(), 0.0);
  for (size_t iter = 0; iter < config_.max_iterations && iter < m + 8;
       ++iter) {
    if (std::sqrt(rs_old) < stop_threshold) break;
    matvec(p, &ap);
    double p_ap = std::inner_product(p.begin(), p.end(), ap.begin(), 0.0);
    if (p_ap <= 0.0) break;  // numerical safety
    double alpha = rs_old / p_ap;
    for (size_t a = 0; a < m; ++a) {
      x[a] += alpha * p[a];
      r[a] -= alpha * ap[a];
    }
    double rs_new = std::inner_product(r.begin(), r.end(), r.begin(), 0.0);
    double beta = rs_new / rs_old;
    for (size_t a = 0; a < m; ++a) p[a] = r[a] + beta * p[a];
    rs_old = rs_new;
  }

  for (size_t a = 0; a < m; ++a) f[unlabeled[a]] = x[a];
  return f;
}

}  // namespace sight
