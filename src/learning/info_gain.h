// Entropy, information gain, and information gain ratio (Quinlan C4.5 /
// MacKay) over categorical attributes and discrete labels.
//
// The paper uses information gain ratio to mine attribute importance
// (Definition 6, Tables I and II): an attribute whose values strongly
// reduce label entropy carries more of the owner's labeling rationale.

// Every measure has a string-column and a code-column overload (the
// latter for dictionary-encoded pools, graph/profile_codec.h). Both
// reduce to one core over dense ids assigned in first-occurrence order,
// so partitions are iterated — and their floating-point contributions
// summed — in the same order on both paths: as long as two entries are
// equal as strings iff they are equal as codes (which the codec
// guarantees), the results are bitwise-identical.

#ifndef SIGHT_LEARNING_INFO_GAIN_H_
#define SIGHT_LEARNING_INFO_GAIN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace sight {

/// Shannon entropy (bits) of a discrete distribution given by counts.
/// Zero-count entries are ignored; all-zero counts give 0.
double EntropyFromCounts(const std::vector<size_t>& counts);

/// Entropy (bits) of the label multiset.
double LabelEntropy(const std::vector<int>& labels);

/// Information gain of `attribute_values` w.r.t. `labels`:
/// H(labels) - sum_v p(v) H(labels | value = v).
/// Errors on size mismatch or empty input.
[[nodiscard]]
Result<double> InformationGain(const std::vector<std::string>& attribute_values,
                               const std::vector<int>& labels);

/// Code-column overload: one dictionary code per instance (any codes —
/// only equality matters, so kMissingCode partitions like any value).
[[nodiscard]]
Result<double> InformationGain(const std::vector<uint32_t>& attribute_codes,
                               const std::vector<int>& labels);

/// Split information: entropy of the attribute-value distribution itself.
[[nodiscard]]
Result<double> SplitInformation(
    const std::vector<std::string>& attribute_values);

[[nodiscard]]
Result<double> SplitInformation(const std::vector<uint32_t>& attribute_codes);

/// C4.5 gain ratio: InformationGain / SplitInformation. Returns 0 when the
/// attribute has a single value (no split, no information).
[[nodiscard]]
Result<double> GainRatio(const std::vector<std::string>& attribute_values,
                         const std::vector<int>& labels);

[[nodiscard]]
Result<double> GainRatio(const std::vector<uint32_t>& attribute_codes,
                         const std::vector<int>& labels);

/// Chance-corrected gain ratio: subtracts the expected information gain of
/// a *random* attribute with the same arity before normalizing,
/// IG_adj = max(0, IG - (V-1)(L-1) / (2 N ln 2)) (the Miller-Madow bias of
/// the plug-in conditional entropy), where V = distinct attribute values,
/// L = distinct labels, N = samples.
///
/// On small labeled samples (the paper mines importance from ~86 labels
/// per owner) a high-arity attribute like last name scores a large raw
/// gain purely by chance — dozens of near-singleton partitions are pure by
/// accident. The correction removes exactly that chance mass, so
/// informative low-arity attributes (gender) keep their score while noise
/// attributes collapse to ~0.
[[nodiscard]]
Result<double> CorrectedGainRatio(
    const std::vector<std::string>& attribute_values,
    const std::vector<int>& labels);

[[nodiscard]]
Result<double> CorrectedGainRatio(
    const std::vector<uint32_t>& attribute_codes,
    const std::vector<int>& labels);

}  // namespace sight

#endif  // SIGHT_LEARNING_INFO_GAIN_H_
