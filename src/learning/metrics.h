// Prediction quality metrics: RMSE (the paper's Definition 4 core),
// exact-match accuracy (the paper's 83.36% headline), MAE, and a discrete
// confusion matrix.

#ifndef SIGHT_LEARNING_METRICS_H_
#define SIGHT_LEARNING_METRICS_H_

#include <cstddef>
#include <vector>

#include "util/status.h"

namespace sight {

/// Root mean square error between parallel prediction/truth vectors.
[[nodiscard]]
Result<double> Rmse(const std::vector<double>& predictions,
                    const std::vector<double>& truth);

/// Mean absolute error.
[[nodiscard]]
Result<double> MeanAbsoluteError(const std::vector<double>& predictions,
                                 const std::vector<double>& truth);

/// Fraction of exact matches between discrete label vectors.
[[nodiscard]]
Result<double> ExactMatchRate(const std::vector<int>& predictions,
                              const std::vector<int>& truth);

/// Row-indexed-by-truth confusion matrix over labels in
/// [label_min, label_max].
class ConfusionMatrix {
 public:
  [[nodiscard]]
  static Result<ConfusionMatrix> Create(int label_min, int label_max);

  /// OutOfRange when either label is outside the configured range.
  [[nodiscard]] Status Add(int truth, int prediction);

  size_t Count(int truth, int prediction) const;
  size_t Total() const { return total_; }

  /// Overall accuracy (0 when empty).
  double Accuracy() const;

  /// Fraction of instances predicted *below* their true label — the
  /// dangerous direction in the paper's privacy setting (a risky stranger
  /// reported as safe).
  double UnderPredictionRate() const;

  /// Fraction predicted above their true label (extra vigilance; benign).
  double OverPredictionRate() const;

  int label_min() const { return label_min_; }
  int label_max() const { return label_max_; }

 private:
  ConfusionMatrix(int label_min, int label_max);

  size_t IndexOf(int label) const {
    return static_cast<size_t>(label - label_min_);
  }

  int label_min_;
  int label_max_;
  size_t num_labels_;
  std::vector<size_t> counts_;  // row-major [truth][prediction]
  size_t total_ = 0;
};

}  // namespace sight

#endif  // SIGHT_LEARNING_METRICS_H_
