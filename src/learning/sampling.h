// Sampling strategies for the active-learning round loop.
//
// The paper samples strangers uniformly at random from each pool
// (pool-based selection; the pools themselves carry the informativeness).
// UncertaintySampler is the classic alternative — pick the instances whose
// continuous prediction is farthest from any discrete label — and is
// compared against the paper's choice in the ablation bench.

#ifndef SIGHT_LEARNING_SAMPLING_H_
#define SIGHT_LEARNING_SAMPLING_H_

#include <string>
#include <vector>

#include "util/random.h"
#include "util/status.h"

namespace sight {

/// Context a sampler sees when choosing which instances to query.
struct SamplingContext {
  /// Candidate (unlabeled) instance indices within the pool.
  const std::vector<size_t>& candidates;
  /// Current continuous predictions for the whole pool (may be empty on
  /// the first round, before any model exists).
  const std::vector<double>& predictions;
};

/// Chooses up to k candidates to be labeled next.
class Sampler {
 public:
  virtual ~Sampler() = default;

  /// Returns at most k distinct indices drawn from context.candidates.
  virtual std::vector<size_t> Select(const SamplingContext& context, size_t k,
                                     Rng* rng) const = 0;

  virtual std::string name() const = 0;
};

/// Uniform random selection (the paper's strategy).
class RandomSampler : public Sampler {
 public:
  std::vector<size_t> Select(const SamplingContext& context, size_t k,
                             Rng* rng) const override;
  std::string name() const override { return "random"; }
};

/// Picks the candidates whose prediction is closest to halfway between two
/// labels (maximum rounding ambiguity). Falls back to random on the first
/// round when no predictions exist.
class UncertaintySampler : public Sampler {
 public:
  std::vector<size_t> Select(const SamplingContext& context, size_t k,
                             Rng* rng) const override;
  std::string name() const override { return "uncertainty"; }
};

}  // namespace sight

#endif  // SIGHT_LEARNING_SAMPLING_H_
