#include "learning/sampling.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace sight {

std::vector<size_t> RandomSampler::Select(const SamplingContext& context,
                                          size_t k, Rng* rng) const {
  SIGHT_CHECK(rng != nullptr);
  const auto& candidates = context.candidates;
  std::vector<size_t> picks =
      rng->SampleWithoutReplacement(candidates.size(), k);
  std::vector<size_t> result;
  result.reserve(picks.size());
  for (size_t p : picks) result.push_back(candidates[p]);
  return result;
}

std::vector<size_t> UncertaintySampler::Select(const SamplingContext& context,
                                               size_t k, Rng* rng) const {
  SIGHT_CHECK(rng != nullptr);
  const auto& candidates = context.candidates;
  const auto& predictions = context.predictions;
  bool has_predictions = true;
  for (size_t c : candidates) {
    if (c >= predictions.size()) {
      has_predictions = false;
      break;
    }
  }
  if (!has_predictions || predictions.empty()) {
    return RandomSampler().Select(context, k, rng);
  }
  // Ambiguity = distance of the continuous score from the nearest integer
  // label; 0.5 is maximally ambiguous.
  std::vector<std::pair<double, size_t>> scored;
  scored.reserve(candidates.size());
  for (size_t c : candidates) {
    double f = predictions[c];
    double ambiguity = std::fabs(f - std::round(f));
    scored.emplace_back(ambiguity, c);
  }
  size_t take = std::min(k, scored.size());
  std::partial_sort(scored.begin(),
                    scored.begin() + static_cast<ptrdiff_t>(take),
                    scored.end(), std::greater<>());
  std::vector<size_t> result;
  result.reserve(take);
  for (size_t t = 0; t < take; ++t) result.push_back(scored[t].second);
  return result;
}

}  // namespace sight
