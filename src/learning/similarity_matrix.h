// Dense symmetric similarity (edge-weight) matrix for a pool of instances.
//
// Pools in the risk pipeline are small (tens to a few thousand strangers),
// so a dense lower-triangular store is simpler and faster than a sparse
// structure. Zhu's harmonic classifier consumes this as the weighted graph
// over labeled + unlabeled nodes. An optional top-k sparsification keeps
// only the strongest edges per node, which both denoises and speeds up
// propagation for larger pools.

#ifndef SIGHT_LEARNING_SIMILARITY_MATRIX_H_
#define SIGHT_LEARNING_SIMILARITY_MATRIX_H_

#include <cstddef>
#include <vector>

#include "util/status.h"

namespace sight {

/// Symmetric n x n matrix with a zero diagonal (no self-edges).
class SimilarityMatrix {
 public:
  explicit SimilarityMatrix(size_t n) : n_(n), data_(n * (n + 1) / 2, 0.0) {}

  size_t size() const { return n_; }

  /// Sets w(i, j) = w(j, i) = value. Diagonal writes are ignored.
  void Set(size_t i, size_t j, double value);

  double Get(size_t i, size_t j) const;

  /// Sum of row i (node degree in the weighted graph).
  double RowSum(size_t i) const;

  /// Keeps, for every node, only its k strongest incident edges (an edge
  /// survives if it is in the top-k of either endpoint). k = 0 clears all.
  void SparsifyTopK(size_t k);

  /// Number of non-zero off-diagonal entries (each unordered pair once).
  size_t NumEdges() const;

 private:
  size_t Index(size_t i, size_t j) const {
    if (i < j) std::swap(i, j);
    return i * (i + 1) / 2 + j;  // lower triangle, i >= j
  }

  size_t n_;
  std::vector<double> data_;
};

}  // namespace sight

#endif  // SIGHT_LEARNING_SIMILARITY_MATRIX_H_
