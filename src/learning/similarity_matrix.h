// Dense symmetric similarity (edge-weight) matrix for a pool of instances,
// with an optional compact (CSR) neighbor view for sparse iteration.
//
// Pools in the risk pipeline are small (tens to a few thousand strangers),
// so a dense lower-triangular store is the simplest write target while the
// matrix is being built. Zhu's harmonic classifier consumes this as the
// weighted graph over labeled + unlabeled nodes. An optional top-k
// sparsification keeps only the strongest edges per node, which both
// denoises and speeds up propagation for larger pools — and Compact()
// materializes per-row (index, weight) adjacency lists so solvers iterate
// O(degree) neighbors per node instead of O(n) dense scans.

#ifndef SIGHT_LEARNING_SIMILARITY_MATRIX_H_
#define SIGHT_LEARNING_SIMILARITY_MATRIX_H_

#include <cstddef>
#include <span>
#include <vector>

#include "util/status.h"

namespace sight {

/// One directed CSR entry: the neighbor's pool index and the edge weight.
struct Neighbor {
  size_t index;
  double weight;
};

/// Symmetric n x n matrix with a zero diagonal (no self-edges).
class SimilarityMatrix {
 public:
  explicit SimilarityMatrix(size_t n) : n_(n), data_(n * (n + 1) / 2, 0.0) {}

  size_t size() const { return n_; }

  /// Sets w(i, j) = w(j, i) = value. Diagonal writes are ignored.
  /// Invalidates a previously built compact view.
  void Set(size_t i, size_t j, double value);

  /// Sets w(i, j0 + k) = values[k] for k in [0, count). Requires
  /// j0 + count <= i (a strictly-lower-triangle span), which makes the
  /// destination one contiguous run of the packed store — this is the
  /// write path of the tiled PS matrix-build kernels
  /// (similarity/ps_kernels.h), one bounds check and one compact-view
  /// invalidation per span instead of per pair. Concurrent SetRowSpan
  /// calls on disjoint spans of a never-compacted matrix are safe.
  void SetRowSpan(size_t i, size_t j0, const double* values, size_t count);

  double Get(size_t i, size_t j) const;

  /// Sum of row i (node degree in the weighted graph).
  double RowSum(size_t i) const;

  /// Keeps, for every node, only its k strongest incident edges (an edge
  /// survives if it is in the top-k of either endpoint). k = 0 clears all.
  /// Invalidates a previously built compact view.
  void SparsifyTopK(size_t k);

  /// Number of non-zero off-diagonal entries (each unordered pair once).
  size_t NumEdges() const;

  /// Materializes per-row (index, weight) adjacency lists over the
  /// positive-weight entries so Neighbors(i) is available. Rows are sorted
  /// by neighbor index. No-op if already compacted; any later Set() or
  /// SparsifyTopK() invalidates the view.
  void Compact();

  bool compacted() const { return compacted_; }

  /// Row i of the compact view. Requires a prior Compact().
  std::span<const Neighbor> Neighbors(size_t i) const;

  /// Writes the CSR arrays for the current contents into the outputs
  /// (same layout Compact() caches: `offsets` has n + 1 entries, row i of
  /// `neighbors` is [offsets[i], offsets[i+1]) sorted by index). Lets a
  /// reader of a const, non-compacted matrix build its own view with a
  /// single O(n^2) pass.
  void BuildCsr(std::vector<size_t>* offsets,
                std::vector<Neighbor>* neighbors) const;

 private:
  size_t Index(size_t i, size_t j) const {
    if (i < j) std::swap(i, j);
    return i * (i + 1) / 2 + j;  // lower triangle, i >= j
  }

  void InvalidateCompact();

  size_t n_;
  std::vector<double> data_;

  // Compact (CSR) view; valid iff compacted_.
  bool compacted_ = false;
  std::vector<size_t> row_offsets_;  // n_ + 1 entries
  std::vector<Neighbor> neighbors_;  // both directions of every edge
};

}  // namespace sight

#endif  // SIGHT_LEARNING_SIMILARITY_MATRIX_H_
