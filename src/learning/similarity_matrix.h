// Dense symmetric similarity (edge-weight) matrix for a pool of instances,
// with an optional compact (CSR) neighbor view for sparse iteration.
//
// Pools in the risk pipeline are small (tens to a few thousand strangers),
// so a dense lower-triangular store is the simplest write target while the
// matrix is being built. Zhu's harmonic classifier consumes this as the
// weighted graph over labeled + unlabeled nodes. An optional top-k
// sparsification keeps only the strongest edges per node, which both
// denoises and speeds up propagation for larger pools — and Compact()
// materializes per-row (index, weight) adjacency lists so solvers iterate
// O(degree) neighbors per node instead of O(n) dense scans.

#ifndef SIGHT_LEARNING_SIMILARITY_MATRIX_H_
#define SIGHT_LEARNING_SIMILARITY_MATRIX_H_

#include <cstddef>
#include <span>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace sight {

/// One directed CSR entry: the neighbor's pool index and the edge weight.
struct Neighbor {
  size_t index;
  double weight;
};

/// Symmetric n x n matrix with a zero diagonal (no self-edges).
class SimilarityMatrix {
 public:
  explicit SimilarityMatrix(size_t n) : n_(n), data_(n * (n + 1) / 2, 0.0) {}

  size_t size() const { return n_; }

  /// Sets w(i, j) = w(j, i) = value. Diagonal writes are ignored.
  /// On a compacted matrix, a pair touching a row appended after
  /// Compact() is staged into the overlay (the view stays valid and
  /// Neighbors() reflects the write); a pair between two pre-Compact()
  /// rows invalidates the view as before.
  void Set(size_t i, size_t j, double value);

  /// Grows the matrix by `count` rows (initially all-zero). The packed
  /// lower-triangle store appends in place, so existing entries are
  /// untouched. A compact view stays valid: writes into the new rows are
  /// staged (see Set()) until MergeCompact() folds them in. This is the
  /// stranger-arrival path of the RiskSession crawler flow.
  void AppendRows(size_t count);

  /// Folds staged rows/edges into the compact view with one O(entries)
  /// offset rebuild and row copies — no per-row sorts, no O(n^2) dense
  /// rescan. No-op when nothing is staged; falls back to Compact() when
  /// no view exists yet.
  void MergeCompact();

  /// Rows appended since the compact view was built (0 when not
  /// compacted).
  size_t num_staged_rows() const {
    return compacted_ ? n_ - base_rows_ : 0;
  }

  /// Positive-weight pairs staged in the overlay, not yet merged.
  size_t num_staged_edges() const { return staged_edges_; }

  /// Sets w(i, j0 + k) = values[k] for k in [0, count). Requires
  /// j0 + count <= i (a strictly-lower-triangle span), which makes the
  /// destination one contiguous run of the packed store — this is the
  /// write path of the tiled PS matrix-build kernels
  /// (similarity/ps_kernels.h), one bounds check and one compact-view
  /// invalidation per span instead of per pair. Concurrent SetRowSpan
  /// calls on disjoint spans of a never-compacted matrix are safe.
  void SetRowSpan(size_t i, size_t j0, const double* values, size_t count);

  double Get(size_t i, size_t j) const;

  /// Sum of row i (node degree in the weighted graph).
  double RowSum(size_t i) const;

  /// Keeps, for every node, only its k strongest incident edges (an edge
  /// survives if it is in the top-k of either endpoint). k = 0 clears all.
  /// Invalidates a previously built compact view.
  void SparsifyTopK(size_t k);

  /// Number of non-zero off-diagonal entries (each unordered pair once).
  size_t NumEdges() const;

  /// Materializes per-row (index, weight) adjacency lists over the
  /// positive-weight entries so Neighbors(i) is available. Rows are sorted
  /// by neighbor index. Equivalent to MergeCompact() if already
  /// compacted; a later SparsifyTopK() (or a Set() between two
  /// pre-Compact() rows) invalidates the view.
  void Compact();

  bool compacted() const { return compacted_; }

  /// Row i of the compact view (staged appends overlaid). Requires a
  /// prior Compact().
  std::span<const Neighbor> Neighbors(size_t i) const;

  /// Writes the CSR arrays for the current contents into the outputs
  /// (same layout Compact() caches: `offsets` has n + 1 entries, row i of
  /// `neighbors` is [offsets[i], offsets[i+1]) sorted by index). Lets a
  /// reader of a const, non-compacted matrix build its own view with a
  /// single O(n^2) pass.
  void BuildCsr(std::vector<size_t>* offsets,
                std::vector<Neighbor>* neighbors) const;

 private:
  size_t Index(size_t i, size_t j) const {
    if (i < j) std::swap(i, j);
    return i * (i + 1) / 2 + j;  // lower triangle, i >= j
  }

  void InvalidateCompact();

  /// Stages w(i, j) = value into the overlay rows of both endpoints.
  /// Requires compacted_ and max(i, j) >= base_rows_ (the pair involves
  /// an appended row, so it cannot already exist in the base view).
  void StageEdge(size_t i, size_t j, double value);

  /// Mutable overlay row for i: the tail row when i was appended, else
  /// the patched copy of base row i (created on first touch).
  std::vector<Neighbor>& MutableOverlayRow(size_t i);

  size_t n_;
  std::vector<double> data_;

  // Compact (CSR) view; valid iff compacted_. Base arrays cover rows
  // [0, base_rows_); rows appended later live in tail_rows_, and base
  // rows that gained a staged neighbor are shadowed whole (sorted, fully
  // merged) in patched_rows_, so Neighbors() always returns one
  // contiguous span.
  bool compacted_ = false;
  std::vector<size_t> row_offsets_;  // base_rows_ + 1 entries
  std::vector<Neighbor> neighbors_;  // both directions of every edge
  size_t base_rows_ = 0;             // rows covered by the base view
  size_t staged_edges_ = 0;          // staged positive pairs, not merged
  std::vector<std::vector<Neighbor>> tail_rows_;  // row base_rows_ + k
  std::unordered_map<size_t, std::vector<Neighbor>> patched_rows_;
};

}  // namespace sight

#endif  // SIGHT_LEARNING_SIMILARITY_MATRIX_H_
