// Semi-supervised learning with Gaussian fields and harmonic functions
// (Zhu, Ghahramani, Lafferty, ICML 2003) — the classifier the risk paper
// adopts.
//
// Given a weighted graph over labeled and unlabeled nodes, the predicted
// score vector f is the harmonic function: f equals the given labels on
// labeled nodes and satisfies f(u) = sum_v w(u,v) f(v) / sum_v w(u,v) on
// unlabeled nodes — each unlabeled node takes the weight-averaged value of
// its neighbors. This is the unique minimizer of the quadratic energy
// E(f) = 1/2 sum w(u,v) (f(u) - f(v))^2 with the labels clamped, i.e. the
// solution of (D_uu - W_uu) f_u = W_ul f_l, and equals the expected label
// under the absorbing random walk the paper mentions ("the random walk
// strategy presented in [18]").
//
// Two solvers: Gauss-Seidel label propagation (default; monotone, simple)
// and conjugate gradient on the Laplacian system (faster convergence on
// poorly mixing graphs). Both iterate per-row neighbor lists (the
// SimilarityMatrix compact view, built on the fly when the caller has not
// compacted), so a sweep costs O(edges) rather than O(n^2). Isolated
// unlabeled components fall back to the mean of the given labels.

#ifndef SIGHT_LEARNING_HARMONIC_H_
#define SIGHT_LEARNING_HARMONIC_H_

#include <string>
#include <vector>

#include "learning/classifier.h"
#include "learning/similarity_matrix.h"
#include "util/status.h"

namespace sight {

enum class HarmonicSolver {
  kGaussSeidel,
  kConjugateGradient,
  /// Gauss-Seidel for small systems, conjugate gradient once the
  /// unlabeled set is large (CG converges in far fewer O(n^2) passes on
  /// big dense pools — ~3-4x faster at n=400 in perf_components).
  kAuto,
};

struct HarmonicConfig {
  HarmonicSolver solver = HarmonicSolver::kAuto;
  size_t max_iterations = 1000;
  /// Convergence: max absolute score change per sweep (Gauss-Seidel) or
  /// residual norm relative to ||b|| (CG) below this stops iterating.
  double tolerance = 1e-7;
  /// kAuto switches to conjugate gradient above this many unlabeled
  /// nodes.
  size_t auto_cg_threshold = 128;
};

class HarmonicFunctionClassifier : public GraphClassifier {
 public:
  [[nodiscard]]
  static Result<HarmonicFunctionClassifier> Create(HarmonicConfig config);

  [[nodiscard]]
  Result<std::vector<double>> Predict(const SimilarityMatrix& weights,
                                      const LabeledSet& labeled) const override;

  std::string name() const override { return "harmonic"; }

  const HarmonicConfig& config() const { return config_; }

 private:
  explicit HarmonicFunctionClassifier(HarmonicConfig config)
      : config_(config) {}

  std::vector<double> SolveGaussSeidel(const SimilarityMatrix& w,
                                       const std::vector<bool>& is_labeled,
                                       std::vector<double> f) const;
  std::vector<double> SolveConjugateGradient(
      const SimilarityMatrix& w, const std::vector<bool>& is_labeled,
      std::vector<double> f) const;

  HarmonicConfig config_;
};

}  // namespace sight

#endif  // SIGHT_LEARNING_HARMONIC_H_
