// Semi-supervised learning with Gaussian fields and harmonic functions
// (Zhu, Ghahramani, Lafferty, ICML 2003) — the classifier the risk paper
// adopts.
//
// Given a weighted graph over labeled and unlabeled nodes, the predicted
// score vector f is the harmonic function: f equals the given labels on
// labeled nodes and satisfies f(u) = sum_v w(u,v) f(v) / sum_v w(u,v) on
// unlabeled nodes — each unlabeled node takes the weight-averaged value of
// its neighbors. This is the unique minimizer of the quadratic energy
// E(f) = 1/2 sum w(u,v) (f(u) - f(v))^2 with the labels clamped, i.e. the
// solution of (D_uu - W_uu) f_u = W_ul f_l, and equals the expected label
// under the absorbing random walk the paper mentions ("the random walk
// strategy presented in [18]").
//
// Two solvers: Gauss-Seidel label propagation (default; monotone, simple)
// and conjugate gradient on the Laplacian system (faster convergence on
// poorly mixing graphs). Both iterate per-row neighbor lists (the
// SimilarityMatrix compact view, built on the fly when the caller has not
// compacted), so a sweep costs O(edges) rather than O(n^2). Isolated
// unlabeled components fall back to the mean of the given labels.

#ifndef SIGHT_LEARNING_HARMONIC_H_
#define SIGHT_LEARNING_HARMONIC_H_

#include <memory>
#include <string>
#include <vector>

#include "learning/classifier.h"
#include "learning/similarity_matrix.h"
#include "util/status.h"

namespace sight {

/// Persistent solve state for warm-started incremental re-solves across
/// active-learning rounds (and crawler ticks). Holds the previous
/// converged solution plus a fingerprint of the labeled set it was
/// solved against; PredictWithState() seeds the next solve from the
/// stored vector and requires the new labeled set to extend the
/// fingerprint append-only (indices and bit-identical values), so the
/// warm iterate chain is exactly the chain a from-scratch replay of the
/// label history would produce — see DESIGN.md §12 for why that makes
/// warm and cold bitwise-equal.
class HarmonicSolveState final : public ClassifierState {
 public:
  /// Installs a starting vector (one value per pool member) without any
  /// labeled-set history — the cross-tick seed of the RiskSession
  /// crawler flow. The next solve starts from it and may extend it with
  /// any labeled set.
  void SeedSolution(std::vector<double> f) override;

  bool has_solution() const { return has_solution_; }
  const std::vector<double>& solution() const { return f_; }
  /// Labeled set of the last completed solve (empty after SeedSolution).
  const LabeledSet& labeled_fingerprint() const { return labeled_; }
  /// Sweeps/iterations accumulated across every solve through this
  /// state.
  size_t total_iterations() const { return total_iterations_; }
  double last_residual() const { return last_residual_; }

 private:
  friend class HarmonicFunctionClassifier;

  std::vector<double> f_;
  LabeledSet labeled_;
  bool has_solution_ = false;
  size_t total_iterations_ = 0;
  double last_residual_ = 0.0;
};

enum class HarmonicSolver {
  kGaussSeidel,
  kConjugateGradient,
  /// Gauss-Seidel for small systems, conjugate gradient once the
  /// unlabeled set is large (CG converges in far fewer O(n^2) passes on
  /// big dense pools — ~3-4x faster at n=400 in perf_components).
  kAuto,
};

struct HarmonicConfig {
  HarmonicSolver solver = HarmonicSolver::kAuto;
  size_t max_iterations = 1000;
  /// Convergence: max absolute score change per sweep (Gauss-Seidel) or
  /// residual norm relative to ||b|| (CG) below this stops iterating.
  double tolerance = 1e-7;
  /// kAuto switches to conjugate gradient above this many unlabeled
  /// nodes.
  size_t auto_cg_threshold = 128;
};

class HarmonicFunctionClassifier : public GraphClassifier {
 public:
  [[nodiscard]]
  static Result<HarmonicFunctionClassifier> Create(HarmonicConfig config);

  [[nodiscard]]
  Result<std::vector<double>> Predict(const SimilarityMatrix& weights,
                                      const LabeledSet& labeled) const override;

  /// Warm-startable variant: with a HarmonicSolveState carrying a prior
  /// solution, the solve starts from it (Gauss-Seidel seeds its sweeps
  /// from the stored f; CG computes the initial residual against it) and
  /// the state is updated with the converged result. The labeled set
  /// must extend the state's fingerprint append-only. `state == nullptr`
  /// is the cold case, identical to Predict(). Passing a state of any
  /// other classifier is an InvalidArgument.
  [[nodiscard]]
  Result<std::vector<double>> PredictWithState(
      const SimilarityMatrix& weights, const LabeledSet& labeled,
      ClassifierState* state, SolveStats* stats = nullptr) const override;

  [[nodiscard]] std::unique_ptr<ClassifierState> MakeState() const override;

  std::string name() const override { return "harmonic"; }

  const HarmonicConfig& config() const { return config_; }

 private:
  explicit HarmonicFunctionClassifier(HarmonicConfig config)
      : config_(config) {}

  /// Shared predict core: cold when `state` is null or empty, warm
  /// otherwise. Fills `stats` (never null here) and updates `state`.
  [[nodiscard]]
  Result<std::vector<double>> Solve(const SimilarityMatrix& weights,
                                    const LabeledSet& labeled,
                                    HarmonicSolveState* state,
                                    SolveStats* stats) const;

  std::vector<double> SolveGaussSeidel(const SimilarityMatrix& w,
                                       const std::vector<bool>& is_labeled,
                                       std::vector<double> f,
                                       double label_mean,
                                       SolveStats* stats) const;
  std::vector<double> SolveConjugateGradient(
      const SimilarityMatrix& w, const std::vector<bool>& is_labeled,
      std::vector<double> f, double label_mean, SolveStats* stats) const;

  HarmonicConfig config_;
};

}  // namespace sight

#endif  // SIGHT_LEARNING_HARMONIC_H_
