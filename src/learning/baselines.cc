#include "learning/baselines.h"

#include <algorithm>
#include <map>
#include <numeric>

namespace sight {

Result<KnnClassifier> KnnClassifier::Create(size_t k) {
  if (k == 0) return Status::InvalidArgument("k must be positive");
  return KnnClassifier(k);
}

Result<std::vector<double>> KnnClassifier::Predict(
    const SimilarityMatrix& weights, const LabeledSet& labeled) const {
  size_t n = weights.size();
  SIGHT_RETURN_IF_ERROR(internal::ValidateLabeledSet(n, labeled));

  double label_mean =
      std::accumulate(labeled.values.begin(), labeled.values.end(), 0.0) /
      static_cast<double>(labeled.size());

  std::vector<double> f(n, label_mean);
  std::vector<bool> is_labeled(n, false);
  for (size_t i = 0; i < labeled.size(); ++i) {
    is_labeled[labeled.indices[i]] = true;
    f[labeled.indices[i]] = labeled.values[i];
  }

  std::vector<std::pair<double, double>> sims;  // (similarity, label value)
  for (size_t u = 0; u < n; ++u) {
    if (is_labeled[u]) continue;
    sims.clear();
    for (size_t i = 0; i < labeled.size(); ++i) {
      double w = weights.Get(u, labeled.indices[i]);
      if (w > 0.0) sims.emplace_back(w, labeled.values[i]);
    }
    if (sims.empty()) continue;  // stays at mean
    size_t take = std::min(k_, sims.size());
    std::partial_sort(sims.begin(), sims.begin() + static_cast<ptrdiff_t>(take),
                      sims.end(), std::greater<>());
    double wsum = 0.0;
    double acc = 0.0;
    for (size_t t = 0; t < take; ++t) {
      wsum += sims[t].first;
      acc += sims[t].first * sims[t].second;
    }
    f[u] = acc / wsum;
  }
  return f;
}

Result<std::vector<double>> MajorityClassifier::Predict(
    const SimilarityMatrix& weights, const LabeledSet& labeled) const {
  size_t n = weights.size();
  SIGHT_RETURN_IF_ERROR(internal::ValidateLabeledSet(n, labeled));

  std::map<double, size_t> counts;
  for (double v : labeled.values) ++counts[v];
  double majority = counts.begin()->first;
  size_t best = counts.begin()->second;
  for (const auto& [value, count] : counts) {
    if (count > best) {  // ties keep the smaller label
      best = count;
      majority = value;
    }
  }

  std::vector<double> f(n, majority);
  for (size_t i = 0; i < labeled.size(); ++i) {
    f[labeled.indices[i]] = labeled.values[i];
  }
  return f;
}

}  // namespace sight
