// Multiclass harmonic-function classifier with Class Mass Normalization
// (the full formulation of Zhu, Ghahramani, Lafferty 2003).
//
// HarmonicFunctionClassifier embeds the ordinal labels {1,2,3} as reals
// and solves one harmonic problem — compact and usually sufficient. The
// original paper instead solves one harmonic function per class c with
// boundary values 1[y = c]; f_c(u) is then the probability that the
// absorbing random walk from u first hits a c-labeled node. Class Mass
// Normalization (CMN) rescales those scores so the predicted class mass
// matches the empirical class priors of the labeled set — Zhu et al.'s
// fix for harmonic solutions drifting toward whichever class dominates
// the labeled sample.
//
// The continuous output is the posterior-expected label value
// sum_c c * p_c(u), which keeps the GraphClassifier contract (rounding
// gives a discrete label; values stay in [label_min, label_max]).

#ifndef SIGHT_LEARNING_MULTICLASS_HARMONIC_H_
#define SIGHT_LEARNING_MULTICLASS_HARMONIC_H_

#include <string>
#include <vector>

#include "learning/classifier.h"
#include "learning/harmonic.h"
#include "util/status.h"

namespace sight {

class ThreadPool;

struct MulticlassHarmonicConfig {
  HarmonicConfig solver;
  /// Apply Zhu et al.'s Class Mass Normalization.
  bool class_mass_normalization = true;
  /// Discrete label range; labeled values must be integers in this range.
  int label_min = 1;
  int label_max = 3;
  /// Optional worker pool for the independent per-class harmonic solves
  /// (non-owning; must outlive the classifier). Null runs them serially;
  /// scores are identical either way.
  ThreadPool* thread_pool = nullptr;
};

class MulticlassHarmonicClassifier : public GraphClassifier {
 public:
  [[nodiscard]]
  static Result<MulticlassHarmonicClassifier> Create(
      MulticlassHarmonicConfig config);

  /// Labeled values must be (numerically) integers within the configured
  /// label range; InvalidArgument otherwise.
  [[nodiscard]]
  Result<std::vector<double>> Predict(const SimilarityMatrix& weights,
                                      const LabeledSet& labeled) const override;

  std::string name() const override {
    return config_.class_mass_normalization ? "harmonic-cmn"
                                            : "harmonic-multiclass";
  }

  /// Per-class scores for unlabeled nodes (row-major: node-major, one
  /// entry per class), exposed for tests and diagnostics. Labeled nodes
  /// get a one-hot row.
  [[nodiscard]]
  Result<std::vector<std::vector<double>>> ClassScores(
      const SimilarityMatrix& weights, const LabeledSet& labeled) const;

 private:
  explicit MulticlassHarmonicClassifier(MulticlassHarmonicConfig config,
                                        HarmonicFunctionClassifier base)
      : config_(config), base_(std::move(base)) {}

  size_t num_classes() const {
    return static_cast<size_t>(config_.label_max - config_.label_min + 1);
  }

  MulticlassHarmonicConfig config_;
  HarmonicFunctionClassifier base_;
};

}  // namespace sight

#endif  // SIGHT_LEARNING_MULTICLASS_HARMONIC_H_
