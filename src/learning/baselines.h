// Baseline classifiers for the ablation bench: weighted-kNN over the
// similarity graph and a constant majority-label predictor.

#ifndef SIGHT_LEARNING_BASELINES_H_
#define SIGHT_LEARNING_BASELINES_H_

#include <string>
#include <vector>

#include "learning/classifier.h"
#include "util/status.h"

namespace sight {

/// Predicts the similarity-weighted mean of the k most similar labeled
/// instances. Nodes with no similarity to any labeled instance fall back
/// to the label mean.
class KnnClassifier : public GraphClassifier {
 public:
  [[nodiscard]] static Result<KnnClassifier> Create(size_t k);

  [[nodiscard]]
  Result<std::vector<double>> Predict(const SimilarityMatrix& weights,
                                      const LabeledSet& labeled) const override;

  std::string name() const override { return "knn"; }

 private:
  explicit KnnClassifier(size_t k) : k_(k) {}
  size_t k_;
};

/// Predicts the most frequent labeled value for every unlabeled instance
/// (ties resolved toward the smaller label, i.e. toward lower risk —
/// matching the paper's note that under-prediction is the dangerous
/// direction makes this a deliberately weak baseline).
class MajorityClassifier : public GraphClassifier {
 public:
  MajorityClassifier() = default;

  [[nodiscard]]
  Result<std::vector<double>> Predict(const SimilarityMatrix& weights,
                                      const LabeledSet& labeled) const override;

  std::string name() const override { return "majority"; }
};

}  // namespace sight

#endif  // SIGHT_LEARNING_BASELINES_H_
