#include "learning/multiclass_harmonic.h"

#include <cmath>
#include <optional>

#include "util/string_util.h"
#include "util/thread_pool.h"

namespace sight {

Result<MulticlassHarmonicClassifier> MulticlassHarmonicClassifier::Create(
    MulticlassHarmonicConfig config) {
  if (config.label_min > config.label_max) {
    return Status::InvalidArgument(
        StrFormat("invalid label range [%d, %d]", config.label_min,
                  config.label_max));
  }
  SIGHT_ASSIGN_OR_RETURN(HarmonicFunctionClassifier base,
                         HarmonicFunctionClassifier::Create(config.solver));
  return MulticlassHarmonicClassifier(config, std::move(base));
}

Result<std::vector<std::vector<double>>>
MulticlassHarmonicClassifier::ClassScores(const SimilarityMatrix& weights,
                                          const LabeledSet& labeled) const {
  size_t n = weights.size();
  SIGHT_RETURN_IF_ERROR(internal::ValidateLabeledSet(n, labeled));

  size_t classes = num_classes();
  std::vector<size_t> class_of_label(labeled.size());
  std::vector<size_t> class_counts(classes, 0);
  for (size_t i = 0; i < labeled.size(); ++i) {
    double v = labeled.values[i];
    double rounded = std::round(v);
    if (std::fabs(v - rounded) > 1e-9 || rounded < config_.label_min ||
        rounded > config_.label_max) {
      return Status::InvalidArgument(StrFormat(
          "labeled value %f is not an integer label in [%d, %d]", v,
          config_.label_min, config_.label_max));
    }
    size_t c = static_cast<size_t>(static_cast<int>(rounded) -
                                   config_.label_min);
    class_of_label[i] = c;
    ++class_counts[c];
  }

  std::vector<bool> is_labeled(n, false);
  for (size_t idx : labeled.indices) is_labeled[idx] = true;

  // One harmonic solve per class with one-hot boundary values. The solves
  // are independent, so they fan out across the configured pool; CMN
  // scoring below stays serial and in class order, keeping results
  // identical to the single-threaded path.
  std::vector<std::optional<Result<std::vector<double>>>> solved(classes);
  ParallelFor(config_.thread_pool, classes, [&](size_t c) {
    LabeledSet one_hot;
    for (size_t i = 0; i < labeled.size(); ++i) {
      one_hot.Add(labeled.indices[i], class_of_label[i] == c ? 1.0 : 0.0);
    }
    solved[c].emplace(base_.Predict(weights, one_hot));
  });

  std::vector<std::vector<double>> scores(n,
                                          std::vector<double>(classes, 0.0));
  for (size_t c = 0; c < classes; ++c) {
    if (!solved[c]->ok()) return solved[c]->status();
    const std::vector<double>& f = solved[c]->value();
    double mass = 0.0;
    for (size_t u = 0; u < n; ++u) {
      if (!is_labeled[u]) mass += std::max(0.0, f[u]);
    }
    double scale = 1.0;
    if (config_.class_mass_normalization && mass > 0.0) {
      double prior = static_cast<double>(class_counts[c]) /
                     static_cast<double>(labeled.size());
      scale = prior / mass;
    }
    for (size_t u = 0; u < n; ++u) {
      scores[u][c] = is_labeled[u] ? f[u] : std::max(0.0, f[u]) * scale;
    }
  }
  return scores;
}

Result<std::vector<double>> MulticlassHarmonicClassifier::Predict(
    const SimilarityMatrix& weights, const LabeledSet& labeled) const {
  SIGHT_ASSIGN_OR_RETURN(std::vector<std::vector<double>> scores,
                         ClassScores(weights, labeled));
  size_t n = weights.size();
  size_t classes = num_classes();

  double label_mean = 0.0;
  for (double v : labeled.values) label_mean += v;
  label_mean /= static_cast<double>(labeled.size());

  std::vector<double> f(n, label_mean);
  for (size_t u = 0; u < n; ++u) {
    double total = 0.0;
    double expectation = 0.0;
    for (size_t c = 0; c < classes; ++c) {
      double label_value = static_cast<double>(config_.label_min) +
                           static_cast<double>(c);
      total += scores[u][c];
      expectation += label_value * scores[u][c];
    }
    if (total > 0.0) f[u] = expectation / total;
  }
  // Labeled nodes keep their exact values.
  for (size_t i = 0; i < labeled.size(); ++i) {
    f[labeled.indices[i]] = labeled.values[i];
  }
  return f;
}

}  // namespace sight
