#include "learning/info_gain.h"

#include <cmath>
#include <map>
#include <unordered_map>

#include "util/string_util.h"

namespace sight {
namespace {

Status CheckInput(size_t values, size_t labels) {
  if (values != labels) {
    return Status::InvalidArgument(
        StrFormat("attribute/label size mismatch: %zu vs %zu", values,
                  labels));
  }
  if (values == 0) return Status::InvalidArgument("empty input");
  return Status::OK();
}

// A column reduced to dense ids 0..num_values-1 assigned in
// first-occurrence order. Both the string and the code overloads funnel
// through this, which pins the partition iteration order — and with it
// the floating-point summation order — to the column's own order rather
// than to a hash table's, making the two paths bitwise-identical.
struct DenseColumn {
  std::vector<uint32_t> ids;  // parallel to the input column
  size_t num_values = 0;
};

DenseColumn Densify(const std::vector<std::string>& values) {
  DenseColumn d;
  d.ids.reserve(values.size());
  std::unordered_map<std::string, uint32_t> first_seen;
  for (const std::string& v : values) {
    auto [it, inserted] =
        first_seen.emplace(v, static_cast<uint32_t>(first_seen.size()));
    d.ids.push_back(it->second);
  }
  d.num_values = first_seen.size();
  return d;
}

DenseColumn Densify(const std::vector<uint32_t>& codes) {
  DenseColumn d;
  d.ids.reserve(codes.size());
  std::unordered_map<uint32_t, uint32_t> first_seen;
  for (uint32_t c : codes) {
    auto [it, inserted] =
        first_seen.emplace(c, static_cast<uint32_t>(first_seen.size()));
    d.ids.push_back(it->second);
  }
  d.num_values = first_seen.size();
  return d;
}

double InformationGainDense(const DenseColumn& column,
                            const std::vector<int>& labels) {
  double base = LabelEntropy(labels);

  // Partition labels by dense value id; per-partition label counts stay
  // ordered by label (std::map) so every partition's entropy sums its
  // terms in ascending label order.
  std::vector<std::map<int, size_t>> partitions(column.num_values);
  for (size_t i = 0; i < column.ids.size(); ++i) {
    ++partitions[column.ids[i]][labels[i]];
  }

  const double n = static_cast<double>(labels.size());
  double conditional = 0.0;
  std::vector<size_t> count_vec;
  for (const std::map<int, size_t>& label_counts : partitions) {
    size_t part_size = 0;
    count_vec.clear();
    count_vec.reserve(label_counts.size());
    for (const auto& [label, count] : label_counts) {
      part_size += count;
      count_vec.push_back(count);
    }
    conditional += (static_cast<double>(part_size) / n) *
                   EntropyFromCounts(count_vec);
  }
  return base - conditional;
}

double SplitInformationDense(const DenseColumn& column) {
  std::vector<size_t> counts(column.num_values, 0);
  for (uint32_t id : column.ids) ++counts[id];
  return EntropyFromCounts(counts);
}

Result<double> GainRatioDense(const DenseColumn& column,
                              const std::vector<int>& labels) {
  double gain = InformationGainDense(column, labels);
  double split = SplitInformationDense(column);
  if (split <= 0.0) return 0.0;  // single-valued attribute: no information
  return gain / split;
}

Result<double> CorrectedGainRatioDense(const DenseColumn& column,
                                       const std::vector<int>& labels) {
  double gain = InformationGainDense(column, labels);
  double split = SplitInformationDense(column);
  if (split <= 0.0) return 0.0;

  std::map<int, size_t> label_values;
  for (int l : labels) ++label_values[l];

  double v = static_cast<double>(column.num_values);
  double l = static_cast<double>(label_values.size());
  double n = static_cast<double>(labels.size());
  // Expected gain of an independent attribute (Miller-Madow, in bits).
  double chance = (v - 1.0) * (l - 1.0) / (2.0 * n * std::log(2.0));
  double adjusted = gain - chance;
  if (adjusted <= 0.0) return 0.0;
  return adjusted / split;
}

}  // namespace

double EntropyFromCounts(const std::vector<size_t>& counts) {
  size_t total = 0;
  for (size_t c : counts) total += c;
  if (total == 0) return 0.0;
  double h = 0.0;
  for (size_t c : counts) {
    if (c == 0) continue;
    double p = static_cast<double>(c) / static_cast<double>(total);
    h -= p * std::log2(p);
  }
  return h;
}

double LabelEntropy(const std::vector<int>& labels) {
  std::map<int, size_t> counts;
  for (int l : labels) ++counts[l];
  std::vector<size_t> count_vec;
  count_vec.reserve(counts.size());
  for (const auto& [label, count] : counts) count_vec.push_back(count);
  return EntropyFromCounts(count_vec);
}

Result<double> InformationGain(
    const std::vector<std::string>& attribute_values,
    const std::vector<int>& labels) {
  SIGHT_RETURN_IF_ERROR(CheckInput(attribute_values.size(), labels.size()));
  return InformationGainDense(Densify(attribute_values), labels);
}

Result<double> InformationGain(const std::vector<uint32_t>& attribute_codes,
                               const std::vector<int>& labels) {
  SIGHT_RETURN_IF_ERROR(CheckInput(attribute_codes.size(), labels.size()));
  return InformationGainDense(Densify(attribute_codes), labels);
}

Result<double> SplitInformation(
    const std::vector<std::string>& attribute_values) {
  if (attribute_values.empty()) {
    return Status::InvalidArgument("empty input");
  }
  return SplitInformationDense(Densify(attribute_values));
}

Result<double> SplitInformation(
    const std::vector<uint32_t>& attribute_codes) {
  if (attribute_codes.empty()) {
    return Status::InvalidArgument("empty input");
  }
  return SplitInformationDense(Densify(attribute_codes));
}

Result<double> GainRatio(const std::vector<std::string>& attribute_values,
                         const std::vector<int>& labels) {
  SIGHT_RETURN_IF_ERROR(CheckInput(attribute_values.size(), labels.size()));
  return GainRatioDense(Densify(attribute_values), labels);
}

Result<double> GainRatio(const std::vector<uint32_t>& attribute_codes,
                         const std::vector<int>& labels) {
  SIGHT_RETURN_IF_ERROR(CheckInput(attribute_codes.size(), labels.size()));
  return GainRatioDense(Densify(attribute_codes), labels);
}

Result<double> CorrectedGainRatio(
    const std::vector<std::string>& attribute_values,
    const std::vector<int>& labels) {
  SIGHT_RETURN_IF_ERROR(CheckInput(attribute_values.size(), labels.size()));
  return CorrectedGainRatioDense(Densify(attribute_values), labels);
}

Result<double> CorrectedGainRatio(
    const std::vector<uint32_t>& attribute_codes,
    const std::vector<int>& labels) {
  SIGHT_RETURN_IF_ERROR(CheckInput(attribute_codes.size(), labels.size()));
  return CorrectedGainRatioDense(Densify(attribute_codes), labels);
}

}  // namespace sight
