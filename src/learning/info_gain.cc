#include "learning/info_gain.h"

#include <cmath>
#include <map>
#include <unordered_map>

#include "util/string_util.h"

namespace sight {
namespace {

Status CheckInput(size_t values, size_t labels) {
  if (values != labels) {
    return Status::InvalidArgument(
        StrFormat("attribute/label size mismatch: %zu vs %zu", values,
                  labels));
  }
  if (values == 0) return Status::InvalidArgument("empty input");
  return Status::OK();
}

}  // namespace

double EntropyFromCounts(const std::vector<size_t>& counts) {
  size_t total = 0;
  for (size_t c : counts) total += c;
  if (total == 0) return 0.0;
  double h = 0.0;
  for (size_t c : counts) {
    if (c == 0) continue;
    double p = static_cast<double>(c) / static_cast<double>(total);
    h -= p * std::log2(p);
  }
  return h;
}

double LabelEntropy(const std::vector<int>& labels) {
  std::map<int, size_t> counts;
  for (int l : labels) ++counts[l];
  std::vector<size_t> count_vec;
  count_vec.reserve(counts.size());
  for (const auto& [label, count] : counts) count_vec.push_back(count);
  return EntropyFromCounts(count_vec);
}

Result<double> InformationGain(
    const std::vector<std::string>& attribute_values,
    const std::vector<int>& labels) {
  SIGHT_RETURN_IF_ERROR(CheckInput(attribute_values.size(), labels.size()));

  double base = LabelEntropy(labels);

  // Partition labels by attribute value.
  std::unordered_map<std::string, std::map<int, size_t>> partitions;
  for (size_t i = 0; i < attribute_values.size(); ++i) {
    ++partitions[attribute_values[i]][labels[i]];
  }

  const double n = static_cast<double>(labels.size());
  double conditional = 0.0;
  for (const auto& [value, label_counts] : partitions) {
    size_t part_size = 0;
    std::vector<size_t> count_vec;
    count_vec.reserve(label_counts.size());
    for (const auto& [label, count] : label_counts) {
      part_size += count;
      count_vec.push_back(count);
    }
    conditional += (static_cast<double>(part_size) / n) *
                   EntropyFromCounts(count_vec);
  }
  return base - conditional;
}

Result<double> SplitInformation(
    const std::vector<std::string>& attribute_values) {
  if (attribute_values.empty()) {
    return Status::InvalidArgument("empty input");
  }
  std::unordered_map<std::string, size_t> counts;
  for (const auto& v : attribute_values) ++counts[v];
  std::vector<size_t> count_vec;
  count_vec.reserve(counts.size());
  for (const auto& [value, count] : counts) count_vec.push_back(count);
  return EntropyFromCounts(count_vec);
}

Result<double> GainRatio(const std::vector<std::string>& attribute_values,
                         const std::vector<int>& labels) {
  SIGHT_ASSIGN_OR_RETURN(double gain,
                         InformationGain(attribute_values, labels));
  SIGHT_ASSIGN_OR_RETURN(double split, SplitInformation(attribute_values));
  if (split <= 0.0) return 0.0;  // single-valued attribute: no information
  return gain / split;
}

Result<double> CorrectedGainRatio(
    const std::vector<std::string>& attribute_values,
    const std::vector<int>& labels) {
  SIGHT_ASSIGN_OR_RETURN(double gain,
                         InformationGain(attribute_values, labels));
  SIGHT_ASSIGN_OR_RETURN(double split, SplitInformation(attribute_values));
  if (split <= 0.0) return 0.0;

  std::unordered_map<std::string, size_t> values;
  for (const auto& v : attribute_values) ++values[v];
  std::map<int, size_t> label_values;
  for (int l : labels) ++label_values[l];

  double v = static_cast<double>(values.size());
  double l = static_cast<double>(label_values.size());
  double n = static_cast<double>(labels.size());
  // Expected gain of an independent attribute (Miller-Madow, in bits).
  double chance = (v - 1.0) * (l - 1.0) / (2.0 * n * std::log(2.0));
  double adjusted = gain - chance;
  if (adjusted <= 0.0) return 0.0;
  return adjusted / split;
}

}  // namespace sight
