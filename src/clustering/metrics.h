// Clustering quality metrics (purity, normalized mutual information).
//
// Used by tests and the ablation bench to compare Squeezer against k-modes
// on data with known ground-truth groupings.

#ifndef SIGHT_CLUSTERING_METRICS_H_
#define SIGHT_CLUSTERING_METRICS_H_

#include <cstddef>
#include <vector>

#include "util/status.h"

namespace sight {

/// Purity: fraction of points whose cluster's majority ground-truth class
/// matches their own. In (0, 1]; 1 = every cluster is class-pure.
/// `assignments` and `truth` are parallel vectors of cluster / class ids.
[[nodiscard]]
Result<double> ClusterPurity(const std::vector<size_t>& assignments,
                             const std::vector<size_t>& truth);

/// Normalized mutual information between the clustering and the ground
/// truth, NMI = 2 I(C;T) / (H(C) + H(T)), in [0, 1]. Returns 1 when both
/// partitions are single-cluster (degenerate but identical).
[[nodiscard]]
Result<double> NormalizedMutualInformation(
    const std::vector<size_t>& assignments, const std::vector<size_t>& truth);

}  // namespace sight

#endif  // SIGHT_CLUSTERING_METRICS_H_
