// k-modes clustering for categorical data (Huang 1998).
//
// Baseline for the clustering ablation bench: unlike Squeezer it needs k up
// front and several passes, which is exactly the cost the paper avoids by
// choosing Squeezer. Distance is weighted Hamming (mismatch count).

#ifndef SIGHT_CLUSTERING_KMODES_H_
#define SIGHT_CLUSTERING_KMODES_H_

#include <cstdint>
#include <vector>

#include "clustering/squeezer.h"
#include "graph/profile.h"
#include "graph/profile_codec.h"
#include "graph/types.h"
#include "util/random.h"
#include "util/status.h"

namespace sight {

struct KModesConfig {
  size_t k = 8;
  size_t max_iterations = 50;
  /// Per-attribute weights; empty = uniform.
  std::vector<double> weights;
};

class KModes {
 public:
  [[nodiscard]]
  static Result<KModes> Create(const ProfileSchema& schema,
                               KModesConfig config);

  /// Clusters `users`; k is capped at the number of users. Modes are
  /// seeded from k distinct random users. Delegates to ClusterEncoded
  /// through a dictionary-encoded view of the profiles, so the hot loops
  /// run on integer codes; results are bitwise-identical to the string
  /// algorithm (pinned by encoded_equivalence_test).
  [[nodiscard]]
  Result<Clustering> Cluster(const ProfileTable& table,
                             const std::vector<UserId>& users,
                             Rng* rng) const;

  /// Hot path: clusters an already-encoded pool (e.g. the view the risk
  /// pipeline built for the similarity matrix) without touching strings.
  [[nodiscard]]
  Result<Clustering> ClusterEncoded(const EncodedProfileTable& enc,
                                    Rng* rng) const;

  /// Weighted mismatch distance between a profile and a mode (both aligned
  /// with the schema). Missing values always count as a mismatch.
  /// Reference metric; the clustering loops use the code overload.
  double Distance(const Profile& profile,
                  const std::vector<std::string>& mode) const;

  /// Code-row overload: `row` has one code per schema attribute, `mode`
  /// one code per attribute (ProfileCodec::kMissingCode = missing).
  double Distance(const uint32_t* row,
                  const std::vector<uint32_t>& mode) const;

  /// Batched hot path: out[m] = Distance(row, modes[m]) for every mode.
  /// Attribute-outer, so the row's code loads and missing checks happen
  /// once per attribute instead of once per (attribute, mode); each
  /// out[m] still accumulates weights in ascending attribute order, so
  /// results are bitwise-identical to the per-mode overload.
  void DistanceBatch(const uint32_t* row,
                     const std::vector<std::vector<uint32_t>>& modes,
                     double* out) const;

 private:
  KModes(KModesConfig config, std::vector<double> weights)
      : config_(std::move(config)), weights_(std::move(weights)) {}

  KModesConfig config_;
  std::vector<double> weights_;
};

}  // namespace sight

#endif  // SIGHT_CLUSTERING_KMODES_H_
