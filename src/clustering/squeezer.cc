#include "clustering/squeezer.h"

#include <algorithm>

#include "util/string_util.h"

namespace sight {

void ClusterSummary::Add(const Profile& profile) {
  for (AttributeId a = 0; a < supports_.size(); ++a) {
    if (profile.IsMissing(a)) continue;
    uint32_t code = codec_->Intern(a, profile.value(a));
    if (code >= supports_[a].size()) supports_[a].resize(code + 1, 0);
    ++supports_[a][code];
    ++totals_[a];
  }
  ++size_;
}

void ClusterSummary::AddCodes(const uint32_t* codes) {
  for (AttributeId a = 0; a < supports_.size(); ++a) {
    uint32_t code = codes[a];
    if (code == ProfileCodec::kMissingCode) continue;
    if (code >= supports_[a].size()) supports_[a].resize(code + 1, 0);
    ++supports_[a][code];
    ++totals_[a];
  }
  ++size_;
}

size_t ClusterSummary::Support(AttributeId attr,
                               const std::string& value) const {
  if (attr >= supports_.size()) return 0;
  return SupportByCode(attr, codec_->Code(attr, value));
}

size_t ClusterSummary::TotalSupport(AttributeId attr) const {
  return attr < totals_.size() ? totals_[attr] : 0;
}

Result<Squeezer> Squeezer::Create(const ProfileSchema& schema,
                                  SqueezerConfig config) {
  if (config.threshold < 0.0 || config.threshold > 1.0) {
    return Status::InvalidArgument(
        StrFormat("threshold %f not in [0, 1]", config.threshold));
  }
  size_t n = schema.num_attributes();
  if (n == 0) return Status::InvalidArgument("schema has no attributes");
  std::vector<double> weights = std::move(config.weights);
  if (weights.empty()) {
    weights.assign(n, 1.0 / static_cast<double>(n));
  } else {
    if (weights.size() != n) {
      return Status::InvalidArgument(
          StrFormat("got %zu weights for %zu attributes", weights.size(), n));
    }
    double sum = 0.0;
    for (double w : weights) {
      if (w < 0.0) {
        return Status::InvalidArgument("weights must be >= 0");
      }
      sum += w;
    }
    if (!(sum > 0.0)) {
      return Status::InvalidArgument("weights must not all be zero");
    }
    for (double& w : weights) w /= sum;
  }
  return Squeezer(config.threshold, std::move(weights));
}

double Squeezer::Similarity(const uint32_t* codes,
                            const ClusterSummary& summary) const {
  double sim = 0.0;
  for (AttributeId a = 0; a < weights_.size(); ++a) {
    if (codes[a] == ProfileCodec::kMissingCode) continue;
    size_t total = summary.TotalSupport(a);
    if (total == 0) continue;
    sim += weights_[a] *
           (static_cast<double>(summary.SupportByCode(a, codes[a])) /
            static_cast<double>(total));
  }
  return sim;
}

void Squeezer::SimilarityBatch(const uint32_t* codes,
                               const ClusterSummary* summaries, size_t count,
                               double* out) const {
  std::fill(out, out + count, 0.0);
  for (AttributeId a = 0; a < weights_.size(); ++a) {
    const uint32_t code = codes[a];
    if (code == ProfileCodec::kMissingCode) continue;
    const double w = weights_[a];
    for (size_t c = 0; c < count; ++c) {
      const ClusterSummary& summary = summaries[c];
      const size_t total = summary.TotalSupport(a);
      if (total == 0) continue;
      out[c] += w * (static_cast<double>(summary.SupportByCode(a, code)) /
                     static_cast<double>(total));
    }
  }
}

double Squeezer::Similarity(const Profile& profile,
                            const ClusterSummary& summary) const {
  double sim = 0.0;
  for (AttributeId a = 0; a < weights_.size(); ++a) {
    if (profile.IsMissing(a)) continue;
    size_t total = summary.TotalSupport(a);
    if (total == 0) continue;
    sim += weights_[a] *
           (static_cast<double>(
                summary.SupportByCode(a, summary.codec().Code(
                                              a, profile.value(a)))) /
            static_cast<double>(total));
  }
  return sim;
}

Result<IncrementalSqueezer> Squeezer::MakeIncremental(
    const ProfileSchema& schema) const {
  SqueezerConfig config;
  config.threshold = threshold_;
  config.weights = weights_;
  return IncrementalSqueezer::Create(schema, std::move(config));
}

Result<Clustering> Squeezer::Cluster(const ProfileTable& table,
                                     const std::vector<UserId>& users) const {
  SIGHT_ASSIGN_OR_RETURN(IncrementalSqueezer incremental,
                         MakeIncremental(table.schema()));
  SIGHT_RETURN_IF_ERROR(incremental.AddBatch(table, users).status());
  return incremental.clustering();
}

Result<IncrementalSqueezer> IncrementalSqueezer::Create(
    const ProfileSchema& schema, SqueezerConfig config) {
  SIGHT_ASSIGN_OR_RETURN(Squeezer squeezer,
                         Squeezer::Create(schema, std::move(config)));
  size_t num_attributes = schema.num_attributes();
  return IncrementalSqueezer(std::move(squeezer), num_attributes);
}

Result<size_t> IncrementalSqueezer::Add(const ProfileTable& table,
                                        UserId user) {
  if (table.schema().num_attributes() != num_attributes_) {
    return Status::InvalidArgument(
        "profile table schema does not match the Squeezer schema");
  }
  // Encode once (interning any new values — fresh codes have support 0 in
  // every existing summary, matching the string path's map misses), then
  // score every cluster in one attribute-outer batch over the codes.
  codec_->EncodeInto(table.Get(user), code_buf_.data());
  sim_buf_.resize(summaries_.size());
  squeezer_.SimilarityBatch(code_buf_.data(), summaries_.data(),
                            summaries_.size(), sim_buf_.data());
  double best_sim = -1.0;
  size_t best_cluster = 0;
  for (size_t c = 0; c < summaries_.size(); ++c) {
    if (sim_buf_[c] > best_sim) {
      best_sim = sim_buf_[c];
      best_cluster = c;
    }
  }
  if (summaries_.empty() || best_sim < squeezer_.threshold()) {
    summaries_.emplace_back(codec_);
    clustering_.clusters.emplace_back();
    best_cluster = summaries_.size() - 1;
  }
  summaries_[best_cluster].AddCodes(code_buf_.data());
  clustering_.clusters[best_cluster].push_back(user);
  clustering_.assignments.push_back(best_cluster);
  return best_cluster;
}

Result<std::vector<size_t>> IncrementalSqueezer::AddBatch(
    const ProfileTable& table, const std::vector<UserId>& users) {
  std::vector<size_t> assigned;
  assigned.reserve(users.size());
  for (UserId u : users) {
    SIGHT_ASSIGN_OR_RETURN(size_t cluster, Add(table, u));
    assigned.push_back(cluster);
  }
  return assigned;
}

}  // namespace sight
