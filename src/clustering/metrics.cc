#include "clustering/metrics.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace sight {
namespace {

Status CheckParallel(const std::vector<size_t>& a,
                     const std::vector<size_t>& b) {
  if (a.size() != b.size()) {
    return Status::InvalidArgument(
        "assignments and truth must have the same length");
  }
  if (a.empty()) {
    return Status::InvalidArgument("empty clustering");
  }
  return Status::OK();
}

}  // namespace

Result<double> ClusterPurity(const std::vector<size_t>& assignments,
                             const std::vector<size_t>& truth) {
  SIGHT_RETURN_IF_ERROR(CheckParallel(assignments, truth));
  std::map<size_t, std::map<size_t, size_t>> cluster_class_counts;
  for (size_t i = 0; i < assignments.size(); ++i) {
    ++cluster_class_counts[assignments[i]][truth[i]];
  }
  size_t correct = 0;
  for (const auto& [cluster, class_counts] : cluster_class_counts) {
    size_t max_count = 0;
    for (const auto& [cls, count] : class_counts) {
      max_count = std::max(max_count, count);
    }
    correct += max_count;
  }
  return static_cast<double>(correct) /
         static_cast<double>(assignments.size());
}

Result<double> NormalizedMutualInformation(
    const std::vector<size_t>& assignments,
    const std::vector<size_t>& truth) {
  SIGHT_RETURN_IF_ERROR(CheckParallel(assignments, truth));
  const double n = static_cast<double>(assignments.size());

  std::map<size_t, size_t> count_c;
  std::map<size_t, size_t> count_t;
  std::map<std::pair<size_t, size_t>, size_t> joint;
  for (size_t i = 0; i < assignments.size(); ++i) {
    ++count_c[assignments[i]];
    ++count_t[truth[i]];
    ++joint[{assignments[i], truth[i]}];
  }

  auto entropy = [n](const std::map<size_t, size_t>& counts) {
    double h = 0.0;
    for (const auto& [key, count] : counts) {
      double p = static_cast<double>(count) / n;
      if (p > 0.0) h -= p * std::log(p);
    }
    return h;
  };

  double hc = entropy(count_c);
  double ht = entropy(count_t);
  if (hc == 0.0 && ht == 0.0) return 1.0;  // both trivially single-cluster
  if (hc == 0.0 || ht == 0.0) return 0.0;

  double mi = 0.0;
  for (const auto& [pair, count] : joint) {
    double pxy = static_cast<double>(count) / n;
    double px = static_cast<double>(count_c[pair.first]) / n;
    double py = static_cast<double>(count_t[pair.second]) / n;
    mi += pxy * std::log(pxy / (px * py));
  }
  return 2.0 * mi / (hc + ht);
}

}  // namespace sight
