// Squeezer: one-pass clustering of categorical data (He, Xu, Deng 2002),
// adapted to OSN profiles as in the risk paper's Definition 2.
//
// The algorithm makes a single pass over the input. The first record forms
// the first cluster; each further record s is compared against every
// existing cluster c with
//
//   Sim(s, c) = sum_i w_i * Sup(s.pa_i) / sum_{x in VAL_i(c)} Sup(x)
//
// where Sup(x) is the number of members of c whose attribute i equals x.
// s joins the most similar cluster if that similarity reaches the threshold
// beta, otherwise it starts a new cluster. Weights w_i let callers emphasize
// attributes (the paper mines them via information gain ratio).
//
// Hot path: one ProfileCodec is shared by all cluster summaries of a run;
// each arriving profile is dictionary-encoded once, and the per-cluster
// support lookups are code-indexed array loads instead of string hashing.
// The string-based entry points delegate through the codec, so both paths
// produce bitwise-identical similarities and therefore identical clusters.

#ifndef SIGHT_CLUSTERING_SQUEEZER_H_
#define SIGHT_CLUSTERING_SQUEEZER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "graph/profile.h"
#include "graph/profile_codec.h"
#include "graph/types.h"
#include "util/status.h"

namespace sight {

/// Incremental per-cluster value supports (the "cluster summary" of the
/// Squeezer paper): for each attribute, value -> member count, stored as
/// code-indexed vectors over a dictionary shared with sibling summaries.
class ClusterSummary {
 public:
  /// Stand-alone summary with its own value dictionary (unit tests,
  /// ad-hoc callers).
  explicit ClusterSummary(size_t num_attributes)
      : ClusterSummary(std::make_shared<ProfileCodec>(num_attributes)) {}

  /// Summary sharing `codec` with its siblings — one dictionary per
  /// clustering run, so a profile is encoded once and compared against
  /// every summary by code.
  explicit ClusterSummary(std::shared_ptr<ProfileCodec> codec)
      : codec_(std::move(codec)), supports_(codec_->num_attributes()),
        totals_(codec_->num_attributes(), 0) {}

  /// Adds one profile's values to the summary (missing values skipped),
  /// interning them into the shared dictionary.
  void Add(const Profile& profile);

  /// Hot path: adds an already-encoded row (num_attributes codes from the
  /// shared codec).
  void AddCodes(const uint32_t* codes);

  /// Sup(value) for `attr`: members of this cluster with that value.
  size_t Support(AttributeId attr, const std::string& value) const;

  /// Sup() by dictionary code; codes this summary never saw (including
  /// ProfileCodec::kUnknownValue) read as 0.
  size_t SupportByCode(AttributeId attr, uint32_t code) const {
    if (attr >= supports_.size()) return 0;
    const std::vector<size_t>& s = supports_[attr];
    return code < s.size() ? s[code] : 0;
  }

  /// Sum of supports over all values of `attr` (= members with a
  /// non-missing value for attr).
  size_t TotalSupport(AttributeId attr) const;

  size_t size() const { return size_; }

  const ProfileCodec& codec() const { return *codec_; }

 private:
  std::shared_ptr<ProfileCodec> codec_;
  std::vector<std::vector<size_t>> supports_;  // [attr][code]
  std::vector<size_t> totals_;
  size_t size_ = 0;
};

/// Result of a clustering run: cluster id per input position plus member
/// lists.
struct Clustering {
  /// assignments[i] = cluster of users[i].
  std::vector<size_t> assignments;
  /// clusters[c] = user ids in cluster c, in insertion order.
  std::vector<std::vector<UserId>> clusters;

  size_t num_clusters() const { return clusters.size(); }
};

/// Squeezer configuration.
struct SqueezerConfig {
  /// Similarity threshold beta in [0, 1] for joining an existing cluster
  /// (the paper uses 0.4).
  double threshold = 0.4;
  /// Per-attribute weights; empty = uniform. Normalized to sum 1.
  std::vector<double> weights;
};

class IncrementalSqueezer;

/// One-pass categorical clusterer.
class Squeezer {
 public:
  [[nodiscard]]
  static Result<Squeezer> Create(const ProfileSchema& schema,
                                 SqueezerConfig config);

  /// Definition 2 similarity of `profile` to the cluster summarized by
  /// `summary`; in [0, 1] when weights sum to 1. Empty clusters score 0.
  double Similarity(const Profile& profile,
                    const ClusterSummary& summary) const;

  /// Hot path: Definition 2 similarity of an encoded row (codes from the
  /// summary's shared codec).
  double Similarity(const uint32_t* codes,
                    const ClusterSummary& summary) const;

  /// Batched hot path: out[c] = Similarity(codes, summaries[c]) for c in
  /// [0, count). Runs attribute-outer so the row's missing-value skips
  /// and weight loads are hoisted out of the per-cluster loop; each
  /// out[c] accumulates its contributions in the same ascending
  /// attribute order as Similarity, so results are bitwise-identical.
  void SimilarityBatch(const uint32_t* codes, const ClusterSummary* summaries,
                       size_t count, double* out) const;

  /// Clusters `users` (profiles from `table`) in the given order.
  [[nodiscard]]
  Result<Clustering> Cluster(const ProfileTable& table,
                             const std::vector<UserId>& users) const;

  /// An empty IncrementalSqueezer configured exactly as Cluster()'s
  /// internal one (same threshold, same weight-normalization chain), so
  /// feeding it a sequence in batches yields the clustering Cluster()
  /// computes for the whole sequence, bitwise — the carried-partition
  /// arrangement of the serving flow (DESIGN.md §14).
  [[nodiscard]]
  Result<IncrementalSqueezer> MakeIncremental(
      const ProfileSchema& schema) const;

  double threshold() const { return threshold_; }
  const std::vector<double>& normalized_weights() const { return weights_; }

 private:
  friend class IncrementalSqueezer;

  Squeezer(double threshold, std::vector<double> weights)
      : threshold_(threshold), weights_(std::move(weights)) {}

  double threshold_;
  std::vector<double> weights_;
};

/// Stateful Squeezer for incrementally arriving data (the crawler flow):
/// cluster summaries stay alive between batches, so a stranger discovered
/// next week joins the cluster its profile matches today — assignments
/// never change retroactively, exactly the one-pass semantics of the
/// batch algorithm stretched over time. The shared dictionary grows with
/// the data; codes once assigned never change, so summaries stay valid.
class IncrementalSqueezer {
 public:
  [[nodiscard]]
  static Result<IncrementalSqueezer> Create(const ProfileSchema& schema,
                                            SqueezerConfig config);

  /// Assigns `user` (profile from `table`) to the best cluster, creating
  /// a new one below the threshold; returns the cluster index.
  [[nodiscard]] Result<size_t> Add(const ProfileTable& table, UserId user);

  /// Adds users in order; returns their cluster indices.
  [[nodiscard]]
  Result<std::vector<size_t>> AddBatch(const ProfileTable& table,
                                       const std::vector<UserId>& users);

  /// Assignments/membership of everything added so far.
  const Clustering& clustering() const { return clustering_; }
  size_t num_clusters() const { return summaries_.size(); }
  size_t num_points() const { return clustering_.assignments.size(); }

 private:
  IncrementalSqueezer(Squeezer squeezer, size_t num_attributes)
      : squeezer_(std::move(squeezer)), num_attributes_(num_attributes),
        codec_(std::make_shared<ProfileCodec>(num_attributes)),
        code_buf_(num_attributes) {}

  Squeezer squeezer_;
  size_t num_attributes_;
  std::shared_ptr<ProfileCodec> codec_;
  std::vector<uint32_t> code_buf_;  // scratch row for the profile at hand
  std::vector<double> sim_buf_;     // scratch per-cluster similarities
  std::vector<ClusterSummary> summaries_;
  Clustering clustering_;
};

}  // namespace sight

#endif  // SIGHT_CLUSTERING_SQUEEZER_H_
