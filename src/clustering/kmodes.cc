#include "clustering/kmodes.h"

#include <algorithm>

#include "util/logging.h"
#include "util/string_util.h"

namespace sight {

Result<KModes> KModes::Create(const ProfileSchema& schema,
                              KModesConfig config) {
  if (config.k == 0) {
    return Status::InvalidArgument("k must be positive");
  }
  size_t n = schema.num_attributes();
  if (n == 0) return Status::InvalidArgument("schema has no attributes");
  std::vector<double> weights = config.weights;
  if (weights.empty()) {
    weights.assign(n, 1.0);
  } else if (weights.size() != n) {
    return Status::InvalidArgument(
        StrFormat("got %zu weights for %zu attributes", weights.size(), n));
  }
  for (double w : weights) {
    if (w < 0.0) return Status::InvalidArgument("weights must be >= 0");
  }
  return KModes(std::move(config), std::move(weights));
}

double KModes::Distance(const Profile& profile,
                        const std::vector<std::string>& mode) const {
  double dist = 0.0;
  for (AttributeId a = 0; a < weights_.size(); ++a) {
    bool match = !profile.IsMissing(a) && a < mode.size() &&
                 profile.value(a) == mode[a];
    if (!match) dist += weights_[a];
  }
  return dist;
}

double KModes::Distance(const uint32_t* row,
                        const std::vector<uint32_t>& mode) const {
  // Same weight-accumulation order as the string overload, so both paths
  // perform identical IEEE additions. A missing value (code 0) never
  // matches, mirroring IsMissing() above.
  double dist = 0.0;
  for (AttributeId a = 0; a < weights_.size(); ++a) {
    bool match = row[a] != ProfileCodec::kMissingCode && row[a] == mode[a];
    if (!match) dist += weights_[a];
  }
  return dist;
}

void KModes::DistanceBatch(const uint32_t* row,
                           const std::vector<std::vector<uint32_t>>& modes,
                           double* out) const {
  std::fill(out, out + modes.size(), 0.0);
  for (AttributeId a = 0; a < weights_.size(); ++a) {
    const uint32_t code = row[a];
    const bool present = code != ProfileCodec::kMissingCode;
    const double w = weights_[a];
    for (size_t m = 0; m < modes.size(); ++m) {
      if (!(present && code == modes[m][a])) out[m] += w;
    }
  }
}

Result<Clustering> KModes::Cluster(const ProfileTable& table,
                                   const std::vector<UserId>& users,
                                   Rng* rng) const {
  SIGHT_CHECK(rng != nullptr);
  if (table.schema().num_attributes() != weights_.size()) {
    return Status::InvalidArgument(
        "profile table schema does not match the KModes schema");
  }
  if (users.empty()) return Clustering{};
  return ClusterEncoded(EncodedProfileTable::Build(table, users), rng);
}

Result<Clustering> KModes::ClusterEncoded(const EncodedProfileTable& enc,
                                          Rng* rng) const {
  SIGHT_CHECK(rng != nullptr);
  if (enc.num_attributes() != weights_.size()) {
    return Status::InvalidArgument(
        "encoded table schema does not match the KModes schema");
  }
  Clustering result;
  size_t num_users = enc.num_rows();
  if (num_users == 0) return result;
  const ProfileCodec& codec = enc.codec();
  size_t num_attrs = weights_.size();

  size_t k = std::min(config_.k, num_users);
  // Farthest-point seeding: the first seed is random; each further seed
  // maximizes its distance to the nearest existing seed. This avoids the
  // classic k-modes degeneracy of drawing two identical seeds and
  // collapsing clusters.
  std::vector<std::vector<uint32_t>> modes;
  modes.reserve(k);
  std::vector<double> dist(k, 0.0);  // scratch for DistanceBatch
  size_t first = static_cast<size_t>(
      rng->UniformInt(0, static_cast<int64_t>(num_users) - 1));
  modes.emplace_back(enc.row(first), enc.row(first) + num_attrs);
  while (modes.size() < k) {
    double best_dist = -1.0;
    size_t best_idx = 0;
    for (size_t i = 0; i < num_users; ++i) {
      DistanceBatch(enc.row(i), modes, dist.data());
      double nearest = dist[0];
      for (size_t m = 1; m < modes.size(); ++m) {
        nearest = std::min(nearest, dist[m]);
      }
      if (nearest > best_dist) {
        best_dist = nearest;
        best_idx = i;
      }
    }
    modes.emplace_back(enc.row(best_idx), enc.row(best_idx) + num_attrs);
  }

  std::vector<size_t> assignment(num_users, 0);
  // counts[c][a][code] = members of cluster c whose attribute a holds
  // `code`; code-indexed arrays replace the string path's per-cluster
  // unordered_maps. Allocated once and zeroed per iteration.
  std::vector<std::vector<std::vector<size_t>>> counts(
      k, std::vector<std::vector<size_t>>(num_attrs));
  for (size_t c = 0; c < k; ++c) {
    for (AttributeId a = 0; a < num_attrs; ++a) {
      counts[c][a].assign(codec.NumCodes(a), 0);
    }
  }

  for (size_t iter = 0; iter < config_.max_iterations; ++iter) {
    bool changed = false;
    // Assignment step, one attribute-outer batch per row.
    for (size_t i = 0; i < num_users; ++i) {
      DistanceBatch(enc.row(i), modes, dist.data());
      double best = dist[0];
      size_t best_c = 0;
      for (size_t c = 1; c < k; ++c) {
        if (dist[c] < best) {
          best = dist[c];
          best_c = c;
        }
      }
      if (assignment[i] != best_c) {
        assignment[i] = best_c;
        changed = true;
      }
    }
    if (!changed && iter > 0) break;
    // Update step: recompute per-attribute modes.
    for (size_t c = 0; c < k; ++c) {
      for (AttributeId a = 0; a < num_attrs; ++a) {
        std::fill(counts[c][a].begin(), counts[c][a].end(), 0);
      }
    }
    for (size_t i = 0; i < num_users; ++i) {
      const uint32_t* row = enc.row(i);
      std::vector<std::vector<size_t>>& cluster_counts =
          counts[assignment[i]];
      for (AttributeId a = 0; a < num_attrs; ++a) {
        if (row[a] == ProfileCodec::kMissingCode) continue;
        ++cluster_counts[a][row[a]];
      }
    }
    for (size_t c = 0; c < k; ++c) {
      for (AttributeId a = 0; a < num_attrs; ++a) {
        const std::vector<size_t>& cnt = counts[c][a];
        // Most-frequent code; ties break on the decoded string, matching
        // the string path's lexicographic tie-break exactly.
        uint32_t best_code = ProfileCodec::kMissingCode;
        size_t best_count = 0;
        for (uint32_t code = 1; code < cnt.size(); ++code) {
          size_t n = cnt[code];
          if (n == 0) continue;
          if (n > best_count ||
              (n == best_count &&
               codec.Value(a, code) < codec.Value(a, best_code))) {
            best_code = code;
            best_count = n;
          }
        }
        if (best_count == 0) continue;  // keep previous mode value
        modes[c][a] = best_code;
      }
    }
  }

  // Compact non-empty clusters to consecutive ids.
  std::vector<size_t> remap(k, SIZE_MAX);
  result.assignments.resize(num_users);
  for (size_t i = 0; i < num_users; ++i) {
    size_t c = assignment[i];
    if (remap[c] == SIZE_MAX) {
      remap[c] = result.clusters.size();
      result.clusters.emplace_back();
    }
    result.assignments[i] = remap[c];
    result.clusters[remap[c]].push_back(enc.users()[i]);
  }
  return result;
}

}  // namespace sight
