#include "clustering/kmodes.h"

#include <algorithm>
#include <unordered_map>

#include "util/logging.h"
#include "util/string_util.h"

namespace sight {

Result<KModes> KModes::Create(const ProfileSchema& schema,
                              KModesConfig config) {
  if (config.k == 0) {
    return Status::InvalidArgument("k must be positive");
  }
  size_t n = schema.num_attributes();
  if (n == 0) return Status::InvalidArgument("schema has no attributes");
  std::vector<double> weights = config.weights;
  if (weights.empty()) {
    weights.assign(n, 1.0);
  } else if (weights.size() != n) {
    return Status::InvalidArgument(
        StrFormat("got %zu weights for %zu attributes", weights.size(), n));
  }
  for (double w : weights) {
    if (w < 0.0) return Status::InvalidArgument("weights must be >= 0");
  }
  return KModes(std::move(config), std::move(weights));
}

double KModes::Distance(const Profile& profile,
                        const std::vector<std::string>& mode) const {
  double dist = 0.0;
  for (AttributeId a = 0; a < weights_.size(); ++a) {
    bool match = !profile.IsMissing(a) && a < mode.size() &&
                 profile.value(a) == mode[a];
    if (!match) dist += weights_[a];
  }
  return dist;
}

Result<Clustering> KModes::Cluster(const ProfileTable& table,
                                   const std::vector<UserId>& users,
                                   Rng* rng) const {
  SIGHT_CHECK(rng != nullptr);
  if (table.schema().num_attributes() != weights_.size()) {
    return Status::InvalidArgument(
        "profile table schema does not match the KModes schema");
  }
  Clustering result;
  if (users.empty()) return result;

  size_t k = std::min(config_.k, users.size());
  // Farthest-point seeding: the first seed is random; each further seed
  // maximizes its distance to the nearest existing seed. This avoids the
  // classic k-modes degeneracy of drawing two identical seeds and
  // collapsing clusters.
  std::vector<std::vector<std::string>> modes;
  modes.reserve(k);
  size_t first =
      static_cast<size_t>(rng->UniformInt(0, static_cast<int64_t>(users.size()) - 1));
  modes.push_back(table.Get(users[first]).values);
  while (modes.size() < k) {
    double best_dist = -1.0;
    size_t best_idx = 0;
    for (size_t i = 0; i < users.size(); ++i) {
      const Profile& p = table.Get(users[i]);
      double nearest = Distance(p, modes[0]);
      for (size_t m = 1; m < modes.size(); ++m) {
        nearest = std::min(nearest, Distance(p, modes[m]));
      }
      if (nearest > best_dist) {
        best_dist = nearest;
        best_idx = i;
      }
    }
    modes.push_back(table.Get(users[best_idx]).values);
  }

  std::vector<size_t> assignment(users.size(), 0);
  for (size_t iter = 0; iter < config_.max_iterations; ++iter) {
    bool changed = false;
    // Assignment step.
    for (size_t i = 0; i < users.size(); ++i) {
      const Profile& p = table.Get(users[i]);
      double best = Distance(p, modes[0]);
      size_t best_c = 0;
      for (size_t c = 1; c < k; ++c) {
        double d = Distance(p, modes[c]);
        if (d < best) {
          best = d;
          best_c = c;
        }
      }
      if (assignment[i] != best_c) {
        assignment[i] = best_c;
        changed = true;
      }
    }
    if (!changed && iter > 0) break;
    // Update step: recompute per-attribute modes.
    size_t num_attrs = weights_.size();
    std::vector<std::vector<std::unordered_map<std::string, size_t>>> counts(
        k, std::vector<std::unordered_map<std::string, size_t>>(num_attrs));
    for (size_t i = 0; i < users.size(); ++i) {
      const Profile& p = table.Get(users[i]);
      for (AttributeId a = 0; a < num_attrs; ++a) {
        if (p.IsMissing(a)) continue;
        ++counts[assignment[i]][a][p.value(a)];
      }
    }
    for (size_t c = 0; c < k; ++c) {
      for (AttributeId a = 0; a < num_attrs; ++a) {
        const auto& cnt = counts[c][a];
        if (cnt.empty()) continue;  // keep previous mode value
        auto best = cnt.begin();
        for (auto it = cnt.begin(); it != cnt.end(); ++it) {
          if (it->second > best->second ||
              (it->second == best->second && it->first < best->first)) {
            best = it;
          }
        }
        modes[c][a] = best->first;
      }
    }
  }

  // Compact non-empty clusters to consecutive ids.
  std::vector<size_t> remap(k, SIZE_MAX);
  result.assignments.resize(users.size());
  for (size_t i = 0; i < users.size(); ++i) {
    size_t c = assignment[i];
    if (remap[c] == SIZE_MAX) {
      remap[c] = result.clusters.size();
      result.clusters.emplace_back();
    }
    result.assignments[i] = remap[c];
    result.clusters[remap[c]].push_back(users[i]);
  }
  return result;
}

}  // namespace sight
