#include "similarity/ps_kernels.h"

#include <algorithm>

#include "util/logging.h"

// The SIMD variants need x86-64 (SSE2 is the baseline there) and a
// compiler with __builtin_cpu_supports + function target attributes.
#if defined(SIGHT_SIMD) && defined(__x86_64__) && \
    (defined(__GNUC__) || defined(__clang__))
#define SIGHT_PS_SIMD 1
#include <immintrin.h>
#else
#define SIGHT_PS_SIMD 0
#endif

namespace sight {
namespace ps_kernels {
namespace {

// Per-a-row state, packed once per ComputeBatch call and reused across
// every b-row: parallel arrays over the a-row's *present* attributes.
// Attributes missing on the a-row are dropped here — the scalar path
// skips them for every pair, so they contribute nothing regardless of
// the b-side. Attributes where only the b-side is missing are kept and
// contribute w * min(fa, freq[0]) = w * 0.0 = +0.0; adding +0.0 to a
// non-negative accumulator is a bitwise no-op in IEEE-754, which is
// what lets the kernels run branch-free over the b-side (DESIGN.md
// section 11).
struct RowContext {
  std::vector<uint32_t> attr;    // attribute index (ascending)
  std::vector<uint32_t> ca;      // a-row code
  std::vector<uint32_t> fsize;   // frequency-array length
  std::vector<const double*> f;  // frequency-array data
  std::vector<double> fa;        // a-side frequency, bounds-checked
  std::vector<double> w;         // normalized attribute weight

  void Pack(const uint32_t* a, const std::vector<double>& weights,
            const ValueFrequencyTable& freqs) {
    attr.clear();
    ca.clear();
    fsize.clear();
    f.clear();
    fa.clear();
    w.clear();
    for (uint32_t at = 0; at < weights.size(); ++at) {
      uint32_t code = a[at];
      if (code == ProfileCodec::kMissingCode) continue;
      const std::vector<double>& freq = freqs.FrequencyArray(at);
      attr.push_back(at);
      ca.push_back(code);
      fsize.push_back(static_cast<uint32_t>(freq.size()));
      f.push_back(freq.data());
      fa.push_back(code < freq.size() ? freq[code] : 0.0);
      w.push_back(weights[at]);
    }
  }
};

// Portable batch kernel over b-rows [k0, count). Per pair, attributes
// accumulate in ascending order with the same mul-then-add sequence as
// ProfileSimilarity::Compute, so the result is bitwise-identical; the
// wins are the hoisted per-attribute state and the branch-free b-side.
void BatchScalarFrom(const RowContext& ctx, const uint32_t* b, size_t stride,
                     size_t k0, size_t count, double* out) {
  const size_t m = ctx.attr.size();
  for (size_t k = k0; k < count; ++k) {
    const uint32_t* row = b + k * stride;
    double total = 0.0;
    for (size_t s = 0; s < m; ++s) {
      const uint32_t cb = row[ctx.attr[s]];
      const double fb = cb < ctx.fsize[s] ? ctx.f[s][cb] : 0.0;
      const double sim = cb == ctx.ca[s] ? 1.0 : std::min(ctx.fa[s], fb);
      total += ctx.w[s] * sim;
    }
    out[k] = total;
  }
}

void BatchScalar(const RowContext& ctx, const uint32_t* b, size_t stride,
                 size_t count, double* out) {
  BatchScalarFrom(ctx, b, stride, 0, count, out);
}

#if SIGHT_PS_SIMD

// Two pairs per iteration. SSE2 has no gather, so the frequency loads
// stay scalar; the compare/min/blend/mul/add run per-lane. Integer
// compares are widened to 64-bit lane masks by duplicating each 32-bit
// mask word. The accumulator never sees an FMA: x86-64 baseline code
// cannot contract the separate mul and add, matching the scalar path's
// two roundings.
void BatchSse2(const RowContext& ctx, const uint32_t* b, size_t stride,
               size_t count, double* out) {
  const size_t m = ctx.attr.size();
  const __m128d one = _mm_set1_pd(1.0);
  size_t k = 0;
  for (; k + 2 <= count; k += 2) {
    const uint32_t* r0 = b + k * stride;
    const uint32_t* r1 = r0 + stride;
    __m128d acc = _mm_setzero_pd();
    for (size_t s = 0; s < m; ++s) {
      const uint32_t at = ctx.attr[s];
      const uint32_t cb0 = r0[at];
      const uint32_t cb1 = r1[at];
      const uint32_t fs = ctx.fsize[s];
      const double* freq = ctx.f[s];
      const __m128d fb = _mm_setr_pd(cb0 < fs ? freq[cb0] : 0.0,
                                     cb1 < fs ? freq[cb1] : 0.0);
      const __m128i cb = _mm_setr_epi32(static_cast<int>(cb0),
                                        static_cast<int>(cb1), 0, 0);
      const __m128i eq32 =
          _mm_cmpeq_epi32(cb, _mm_set1_epi32(static_cast<int>(ctx.ca[s])));
      // Duplicate each 32-bit compare word into a 64-bit lane mask.
      const __m128d eq = _mm_castsi128_pd(_mm_unpacklo_epi32(eq32, eq32));
      const __m128d mn = _mm_min_pd(_mm_set1_pd(ctx.fa[s]), fb);
      const __m128d sim =
          _mm_or_pd(_mm_and_pd(eq, one), _mm_andnot_pd(eq, mn));
      acc = _mm_add_pd(acc, _mm_mul_pd(_mm_set1_pd(ctx.w[s]), sim));
    }
    _mm_storeu_pd(out + k, acc);
  }
  BatchScalarFrom(ctx, b, stride, k, count, out);
}

// Four pairs per iteration with masked frequency gathers. The mask is
// the unsigned bounds check cb < fsize (bias-XOR turns the signed
// compare unsigned, so kUnknownValue lanes mask out instead of going
// negative); masked-out lanes read 0.0 without touching memory, which
// reproduces FrequencyByCode's out-of-range behaviour exactly. The
// target enables AVX2 only — not FMA — so mul and add stay separate
// roundings, as in the scalar path.
__attribute__((target("avx2"))) void BatchAvx2(const RowContext& ctx,
                                               const uint32_t* b,
                                               size_t stride, size_t count,
                                               double* out) {
  const size_t m = ctx.attr.size();
  const __m128i bias = _mm_set1_epi32(INT32_MIN);
  const __m256d one = _mm256_set1_pd(1.0);
  size_t k = 0;
  for (; k + 4 <= count; k += 4) {
    const uint32_t* r0 = b + k * stride;
    const uint32_t* r1 = r0 + stride;
    const uint32_t* r2 = r1 + stride;
    const uint32_t* r3 = r2 + stride;
    __m256d acc = _mm256_setzero_pd();
    for (size_t s = 0; s < m; ++s) {
      const uint32_t at = ctx.attr[s];
      const __m128i cb = _mm_setr_epi32(
          static_cast<int>(r0[at]), static_cast<int>(r1[at]),
          static_cast<int>(r2[at]), static_cast<int>(r3[at]));
      const __m128i inb = _mm_cmpgt_epi32(
          _mm_xor_si128(_mm_set1_epi32(static_cast<int>(ctx.fsize[s])),
                        bias),
          _mm_xor_si128(cb, bias));
      const __m256d fb = _mm256_mask_i32gather_pd(
          _mm256_setzero_pd(), ctx.f[s], cb,
          _mm256_castsi256_pd(_mm256_cvtepi32_epi64(inb)), 8);
      const __m256d eq = _mm256_castsi256_pd(_mm256_cvtepi32_epi64(
          _mm_cmpeq_epi32(cb,
                          _mm_set1_epi32(static_cast<int>(ctx.ca[s])))));
      const __m256d mn = _mm256_min_pd(_mm256_set1_pd(ctx.fa[s]), fb);
      const __m256d sim = _mm256_blendv_pd(mn, one, eq);
      acc = _mm256_add_pd(acc, _mm256_mul_pd(_mm256_set1_pd(ctx.w[s]), sim));
    }
    _mm256_storeu_pd(out + k, acc);
  }
  BatchScalarFrom(ctx, b, stride, k, count, out);
}

#endif  // SIGHT_PS_SIMD

using BatchFn = void (*)(const RowContext&, const uint32_t*, size_t, size_t,
                         double*);

BatchFn ResolveBatchFn() {
  switch (ActiveDispatch()) {
#if SIGHT_PS_SIMD
    case Dispatch::kAvx2:
      return BatchAvx2;
    case Dispatch::kSse2:
      return BatchSse2;
#endif
    default:
      return BatchScalar;
  }
}

BatchFn ActiveBatchFn() {
  static const BatchFn fn = ResolveBatchFn();
  return fn;
}

}  // namespace

Dispatch ActiveDispatch() {
#if SIGHT_PS_SIMD
  static const Dispatch dispatch = __builtin_cpu_supports("avx2")
                                       ? Dispatch::kAvx2
                                       : Dispatch::kSse2;
  return dispatch;
#else
  return Dispatch::kScalar;
#endif
}

const char* DispatchName(Dispatch dispatch) {
  switch (dispatch) {
    case Dispatch::kScalar:
      return "scalar";
    case Dispatch::kSse2:
      return "sse2";
    case Dispatch::kAvx2:
      return "avx2";
  }
  return "unknown";
}

TileShape DefaultTileShape(size_t num_attributes) {
  // Column block: the b-rows a tile re-reads once per a-row. Budget
  // half a typical 32 KiB L1d for them (the other half covers the
  // output span, the frequency arrays' hot entries, and the a-rows).
  constexpr size_t kColBudgetBytes = 16 * 1024;
  const size_t row_bytes =
      std::max<size_t>(1, num_attributes) * sizeof(uint32_t);
  size_t cols = kColBudgetBytes / row_bytes;
  cols = std::clamp<size_t>(cols & ~size_t{7}, 32, 512);
  // Row block: enough rows that packing the per-row context is noise
  // and a tile is a meaningful ParallelFor work item, small enough that
  // tiles still load-balance across threads.
  return TileShape{64, cols};
}

std::vector<PairTile> MakeTiles(size_t n, TileShape shape) {
  SIGHT_CHECK(shape.rows > 0 && shape.cols > 0);
  std::vector<PairTile> tiles;
  if (n < 2) return tiles;
  for (size_t j0 = 0; j0 + 1 < n; j0 += shape.cols) {
    const size_t j1 = std::min(n, j0 + shape.cols);
    for (size_t i0 = j0 + 1; i0 < n; i0 += shape.rows) {
      // Clamp the first row block of a column stripe to the stripe's
      // diagonal start so blocks stay aligned to multiples of rows.
      const size_t begin = std::max(i0, j0 + 1);
      const size_t end = std::min(n, i0 + shape.rows);
      if (begin >= end) continue;
      tiles.push_back(PairTile{begin, end, j0, j1});
    }
  }
  return tiles;
}

size_t TilePairCount(const PairTile& tile) {
  size_t pairs = 0;
  for (size_t i = tile.row_begin; i < tile.row_end; ++i) {
    const size_t j1 = std::min(tile.col_end, i);
    if (j1 > tile.col_begin) pairs += j1 - tile.col_begin;
  }
  return pairs;
}

void ComputeBatch(const uint32_t* a, const uint32_t* b, size_t stride,
                  size_t count, const ProfileSimilarity& ps,
                  const ValueFrequencyTable& freqs, double* out) {
  if (count == 0) return;
  RowContext ctx;
  ctx.Pack(a, ps.normalized_weights(), freqs);
  ActiveBatchFn()(ctx, b, stride, count, out);
}

void FillTile(const uint32_t* rows, size_t num_rows, size_t num_attributes,
              const ProfileSimilarity& ps, const ValueFrequencyTable& freqs,
              const PairTile& tile, SimilarityMatrix* out) {
  SIGHT_CHECK(out != nullptr && tile.row_end <= num_rows);
  const size_t stride = num_attributes;
  const BatchFn batch = ActiveBatchFn();
  RowContext ctx;
  std::vector<double> buf(tile.col_end - tile.col_begin);
  const uint32_t* b = rows + tile.col_begin * stride;
  for (size_t i = std::max(tile.row_begin, tile.col_begin + 1);
       i < tile.row_end; ++i) {
    const size_t count = std::min(tile.col_end, i) - tile.col_begin;
    ctx.Pack(rows + i * stride, ps.normalized_weights(), freqs);
    batch(ctx, b, stride, count, buf.data());
    out->SetRowSpan(i, tile.col_begin, buf.data(), count);
  }
}

void FillTile(const EncodedProfileTable& enc, const ProfileSimilarity& ps,
              const ValueFrequencyTable& freqs, const PairTile& tile,
              SimilarityMatrix* out) {
  FillTile(enc.row(0), enc.num_rows(), enc.num_attributes(), ps, freqs, tile,
           out);
}

FillStats FillPairwise(const EncodedProfileTable& enc,
                       const ProfileSimilarity& ps,
                       const ValueFrequencyTable& freqs, ThreadPool* pool,
                       SimilarityMatrix* out, TileShape shape) {
  SIGHT_CHECK(out != nullptr && out->size() == enc.num_rows());
  FillStats stats;
  stats.tile =
      shape.rows > 0 && shape.cols > 0
          ? shape
          : DefaultTileShape(enc.num_attributes());
  stats.dispatch = ActiveDispatch();
  const size_t n = enc.num_rows();
  std::vector<PairTile> tiles = MakeTiles(n, stats.tile);
  stats.tiles = tiles.size();
  ParallelForOptions options;
  options.total_work = n > 1 ? n * (n - 1) / 2 : 0;
  stats.parallel = ParallelFor(
      pool, tiles.size(),
      [&](size_t t) { FillTile(enc, ps, freqs, tiles[t], out); }, options);
  return stats;
}

}  // namespace ps_kernels
}  // namespace sight
