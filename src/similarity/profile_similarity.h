// Profile similarity PS(a, b) between two categorical profiles.
//
// Reconstruction of the PS measure of Akcora et al. (IRI 2011) as described
// in the risk paper (Section III-C): "For each attribute, if values are
// identical on both profiles the attribute similarity is set to 1. If they
// are non-identical, a non-zero value is computed by considering the
// frequency of the item values in the data set (i.e., the profiles in the
// considered pool)."
//
// Concretely, attribute similarity for differing values va != vb is
// min(f(va), f(vb)) where f is the relative frequency of the value in the
// reference population: sharing a *common* trait variant is weaker evidence
// of dissimilarity than clashing on rare variants, so common-but-different
// values keep some similarity mass. Missing values contribute 0. The total
// is the weighted mean over attributes.
//
// Hot path: the table dictionary-encodes its population (graph/
// profile_codec.h), stores code-indexed frequency arrays, and PS over code
// rows is an integer compare plus two array loads per attribute. The
// string-based overloads are thin wrappers that encode values on the fly
// through the same codec, so both paths produce bitwise-identical values.

#ifndef SIGHT_SIMILARITY_PROFILE_SIMILARITY_H_
#define SIGHT_SIMILARITY_PROFILE_SIMILARITY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/profile.h"
#include "graph/profile_codec.h"
#include "graph/types.h"
#include "util/status.h"

namespace sight {

/// Per-attribute relative frequencies of values in a reference population
/// (typically the profiles of the pool under consideration), stored as
/// code-indexed arrays over the population's dictionary encoding.
class ValueFrequencyTable {
 public:
  /// Builds frequencies from the profiles of `users` in `table`,
  /// dictionary-encoding the population as it goes. Missing values are
  /// excluded from the denominators.
  static ValueFrequencyTable Build(const ProfileTable& table,
                                   const std::vector<UserId>& users);

  /// Builds frequencies from an already-encoded population; the resulting
  /// table copies `encoded.codec()`, so FrequencyByCode agrees with the
  /// codes in `encoded` (and in any table built on top of that codec).
  static ValueFrequencyTable Build(const EncodedProfileTable& encoded);

  /// Builds frequencies straight from row-major code rows (`num_rows` x
  /// `num_attributes`), without copying any codec — the serving flow's
  /// per-pool path over rows gathered from a shared owner-level encode
  /// (StrangerEncodeCache). FrequencyByCode agrees with the codes in
  /// `rows`; the frequency of a value is its count over the non-missing
  /// observations, identical to the codec-carrying builders. The
  /// string-keyed Frequency() lookups on such a table answer 0 (there is
  /// no dictionary to resolve them), which no hot path uses.
  static ValueFrequencyTable BuildFromCodes(const uint32_t* rows,
                                            size_t num_rows,
                                            size_t num_attributes);

  /// Relative frequency of `value` for `attr` in [0, 1]; 0 for unseen
  /// values or empty populations.
  double Frequency(AttributeId attr, const std::string& value) const;

  /// Relative frequency of the value encoded as `code` under codec().
  /// Codes outside the population's dictionary (including
  /// ProfileCodec::kUnknownValue and codes interned on top of this codec)
  /// read as 0.
  double FrequencyByCode(AttributeId attr, uint32_t code) const {
    const std::vector<double>& f = freq_[attr];
    return code < f.size() ? f[code] : 0.0;
  }

  /// Count of non-missing observations for `attr`.
  size_t Support(AttributeId attr) const;

  /// Number of distinct values observed for `attr`.
  size_t NumDistinct(AttributeId attr) const;

  size_t num_attributes() const { return freq_.size(); }

  /// The raw code-indexed frequency array for `attr` (entry [0], the
  /// missing-value slot, is always 0.0; codes past the end read as 0).
  /// The batched kernels in similarity/ps_kernels.h hoist `data()` and
  /// `size()` out of their inner loops through this accessor; everything
  /// else should prefer FrequencyByCode. `attr` must be <
  /// num_attributes().
  const std::vector<double>& FrequencyArray(AttributeId attr) const {
    return freq_[attr];
  }

  /// The dictionary the frequency arrays are indexed by.
  const ProfileCodec& codec() const { return codec_; }

 private:
  ValueFrequencyTable() : codec_(0) {}

  static ValueFrequencyTable FromCounts(
      ProfileCodec codec, std::vector<std::vector<size_t>> counts,
      std::vector<size_t> totals);

  ProfileCodec codec_;
  std::vector<std::vector<double>> freq_;  // [attr][code]; [attr][0] = 0
  std::vector<size_t> totals_;
  std::vector<size_t> distinct_;
};

/// PS over a fixed schema with per-attribute weights.
class ProfileSimilarity {
 public:
  /// `weights` must have one non-negative entry per schema attribute with a
  /// positive sum. Pass an empty vector for uniform weights.
  [[nodiscard]]
  static Result<ProfileSimilarity> Create(const ProfileSchema& schema,
                                          std::vector<double> weights = {});

  /// PS(a, b) in [0, 1] with frequencies from `freqs`.
  double Compute(const Profile& a, const Profile& b,
                 const ValueFrequencyTable& freqs) const;

  /// Convenience over users in a table.
  double Compute(const ProfileTable& table, UserId a, UserId b,
                 const ValueFrequencyTable& freqs) const;

  /// Hot path: PS over code rows (one code per attribute) produced by the
  /// codec the frequency table is indexed by — rows of an
  /// EncodedProfileTable built from `freqs.codec()` or sharing its
  /// dictionary prefix. Bitwise-identical to the string overloads.
  double Compute(const uint32_t* a, const uint32_t* b,
                 const ValueFrequencyTable& freqs) const;

  /// Convenience over rows of an encoded pool.
  double Compute(const EncodedProfileTable& encoded, size_t row_a,
                 size_t row_b, const ValueFrequencyTable& freqs) const {
    return Compute(encoded.row(row_a), encoded.row(row_b), freqs);
  }

  const std::vector<double>& normalized_weights() const { return weights_; }

 private:
  explicit ProfileSimilarity(std::vector<double> weights)
      : weights_(std::move(weights)) {}

  std::vector<double> weights_;  // normalized to sum 1
};

}  // namespace sight

#endif  // SIGHT_SIMILARITY_PROFILE_SIMILARITY_H_
